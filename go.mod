module threelc

go 1.22
