// WAN: the paper's motivating scenario — geo-distributed training over a
// constrained wide-area link (regulatory data pinning, metered mobile
// links, §1). Trains with each traffic-reduction design and estimates
// wall-clock training time across a range of WAN bandwidths, then
// switches to the hierarchical two-level topology: regional aggregators
// fuse local pushes so only one (optionally entropy-coded) stream per
// region crosses the slow link, and a bits/elem x RTT table shows how
// the reduced WAN volume trades against link latency.
//
//	go run ./examples/wan
package main

import (
	"fmt"

	"threelc/internal/compress"
	"threelc/internal/data"
	"threelc/internal/netsim"
	"threelc/internal/nn"
	"threelc/internal/opt"
	"threelc/internal/train"
)

func main() {
	const workers = 10
	const steps = 100

	dcfg := data.DefaultConfig()
	in := dcfg.C * dcfg.H * dcfg.W

	designs := []train.Design{
		{Name: "32-bit float", Scheme: compress.SchemeNone},
		{Name: "8-bit int", Scheme: compress.SchemeInt8},
		{Name: "5% sparsification", Scheme: compress.SchemeTopK, Opts: compress.Options{Fraction: 0.05}},
		{Name: "3LC (s=1.00)", Scheme: compress.SchemeThreeLC, Opts: compress.Options{Sparsity: 1.0, ZeroRun: true}},
		{Name: "3LC (s=1.90)", Scheme: compress.SchemeThreeLC, Opts: compress.Options{Sparsity: 1.9, ZeroRun: true}},
	}
	// WAN-grade bandwidths: a metered mobile uplink, a modest WAN, a
	// fast WAN.
	bandwidths := []float64{2e6, 10e6, 50e6}

	fmt.Printf("%-20s %10s", "design", "accuracy")
	for _, bw := range bandwidths {
		fmt.Printf(" %11s", fmt.Sprintf("@%.0f Mbps", bw/1e6))
	}
	fmt.Println()

	for _, d := range designs {
		optCfg := opt.TunedSGDConfig(workers, steps)
		cfg := train.Config{
			Design:         d,
			Workers:        workers,
			BatchPerWorker: 32,
			Steps:          steps,
			Data:           dcfg,
			BuildModel:     func() *nn.Model { return nn.NewMLP(in, []int{48}, dcfg.Classes, 1) },
			FlatInput:      true,
			Net:            netsim.DefaultParams(netsim.Mbps10),
			Optimizer:      &optCfg,
			RecordSteps:    true,
			Seed:           1,
		}
		cfg.Net.Workers = workers
		res, err := train.Run(cfg)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-20s %9.2f%%", d.Name, res.FinalAccuracy*100)
		for _, bw := range bandwidths {
			fmt.Printf(" %9.1f s", res.TimeAt(bw))
		}
		fmt.Println()
	}
	fmt.Println("\nTimes are virtual training times for the full run; lower is better.")
	fmt.Println("Bytes on the wire are measured from the actual compressed pushes/pulls.")

	// --- Hierarchical two-level aggregation -----------------------------
	//
	// Same scenario, but the workers are split into regions: each region's
	// aggregator fuses its local pushes and only one stream per region
	// crosses the WAN. Exact mode relays worker wires verbatim
	// (bit-identical model state to flat training); recompress re-encodes
	// one residual stream per region; the entropy stage squeezes the
	// quartic stream further. The RTT columns are exact re-costings of the
	// measured run: the WAN latency term is additive per step, so only
	// the per-step round trip changes between columns.
	const regions = 2
	const wanBW = 10e6 // 10 Mbps slow link
	baseLat := 20e-3   // one-way seconds the runs are costed at
	rtts := []float64{10e-3, 100e-3, 300e-3}

	type topo struct {
		name       string
		recompress bool
		entropy    compress.EntropyAlgo
	}
	topos := []topo{
		{"hier/exact", false, compress.EntropyOff},
		{"hier/recomp", true, compress.EntropyOff},
		{"hier/recomp+huff", true, compress.EntropyHuffman},
	}
	hierDesigns := []train.Design{designs[1], designs[3]} // 8-bit int, 3LC s=1.00

	elems := nn.NewMLP(in, []int{48}, dcfg.Classes, 1).NumParams()
	fmt.Printf("\n%d regions over a %.0f Mbps WAN link (%d workers, measured bytes):\n\n",
		regions, wanBW/1e6, workers)
	fmt.Printf("%-20s %-18s %12s", "design", "topology", "WAN bits/elem")
	for _, rtt := range rtts {
		fmt.Printf(" %11s", fmt.Sprintf("@RTT %.0fms", rtt*1e3))
	}
	fmt.Println()
	for _, d := range hierDesigns {
		for _, tp := range topos {
			optCfg := opt.TunedSGDConfig(workers, steps)
			cfg := train.Config{
				Design:           d,
				Workers:          workers,
				BatchPerWorker:   32,
				Steps:            steps,
				Data:             dcfg,
				BuildModel:       func() *nn.Model { return nn.NewMLP(in, []int{48}, dcfg.Classes, 1) },
				FlatInput:        true,
				Net:              netsim.DefaultParams(netsim.Mbps10),
				Optimizer:        &optCfg,
				Seed:             1,
				Regions:          regions,
				RegionRecompress: tp.recompress,
				RegionEntropy:    tp.entropy,
			}
			cfg.Net.Workers = workers
			cfg.Net.WANBandwidthBps = wanBW
			cfg.Net.WANLatencySec = baseLat
			res, err := train.Run(cfg)
			if err != nil {
				panic(err)
			}
			// Inter-region traffic per step per model element, push+pull
			// summed over regions.
			bitsPerElem := float64(res.TotalWANBytes) * 8 / float64(steps) / float64(elems)
			fmt.Printf("%-20s %-18s %13.2f", d.Name, tp.name, bitsPerElem)
			for _, rtt := range rtts {
				// One WAN round trip per step: swap the costed RTT for the
				// target one. (The bandwidth term is untouched.)
				t := res.TotalVirtualSec + (rtt-2*baseLat)*float64(steps)
				fmt.Printf(" %9.1f s", t)
			}
			fmt.Println()
		}
	}
	fmt.Println("\nExact relay is bit-identical to flat training; recompress re-encodes one")
	fmt.Println("residual stream per region (error accumulation retries what requantization")
	fmt.Println("drops); +huff adds the streaming entropy second stage on the slow link.")
}
