// WAN: the paper's motivating scenario — geo-distributed training over a
// constrained wide-area link (regulatory data pinning, metered mobile
// links, §1). Trains with each traffic-reduction design and estimates
// wall-clock training time across a range of WAN bandwidths.
//
//	go run ./examples/wan
package main

import (
	"fmt"

	"threelc/internal/compress"
	"threelc/internal/data"
	"threelc/internal/netsim"
	"threelc/internal/nn"
	"threelc/internal/opt"
	"threelc/internal/train"
)

func main() {
	const workers = 10
	const steps = 100

	dcfg := data.DefaultConfig()
	in := dcfg.C * dcfg.H * dcfg.W

	designs := []train.Design{
		{Name: "32-bit float", Scheme: compress.SchemeNone},
		{Name: "8-bit int", Scheme: compress.SchemeInt8},
		{Name: "5% sparsification", Scheme: compress.SchemeTopK, Opts: compress.Options{Fraction: 0.05}},
		{Name: "3LC (s=1.00)", Scheme: compress.SchemeThreeLC, Opts: compress.Options{Sparsity: 1.0, ZeroRun: true}},
		{Name: "3LC (s=1.90)", Scheme: compress.SchemeThreeLC, Opts: compress.Options{Sparsity: 1.9, ZeroRun: true}},
	}
	// WAN-grade bandwidths: a metered mobile uplink, a modest WAN, a
	// fast WAN.
	bandwidths := []float64{2e6, 10e6, 50e6}

	fmt.Printf("%-20s %10s", "design", "accuracy")
	for _, bw := range bandwidths {
		fmt.Printf(" %11s", fmt.Sprintf("@%.0f Mbps", bw/1e6))
	}
	fmt.Println()

	for _, d := range designs {
		optCfg := opt.TunedSGDConfig(workers, steps)
		cfg := train.Config{
			Design:         d,
			Workers:        workers,
			BatchPerWorker: 32,
			Steps:          steps,
			Data:           dcfg,
			BuildModel:     func() *nn.Model { return nn.NewMLP(in, []int{48}, dcfg.Classes, 1) },
			FlatInput:      true,
			Net:            netsim.DefaultParams(netsim.Mbps10),
			Optimizer:      &optCfg,
			RecordSteps:    true,
			Seed:           1,
		}
		cfg.Net.Workers = workers
		res, err := train.Run(cfg)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-20s %9.2f%%", d.Name, res.FinalAccuracy*100)
		for _, bw := range bandwidths {
			fmt.Printf(" %9.1f s", res.TimeAt(bw))
		}
		fmt.Println()
	}
	fmt.Println("\nTimes are virtual training times for the full run; lower is better.")
	fmt.Println("Bytes on the wire are measured from the actual compressed pushes/pulls.")
}
