// Distributed: train the same model on a simulated 10-worker parameter-
// server cluster twice — once uncompressed and once with 3LC — and compare
// accuracy, traffic, and virtual training time at 10 Mbps.
//
//	go run ./examples/distributed
package main

import (
	"fmt"

	"threelc/internal/compress"
	"threelc/internal/data"
	"threelc/internal/netsim"
	"threelc/internal/nn"
	"threelc/internal/opt"
	"threelc/internal/train"
)

func main() {
	const workers = 10
	const steps = 150

	dcfg := data.DefaultConfig()
	in := dcfg.C * dcfg.H * dcfg.W

	runDesign := func(d train.Design) *train.Result {
		optCfg := opt.TunedSGDConfig(workers, steps)
		cfg := train.Config{
			Design:         d,
			Workers:        workers,
			BatchPerWorker: 32,
			Steps:          steps,
			Data:           dcfg,
			BuildModel:     func() *nn.Model { return nn.NewMLP(in, []int{48}, dcfg.Classes, 1) },
			FlatInput:      true,
			Net:            netsim.DefaultParams(netsim.Mbps10),
			Optimizer:      &optCfg,
			EvalEvery:      50,
			RecordSteps:    true,
			Seed:           1,
		}
		cfg.Net.Workers = workers
		res, err := train.Run(cfg)
		if err != nil {
			panic(err)
		}
		return res
	}

	base := runDesign(train.Design{Name: "32-bit float", Scheme: compress.SchemeNone})
	lc := runDesign(train.Design{
		Name:   "3LC (s=1.00)",
		Scheme: compress.SchemeThreeLC,
		Opts:   compress.Options{Sparsity: 1.0, ZeroRun: true},
	})

	fmt.Printf("%-16s %12s %14s %14s %12s\n", "design", "accuracy", "push traffic", "pull traffic", "time@10Mbps")
	for _, r := range []*train.Result{base, lc} {
		fmt.Printf("%-16s %11.2f%% %11.2f MiB %11.2f MiB %10.1f s\n",
			r.Design.Name, r.FinalAccuracy*100,
			float64(r.TotalPushBytes)/(1<<20), float64(r.TotalPullBytes)/(1<<20),
			r.TimeAt(netsim.Mbps10))
	}
	fmt.Printf("\n3LC: %.1fx traffic compression, %.1fx faster training, %+.2f%% accuracy\n",
		lc.CompressionRatio(),
		base.TimeAt(netsim.Mbps10)/lc.TimeAt(netsim.Mbps10),
		(lc.FinalAccuracy-base.FinalAccuracy)*100)
}
