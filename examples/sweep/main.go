// Sweep: sensitivity of 3LC to the sparsity multiplier s — the paper's
// Figure 8 / Table 2 analysis in miniature. For each s, trains to
// completion and reports compression ratio, bits per state change,
// accuracy, and time at 10 Mbps.
//
//	go run ./examples/sweep
package main

import (
	"fmt"

	"threelc/internal/compress"
	"threelc/internal/data"
	"threelc/internal/netsim"
	"threelc/internal/nn"
	"threelc/internal/opt"
	"threelc/internal/train"
)

func main() {
	const workers = 10
	const steps = 150

	dcfg := data.DefaultConfig()
	in := dcfg.C * dcfg.H * dcfg.W

	fmt.Printf("%-10s %10s %14s %12s %12s\n", "s", "ratio", "bits/change", "accuracy", "time@10Mbps")
	for _, cfgRow := range []struct {
		label string
		s     float64
		zre   bool
	}{
		{"No ZRE", 1.00, false},
		{"1.00", 1.00, true},
		{"1.25", 1.25, true},
		{"1.50", 1.50, true},
		{"1.75", 1.75, true},
		{"1.90", 1.90, true},
	} {
		optCfg := opt.TunedSGDConfig(workers, steps)
		cfg := train.Config{
			Design: train.Design{
				Name:   fmt.Sprintf("3LC (s=%.2f)", cfgRow.s),
				Scheme: compress.SchemeThreeLC,
				Opts:   compress.Options{Sparsity: cfgRow.s, ZeroRun: cfgRow.zre},
			},
			Workers:        workers,
			BatchPerWorker: 32,
			Steps:          steps,
			Data:           dcfg,
			BuildModel:     func() *nn.Model { return nn.NewMLP(in, []int{48}, dcfg.Classes, 1) },
			FlatInput:      true,
			Net:            netsim.DefaultParams(netsim.Mbps10),
			Optimizer:      &optCfg,
			RecordSteps:    true,
			Seed:           1,
		}
		cfg.Net.Workers = workers
		res, err := train.Run(cfg)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-10s %9.1fx %14.3f %11.2f%% %10.1f s\n",
			cfgRow.label, res.CompressionRatio(), res.BitsPerChange(),
			res.FinalAccuracy*100, res.TimeAt(netsim.Mbps10))
	}
}
