// Straggler: the barrier-relaxation background of §2.1. Under per-worker
// compute-time jitter, plain BSP pays the slowest worker every step;
// backup workers (TensorFlow SyncReplicasOptimizer semantics) advance the
// step once Workers-Backup pushes arrive. This example measures the
// interaction between straggler mitigation and 3LC traffic compression.
//
//	go run ./examples/straggler
package main

import (
	"fmt"

	"threelc/internal/compress"
	"threelc/internal/data"
	"threelc/internal/netsim"
	"threelc/internal/nn"
	"threelc/internal/opt"
	"threelc/internal/train"
)

func main() {
	const workers = 10
	const steps = 120
	const jitter = 0.6 // heavy-tailed compute time variation

	dcfg := data.DefaultConfig()
	in := dcfg.C * dcfg.H * dcfg.W

	run := func(d train.Design, backup int) *train.Result {
		optCfg := opt.TunedSGDConfig(workers, steps)
		cfg := train.Config{
			Design:           d,
			Workers:          workers,
			BatchPerWorker:   32,
			Steps:            steps,
			Data:             dcfg,
			BuildModel:       func() *nn.Model { return nn.NewMLP(in, []int{48}, dcfg.Classes, 1) },
			FlatInput:        true,
			Net:              netsim.DefaultParams(netsim.Mbps10),
			Optimizer:        &optCfg,
			RecordSteps:      true,
			Seed:             1,
			BackupWorkers:    backup,
			ComputeJitterStd: jitter,
		}
		cfg.Net.Workers = workers
		res, err := train.Run(cfg)
		if err != nil {
			panic(err)
		}
		return res
	}

	base := train.Design{Name: "32-bit float", Scheme: compress.SchemeNone}
	lc := train.Design{Name: "3LC (s=1.00)", Scheme: compress.SchemeThreeLC,
		Opts: compress.Options{Sparsity: 1.0, ZeroRun: true}}

	fmt.Printf("%-16s %8s %12s %12s %12s\n", "design", "backup", "accuracy", "time@10Mbps", "push MiB")
	for _, d := range []train.Design{base, lc} {
		for _, backup := range []int{0, 1, 2} {
			r := run(d, backup)
			fmt.Printf("%-16s %8d %11.2f%% %10.1f s %12.2f\n",
				d.Name, backup, r.FinalAccuracy*100, r.TimeAt(netsim.Mbps10),
				float64(r.TotalPushBytes)/(1<<20))
		}
	}
	fmt.Println("\nBackup workers shave straggler latency (compute-bound regimes) while")
	fmt.Println("3LC removes transmission latency (bandwidth-bound regimes); they compose.")
}
