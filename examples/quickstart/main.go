// Quickstart: compress one gradient-like tensor through the full 3LC
// pipeline, stage by stage, and verify the error-accumulation invariant.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"threelc/internal/compress"
	"threelc/internal/encode"
	"threelc/internal/quant"
	"threelc/internal/tensor"
)

func main() {
	const n = 100_000
	rng := tensor.NewRNG(42)

	// A synthetic gradient: zero-centred with a few large outliers, the
	// distribution 3-value quantization exploits.
	grad := tensor.New(n)
	tensor.FillNormal(grad, 0.01, rng)

	fmt.Println("== Stage by stage (s = 1.75) ==")
	// Stage 1: 3-value quantization with sparsity multiplication.
	tv := quant.Quantize3(grad, 1.75)
	fmt.Printf("3-value quantization:  %d elements -> {-1,0,+1} with M = %.5f\n", tv.Len(), tv.M)
	fmt.Printf("                       %d zeros (%.1f%%) for zero-run encoding to exploit\n",
		tv.CountZeros(), 100*float64(tv.CountZeros())/float64(n))

	// Stage 2: quartic encoding, five ternary digits per byte.
	qe := encode.QuarticEncode(tv.Q)
	fmt.Printf("quartic encoding:      %d bytes (%.3f bits/elem; 2-bit packing would use %.3f)\n",
		len(qe), float64(len(qe))*8/n, 2.0)

	// Stage 3: zero-run encoding of 121-runs.
	zre := encode.ZeroRunEncode(qe)
	fmt.Printf("zero-run encoding:     %d bytes (%.3f bits/elem)\n", len(zre), float64(len(zre))*8/n)
	fmt.Printf("end-to-end ratio:      %.1fx over 32-bit floats\n\n", float64(4*n)/float64(len(zre)))

	// The compress package wraps the stages behind one call with
	// per-tensor error accumulation across steps. Feed a persistent
	// (biased) gradient signal: the cumulative input grows linearly,
	// while the residual — the part error accumulation still owes the
	// receiver — stays bounded, so everything is eventually delivered.
	fmt.Println("== Compression context across 50 training steps ==")
	ctx := compress.New(compress.SchemeThreeLC, []int{n}, compress.Options{Sparsity: 1.0, ZeroRun: true})
	totalIn := tensor.New(n)
	totalOut := tensor.New(n)
	for step := 1; step <= 50; step++ {
		tensor.FillNormal(grad, 0.01, rng)
		for i := range grad.Data() {
			grad.Data()[i] += 0.004 // persistent drift, like a real gradient direction
		}
		totalIn.Add(grad)

		wire := ctx.Compress(grad)
		out, err := compress.Decompress(wire, []int{n})
		if err != nil {
			panic(err)
		}
		totalOut.Add(out)
		if step%10 == 0 {
			diff := totalIn.Clone()
			diff.Sub(totalOut)
			fmt.Printf("step %2d: wire %6d B  cumulative input %.4f  undelivered residual %.4f (mean abs)\n",
				step, len(wire), totalIn.MeanAbs(), diff.MeanAbs())
		}
	}
	fmt.Println("\nThe residual stays bounded while the input keeps growing: error")
	fmt.Println("accumulation delivers every state change eventually (§3.1).")
}
