// Command 3lc-compress demonstrates the tensor-compression pipeline on
// synthetic state-change data: it generates a gradient-like tensor (zero
// centered, heavy tailed), runs it through a chosen scheme, and reports
// sizes, compression ratio, and reconstruction error.
//
// Example:
//
//	3lc-compress -n 1000000 -scheme 3lc -sparsity 1.75
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"threelc/internal/compress"
	"threelc/internal/tensor"
)

func main() {
	var (
		n        = flag.Int("n", 1_000_000, "number of tensor elements")
		scheme   = flag.String("scheme", "3lc", "scheme: float32 | int8 | stoch3 | mqe1bit | sparse25 | sparse5 | 3lc")
		sparsity = flag.Float64("sparsity", 1.0, "3LC sparsity multiplier")
		noZRE    = flag.Bool("no-zre", false, "disable zero-run encoding")
		std      = flag.Float64("std", 0.01, "std dev of synthetic gradient values")
		seed     = flag.Uint64("seed", 1, "random seed")
		rounds   = flag.Int("rounds", 5, "compression rounds (error accumulation across rounds)")
	)
	flag.Parse()

	var sch compress.Scheme
	opts := compress.Options{Seed: *seed}
	switch *scheme {
	case "float32":
		sch = compress.SchemeNone
	case "int8":
		sch = compress.SchemeInt8
	case "stoch3":
		sch = compress.SchemeStoch3QE
	case "mqe1bit":
		sch = compress.SchemeMQE1Bit
	case "sparse25":
		sch, opts.Fraction = compress.SchemeTopK, 0.25
	case "sparse5":
		sch, opts.Fraction = compress.SchemeTopK, 0.05
	case "3lc":
		sch, opts.Sparsity, opts.ZeroRun = compress.SchemeThreeLC, *sparsity, !*noZRE
	default:
		fmt.Fprintf(os.Stderr, "3lc-compress: unknown scheme %q\n", *scheme)
		os.Exit(2)
	}

	shape := []int{*n}
	c := compress.New(sch, shape, opts)
	rng := tensor.NewRNG(*seed)

	fmt.Printf("scheme: %s, %d elements (%d raw bytes)\n", c.Name(), *n, 4**n)
	for round := 1; round <= *rounds; round++ {
		in := tensor.New(shape...)
		tensor.FillNormal(in, *std, rng)

		start := time.Now()
		wire := c.Compress(in)
		compDur := time.Since(start)

		start = time.Now()
		out, err := compress.Decompress(wire, shape)
		if err != nil {
			fmt.Fprintln(os.Stderr, "3lc-compress:", err)
			os.Exit(1)
		}
		decDur := time.Since(start)

		var mse float64
		for i, v := range in.Data() {
			d := float64(v - out.Data()[i])
			mse += d * d
		}
		mse /= float64(*n)

		ratio := float64(4**n) / float64(len(wire))
		fmt.Printf("round %d: wire %9d B  ratio %7.1fx  %5.3f bits/elem  rmse %.3e  comp %8s  decomp %8s\n",
			round, len(wire), ratio, float64(len(wire))*8/float64(*n),
			math.Sqrt(mse), compDur.Round(time.Microsecond), decDur.Round(time.Microsecond))
	}
}
