// Command 3lc-lint runs the repo's invariant-enforcing analyzer suite
// (internal/lint) over the named packages: noalloc, nopanic, poolsafe,
// and detonly. It prints one line per finding and exits nonzero if any
// unsuppressed finding remains, so CI can require a clean run the same
// way it requires go vet.
//
// Usage:
//
//	3lc-lint [-only a,b] [-list] [-v] [packages]
//
// Packages default to ./... relative to the current directory.
package main

import (
	"flag"
	"fmt"
	"os"

	"threelc/internal/lint"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer subset (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	verbose := flag.Bool("v", false, "also print suppressed findings")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: 3lc-lint [-only a,b] [-list] [-v] [packages]\n\nAnalyzers:\n")
		for _, a := range lint.All() {
			fmt.Fprintf(os.Stderr, "  %-10s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := lint.All()
	if *only != "" {
		var err error
		analyzers, err = lint.ByName(*only)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.LoadPackages(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	diags := lint.Run(pkgs, analyzers)
	failed := 0
	suppressed := 0
	for _, d := range diags {
		if d.Suppressed {
			suppressed++
			if *verbose {
				fmt.Printf("%s: suppressed (%s) [%s]\n", d.Pos, d.Reason, d.Rule)
			}
			continue
		}
		failed++
		fmt.Println(d)
	}
	if *verbose {
		fmt.Printf("3lc-lint: %d packages, %d findings, %d suppressed\n", len(pkgs), failed, suppressed)
	}
	if failed > 0 {
		os.Exit(1)
	}
}
