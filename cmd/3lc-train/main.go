// Command 3lc-train runs a single distributed training job with a chosen
// traffic-compression design and reports accuracy, traffic, and virtual
// training time at the emulated bandwidth.
//
// Example:
//
//	3lc-train -design 3lc -sparsity 1.75 -workers 10 -steps 300 -bandwidth 10e6
package main

import (
	"flag"
	"fmt"
	"os"

	"threelc/internal/checkpoint"
	"threelc/internal/compress"
	"threelc/internal/netsim"
	"threelc/internal/nn"
	"threelc/internal/train"
)

func main() {
	var (
		designName = flag.String("design", "3lc", "design: float32 | int8 | stoch3 | mqe1bit | sparse25 | sparse5 | local2 | 3lc")
		sparsity   = flag.Float64("sparsity", 1.0, "3LC sparsity multiplier s in [1,2)")
		noZRE      = flag.Bool("no-zre", false, "disable zero-run encoding (3LC only)")
		workers    = flag.Int("workers", 10, "number of workers")
		steps      = flag.Int("steps", 300, "training steps")
		batch      = flag.Int("batch", 32, "per-worker batch size")
		bandwidth  = flag.Float64("bandwidth", netsim.Mbps10, "emulated link bandwidth (bits/sec)")
		useResNet  = flag.Bool("resnet", false, "train MicroResNet instead of the MLP workload")
		seed       = flag.Uint64("seed", 1, "random seed")
		evalEvery  = flag.Int("eval-every", 50, "evaluate test accuracy every N steps")
		savePath   = flag.String("save", "", "write the trained global model to this checkpoint file")
		statePath  = flag.String("state", "", "write periodic full-state checkpoints (model+optimizer+codec state) to this file")
		stateEvery = flag.Int("state-every", 50, "full-state checkpoint interval in steps (with -state)")
		resumeFrom = flag.String("resume", "", "resume from a full-state checkpoint written by an identical configuration (see 3lc-ckpt -state)")
		backup     = flag.Int("backup-workers", 0, "accept workers-N pushes per step (straggler mitigation)")
		jitter     = flag.Float64("jitter", 0, "per-worker compute-time jitter std (straggler model)")
	)
	flag.Parse()

	design, err := train.ParseDesign(*designName, *sparsity, *noZRE)
	if err != nil {
		fmt.Fprintln(os.Stderr, "3lc-train:", err)
		os.Exit(2)
	}

	cfg := train.CLIConfig(train.CLIOptions{
		Design:    design,
		Workers:   *workers,
		Steps:     *steps,
		Batch:     *batch,
		Bandwidth: *bandwidth,
		EvalEvery: *evalEvery,
		Backup:    *backup,
		Jitter:    *jitter,
		ResNet:    *useResNet,
		Seed:      *seed,
	})
	cfg.CheckpointPath = *statePath
	cfg.CheckpointEvery = *stateEvery
	cfg.ResumeFrom = *resumeFrom
	if *statePath == "" {
		cfg.CheckpointEvery = 0
	}

	var trained *nn.Model
	if *savePath != "" {
		// Capture the global model for checkpointing: BuildModel is
		// called once for the server first.
		orig := cfg.BuildModel
		first := true
		cfg.BuildModel = func() *nn.Model {
			m := orig()
			if first {
				trained = m
				first = false
			}
			return m
		}
	}

	res, err := train.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "3lc-train:", err)
		os.Exit(1)
	}
	if *resumeFrom != "" {
		fmt.Printf("resumed from %s (continuing to step %d)\n", *resumeFrom, *steps)
	}
	if *savePath != "" {
		if err := checkpoint.SaveFile(*savePath, trained); err != nil {
			fmt.Fprintln(os.Stderr, "3lc-train: save:", err)
			os.Exit(1)
		}
		fmt.Printf("checkpoint saved to %s\n", *savePath)
	}

	fmt.Printf("design:             %s\n", res.Design.Name)
	fmt.Printf("model parameters:   %d (%d compressible)\n", res.NumParam, res.CompressibleElems)
	fmt.Printf("workers x steps:    %d x %d\n", res.Workers, res.Steps)
	fmt.Printf("final loss:         %.4f\n", res.FinalLoss)
	fmt.Printf("final accuracy:     %.2f%%\n", res.FinalAccuracy*100)
	fmt.Printf("virtual time:       %.1f s (%.4f s/step @ %s)\n",
		res.TotalVirtualSec, res.PerStepSec, bwName(*bandwidth))
	fmt.Printf("push traffic:       %s (raw %s)\n", fmtBytes(res.TotalPushBytes), fmtBytes(res.RawBytes/2))
	fmt.Printf("pull traffic:       %s\n", fmtBytes(res.TotalPullBytes))
	if res.CompressibleElems > 0 && design.Scheme != compress.SchemeNone {
		fmt.Printf("compression ratio:  %.1fx (%.3f bits per state change)\n",
			res.CompressionRatio(), res.BitsPerChange())
	}
	for _, e := range res.Evals {
		fmt.Printf("  step %5d  accuracy %.2f%%\n", e.Step, e.Accuracy*100)
	}
}

func bwName(bps float64) string {
	switch {
	case bps >= 1e9:
		return fmt.Sprintf("%.0f Gbps", bps/1e9)
	case bps >= 1e6:
		return fmt.Sprintf("%.0f Mbps", bps/1e6)
	}
	return fmt.Sprintf("%.0f bps", bps)
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2f KiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}
