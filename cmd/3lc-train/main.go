// Command 3lc-train runs a single distributed training job with a chosen
// traffic-compression design and reports accuracy, traffic, and virtual
// training time at the emulated bandwidth.
//
// Example:
//
//	3lc-train -design 3lc -sparsity 1.75 -workers 10 -steps 300 -bandwidth 10e6
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"threelc/internal/checkpoint"
	"threelc/internal/compress"
	"threelc/internal/data"
	"threelc/internal/netsim"
	"threelc/internal/nn"
	"threelc/internal/opt"
	"threelc/internal/train"
)

func main() {
	var (
		designName = flag.String("design", "3lc", "design: float32 | int8 | stoch3 | mqe1bit | sparse25 | sparse5 | local2 | 3lc")
		sparsity   = flag.Float64("sparsity", 1.0, "3LC sparsity multiplier s in [1,2)")
		noZRE      = flag.Bool("no-zre", false, "disable zero-run encoding (3LC only)")
		workers    = flag.Int("workers", 10, "number of workers")
		steps      = flag.Int("steps", 300, "training steps")
		batch      = flag.Int("batch", 32, "per-worker batch size")
		bandwidth  = flag.Float64("bandwidth", netsim.Mbps10, "emulated link bandwidth (bits/sec)")
		useResNet  = flag.Bool("resnet", false, "train MicroResNet instead of the MLP workload")
		seed       = flag.Uint64("seed", 1, "random seed")
		evalEvery  = flag.Int("eval-every", 50, "evaluate test accuracy every N steps")
		savePath   = flag.String("save", "", "write the trained global model to this checkpoint file")
		backup     = flag.Int("backup-workers", 0, "accept workers-N pushes per step (straggler mitigation)")
		jitter     = flag.Float64("jitter", 0, "per-worker compute-time jitter std (straggler model)")
	)
	flag.Parse()

	design, err := parseDesign(*designName, *sparsity, *noZRE)
	if err != nil {
		fmt.Fprintln(os.Stderr, "3lc-train:", err)
		os.Exit(2)
	}

	dcfg := data.DefaultConfig()
	var build func() *nn.Model
	flat := true
	if *useResNet {
		flat = false
		build = func() *nn.Model {
			cfg := nn.DefaultMicroResNet()
			cfg.Seed = *seed
			return nn.NewMicroResNet(cfg)
		}
	} else {
		in := dcfg.C * dcfg.H * dcfg.W
		build = func() *nn.Model { return nn.NewMLP(in, []int{48}, dcfg.Classes, *seed) }
	}

	optCfg := opt.TunedSGDConfig(*workers, *steps)
	cfg := train.Config{
		Design:         design,
		Workers:        *workers,
		BatchPerWorker: *batch,
		Steps:          *steps,
		Data:           dcfg,
		BuildModel:     build,
		FlatInput:      flat,
		Augment:        *useResNet,
		Net:            netsim.DefaultParams(*bandwidth),
		Optimizer:      &optCfg,
		EvalEvery:      *evalEvery,
		RecordSteps:    true,
		Seed:           *seed,

		BackupWorkers:    *backup,
		ComputeJitterStd: *jitter,
	}
	cfg.Net.Workers = *workers

	var trained *nn.Model
	if *savePath != "" {
		// Capture the global model for checkpointing: BuildModel is
		// called once for the server first.
		orig := cfg.BuildModel
		first := true
		cfg.BuildModel = func() *nn.Model {
			m := orig()
			if first {
				trained = m
				first = false
			}
			return m
		}
	}

	res, err := train.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "3lc-train:", err)
		os.Exit(1)
	}
	if *savePath != "" {
		if err := checkpoint.SaveFile(*savePath, trained); err != nil {
			fmt.Fprintln(os.Stderr, "3lc-train: save:", err)
			os.Exit(1)
		}
		fmt.Printf("checkpoint saved to %s\n", *savePath)
	}

	fmt.Printf("design:             %s\n", res.Design.Name)
	fmt.Printf("model parameters:   %d (%d compressible)\n", res.NumParam, res.CompressibleElems)
	fmt.Printf("workers x steps:    %d x %d\n", res.Workers, res.Steps)
	fmt.Printf("final loss:         %.4f\n", res.FinalLoss)
	fmt.Printf("final accuracy:     %.2f%%\n", res.FinalAccuracy*100)
	fmt.Printf("virtual time:       %.1f s (%.4f s/step @ %s)\n",
		res.TotalVirtualSec, res.PerStepSec, bwName(*bandwidth))
	fmt.Printf("push traffic:       %s (raw %s)\n", fmtBytes(res.TotalPushBytes), fmtBytes(res.RawBytes/2))
	fmt.Printf("pull traffic:       %s\n", fmtBytes(res.TotalPullBytes))
	if res.CompressibleElems > 0 && design.Scheme != compress.SchemeNone {
		fmt.Printf("compression ratio:  %.1fx (%.3f bits per state change)\n",
			res.CompressionRatio(), res.BitsPerChange())
	}
	for _, e := range res.Evals {
		fmt.Printf("  step %5d  accuracy %.2f%%\n", e.Step, e.Accuracy*100)
	}
}

func parseDesign(name string, sparsity float64, noZRE bool) (train.Design, error) {
	switch strings.ToLower(name) {
	case "float32", "none", "baseline":
		return train.Design{Name: "32-bit float", Scheme: compress.SchemeNone}, nil
	case "int8":
		return train.Design{Name: "8-bit int", Scheme: compress.SchemeInt8}, nil
	case "stoch3":
		return train.Design{Name: "Stoch 3-value + QE", Scheme: compress.SchemeStoch3QE}, nil
	case "mqe1bit":
		return train.Design{Name: "MQE 1-bit int", Scheme: compress.SchemeMQE1Bit}, nil
	case "sparse25":
		return train.Design{Name: "25% sparsification", Scheme: compress.SchemeTopK,
			Opts: compress.Options{Fraction: 0.25}}, nil
	case "sparse5":
		return train.Design{Name: "5% sparsification", Scheme: compress.SchemeTopK,
			Opts: compress.Options{Fraction: 0.05}}, nil
	case "local2":
		return train.Design{Name: "2 local steps", Scheme: compress.SchemeLocalSteps,
			Opts: compress.Options{Interval: 2}}, nil
	case "3lc":
		label := fmt.Sprintf("3LC (s=%.2f)", sparsity)
		if noZRE {
			label += " no ZRE"
		}
		return train.Design{Name: label, Scheme: compress.SchemeThreeLC,
			Opts: compress.Options{Sparsity: sparsity, ZeroRun: !noZRE}}, nil
	}
	return train.Design{}, fmt.Errorf("unknown design %q", name)
}

func bwName(bps float64) string {
	switch {
	case bps >= 1e9:
		return fmt.Sprintf("%.0f Gbps", bps/1e9)
	case bps >= 1e6:
		return fmt.Sprintf("%.0f Mbps", bps/1e6)
	}
	return fmt.Sprintf("%.0f bps", bps)
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2f KiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}
