// Command 3lc-ckpt inspects and evaluates checkpoints.
//
// Model checkpoints (v1, written by 3lc-train -save):
//
//	3lc-ckpt -info model.ckpt            # list tensors and statistics
//	3lc-ckpt -eval model.ckpt            # test accuracy on synthetic data
//
// Full-state checkpoints (v2, written by 3lc-train -state):
//
//	3lc-ckpt -state train.ckpt           # sections + configuration fingerprint
//	3lc-ckpt -resume train.ckpt -design 3lc -sparsity 1.75 \
//	         -workers 10 -steps 300      # continue the killed run
//
// -resume rebuilds the training configuration exactly as 3lc-train does
// (the flags must match the original run; the checkpoint's fingerprint is
// verified) and continues from the captured step. The resumed loss
// trajectory is bit-identical to the run the checkpoint was cut from.
package main

import (
	"flag"
	"fmt"
	"os"

	"threelc/internal/checkpoint"
	"threelc/internal/data"
	"threelc/internal/netsim"
	"threelc/internal/nn"
	"threelc/internal/stats"
	"threelc/internal/train"
)

func main() {
	var (
		info      = flag.String("info", "", "model checkpoint to describe")
		eval      = flag.String("eval", "", "model checkpoint to evaluate on the synthetic test set")
		statePath = flag.String("state", "", "full-state checkpoint to describe")
		resume    = flag.String("resume", "", "full-state checkpoint to resume training from")
		useResNet = flag.Bool("resnet", false, "checkpoint holds a MicroResNet (default: MLP workload)")
		seed      = flag.Uint64("seed", 1, "model seed (must match the training run)")

		// -resume configuration: must mirror the original 3lc-train flags.
		designName = flag.String("design", "3lc", "design of the original run (see 3lc-train)")
		sparsity   = flag.Float64("sparsity", 1.0, "3LC sparsity multiplier of the original run")
		noZRE      = flag.Bool("no-zre", false, "original run disabled zero-run encoding")
		workers    = flag.Int("workers", 10, "worker count of the original run")
		steps      = flag.Int("steps", 300, "total step count of the original run")
		batch      = flag.Int("batch", 32, "per-worker batch size of the original run")
		bandwidth  = flag.Float64("bandwidth", netsim.Mbps10, "emulated link bandwidth (bits/sec)")
		evalEvery  = flag.Int("eval-every", 50, "evaluate test accuracy every N steps while resuming")
		backup     = flag.Int("backup-workers", 0, "backup worker count of the original run")
		jitter     = flag.Float64("jitter", 0, "compute-jitter std of the original run")
	)
	flag.Parse()

	switch {
	case *statePath != "":
		describeState(*statePath)
	case *resume != "":
		resumeRun(*resume, *designName, *sparsity, *noZRE, *workers, *steps, *batch, *bandwidth, *evalEvery, *backup, *jitter, *useResNet, *seed)
	case *info != "" || *eval != "":
		modelCheckpoint(*info, *eval, *useResNet, *seed)
	default:
		fmt.Fprintln(os.Stderr, "3lc-ckpt: pass -info/-eval (model checkpoint) or -state/-resume (full-state checkpoint)")
		os.Exit(2)
	}
}

// describeState prints a full-state checkpoint's fingerprint and sections.
func describeState(path string) {
	st, err := checkpoint.LoadStateFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "3lc-ckpt:", err)
		os.Exit(1)
	}
	fmt.Printf("full-state checkpoint: %s (%d sections, all CRCs verified)\n", path, len(st.Sections()))
	if info, err := train.ReadStateInfo(st); err == nil {
		fmt.Printf("captured at step:   %d of %d\n", info.Step, info.Steps)
		fmt.Printf("design scheme:      %s\n", info.Scheme)
		fmt.Printf("workers x shards:   %d x %d (batch %d, backup %d, staleness %d)\n",
			info.Workers, info.Shards, info.BatchPerWorker, info.BackupWorkers, info.Staleness)
		fmt.Printf("seed:               %d\n", info.Seed)
	} else {
		fmt.Printf("meta:               %v\n", err)
	}
	fmt.Printf("%-24s %12s\n", "section", "bytes")
	for _, sec := range st.Sections() {
		fmt.Printf("%-24s %12d\n", sec.Name, len(sec.Payload))
	}
}

// resumeRun continues a training run from a full-state checkpoint.
func resumeRun(path, designName string, sparsity float64, noZRE bool,
	workers, steps, batch int, bandwidth float64, evalEvery, backup int, jitter float64, useResNet bool, seed uint64) {

	design, err := train.ParseDesign(designName, sparsity, noZRE)
	if err != nil {
		fmt.Fprintln(os.Stderr, "3lc-ckpt:", err)
		os.Exit(2)
	}
	// The exact builder 3lc-train uses: the two commands can never drift
	// on model architecture, optimizer tuning, or network calibration.
	cfg := train.CLIConfig(train.CLIOptions{
		Design:    design,
		Workers:   workers,
		Steps:     steps,
		Batch:     batch,
		Bandwidth: bandwidth,
		EvalEvery: evalEvery,
		Backup:    backup,
		Jitter:    jitter,
		ResNet:    useResNet,
		Seed:      seed,
	})
	cfg.ResumeFrom = path

	res, err := train.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "3lc-ckpt:", err)
		os.Exit(1)
	}
	fmt.Printf("resumed %s to step %d (%s)\n", path, steps, res.Design.Name)
	if len(res.StepRecords) > 0 {
		fmt.Printf("steps replayed:     %d (from step %d)\n", len(res.StepRecords), res.StepRecords[0].Step)
	}
	fmt.Printf("final loss:         %.4f\n", res.FinalLoss)
	fmt.Printf("final accuracy:     %.2f%%\n", res.FinalAccuracy*100)
	for _, e := range res.Evals {
		fmt.Printf("  step %5d  accuracy %.2f%%\n", e.Step, e.Accuracy*100)
	}
}

// modelCheckpoint handles the v1 -info / -eval modes.
func modelCheckpoint(info, eval string, useResNet bool, seed uint64) {
	path := info
	if path == "" {
		path = eval
	}
	dcfg := data.DefaultConfig()
	var m *nn.Model
	if useResNet {
		cfg := nn.DefaultMicroResNet()
		cfg.Seed = seed
		m = nn.NewMicroResNet(cfg)
	} else {
		m = nn.NewMLP(dcfg.C*dcfg.H*dcfg.W, []int{48}, dcfg.Classes, seed)
	}
	if err := checkpoint.LoadFile(path, m); err != nil {
		fmt.Fprintln(os.Stderr, "3lc-ckpt:", err)
		os.Exit(1)
	}

	if info != "" {
		fmt.Printf("checkpoint: %s (%d parameters in %d tensors)\n", path, m.NumParams(), len(m.Params()))
		fmt.Printf("%-24s %10s %10s %10s %10s\n", "tensor", "elems", "std", "max|w|", "mean|w|")
		for _, p := range m.Params() {
			s := stats.Summarize(p.W)
			fmt.Printf("%-24s %10d %10.3g %10.3g %10.3g\n", p.Name, p.W.Len(), s.Std, s.MaxAbs, s.MeanAbs)
		}
	}
	if eval != "" {
		_, testSet := data.Synthetic(dcfg)
		acc := train.Evaluate(m, testSet, 100, !useResNet)
		fmt.Printf("test accuracy: %.2f%% (%d examples)\n", acc*100, testSet.Len())
	}
}
