// Command 3lc-ckpt inspects and evaluates model checkpoints written by
// 3lc-train -save.
//
//	3lc-ckpt -info model.ckpt            # list tensors and statistics
//	3lc-ckpt -eval model.ckpt            # test accuracy on synthetic data
package main

import (
	"flag"
	"fmt"
	"os"

	"threelc/internal/checkpoint"
	"threelc/internal/data"
	"threelc/internal/nn"
	"threelc/internal/stats"
	"threelc/internal/train"
)

func main() {
	var (
		info      = flag.String("info", "", "checkpoint to describe")
		eval      = flag.String("eval", "", "checkpoint to evaluate on the synthetic test set")
		useResNet = flag.Bool("resnet", false, "checkpoint holds a MicroResNet (default: MLP workload)")
		seed      = flag.Uint64("seed", 1, "model seed (must match the training run)")
	)
	flag.Parse()

	path := *info
	if path == "" {
		path = *eval
	}
	if path == "" {
		fmt.Fprintln(os.Stderr, "3lc-ckpt: pass -info or -eval with a checkpoint path")
		os.Exit(2)
	}

	dcfg := data.DefaultConfig()
	var m *nn.Model
	if *useResNet {
		cfg := nn.DefaultMicroResNet()
		cfg.Seed = *seed
		m = nn.NewMicroResNet(cfg)
	} else {
		m = nn.NewMLP(dcfg.C*dcfg.H*dcfg.W, []int{48}, dcfg.Classes, *seed)
	}
	if err := checkpoint.LoadFile(path, m); err != nil {
		fmt.Fprintln(os.Stderr, "3lc-ckpt:", err)
		os.Exit(1)
	}

	if *info != "" {
		fmt.Printf("checkpoint: %s (%d parameters in %d tensors)\n", path, m.NumParams(), len(m.Params()))
		fmt.Printf("%-24s %10s %10s %10s %10s\n", "tensor", "elems", "std", "max|w|", "mean|w|")
		for _, p := range m.Params() {
			s := stats.Summarize(p.W)
			fmt.Printf("%-24s %10d %10.3g %10.3g %10.3g\n", p.Name, p.W.Len(), s.Std, s.MaxAbs, s.MeanAbs)
		}
	}
	if *eval != "" {
		_, testSet := data.Synthetic(dcfg)
		acc := train.Evaluate(m, testSet, 100, !*useResNet)
		fmt.Printf("test accuracy: %.2f%% (%d examples)\n", acc*100, testSet.Len())
	}
}
