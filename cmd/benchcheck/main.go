// Command benchcheck parses `go test -bench` output, enforces allocation
// budgets on steady-state benchmarks, and emits a machine-readable JSON
// summary for the CI perf trajectory. It replaces grep-based bench gating:
// the parser understands the benchmark line format, so a renamed benchmark
// or a silently empty run fails the gate instead of slipping through.
//
//	go test -run='^$' -bench . -benchmem ./... | benchcheck \
//	    -zero-allocs 'CompressInto|SteadyStatePushPull' -out BENCH_ci.json
//
// Rules:
//   - Benchmarks matching -zero-allocs must report an allocs/op metric
//     (i.e. the run used -benchmem) and it must be exactly 0.
//   - -zero-allocs must match at least one parsed benchmark, so the gate
//     cannot be emptied by a rename.
//   - -speedup 'fastPat<slowPat:ratio' rules enforce relative performance:
//     the best ns/op matching fastPat must beat the best ns/op matching
//     slowPat by at least ratio (the fused-vs-staged kernel regression
//     gate).
//   - -min-metric 'pattern:unit:min' rules enforce custom-metric floors:
//     the best value of the metric among matching benchmarks must reach
//     min (the entropy-stage compression-ratio gate).
//   - Any `--- FAIL` or `FAIL` line in the input fails the gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Name is the full benchmark name including the -P GOMAXPROCS suffix,
	// e.g. "BenchmarkSteadyStatePushPull-8".
	Name string `json:"name"`
	// Iterations is the measured iteration count.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the ns/op value.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp is B/op; -1 when the run lacked -benchmem.
	BytesPerOp int64 `json:"bytes_per_op"`
	// AllocsPerOp is allocs/op; -1 when the run lacked -benchmem.
	AllocsPerOp int64 `json:"allocs_per_op"`
	// Extra holds custom metrics (unit -> value), e.g. "MB/s".
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Report is the JSON artifact schema.
type Report struct {
	// Benchmarks are all parsed results, in input order.
	Benchmarks []Benchmark `json:"benchmarks"`
	// ZeroAllocPattern is the enforced steady-state pattern.
	ZeroAllocPattern string `json:"zero_alloc_pattern,omitempty"`
	// Violations lists benchmarks that failed the allocation gate.
	Violations []string `json:"violations,omitempty"`
}

// benchLine matches "BenchmarkName-8   123   456 ns/op   [metrics...]".
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)

// Parse reads `go test -bench` output and returns the benchmark results
// plus whether the stream contained test failures.
func Parse(r io.Reader) ([]Benchmark, bool, error) {
	var out []Benchmark
	failed := false
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "--- FAIL") || trimmed == "FAIL" || strings.HasPrefix(trimmed, "FAIL\t") {
			failed = true
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{Name: m[1], Iterations: iters, BytesPerOp: -1, AllocsPerOp: -1}
		fields := strings.Fields(m[3])
		// Metrics come in value/unit pairs: "456 ns/op 0 B/op 0 allocs/op
		// 12.5 MB/s".
		for i := 0; i+1 < len(fields); i += 2 {
			val, unit := fields[i], fields[i+1]
			switch unit {
			case "ns/op":
				if v, err := strconv.ParseFloat(val, 64); err == nil {
					b.NsPerOp = v
				}
			case "B/op":
				if v, err := strconv.ParseInt(val, 10, 64); err == nil {
					b.BytesPerOp = v
				}
			case "allocs/op":
				if v, err := strconv.ParseInt(val, 10, 64); err == nil {
					b.AllocsPerOp = v
				}
			default:
				if v, err := strconv.ParseFloat(val, 64); err == nil {
					if b.Extra == nil {
						b.Extra = map[string]float64{}
					}
					b.Extra[unit] = v
				}
			}
		}
		out = append(out, b)
	}
	return out, failed, sc.Err()
}

// Check applies the zero-allocation gate and returns the violations.
func Check(benches []Benchmark, zeroAllocs *regexp.Regexp) []string {
	if zeroAllocs == nil {
		return nil
	}
	var violations []string
	matched := 0
	for _, b := range benches {
		if !zeroAllocs.MatchString(b.Name) {
			continue
		}
		matched++
		switch {
		case b.AllocsPerOp < 0:
			violations = append(violations,
				fmt.Sprintf("%s: no allocs/op metric (run the benchmark with -benchmem)", b.Name))
		case b.AllocsPerOp > 0:
			violations = append(violations,
				fmt.Sprintf("%s: %d allocs/op, steady state must be 0", b.Name, b.AllocsPerOp))
		}
	}
	if matched == 0 {
		violations = append(violations,
			fmt.Sprintf("pattern %q matched no benchmarks — renamed or missing steady-state benches empty the gate", zeroAllocs))
	}
	return violations
}

// CheckSpeedup enforces relative-performance gates. spec is a
// comma-separated list of "fastPat<slowPat:ratio" rules: the best (lowest)
// ns/op among benchmarks matching fastPat must be at least `ratio` times
// faster than the best ns/op matching slowPat. Either side matching
// nothing is a violation (a renamed benchmark cannot silently empty the
// gate). Best-of-matches keeps the gate stable under -cpu 1,4 runs, which
// emit one line per GOMAXPROCS value.
func CheckSpeedup(benches []Benchmark, spec string) []string {
	var violations []string
	for _, rule := range strings.Split(spec, ",") {
		rule = strings.TrimSpace(rule)
		if rule == "" {
			continue
		}
		lt := strings.SplitN(rule, "<", 2)
		if len(lt) != 2 {
			violations = append(violations, fmt.Sprintf("bad -speedup rule %q: want fastPat<slowPat:ratio", rule))
			continue
		}
		rest := strings.SplitN(lt[1], ":", 2)
		if len(rest) != 2 {
			violations = append(violations, fmt.Sprintf("bad -speedup rule %q: missing :ratio", rule))
			continue
		}
		ratio, err := strconv.ParseFloat(rest[1], 64)
		if err != nil || ratio <= 0 {
			violations = append(violations, fmt.Sprintf("bad -speedup ratio in %q", rule))
			continue
		}
		fast, err := bestNsPerOp(benches, lt[0])
		if err != nil {
			violations = append(violations, fmt.Sprintf("-speedup rule %q: %v", rule, err))
			continue
		}
		slow, err := bestNsPerOp(benches, rest[0])
		if err != nil {
			violations = append(violations, fmt.Sprintf("-speedup rule %q: %v", rule, err))
			continue
		}
		if fast*ratio > slow {
			violations = append(violations, fmt.Sprintf(
				"%s: %.0f ns/op is only %.2fx faster than %s (%.0f ns/op), want >= %.2fx",
				lt[0], fast, slow/fast, rest[0], slow, ratio))
		}
	}
	return violations
}

// CheckMinMetric enforces custom-metric floors. spec is a comma-separated
// list of "pattern:unit:min" rules: among benchmarks matching pattern that
// report the custom metric unit, the best (highest) value must be at least
// min. The entropy-stage gate uses it ("EntropyStage.*huffman:ratio:1.1" —
// the coded stream must stay >= 1.1x smaller than its input). A pattern
// matching no benchmark, or matching only benchmarks without the metric,
// is a violation: a renamed benchmark or dropped ReportMetric cannot
// silently empty the gate.
func CheckMinMetric(benches []Benchmark, spec string) []string {
	var violations []string
	for _, rule := range strings.Split(spec, ",") {
		rule = strings.TrimSpace(rule)
		if rule == "" {
			continue
		}
		// Split from the right: the unit and min value never contain
		// colons, the name pattern may.
		mi := strings.LastIndex(rule, ":")
		ui := strings.LastIndex(rule[:max(mi, 0)], ":")
		if mi <= 0 || ui <= 0 {
			violations = append(violations, fmt.Sprintf("bad -min-metric rule %q: want pattern:unit:min", rule))
			continue
		}
		pat, unit, minStr := rule[:ui], rule[ui+1:mi], rule[mi+1:]
		minVal, err := strconv.ParseFloat(minStr, 64)
		if err != nil {
			violations = append(violations, fmt.Sprintf("bad -min-metric floor in %q", rule))
			continue
		}
		re, err := regexp.Compile(pat)
		if err != nil {
			violations = append(violations, fmt.Sprintf("bad -min-metric pattern %q: %v", pat, err))
			continue
		}
		best, found := 0.0, false
		for _, b := range benches {
			if !re.MatchString(b.Name) {
				continue
			}
			v, ok := b.Extra[unit]
			if !ok {
				continue
			}
			if !found || v > best {
				best, found = v, true
			}
		}
		switch {
		case !found:
			violations = append(violations,
				fmt.Sprintf("-min-metric rule %q: no benchmark matching %q reports a %q metric", rule, pat, unit))
		case best < minVal:
			violations = append(violations,
				fmt.Sprintf("%s: best %s %.3f below required %.3f", pat, unit, best, minVal))
		}
	}
	return violations
}

// bestNsPerOp returns the lowest ns/op among benchmarks matching pat.
func bestNsPerOp(benches []Benchmark, pat string) (float64, error) {
	re, err := regexp.Compile(pat)
	if err != nil {
		return 0, fmt.Errorf("bad pattern %q: %v", pat, err)
	}
	best, found := 0.0, false
	for _, b := range benches {
		if !re.MatchString(b.Name) {
			continue
		}
		if !found || b.NsPerOp < best {
			best, found = b.NsPerOp, true
		}
	}
	if !found {
		return 0, fmt.Errorf("pattern %q matched no benchmarks", pat)
	}
	return best, nil
}

// CanonicalName normalizes a benchmark name for cross-source comparison:
// it strips the "Benchmark" prefix and the "-N" GOMAXPROCS suffix and
// maps underscores back to spaces (go test encodes sub-benchmark spaces
// as underscores), so the go-test line "BenchmarkCompressInto/3LC_(s=1.75)-8"
// and the 3lc-bench baseline entry "CompressInto/3LC (s=1.75)" compare
// equal.
func CanonicalName(name string) string {
	name = strings.TrimPrefix(name, "Benchmark")
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil && i+1 < len(name) {
			name = name[:i]
		}
	}
	return strings.ReplaceAll(name, "_", " ")
}

// CheckBaseline compares the parsed benchmarks against a committed
// baseline report (the benchcheck JSON schema, e.g. BENCH_local.json):
// for every baseline entry whose canonical name matches pattern, the best
// current ns/op with the same canonical name must not exceed the baseline
// ns/op by more than the tolerance fraction (cur <= base·(1+tolerance)).
// A matched baseline entry with no current counterpart is a violation —
// renaming a gated benchmark cannot silently empty the gate — and so is a
// pattern that matches nothing in the baseline. The tolerance absorbs
// machine-to-machine variance between where the baseline was recorded and
// where CI runs; it bounds order-of-magnitude regressions, not noise.
func CheckBaseline(benches []Benchmark, baseline []Benchmark, pattern string, tolerance float64) []string {
	re, err := regexp.Compile(pattern)
	if err != nil {
		return []string{fmt.Sprintf("bad -baseline-match pattern %q: %v", pattern, err)}
	}
	best := map[string]float64{}
	for _, b := range benches {
		cn := CanonicalName(b.Name)
		if cur, ok := best[cn]; !ok || b.NsPerOp < cur {
			best[cn] = b.NsPerOp
		}
	}
	var violations []string
	matched := 0
	for _, base := range baseline {
		cn := CanonicalName(base.Name)
		if !re.MatchString(cn) || base.NsPerOp <= 0 {
			continue
		}
		matched++
		cur, ok := best[cn]
		if !ok {
			violations = append(violations,
				fmt.Sprintf("baseline benchmark %q missing from input (renamed or not run?)", cn))
			continue
		}
		if cur > base.NsPerOp*(1+tolerance) {
			violations = append(violations, fmt.Sprintf(
				"%s: %.0f ns/op regresses past baseline %.0f ns/op + %.0f%% tolerance",
				cn, cur, base.NsPerOp, tolerance*100))
		}
	}
	if matched == 0 {
		violations = append(violations,
			fmt.Sprintf("-baseline-match %q matched no baseline entries — the regression gate is empty", pattern))
	}
	return violations
}

// LoadBaseline reads a benchcheck-schema JSON report.
func LoadBaseline(path string) ([]Benchmark, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return rep.Benchmarks, nil
}

// CheckRequired verifies each comma-separated pattern individually matches
// at least one benchmark. The -zero-allocs alternation alone cannot tell a
// complete run from one where a whole package's benchmarks went missing
// (crashed, renamed, filtered out): any single alternative satisfies it.
func CheckRequired(benches []Benchmark, patterns string) []string {
	var violations []string
	for _, pat := range strings.Split(patterns, ",") {
		pat = strings.TrimSpace(pat)
		if pat == "" {
			continue
		}
		re, err := regexp.Compile(pat)
		if err != nil {
			violations = append(violations, fmt.Sprintf("bad -require pattern %q: %v", pat, err))
			continue
		}
		found := false
		for _, b := range benches {
			if re.MatchString(b.Name) {
				found = true
				break
			}
		}
		if !found {
			violations = append(violations,
				fmt.Sprintf("required benchmark %q missing from input (crashed or renamed?)", pat))
		}
	}
	return violations
}

func main() {
	var (
		in         = flag.String("in", "", "bench output file (default: stdin)")
		out        = flag.String("out", "", "write JSON report to this file (e.g. BENCH_ci.json)")
		zeroAlloc  = flag.String("zero-allocs", "", "regexp of steady-state benchmarks that must report 0 allocs/op")
		require    = flag.String("require", "", "comma-separated regexps; each must match at least one benchmark")
		speedup    = flag.String("speedup", "", "comma-separated 'fastPat<slowPat:ratio' rules; best ns/op of fastPat must beat slowPat by ratio")
		minMetric  = flag.String("min-metric", "", "comma-separated 'pattern:unit:min' rules; best custom metric of matching benchmarks must reach min")
		requireAny = flag.Bool("require-benchmarks", true, "fail when the input contains no benchmark lines at all")
		baseline   = flag.String("baseline", "", "committed baseline report (benchcheck JSON schema) to gate regressions against")
		baseMatch  = flag.String("baseline-match", "", "regexp of canonical benchmark names the -baseline gate covers (empty: every baseline entry)")
		tolerance  = flag.Float64("tolerance", 0.25, "allowed fractional ns/op slowdown vs -baseline (0.25 = 25%)")
	)
	flag.Parse()

	src := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchcheck:", err)
			os.Exit(2)
		}
		defer f.Close()
		src = f
	}

	benches, failed, err := Parse(src)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck: read:", err)
		os.Exit(2)
	}

	var zre *regexp.Regexp
	if *zeroAlloc != "" {
		zre, err = regexp.Compile(*zeroAlloc)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchcheck: bad -zero-allocs pattern:", err)
			os.Exit(2)
		}
	}
	violations := Check(benches, zre)
	violations = append(violations, CheckRequired(benches, *require)...)
	violations = append(violations, CheckSpeedup(benches, *speedup)...)
	violations = append(violations, CheckMinMetric(benches, *minMetric)...)
	if *baseline != "" {
		base, err := LoadBaseline(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchcheck: baseline:", err)
			os.Exit(2)
		}
		violations = append(violations, CheckBaseline(benches, base, *baseMatch, *tolerance)...)
	}
	if *requireAny && len(benches) == 0 {
		violations = append(violations, "input contains no benchmark result lines")
	}
	if failed {
		violations = append(violations, "input contains go test FAIL lines")
	}

	rep := Report{Benchmarks: benches, ZeroAllocPattern: *zeroAlloc, Violations: violations}
	if *out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchcheck:", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchcheck:", err)
			os.Exit(2)
		}
	}

	fmt.Printf("benchcheck: %d benchmarks parsed\n", len(benches))
	for _, v := range violations {
		fmt.Println("benchcheck: FAIL:", v)
	}
	if len(violations) > 0 {
		os.Exit(1)
	}
}
