package main

import (
	"regexp"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: threelc/internal/compress
cpu: some cpu
BenchmarkCompressInto3LC-8   	     100	    123456 ns/op	       0 B/op	       0 allocs/op
BenchmarkCompressIntoInt8-8  	     200	     65432 ns/op	  33.95 MB/s	       0 B/op	       0 allocs/op
BenchmarkAllocatesALot-8     	      50	    999999 ns/op	    4096 B/op	      12 allocs/op
BenchmarkNoMemFlag-8         	     300	      1111 ns/op
PASS
ok  	threelc/internal/compress	1.234s
`

func TestParse(t *testing.T) {
	benches, failed, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if failed {
		t.Fatal("sample has no FAIL lines")
	}
	if len(benches) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", len(benches))
	}
	b := benches[0]
	if b.Name != "BenchmarkCompressInto3LC-8" || b.Iterations != 100 ||
		b.NsPerOp != 123456 || b.BytesPerOp != 0 || b.AllocsPerOp != 0 {
		t.Errorf("bench 0 parsed as %+v", b)
	}
	if got := benches[1].Extra["MB/s"]; got != 33.95 {
		t.Errorf("custom metric MB/s = %v, want 33.95", got)
	}
	if benches[2].AllocsPerOp != 12 {
		t.Errorf("allocs = %d, want 12", benches[2].AllocsPerOp)
	}
	if benches[3].AllocsPerOp != -1 || benches[3].BytesPerOp != -1 {
		t.Errorf("missing -benchmem must parse as -1, got %+v", benches[3])
	}
}

func TestParseDetectsFailures(t *testing.T) {
	for _, in := range []string{
		"--- FAIL: TestX (0.01s)\n",
		"FAIL\n",
		"FAIL\tthreelc/internal/ps\t0.1s\n",
	} {
		if _, failed, _ := Parse(strings.NewReader(in)); !failed {
			t.Errorf("input %q not flagged as failed", in)
		}
	}
	if _, failed, _ := Parse(strings.NewReader("PASS\nok x 1s\n")); failed {
		t.Error("passing input flagged as failed")
	}
}

func TestCheckZeroAllocGate(t *testing.T) {
	benches, _, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}

	if v := Check(benches, regexp.MustCompile("CompressInto")); len(v) != 0 {
		t.Errorf("clean steady-state benches violated: %v", v)
	}
	// An allocating bench under the pattern must violate.
	if v := Check(benches, regexp.MustCompile("CompressInto|AllocatesALot")); len(v) != 1 ||
		!strings.Contains(v[0], "12 allocs/op") {
		t.Errorf("allocating bench not caught: %v", v)
	}
	// A bench without -benchmem data cannot prove the property.
	if v := Check(benches, regexp.MustCompile("NoMemFlag")); len(v) != 1 ||
		!strings.Contains(v[0], "-benchmem") {
		t.Errorf("missing allocs metric not caught: %v", v)
	}
	// The gate must not silently match nothing.
	if v := Check(benches, regexp.MustCompile("Renamed")); len(v) != 1 ||
		!strings.Contains(v[0], "matched no benchmarks") {
		t.Errorf("empty match not caught: %v", v)
	}
	// No pattern, no gate.
	if v := Check(benches, nil); v != nil {
		t.Errorf("nil pattern produced violations: %v", v)
	}
}

const speedupSample = `BenchmarkFusedCompress/1M-1     100  2000000 ns/op  0 B/op  0 allocs/op
BenchmarkFusedCompress/1M-4     100  1500000 ns/op  0 B/op  0 allocs/op
BenchmarkStagedCompress/1M-1    100  9000000 ns/op  0 B/op  0 allocs/op
BenchmarkStagedCompress/1M-4    100  8000000 ns/op  0 B/op  0 allocs/op
`

func TestCheckSpeedup(t *testing.T) {
	benches, _, err := Parse(strings.NewReader(speedupSample))
	if err != nil {
		t.Fatal(err)
	}
	// Best-of-matches: 1.5ms fused vs 8ms staged = 5.3x, passes a 2x gate.
	if v := CheckSpeedup(benches, "FusedCompress/1M<StagedCompress/1M:2.0"); len(v) != 0 {
		t.Errorf("passing speedup reported violations: %v", v)
	}
	// An unachievable ratio must violate with the measured numbers.
	v := CheckSpeedup(benches, "FusedCompress/1M<StagedCompress/1M:10")
	if len(v) != 1 || !strings.Contains(v[0], "want >= 10") {
		t.Errorf("failing speedup not caught: %v", v)
	}
	// Either side matching nothing is a violation, not a silent pass.
	if v := CheckSpeedup(benches, "Renamed<StagedCompress/1M:1.5"); len(v) != 1 ||
		!strings.Contains(v[0], "matched no benchmarks") {
		t.Errorf("empty fast side not caught: %v", v)
	}
	if v := CheckSpeedup(benches, "FusedCompress/1M<Gone:1.5"); len(v) != 1 ||
		!strings.Contains(v[0], "matched no benchmarks") {
		t.Errorf("empty slow side not caught: %v", v)
	}
	// Malformed rules are violations.
	for _, bad := range []string{"NoSeparator", "A<B", "A<B:zero", "A<B:-1"} {
		if v := CheckSpeedup(benches, bad); len(v) != 1 {
			t.Errorf("malformed rule %q not reported: %v", bad, v)
		}
	}
	if v := CheckSpeedup(benches, ""); v != nil {
		t.Errorf("empty -speedup produced violations: %v", v)
	}
}

func TestCanonicalName(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"BenchmarkSteadyStatePushPull-8", "SteadyStatePushPull"},
		{"BenchmarkCompressInto/3LC_(s=1.75)-16", "CompressInto/3LC (s=1.75)"},
		{"SteadyStatePushPull", "SteadyStatePushPull"},
		{"CompressInto/3LC (s=1.75)", "CompressInto/3LC (s=1.75)"},
		{"BenchmarkDecodeAdd/1M-4", "DecodeAdd/1M"},
		{"DecodeAdd/1M", "DecodeAdd/1M"},
	} {
		if got := CanonicalName(tc.in); got != tc.want {
			t.Errorf("CanonicalName(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestCheckBaseline(t *testing.T) {
	cur, _, err := Parse(strings.NewReader(
		"BenchmarkSteadyStatePushPull-8  100  2000000 ns/op  0 B/op  0 allocs/op\n" +
			"BenchmarkDecodeAdd/1M-8  100  500000 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	base := []Benchmark{
		{Name: "SteadyStatePushPull", NsPerOp: 1800000},
		{Name: "DecodeAdd/1M", NsPerOp: 450000},
		{Name: "CompressInto/3LC (s=1.75)", NsPerOp: 1},
	}
	// Within a 25% tolerance: 2.0ms vs 1.8ms baseline passes.
	if v := CheckBaseline(cur, base, "SteadyStatePushPull|DecodeAdd", 0.25); len(v) != 0 {
		t.Errorf("in-tolerance run reported violations: %v", v)
	}
	// A tight tolerance catches the 11% slowdown.
	v := CheckBaseline(cur, base, "SteadyStatePushPull", 0.05)
	if len(v) != 1 || !strings.Contains(v[0], "regresses past baseline") {
		t.Errorf("regression not caught: %v", v)
	}
	// A gated baseline entry missing from the run is a violation.
	v = CheckBaseline(cur, base, "CompressInto", 0.25)
	if len(v) != 1 || !strings.Contains(v[0], "missing from input") {
		t.Errorf("missing benchmark not caught: %v", v)
	}
	// A pattern matching nothing in the baseline empties the gate: violation.
	v = CheckBaseline(cur, base, "Renamed", 0.25)
	if len(v) != 1 || !strings.Contains(v[0], "matched no baseline entries") {
		t.Errorf("empty gate not caught: %v", v)
	}
}

func TestCheckRequired(t *testing.T) {
	benches, _, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if v := CheckRequired(benches, "CompressInto3LC,CompressIntoInt8, NoMemFlag"); len(v) != 0 {
		t.Errorf("present benches reported missing: %v", v)
	}
	// Each missing pattern is its own violation: a crashed package cannot
	// hide behind the other packages' benchmarks.
	v := CheckRequired(benches, "CompressInto,SteadyStatePushPull,Quartic")
	if len(v) != 2 ||
		!strings.Contains(v[0], "SteadyStatePushPull") ||
		!strings.Contains(v[1], "Quartic") {
		t.Errorf("missing benches not each reported: %v", v)
	}
	if v := CheckRequired(benches, "["); len(v) != 1 || !strings.Contains(v[0], "bad -require pattern") {
		t.Errorf("bad pattern not reported: %v", v)
	}
	if v := CheckRequired(benches, ""); v != nil {
		t.Errorf("empty -require produced violations: %v", v)
	}
}

func TestCheckMinMetric(t *testing.T) {
	sample := `
BenchmarkEntropyStage/huffman-8    100    5000 ns/op    1.42 ratio    120 MB/s
BenchmarkEntropyStage/lz-8         100    4000 ns/op    1.18 ratio
BenchmarkEntropyStage/stored-8     100     900 ns/op
`
	benches, _, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if v := CheckMinMetric(benches, "EntropyStage:ratio:1.1"); len(v) != 0 {
		t.Errorf("passing min-metric reported violations: %v", v)
	}
	// Best-of-matches: huffman's 1.42 carries the shared pattern.
	if v := CheckMinMetric(benches, "EntropyStage:ratio:1.3"); len(v) != 0 {
		t.Errorf("best-of-matches not applied: %v", v)
	}
	v := CheckMinMetric(benches, "EntropyStage/lz:ratio:1.3")
	if len(v) != 1 || !strings.Contains(v[0], "below required") {
		t.Errorf("failing floor not caught: %v", v)
	}
	// Matching benchmarks that never report the metric is a violation.
	if v := CheckMinMetric(benches, "EntropyStage/stored:ratio:1.1"); len(v) != 1 ||
		!strings.Contains(v[0], "reports a") {
		t.Errorf("missing metric not caught: %v", v)
	}
	if v := CheckMinMetric(benches, "Renamed:ratio:1.1"); len(v) != 1 {
		t.Errorf("empty pattern not caught: %v", v)
	}
	// Multiple rules accumulate independently.
	if v := CheckMinMetric(benches, "EntropyStage:ratio:1.1, EntropyStage:MB/s:100"); len(v) != 0 {
		t.Errorf("multi-rule spec failed: %v", v)
	}
	for _, bad := range []string{"NoColons", "A:ratio", "A:ratio:x"} {
		if v := CheckMinMetric(benches, bad); len(v) != 1 {
			t.Errorf("malformed rule %q not reported: %v", bad, v)
		}
	}
	if v := CheckMinMetric(benches, ""); v != nil {
		t.Errorf("empty -min-metric produced violations: %v", v)
	}
}
