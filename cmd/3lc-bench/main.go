// Command 3lc-bench regenerates the tables and figures of the paper's
// evaluation section on the simulated substrate.
//
//	3lc-bench -exp table1          # Table 1: speedups + accuracy
//	3lc-bench -exp table2          # Table 2: compression ratios
//	3lc-bench -exp fig4            # Figure 4: time/accuracy @ 10 Mbps
//	3lc-bench -exp fig7            # Figure 7: loss/accuracy series
//	3lc-bench -exp fig9            # Figure 9: bits per state change series
//	3lc-bench -exp shard           # sharded-PS scaling: shard count x codec
//	3lc-bench -exp agg             # aggregation: workers x codec decode-add throughput
//	3lc-bench -exp wan             # hierarchical aggregation over slow inter-region links
//	3lc-bench -exp all             # everything
//
// Runs are cached within a single invocation, so "-exp all" reuses the
// 100%-budget runs across Table 1 and Figures 4-9.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"threelc/internal/compress"
	"threelc/internal/encode"
	"threelc/internal/entropy"
	"threelc/internal/experiments"
	"threelc/internal/kernel"
	"threelc/internal/kernel/simd"
	"threelc/internal/nn"
	"threelc/internal/opt"
	"threelc/internal/ps"
	"threelc/internal/quant"
	"threelc/internal/region"
	"threelc/internal/tensor"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: table1 | table2 | fig4 | fig5 | fig6 | fig7 | fig8 | fig9 | arch | gradstats | codec | shard | agg | wan | all")
		iters    = flag.Int("iters", 20, "iterations per micro-benchmark measurement (-exp codec); the recorded baseline carries this count")
		steps    = flag.Int("steps", 0, "override standard training steps (default from suite)")
		workers  = flag.Int("workers", 0, "override worker count")
		shards   = flag.String("shards", "1,2,4", "comma-separated shard counts for -exp shard")
		resnet   = flag.Bool("resnet", false, "use the MicroResNet workload instead of the MLP")
		quiet    = flag.Bool("quiet", false, "suppress per-run progress lines")
		every    = flag.Int("series-every", 10, "subsampling interval for printed series")
		csvDir   = flag.String("csv", "", "also write results as CSV files into this directory")
		regions  = flag.Int("regions", 2, "region count for -exp wan")
		wanMbps  = flag.Float64("wan-mbps", 100, "inter-region link bandwidth in Mbps for -exp wan")
		wanLatMs = flag.Float64("wan-latency-ms", 20, "one-way inter-region latency in ms for -exp wan")
		benchOut = flag.String("bench-out", "", "with -exp codec: write a benchcheck-schema JSON baseline (e.g. BENCH_local.json)")
	)
	flag.Parse()

	writeCSV := func(name string, emit func(w *os.File) error) error {
		if *csvDir == "" {
			return nil
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
		fp, err := os.Create(filepath.Join(*csvDir, name))
		if err != nil {
			return err
		}
		defer fp.Close()
		return emit(fp)
	}

	opt := experiments.DefaultOptions()
	if *steps > 0 {
		opt.StandardSteps = *steps
	}
	if *workers > 0 {
		opt.Workers = *workers
	}
	opt.UseResNet = *resnet
	if !*quiet {
		opt.Progress = os.Stderr
	}
	suite := experiments.NewSuite(opt)

	run := func(name string) error {
		switch name {
		case "table1":
			rows, err := experiments.Table1(suite)
			if err != nil {
				return err
			}
			experiments.PrintTable1(os.Stdout, rows)
			if err := writeCSV("table1.csv", func(w *os.File) error {
				return experiments.WriteTable1CSV(w, rows)
			}); err != nil {
				return err
			}
		case "table2":
			rows, err := experiments.Table2(suite)
			if err != nil {
				return err
			}
			experiments.PrintTable2(os.Stdout, rows)
			if err := writeCSV("table2.csv", func(w *os.File) error {
				return experiments.WriteTable2CSV(w, rows)
			}); err != nil {
				return err
			}
		case "arch":
			rows := experiments.ArchitectureContrast(16)
			experiments.PrintArchitectureContrast(os.Stdout, rows)
		case "codec":
			records := codecBench(os.Stdout, *iters)
			if *benchOut != "" {
				if err := writeBenchJSON(*benchOut, records); err != nil {
					return err
				}
				fmt.Fprintf(os.Stderr, "wrote %s\n", *benchOut)
			}
		case "agg":
			var progress io.Writer
			if !*quiet {
				progress = os.Stderr
			}
			rows, err := experiments.AggregateScaling(experiments.AggregateScalingDesigns(), []int{1, 2, 4, 8}, 1<<20, progress)
			if err != nil {
				return err
			}
			experiments.PrintAggregateScaling(os.Stdout, rows)
			if err := writeCSV("agg.csv", func(w *os.File) error {
				return experiments.WriteAggregateScalingCSV(w, rows)
			}); err != nil {
				return err
			}
		case "shard":
			counts, err := parseShardCounts(*shards)
			if err != nil {
				return err
			}
			var progress io.Writer
			if !*quiet {
				progress = os.Stderr
			}
			w := 2
			if *workers > 0 {
				w = *workers
			}
			st := 6
			if *steps > 0 {
				st = *steps
			}
			rows, err := experiments.ShardScaling(experiments.ShardScalingDesigns(), counts, w, st, progress)
			if err != nil {
				return err
			}
			experiments.PrintShardScaling(os.Stdout, rows)
			if err := writeCSV("shard.csv", func(w *os.File) error {
				return experiments.WriteShardScalingCSV(w, rows)
			}); err != nil {
				return err
			}
		case "wan":
			var progress io.Writer
			if !*quiet {
				progress = os.Stderr
			}
			w, st := 4, 12
			if *workers > 0 {
				w = *workers
			}
			if *steps > 0 {
				st = *steps
			}
			bw, lat := *wanMbps*1e6, *wanLatMs*1e-3
			rows, err := experiments.WANSweep(experiments.WANDesigns(), experiments.WANTopologies(*regions), w, st, bw, lat, progress)
			if err != nil {
				return err
			}
			experiments.PrintWANSweep(os.Stdout, rows, bw, lat)
			if err := writeCSV("wan.csv", func(w *os.File) error {
				return experiments.WriteWANSweepCSV(w, rows)
			}); err != nil {
				return err
			}
		case "gradstats":
			rows, err := experiments.GradientStatistics(suite, 1.0, 25)
			if err != nil {
				return err
			}
			experiments.PrintGradStats(os.Stdout, rows, 1.0)
		case "fig4", "fig5", "fig6":
			var curves []experiments.Curve
			var err error
			var title string
			switch name {
			case "fig4":
				curves, err = experiments.Figure4(suite)
				title = "Figure 4: Training time and test accuracy using 25/50/75/100% of standard training steps @ 10 Mbps"
			case "fig5":
				curves, err = experiments.Figure5(suite)
				title = "Figure 5: Training time and test accuracy using 25/50/75/100% of standard training steps @ 100 Mbps"
			case "fig6":
				curves, err = experiments.Figure6(suite)
				title = "Figure 6: Training time and test accuracy using 25/50/75/100% of standard training steps @ 1 Gbps"
			}
			if err != nil {
				return err
			}
			experiments.PrintCurves(os.Stdout, title, curves)
			if err := writeCSV(name+".csv", func(w *os.File) error {
				return experiments.WriteCurvesCSV(w, curves)
			}); err != nil {
				return err
			}
		case "fig7":
			series, err := experiments.Figure7(suite)
			if err != nil {
				return err
			}
			experiments.PrintFigure7(os.Stdout, series, *every)
			if err := writeCSV("fig7.csv", func(w *os.File) error {
				return experiments.WriteSeriesCSV(w, series)
			}); err != nil {
				return err
			}
		case "fig8":
			curves, err := experiments.Figure8(suite)
			if err != nil {
				return err
			}
			experiments.PrintCurves(os.Stdout,
				"Figure 8: Training time and test accuracy with a varied sparsity multiplier (s) @ 10 Mbps", curves)
			if err := writeCSV("fig8.csv", func(w *os.File) error {
				return experiments.WriteCurvesCSV(w, curves)
			}); err != nil {
				return err
			}
		case "fig9":
			series, err := experiments.Figure9(suite)
			if err != nil {
				return err
			}
			experiments.PrintFigure9(os.Stdout, series, *every)
			if err := writeCSV("fig9.csv", func(w *os.File) error {
				return experiments.WriteBitsCSV(w, series)
			}); err != nil {
				return err
			}
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		fmt.Println()
		return nil
	}

	var names []string
	if *exp == "all" {
		names = []string{"table1", "table2", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "shard", "agg", "wan"}
	} else {
		names = []string{*exp}
	}
	for _, n := range names {
		if err := run(n); err != nil {
			fmt.Fprintln(os.Stderr, "3lc-bench:", err)
			os.Exit(1)
		}
	}
}

// parseShardCounts parses the -shards flag ("1,2,4") into shard counts.
func parseShardCounts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad shard count %q (want positive integers, e.g. -shards 1,2,4)", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-shards lists no counts")
	}
	return out, nil
}

// benchRecord is one benchcheck-schema benchmark entry for the
// BENCH_local.json perf-trajectory baseline (-bench-out). Field names
// match cmd/benchcheck's Report so the local baseline and the CI artifact
// diff directly.
type benchRecord struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

type benchReport struct {
	Benchmarks []benchRecord `json:"benchmarks"`
}

// writeBenchJSON writes the collected codec measurements as a
// benchcheck-compatible JSON baseline.
func writeBenchJSON(path string, records []benchRecord) error {
	data, err := json.MarshalIndent(benchReport{Benchmarks: records}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// codecBench is a quick in-process measurement of the zero-allocation
// compression pipeline: steady-state CompressInto throughput per scheme at
// 1M elements, the staged-vs-fused kernel comparison, the fused
// decode-accumulate vs decode-then-add aggregation comparison, the full
// parameter-server push/pull round trip, and the chunked parallel
// quartic-encode speedup. It is the CLI companion of the -benchmem
// benchmarks (`go test -bench 'Fused|Staged|DecodeAdd|SteadyState'
// -benchmem ./internal/...`), for eyeballing on a target machine without
// the test harness; the returned records feed the -bench-out baseline,
// with names matching the go-test benchmarks so cmd/benchcheck's
// -baseline gate can compare them directly.
func codecBench(w *os.File, iters int) []benchRecord {
	const n = 1 << 20
	if iters < 1 {
		iters = 1
	}
	rng := tensor.NewRNG(4)
	in := tensor.New(n)
	tensor.FillNormal(in, 0.01, rng)
	var records []benchRecord

	measure := func(iters int, fn func()) time.Duration {
		fn() // warm up scratch buffers
		best := time.Duration(1<<63 - 1)
		for trial := 0; trial < 3; trial++ {
			start := time.Now()
			for i := 0; i < iters; i++ {
				fn()
			}
			if d := time.Since(start) / time.Duration(iters); d < best {
				best = d
			}
		}
		return best
	}

	fmt.Fprintf(w, "Codec micro-benchmark: steady-state CompressInto at %d elements (%d MiB raw)\n\n", n, 4*n>>20)
	fmt.Fprintf(w, "%-22s %12s %10s %12s\n", "design", "ns/op", "MB/s", "bits/elem")
	cases := []struct {
		name string
		s    compress.Scheme
		o    compress.Options
	}{
		{"32-bit float", compress.SchemeNone, compress.Options{}},
		{"8-bit int", compress.SchemeInt8, compress.Options{}},
		{"Stoch 3-value + QE", compress.SchemeStoch3QE, compress.Options{Seed: 1}},
		{"MQE 1-bit int", compress.SchemeMQE1Bit, compress.Options{}},
		{"25% sparsification", compress.SchemeTopK, compress.Options{Fraction: 0.25, Seed: 1}},
		{"3LC (s=1.00)", compress.SchemeThreeLC, compress.Options{Sparsity: 1.0, ZeroRun: true}},
		{"3LC (s=1.75)", compress.SchemeThreeLC, compress.Options{Sparsity: 1.75, ZeroRun: true}},
	}
	for _, c := range cases {
		ctx := compress.New(c.s, []int{n}, c.o)
		var wire []byte
		d := measure(iters, func() { wire = ctx.CompressInto(in, wire[:0]) })
		mbps := float64(4*n) / d.Seconds() / 1e6
		bits := float64(len(wire)) * 8 / float64(n)
		fmt.Fprintf(w, "%-22s %12d %10.0f %12.2f\n", c.name, d.Nanoseconds(), mbps, bits)
		records = append(records, benchRecord{
			Name: "CompressInto/" + c.name, Iterations: int64(iters), NsPerOp: float64(d.Nanoseconds()),
			BytesPerOp: -1, AllocsPerOp: -1,
			Extra: map[string]float64{"MB/s": mbps, "bits/elem": bits},
		})
	}

	// Aggregation: fused decode-accumulate vs staged decode-then-add on a
	// 3LC wire (the server-side AddPush hot path). Names match the
	// go-test benchmarks in internal/kernel.
	{
		ctx := compress.New(compress.SchemeThreeLC, []int{n}, compress.Options{Sparsity: 1.75, ZeroRun: true})
		wire := ctx.CompressInto(in, nil)
		sum := tensor.New(n)
		scratch := tensor.New(n)
		fused := measure(iters, func() {
			if err := compress.DecompressAddInto(wire, sum, 1); err != nil {
				panic(err)
			}
		})
		staged := measure(iters, func() {
			if err := compress.DecompressInto(wire, scratch); err != nil {
				panic(err)
			}
			sum.Add(scratch)
		})
		fmt.Fprintf(w, "\nAggregation (decode one 1M-element 3LC push into the gradient sum):\n")
		fmt.Fprintf(w, "  decode-then-add %8d ns/op\n", staged.Nanoseconds())
		fmt.Fprintf(w, "  decode-add      %8d ns/op  (%.2fx, single fused pass)\n",
			fused.Nanoseconds(), float64(staged)/float64(fused))
		records = append(records,
			benchRecord{Name: "DecodeThenAdd/1M", Iterations: int64(iters), NsPerOp: float64(staged.Nanoseconds()), BytesPerOp: -1, AllocsPerOp: -1},
			benchRecord{Name: "DecodeAdd/1M", Iterations: int64(iters), NsPerOp: float64(fused.Nanoseconds()), BytesPerOp: -1, AllocsPerOp: -1,
				Extra: map[string]float64{"speedup": float64(staged) / float64(fused)}})
	}

	// mkStep builds one full push/pull round trip (the ps steady-state
	// benchmark workload) over the given model maker and config tweak.
	mkStep := func(model func() *nn.Model, tweak func(*ps.Config)) func() {
		cfg := ps.Config{
			Scheme:           compress.SchemeThreeLC,
			Opts:             compress.Options{Sparsity: 1.75, ZeroRun: true},
			Workers:          1,
			MinCompressElems: 8, // matches internal/ps's benchmark config
			Parallelism:      1,
			Optimizer:        opt.DefaultSGDConfig(1, 1000),
		}
		if tweak != nil {
			tweak(&cfg)
		}
		global := model()
		server := ps.NewServer(global, cfg)
		m := model()
		m.CopyParamsFrom(global)
		worker := ps.NewWorker(0, m, cfg)
		grng := tensor.NewRNG(31)
		for _, p := range worker.Model.Params() {
			tensor.FillNormal(p.G, 0.01, grng)
		}
		return func() {
			wires, _ := worker.CompressGrads()
			server.BeginStep()
			if _, err := server.AddPush(0, wires); err != nil {
				panic(err)
			}
			pull, _, err := server.FinishStep()
			if err != nil {
				panic(err)
			}
			if _, err := worker.ApplyPull(pull); err != nil {
				panic(err)
			}
		}
	}
	benchModel := func() *nn.Model { return nn.NewMLP(784, []int{256}, 10, 1) }

	// Full parameter-server round trip — the committed perf baseline the
	// CI bench leg gates BenchmarkSteadyStatePushPull against.
	{
		fusedStep := measure(iters, mkStep(benchModel, nil))
		stagedStep := measure(iters, mkStep(benchModel, func(c *ps.Config) { c.StagedAggregate = true }))
		fmt.Fprintf(w, "\nSteady-state push/pull round trip (ps, MLP 784-256-10, serial codecs):\n")
		fmt.Fprintf(w, "  staged aggregate %8d ns/op\n", stagedStep.Nanoseconds())
		fmt.Fprintf(w, "  fused aggregate  %8d ns/op  (%.2fx)\n",
			fusedStep.Nanoseconds(), float64(stagedStep)/float64(fusedStep))
		records = append(records,
			benchRecord{Name: "SteadyStatePushPull", Iterations: int64(iters), NsPerOp: float64(fusedStep.Nanoseconds()), BytesPerOp: -1, AllocsPerOp: -1},
			benchRecord{Name: "SteadyStatePushPullStaged", Iterations: int64(iters), NsPerOp: float64(stagedStep.Nanoseconds()), BytesPerOp: -1, AllocsPerOp: -1})
	}

	// Small-tensor batching: the same round trip on a many-tiny-tensor
	// model (100 hidden layers of width 8, ~200 tensors of at most 64
	// elements) with the batched arena path on vs off. Wires and state are
	// bit-identical either way; on a serial host the contract is parity
	// (per-member kernel work dominates), with the batch collapsing ~200
	// pool jobs per phase into one.
	{
		tinyModel := func() *nn.Model {
			hidden := make([]int, 100)
			for i := range hidden {
				hidden[i] = 8
			}
			return nn.NewMLP(8, hidden, 3, 1)
		}
		batched := measure(iters, mkStep(tinyModel, nil))
		unbatched := measure(iters, mkStep(tinyModel, func(c *ps.Config) { c.SmallTensorElems = -1 }))
		fmt.Fprintf(w, "\nSmall-tensor batching (push/pull round trip, MLP 8-8x100-3, ~200 tiny tensors):\n")
		fmt.Fprintf(w, "  per-tensor jobs  %8d ns/op\n", unbatched.Nanoseconds())
		fmt.Fprintf(w, "  batched arena    %8d ns/op  (%.2fx)\n",
			batched.Nanoseconds(), float64(unbatched)/float64(batched))
		records = append(records,
			benchRecord{Name: "SteadyStatePushPullTiny", Iterations: int64(iters), NsPerOp: float64(batched.Nanoseconds()), BytesPerOp: -1, AllocsPerOp: -1},
			benchRecord{Name: "SteadyStatePushPullTinyUnbatched", Iterations: int64(iters), NsPerOp: float64(unbatched.Nanoseconds()), BytesPerOp: -1, AllocsPerOp: -1})
	}

	// Streaming entropy second stage over the 1M-element 3LC quartic wire
	// (the paper's §5.3 comparison workload). Record names match
	// internal/entropy's BenchmarkEntropyStage sub-benchmarks; the encode
	// ratio feeds the CI -min-metric floor.
	{
		ctx := compress.New(compress.SchemeThreeLC, []int{n}, compress.Options{Sparsity: 1.0, ZeroRun: true})
		raw := ctx.CompressInto(in, nil)
		fmt.Fprintf(w, "\nEntropy second stage (over the %d-byte 3LC s=1.00 quartic wire):\n", len(raw))
		fmt.Fprintf(w, "  %-8s %14s %7s %14s %7s\n", "stage", "encode ns/op", "ratio", "decode ns/op", "MB/s")
		stages := []struct {
			name   string
			encode func(dst, src []byte) []byte
			decode func(dst, src []byte) ([]byte, error)
		}{
			{"huffman", entropy.HuffmanEncodeInto, entropy.HuffmanDecodeInto},
			{"lz", entropy.LZEncodeInto, entropy.LZDecodeInto},
		}
		for _, s := range stages {
			var coded, back []byte
			enc := measure(iters, func() { coded = s.encode(coded[:0], raw) })
			ratio := float64(len(raw)) / float64(len(coded))
			dec := measure(iters, func() {
				var err error
				if back, err = s.decode(back[:0], coded); err != nil {
					panic(err)
				}
			})
			decMBps := float64(len(raw)) / dec.Seconds() / 1e6
			fmt.Fprintf(w, "  %-8s %14d %6.2fx %14d %7.0f\n",
				s.name, enc.Nanoseconds(), ratio, dec.Nanoseconds(), decMBps)
			records = append(records,
				benchRecord{Name: "EntropyStage/" + s.name + "-encode", Iterations: int64(iters), NsPerOp: float64(enc.Nanoseconds()), BytesPerOp: -1, AllocsPerOp: -1,
					Extra: map[string]float64{"ratio": ratio}},
				benchRecord{Name: "EntropyStage/" + s.name + "-decode", Iterations: int64(iters), NsPerOp: float64(dec.Nanoseconds()), BytesPerOp: -1, AllocsPerOp: -1,
					Extra: map[string]float64{"MB/s": decMBps}})
		}
	}

	// Hierarchical push/pull: a full two-region recompress step (fused
	// decode-accumulate, re-encode with the entropy stage, global tier
	// update) against a real parameter server. Mirrors internal/region's
	// BenchmarkHierarchicalPushPull workload.
	{
		model := nn.NewMLP(256, []int{64}, 8, 1)
		cfg := ps.Config{
			Scheme:           compress.SchemeThreeLC,
			Opts:             compress.Options{Sparsity: 1.0, ZeroRun: true},
			Workers:          4,
			MinCompressElems: 1,
			Parallelism:      1,
			Optimizer:        opt.DefaultSGDConfig(4, 1000),
		}
		inner := ps.NewServer(model, cfg)
		tier, err := region.NewTier(inner, model.Params(), region.Config{
			Regions: 2, Workers: 4, Recompress: true,
			Scheme:           compress.SchemeThreeLC,
			Opts:             compress.Options{Sparsity: 1.0, ZeroRun: true},
			Entropy:          compress.EntropyHuffman,
			MinCompressElems: 1,
			Parallelism:      1,
		})
		if err != nil {
			panic(err)
		}
		params := model.Params()
		rng := tensor.NewRNG(7)
		wires := make([][][]byte, 4)
		for wk := range wires {
			wires[wk] = make([][]byte, len(params))
			for i, p := range params {
				g := tensor.New(p.W.Shape()...)
				tensor.FillNormal(g, 0.01, rng)
				c := compress.New(compress.SchemeThreeLC, p.W.Shape(), compress.Options{Sparsity: 1.0, ZeroRun: true, Seed: uint64(wk*31 + i)})
				wires[wk][i] = c.CompressInto(g, nil)
			}
		}
		d := measure(iters, func() {
			tier.BeginStep()
			for wk := 0; wk < 4; wk++ {
				sess := tier.BeginPush(wk)
				if err := sess.Set(wires[wk]); err != nil {
					panic(err)
				}
				if err := sess.End(); err != nil {
					panic(err)
				}
			}
			if _, _, err := tier.FinishStep(); err != nil {
				panic(err)
			}
		})
		push, pull := tier.WANBytes()
		wan := 0
		for r := range push {
			wan += push[r] + pull[r]
		}
		fmt.Fprintf(w, "\nHierarchical push/pull (2 regions x 2 workers, recompress + Huffman WAN stage, MLP 256-64-8):\n")
		fmt.Fprintf(w, "  %8d ns/op  %d WAN bytes/step\n", d.Nanoseconds(), wan)
		records = append(records, benchRecord{
			Name: "HierarchicalPushPull", Iterations: int64(iters), NsPerOp: float64(d.Nanoseconds()),
			BytesPerOp: -1, AllocsPerOp: -1,
			Extra: map[string]float64{"wan-bytes/step": float64(wan)},
		})
	}

	// Dispatched kernel tiers: the fused ternary encode and the LUT
	// decode-add sweep at 1M elements on every tier this CPU/build can run,
	// against the memcpy roofline for scale. Record names match
	// internal/kernel's tier benchmarks.
	{
		orig := kernel.ActiveTier()
		feats := simd.Detect()
		snapshot := make([]float32, n)
		m := float64(kernel.AccumulateMaxAbs(snapshot, in.Data())) * 1.75
		buf := make([]float32, n)
		acc := make([]float32, n)
		dst := make([]float32, n)
		cp := measure(iters, func() { copy(dst, snapshot) })
		gbs := func(d time.Duration) float64 { return float64(4*n) / d.Seconds() / 1e9 }
		fmt.Fprintf(w, "\nKernel tiers at %d elements (auto tier %s, AVX2=%v, asm=%v; memcpy roofline %.1f GB/s):\n",
			n, orig, feats.AVX2, simd.HasAsm, gbs(cp))
		fmt.Fprintf(w, "  %-8s %14s %7s %18s %7s\n", "tier", "encode ns/op", "GB/s", "decode-add ns/op", "GB/s")
		var wire []byte
		for _, tier := range kernel.AvailableTiers() {
			kernel.SetTier(tier)
			// The encode consumes its buffer (it leaves the residual
			// behind), so each call restores from the snapshot and times
			// only the encode itself.
			copy(buf, snapshot)
			wire = kernel.EncodeTernary(buf, m, true, wire[:0]) // converge wire capacity
			encBest := time.Duration(1<<63 - 1)
			for trial := 0; trial < 3; trial++ {
				var total time.Duration
				for i := 0; i < iters; i++ {
					copy(buf, snapshot)
					start := time.Now()
					wire = kernel.EncodeTernary(buf, m, true, wire[:0])
					total += time.Since(start)
				}
				if d := total / time.Duration(iters); d < encBest {
					encBest = d
				}
			}
			dec := measure(iters, func() {
				if err := kernel.DecodeTernaryAdd(wire, true, float32(m), acc); err != nil {
					panic(err)
				}
			})
			fmt.Fprintf(w, "  %-8s %14d %7.1f %18d %7.1f\n",
				tier, encBest.Nanoseconds(), gbs(encBest), dec.Nanoseconds(), gbs(dec))
			records = append(records,
				benchRecord{Name: "EncodeTernaryKernel/" + tier.String() + "/1M", Iterations: int64(iters), NsPerOp: float64(encBest.Nanoseconds()), BytesPerOp: -1, AllocsPerOp: -1},
				benchRecord{Name: "DecodeAddKernel/" + tier.String() + "/1M", Iterations: int64(iters), NsPerOp: float64(dec.Nanoseconds()), BytesPerOp: -1, AllocsPerOp: -1})
		}
		kernel.SetTier(orig)
	}

	// Staged-vs-fused kernel comparison: what collapsing seven sweeps to
	// two (compress) and two to one (decode) buys on this machine.
	fmt.Fprintln(w)
	fusion := experiments.FusionSpeedup(n, 1.75)
	experiments.PrintFusionSpeedup(w, fusion)
	for _, r := range fusion {
		records = append(records,
			benchRecord{Name: "Staged/" + r.Name, Iterations: 3, NsPerOp: r.StagedNs, BytesPerOp: -1, AllocsPerOp: -1},
			benchRecord{Name: "Fused/" + r.Name, Iterations: 3, NsPerOp: r.FusedNs, BytesPerOp: -1, AllocsPerOp: -1,
				Extra: map[string]float64{"speedup": r.Speedup()}})
	}

	procs := runtime.GOMAXPROCS(0)
	tv := quant.Quantize3(in, 1.75)
	dst := make([]byte, encode.QuarticEncodedLen(n))
	serial := measure(5, func() { encode.QuarticEncodeInto(tv.Q, dst) })
	parallel := measure(5, func() { encode.QuarticEncodeParallel(tv.Q, dst, procs) })
	fmt.Fprintf(w, "\nChunked parallel quartic encode (%d elements, GOMAXPROCS=%d):\n", n, procs)
	fmt.Fprintf(w, "  serial   %8d ns/op\n", serial.Nanoseconds())
	fmt.Fprintf(w, "  parallel %8d ns/op  (%.2fx)\n", parallel.Nanoseconds(), float64(serial)/float64(parallel))
	if procs < 2 {
		fmt.Fprintln(w, "  (single-CPU host: no speedup expected; output is byte-identical either way)")
	}
	return records
}
