// Command 3lc-bench regenerates the tables and figures of the paper's
// evaluation section on the simulated substrate.
//
//	3lc-bench -exp table1          # Table 1: speedups + accuracy
//	3lc-bench -exp table2          # Table 2: compression ratios
//	3lc-bench -exp fig4            # Figure 4: time/accuracy @ 10 Mbps
//	3lc-bench -exp fig7            # Figure 7: loss/accuracy series
//	3lc-bench -exp fig9            # Figure 9: bits per state change series
//	3lc-bench -exp all             # everything
//
// Runs are cached within a single invocation, so "-exp all" reuses the
// 100%-budget runs across Table 1 and Figures 4-9.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"threelc/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: table1 | table2 | fig4 | fig5 | fig6 | fig7 | fig8 | fig9 | arch | gradstats | all")
		steps   = flag.Int("steps", 0, "override standard training steps (default from suite)")
		workers = flag.Int("workers", 0, "override worker count")
		resnet  = flag.Bool("resnet", false, "use the MicroResNet workload instead of the MLP")
		quiet   = flag.Bool("quiet", false, "suppress per-run progress lines")
		every   = flag.Int("series-every", 10, "subsampling interval for printed series")
		csvDir  = flag.String("csv", "", "also write results as CSV files into this directory")
	)
	flag.Parse()

	writeCSV := func(name string, emit func(w *os.File) error) error {
		if *csvDir == "" {
			return nil
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
		fp, err := os.Create(filepath.Join(*csvDir, name))
		if err != nil {
			return err
		}
		defer fp.Close()
		return emit(fp)
	}

	opt := experiments.DefaultOptions()
	if *steps > 0 {
		opt.StandardSteps = *steps
	}
	if *workers > 0 {
		opt.Workers = *workers
	}
	opt.UseResNet = *resnet
	if !*quiet {
		opt.Progress = os.Stderr
	}
	suite := experiments.NewSuite(opt)

	run := func(name string) error {
		switch name {
		case "table1":
			rows, err := experiments.Table1(suite)
			if err != nil {
				return err
			}
			experiments.PrintTable1(os.Stdout, rows)
			if err := writeCSV("table1.csv", func(w *os.File) error {
				return experiments.WriteTable1CSV(w, rows)
			}); err != nil {
				return err
			}
		case "table2":
			rows, err := experiments.Table2(suite)
			if err != nil {
				return err
			}
			experiments.PrintTable2(os.Stdout, rows)
			if err := writeCSV("table2.csv", func(w *os.File) error {
				return experiments.WriteTable2CSV(w, rows)
			}); err != nil {
				return err
			}
		case "arch":
			rows := experiments.ArchitectureContrast(16)
			experiments.PrintArchitectureContrast(os.Stdout, rows)
		case "gradstats":
			rows, err := experiments.GradientStatistics(suite, 1.0, 25)
			if err != nil {
				return err
			}
			experiments.PrintGradStats(os.Stdout, rows, 1.0)
		case "fig4", "fig5", "fig6":
			var curves []experiments.Curve
			var err error
			var title string
			switch name {
			case "fig4":
				curves, err = experiments.Figure4(suite)
				title = "Figure 4: Training time and test accuracy using 25/50/75/100% of standard training steps @ 10 Mbps"
			case "fig5":
				curves, err = experiments.Figure5(suite)
				title = "Figure 5: Training time and test accuracy using 25/50/75/100% of standard training steps @ 100 Mbps"
			case "fig6":
				curves, err = experiments.Figure6(suite)
				title = "Figure 6: Training time and test accuracy using 25/50/75/100% of standard training steps @ 1 Gbps"
			}
			if err != nil {
				return err
			}
			experiments.PrintCurves(os.Stdout, title, curves)
			if err := writeCSV(name+".csv", func(w *os.File) error {
				return experiments.WriteCurvesCSV(w, curves)
			}); err != nil {
				return err
			}
		case "fig7":
			series, err := experiments.Figure7(suite)
			if err != nil {
				return err
			}
			experiments.PrintFigure7(os.Stdout, series, *every)
			if err := writeCSV("fig7.csv", func(w *os.File) error {
				return experiments.WriteSeriesCSV(w, series)
			}); err != nil {
				return err
			}
		case "fig8":
			curves, err := experiments.Figure8(suite)
			if err != nil {
				return err
			}
			experiments.PrintCurves(os.Stdout,
				"Figure 8: Training time and test accuracy with a varied sparsity multiplier (s) @ 10 Mbps", curves)
			if err := writeCSV("fig8.csv", func(w *os.File) error {
				return experiments.WriteCurvesCSV(w, curves)
			}); err != nil {
				return err
			}
		case "fig9":
			series, err := experiments.Figure9(suite)
			if err != nil {
				return err
			}
			experiments.PrintFigure9(os.Stdout, series, *every)
			if err := writeCSV("fig9.csv", func(w *os.File) error {
				return experiments.WriteBitsCSV(w, series)
			}); err != nil {
				return err
			}
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		fmt.Println()
		return nil
	}

	var names []string
	if *exp == "all" {
		names = []string{"table1", "table2", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9"}
	} else {
		names = []string{*exp}
	}
	for _, n := range names {
		if err := run(n); err != nil {
			fmt.Fprintln(os.Stderr, "3lc-bench:", err)
			os.Exit(1)
		}
	}
}
