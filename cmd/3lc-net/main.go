// Command 3lc-net runs distributed training over REAL TCP connections on
// this machine: a parameter server listening on a loopback port and N
// worker processes' worth of goroutine clients pushing compressed
// gradients through actual sockets. It demonstrates that the wire formats
// and the BSP protocol work outside the simulator and reports the real
// bytes that crossed the network.
//
//	3lc-net -design 3lc -sparsity 1.75 -workers 4 -steps 50
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"threelc/internal/compress"
	"threelc/internal/data"
	"threelc/internal/nn"
	"threelc/internal/opt"
	"threelc/internal/ps"
	"threelc/internal/tensor"
	"threelc/internal/transport"
)

func main() {
	var (
		designName = flag.String("design", "3lc", "design: float32 | int8 | 3lc")
		sparsity   = flag.Float64("sparsity", 1.0, "3LC sparsity multiplier")
		workers    = flag.Int("workers", 4, "number of workers")
		steps      = flag.Int("steps", 50, "training steps")
		batch      = flag.Int("batch", 16, "per-worker batch size")
		addr       = flag.String("addr", "127.0.0.1:0", "listen address")
	)
	flag.Parse()

	var scheme compress.Scheme
	var opts compress.Options
	switch *designName {
	case "float32":
		scheme = compress.SchemeNone
	case "int8":
		scheme = compress.SchemeInt8
	case "3lc":
		scheme = compress.SchemeThreeLC
		opts = compress.Options{Sparsity: *sparsity, ZeroRun: true}
	default:
		fmt.Fprintf(os.Stderr, "3lc-net: unknown design %q\n", *designName)
		os.Exit(2)
	}

	dcfg := data.DefaultConfig()
	dcfg.Train, dcfg.Test = 1000, 300
	trainSet, testSet := data.Synthetic(dcfg)
	in := dcfg.C * dcfg.H * dcfg.W
	build := func() *nn.Model { return nn.NewMLP(in, []int{48}, dcfg.Classes, 1) }

	psCfg := ps.Config{
		Scheme:           scheme,
		Opts:             opts,
		Workers:          *workers,
		MinCompressElems: 256,
		Optimizer:        opt.TunedSGDConfig(*workers, *steps),
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "3lc-net:", err)
		os.Exit(1)
	}
	fmt.Printf("parameter server listening on %s\n", ln.Addr())

	global := build()
	server := transport.NewServer(ln, ps.NewServer(global, psCfg), *workers, *steps)
	serveErr := make(chan error, 1)
	go func() { serveErr <- server.Serve() }()

	start := time.Now()
	var wg sync.WaitGroup
	var firstWorker *ps.Worker
	var mu sync.Mutex
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			m := build()
			m.CopyParamsFrom(global)
			worker := ps.NewWorker(w, m, psCfg)
			if w == 0 {
				mu.Lock()
				firstWorker = worker
				mu.Unlock()
			}
			client, err := transport.Dial(ln.Addr().String(), w)
			if err != nil {
				fmt.Fprintln(os.Stderr, "3lc-net worker:", err)
				os.Exit(1)
			}
			defer client.Close()
			rng := tensor.NewRNG(uint64(w)*977 + 3)
			for s := 0; s < *steps; s++ {
				idx := make([]int, *batch)
				for i := range idx {
					idx[i] = rng.Intn(trainSet.Len())
				}
				x, labels := trainSet.FlatBatch(idx, nil, nil)
				worker.Model.TrainStep(x, labels)
				wires, _ := worker.CompressGrads()
				pull, err := client.PushPull(s, wires)
				if err != nil {
					fmt.Fprintln(os.Stderr, "3lc-net worker:", err)
					os.Exit(1)
				}
				if _, err := worker.ApplyPull(pull); err != nil {
					fmt.Fprintln(os.Stderr, "3lc-net worker:", err)
					os.Exit(1)
				}
			}
		}(w)
	}
	wg.Wait()
	if err := <-serveErr; err != nil {
		fmt.Fprintln(os.Stderr, "3lc-net server:", err)
		os.Exit(1)
	}
	elapsed := time.Since(start)

	nn.CopyBatchNormStats(global, firstWorker.Model)
	correct := 0
	idx := make([]int, testSet.Len())
	for i := range idx {
		idx[i] = i
	}
	x, labels := testSet.FlatBatch(idx, nil, nil)
	for i, p := range global.Predict(x) {
		if p == labels[i] {
			correct++
		}
	}

	push, pull := server.TrafficBytes()
	fmt.Printf("completed %d steps x %d workers over TCP in %v\n", *steps, *workers, elapsed.Round(time.Millisecond))
	fmt.Printf("test accuracy:    %.2f%%\n", 100*float64(correct)/float64(testSet.Len()))
	fmt.Printf("push bytes:       %d (received by server)\n", push)
	fmt.Printf("pull bytes:       %d (sent to workers)\n", pull)
	raw := int64(global.NumParams()) * 4 * int64(*steps) * int64(*workers)
	fmt.Printf("raw equivalent:   %d bytes each way; push compression %.1fx\n", raw, float64(raw)/float64(push))
}
