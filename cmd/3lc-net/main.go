// Command 3lc-net runs distributed training over REAL TCP connections on
// this machine: a parameter server listening on a loopback port and N
// worker processes' worth of goroutine clients pushing compressed
// gradients through actual sockets. It demonstrates that the wire formats
// and the BSP protocol work outside the simulator and reports the real
// bytes that crossed the network.
//
//	3lc-net -design 3lc -sparsity 1.75 -workers 4 -steps 50
//	3lc-net -design 3lc -workers 4 -steps 50 -shards 2   # sharded PS tier
//	3lc-net -shards 2 -replicas -kill-shard 0 -kill-step 25  # failover demo
//	3lc-net -tenants 8 -shards 2 -workers 2 -steps 20    # multi-tenant tier
//	3lc-net -regions 2 -workers 4 -steps 50              # hierarchical WAN tier
//	3lc-net -chaos -chaos-seed 7 -shards 2 -workers 2 -steps 6  # chaos soak
//
// With -chaos the run becomes the chaos soak: every registered codec is
// trained twice — once in-process (the clean reference) and once over
// real TCP with a deterministic fault injector (internal/chaos) wrapping
// every listener and dial while the connections run the full defense
// stack (CRC-32C frame checksums, resilient reconnect-and-replay, seeded
// retry backoff). The soak demands the faulted run's final model state
// be BIT-IDENTICAL to the clean reference for every codec, prints the
// injected-fault census, and exits non-zero on any divergence (or if no
// faults fired, which would prove nothing). -chaos ignores -design and
// is incompatible with the other topology modes.
//
// With -regions R > 1 the run becomes a two-level hierarchy: workers are
// split into R regions, each fronted by an aggregator (a region.Tier in
// recompress mode behind its own TCP listener). The aggregator fuses its
// local workers' pushes into one re-encoded residual stream per step and
// forwards it over the inter-region leg — a connection with the
// transport entropy second stage enabled (-wan-entropy) — to the global
// tier, which sees R region pushes instead of W worker pushes. The run
// reports local-leg and inter-region traffic separately; the headline is
// how many fewer bytes cross the slow link than the flat topology's
// every-worker-wire stream.
//
// With -tenants N > 1 the tier becomes a multi-tenant service: N
// independent jobs — each with its own model, dataset, and -workers
// worker connections — are admitted to ONE shared set of shards and run
// concurrently. Every shard has a single multiplexed listener
// (transport.MuxShardServer); the shard scheduler serves the tenants'
// aggregation work deficit-round-robin, and the run reports per-tenant
// accuracy, traffic, and queue-wait accounting.
//
// With -shards N > 1 the model's tensors are partitioned across N
// parameter-server shards (each with its own listener and codec
// contexts) and every worker holds one multiplexed connection per shard,
// pushing and pulling against all of them concurrently.
//
// With -replicas every shard gets a standby (transport.ShardReplica) fed
// by primary push forwarding; -kill-shard S -kill-step K then crashes
// shard S's primary at step K mid-run. Workers detect the death (read
// deadline or EOF), reconnect to the replica, replay the in-flight push
// (deduplicated on the per-step push identity), and finish the run — with
// final model state byte-identical to an unkilled run.
package main

import (
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"runtime"
	"strconv"
	"sync"
	"time"

	"threelc/internal/chaos"
	"threelc/internal/compress"
	"threelc/internal/data"
	"threelc/internal/nn"
	"threelc/internal/opt"
	"threelc/internal/ps"
	"threelc/internal/region"
	"threelc/internal/shard"
	"threelc/internal/tenant"
	"threelc/internal/tensor"
	"threelc/internal/transport"
)

func main() {
	var (
		designName = flag.String("design", "3lc", "design: float32 | int8 | 3lc")
		sparsity   = flag.Float64("sparsity", 1.0, "3LC sparsity multiplier")
		workers    = flag.Int("workers", 4, "number of workers")
		steps      = flag.Int("steps", 50, "training steps")
		batch      = flag.Int("batch", 16, "per-worker batch size")
		addr       = flag.String("addr", "127.0.0.1:0", "listen address")
		shards     = flag.Int("shards", 1, "parameter-server shard count; shard s listens on -addr's port + s (each shard gets its own listener; workers multiplex)")
		stream     = flag.Bool("stream", false, "per-tensor streamed pipeline: push each tensor as its compressor finishes (the server decode-aggregates it on arrival) and decode-apply pulls double-buffered; implies the shard-tier transport even at -shards 1")
		tenants    = flag.Int("tenants", 1, "concurrent tenant jobs multiplexed over one shared shard tier; each tenant trains its own model with its own -workers workers")
		replicas   = flag.Bool("replicas", false, "run one standby replica per shard (primary forwards pushes; workers fail over on primary death); implies the shard tier")
		killShard  = flag.Int("kill-shard", -1, "crash this shard's primary mid-run (requires -replicas)")
		killStep   = flag.Int("kill-step", -1, "step at which -kill-shard fires (default steps/2)")
		netTimeout = flag.Duration("net-timeout", 0, "per-frame read/write deadline on worker connections (failure detector for dead shards); 0 disables, except with -replicas where it defaults to 10s")
		regions    = flag.Int("regions", 1, "hierarchical two-level aggregation: split the workers into this many regions, each fronted by an aggregator that fuses local pushes and forwards ONE re-encoded stream per step across the inter-region leg; requires workers to divide evenly into regions")
		wanEntropy = flag.String("wan-entropy", "huffman", "entropy second stage on the inter-region leg (with -regions): huffman | lz | off")
		chaosSoak  = flag.Bool("chaos", false, "chaos soak: train every codec clean (in-process) and under deterministic fault injection (over TCP with checksums + resilient reconnect) and demand bit-identical final state; ignores -design")
		chaosSeed  = flag.Uint64("chaos-seed", 1, "fault schedule seed for -chaos (same seed, same per-connection fault schedule)")
	)
	flag.Parse()

	if *chaosSoak {
		if *stream || *replicas || *killShard >= 0 || *tenants > 1 || *regions > 1 {
			fmt.Fprintln(os.Stderr, "3lc-net: -chaos is incompatible with -stream, -replicas, -kill-shard, -tenants, and -regions")
			os.Exit(2)
		}
		if *shards < 1 {
			*shards = 1
		}
		runChaosSoak(*chaosSeed, *shards, *workers, *steps, *batch)
		return
	}

	var scheme compress.Scheme
	var opts compress.Options
	switch *designName {
	case "float32":
		scheme = compress.SchemeNone
	case "int8":
		scheme = compress.SchemeInt8
	case "3lc":
		scheme = compress.SchemeThreeLC
		opts = compress.Options{Sparsity: *sparsity, ZeroRun: true}
	default:
		fmt.Fprintf(os.Stderr, "3lc-net: unknown design %q\n", *designName)
		os.Exit(2)
	}

	dcfg := data.DefaultConfig()
	dcfg.Train, dcfg.Test = 1000, 300
	trainSet, testSet := data.Synthetic(dcfg)
	in := dcfg.C * dcfg.H * dcfg.W
	build := func() *nn.Model { return nn.NewMLP(in, []int{48}, dcfg.Classes, 1) }

	psCfg := ps.Config{
		Scheme:           scheme,
		Opts:             opts,
		Workers:          *workers,
		MinCompressElems: 256,
		Optimizer:        opt.TunedSGDConfig(*workers, *steps),
	}

	if *shards < 1 {
		*shards = 1
	}
	if *regions > 1 {
		if *stream || *replicas || *killShard >= 0 || *tenants > 1 {
			fmt.Fprintln(os.Stderr, "3lc-net: -regions is incompatible with -stream, -replicas, -kill-shard, and -tenants")
			os.Exit(2)
		}
		if *workers%*regions != 0 {
			fmt.Fprintf(os.Stderr, "3lc-net: -workers %d must divide evenly into -regions %d\n", *workers, *regions)
			os.Exit(2)
		}
		algo, err := compress.ParseEntropyAlgo(*wanEntropy)
		if err != nil {
			fmt.Fprintln(os.Stderr, "3lc-net:", err)
			os.Exit(2)
		}
		runHierarchical(*regions, *shards, *workers, *steps, *batch, *addr,
			scheme, opts, algo, psCfg, build, trainSet, testSet, *netTimeout)
		return
	}
	if *tenants > 1 {
		if *stream || *replicas || *killShard >= 0 {
			fmt.Fprintln(os.Stderr, "3lc-net: -tenants is incompatible with -stream, -replicas, and -kill-shard")
			os.Exit(2)
		}
		runMultiTenant(*tenants, *shards, *workers, *steps, *batch, *addr, scheme, opts, *netTimeout)
		return
	}
	if *replicas && *stream {
		fmt.Fprintln(os.Stderr, "3lc-net: -stream pushes are not replicated; drop -stream or -replicas")
		os.Exit(2)
	}
	if *killShard >= 0 && !*replicas {
		fmt.Fprintln(os.Stderr, "3lc-net: -kill-shard needs -replicas (no standby to fail over to)")
		os.Exit(2)
	}
	if *killShard >= *shards {
		fmt.Fprintf(os.Stderr, "3lc-net: -kill-shard %d out of range (%d shards)\n", *killShard, *shards)
		os.Exit(2)
	}
	if *killStep < 0 {
		*killStep = *steps / 2
	}
	if *killShard >= 0 && (*killStep < 1 || *killStep >= *steps) {
		fmt.Fprintf(os.Stderr, "3lc-net: -kill-step %d must be in [1, steps) to fire mid-run\n", *killStep)
		os.Exit(2)
	}
	if *replicas && *netTimeout == 0 {
		// Failover needs a failure detector: without a read deadline only
		// an abrupt connection error (EOF/RST) would trigger it.
		*netTimeout = 10 * time.Second
	}
	useShardTier := *shards > 1 || *stream || *replicas
	global := build()
	timeouts := transport.Timeouts{Read: *netTimeout, Write: *netTimeout}

	// trafficFn reports (push, pull) bytes summed over the server tier.
	var trafficFn func() (int64, int64)
	addrs := make([]string, *shards)
	raddrs := make([]string, *shards)
	var replicaModel *nn.Model
	var replicaAsn shard.Assignment
	serveErr := make(chan error, *shards)
	repErr := make(chan error, *shards)
	if useShardTier {
		// One listener per shard; workers hold one multiplexed connection
		// to each. Shard s binds -addr's port + s (kernel-assigned ports
		// when the requested port is 0).
		host, portStr, err := net.SplitHostPort(*addr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "3lc-net: bad -addr %q: %v\n", *addr, err)
			os.Exit(1)
		}
		if host == "" {
			host = "127.0.0.1"
		}
		basePort, err := strconv.Atoi(portStr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "3lc-net: bad -addr port %q: %v\n", portStr, err)
			os.Exit(1)
		}
		asn := shard.ForModel(global, *shards)
		// Split the codec-pool budget across the concurrently-serving
		// shards so the tier as a whole stays within GOMAXPROCS (the same
		// division train.Run's sharded branch applies).
		shardCfg := psCfg
		shardCfg.Parallelism = runtime.GOMAXPROCS(0) / *shards
		if shardCfg.Parallelism < 1 {
			shardCfg.Parallelism = 1
		}
		subs, err := shard.SubServers(global, shardCfg, asn)
		if err != nil {
			fmt.Fprintln(os.Stderr, "3lc-net:", err)
			os.Exit(1)
		}
		var reps []*transport.ShardReplica
		if *replicas {
			// Standby tier: one replica per shard over its OWN model clone
			// (replicated state must not alias the primary's tensors).
			// Replica s binds -addr's port + shards + s.
			replicaModel = build()
			replicaModel.CopyParamsFrom(global)
			replicaAsn = asn
			repSubs, err := shard.SubServers(replicaModel, shardCfg, asn)
			if err != nil {
				fmt.Fprintln(os.Stderr, "3lc-net:", err)
				os.Exit(1)
			}
			reps = make([]*transport.ShardReplica, *shards)
			for s := 0; s < *shards; s++ {
				port := "0"
				if basePort != 0 {
					port = strconv.Itoa(basePort + *shards + s)
				}
				rln, err := net.Listen("tcp", net.JoinHostPort(host, port))
				if err != nil {
					fmt.Fprintln(os.Stderr, "3lc-net:", err)
					os.Exit(1)
				}
				raddrs[s] = rln.Addr().String()
				fmt.Printf("replica shard %d/%d standing by on %s\n", s, *shards, rln.Addr())
				reps[s] = transport.NewShardReplica(rln, repSubs[s], transport.ShardServerConfig{
					Shard:          s,
					NumShards:      *shards,
					Workers:        *workers,
					Steps:          *steps,
					AssignmentHash: asn.Hash(),
					Timeouts:       timeouts,
				})
				go func(s int) { repErr <- reps[s].Serve() }(s)
			}
		}
		srvs := make([]*transport.ShardServer, *shards)
		for s := 0; s < *shards; s++ {
			port := "0"
			if basePort != 0 {
				port = strconv.Itoa(basePort + s)
			}
			ln, err := net.Listen("tcp", net.JoinHostPort(host, port))
			if err != nil {
				fmt.Fprintln(os.Stderr, "3lc-net:", err)
				os.Exit(1)
			}
			addrs[s] = ln.Addr().String()
			fmt.Printf("parameter-server shard %d/%d listening on %s (%d tensors)\n",
				s, *shards, ln.Addr(), len(asn.Tensors(s)))
			scfg := transport.ShardServerConfig{
				Shard:          s,
				NumShards:      *shards,
				Workers:        *workers,
				Steps:          *steps,
				AssignmentHash: asn.Hash(),
			}
			if *replicas {
				scfg.ReplicaAddr = raddrs[s]
				scfg.Timeouts = transport.Timeouts{Read: 5 * time.Minute, Write: *netTimeout}
			}
			if s == *killShard {
				scfg.KillAtStep = *killStep
				fmt.Printf("shard %d primary will be killed at step %d\n", s, *killStep)
			}
			srvs[s] = transport.NewShardServer(ln, subs[s], scfg)
			go func(s int) { serveErr <- srvs[s].Serve() }(s)
		}
		trafficFn = func() (int64, int64) {
			var push, pull int64
			for _, srv := range srvs {
				p, q := srv.TrafficBytes()
				push += p
				pull += q
			}
			for _, rep := range reps {
				p, q := rep.TrafficBytes()
				push += p
				pull += q
			}
			return push, pull
		}
	} else {
		ln, err := net.Listen("tcp", *addr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "3lc-net:", err)
			os.Exit(1)
		}
		addrs[0] = ln.Addr().String()
		fmt.Printf("parameter server listening on %s\n", ln.Addr())
		server := transport.NewServer(ln, ps.NewServer(global, psCfg), *workers, *steps)
		if *netTimeout > 0 {
			// The server's push read spans the whole BSP barrier (every
			// worker's compute), so its read deadline is much wider than
			// the per-frame worker deadline.
			server.SetTimeouts(transport.Timeouts{Read: 5 * time.Minute, Write: *netTimeout})
		}
		go func() { serveErr <- server.Serve() }()
		trafficFn = server.TrafficBytes
	}

	start := time.Now()
	var wg sync.WaitGroup
	var firstWorker *ps.Worker
	var mu sync.Mutex
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			m := build()
			m.CopyParamsFrom(global)
			worker := ps.NewWorker(w, m, psCfg)
			if w == 0 {
				mu.Lock()
				firstWorker = worker
				mu.Unlock()
			}
			var client interface {
				PushPull(step int, wires [][]byte) ([][]byte, error)
				Close() error
			}
			var shardClient *transport.ShardClient
			var err error
			if useShardTier {
				// Each worker derives the placement from its own replica;
				// the handshake hash certifies it matches the server tier.
				ccfg := transport.ShardClientConfig{Timeouts: timeouts}
				if *replicas {
					ccfg.Replicas = raddrs
				}
				shardClient, err = transport.DialShardedConfig(addrs, w, shard.ForModel(m, *shards), ccfg)
				client = shardClient
			} else {
				client, err = transport.DialTimeout(addrs[0], w, timeouts)
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "3lc-net worker:", err)
				os.Exit(1)
			}
			defer client.Close()
			params := len(m.Params())
			rng := tensor.NewRNG(uint64(w)*977 + 3)
			for s := 0; s < *steps; s++ {
				idx := make([]int, *batch)
				for i := range idx {
					idx[i] = rng.Intn(trainSet.Len())
				}
				x, labels := trainSet.FlatBatch(idx, nil, nil)
				worker.Model.TrainStep(x, labels)
				if *stream {
					// Overlapped pipeline: tensors enter the wire as their
					// compressors finish; pulls decode-apply per frame.
					ch := make(chan transport.IndexedWire, params)
					go func() {
						worker.CompressGradsStream(func(i int, wire []byte) {
							ch <- transport.IndexedWire{I: i, Wire: wire}
						})
						close(ch)
					}()
					if err := shardClient.PushPullStream(s, ch, worker.ApplyPullTensor); err != nil {
						fmt.Fprintln(os.Stderr, "3lc-net worker:", err)
						os.Exit(1)
					}
					continue
				}
				wires, _ := worker.CompressGrads()
				pull, err := client.PushPull(s, wires)
				if err != nil {
					fmt.Fprintln(os.Stderr, "3lc-net worker:", err)
					os.Exit(1)
				}
				if _, err := worker.ApplyPull(pull); err != nil {
					fmt.Fprintln(os.Stderr, "3lc-net worker:", err)
					os.Exit(1)
				}
			}
		}(w)
	}
	wg.Wait()
	for s := 0; s < *shards; s++ {
		err := <-serveErr
		if err == nil {
			continue
		}
		if *killShard >= 0 && errors.Is(err, transport.ErrShardKilled) {
			continue // the injected crash — the replica takes over
		}
		fmt.Fprintln(os.Stderr, "3lc-net server:", err)
		os.Exit(1)
	}
	if *replicas {
		for s := 0; s < *shards; s++ {
			if err := <-repErr; err != nil {
				fmt.Fprintln(os.Stderr, "3lc-net replica:", err)
				os.Exit(1)
			}
		}
	}
	elapsed := time.Since(start)

	if *killShard >= 0 {
		// The killed shard's authoritative state lives on its replica:
		// graft it into the global model before evaluating.
		gp, rp := global.Params(), replicaModel.Params()
		for _, gi := range replicaAsn.Tensors(*killShard) {
			gp[gi].W.CopyFrom(rp[gi].W)
		}
		fmt.Printf("shard %d primary killed at step %d; replica served the remaining steps\n",
			*killShard, *killStep)
	}

	nn.CopyBatchNormStats(global, firstWorker.Model)
	correct := 0
	idx := make([]int, testSet.Len())
	for i := range idx {
		idx[i] = i
	}
	x, labels := testSet.FlatBatch(idx, nil, nil)
	for i, p := range global.Predict(x) {
		if p == labels[i] {
			correct++
		}
	}

	push, pull := trafficFn()
	fmt.Printf("completed %d steps x %d workers over TCP in %v\n", *steps, *workers, elapsed.Round(time.Millisecond))
	fmt.Printf("test accuracy:    %.2f%%\n", 100*float64(correct)/float64(testSet.Len()))
	fmt.Printf("push bytes:       %d (received by server)\n", push)
	fmt.Printf("pull bytes:       %d (sent to workers)\n", pull)
	raw := int64(global.NumParams()) * 4 * int64(*steps) * int64(*workers)
	fmt.Printf("raw equivalent:   %d bytes each way; push compression %.1fx\n", raw, float64(raw)/float64(push))
}

// wanClient adapts one inter-region connection (a transport.ShardClient
// dialed with the region's index as its worker id) into the region.Server
// a region tier forwards to: the tier's single per-step region push
// becomes one PushPull round trip across the slow link.
type wanClient struct {
	sc    *transport.ShardClient
	step  int
	wires [][]byte
}

func (c *wanClient) BeginStep() {}

func (c *wanClient) BeginPush(int) ps.PushSession { return wanSession{c} }

func (c *wanClient) FinishStep() ([][]byte, time.Duration, error) {
	pull, err := c.sc.PushPull(c.step, c.wires)
	c.step++
	if err != nil {
		return nil, 0, err
	}
	return pull, 0, nil
}

func (c *wanClient) AppendState(dst []byte) []byte { return dst }

func (c *wanClient) RestoreState(src []byte) error {
	if len(src) != 0 {
		return errors.New("3lc-net: inter-region client holds no state")
	}
	return nil
}

// wanSession stages the region's wire set until FinishStep ships it. The
// staged slices alias tier-owned buffers, which stay valid through the
// PushPull call.
type wanSession struct{ c *wanClient }

func (s wanSession) Set(wires [][]byte) error {
	s.c.wires = append(s.c.wires[:0], wires...)
	return nil
}

func (s wanSession) Tensor(i int, wire []byte) error {
	for i >= len(s.c.wires) {
		s.c.wires = append(s.c.wires, nil)
	}
	s.c.wires[i] = wire
	return nil
}

func (s wanSession) End() error { return nil }

// runHierarchical is the -regions R mode: hierarchical two-level
// aggregation over real TCP. Local workers connect to their region's
// front door (a transport.Server driving a region.Tier in recompress
// mode); each aggregator fuses its workers' pushes into one re-encoded
// residual stream per step and forwards it, on a connection with the
// transport entropy stage enabled, to the global shard tier — which sees
// R region pushes per step instead of W worker pushes.
func runHierarchical(regions, shards, workers, steps, batch int, addr string,
	scheme compress.Scheme, opts compress.Options, wanAlgo compress.EntropyAlgo,
	psCfg ps.Config, build func() *nn.Model, trainSet, testSet *data.Dataset,
	netTimeout time.Duration) {
	wpr := workers / regions
	host, portStr, err := net.SplitHostPort(addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "3lc-net: bad -addr %q: %v\n", addr, err)
		os.Exit(1)
	}
	if host == "" {
		host = "127.0.0.1"
	}
	basePort, err := strconv.Atoi(portStr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "3lc-net: bad -addr port %q: %v\n", portStr, err)
		os.Exit(1)
	}
	timeouts := transport.Timeouts{Read: netTimeout, Write: netTimeout}
	listen := func(port int) net.Listener {
		p := "0"
		if basePort != 0 {
			p = strconv.Itoa(port)
		}
		ln, err := net.Listen("tcp", net.JoinHostPort(host, p))
		if err != nil {
			fmt.Fprintln(os.Stderr, "3lc-net:", err)
			os.Exit(1)
		}
		return ln
	}

	// Global tier: the shard-tier transport (it speaks the v2 header the
	// entropy stage rides on), sized for one push per region.
	global := build()
	asn := shard.ForModel(global, shards)
	globalCfg := psCfg
	globalCfg.Workers = regions
	globalCfg.Parallelism = runtime.GOMAXPROCS(0) / shards
	if globalCfg.Parallelism < 1 {
		globalCfg.Parallelism = 1
	}
	subs, err := shard.SubServers(global, globalCfg, asn)
	if err != nil {
		fmt.Fprintln(os.Stderr, "3lc-net:", err)
		os.Exit(1)
	}
	addrs := make([]string, shards)
	srvs := make([]*transport.ShardServer, shards)
	serveErr := make(chan error, shards)
	for s := 0; s < shards; s++ {
		ln := listen(basePort + s)
		addrs[s] = ln.Addr().String()
		fmt.Printf("global shard %d/%d listening on %s (%d tensors)\n",
			s, shards, ln.Addr(), len(asn.Tensors(s)))
		srvs[s] = transport.NewShardServer(ln, subs[s], transport.ShardServerConfig{
			Shard:          s,
			NumShards:      shards,
			Workers:        regions,
			Steps:          steps,
			AssignmentHash: asn.Hash(),
		})
		go func(s int) { serveErr <- srvs[s].Serve() }(s)
	}

	// Region aggregators: each dials the global tier as "worker r" with
	// the entropy stage on its connection, wraps that in a recompress
	// region tier (scale 1/wpr: the global tier's division by R then
	// lands on the flat topology's 1/W mean), and serves its local
	// workers through the plain front door. Region r's front door binds
	// -addr's port + shards + r.
	regionAddrs := make([]string, regions)
	fronts := make([]*transport.Server, regions)
	clients := make([]*transport.ShardClient, regions)
	regionErr := make(chan error, regions)
	for r := 0; r < regions; r++ {
		sc, err := transport.DialShardedConfig(addrs, r, asn, transport.ShardClientConfig{
			Timeouts: timeouts,
			Entropy:  wanAlgo,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "3lc-net region:", err)
			os.Exit(1)
		}
		clients[r] = sc
		tier, err := region.NewTier(&wanClient{sc: sc}, global.Params(), region.Config{
			Regions:          1,
			Workers:          wpr,
			Recompress:       true,
			Scheme:           scheme,
			Opts:             opts,
			MinCompressElems: psCfg.MinCompressElems,
			Parallelism:      1,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "3lc-net region:", err)
			os.Exit(1)
		}
		ln := listen(basePort + shards + r)
		regionAddrs[r] = ln.Addr().String()
		fmt.Printf("region %d/%d aggregator listening on %s (%d local workers, wan entropy %s)\n",
			r, regions, ln.Addr(), wpr, wanAlgo)
		fronts[r] = transport.NewServer(ln, tier, wpr, steps)
		if netTimeout > 0 {
			fronts[r].SetTimeouts(transport.Timeouts{Read: 5 * time.Minute, Write: netTimeout})
		}
		go func(r int) { regionErr <- fronts[r].Serve() }(r)
	}

	start := time.Now()
	var wg sync.WaitGroup
	var firstWorker *ps.Worker
	var mu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			m := build()
			m.CopyParamsFrom(global)
			worker := ps.NewWorker(w, m, psCfg)
			if w == 0 {
				mu.Lock()
				firstWorker = worker
				mu.Unlock()
			}
			// Workers speak only to their region's aggregator, identified
			// by their LOCAL id within the region.
			client, err := transport.DialTimeout(regionAddrs[w/wpr], w%wpr, timeouts)
			if err != nil {
				fmt.Fprintln(os.Stderr, "3lc-net worker:", err)
				os.Exit(1)
			}
			defer client.Close()
			rng := tensor.NewRNG(uint64(w)*977 + 3)
			for s := 0; s < steps; s++ {
				idx := make([]int, batch)
				for i := range idx {
					idx[i] = rng.Intn(trainSet.Len())
				}
				x, labels := trainSet.FlatBatch(idx, nil, nil)
				worker.Model.TrainStep(x, labels)
				wires, _ := worker.CompressGrads()
				pull, err := client.PushPull(s, wires)
				if err != nil {
					fmt.Fprintln(os.Stderr, "3lc-net worker:", err)
					os.Exit(1)
				}
				if _, err := worker.ApplyPull(pull); err != nil {
					fmt.Fprintln(os.Stderr, "3lc-net worker:", err)
					os.Exit(1)
				}
			}
		}(w)
	}
	wg.Wait()
	for r := 0; r < regions; r++ {
		if err := <-regionErr; err != nil {
			fmt.Fprintln(os.Stderr, "3lc-net region:", err)
			os.Exit(1)
		}
	}
	for s := 0; s < shards; s++ {
		if err := <-serveErr; err != nil {
			fmt.Fprintln(os.Stderr, "3lc-net server:", err)
			os.Exit(1)
		}
	}
	for _, sc := range clients {
		sc.Close()
	}
	elapsed := time.Since(start)

	nn.CopyBatchNormStats(global, firstWorker.Model)
	correct := 0
	idx := make([]int, testSet.Len())
	for i := range idx {
		idx[i] = i
	}
	x, labels := testSet.FlatBatch(idx, nil, nil)
	for i, p := range global.Predict(x) {
		if p == labels[i] {
			correct++
		}
	}

	var localPush, localPull int64
	for _, f := range fronts {
		p, q := f.TrafficBytes()
		localPush += p
		localPull += q
	}
	var wanPush, wanPull int64
	for _, srv := range srvs {
		p, q := srv.TrafficBytes()
		wanPush += p
		wanPull += q
	}
	fmt.Printf("completed %d steps x %d workers in %d regions over TCP in %v\n",
		steps, workers, regions, elapsed.Round(time.Millisecond))
	fmt.Printf("test accuracy:      %.2f%%\n", 100*float64(correct)/float64(testSet.Len()))
	fmt.Printf("local-leg bytes:    push %d, pull %d (workers <-> region aggregators)\n", localPush, localPull)
	fmt.Printf("inter-region bytes: push %d, pull %d (aggregators <-> global tier, entropy %s)\n", wanPush, wanPull, wanAlgo)
	// In a flat topology every worker wire crosses the slow link — the
	// local-leg push volume IS that counterfactual, measured.
	fmt.Printf("slow-link push reduction vs flat: %.1fx (%d -> %d bytes)\n",
		float64(localPush)/float64(wanPush), localPush, wanPush)
}

// runMultiTenant is the -tenants N mode: N independent training jobs
// multiplexed over ONE shared shard tier behind real TCP endpoints. Each
// tenant gets its own model (fresh seed), its own synthetic dataset, and
// its own worker connections tagged with the admitted (tenant, epoch)
// identity; each shard runs a single multiplexed listener whose DRR
// scheduler fair-shares the aggregation loop across the jobs.
func runMultiTenant(tenants, shards, workers, steps, batch int, addr string,
	scheme compress.Scheme, opts compress.Options, netTimeout time.Duration) {
	host, portStr, err := net.SplitHostPort(addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "3lc-net: bad -addr %q: %v\n", addr, err)
		os.Exit(1)
	}
	if host == "" {
		host = "127.0.0.1"
	}
	basePort, err := strconv.Atoi(portStr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "3lc-net: bad -addr port %q: %v\n", portStr, err)
		os.Exit(1)
	}
	timeouts := transport.Timeouts{Read: netTimeout, Write: netTimeout}

	svc := shard.NewService(shard.Config{Shards: shards}, tenant.NewRegistry(tenants))
	defer svc.Close()

	// Per-tenant jobs: model seed, dataset seed, and worker RNG streams all
	// derive from the tenant id, so no two jobs do the same arithmetic.
	type job struct {
		id       tenant.ID
		epoch    tenant.Epoch
		global   *nn.Model
		psCfg    ps.Config
		build    func() *nn.Model
		trainSet *data.Dataset
		testSet  *data.Dataset
	}
	dcfg := data.DefaultConfig()
	dcfg.Train, dcfg.Test = 400, 100
	in := dcfg.C * dcfg.H * dcfg.W
	jobs := make([]*job, tenants)
	for t := 0; t < tenants; t++ {
		seed := uint64(t + 1)
		j := &job{
			id:    tenant.ID(t + 1),
			build: func() *nn.Model { return nn.NewMLP(in, []int{48}, dcfg.Classes, seed) },
			psCfg: ps.Config{
				Scheme:           scheme,
				Opts:             opts,
				Workers:          workers,
				MinCompressElems: 256,
				Parallelism:      1, // tenants already saturate the cores
				Optimizer:        opt.TunedSGDConfig(workers, steps),
			},
		}
		jcfg := dcfg
		jcfg.Seed = dcfg.Seed + uint64(t)
		j.trainSet, j.testSet = data.Synthetic(jcfg)
		j.global = j.build()
		h, err := svc.Admit(j.id, j.global, j.psCfg, tenant.Limits{MaxSteps: uint64(steps)})
		if err != nil {
			fmt.Fprintln(os.Stderr, "3lc-net admit:", err)
			os.Exit(1)
		}
		j.epoch = h.Tenant().Epoch
		jobs[t] = j
	}

	// One multiplexed listener per shard, shared by every tenant's workers.
	addrs := make([]string, shards)
	serveErr := make(chan error, shards)
	for s := 0; s < shards; s++ {
		port := "0"
		if basePort != 0 {
			port = strconv.Itoa(basePort + s)
		}
		ln, err := net.Listen("tcp", net.JoinHostPort(host, port))
		if err != nil {
			fmt.Fprintln(os.Stderr, "3lc-net:", err)
			os.Exit(1)
		}
		addrs[s] = ln.Addr().String()
		fmt.Printf("multi-tenant shard %d/%d listening on %s (%d tenants)\n", s, shards, ln.Addr(), tenants)
		mux := transport.NewMuxShardServer(ln, svc, transport.MuxShardServerConfig{
			Shard:    s,
			Tenants:  tenants,
			Timeouts: timeouts,
		})
		go func() { serveErr <- mux.Serve() }()
	}

	start := time.Now()
	var wg sync.WaitGroup
	firstWorkers := make([]*ps.Worker, tenants)
	for t, j := range jobs {
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(t int, j *job, w int) {
				defer wg.Done()
				m := j.build()
				m.CopyParamsFrom(j.global)
				worker := ps.NewWorker(w, m, j.psCfg)
				if w == 0 {
					firstWorkers[t] = worker
				}
				cl, err := transport.DialShardedConfig(addrs, w, shard.ForModel(m, shards), transport.ShardClientConfig{
					Timeouts: timeouts,
					Tenant:   uint32(j.id),
					Epoch:    uint32(j.epoch),
				})
				if err != nil {
					fmt.Fprintln(os.Stderr, "3lc-net worker:", err)
					os.Exit(1)
				}
				defer cl.Close()
				rng := tensor.NewRNG(uint64(t)*7919 + uint64(w)*977 + 3)
				for s := 0; s < steps; s++ {
					idx := make([]int, batch)
					for i := range idx {
						idx[i] = rng.Intn(j.trainSet.Len())
					}
					x, labels := j.trainSet.FlatBatch(idx, nil, nil)
					worker.Model.TrainStep(x, labels)
					wires, _ := worker.CompressGrads()
					pull, err := cl.PushPull(s, wires)
					if err != nil {
						fmt.Fprintf(os.Stderr, "3lc-net tenant %d worker %d: %v\n", j.id, w, err)
						os.Exit(1)
					}
					if _, err := worker.ApplyPull(pull); err != nil {
						fmt.Fprintf(os.Stderr, "3lc-net tenant %d worker %d: %v\n", j.id, w, err)
						os.Exit(1)
					}
				}
			}(t, j, w)
		}
	}
	wg.Wait()
	for s := 0; s < shards; s++ {
		if err := <-serveErr; err != nil {
			fmt.Fprintln(os.Stderr, "3lc-net server:", err)
			os.Exit(1)
		}
	}
	elapsed := time.Since(start)

	fmt.Printf("completed %d tenants x %d steps x %d workers over one %d-shard tier in %v\n",
		tenants, steps, workers, shards, elapsed.Round(time.Millisecond))
	var totPush, totPull uint64
	for t, j := range jobs {
		ten, err := svc.Retire(j.id)
		if err != nil {
			fmt.Fprintln(os.Stderr, "3lc-net retire:", err)
			os.Exit(1)
		}
		nn.CopyBatchNormStats(j.global, firstWorkers[t].Model)
		correct := 0
		idx := make([]int, j.testSet.Len())
		for i := range idx {
			idx[i] = i
		}
		x, labels := j.testSet.FlatBatch(idx, nil, nil)
		for i, p := range j.global.Predict(x) {
			if p == labels[i] {
				correct++
			}
		}
		snap := ten.Stats.Snapshot()
		totPush += snap.PushBytes
		totPull += snap.PullBytes
		fmt.Printf("tenant %-3d  acc %5.1f%%  steps %d  push %d B  pull %d B  queue-wait %v\n",
			j.id, 100*float64(correct)/float64(j.testSet.Len()), snap.Steps,
			snap.PushBytes, snap.PullBytes, time.Duration(snap.QueueWaitNs).Round(time.Microsecond))
	}
	fmt.Printf("tier totals:      push %d B, pull %d B across %d tenants\n", totPush, totPull, tenants)
}

// chaosCodecs is the soak's codec roster: one configuration per
// registered wire scheme, so every codec's aggregation path is proven
// exact under injected faults.
var chaosCodecs = []struct {
	name   string
	scheme compress.Scheme
	opts   compress.Options
}{
	{"float32", compress.SchemeNone, compress.Options{}},
	{"int8", compress.SchemeInt8, compress.Options{}},
	{"3lc", compress.SchemeThreeLC, compress.Options{Sparsity: 1.5, ZeroRun: true}},
	{"stoch3", compress.SchemeStoch3QE, compress.Options{Seed: 9}},
	{"mqe1bit", compress.SchemeMQE1Bit, compress.Options{}},
	{"topk", compress.SchemeTopK, compress.Options{Fraction: 0.3, Seed: 9}},
	{"localsteps", compress.SchemeLocalSteps, compress.Options{Interval: 2}},
	{"roundrobin", compress.SchemeRoundRobin, compress.Options{Parts: 3}},
}

// runChaosSoak is the -chaos mode: for every codec, train once clean
// in-process and once over real TCP with the chaos injector on every
// connection and the full defense stack engaged (checksums + resilient
// reconnect-and-replay + seeded retry backoff), then demand the two
// final model states match bit for bit. Any divergence — or a soak in
// which no fault actually fired — exits non-zero.
func runChaosSoak(seed uint64, shards, workers, steps, batch int) {
	dcfg := data.DefaultConfig()
	dcfg.Train, dcfg.Test = 200, 50
	trainSet, _ := data.Synthetic(dcfg)
	in := dcfg.C * dcfg.H * dcfg.W
	build := func() *nn.Model { return nn.NewMLP(in, []int{24}, dcfg.Classes, 1) }

	fmt.Printf("chaos soak: %d codecs x %d steps x %d workers over a %d-shard tier (seed %d)\n",
		len(chaosCodecs), steps, workers, shards, seed)

	failed := false
	var totalFaults int64
	for ci, c := range chaosCodecs {
		psCfg := ps.Config{
			Scheme:           c.scheme,
			Opts:             c.opts,
			Workers:          workers,
			MinCompressElems: 1, // the soak model is small; make every codec engage
			Parallelism:      1,
			Optimizer:        opt.TunedSGDConfig(workers, steps),
		}
		ref, err := chaosReferenceRun(build, psCfg, trainSet, workers, steps, batch)
		if err != nil {
			fmt.Printf("  %-10s FAIL (reference run): %v\n", c.name, err)
			failed = true
			continue
		}
		// Each codec draws a decorrelated fault schedule off the soak seed
		// so one seed exercises eight distinct schedules.
		inj := chaos.New(chaos.Config{
			Seed:      seed + uint64(ci)*0x9e3779b97f4a7c15,
			BitFlip:   0.02,
			Truncate:  0.01,
			Reset:     0.01,
			StallProb: 0.02,
			Stall:     50 * time.Millisecond,
			DelayProb: 0.02,
			Delay:     20 * time.Millisecond,
			// Keep the fault load within the recovery budget: once spent,
			// the remaining traffic passes clean and the run must converge.
			MaxFaults: 64,
		})
		got, err := chaosTCPRun(inj, seed, build, psCfg, trainSet, shards, workers, steps, batch)
		st := inj.Stats()
		totalFaults += st.Total()
		switch {
		case err != nil:
			fmt.Printf("  %-10s FAIL: %v (%v)\n", c.name, err, st)
			failed = true
		case !equalWeights(ref, got):
			fmt.Printf("  %-10s FAIL: final weights diverge from clean reference (%v)\n", c.name, st)
			failed = true
		default:
			fmt.Printf("  %-10s ok: bit-identical under %d faults (%v)\n", c.name, st.Total(), st)
		}
	}
	fmt.Printf("chaos soak: %d faults injected across %d codecs\n", totalFaults, len(chaosCodecs))
	if failed {
		fmt.Fprintln(os.Stderr, "3lc-net: chaos soak FAILED")
		os.Exit(1)
	}
	if totalFaults == 0 {
		fmt.Fprintln(os.Stderr, "3lc-net: chaos soak injected zero faults — the run proves nothing; raise -steps or change -chaos-seed")
		os.Exit(1)
	}
	fmt.Println("chaos soak PASSED: every codec bit-identical under injected faults")
}

// chaosWorkerSteps drives one worker's BSP loop for the soak. The batch
// RNG derives from the worker id alone, so the clean reference and the
// faulted TCP run train on identical data.
func chaosWorkerSteps(worker *ps.Worker, trainSet *data.Dataset, w, steps, batch int,
	pushPull func(step int, wires [][]byte) ([][]byte, error)) error {
	rng := tensor.NewRNG(uint64(w)*977 + 3)
	for s := 0; s < steps; s++ {
		idx := make([]int, batch)
		for i := range idx {
			idx[i] = rng.Intn(trainSet.Len())
		}
		x, labels := trainSet.FlatBatch(idx, nil, nil)
		worker.Model.TrainStep(x, labels)
		wires, _ := worker.CompressGrads()
		pull, err := pushPull(s, wires)
		if err != nil {
			return err
		}
		if _, err := worker.ApplyPull(pull); err != nil {
			return err
		}
	}
	return nil
}

// chaosReferenceRun trains the soak workload on an in-process single
// server — no sockets, no faults — and returns the final global weights.
func chaosReferenceRun(build func() *nn.Model, psCfg ps.Config, trainSet *data.Dataset,
	workers, steps, batch int) ([]float32, error) {
	global := build()
	srv := ps.NewServer(global, psCfg)
	ws := make([]*ps.Worker, workers)
	rngs := make([]*tensor.RNG, workers)
	for w := range ws {
		m := build()
		m.CopyParamsFrom(global)
		ws[w] = ps.NewWorker(w, m, psCfg)
		rngs[w] = tensor.NewRNG(uint64(w)*977 + 3)
	}
	for s := 0; s < steps; s++ {
		srv.BeginStep()
		for w, wk := range ws {
			idx := make([]int, batch)
			for i := range idx {
				idx[i] = rngs[w].Intn(trainSet.Len())
			}
			x, labels := trainSet.FlatBatch(idx, nil, nil)
			wk.Model.TrainStep(x, labels)
			wires, _ := wk.CompressGrads()
			if _, err := srv.AddPush(w, wires); err != nil {
				return nil, err
			}
		}
		pulls, _, err := srv.FinishStep()
		if err != nil {
			return nil, err
		}
		for _, wk := range ws {
			if _, err := wk.ApplyPull(pulls); err != nil {
				return nil, err
			}
		}
	}
	return flatWeights(global), nil
}

// chaosTCPRun trains the soak workload over real TCP with inj wrapping
// every listener and dial: resilient shard servers, checksummed
// resilient clients, and the seeded retry schedule. Returns the final
// global weights.
func chaosTCPRun(inj *chaos.Injector, seed uint64, build func() *nn.Model, psCfg ps.Config,
	trainSet *data.Dataset, shards, workers, steps, batch int) ([]float32, error) {
	global := build()
	asn := shard.ForModel(global, shards)
	subs, err := shard.SubServers(global, psCfg, asn)
	if err != nil {
		return nil, err
	}
	// The read deadline is the failure detector for stalled connections;
	// it also bounds each resilient reacquire wait on the server, so it
	// must exceed the client's worst-case single backoff (250ms cap).
	timeouts := transport.Timeouts{Read: 2 * time.Second, Write: 2 * time.Second}
	addrs := make([]string, shards)
	serveErr := make(chan error, shards)
	for s := 0; s < shards; s++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		addrs[s] = ln.Addr().String()
		srv := transport.NewShardServer(inj.WrapListener(ln), subs[s], transport.ShardServerConfig{
			Shard:          s,
			NumShards:      shards,
			Workers:        workers,
			Steps:          steps,
			AssignmentHash: asn.Hash(),
			Timeouts:       timeouts,
			Resilient:      true,
		})
		go func() { serveErr <- srv.Serve() }()
	}

	retryPol := transport.RetryPolicy{
		MaxAttempts: 8,
		Base:        25 * time.Millisecond,
		Cap:         250 * time.Millisecond,
		Multiplier:  2,
		Jitter:      0.2,
		Seed:        seed,
	}
	workerErr := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			m := build()
			m.CopyParamsFrom(global)
			worker := ps.NewWorker(w, m, psCfg)
			// The initial handshake crosses injected connections too; dial
			// failures are part of the schedule, so budget retries for them.
			var cl *transport.ShardClient
			var err error
			for attempt := 0; ; attempt++ {
				cl, err = transport.DialShardedConfig(addrs, w, shard.ForModel(m, shards), transport.ShardClientConfig{
					Timeouts:  timeouts,
					Checksum:  true,
					Resilient: true,
					Retry:     retryPol,
					Dialer:    inj.Dial,
				})
				if err == nil {
					break
				}
				if attempt >= 10 {
					workerErr <- fmt.Errorf("worker %d dial: %w", w, err)
					return
				}
				time.Sleep(retryPol.Stream(uint64(w)).Backoff(attempt))
			}
			defer cl.Close()
			workerErr <- chaosWorkerSteps(worker, trainSet, w, steps, batch, cl.PushPull)
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-workerErr; err != nil {
			return nil, err
		}
	}
	for s := 0; s < shards; s++ {
		if err := <-serveErr; err != nil {
			return nil, fmt.Errorf("shard serve: %w", err)
		}
	}
	return flatWeights(global), nil
}

func flatWeights(m *nn.Model) []float32 {
	var flat []float32
	for _, p := range m.Params() {
		flat = append(flat, p.W.Data()...)
	}
	return flat
}

func equalWeights(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
