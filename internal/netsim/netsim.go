// Package netsim models the cluster network of the paper's evaluation
// (§5.2): a parameter-server star topology in which every node's NIC is
// rate-limited to an emulated bandwidth (the paper uses Linux Traffic
// Control at 10 Mbps, 100 Mbps, and 1 Gbps). Given the exact wire bytes a
// training step produces, it computes the step's communication time and —
// combined with a virtual per-step computation time — the end-to-end
// virtual training time.
//
// The paper itself *extrapolates* slow-network training time from per-step
// measurements (§5.2 "Measurement Methodology"); this package implements
// the same first-order model explicitly:
//
//	stepTime = compute + codec + max(0, comm - overlap*compute)
//
// where the overlap term models the fine-grained barriers of §2.1 that let
// state-change transmission hide behind the forward/backward pass.
package netsim

import "fmt"

// Standard emulated bandwidths from the paper.
const (
	Mbps10  = 10e6
	Mbps100 = 100e6
	Gbps1   = 1e9
)

// Params describes the virtual cluster.
type Params struct {
	// Workers is the number of worker nodes (paper: 10).
	Workers int
	// Servers is the number of parameter-server nodes the model is
	// partitioned across (Figure 1 shows several; the paper's evaluation
	// uses one). Aggregate push/pull traffic divides across the server
	// NICs. Zero means 1.
	Servers int
	// BandwidthBps is every node's emulated NIC bandwidth in bits/sec
	// (full duplex, as Ethernet NICs are).
	BandwidthBps float64
	// LatencySec is the one-way per-message latency.
	LatencySec float64
	// ComputeSec is the virtual per-step local computation time
	// (forward + backward pass). Calibrate relates it to model size.
	ComputeSec float64
	// OverlapFraction is how much of the compute time communication can
	// hide behind (fine-grained per-layer barriers, §2.1). 0 disables
	// overlap; 1 overlaps fully.
	OverlapFraction float64
	// CodecFactor scales measured compression/decompression wall time
	// into virtual time (1.0 = charge it as-is).
	CodecFactor float64

	// Regions enables the hierarchical two-level topology: workers are
	// grouped into this many regions, each with a local aggregator on the
	// fast network above, and only the aggregators' streams cross the
	// slow inter-region link (WANTime). Zero or 1 means flat.
	Regions int
	// WANBandwidthBps is each region's link bandwidth to the global tier
	// in bits/sec (full duplex). The paper's WAN regime is orders of
	// magnitude below the local network.
	WANBandwidthBps float64
	// WANLatencySec is the one-way inter-region latency (tens of
	// milliseconds across sites, vs the local network's microseconds).
	WANLatencySec float64

	// LossRate is the per-packet loss probability on every link, the
	// simulator's counterpart of the chaos layer's injected faults. Lost
	// packets are retransmitted, so transfers see the standard first-order
	// amplification: wire time scales by 1/(1-LossRate). Must be in
	// [0, 1); zero (the default) models a lossless fabric.
	LossRate float64
}

// DefaultParams returns a 10-worker cluster at the given bandwidth with
// paper-like overlap behavior. ComputeSec is zero; call Calibrate to set
// it relative to a model's traffic volume.
func DefaultParams(bandwidthBps float64) Params {
	return Params{
		Workers:         10,
		BandwidthBps:    bandwidthBps,
		LatencySec:      200e-6,
		OverlapFraction: 0.9,
		CodecFactor:     1.0,
	}
}

// Calibrate sets ComputeSec so that the uncompressed communication time of
// a model with modelBytes parameters at refBandwidth is ratio times the
// compute time. The paper's ResNet-110 regime has baseline communication
// at 1 Gbps taking roughly 1.5x the computation (Table 1: 3LC speedup
// 1.53 at 1 Gbps once traffic is compressed away), so
// Calibrate(modelBytes, netsim.Gbps1, 1.5) reproduces the paper's
// compute-to-communication balance for any substitute model size.
func (p *Params) Calibrate(modelBytes int, refBandwidth, ratio float64) {
	ref := *p
	ref.BandwidthBps = refBandwidth
	comm := ref.commTime(uniform(p.Workers, modelBytes), uniform(p.Workers, modelBytes))
	p.ComputeSec = comm / ratio
}

// lossFactor is the retransmission amplification of every byte on a
// lossy link: each packet must be sent 1/(1-LossRate) times on average
// before it gets through.
func (p Params) lossFactor() float64 {
	if p.LossRate == 0 {
		return 1
	}
	if p.LossRate < 0 || p.LossRate >= 1 {
		panic(fmt.Sprintf("netsim: LossRate %v outside [0, 1)", p.LossRate))
	}
	return 1 / (1 - p.LossRate)
}

func uniform(n, v int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = v
	}
	return s
}

// commTime computes the communication time of one step given per-worker
// push and pull wire sizes. The server NIC is the bottleneck: all pushes
// serialize through its ingress and all pulls through its egress; the two
// directions are full duplex and the push->update->pull dependency
// pipelines across layers (fine-grained barriers), so the slower direction
// dominates. Each worker's own link adds a floor for its largest transfer.
func (p Params) commTime(pushBytes, pullBytes []int) float64 {
	if len(pushBytes) != p.Workers || len(pullBytes) != p.Workers {
		panic(fmt.Sprintf("netsim: want %d workers, got %d push / %d pull entries",
			p.Workers, len(pushBytes), len(pullBytes)))
	}
	var sumPush, sumPull, maxWorker float64
	for i := 0; i < p.Workers; i++ {
		sumPush += float64(pushBytes[i])
		sumPull += float64(pullBytes[i])
		w := float64(pushBytes[i])
		if float64(pullBytes[i]) > w {
			w = float64(pullBytes[i])
		}
		if w > maxWorker {
			maxWorker = w
		}
	}
	server := sumPush
	if sumPull > server {
		server = sumPull
	}
	// With the model partitioned across S servers, each server NIC
	// carries ~1/S of the aggregate (perfectly balanced partitions).
	if p.Servers > 1 {
		server /= float64(p.Servers)
	}
	bytesOnWire := server
	if maxWorker > bytesOnWire {
		bytesOnWire = maxWorker
	}
	return bytesOnWire*8*p.lossFactor()/p.BandwidthBps + 2*p.LatencySec
}

// StepTime returns the virtual duration of one training step.
// codecSec is the measured compression+decompression wall time for the
// step (summed over the critical path: one worker's codec work plus the
// server's).
func (p Params) StepTime(pushBytes, pullBytes []int, codecSec float64) float64 {
	comm := p.commTime(pushBytes, pullBytes)
	hidden := p.OverlapFraction * p.ComputeSec
	exposed := comm - hidden
	if exposed < 0 {
		exposed = 0
	}
	return p.ComputeSec + p.CodecFactor*codecSec + exposed
}

// WANTime returns the inter-region communication time of one step:
// wanPush[r] and wanPull[r] are the bytes region r's aggregator moved to
// and from the global tier across the slow link. Each region has its own
// link, so regions transfer concurrently and the slowest one gates the
// step barrier; push and pull are full duplex and pipeline like the
// local star's directions, so the larger direction dominates per region.
// The WAN transfer cannot hide behind local compute — it begins only
// after the region has aggregated its workers' pushes — so callers add
// this term to StepTime un-overlapped. Zero when the topology is flat or
// no WAN bandwidth is configured.
func (p Params) WANTime(wanPush, wanPull []int) float64 {
	if p.Regions <= 1 || p.WANBandwidthBps <= 0 {
		return 0
	}
	if len(wanPush) != p.Regions || len(wanPull) != p.Regions {
		panic(fmt.Sprintf("netsim: want %d regions, got %d push / %d pull entries",
			p.Regions, len(wanPush), len(wanPull)))
	}
	var worst float64
	for r := 0; r < p.Regions; r++ {
		b := float64(wanPush[r])
		if float64(wanPull[r]) > b {
			b = float64(wanPull[r])
		}
		if b > worst {
			worst = b
		}
	}
	return worst*8*p.lossFactor()/p.WANBandwidthBps + 2*p.WANLatencySec
}

// Clock accumulates virtual time across steps.
type Clock struct {
	seconds float64
	steps   int
}

// Advance adds one step of dt seconds.
func (c *Clock) Advance(dt float64) {
	c.seconds += dt
	c.steps++
}

// Seconds returns total virtual time.
func (c *Clock) Seconds() float64 { return c.seconds }

// Steps returns the number of advanced steps.
func (c *Clock) Steps() int { return c.steps }

// PerStep returns the mean step time.
func (c *Clock) PerStep() float64 {
	if c.steps == 0 {
		return 0
	}
	return c.seconds / float64(c.steps)
}
