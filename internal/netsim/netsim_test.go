package netsim

import (
	"math"
	"testing"
)

func uniformBytes(n, v int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = v
	}
	return s
}

func TestCommTimeServerBottleneck(t *testing.T) {
	p := DefaultParams(Mbps10)
	p.Workers = 10
	p.LatencySec = 0
	// 10 workers x 1000 bytes each direction: server moves 10000 bytes.
	got := p.commTime(uniformBytes(10, 1000), uniformBytes(10, 1000))
	want := 10000.0 * 8 / Mbps10
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("commTime = %v, want %v", got, want)
	}
}

func TestCommTimeFullDuplex(t *testing.T) {
	p := DefaultParams(Mbps10)
	p.Workers = 2
	p.LatencySec = 0
	// Pushes 100 B, pulls 5000 B: the slower direction dominates.
	got := p.commTime(uniformBytes(2, 100), uniformBytes(2, 5000))
	want := 10000.0 * 8 / Mbps10
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("commTime = %v, want %v", got, want)
	}
}

func TestCommTimeLatencyAdded(t *testing.T) {
	p := DefaultParams(Gbps1)
	p.Workers = 1
	p.LatencySec = 0.01
	got := p.commTime(uniformBytes(1, 0), uniformBytes(1, 0))
	if math.Abs(got-0.02) > 1e-9 {
		t.Errorf("latency-only commTime = %v, want 0.02", got)
	}
}

func TestCommTimeWorkerCountValidation(t *testing.T) {
	p := DefaultParams(Mbps10)
	p.Workers = 3
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.commTime(uniformBytes(2, 1), uniformBytes(3, 1))
}

func TestStepTimeOverlapHidesComm(t *testing.T) {
	p := DefaultParams(Gbps1)
	p.Workers = 1
	p.LatencySec = 0
	p.ComputeSec = 1.0
	p.OverlapFraction = 1.0
	// Comm takes 0.5s, fully hidden behind 1s compute.
	bytes := int(0.5 * Gbps1 / 8)
	got := p.StepTime(uniformBytes(1, bytes), uniformBytes(1, 0), 0)
	if math.Abs(got-1.0) > 1e-6 {
		t.Errorf("fully-hidden step = %v, want 1.0", got)
	}
}

func TestStepTimeExposedComm(t *testing.T) {
	p := DefaultParams(Gbps1)
	p.Workers = 1
	p.LatencySec = 0
	p.ComputeSec = 1.0
	p.OverlapFraction = 0.5
	bytes := int(2.0 * Gbps1 / 8) // 2s of comm
	got := p.StepTime(uniformBytes(1, bytes), uniformBytes(1, 0), 0)
	// 1 + (2 - 0.5) = 2.5
	if math.Abs(got-2.5) > 1e-6 {
		t.Errorf("step = %v, want 2.5", got)
	}
}

func TestStepTimeCodecCharged(t *testing.T) {
	p := DefaultParams(Gbps1)
	p.Workers = 1
	p.ComputeSec = 1.0
	p.CodecFactor = 2.0
	base := p.StepTime(uniformBytes(1, 0), uniformBytes(1, 0), 0)
	withCodec := p.StepTime(uniformBytes(1, 0), uniformBytes(1, 0), 0.1)
	if math.Abs((withCodec-base)-0.2) > 1e-9 {
		t.Errorf("codec charge = %v, want 0.2", withCodec-base)
	}
}

func TestCalibrateProducesPaperRegime(t *testing.T) {
	p := DefaultParams(Gbps1)
	p.Workers = 10
	p.LatencySec = 0
	modelBytes := 150_000
	p.Calibrate(modelBytes, Gbps1, 1.5)
	comm := p.commTime(uniformBytes(10, modelBytes), uniformBytes(10, modelBytes))
	if math.Abs(comm/p.ComputeSec-1.5) > 1e-6 {
		t.Errorf("comm/compute = %v, want 1.5", comm/p.ComputeSec)
	}
}

func TestBandwidthScalingMonotone(t *testing.T) {
	// The same traffic must take ~10x longer at 10 Mbps than 100 Mbps.
	mk := func(bw float64) float64 {
		p := DefaultParams(bw)
		p.Workers = 10
		p.LatencySec = 0
		p.ComputeSec = 0.001
		p.OverlapFraction = 0
		return p.StepTime(uniformBytes(10, 100_000), uniformBytes(10, 100_000), 0)
	}
	t10, t100, t1000 := mk(Mbps10), mk(Mbps100), mk(Gbps1)
	if !(t10 > t100 && t100 > t1000) {
		t.Fatalf("times not monotone: %v %v %v", t10, t100, t1000)
	}
	if r := t10 / t100; r < 9 || r > 11 {
		t.Errorf("10M/100M ratio %v, want ~10", r)
	}
}

func TestMultiServerDividesAggregate(t *testing.T) {
	// Two servers halve the per-NIC load until the worker links floor it.
	one := DefaultParams(Mbps10)
	one.Workers = 10
	one.LatencySec = 0
	two := one
	two.Servers = 2
	t1 := one.commTime(uniformBytes(10, 10000), uniformBytes(10, 10000))
	t2 := two.commTime(uniformBytes(10, 10000), uniformBytes(10, 10000))
	if math.Abs(t1/t2-2) > 1e-9 {
		t.Errorf("2 servers: time ratio %v, want 2", t1/t2)
	}
	// With enough servers the per-worker link becomes the bottleneck.
	many := one
	many.Servers = 100
	tm := many.commTime(uniformBytes(10, 10000), uniformBytes(10, 10000))
	floor := 10000.0 * 8 / Mbps10
	if math.Abs(tm-floor) > 1e-9 {
		t.Errorf("100 servers: time %v, want worker-link floor %v", tm, floor)
	}
}

func TestClock(t *testing.T) {
	var c Clock
	c.Advance(1.5)
	c.Advance(0.5)
	if c.Seconds() != 2.0 || c.Steps() != 2 || c.PerStep() != 1.0 {
		t.Errorf("clock state: %v s, %d steps, %v per step", c.Seconds(), c.Steps(), c.PerStep())
	}
	var empty Clock
	if empty.PerStep() != 0 {
		t.Error("empty clock PerStep should be 0")
	}
}

func TestWANTimeFlatOrUnconfiguredIsZero(t *testing.T) {
	p := DefaultParams(Gbps1)
	if p.WANTime(nil, nil) != 0 {
		t.Error("flat topology must have zero WAN time")
	}
	p.Regions = 1
	if p.WANTime([]int{100}, []int{100}) != 0 {
		t.Error("single region is flat; want zero WAN time")
	}
	p.Regions = 2
	p.WANBandwidthBps = 0
	if p.WANTime([]int{100, 100}, []int{100, 100}) != 0 {
		t.Error("no WAN bandwidth configured; want zero WAN time")
	}
}

func TestWANTimeSlowestRegionGates(t *testing.T) {
	p := DefaultParams(Gbps1)
	p.Regions = 3
	p.WANBandwidthBps = Mbps10
	p.WANLatencySec = 0
	// Regions transfer concurrently over private links: only region 2's
	// 9000-byte push matters.
	got := p.WANTime([]int{1000, 2000, 9000}, []int{500, 500, 500})
	want := 9000.0 * 8 / Mbps10
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("WANTime = %v, want slowest region %v", got, want)
	}
}

func TestWANTimeFullDuplex(t *testing.T) {
	p := DefaultParams(Gbps1)
	p.Regions = 2
	p.WANBandwidthBps = Mbps10
	p.WANLatencySec = 0
	// Push and pull are full duplex: the larger direction dominates, the
	// smaller rides for free.
	got := p.WANTime([]int{4000, 4000}, []int{6000, 6000})
	want := 6000.0 * 8 / Mbps10
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("WANTime = %v, want pull-dominated %v", got, want)
	}
}

func TestWANTimeLatencyAdded(t *testing.T) {
	p := DefaultParams(Gbps1)
	p.Regions = 2
	p.WANBandwidthBps = Mbps100
	p.WANLatencySec = 20e-3
	got := p.WANTime([]int{1000, 1000}, []int{1000, 1000})
	want := 1000.0*8/Mbps100 + 2*20e-3
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("WANTime = %v, want transfer+2*RTT/2 %v", got, want)
	}
}

func TestWANTimeRegionCountValidation(t *testing.T) {
	p := DefaultParams(Gbps1)
	p.Regions = 3
	p.WANBandwidthBps = Mbps10
	defer func() {
		if recover() == nil {
			t.Error("mismatched region slice lengths should panic")
		}
	}()
	p.WANTime([]int{1, 2}, []int{1, 2})
}

func TestLossRateAmplifiesWireTime(t *testing.T) {
	p := DefaultParams(Mbps10)
	p.Workers = 10
	p.LatencySec = 0
	clean := p.commTime(uniformBytes(10, 1000), uniformBytes(10, 1000))
	p.LossRate = 0.5 // every packet sent twice on average
	got := p.commTime(uniformBytes(10, 1000), uniformBytes(10, 1000))
	if math.Abs(got-2*clean) > 1e-9 {
		t.Errorf("commTime at 50%% loss = %v, want %v (2x the lossless time)", got, 2*clean)
	}

	p.Regions = 2
	p.WANBandwidthBps = Mbps10
	p.WANLatencySec = 0
	wan := p.WANTime(uniformBytes(2, 1000), uniformBytes(2, 1000))
	p.LossRate = 0
	cleanWAN := p.WANTime(uniformBytes(2, 1000), uniformBytes(2, 1000))
	if math.Abs(wan-2*cleanWAN) > 1e-9 {
		t.Errorf("WANTime at 50%% loss = %v, want %v", wan, 2*cleanWAN)
	}
}

func TestLossRateValidation(t *testing.T) {
	p := DefaultParams(Mbps10)
	p.Workers = 1
	p.LossRate = 1
	defer func() {
		if recover() == nil {
			t.Error("LossRate = 1 must panic (infinite retransmission)")
		}
	}()
	p.commTime(uniformBytes(1, 10), uniformBytes(1, 10))
}
