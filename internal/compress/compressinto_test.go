package compress

import (
	"bytes"
	"testing"

	"threelc/internal/tensor"
)

// TestCompressIntoMatchesCompress drives two identically-seeded contexts
// per scheme — one through the legacy Compress, one through append-style
// CompressInto with a recycled buffer — over several steps with evolving
// inputs, and asserts the wire bytes are identical at every step. The
// multi-step loop matters: it proves the scratch-buffer reuse does not
// leak state between steps (error accumulation, RNG draws, step counters).
func TestCompressIntoMatchesCompress(t *testing.T) {
	const n = 1003 // not a multiple of 5 or 8: exercises padding paths
	shape := []int{n}
	for _, sc := range fuzzSchemes {
		t.Run(sc.s.String(), func(t *testing.T) {
			legacy := New(sc.s, shape, sc.o)
			appendStyle := New(sc.s, shape, sc.o)
			rng := tensor.NewRNG(99)
			in := tensor.New(n)
			var buf []byte
			for step := 0; step < 8; step++ {
				tensor.FillNormal(in, 0.02, rng)
				want := legacy.Compress(in)
				buf = appendStyle.CompressInto(in, buf[:0])
				if !bytes.Equal(want, buf) {
					t.Fatalf("step %d: CompressInto produced %d bytes != Compress %d bytes", step, len(buf), len(want))
				}
				if len(buf) == 0 {
					continue // local-steps non-transmitting step
				}
				// And the wire still decodes correctly.
				out, err := Decompress(buf, shape)
				if err != nil {
					t.Fatalf("step %d: decode: %v", step, err)
				}
				if out.Len() != n {
					t.Fatalf("step %d: decoded %d elements", step, out.Len())
				}
			}
		})
	}
}

// TestCompressIntoPreservesPrefix checks the append contract: bytes
// already in dst stay untouched ahead of the new wire message.
func TestCompressIntoPreservesPrefix(t *testing.T) {
	rng := tensor.NewRNG(7)
	in := tensor.New(100)
	tensor.FillNormal(in, 0.1, rng)
	c := New(SchemeThreeLC, []int{100}, Options{Sparsity: 1.5, ZeroRun: true})
	prefix := []byte{0xCA, 0xFE}
	out := c.CompressInto(in, append([]byte(nil), prefix...))
	if !bytes.Equal(out[:2], prefix) {
		t.Fatal("prefix clobbered")
	}
	if _, err := Decompress(out[2:], []int{100}); err != nil {
		t.Fatalf("suffix does not decode: %v", err)
	}
}

// TestCompressIntoSteadyStateAllocs is the zero-allocation guarantee of
// the refactor, as a hard test rather than a benchmark eyeball: once
// buffers converge, a compress+decompress step allocates nothing. Sizes
// stay under the parallel-encode threshold — goroutine fan-out for huge
// tensors legitimately allocates a few times per call.
func TestCompressIntoSteadyStateAllocs(t *testing.T) {
	cases := []struct {
		name string
		s    Scheme
		o    Options
	}{
		{"float32", SchemeNone, Options{}},
		{"int8", SchemeInt8, Options{}},
		{"3lc-zre", SchemeThreeLC, Options{Sparsity: 1.75, ZeroRun: true}},
		{"3lc-nozre", SchemeThreeLC, Options{Sparsity: 1.0, ZeroRun: false}},
		{"mqe1bit", SchemeMQE1Bit, Options{}},
	}
	const n = 1 << 14
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ctx := New(tc.s, []int{n}, tc.o)
			rng := tensor.NewRNG(5)
			in := tensor.New(n)
			tensor.FillNormal(in, 0.01, rng)
			out := tensor.New(n)
			var buf []byte
			// Warm up: let scratch capacities converge.
			for i := 0; i < 4; i++ {
				buf = ctx.CompressInto(in, buf[:0])
				if err := DecompressInto(buf, out); err != nil {
					t.Fatal(err)
				}
			}
			allocs := testing.AllocsPerRun(20, func() {
				buf = ctx.CompressInto(in, buf[:0])
				if err := DecompressInto(buf, out); err != nil {
					t.Fatal(err)
				}
			})
			if allocs > 0 {
				t.Errorf("steady-state compress+decompress allocates %.1f times/op, want 0", allocs)
			}
		})
	}
}

// --- steady-state benchmarks (run with -benchmem) ---------------------------

// BenchmarkThreeLCCompressInto measures the steady-state per-step compress
// path with a recycled wire buffer: allocs/op must be 0.
func BenchmarkThreeLCCompressInto(b *testing.B) {
	for _, n := range []int{1 << 14, 1 << 17, 1 << 20} {
		b.Run(sizeName(n), func(b *testing.B) {
			ctx := New(SchemeThreeLC, []int{n}, Options{Sparsity: 1.75, ZeroRun: true})
			rng := tensor.NewRNG(5)
			in := tensor.New(n)
			tensor.FillNormal(in, 0.01, rng)
			buf := ctx.CompressInto(in, nil)
			b.SetBytes(4 * int64(n))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf = ctx.CompressInto(in, buf[:0])
			}
		})
	}
}

// BenchmarkThreeLCDecompressInto measures the matching pull path: decoding
// into a preallocated tensor with pooled scratch, allocs/op 0 below the
// parallel threshold.
func BenchmarkThreeLCDecompressInto(b *testing.B) {
	for _, n := range []int{1 << 14, 1 << 17, 1 << 20} {
		b.Run(sizeName(n), func(b *testing.B) {
			ctx := New(SchemeThreeLC, []int{n}, Options{Sparsity: 1.75, ZeroRun: true})
			rng := tensor.NewRNG(6)
			in := tensor.New(n)
			tensor.FillNormal(in, 0.01, rng)
			wire := ctx.CompressInto(in, nil)
			out := tensor.New(n)
			b.SetBytes(4 * int64(n))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := DecompressInto(wire, out); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCompressIntoAllSchemes covers the remaining codecs' append
// paths at one mid-size shape.
func BenchmarkCompressIntoAllSchemes(b *testing.B) {
	const n = 1 << 16
	cases := []struct {
		name string
		s    Scheme
		o    Options
	}{
		{"float32", SchemeNone, Options{}},
		{"int8", SchemeInt8, Options{}},
		{"stoch3", SchemeStoch3QE, Options{Seed: 1}},
		{"mqe1bit", SchemeMQE1Bit, Options{}},
		{"sparse25", SchemeTopK, Options{Fraction: 0.25, Seed: 1}},
		{"3lc-s1.75", SchemeThreeLC, Options{Sparsity: 1.75, ZeroRun: true}},
		// Entropy-wrapped variants: CI bounds the second stage's encode
		// cost against the plain 3LC row (<= 1.25x) and requires 0 allocs.
		{"3lc-s1.75+huffman", SchemeThreeLC, Options{Sparsity: 1.75, ZeroRun: true, Entropy: EntropyHuffman}},
		{"3lc-s1.75+lz", SchemeThreeLC, Options{Sparsity: 1.75, ZeroRun: true, Entropy: EntropyLZ}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			ctx := New(tc.s, []int{n}, tc.o)
			rng := tensor.NewRNG(8)
			in := tensor.New(n)
			tensor.FillNormal(in, 0.01, rng)
			buf := ctx.CompressInto(in, nil)
			b.SetBytes(4 * int64(n))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf = ctx.CompressInto(in, buf[:0])
			}
		})
	}
}

func sizeName(n int) string {
	switch {
	case n >= 1<<20:
		return "1M"
	case n >= 1<<17:
		return "128k"
	default:
		return "16k"
	}
}
