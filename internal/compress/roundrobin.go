package compress

import (
	"fmt"

	"threelc/internal/quant"
	"threelc/internal/sparse"
	"threelc/internal/tensor"
)

func init() {
	// Shares the TopK bitmap wire layout, and therefore its decoder.
	RegisterDecoder(SchemeRoundRobin, decodeTopK)
}

// roundRobinCompressor is Ako-style partial gradient exchange: each step
// transmits one of P interleaved partitions of the accumulated state
// changes, using the same bitmap wire format as top-k sparsification.
// Error accumulation delivers the remaining partitions on later steps, so
// a full cycle transmits every element exactly once.
type roundRobinCompressor struct {
	shape   []int
	n       int
	rr      *sparse.RoundRobin
	acc     *quant.ErrorAccumulator
	dequant *tensor.Tensor
	sel     sparse.Selection // selection scratch, reused across steps
}

func newRoundRobinCompressor(shape []int, parts int) *roundRobinCompressor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	return &roundRobinCompressor{
		shape:   append([]int(nil), shape...),
		n:       n,
		rr:      sparse.NewRoundRobin(parts),
		acc:     quant.NewErrorAccumulator(shape...),
		dequant: tensor.New(shape...),
	}
}

func (c *roundRobinCompressor) Scheme() Scheme { return SchemeRoundRobin }
func (c *roundRobinCompressor) Name() string {
	return fmt.Sprintf("round-robin 1/%d exchange", c.rr.Parts)
}

func (c *roundRobinCompressor) Compress(in *tensor.Tensor) []byte {
	return c.CompressInto(in, nil)
}

//3lc:noalloc
func (c *roundRobinCompressor) CompressInto(in *tensor.Tensor, dst []byte) []byte {
	if in.Len() != c.n {
		panic("compress: input size mismatch")
	}
	sum := c.acc.Accumulate(in)
	c.rr.SparsifyInto(sum, &c.sel)
	sparse.ReconstructInto(&c.sel, c.dequant)
	c.acc.Residual(c.dequant)
	return appendSelection(dst, byte(SchemeRoundRobin), &c.sel)
}
