package compress

import (
	"fmt"

	"threelc/internal/quant"
	"threelc/internal/sparse"
	"threelc/internal/tensor"
)

// roundRobinCompressor is Ako-style partial gradient exchange: each step
// transmits one of P interleaved partitions of the accumulated state
// changes, using the same bitmap wire format as top-k sparsification.
// Error accumulation delivers the remaining partitions on later steps, so
// a full cycle transmits every element exactly once.
type roundRobinCompressor struct {
	shape   []int
	n       int
	rr      *sparse.RoundRobin
	acc     *quant.ErrorAccumulator
	dequant *tensor.Tensor
}

func newRoundRobinCompressor(shape []int, parts int) *roundRobinCompressor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	return &roundRobinCompressor{
		shape:   append([]int(nil), shape...),
		n:       n,
		rr:      sparse.NewRoundRobin(parts),
		acc:     quant.NewErrorAccumulator(shape...),
		dequant: tensor.New(shape...),
	}
}

func (c *roundRobinCompressor) Scheme() Scheme { return SchemeRoundRobin }
func (c *roundRobinCompressor) Name() string {
	return fmt.Sprintf("round-robin 1/%d exchange", c.rr.Parts)
}

func (c *roundRobinCompressor) Compress(in *tensor.Tensor) []byte {
	if in.Len() != c.n {
		panic("compress: input size mismatch")
	}
	sum := c.acc.Accumulate(in)
	sel := c.rr.Sparsify(sum)
	sparse.ReconstructInto(sel, c.dequant)
	c.acc.Residual(c.dequant)

	bm := sel.Mask.Bytes()
	wire := make([]byte, 1+len(bm)+4*len(sel.Values))
	wire[0] = byte(SchemeRoundRobin)
	copy(wire[1:], bm)
	off := 1 + len(bm)
	for i, v := range sel.Values {
		putF32(wire[off+4*i:], v)
	}
	return wire
}
