package compress

import (
	"fmt"

	"threelc/internal/tensor"
)

// Stateful is implemented by compression contexts that carry mutable
// cross-step state — error-accumulation buffers, RNG streams, step
// counters. The paper's correctness argument (§3.1: unsent changes are
// retried at later steps) lives in exactly this state, so a fault-tolerant
// deployment must checkpoint it alongside the model: restoring a context
// with RestoreState makes every subsequent wire message bit-identical to
// the uninterrupted context's. Stateless schemes (raw floats, 8-bit int)
// simply do not implement the interface.
type Stateful interface {
	// AppendState appends the context's full mutable state to dst and
	// returns the extended slice.
	AppendState(dst []byte) []byte
	// RestoreState replaces the context's mutable state with one captured
	// by AppendState on an identically-configured context (same scheme,
	// shape, and options). Malformed input returns an error and must never
	// panic; on error the context's prior state is preserved.
	RestoreState(src []byte) error
}

// --- shared state-blob helpers ---------------------------------------------

func appendU64(dst []byte, v uint64) []byte {
	var b [8]byte
	le.PutUint64(b[:], v)
	return append(dst, b[:]...)
}

// restoreF32s fills dst from exactly 4*len(dst) little-endian bytes,
// returning the remaining input. The floats are staged nowhere: callers
// must only commit after the full blob validates, so they pass scratch or
// validate total length first.
func restoreF32s(src []byte, dst []float32) ([]byte, error) {
	need := 4 * len(dst)
	if len(src) < need {
		return nil, fmt.Errorf("compress: state blob truncated (%d of %d float bytes)", len(src), need)
	}
	for i := range dst {
		dst[i] = getF32(src[4*i:])
	}
	return src[need:], nil
}

// appendRNGState serializes r's full stream position (tensor.RNGStateLen
// bytes, the layout owned by tensor.RNG).
func appendRNGState(dst []byte, r *tensor.RNG) []byte {
	return r.AppendState(dst)
}

const rngStateLen = tensor.RNGStateLen

// restoreRNGState restores a stream position captured by appendRNGState,
// returning the remaining input.
func restoreRNGState(src []byte, r *tensor.RNG) ([]byte, error) {
	if len(src) < rngStateLen {
		return nil, fmt.Errorf("compress: state blob truncated (%d of %d RNG bytes)", len(src), rngStateLen)
	}
	if err := r.RestoreState(src[:rngStateLen]); err != nil {
		return nil, fmt.Errorf("compress: %w", err)
	}
	return src[rngStateLen:], nil
}

// --- per-scheme implementations --------------------------------------------

// 3LC: the error-accumulation buffer is the whole state (the |max| scale
// is recomputed per step).
func (c *threeLCCompressor) AppendState(dst []byte) []byte {
	return appendRaw(dst, c.acc.Buffer().Data())
}

func (c *threeLCCompressor) RestoreState(src []byte) error {
	if len(src) != 4*c.n {
		return fmt.Errorf("compress: 3LC state %d bytes, want %d", len(src), 4*c.n)
	}
	_, err := restoreF32s(src, c.acc.Buffer().Data())
	return err
}

// Stochastic ternary: unbiased, so no accumulation buffer — but the RNG
// stream position decides every quantization draw.
func (c *stochCompressor) AppendState(dst []byte) []byte {
	return appendRNGState(dst, c.rng)
}

func (c *stochCompressor) RestoreState(src []byte) error {
	if len(src) != rngStateLen {
		return fmt.Errorf("compress: stoch state %d bytes, want %d", len(src), rngStateLen)
	}
	_, err := restoreRNGState(src, c.rng)
	return err
}

// MQE 1-bit: error-feedback buffer.
func (c *oneBitCompressor) AppendState(dst []byte) []byte {
	return appendRaw(dst, c.acc.Buffer().Data())
}

func (c *oneBitCompressor) RestoreState(src []byte) error {
	if len(src) != 4*c.n {
		return fmt.Errorf("compress: 1-bit state %d bytes, want %d", len(src), 4*c.n)
	}
	_, err := restoreF32s(src, c.acc.Buffer().Data())
	return err
}

// Top-k sparsification: error-accumulation buffer plus the threshold-
// sampling RNG stream.
func (c *topKCompressor) AppendState(dst []byte) []byte {
	dst = appendRaw(dst, c.acc.Buffer().Data())
	return appendRNGState(dst, c.sp.RNG())
}

func (c *topKCompressor) RestoreState(src []byte) error {
	if len(src) != 4*c.n+rngStateLen {
		return fmt.Errorf("compress: top-k state %d bytes, want %d", len(src), 4*c.n+rngStateLen)
	}
	// Restore the RNG first: it is the only part that can still fail
	// (corrupt flag byte), and it validates before committing, so a bad
	// blob leaves the context fully untouched.
	if _, err := restoreRNGState(src[4*c.n:], c.sp.RNG()); err != nil {
		return err
	}
	_, err := restoreF32s(src, c.acc.Buffer().Data())
	return err
}

// Local steps: accumulated unsent changes plus the interval phase.
func (c *localStepsCompressor) AppendState(dst []byte) []byte {
	dst = appendRaw(dst, c.acc.Buffer().Data())
	return appendU64(dst, uint64(c.step))
}

func (c *localStepsCompressor) RestoreState(src []byte) error {
	if len(src) != 4*c.n+8 {
		return fmt.Errorf("compress: local-steps state %d bytes, want %d", len(src), 4*c.n+8)
	}
	rest, err := restoreF32s(src, c.acc.Buffer().Data())
	if err != nil {
		return err
	}
	c.step = int(le.Uint64(rest))
	return nil
}

// Round-robin exchange: accumulated unsent partitions plus the cycle
// position.
func (c *roundRobinCompressor) AppendState(dst []byte) []byte {
	dst = appendRaw(dst, c.acc.Buffer().Data())
	return appendU64(dst, uint64(c.rr.Step()))
}

func (c *roundRobinCompressor) RestoreState(src []byte) error {
	if len(src) != 4*c.n+8 {
		return fmt.Errorf("compress: round-robin state %d bytes, want %d", len(src), 4*c.n+8)
	}
	rest, err := restoreF32s(src, c.acc.Buffer().Data())
	if err != nil {
		return err
	}
	c.rr.SetStep(int(le.Uint64(rest)))
	return nil
}
