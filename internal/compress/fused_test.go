package compress

import (
	"testing"

	"threelc/internal/kernel"
	"threelc/internal/tensor"
)

// TestCompressorPassCounts verifies — through the kernel pass-counting
// test double — that the whole codec path, not just the kernels in
// isolation, sweeps tensor memory exactly twice per compress and exactly
// once per decompress. A regression that reintroduces a staged sweep
// (separate MaxAbs, a dequantization tensor, a zero-run scratch pass)
// fails here.
func TestCompressorPassCounts(t *testing.T) {
	var passes []string
	kernel.PassHook = func(name string, elems int) { passes = append(passes, name) }
	defer func() { kernel.PassHook = nil }()

	const n = 1003
	in := randTensor(77, n, 0.01)
	out := tensor.New(n)

	for _, tc := range []struct {
		name string
		s    Scheme
		o    Options
	}{
		{"3lc-zre", SchemeThreeLC, Options{Sparsity: 1.75, ZeroRun: true}},
		{"3lc-nozre", SchemeThreeLC, Options{Sparsity: 1.0, ZeroRun: false}},
		{"stoch3", SchemeStoch3QE, Options{Seed: 3}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ctx := New(tc.s, []int{n}, tc.o)

			passes = nil
			wire := ctx.CompressInto(in, nil)
			if len(passes) != 2 {
				t.Fatalf("CompressInto swept tensor memory %d times (%v), want exactly 2", len(passes), passes)
			}

			passes = nil
			if err := DecompressInto(wire, out); err != nil {
				t.Fatal(err)
			}
			if len(passes) != 1 {
				t.Fatalf("DecompressInto swept tensor memory %d times (%v), want exactly 1", len(passes), passes)
			}
		})
	}
}
