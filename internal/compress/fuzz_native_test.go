package compress

import (
	"testing"

	"threelc/internal/tensor"
)

// FuzzDecompressInto is the native fuzz entry point for the decoder
// registry (the deterministic corruption sweep in fuzz_test.go runs under
// plain `go test`; this target lets the fuzz engine search beyond it).
// Every registered decoder sits behind the first wire byte, so a single
// target covers the whole registry. Decoders operate on untrusted network
// bytes: any input may error, none may panic — in any destination shape,
// since a sharded tier can route a wire to a mismatched tensor slot.
func FuzzDecompressInto(f *testing.F) {
	shape := []int{257}
	rng := tensor.NewRNG(99)
	in := tensor.New(shape[0])
	tensor.FillNormal(in, 0.1, rng)
	for _, sc := range fuzzSchemes {
		f.Add(New(sc.s, shape, sc.o).Compress(in))
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x00, 0x01})

	matched := tensor.New(shape[0])
	mismatched := tensor.New(64)
	f.Fuzz(func(t *testing.T, wire []byte) {
		_ = DecompressInto(wire, matched)    // errors fine, panics are not
		_ = DecompressInto(wire, mismatched) // wrong-shape slot must error, not panic
	})
}
