package compress

import (
	"fmt"

	"threelc/internal/kernel"
	"threelc/internal/quant"
	"threelc/internal/tensor"
)

func init() {
	RegisterDecoder(SchemeMQE1Bit, decodeOneBit)
	RegisterAddDecoder(SchemeMQE1Bit, decodeOneBitAdd)
}

// oneBitCompressor is the "MQE 1-bit int" baseline (§5.1): 1-bit SGD-style
// quantization with minimum squared quantization error and error feedback.
// Wire format: [scheme][4B MPos][4B MNeg][packed sign bits].
//
// The encode runs on the fused kernels: kernel.AccumulateSignStats folds
// the error-accumulation sweep, the sign bit-pack, and the partition sums
// into pass 1 (serial — the MQE means are order-dependent float64 sums),
// then kernel.OneBitResidualParallel fuses dequantize+residual into one
// chunked pass 2. Two passes over tensor memory instead of the staged
// four; wires and residual state stay bit-identical to the staged
// quant.QuantizeOneBitInto composition, which remains the reference.
type oneBitCompressor struct {
	shape []int
	n     int
	par   int                     // per-pass fan-out cap (Options.CodecParallelism)
	acc   *quant.ErrorAccumulator // error-feedback buffer (checkpointed state)
	bits  []byte                  // sign bit-pack scratch, reused across steps
}

func newOneBitCompressor(shape []int, par int) *oneBitCompressor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	return &oneBitCompressor{
		shape: append([]int(nil), shape...),
		n:     n,
		par:   par,
		acc:   quant.NewErrorAccumulator(shape...),
		bits:  make([]byte, (n+7)/8),
	}
}

func (c *oneBitCompressor) Scheme() Scheme { return SchemeMQE1Bit }
func (c *oneBitCompressor) Name() string   { return "MQE 1-bit int" }

func (c *oneBitCompressor) Compress(in *tensor.Tensor) []byte {
	return c.CompressInto(in, nil)
}

//3lc:noalloc
func (c *oneBitCompressor) CompressInto(in *tensor.Tensor, dst []byte) []byte {
	if in.Len() != c.n {
		panic("compress: input size mismatch")
	}
	buf := c.acc.Buffer().Data()
	mPos, mNeg := kernel.AccumulateSignStats(buf, in.Data(), c.bits)
	dst = append(dst, byte(SchemeMQE1Bit))
	dst = appendF32(dst, mPos)
	dst = appendF32(dst, mNeg)
	dst = append(dst, c.bits...)
	w := kernel.PassWorkers(c.n, c.par, kernel.SpanEncode)
	kernel.OneBitResidualParallel(buf, c.bits, mPos, mNeg, w)
	return dst
}

func decodeOneBit(payload []byte, dst *tensor.Tensor) error {
	d := dst.Data()
	want := 8 + (len(d)+7)/8
	if len(payload) != want {
		return fmt.Errorf("compress: 1-bit payload %d bytes, want %d", len(payload), want)
	}
	mPos := getF32(payload)
	mNeg := getF32(payload[4:])
	bits := payload[8:]
	for i := range d {
		if bits[i>>3]&(1<<(uint(i)&7)) != 0 {
			d[i] = mPos
		} else {
			d[i] = mNeg
		}
	}
	return nil
}

// decodeOneBitAdd accumulates the sign-bit payload in one pass (every
// element decodes to mPos or mNeg, so the add is per-element identical to
// decode-then-add); the length check runs before dst is touched.
func decodeOneBitAdd(payload []byte, dst *tensor.Tensor, _ int) error {
	d := dst.Data()
	want := 8 + (len(d)+7)/8
	if len(payload) != want {
		return fmt.Errorf("compress: 1-bit payload %d bytes, want %d", len(payload), want)
	}
	mPos := getF32(payload)
	mNeg := getF32(payload[4:])
	bits := payload[8:]
	for i := range d {
		if bits[i>>3]&(1<<(uint(i)&7)) != 0 {
			d[i] += mPos
		} else {
			d[i] += mNeg
		}
	}
	return nil
}
