package compress

import (
	"fmt"

	"threelc/internal/quant"
	"threelc/internal/tensor"
)

func init() {
	RegisterDecoder(SchemeMQE1Bit, decodeOneBit)
	RegisterAddDecoder(SchemeMQE1Bit, decodeOneBitAdd)
}

// oneBitCompressor is the "MQE 1-bit int" baseline (§5.1): 1-bit SGD-style
// quantization with minimum squared quantization error and error feedback.
// Wire format: [scheme][4B MPos][4B MNeg][packed sign bits].
type oneBitCompressor struct {
	shape   []int
	n       int
	acc     *quant.ErrorAccumulator
	dequant *tensor.Tensor
	q       quant.OneBitQuantized // quantization scratch, reused across steps
}

func newOneBitCompressor(shape []int) *oneBitCompressor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	return &oneBitCompressor{
		shape:   append([]int(nil), shape...),
		n:       n,
		acc:     quant.NewErrorAccumulator(shape...),
		dequant: tensor.New(shape...),
	}
}

func (c *oneBitCompressor) Scheme() Scheme { return SchemeMQE1Bit }
func (c *oneBitCompressor) Name() string   { return "MQE 1-bit int" }

func (c *oneBitCompressor) Compress(in *tensor.Tensor) []byte {
	return c.CompressInto(in, nil)
}

func (c *oneBitCompressor) CompressInto(in *tensor.Tensor, dst []byte) []byte {
	if in.Len() != c.n {
		panic("compress: input size mismatch")
	}
	sum := c.acc.Accumulate(in)
	quant.QuantizeOneBitInto(sum, &c.q)
	quant.DequantizeOneBitInto(&c.q, c.dequant)
	c.acc.Residual(c.dequant)

	dst = append(dst, byte(SchemeMQE1Bit))
	dst = appendF32(dst, c.q.MPos)
	dst = appendF32(dst, c.q.MNeg)
	return append(dst, c.q.Bits...)
}

func decodeOneBit(payload []byte, dst *tensor.Tensor) error {
	d := dst.Data()
	want := 8 + (len(d)+7)/8
	if len(payload) != want {
		return fmt.Errorf("compress: 1-bit payload %d bytes, want %d", len(payload), want)
	}
	mPos := getF32(payload)
	mNeg := getF32(payload[4:])
	bits := payload[8:]
	for i := range d {
		if bits[i>>3]&(1<<(uint(i)&7)) != 0 {
			d[i] = mPos
		} else {
			d[i] = mNeg
		}
	}
	return nil
}

// decodeOneBitAdd accumulates the sign-bit payload in one pass (every
// element decodes to mPos or mNeg, so the add is per-element identical to
// decode-then-add); the length check runs before dst is touched.
func decodeOneBitAdd(payload []byte, dst *tensor.Tensor, _ int) error {
	d := dst.Data()
	want := 8 + (len(d)+7)/8
	if len(payload) != want {
		return fmt.Errorf("compress: 1-bit payload %d bytes, want %d", len(payload), want)
	}
	mPos := getF32(payload)
	mNeg := getF32(payload[4:])
	bits := payload[8:]
	for i := range d {
		if bits[i>>3]&(1<<(uint(i)&7)) != 0 {
			d[i] += mPos
		} else {
			d[i] += mNeg
		}
	}
	return nil
}
