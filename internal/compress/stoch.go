package compress

import (
	"threelc/internal/quant"
	"threelc/internal/tensor"
)

// stochCompressor is the "Stoch 3-value + QE" baseline (§5.1): stochastic
// ternary quantization in the style of TernGrad (without gradient clipping)
// combined with quartic encoding for a 1.6-bit representation. Stochastic
// quantization is unbiased, so — as in the paper, and unlike 3LC — it uses
// no error-accumulation buffer. It shares the ternary wire format with 3LC
// but never applies zero-run encoding.
type stochCompressor struct {
	shape []int
	n     int
	rng   *tensor.RNG
	tv    quant.ThreeValue // quantization scratch, reused across steps
	qbuf  []byte           // quartic scratch, reused across steps
	par   int              // chunked-encode fan-out cap (Options.CodecParallelism)
}

func newStochCompressor(shape []int, seed uint64, par int) *stochCompressor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	return &stochCompressor{
		shape: append([]int(nil), shape...),
		n:     n,
		par:   par,
		rng:   tensor.NewRNG(seed ^ 0x53746f6368335651), // "Stoch3VQ"
	}
}

func (c *stochCompressor) Scheme() Scheme { return SchemeStoch3QE }
func (c *stochCompressor) Name() string   { return "Stoch 3-value + QE" }

func (c *stochCompressor) Compress(in *tensor.Tensor) []byte {
	return c.CompressInto(in, nil)
}

func (c *stochCompressor) CompressInto(in *tensor.Tensor, dst []byte) []byte {
	if in.Len() != c.n {
		panic("compress: input size mismatch")
	}
	quant.QuantizeStochastic3Into(in, c.rng, &c.tv)
	// Stochastic draws are sequential in the RNG, so quantization stays
	// serial; quartic encoding of the result still shards across cores.
	var qe []byte
	qe, c.qbuf = encodeQuartic(c.tv.Q, c.qbuf, c.par)
	dst = append(dst, byte(SchemeStoch3QE))
	dst = appendF32(dst, c.tv.M)
	dst = append(dst, 0) // no ZRE
	return append(dst, qe...)
}
