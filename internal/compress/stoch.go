package compress

import (
	"threelc/internal/kernel"
	"threelc/internal/tensor"
)

// stochCompressor is the "Stoch 3-value + QE" baseline (§5.1): stochastic
// ternary quantization in the style of TernGrad (without gradient clipping)
// combined with quartic encoding for a 1.6-bit representation. Stochastic
// quantization is unbiased, so — as in the paper, and unlike 3LC — it uses
// no error-accumulation buffer. It shares the ternary wire format with 3LC
// but never applies zero-run encoding.
//
// Like 3LC it runs as two fused passes: a |max| reduction (parallel — the
// reduction is deterministic) and a fused stochastic-quantize + quartic-
// pack loop (serial: RNG draws are sequential, so the quantize pass cannot
// shard without changing the bytes).
type stochCompressor struct {
	shape []int
	n     int
	rng   *tensor.RNG
	par   int // reduction-pass fan-out cap (Options.CodecParallelism)
}

func newStochCompressor(shape []int, seed uint64, par int) *stochCompressor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	return &stochCompressor{
		shape: append([]int(nil), shape...),
		n:     n,
		par:   par,
		rng:   tensor.NewRNG(seed ^ 0x53746f6368335651), // "Stoch3VQ"
	}
}

func (c *stochCompressor) Scheme() Scheme { return SchemeStoch3QE }
func (c *stochCompressor) Name() string   { return "Stoch 3-value + QE" }

func (c *stochCompressor) Compress(in *tensor.Tensor) []byte {
	return c.CompressInto(in, nil)
}

//3lc:noalloc
func (c *stochCompressor) CompressInto(in *tensor.Tensor, dst []byte) []byte {
	if in.Len() != c.n {
		panic("compress: input size mismatch")
	}
	w1 := kernel.PassWorkers(c.n, c.par, kernel.SpanReduce)
	m := float64(kernel.MaxAbsParallel(in.Data(), w1))
	dst = append(dst, byte(SchemeStoch3QE))
	dst = appendF32(dst, float32(m))
	dst = append(dst, 0) // no ZRE
	return kernel.EncodeStoch(in.Data(), m, c.rng, dst)
}
