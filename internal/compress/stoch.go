package compress

import (
	"threelc/internal/encode"
	"threelc/internal/quant"
	"threelc/internal/tensor"
)

// stochCompressor is the "Stoch 3-value + QE" baseline (§5.1): stochastic
// ternary quantization in the style of TernGrad (without gradient clipping)
// combined with quartic encoding for a 1.6-bit representation. Stochastic
// quantization is unbiased, so — as in the paper, and unlike 3LC — it uses
// no error-accumulation buffer. It shares the ternary wire format with 3LC
// but never applies zero-run encoding.
type stochCompressor struct {
	shape []int
	n     int
	rng   *tensor.RNG
}

func newStochCompressor(shape []int, seed uint64) *stochCompressor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	return &stochCompressor{
		shape: append([]int(nil), shape...),
		n:     n,
		rng:   tensor.NewRNG(seed ^ 0x53746f6368335651), // "Stoch3VQ"
	}
}

func (c *stochCompressor) Scheme() Scheme { return SchemeStoch3QE }
func (c *stochCompressor) Name() string   { return "Stoch 3-value + QE" }

func (c *stochCompressor) Compress(in *tensor.Tensor) []byte {
	if in.Len() != c.n {
		panic("compress: input size mismatch")
	}
	tv := quant.QuantizeStochastic3(in, c.rng)
	qe := encode.QuarticEncode(tv.Q)
	wire := make([]byte, 1+4+1+len(qe))
	wire[0] = byte(SchemeStoch3QE)
	putF32(wire[1:], tv.M)
	wire[5] = 0 // no ZRE
	copy(wire[6:], qe)
	return wire
}
