package compress

import (
	"fmt"
	"sync"

	"threelc/internal/entropy"
	"threelc/internal/tensor"
)

// Optional streaming entropy second stage (§3.3, §6 of the paper): the
// general-purpose byte coders 3LC deliberately avoids on fast links pay
// for themselves on WAN links, where every wire byte costs real time.
// WithEntropy wraps any base codec so its wire messages pass through a
// Huffman or LZ stage after zero-run encoding.
//
// Wire format (self-describing, like every scheme):
//
//	[SchemeEntropy][1B stage id][stage body]
//	stage id := 0  stored   — body is the inner wire message verbatim
//	          | 1  huffman  — body is entropy.HuffmanEncode(inner wire)
//	          | 2  lz       — body is entropy.LZEncode(inner wire)
//
// The encoder codes optimistically and falls back to stored when the
// coded body would not beat the raw inner wire, so the stage's overhead
// is bounded at 2 bytes per message. Nesting is rejected: an inner wire
// that itself starts with SchemeEntropy fails to decode.
//
// The stage preserves the repo's steady-state zero-allocation contract:
// the inner wire is staged in a context-owned recycled buffer, the
// coders draw scratch from sync.Pools, and decode stages the inner wire
// in a pooled buffer before dispatching through the registry.

// EntropyAlgo selects the optional entropy second stage of a codec.
type EntropyAlgo uint8

// Entropy stage selectors for Options.Entropy.
const (
	EntropyOff EntropyAlgo = iota
	EntropyHuffman
	EntropyLZ
)

// String names the stage for design tables and wire diagnostics.
func (a EntropyAlgo) String() string {
	switch a {
	case EntropyOff:
		return "off"
	case EntropyHuffman:
		return "huffman"
	case EntropyLZ:
		return "lz"
	default:
		return fmt.Sprintf("entropy(%d)", uint8(a))
	}
}

// ParseEntropyAlgo parses a command-line stage name.
func ParseEntropyAlgo(s string) (EntropyAlgo, error) {
	switch s {
	case "", "off", "none":
		return EntropyOff, nil
	case "huffman":
		return EntropyHuffman, nil
	case "lz":
		return EntropyLZ, nil
	default:
		return EntropyOff, fmt.Errorf("compress: unknown entropy stage %q (want off|huffman|lz)", s)
	}
}

// Stage ids on the wire (the byte after SchemeEntropy).
const (
	entropyWireStored  = 0
	entropyWireHuffman = 1
	entropyWireLZ      = 2
)

// WithEntropy wraps c so every wire message passes through the entropy
// second stage. The wrapper forwards c's optional capabilities — a
// Stateful inner context keeps checkpointing (the stage itself is
// stateless), and a PreAccumulator inner context keeps the server's
// fused optimizer path (the stage re-wraps CompressPreAccumulated's
// output). algo EntropyOff returns c unchanged; wrapping a wrapper
// panics (nested stages never pay).
func WithEntropy(c Compressor, algo EntropyAlgo) Compressor {
	if algo == EntropyOff {
		return c
	}
	if algo != EntropyHuffman && algo != EntropyLZ {
		panic(fmt.Sprintf("compress: unknown entropy stage %d", algo))
	}
	if c.Scheme() == SchemeEntropy {
		panic("compress: WithEntropy applied to an already-wrapped context")
	}
	base := entropyCompressor{inner: c, algo: algo}
	st, hasSt := c.(Stateful)
	pa, hasPA := c.(PreAccumulator)
	switch {
	case hasSt && hasPA:
		return &entropyStatefulPreAcc{entropyStateful{base, st}, pa}
	case hasSt:
		return &entropyStateful{base, st}
	case hasPA:
		return &entropyPreAcc{base, pa}
	default:
		return &base
	}
}

type entropyCompressor struct {
	inner Compressor
	algo  EntropyAlgo
	buf   []byte // inner wire staging, recycled across steps
}

func (e *entropyCompressor) Scheme() Scheme { return SchemeEntropy }

func (e *entropyCompressor) Name() string {
	return e.inner.Name() + "+" + e.algo.String()
}

func (e *entropyCompressor) Compress(in *tensor.Tensor) []byte {
	return e.CompressInto(in, nil)
}

//3lc:noalloc
func (e *entropyCompressor) CompressInto(in *tensor.Tensor, dst []byte) []byte {
	e.buf = e.inner.CompressInto(in, e.buf[:0])
	if len(e.buf) == 0 {
		return dst // local steps: transmit nothing
	}
	return appendEntropyWire(dst, e.algo, e.buf)
}

type entropyStateful struct {
	entropyCompressor
	st Stateful
}

func (e *entropyStateful) AppendState(dst []byte) []byte { return e.st.AppendState(dst) }
func (e *entropyStateful) RestoreState(src []byte) error { return e.st.RestoreState(src) }

type entropyPreAcc struct {
	entropyCompressor
	pa PreAccumulator
}

func (e *entropyPreAcc) AccData() []float32 { return e.pa.AccData() }

func (e *entropyPreAcc) CompressPreAccumulated(maxAbs float32, dst []byte) []byte {
	return entropyPreAccumulated(&e.entropyCompressor, e.pa, maxAbs, dst)
}

type entropyStatefulPreAcc struct {
	entropyStateful
	pa PreAccumulator
}

func (e *entropyStatefulPreAcc) AccData() []float32 { return e.pa.AccData() }

func (e *entropyStatefulPreAcc) CompressPreAccumulated(maxAbs float32, dst []byte) []byte {
	return entropyPreAccumulated(&e.entropyCompressor, e.pa, maxAbs, dst)
}

func entropyPreAccumulated(e *entropyCompressor, pa PreAccumulator, maxAbs float32, dst []byte) []byte {
	e.buf = pa.CompressPreAccumulated(maxAbs, e.buf[:0])
	if len(e.buf) == 0 {
		return dst
	}
	return appendEntropyWire(dst, e.algo, e.buf)
}

// appendEntropyWire appends [SchemeEntropy][stage id][body] for inner,
// coding with algo and falling back to stored when coding does not beat
// the raw inner wire.
func appendEntropyWire(dst []byte, algo EntropyAlgo, inner []byte) []byte {
	base := len(dst)
	dst = append(dst, byte(SchemeEntropy), entropyWireStored)
	mark := len(dst)
	switch algo {
	case EntropyHuffman:
		dst = entropy.HuffmanEncodeInto(dst, inner)
		dst[base+1] = entropyWireHuffman
	case EntropyLZ:
		dst = entropy.LZEncodeInto(dst, inner)
		dst[base+1] = entropyWireLZ
	default:
		panic(fmt.Sprintf("compress: unknown entropy stage %d", algo))
	}
	if len(dst)-mark >= len(inner) {
		dst = dst[:mark]
		dst[base+1] = entropyWireStored
		dst = append(dst, inner...)
	}
	return dst
}

// entropyBufPool stages decoded inner wires so the decode path allocates
// nothing in steady state.
var entropyBufPool = sync.Pool{New: func() any { return new([]byte) }}

// entropyInner recovers the inner wire message from an entropy payload
// (the bytes after the SchemeEntropy identifier), staging coded bodies
// in *buf. The returned slice aliases either payload (stored) or *buf
// (coded); callers must not retain it past the pooled buffer's return.
func entropyInner(payload []byte, buf *[]byte) ([]byte, error) {
	if len(payload) < 1 {
		return nil, fmt.Errorf("compress: entropy payload missing stage id")
	}
	stage, body := payload[0], payload[1:]
	var inner []byte
	switch stage {
	case entropyWireStored:
		inner = body
	case entropyWireHuffman:
		b, err := entropy.HuffmanDecodeInto((*buf)[:0], body)
		if err != nil {
			return nil, err
		}
		*buf, inner = b, b
	case entropyWireLZ:
		b, err := entropy.LZDecodeInto((*buf)[:0], body)
		if err != nil {
			return nil, err
		}
		*buf, inner = b, b
	default:
		return nil, fmt.Errorf("compress: unknown entropy stage id %d", stage)
	}
	if len(inner) > 0 && Scheme(inner[0]) == SchemeEntropy {
		return nil, fmt.Errorf("compress: nested entropy stage rejected")
	}
	return inner, nil
}

func init() {
	RegisterDecoder(SchemeEntropy, func(payload []byte, dst *tensor.Tensor) error {
		bp := entropyBufPool.Get().(*[]byte)
		inner, err := entropyInner(payload, bp)
		if err == nil {
			err = DecompressInto(inner, dst)
		}
		entropyBufPool.Put(bp)
		return err
	})
	// The add path inherits the inner decoder's validate-then-accumulate
	// contract: every entropy-stage failure happens before dst is touched.
	RegisterAddDecoder(SchemeEntropy, func(payload []byte, dst *tensor.Tensor, workers int) error {
		bp := entropyBufPool.Get().(*[]byte)
		inner, err := entropyInner(payload, bp)
		if err == nil {
			err = DecompressAddInto(inner, dst, workers)
		}
		entropyBufPool.Put(bp)
		return err
	})
}
