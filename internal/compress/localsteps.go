package compress

import (
	"fmt"

	"threelc/internal/quant"
	"threelc/internal/tensor"
)

func init() {
	// Local-steps wires carry raw floats, exactly like the uncompressed
	// baseline; only the scheme byte differs. (The empty non-transmitting
	// wire never reaches the registry: DecompressInto and
	// DecompressAddInto both special-case zero-length messages.)
	RegisterDecoder(SchemeLocalSteps, decodeRaw)
	RegisterAddDecoder(SchemeLocalSteps, decodeRawAdd)
}

// localStepsCompressor is the "2 local steps" baseline (§5.1): state
// changes are transmitted only every Interval-th step; unsent updates are
// accumulated locally and sent (uncompressed) at the next transmitting
// step. On a non-transmitting step nothing is appended — the empty wire
// decodes to all zeros — and no bytes cross the network.
type localStepsCompressor struct {
	shape    []int
	n        int
	interval int
	step     int
	acc      *quant.ErrorAccumulator
}

func newLocalStepsCompressor(shape []int, interval int) *localStepsCompressor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	return &localStepsCompressor{
		shape:    append([]int(nil), shape...),
		n:        n,
		interval: interval,
		acc:      quant.NewErrorAccumulator(shape...),
	}
}

func (c *localStepsCompressor) Scheme() Scheme { return SchemeLocalSteps }
func (c *localStepsCompressor) Name() string {
	return fmt.Sprintf("%d local steps", c.interval)
}

func (c *localStepsCompressor) Compress(in *tensor.Tensor) []byte {
	return c.CompressInto(in, nil)
}

//3lc:noalloc
func (c *localStepsCompressor) CompressInto(in *tensor.Tensor, dst []byte) []byte {
	if in.Len() != c.n {
		panic("compress: input size mismatch")
	}
	sum := c.acc.Accumulate(in)
	c.step++
	if c.step%c.interval != 0 {
		return dst // accumulate only; nothing on the wire this step
	}
	dst = append(dst, byte(SchemeLocalSteps))
	dst = appendRaw(dst, sum.Data())
	// Everything accumulated was sent; clear the buffer.
	c.acc.Reset()
	return dst
}
