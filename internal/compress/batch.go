package compress

import (
	"fmt"

	"threelc/internal/kernel"
	"threelc/internal/tensor"
)

// TernaryBatch coalesces many small 3LC compression contexts into one
// batched compression unit: the members' error-accumulation buffers are
// adjacent slices of a single contiguous float32 arena, their wire
// messages are adjacent regions of a single shared byte arena addressed
// by an offset table, and one CompressAll call runs every member's two
// fused passes back to back as plain serial kernels.
//
// The point is dispatch overhead, not algorithmic change: a model's long
// tail of tiny tensors (bias vectors, norm scales) pays per-tensor pool
// scheduling, PassWorkers sizing, and wire-buffer bookkeeping that can
// exceed the actual kernel work. Batched, the whole tail is one pool job
// sweeping contiguous accumulator memory with zero goroutine spawns and
// zero ZRE chunk-stitching (serial encode emits final bytes directly).
//
// Each member is a real *threeLCCompressor, so wires, residuals, and
// checkpoint state are bit-identical to unbatched per-tensor contexts:
// Member(k) hands callers the ordinary Compressor / PreAccumulator /
// Stateful interfaces and package ps's checkpointing works unchanged.
type TernaryBatch struct {
	members []*threeLCCompressor
	arena   []float32 // contiguous error-accumulation backing store

	wire  []byte   // shared wire arena, reused across steps
	ends  []int    // offset table: member k's wire is wire[ends[k-1]:ends[k]]
	wires [][]byte // per-member views into wire, rebuilt each step
}

// NewTernaryBatch builds a batch of 3LC contexts, one per shape, whose
// accumulation buffers tile one contiguous arena in member order. opt is
// interpreted exactly as New(SchemeThreeLC, ...) would: Sparsity 0 means
// 1. Members always run their kernels serially (the batch itself is the
// unit of parallelism — callers schedule whole batches onto their pools),
// so CodecParallelism is ignored.
func NewTernaryBatch(shapes [][]int, opt Options) *TernaryBatch {
	sp := opt.Sparsity
	if sp == 0 {
		sp = 1
	}
	total := 0
	for _, shape := range shapes {
		n := 1
		for _, d := range shape {
			n *= d
		}
		total += n
	}
	b := &TernaryBatch{
		members: make([]*threeLCCompressor, 0, len(shapes)),
		arena:   make([]float32, total),
		ends:    make([]int, len(shapes)),
		wires:   make([][]byte, len(shapes)),
	}
	off := 0
	for _, shape := range shapes {
		n := 1
		for _, d := range shape {
			n *= d
		}
		acc := tensor.FromSlice(b.arena[off:off+n], shape...)
		b.members = append(b.members, newThreeLCCompressorOver(shape, sp, opt.ZeroRun, 1, acc))
		off += n
	}
	return b
}

// Len returns the number of member contexts.
func (b *TernaryBatch) Len() int { return len(b.members) }

// Elems returns the total element count across all members (the arena
// length) — the batch's cost measure for pool scheduling.
func (b *TernaryBatch) Elems() int { return len(b.arena) }

// Member returns member k's compression context. It implements
// Compressor, PreAccumulator, and Stateful like any standalone 3LC
// context; driving it directly (outside CompressAll) stays bit-exact but
// forfeits the batching.
func (b *TernaryBatch) Member(k int) Compressor { return b.members[k] }

// CompressAll runs one full compression step for every member: member
// k's input is get(k) (length must match the member's element count),
// accumulated into its arena slice fused with the |max| reduction, then
// encoded into the shared wire arena. The returned slice holds one wire
// message per member, valid until the next CompressAll /
// EncodePreAccumulated call; steady state allocates nothing once the
// wire arena's capacity converges.
//
// Wires and residuals are bit-identical to calling each member's
// CompressInto with the same inputs.
func (b *TernaryBatch) CompressAll(get func(k int) []float32) [][]byte {
	w := b.wire[:0]
	for k, c := range b.members {
		in := get(k)
		if len(in) != c.n {
			panic(fmt.Sprintf("compress: batch member %d input has %d elements, want %d", k, len(in), c.n))
		}
		// Serial fused pass 1 + pass 2 (see CompressInto): members are
		// below the parallel threshold by construction, so the dispatch
		// through PassWorkers is skipped, not just short-circuited.
		w = c.encodeAccumulated(kernel.AccumulateMaxAbs(c.acc.Buffer().Data(), in), w)
		b.ends[k] = len(w)
	}
	b.wire = w
	return b.reslice()
}

// EncodePreAccumulated runs only compress pass 2 for every member, for
// producers that already folded the step's state change into the
// members' accumulation buffers (the PreAccumulator protocol): maxes[k]
// must be max|member k's AccData| reduced with the kernel's
// accumulate-max semantics. The parameter server's pull leg uses this
// after its fused optimizer sweep.
func (b *TernaryBatch) EncodePreAccumulated(maxes []float32) [][]byte {
	if len(maxes) != len(b.members) {
		panic(fmt.Sprintf("compress: batch got %d maxes for %d members", len(maxes), len(b.members)))
	}
	w := b.wire[:0]
	for k, c := range b.members {
		w = c.encodeAccumulated(maxes[k], w)
		b.ends[k] = len(w)
	}
	b.wire = w
	return b.reslice()
}

// reslice rebuilds the per-member wire views from the offset table. It
// must run after the encode loop, not inside it: appending member k+1's
// wire can grow (reallocate) the shared arena, which would strand views
// taken of member k mid-loop.
func (b *TernaryBatch) reslice() [][]byte {
	start := 0
	for k, end := range b.ends {
		b.wires[k] = b.wire[start:end:end]
		start = end
	}
	return b.wires
}
