package compress

import (
	"fmt"
	"math"

	"threelc/internal/tensor"
)

func mathFloat32bits(v float32) uint32     { return math.Float32bits(v) }
func mathFloat32frombits(b uint32) float32 { return math.Float32frombits(b) }

// noneCompressor is the "32-bit float" baseline: state changes are
// transmitted verbatim as little-endian float32.
type noneCompressor struct {
	shape []int
	n     int
}

func (c *noneCompressor) Scheme() Scheme { return SchemeNone }
func (c *noneCompressor) Name() string   { return "32-bit float" }

func (c *noneCompressor) Compress(in *tensor.Tensor) []byte {
	data := in.Data()
	if len(data) != c.n {
		panic("compress: input size mismatch")
	}
	wire := make([]byte, 1+4*len(data))
	wire[0] = byte(SchemeNone)
	encodeRawInto(data, wire[1:])
	return wire
}

func encodeRawInto(data []float32, dst []byte) {
	for i, v := range data {
		putF32(dst[4*i:], v)
	}
}

func decodeRaw(payload []byte, dst *tensor.Tensor) error {
	d := dst.Data()
	if len(payload) != 4*len(d) {
		return fmt.Errorf("compress: raw payload %d bytes, want %d", len(payload), 4*len(d))
	}
	for i := range d {
		d[i] = getF32(payload[4*i:])
	}
	return nil
}
