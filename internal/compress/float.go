package compress

import (
	"fmt"
	"math"

	"threelc/internal/tensor"
)

func mathFloat32bits(v float32) uint32     { return math.Float32bits(v) }
func mathFloat32frombits(b uint32) float32 { return math.Float32frombits(b) }

func init() {
	RegisterDecoder(SchemeNone, decodeRaw)
	RegisterAddDecoder(SchemeNone, decodeRawAdd)
}

// noneCompressor is the "32-bit float" baseline: state changes are
// transmitted verbatim as little-endian float32.
type noneCompressor struct {
	shape []int
	n     int
}

func (c *noneCompressor) Scheme() Scheme { return SchemeNone }
func (c *noneCompressor) Name() string   { return "32-bit float" }

func (c *noneCompressor) Compress(in *tensor.Tensor) []byte {
	return c.CompressInto(in, nil)
}

//3lc:noalloc
func (c *noneCompressor) CompressInto(in *tensor.Tensor, dst []byte) []byte {
	data := in.Data()
	if len(data) != c.n {
		panic("compress: input size mismatch")
	}
	dst = append(dst, byte(SchemeNone))
	return appendRaw(dst, data)
}

// appendRaw appends data as little-endian float32 to dst.
func appendRaw(dst []byte, data []float32) []byte {
	off := len(dst)
	dst = growBytes(dst, 4*len(data))
	for i, v := range data {
		putF32(dst[off+4*i:], v)
	}
	return dst
}

func decodeRaw(payload []byte, dst *tensor.Tensor) error {
	d := dst.Data()
	if len(payload) != 4*len(d) {
		return fmt.Errorf("compress: raw payload %d bytes, want %d", len(payload), 4*len(d))
	}
	for i := range d {
		d[i] = getF32(payload[4*i:])
	}
	return nil
}

// decodeRawAdd accumulates raw float payloads in one pass: dst[i] += v is
// the exact add the staged decode-then-add performs, and the length check
// rejects malformed payloads before dst is touched.
func decodeRawAdd(payload []byte, dst *tensor.Tensor, _ int) error {
	d := dst.Data()
	if len(payload) != 4*len(d) {
		return fmt.Errorf("compress: raw payload %d bytes, want %d", len(payload), 4*len(d))
	}
	for i := range d {
		d[i] += getF32(payload[4*i:])
	}
	return nil
}
