package compress

import (
	"math"
	"testing"

	"threelc/internal/kernel"
	"threelc/internal/tensor"
)

// addTestCases is one configuration per implemented scheme — all 8 codecs
// of the paper's evaluation — used to pin the fused decode-accumulate
// against the staged decode-then-add reference.
func addTestCases() []struct {
	name string
	s    Scheme
	o    Options
} {
	return []struct {
		name string
		s    Scheme
		o    Options
	}{
		{"32-bit float", SchemeNone, Options{}},
		{"8-bit int", SchemeInt8, Options{}},
		{"3LC", SchemeThreeLC, Options{Sparsity: 1.75, ZeroRun: true}},
		{"3LC no-ZRE", SchemeThreeLC, Options{Sparsity: 1.0, ZeroRun: false}},
		{"Stoch 3-value + QE", SchemeStoch3QE, Options{Seed: 9}},
		{"MQE 1-bit int", SchemeMQE1Bit, Options{}},
		{"25% sparsification", SchemeTopK, Options{Fraction: 0.25, Seed: 9}},
		{"2 local steps", SchemeLocalSteps, Options{Interval: 2}},
		{"round-robin", SchemeRoundRobin, Options{Parts: 3}},
	}
}

// TestDecompressAddMatchesDecodeThenAdd is the aggregation differential
// test: for every codec, accumulating wires with DecompressAddInto must
// leave the accumulator byte-identical to DecompressInto-into-scratch
// followed by Add — across multiple steps (error-accumulation state
// advancing, including local-steps' empty wires) and both the serial and
// kernel-parallel fan-outs.
func TestDecompressAddMatchesDecodeThenAdd(t *testing.T) {
	const n = 6007
	for _, tc := range addTestCases() {
		t.Run(tc.name, func(t *testing.T) {
			ctx := New(tc.s, []int{n}, tc.o)
			scratch := tensor.New(n)
			want := tensor.New(n)
			gotSerial := tensor.New(n)
			gotPar := tensor.New(n)
			for step := 0; step < 4; step++ {
				in := randTensor(uint64(step)+31, n, 0.01)
				wire := ctx.CompressInto(in, nil)

				if err := DecompressInto(wire, scratch); err != nil {
					t.Fatal(err)
				}
				want.Add(scratch)
				if err := DecompressAddInto(wire, gotSerial, 1); err != nil {
					t.Fatal(err)
				}
				if err := DecompressAddInto(wire, gotPar, 4); err != nil {
					t.Fatal(err)
				}
			}
			wantBits := want.Data()
			for i, v := range gotSerial.Data() {
				if math.Float32bits(v) != math.Float32bits(wantBits[i]) {
					t.Fatalf("serial fused add differs at %d: %x vs %x",
						i, math.Float32bits(v), math.Float32bits(wantBits[i]))
				}
			}
			for i, v := range gotPar.Data() {
				if math.Float32bits(v) != math.Float32bits(wantBits[i]) {
					t.Fatalf("parallel fused add differs at %d", i)
				}
			}
		})
	}
}

// TestDecompressAddIntoRejectsWithoutCorruption truncates and corrupts
// wires for every scheme and asserts a rejected message leaves the
// accumulator bit-identical — the accumulator-safety contract of
// AddDecodeFunc (and of the decode-then-add fallback).
func TestDecompressAddIntoRejectsWithoutCorruption(t *testing.T) {
	const n = 1024
	for _, tc := range addTestCases() {
		t.Run(tc.name, func(t *testing.T) {
			ctx := New(tc.s, []int{n}, tc.o)
			var wire []byte
			for len(wire) == 0 { // skip local-steps' empty first step
				wire = ctx.CompressInto(randTensor(3, n, 0.01), nil)
			}
			acc := randTensor(5, n, 1)
			snap := acc.Clone()
			bad := [][]byte{
				wire[:len(wire)-1],
				wire[:1],
				append(append([]byte{}, wire...), 0xff),
			}
			for bi, w := range bad {
				if err := DecompressAddInto(w, acc, 1); err == nil {
					t.Fatalf("malformed wire %d accepted", bi)
				}
				for i, v := range acc.Data() {
					if math.Float32bits(v) != math.Float32bits(snap.Data()[i]) {
						t.Fatalf("malformed wire %d corrupted accumulator at %d", bi, i)
					}
				}
			}
		})
	}
}

// TestDecompressAddEmptyWire pins the empty-wire (local steps,
// non-transmitting) semantics: an explicit += 0 sweep, which flips
// negative zeros to +0 exactly as adding a zeroed scratch tensor does.
func TestDecompressAddEmptyWire(t *testing.T) {
	acc := tensor.FromSlice([]float32{1, float32(math.Copysign(0, -1)), -2, 0}, 4)
	want := tensor.FromSlice(append([]float32(nil), acc.Data()...), 4)
	scratch := tensor.New(4)
	if err := DecompressInto(nil, scratch); err != nil {
		t.Fatal(err)
	}
	want.Add(scratch)
	if err := DecompressAddInto(nil, acc, 1); err != nil {
		t.Fatal(err)
	}
	for i, v := range acc.Data() {
		if math.Float32bits(v) != math.Float32bits(want.Data()[i]) {
			t.Fatalf("empty-wire add differs at %d: %x vs %x",
				i, math.Float32bits(v), math.Float32bits(want.Data()[i]))
		}
	}
	if math.Signbit(float64(acc.Data()[1])) {
		t.Fatal("empty-wire add must normalize -0 to +0 like the staged add")
	}
}

// TestDecompressAddPassCount extends the pass-count invariant to the
// aggregation path: DecompressAddInto on a ternary wire is exactly ONE
// sweep of tensor memory — decode+add = 1 pass.
func TestDecompressAddPassCount(t *testing.T) {
	var passes []string
	kernel.PassHook = func(name string, elems int) { passes = append(passes, name) }
	defer func() { kernel.PassHook = nil }()

	const n = 9001
	ctx := New(SchemeThreeLC, []int{n}, Options{Sparsity: 1.75, ZeroRun: true})
	wire := ctx.CompressInto(randTensor(1, n, 0.01), nil)
	acc := tensor.New(n)

	passes = nil
	if err := DecompressAddInto(wire, acc, 1); err != nil {
		t.Fatal(err)
	}
	if len(passes) != 1 || passes[0] != "lut-decode-add" {
		t.Fatalf("DecompressAddInto swept tensor memory %d times (%v), want exactly 1", len(passes), passes)
	}
}

// TestInt8FusedEncodeMatchesLegacy pins the chunked-parallel int8 encode
// against the wire bytes the pre-kernel staged encoder produced (scheme
// byte + float32 M + one int8 byte per element), serial and parallel.
func TestInt8FusedEncodeMatchesLegacy(t *testing.T) {
	const n = 4099
	in := randTensor(13, n, 0.01)
	serial := New(SchemeInt8, []int{n}, Options{CodecParallelism: 1})
	parallel := New(SchemeInt8, []int{n}, Options{CodecParallelism: 8})
	a := serial.CompressInto(in, nil)
	b := parallel.CompressInto(in, nil)
	if string(a) != string(b) {
		t.Fatal("int8 parallel encode differs from serial")
	}
	// Round trip through the registry decoder must reproduce the staged
	// dequantization exactly.
	out := tensor.New(n)
	if err := DecompressInto(a, out); err != nil {
		t.Fatal(err)
	}
	m := in.MaxAbs()
	scale := m / 127
	for i, v := range out.Data() {
		q := math.Round(float64(in.Data()[i]) * float64(127) / float64(m))
		if q > 127 {
			q = 127
		} else if q < -127 {
			q = -127
		}
		want := scale * float32(int8(q))
		if math.Float32bits(v) != math.Float32bits(want) {
			t.Fatalf("int8 round trip differs at %d: %v vs %v", i, v, want)
		}
	}
}
