package compress

import (
	"bytes"
	"testing"

	"threelc/internal/tensor"
)

// baseSchemes is one configuration per base design — the paper's 8
// codecs — used to pin the entropy stage against every wire format.
var baseSchemes = []struct {
	name string
	s    Scheme
	o    Options
}{
	{"float32", SchemeNone, Options{}},
	{"int8", SchemeInt8, Options{}},
	{"3lc", SchemeThreeLC, Options{Sparsity: 1.75, ZeroRun: true}},
	{"stoch3", SchemeStoch3QE, Options{Seed: 3}},
	{"mqe1bit", SchemeMQE1Bit, Options{}},
	{"topk", SchemeTopK, Options{Fraction: 0.25, Seed: 3}},
	{"localsteps", SchemeLocalSteps, Options{Interval: 2}},
	{"roundrobin", SchemeRoundRobin, Options{Parts: 3}},
}

// TestEntropyRoundTripByteExact drives every base codec with and without
// the entropy stage over several steps: the wrapped wire must decode to
// exactly the plain wire's decode, and the inner wire recovered from the
// entropy payload must be byte-identical to the plain context's wire
// (same seeds, same error-accumulation trajectory).
func TestEntropyRoundTripByteExact(t *testing.T) {
	const n = 1003
	shape := []int{n}
	for _, algo := range []EntropyAlgo{EntropyHuffman, EntropyLZ} {
		for _, sc := range baseSchemes {
			t.Run(sc.name+"+"+algo.String(), func(t *testing.T) {
				o := sc.o
				o.Entropy = algo
				plain := New(sc.s, shape, sc.o)
				wrapped := New(sc.s, shape, o)
				if wrapped.Scheme() != SchemeEntropy {
					t.Fatalf("wrapped scheme = %v", wrapped.Scheme())
				}
				rng := tensor.NewRNG(77)
				in := tensor.New(n)
				var wantWire, gotWire []byte
				for step := 0; step < 6; step++ {
					tensor.FillNormal(in, 0.02, rng)
					wantWire = plain.CompressInto(in, wantWire[:0])
					gotWire = wrapped.CompressInto(in, gotWire[:0])
					if len(wantWire) == 0 {
						if len(gotWire) != 0 {
							t.Fatalf("step %d: wrapped emitted %d bytes on a non-transmitting step", step, len(gotWire))
						}
						continue
					}
					if Scheme(gotWire[0]) != SchemeEntropy {
						t.Fatalf("step %d: wire scheme byte %d", step, gotWire[0])
					}
					var buf []byte
					inner, err := entropyInner(gotWire[1:], &buf)
					if err != nil {
						t.Fatalf("step %d: entropy stage decode: %v", step, err)
					}
					if !bytes.Equal(inner, wantWire) {
						t.Fatalf("step %d: inner wire diverges from plain context (%d vs %d bytes)", step, len(inner), len(wantWire))
					}
					want, err := Decompress(wantWire, shape)
					if err != nil {
						t.Fatalf("step %d: plain decode: %v", step, err)
					}
					got, err := Decompress(gotWire, shape)
					if err != nil {
						t.Fatalf("step %d: wrapped decode: %v", step, err)
					}
					if !bytes.Equal(f32Bytes(want.Data()), f32Bytes(got.Data())) {
						t.Fatalf("step %d: decoded tensors differ", step)
					}
				}
			})
		}
	}
}

// TestEntropyAddPathMatchesDecodeThenAdd pins the fused aggregation path
// of the entropy wrapper: DecompressAddInto on an entropy wire must be
// bit-identical to decoding into scratch and adding, and a corrupt
// entropy stage must leave the accumulator untouched.
func TestEntropyAddPathMatchesDecodeThenAdd(t *testing.T) {
	const n = 2048
	shape := []int{n}
	o := Options{Sparsity: 1.75, ZeroRun: true, Entropy: EntropyHuffman}
	ctx := New(SchemeThreeLC, shape, o)
	rng := tensor.NewRNG(9)
	in := tensor.New(n)
	tensor.FillNormal(in, 0.05, rng)
	wire := ctx.CompressInto(in, nil)

	acc := tensor.New(n)
	tensor.FillNormal(acc, 0.5, rng)
	want := tensor.New(n)
	copy(want.Data(), acc.Data())
	scratch := tensor.New(n)
	if err := DecompressInto(wire, scratch); err != nil {
		t.Fatal(err)
	}
	want.Add(scratch)

	got := tensor.New(n)
	copy(got.Data(), acc.Data())
	if err := DecompressAddInto(wire, got, 1); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(f32Bytes(want.Data()), f32Bytes(got.Data())) {
		t.Fatal("fused entropy add diverges from decode-then-add")
	}

	// Corrupt the coded body: the accumulator must stay bit-identical.
	bad := append([]byte(nil), wire...)
	bad[len(bad)-1] ^= 0xFF
	bad = bad[:len(bad)-3]
	before := append([]byte(nil), f32Bytes(got.Data())...)
	if err := DecompressAddInto(bad, got, 1); err == nil {
		t.Fatal("corrupt entropy wire accepted")
	}
	if !bytes.Equal(before, f32Bytes(got.Data())) {
		t.Fatal("accumulator modified by rejected wire")
	}
}

// TestEntropyNestedRejected: an inner wire that itself claims
// SchemeEntropy must fail to decode, and WithEntropy refuses to stack.
func TestEntropyNestedRejected(t *testing.T) {
	inner := []byte{byte(SchemeEntropy), entropyWireStored, 1, 2, 3}
	wire := appendEntropyWire(nil, EntropyLZ, inner)
	if err := DecompressInto(wire, tensor.New(4)); err == nil {
		t.Fatal("nested entropy wire accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("WithEntropy on a wrapped context did not panic")
		}
	}()
	WithEntropy(New(SchemeThreeLC, []int{8}, Options{Entropy: EntropyHuffman}), EntropyLZ)
}

// TestEntropyStoredFallback: incompressible inner wires (raw float32
// noise) must ride the stored stage, bounding overhead at 2 bytes.
func TestEntropyStoredFallback(t *testing.T) {
	const n = 512
	rng := tensor.NewRNG(4)
	in := tensor.New(n)
	tensor.FillNormal(in, 1.0, rng)
	plain := New(SchemeNone, []int{n}, Options{})
	wrapped := New(SchemeNone, []int{n}, Options{Entropy: EntropyHuffman})
	pw := plain.Compress(in)
	ww := wrapped.Compress(in)
	if len(ww) > len(pw)+2 {
		t.Fatalf("entropy overhead on incompressible wire: %d vs %d bytes", len(ww), len(pw))
	}
	if ww[1] != entropyWireStored {
		t.Fatalf("stage id %d, want stored", ww[1])
	}
	out, err := Decompress(ww, []int{n})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(f32Bytes(out.Data()), f32Bytes(in.Data())) {
		t.Fatal("stored-stage round trip mismatch")
	}
}

// TestEntropyCompressesSkewedWire: the stage's reason to exist — on a
// skewed quartic 3LC wire at high sparsity, Huffman must beat the plain
// wire by a measurable margin (the benchcheck gate asserts >= 1.1x; the
// test uses the same workload).
func TestEntropyCompressesSkewedWire(t *testing.T) {
	const n = 1 << 16
	rng := tensor.NewRNG(15)
	in := tensor.New(n)
	tensor.FillNormal(in, 0.01, rng)
	plain := New(SchemeThreeLC, []int{n}, Options{Sparsity: 1.75, ZeroRun: true})
	wrapped := New(SchemeThreeLC, []int{n}, Options{Sparsity: 1.75, ZeroRun: true, Entropy: EntropyHuffman})
	pw := plain.Compress(in)
	ww := wrapped.Compress(in)
	ratio := float64(len(pw)) / float64(len(ww))
	t.Logf("3LC wire %d B -> entropy-wrapped %d B (ratio %.3f)", len(pw), len(ww), ratio)
	if ratio < 1.1 {
		t.Errorf("entropy ratio %.3f on skewed quartic wire, want >= 1.1", ratio)
	}
}

// TestEntropyStatefulForwarding: checkpoint state flows through the
// wrapper — capture from one wrapped context, restore into another, and
// the subsequent wires must be bit-identical.
func TestEntropyStatefulForwarding(t *testing.T) {
	const n = 1024
	shape := []int{n}
	o := Options{Sparsity: 1.6, ZeroRun: true, Entropy: EntropyLZ}
	a := New(SchemeThreeLC, shape, o)
	b := New(SchemeThreeLC, shape, o)
	as, ok := a.(Stateful)
	if !ok {
		t.Fatal("entropy-wrapped 3LC lost Stateful")
	}
	bs := b.(Stateful)

	rng := tensor.NewRNG(31)
	in := tensor.New(n)
	for step := 0; step < 3; step++ {
		tensor.FillNormal(in, 0.03, rng)
		a.Compress(in)
	}
	if err := bs.RestoreState(as.AppendState(nil)); err != nil {
		t.Fatal(err)
	}
	tensor.FillNormal(in, 0.03, rng)
	if !bytes.Equal(a.Compress(in), b.Compress(in)) {
		t.Fatal("restored wrapped context diverges")
	}

	// Stateless bases must not grow a Stateful facade through the wrapper.
	if _, ok := New(SchemeInt8, shape, Options{Entropy: EntropyHuffman}).(Stateful); ok {
		t.Fatal("entropy-wrapped int8 claims Stateful")
	}
}

// TestEntropyPreAccumulatorForwarding: the server's fused optimizer path
// (PreAccumulator) must survive wrapping AND still emit entropy wires.
func TestEntropyPreAccumulatorForwarding(t *testing.T) {
	const n = 4096
	shape := []int{n}
	o := Options{Sparsity: 1.75, ZeroRun: true, Entropy: EntropyHuffman}
	wrapped := New(SchemeThreeLC, shape, o)
	pa, ok := wrapped.(PreAccumulator)
	if !ok {
		t.Fatal("entropy-wrapped 3LC lost PreAccumulator")
	}
	ref := New(SchemeThreeLC, shape, o)

	rng := tensor.NewRNG(41)
	in := tensor.New(n)
	tensor.FillNormal(in, 0.02, rng)

	// Fold the state change into AccData exactly as ps does, reduce
	// max|acc| with ascending-index semantics, and compare against the
	// reference context driven through CompressInto.
	acc := pa.AccData()
	var maxAbs float32
	for i, v := range in.Data() {
		acc[i] += v
		if a := abs32(acc[i]); a > maxAbs {
			maxAbs = a
		}
	}
	got := pa.CompressPreAccumulated(maxAbs, nil)
	want := ref.CompressInto(in, nil)
	if !bytes.Equal(got, want) {
		t.Fatalf("pre-accumulated entropy wire diverges (%d vs %d bytes)", len(got), len(want))
	}
	if Scheme(got[0]) != SchemeEntropy {
		t.Fatalf("pre-accumulated wire skipped the entropy stage (scheme %d)", got[0])
	}

	if _, ok := New(SchemeInt8, shape, Options{Entropy: EntropyHuffman}).(PreAccumulator); ok {
		t.Fatal("entropy-wrapped int8 claims PreAccumulator")
	}
}

// TestEntropySteadyStateAllocs extends the zero-allocation guarantee to
// the wrapped compress + decompress + decode-accumulate round trip.
func TestEntropySteadyStateAllocs(t *testing.T) {
	const n = 1 << 14
	for _, algo := range []EntropyAlgo{EntropyHuffman, EntropyLZ} {
		t.Run(algo.String(), func(t *testing.T) {
			ctx := New(SchemeThreeLC, []int{n}, Options{Sparsity: 1.75, ZeroRun: true, Entropy: algo})
			rng := tensor.NewRNG(5)
			in := tensor.New(n)
			tensor.FillNormal(in, 0.01, rng)
			out := tensor.New(n)
			var buf []byte
			for i := 0; i < 4; i++ {
				buf = ctx.CompressInto(in, buf[:0])
				if err := DecompressInto(buf, out); err != nil {
					t.Fatal(err)
				}
				if err := DecompressAddInto(buf, out, 1); err != nil {
					t.Fatal(err)
				}
			}
			allocs := testing.AllocsPerRun(20, func() {
				buf = ctx.CompressInto(in, buf[:0])
				if err := DecompressInto(buf, out); err != nil {
					t.Fatal(err)
				}
				if err := DecompressAddInto(buf, out, 1); err != nil {
					t.Fatal(err)
				}
			})
			if allocs > 0 {
				t.Errorf("steady-state entropy round trip allocates %.1f times/op, want 0", allocs)
			}
		})
	}
}

func abs32(v float32) float32 {
	if v < 0 {
		return -v
	}
	return v
}

func f32Bytes(s []float32) []byte {
	out := make([]byte, 4*len(s))
	for i, v := range s {
		putF32(out[4*i:], v)
	}
	return out
}
