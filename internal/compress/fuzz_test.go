package compress

import (
	"testing"

	"threelc/internal/tensor"
)

// fuzzSchemes is the corpus configuration: at least one entry per
// registered wire scheme (TestFuzzCorpusCoversEveryRegisteredDecoder
// enforces this), so corrupt-wire fuzzing exercises every decoder in the
// registry. LocalSteps uses Interval 1 so its wire is non-empty.
var fuzzSchemes = []struct {
	s Scheme
	o Options
}{
	{SchemeNone, Options{}},
	{SchemeInt8, Options{}},
	{SchemeThreeLC, Options{Sparsity: 1.5, ZeroRun: true}},
	{SchemeThreeLC, Options{Sparsity: 1.0, ZeroRun: false}},
	{SchemeStoch3QE, Options{Seed: 1}},
	{SchemeMQE1Bit, Options{}},
	{SchemeTopK, Options{Fraction: 0.3, Seed: 1}},
	{SchemeLocalSteps, Options{Interval: 1}},
	{SchemeRoundRobin, Options{Parts: 3}},
	// Entropy-wrapped contexts emit SchemeEntropy wires: both coded
	// stages plus a stored-stage case (raw float wires rarely code well,
	// so SchemeNone+huffman exercises the stored fallback).
	{SchemeThreeLC, Options{Sparsity: 1.5, ZeroRun: true, Entropy: EntropyHuffman}},
	{SchemeThreeLC, Options{Sparsity: 1.5, ZeroRun: true, Entropy: EntropyLZ}},
	{SchemeNone, Options{Entropy: EntropyHuffman}},
}

// TestFuzzCorpusCoversEveryRegisteredDecoder fails when a codec registers
// a decoder that the corrupt-wire corpus does not reach — adding a scheme
// without extending the fuzz corpus is a test gap, not an option.
func TestFuzzCorpusCoversEveryRegisteredDecoder(t *testing.T) {
	covered := map[Scheme]bool{}
	for _, sc := range fuzzSchemes {
		if sc.o.Entropy != EntropyOff {
			covered[SchemeEntropy] = true
			continue
		}
		covered[sc.s] = true
	}
	for _, s := range RegisteredSchemes() {
		if !covered[s] {
			t.Errorf("registered scheme %v (byte %d) has no fuzz-corpus entry", s, uint8(s))
		}
	}
}

// TestDecompressNeverPanicsOnCorruptWire mutates valid wire messages and
// feeds raw noise to the decoder: a decoder operating on untrusted network
// bytes must return errors, never panic. (testing.F-style fuzzing without
// the fuzz engine, so it runs in ordinary `go test`.) Unknown scheme bytes
// — anything the registry has no decoder for — must error cleanly too,
// which the random-noise trials and first-byte mutations exercise.
func TestDecompressNeverPanicsOnCorruptWire(t *testing.T) {
	shape := []int{257}
	rng := tensor.NewRNG(12345)
	in := tensor.New(257)
	tensor.FillNormal(in, 0.1, rng)

	decode := func(wire []byte) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Decompress panicked on corrupt wire: %v", r)
			}
		}()
		out, err := Decompress(wire, shape)
		_ = out
		_ = err // errors are fine; panics are not
	}

	for _, sc := range fuzzSchemes {
		valid := New(sc.s, shape, sc.o).Compress(in)

		// Single-byte mutations at every position.
		for pos := 0; pos < len(valid); pos++ {
			for _, delta := range []byte{1, 0x80, 0xff} {
				mut := append([]byte(nil), valid...)
				mut[pos] ^= delta
				decode(mut)
			}
		}
		// Truncations.
		for cut := 0; cut < len(valid); cut += 1 + len(valid)/37 {
			decode(valid[:cut])
		}
		// Extensions.
		decode(append(append([]byte(nil), valid...), 0xde, 0xad))

		// Forge every possible scheme byte onto this payload, so each
		// registered decoder also sees payloads shaped for other schemes.
		if len(valid) > 0 {
			for b := 0; b < 256; b++ {
				mut := append([]byte(nil), valid...)
				mut[0] = byte(b)
				decode(mut)
			}
		}
	}

	// Raw random noise.
	for trial := 0; trial < 2000; trial++ {
		n := rng.Intn(400)
		noise := make([]byte, n)
		for i := range noise {
			noise[i] = byte(rng.Uint64())
		}
		decode(noise)
	}
}

// TestDecompressIntoWrongShapeNeverPanics checks decoding a valid wire
// into a mismatched destination returns an error.
func TestDecompressIntoWrongShapeNeverPanics(t *testing.T) {
	rng := tensor.NewRNG(6)
	in := tensor.New(100)
	tensor.FillNormal(in, 0.1, rng)
	for _, sc := range []struct {
		s Scheme
		o Options
	}{
		{SchemeNone, Options{}},
		{SchemeInt8, Options{}},
		{SchemeThreeLC, Options{Sparsity: 1.5, ZeroRun: true}},
		{SchemeMQE1Bit, Options{}},
		{SchemeTopK, Options{Fraction: 0.3, Seed: 1}},
	} {
		wire := New(sc.s, []int{100}, sc.o).Compress(in)
		// Shapes inside the same padding bucket (e.g. 99 vs 100 for the
		// 5-per-byte quartic format) are indistinguishable by design —
		// the wire is context-keyed and does not carry the length. Test
		// only shapes that change the expected payload size.
		for _, wrong := range []int{1, 50, 500} {
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("scheme %v shape %d: panic %v", sc.s, wrong, r)
					}
				}()
				if _, err := Decompress(wire, []int{wrong}); err == nil && sc.s != SchemeTopK {
					// TopK with a larger shape can coincidentally parse;
					// all other schemes must notice the size mismatch.
					t.Errorf("scheme %v: decode into wrong shape %d succeeded", sc.s, wrong)
				}
			}()
		}
	}
}
