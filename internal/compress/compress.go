// Package compress unifies the state-change traffic compression schemes the
// 3LC paper evaluates (§5.1) behind a single Compressor interface with a
// self-describing wire format.
//
// A Compressor is a per-tensor *compression context* in the paper's sense
// (§3, Figure 2): it owns whatever sender-side state the scheme needs —
// most importantly the error-accumulation buffer — for a single tensor
// (one layer's gradients on a worker, or one layer's model deltas on a
// server). Decompression is stateless: any endpoint can decode a wire
// message knowing only the tensor shape.
//
// The hot-path API is append-style and allocation-free in steady state:
// CompressInto appends the wire message to a caller-provided buffer, so a
// context driven with a recycled buffer (dst[:0] of the previous step's
// wire) performs zero heap allocations per step once its scratch space has
// converged. Compress remains as a convenience shim — it is exactly
// CompressInto(in, nil) — so one-shot callers and older call sites keep
// working unchanged.
//
// The ternary codecs (3LC and the stochastic baseline) run on the fused
// single-pass kernels of internal/kernel: compress touches tensor memory
// exactly twice (accumulate fused with the |max| reduction, then a fused
// quantize → residual → quartic-pack → zero-run-emit loop that writes
// wire bytes directly) and decode exactly once (a 243-entry LUT streams
// wire bytes straight into the destination floats). The staged
// quant/encode primitives remain as the bit-identical reference
// implementation.
//
// Decoding dispatches through a codec registry indexed by the wire's first
// byte (see RegisterDecoder): each scheme registers its decoder from an
// init function in the file that implements its encoder, and
// DecompressInto reuses pooled scratch plus the destination tensor, so the
// steady-state pull path allocates nothing either.
//
// Implemented schemes, named after the paper's evaluation section:
//
//	32-bit float       — uncompressed baseline
//	8-bit int          — TPU-style 255-level quantization
//	Stoch 3-value + QE — TernGrad-like stochastic ternary + quartic encoding
//	MQE 1-bit int      — 1-bit SGD with error feedback
//	25% / 5% sparsification — top-k with bitmap + error accumulation
//	2 local steps      — transmit accumulated changes every k-th step
//	3LC (s)            — 3-value quantization with sparsity multiplication,
//	                     error accumulation, quartic + zero-run encoding
package compress

import (
	"encoding/binary"
	"fmt"

	"threelc/internal/tensor"
)

// Scheme identifies a traffic compression design.
type Scheme uint8

// Wire-format scheme identifiers. These appear as the first byte of every
// compressed message.
const (
	SchemeNone Scheme = iota
	SchemeInt8
	SchemeThreeLC
	SchemeStoch3QE
	SchemeMQE1Bit
	SchemeTopK
	SchemeLocalSteps
	// SchemeRoundRobin is Ako-style partial gradient exchange (§6): each
	// step transmits one of P interleaved partitions in full, with error
	// accumulation carrying the rest. Shares the TopK bitmap wire layout.
	SchemeRoundRobin
	// SchemeEntropy marks a wire message whose payload is another
	// scheme's wire passed through the optional entropy second stage
	// (see WithEntropy in entropy.go). It is a wrapper, not a base
	// design: New rejects it — set Options.Entropy on a base scheme.
	SchemeEntropy
	schemeCount
)

// String returns the paper's name for the scheme.
func (s Scheme) String() string {
	switch s {
	case SchemeNone:
		return "32-bit float"
	case SchemeInt8:
		return "8-bit int"
	case SchemeThreeLC:
		return "3LC"
	case SchemeStoch3QE:
		return "Stoch 3-value + QE"
	case SchemeMQE1Bit:
		return "MQE 1-bit int"
	case SchemeTopK:
		return "sparsification"
	case SchemeLocalSteps:
		return "local steps"
	case SchemeRoundRobin:
		return "round-robin exchange"
	case SchemeEntropy:
		return "entropy-wrapped"
	default:
		return fmt.Sprintf("scheme(%d)", uint8(s))
	}
}

// Options configures scheme-specific parameters.
type Options struct {
	// Sparsity is the 3LC sparsity multiplier s, 1 <= s < 2. Zero means 1.
	Sparsity float64
	// ZeroRun enables zero-run encoding on top of quartic encoding for
	// 3LC. The paper's full design always enables it; Table 2's "No ZRE"
	// row disables it.
	ZeroRun bool
	// Fraction is the transmitted fraction for SchemeTopK (e.g. 0.25, 0.05).
	Fraction float64
	// Interval is the local-step count for SchemeLocalSteps (e.g. 2).
	Interval int
	// Parts is the partition count for SchemeRoundRobin (cycle length).
	Parts int
	// Seed seeds the RNG used by stochastic quantization and threshold
	// sampling.
	Seed uint64
	// Entropy selects the optional entropy second stage (Huffman or LZ)
	// applied to every wire message the context emits — the
	// general-purpose coders the paper benchmarks ZRE against, wired in
	// for WAN links where wire bytes dominate step time. Off by default;
	// see WithEntropy.
	Entropy EntropyAlgo
	// CodecParallelism caps the per-pass goroutine fan-out of the fused
	// kernels for large tensors (>= kernel.ParallelThresholdElems). The
	// fan-out is pass-count aware: each of the two fused compress passes
	// asks kernel.PassWorkers for its own worker count, sized to that
	// pass's per-element work, under this common cap. 0 means
	// work-proportional up to GOMAXPROCS; 1 forces fully serial kernels
	// (no goroutine spawns, the zero-allocation configuration). Callers
	// that already fan out across tensors (package ps) pass their own
	// budget down so nested parallelism stays bounded.
	CodecParallelism int
}

// Compressor is a per-tensor compression context. Compression consumes one
// state-change tensor (a gradient or a model delta) and produces the wire
// message to transmit; internal error state (if the scheme has any) is
// updated so that unsent changes are retried at later steps. Implementations
// are not safe for concurrent use; each tensor endpoint owns one context.
type Compressor interface {
	// Scheme returns the wire scheme identifier.
	Scheme() Scheme
	// Name returns a human-readable design name matching the paper.
	Name() string
	// Compress encodes in (which must match the context's shape) and
	// advances error-accumulation state. It is shorthand for
	// CompressInto(in, nil) and allocates a fresh wire buffer per call;
	// steady-state callers should prefer CompressInto.
	Compress(in *tensor.Tensor) []byte
	// CompressInto appends the wire message for in to dst and returns the
	// extended slice, advancing error-accumulation state exactly like
	// Compress. Passing the previous step's buffer re-sliced to dst[:0]
	// makes the per-step compression path allocation-free once capacities
	// converge. A scheme that transmits nothing this step (local steps)
	// returns dst unchanged.
	CompressInto(in *tensor.Tensor, dst []byte) []byte
}

// PreAccumulator is implemented by compression contexts whose compress
// pass 1 is an error-accumulation sweep over a context-owned buffer
// (3LC). It lets a producer whose own final sweep writes the state change
// — the parameter server's optimizer update writing model deltas — fold
// that write directly into the accumulation buffer, fusing compress
// pass 1 away entirely: the producer adds each value into AccData as it
// computes it, reduces max|AccData| with exactly the kernel's
// accumulate-max semantics (bit-masked |·|, ascending-index max), and
// hands the reduction to CompressPreAccumulated, which performs only the
// encode pass. Wires and residual state are bit-identical to driving
// CompressInto with a materialized state-change tensor.
type PreAccumulator interface {
	// AccData returns the raw error-accumulation buffer (length = tensor
	// elements) the producer must fold the step's state change into.
	AccData() []float32
	// CompressPreAccumulated appends the wire message given maxAbs =
	// max|AccData| after the producer's fold, advancing residual state
	// exactly like CompressInto.
	CompressPreAccumulated(maxAbs float32, dst []byte) []byte
}

// New creates a compression context for a tensor of the given shape.
// With Options.Entropy set, the context is wrapped with the entropy
// second stage (WithEntropy) and its wires carry SchemeEntropy.
func New(s Scheme, shape []int, opt Options) Compressor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	var c Compressor
	switch s {
	case SchemeNone:
		c = &noneCompressor{shape: shape, n: n}
	case SchemeInt8:
		c = &int8Compressor{shape: shape, n: n, par: opt.CodecParallelism}
	case SchemeThreeLC:
		sp := opt.Sparsity
		if sp == 0 {
			sp = 1
		}
		c = newThreeLCCompressor(shape, sp, opt.ZeroRun, opt.CodecParallelism)
	case SchemeStoch3QE:
		c = newStochCompressor(shape, opt.Seed, opt.CodecParallelism)
	case SchemeMQE1Bit:
		c = newOneBitCompressor(shape, opt.CodecParallelism)
	case SchemeTopK:
		if opt.Fraction <= 0 || opt.Fraction > 1 {
			panic("compress: TopK needs Fraction in (0,1]")
		}
		c = newTopKCompressor(shape, opt.Fraction, opt.Seed, opt.CodecParallelism)
	case SchemeLocalSteps:
		k := opt.Interval
		if k < 1 {
			k = 2
		}
		c = newLocalStepsCompressor(shape, k)
	case SchemeRoundRobin:
		p := opt.Parts
		if p < 1 {
			p = 4
		}
		c = newRoundRobinCompressor(shape, p)
	case SchemeEntropy:
		panic("compress: SchemeEntropy is a wrapper; set Options.Entropy on a base scheme")
	default:
		panic(fmt.Sprintf("compress: unknown scheme %d", s))
	}
	return WithEntropy(c, opt.Entropy)
}

// --- shared little-endian helpers ------------------------------------------

var le = binary.LittleEndian

func putF32(dst []byte, v float32) {
	le.PutUint32(dst, mathFloat32bits(v))
}

func getF32(src []byte) float32 {
	return mathFloat32frombits(le.Uint32(src))
}

// appendF32 appends the 4-byte little-endian encoding of v to dst.
func appendF32(dst []byte, v float32) []byte {
	var b [4]byte
	le.PutUint32(b[:], mathFloat32bits(v))
	return append(dst, b[:]...)
}
