// Package compress unifies the state-change traffic compression schemes the
// 3LC paper evaluates (§5.1) behind a single Compressor interface with a
// self-describing wire format.
//
// A Compressor is a per-tensor *compression context* in the paper's sense
// (§3, Figure 2): it owns whatever sender-side state the scheme needs —
// most importantly the error-accumulation buffer — for a single tensor
// (one layer's gradients on a worker, or one layer's model deltas on a
// server). Decompression is stateless: any endpoint can decode a wire
// message knowing only the tensor shape.
//
// Implemented schemes, named after the paper's evaluation section:
//
//	32-bit float       — uncompressed baseline
//	8-bit int          — TPU-style 255-level quantization
//	Stoch 3-value + QE — TernGrad-like stochastic ternary + quartic encoding
//	MQE 1-bit int      — 1-bit SGD with error feedback
//	25% / 5% sparsification — top-k with bitmap + error accumulation
//	2 local steps      — transmit accumulated changes every k-th step
//	3LC (s)            — 3-value quantization with sparsity multiplication,
//	                     error accumulation, quartic + zero-run encoding
package compress

import (
	"encoding/binary"
	"fmt"

	"threelc/internal/tensor"
)

// Scheme identifies a traffic compression design.
type Scheme uint8

// Wire-format scheme identifiers. These appear as the first byte of every
// compressed message.
const (
	SchemeNone Scheme = iota
	SchemeInt8
	SchemeThreeLC
	SchemeStoch3QE
	SchemeMQE1Bit
	SchemeTopK
	SchemeLocalSteps
	// SchemeRoundRobin is Ako-style partial gradient exchange (§6): each
	// step transmits one of P interleaved partitions in full, with error
	// accumulation carrying the rest. Shares the TopK bitmap wire layout.
	SchemeRoundRobin
	schemeCount
)

// String returns the paper's name for the scheme.
func (s Scheme) String() string {
	switch s {
	case SchemeNone:
		return "32-bit float"
	case SchemeInt8:
		return "8-bit int"
	case SchemeThreeLC:
		return "3LC"
	case SchemeStoch3QE:
		return "Stoch 3-value + QE"
	case SchemeMQE1Bit:
		return "MQE 1-bit int"
	case SchemeTopK:
		return "sparsification"
	case SchemeLocalSteps:
		return "local steps"
	case SchemeRoundRobin:
		return "round-robin exchange"
	default:
		return fmt.Sprintf("scheme(%d)", uint8(s))
	}
}

// Options configures scheme-specific parameters.
type Options struct {
	// Sparsity is the 3LC sparsity multiplier s, 1 <= s < 2. Zero means 1.
	Sparsity float64
	// ZeroRun enables zero-run encoding on top of quartic encoding for
	// 3LC. The paper's full design always enables it; Table 2's "No ZRE"
	// row disables it.
	ZeroRun bool
	// Fraction is the transmitted fraction for SchemeTopK (e.g. 0.25, 0.05).
	Fraction float64
	// Interval is the local-step count for SchemeLocalSteps (e.g. 2).
	Interval int
	// Parts is the partition count for SchemeRoundRobin (cycle length).
	Parts int
	// Seed seeds the RNG used by stochastic quantization and threshold
	// sampling.
	Seed uint64
}

// Compressor is a per-tensor compression context. Compress consumes one
// state-change tensor (a gradient or a model delta) and returns the wire
// message to transmit; internal error state (if the scheme has any) is
// updated so that unsent changes are retried at later steps. Implementations
// are not safe for concurrent use; each tensor endpoint owns one context.
type Compressor interface {
	// Scheme returns the wire scheme identifier.
	Scheme() Scheme
	// Name returns a human-readable design name matching the paper.
	Name() string
	// Compress encodes in (which must match the context's shape) and
	// advances error-accumulation state.
	Compress(in *tensor.Tensor) []byte
}

// New creates a compression context for a tensor of the given shape.
func New(s Scheme, shape []int, opt Options) Compressor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	switch s {
	case SchemeNone:
		return &noneCompressor{shape: shape, n: n}
	case SchemeInt8:
		return &int8Compressor{shape: shape, n: n}
	case SchemeThreeLC:
		sp := opt.Sparsity
		if sp == 0 {
			sp = 1
		}
		return newThreeLCCompressor(shape, sp, opt.ZeroRun)
	case SchemeStoch3QE:
		return newStochCompressor(shape, opt.Seed)
	case SchemeMQE1Bit:
		return newOneBitCompressor(shape)
	case SchemeTopK:
		if opt.Fraction <= 0 || opt.Fraction > 1 {
			panic("compress: TopK needs Fraction in (0,1]")
		}
		return newTopKCompressor(shape, opt.Fraction, opt.Seed)
	case SchemeLocalSteps:
		k := opt.Interval
		if k < 1 {
			k = 2
		}
		return newLocalStepsCompressor(shape, k)
	case SchemeRoundRobin:
		p := opt.Parts
		if p < 1 {
			p = 4
		}
		return newRoundRobinCompressor(shape, p)
	default:
		panic(fmt.Sprintf("compress: unknown scheme %d", s))
	}
}

// Decompress decodes a wire message produced by any Compressor into a new
// tensor of the given shape. It returns an error for malformed messages.
func Decompress(wire []byte, shape []int) (*tensor.Tensor, error) {
	out := tensor.New(shape...)
	if err := DecompressInto(wire, out); err != nil {
		return nil, err
	}
	return out, nil
}

// DecompressInto decodes wire into dst. An empty wire message (produced by
// the local-steps scheme on non-transmitting steps) decodes as all zeros.
func DecompressInto(wire []byte, dst *tensor.Tensor) error {
	if len(wire) == 0 {
		dst.Zero()
		return nil
	}
	s := Scheme(wire[0])
	payload := wire[1:]
	switch s {
	case SchemeNone, SchemeLocalSteps:
		return decodeRaw(payload, dst)
	case SchemeInt8:
		return decodeInt8(payload, dst)
	case SchemeThreeLC, SchemeStoch3QE:
		return decodeTernary(payload, dst)
	case SchemeMQE1Bit:
		return decodeOneBit(payload, dst)
	case SchemeTopK, SchemeRoundRobin:
		return decodeTopK(payload, dst)
	default:
		return fmt.Errorf("compress: unknown scheme byte %d", wire[0])
	}
}

// --- shared little-endian helpers ------------------------------------------

var le = binary.LittleEndian

func putF32(dst []byte, v float32) {
	le.PutUint32(dst, mathFloat32bits(v))
}

func getF32(src []byte) float32 {
	return mathFloat32frombits(le.Uint32(src))
}
