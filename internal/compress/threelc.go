package compress

import (
	"fmt"

	"threelc/internal/encode"
	"threelc/internal/quant"
	"threelc/internal/tensor"
)

func init() {
	RegisterDecoder(SchemeThreeLC, decodeTernary)
	RegisterDecoder(SchemeStoch3QE, decodeTernary)
}

// Ternary wire format, shared by 3LC and the stochastic baseline:
//
//	[1B scheme][4B M][1B flags][payload]
//
// flags bit 0 set means the payload is zero-run encoded quartic data;
// clear means plain quartic data of exactly ceil(n/5) bytes.
const ternaryFlagZRE = 1

// threeLCCompressor is the full 3LC design: error accumulation, 3-value
// quantization with sparsity multiplication, quartic encoding, and
// (optionally, for the "No ZRE" ablation) zero-run encoding.
type threeLCCompressor struct {
	shape    []int
	n        int
	sparsity float64
	zeroRun  bool

	acc     *quant.ErrorAccumulator
	dequant *tensor.Tensor   // scratch: local dequantization for residual
	tv      quant.ThreeValue // scratch: quantization output, reused
	qbuf    []byte           // scratch: quartic-encoded bytes, reused
	par     int              // chunked-encode fan-out cap (Options.CodecParallelism)
}

func newThreeLCCompressor(shape []int, sparsity float64, zeroRun bool, par int) *threeLCCompressor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	return &threeLCCompressor{
		shape:    append([]int(nil), shape...),
		n:        n,
		sparsity: sparsity,
		zeroRun:  zeroRun,
		par:      par,
		acc:      quant.NewErrorAccumulator(shape...),
		dequant:  tensor.New(shape...),
	}
}

func (c *threeLCCompressor) Scheme() Scheme { return SchemeThreeLC }

func (c *threeLCCompressor) Name() string {
	if !c.zeroRun {
		return fmt.Sprintf("3LC (s=%.2f, no ZRE)", c.sparsity)
	}
	return fmt.Sprintf("3LC (s=%.2f)", c.sparsity)
}

func (c *threeLCCompressor) Compress(in *tensor.Tensor) []byte {
	return c.CompressInto(in, nil)
}

// CompressInto runs the Figure-3 pipeline: (1) accumulate the input into
// the error buffer, (2) 3-value quantize the sum, (a) locally dequantize,
// (b) keep the residual in the buffer, then (3) quartic-encode and
// (4) zero-run-encode the quantized data, appending the wire message to
// dst. All intermediate state lives in context-owned scratch buffers, and
// quartic encoding shards across cores for large tensors.
func (c *threeLCCompressor) CompressInto(in *tensor.Tensor, dst []byte) []byte {
	if in.Len() != c.n {
		panic("compress: input size mismatch")
	}
	sum := c.acc.Accumulate(in)
	quant.Quantize3Into(sum, c.sparsity, &c.tv)
	quant.DequantizeInto(&c.tv, c.dequant)
	c.acc.Residual(c.dequant)

	var qe []byte
	qe, c.qbuf = encodeQuartic(c.tv.Q, c.qbuf, c.par)

	dst = append(dst, byte(SchemeThreeLC))
	dst = appendF32(dst, c.tv.M)
	if c.zeroRun {
		dst = append(dst, ternaryFlagZRE)
		dst = encode.ZeroRunEncodeAppend(dst, qe)
	} else {
		dst = append(dst, 0)
		dst = append(dst, qe...)
	}
	return dst
}

// ErrorNorm exposes the squared norm of the accumulated error (for tests
// and the ablation benchmarks).
func (c *threeLCCompressor) ErrorNorm() float64 {
	return c.acc.Buffer().SquaredNorm()
}

// decodeTernary reverses the ternary wire format into dst, fusing quartic
// decode with dequantization (dst[i] = M * q[i]) so the only intermediate
// buffer is the pooled zero-run expansion scratch.
func decodeTernary(payload []byte, dst *tensor.Tensor) error {
	if len(payload) < 5 {
		return fmt.Errorf("compress: ternary payload too short (%d bytes)", len(payload))
	}
	m := getF32(payload)
	flags := payload[5-1]
	body := payload[5:]

	n := dst.Len()
	qlen := encode.QuarticEncodedLen(n)
	var qbytes []byte
	var scratch *[]byte
	if flags&ternaryFlagZRE != 0 {
		// Validate the expansion size before touching any buffer: the
		// payload is untrusted wire data.
		if got := encode.ZeroRunDecodedLen(body); got != qlen {
			return fmt.Errorf("compress: zero-run payload expands to %d bytes, want %d", got, qlen)
		}
		scratch = getBuf(qlen)
		defer putBuf(scratch)
		buf := (*scratch)[:qlen]
		encode.ZeroRunDecodeInto(body, buf)
		qbytes = buf
	} else {
		if len(body) != qlen {
			return fmt.Errorf("compress: quartic payload %d bytes, want %d", len(body), qlen)
		}
		qbytes = body
	}

	// Decode stays serial: the fused scaled decode runs an order of
	// magnitude faster than encode (multi-GB/s), so chunking it would buy
	// little while spawning goroutines inside callers' own fan-out
	// (package ps decodes many tensors concurrently). The parallel decoder
	// remains available as encode.QuarticDecodeScaledParallel.
	if err := encode.QuarticDecodeScaledInto(qbytes, dst.Data(), m); err != nil {
		return fmt.Errorf("compress: %w", err)
	}
	return nil
}
