package compress

import (
	"fmt"

	"threelc/internal/kernel"
	"threelc/internal/quant"
	"threelc/internal/tensor"
)

func init() {
	RegisterDecoder(SchemeThreeLC, decodeTernary)
	RegisterDecoder(SchemeStoch3QE, decodeTernary)
	RegisterAddDecoder(SchemeThreeLC, decodeTernaryAdd)
	RegisterAddDecoder(SchemeStoch3QE, decodeTernaryAdd)
}

// Ternary wire format, shared by 3LC and the stochastic baseline:
//
//	[1B scheme][4B M][1B flags][payload]
//
// flags bit 0 set means the payload is zero-run encoded quartic data;
// clear means plain quartic data of exactly ceil(n/5) bytes.
const ternaryFlagZRE = 1

// threeLCCompressor is the full 3LC design: error accumulation, 3-value
// quantization with sparsity multiplication, quartic encoding, and
// (optionally, for the "No ZRE" ablation) zero-run encoding — run as the
// two fused kernel passes of internal/kernel rather than the staged
// seven-sweep pipeline. Pass 1 (kernel.AccumulateMaxAbs) folds the input
// into the error buffer while reducing max|buf|; pass 2
// (kernel.EncodeTernary) quantizes, keeps the residual in the buffer, and
// writes quartic/zero-run wire bytes directly. No intermediate ternary
// tensor or dequantization scratch exists.
type threeLCCompressor struct {
	shape    []int
	n        int
	sparsity float64
	zeroRun  bool

	acc  *quant.ErrorAccumulator
	qbuf []byte // scratch: parallel-encode chunk regions, reused
	par  int    // per-pass fan-out cap (Options.CodecParallelism)
}

func newThreeLCCompressor(shape []int, sparsity float64, zeroRun bool, par int) *threeLCCompressor {
	return newThreeLCCompressorOver(shape, sparsity, zeroRun, par, nil)
}

// newThreeLCCompressorOver builds a context whose error-accumulation
// buffer is the given (zeroed) tensor instead of a fresh allocation — the
// member form used by TernaryBatch, whose members' buffers alias one
// contiguous arena. acc == nil allocates normally.
func newThreeLCCompressorOver(shape []int, sparsity float64, zeroRun bool, par int, acc *tensor.Tensor) *threeLCCompressor {
	if sparsity < quant.MinSparsity || sparsity >= quant.MaxSparsity {
		panic(fmt.Sprintf("compress: sparsity multiplier %v outside [1,2)", sparsity))
	}
	n := 1
	for _, d := range shape {
		n *= d
	}
	c := &threeLCCompressor{
		shape:    append([]int(nil), shape...),
		n:        n,
		sparsity: sparsity,
		zeroRun:  zeroRun,
		par:      par,
	}
	if acc != nil {
		if acc.Len() != n {
			panic(fmt.Sprintf("compress: accumulator tensor has %d elements, shape wants %d", acc.Len(), n))
		}
		c.acc = quant.NewErrorAccumulatorOver(acc)
	} else {
		c.acc = quant.NewErrorAccumulator(shape...)
	}
	return c
}

func (c *threeLCCompressor) Scheme() Scheme { return SchemeThreeLC }

func (c *threeLCCompressor) Name() string {
	if !c.zeroRun {
		return fmt.Sprintf("3LC (s=%.2f, no ZRE)", c.sparsity)
	}
	return fmt.Sprintf("3LC (s=%.2f)", c.sparsity)
}

func (c *threeLCCompressor) Compress(in *tensor.Tensor) []byte {
	return c.CompressInto(in, nil)
}

// CompressInto runs the Figure-3 pipeline in exactly two passes over
// tensor memory: pass 1 accumulates the input into the error buffer fused
// with the |max| reduction (step 1 of Fig. 3 + Eq. 1), pass 2 fuses
// quantize → local-dequantize → residual-update → quartic-pack →
// zero-run-emit (steps 2, a, b, 3, 4), appending the wire message to dst.
// Each pass shards across cores for large tensors with byte-identical
// output (kernel.PassWorkers sizes the fan-out per pass).
//
//3lc:noalloc
func (c *threeLCCompressor) CompressInto(in *tensor.Tensor, dst []byte) []byte {
	if in.Len() != c.n {
		panic("compress: input size mismatch")
	}
	buf := c.acc.Buffer().Data()
	w1 := kernel.PassWorkers(c.n, c.par, kernel.SpanReduce)
	return c.encodeAccumulated(kernel.AccumulateMaxAbsParallel(buf, in.Data(), w1), dst)
}

// AccData exposes the error-accumulation buffer for producers that fuse
// their own final write sweep with compress pass 1 (PreAccumulator).
func (c *threeLCCompressor) AccData() []float32 {
	return c.acc.Buffer().Data()
}

// CompressPreAccumulated appends the wire for a step whose state change
// the caller already folded into AccData (reporting maxAbs reduced
// exactly like kernel.AccumulateMaxAbs): compress pass 1 has effectively
// been absorbed into the producer's sweep, leaving only the fused encode
// pass here. Wires and residuals are bit-identical to CompressInto on the
// same state change.
func (c *threeLCCompressor) CompressPreAccumulated(maxAbs float32, dst []byte) []byte {
	return c.encodeAccumulated(maxAbs, dst)
}

// encodeAccumulated is compress pass 2 plus the wire header: quantize the
// accumulated buffer against max|buf|·s and emit quartic/zero-run bytes.
func (c *threeLCCompressor) encodeAccumulated(maxAbs float32, dst []byte) []byte {
	buf := c.acc.Buffer().Data()
	m := float64(maxAbs) * c.sparsity
	dst = append(dst, byte(SchemeThreeLC))
	dst = appendF32(dst, float32(m))
	if c.zeroRun {
		dst = append(dst, ternaryFlagZRE)
	} else {
		dst = append(dst, 0)
	}
	w2 := kernel.PassWorkers(c.n, c.par, kernel.SpanEncode)
	if w2 > 1 {
		dst, c.qbuf = kernel.EncodeTernaryParallel(buf, m, c.zeroRun, dst, w2, c.qbuf)
	} else {
		dst = kernel.EncodeTernary(buf, m, c.zeroRun, dst)
	}
	return dst
}

// ErrorNorm exposes the squared norm of the accumulated error (for tests
// and the ablation benchmarks).
func (c *threeLCCompressor) ErrorNorm() float64 {
	return c.acc.Buffer().SquaredNorm()
}

// decodeTernary reverses the ternary wire format into dst in a single
// LUT-driven pass: kernel.DecodeTernary streams the wire bytes straight
// into the destination floats, expanding zero runs and applying the scale
// as it goes — no zero-run expansion scratch or ternary intermediate.
//
// Decode stays serial: the fused LUT decode runs an order of magnitude
// faster than encode (multi-GB/s), so chunking it would buy little while
// spawning goroutines inside callers' own fan-out (package ps decodes
// many tensors concurrently).
func decodeTernary(payload []byte, dst *tensor.Tensor) error {
	if len(payload) < 5 {
		return fmt.Errorf("compress: ternary payload too short (%d bytes)", len(payload))
	}
	m := getF32(payload)
	flags := payload[5-1]
	body := payload[5:]
	if err := kernel.DecodeTernary(body, flags&ternaryFlagZRE != 0, m, dst.Data()); err != nil {
		return fmt.Errorf("compress: %w", err)
	}
	return nil
}

// decodeTernaryAdd is the aggregation-side path: kernel.DecodeTernaryAdd
// accumulates M·q straight into dst in one LUT-driven pass, validating
// the payload before the first element is touched (dst is a live
// aggregation buffer). Large tensors under a multi-worker budget shard
// the accumulate sweep range-partitioned, byte-identical to the serial
// kernel.
func decodeTernaryAdd(payload []byte, dst *tensor.Tensor, workers int) error {
	if len(payload) < 5 {
		return fmt.Errorf("compress: ternary payload too short (%d bytes)", len(payload))
	}
	m := getF32(payload)
	zre := payload[5-1]&ternaryFlagZRE != 0
	body := payload[5:]
	var err error
	if workers > 1 && dst.Len() >= kernel.ParallelThresholdElems {
		err = kernel.DecodeTernaryAddParallel([]kernel.TernaryWire{{Body: body, ZRE: zre, M: m}}, dst.Data(), workers)
	} else {
		err = kernel.DecodeTernaryAdd(body, zre, m, dst.Data())
	}
	if err != nil {
		return fmt.Errorf("compress: %w", err)
	}
	return nil
}
