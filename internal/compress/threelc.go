package compress

import (
	"fmt"

	"threelc/internal/encode"
	"threelc/internal/quant"
	"threelc/internal/tensor"
)

// Ternary wire format, shared by 3LC and the stochastic baseline:
//
//	[1B scheme][4B M][1B flags][payload]
//
// flags bit 0 set means the payload is zero-run encoded quartic data;
// clear means plain quartic data of exactly ceil(n/5) bytes.
const ternaryFlagZRE = 1

// threeLCCompressor is the full 3LC design: error accumulation, 3-value
// quantization with sparsity multiplication, quartic encoding, and
// (optionally, for the "No ZRE" ablation) zero-run encoding.
type threeLCCompressor struct {
	shape    []int
	n        int
	sparsity float64
	zeroRun  bool

	acc     *quant.ErrorAccumulator
	dequant *tensor.Tensor // scratch: local dequantization for residual
}

func newThreeLCCompressor(shape []int, sparsity float64, zeroRun bool) *threeLCCompressor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	return &threeLCCompressor{
		shape:    append([]int(nil), shape...),
		n:        n,
		sparsity: sparsity,
		zeroRun:  zeroRun,
		acc:      quant.NewErrorAccumulator(shape...),
		dequant:  tensor.New(shape...),
	}
}

func (c *threeLCCompressor) Scheme() Scheme { return SchemeThreeLC }

func (c *threeLCCompressor) Name() string {
	if !c.zeroRun {
		return fmt.Sprintf("3LC (s=%.2f, no ZRE)", c.sparsity)
	}
	return fmt.Sprintf("3LC (s=%.2f)", c.sparsity)
}

// Compress runs the Figure-3 pipeline: (1) accumulate the input into the
// error buffer, (2) 3-value quantize the sum, (a) locally dequantize,
// (b) keep the residual in the buffer, then (3) quartic-encode and
// (4) zero-run-encode the quantized data.
func (c *threeLCCompressor) Compress(in *tensor.Tensor) []byte {
	if in.Len() != c.n {
		panic("compress: input size mismatch")
	}
	sum := c.acc.Accumulate(in)
	tv := quant.Quantize3(sum, c.sparsity)
	quant.DequantizeInto(tv, c.dequant)
	c.acc.Residual(c.dequant)

	qe := encode.QuarticEncode(tv.Q)
	var payload []byte
	var flags byte
	if c.zeroRun {
		payload = encode.ZeroRunEncode(qe)
		flags = ternaryFlagZRE
	} else {
		payload = qe
	}
	wire := make([]byte, 1+4+1+len(payload))
	wire[0] = byte(SchemeThreeLC)
	putF32(wire[1:], tv.M)
	wire[5] = flags
	copy(wire[6:], payload)
	return wire
}

// ErrorNorm exposes the squared norm of the accumulated error (for tests
// and the ablation benchmarks).
func (c *threeLCCompressor) ErrorNorm() float64 {
	return c.acc.Buffer().SquaredNorm()
}

func decodeTernary(payload []byte, dst *tensor.Tensor) error {
	if len(payload) < 5 {
		return fmt.Errorf("compress: ternary payload too short (%d bytes)", len(payload))
	}
	m := getF32(payload)
	flags := payload[5-1]
	body := payload[5:]

	n := dst.Len()
	qlen := encode.QuarticEncodedLen(n)
	var qbytes []byte
	if flags&ternaryFlagZRE != 0 {
		// Validate the expansion size before touching any buffer: the
		// payload is untrusted wire data.
		if got := encode.ZeroRunDecodedLen(body); got != qlen {
			return fmt.Errorf("compress: zero-run payload expands to %d bytes, want %d", got, qlen)
		}
		buf := make([]byte, qlen)
		encode.ZeroRunDecodeInto(body, buf)
		qbytes = buf
	} else {
		if len(body) != qlen {
			return fmt.Errorf("compress: quartic payload %d bytes, want %d", len(body), qlen)
		}
		qbytes = body
	}
	for i, b := range qbytes {
		if b > encode.MaxQuartic {
			return fmt.Errorf("compress: invalid quartic byte %d at offset %d", b, i)
		}
	}

	q := make([]int8, n)
	encode.QuarticDecodeInto(qbytes, q)
	d := dst.Data()
	for i, v := range q {
		d[i] = m * float32(v)
	}
	return nil
}
