package compress

import (
	"bytes"
	"math"
	"testing"

	"threelc/internal/kernel"
	"threelc/internal/quant"
	"threelc/internal/sparse"
	"threelc/internal/tensor"
)

// TestOneBitFusedMatchesStaged drives the fused 1-bit compressor and the
// staged quant.QuantizeOneBitInto composition over several accumulating
// steps: wires must be byte-identical and the error-feedback buffers
// bit-identical at every step, in the serial and parallel configurations.
func TestOneBitFusedMatchesStaged(t *testing.T) {
	const n = 2017
	shape := []int{n}
	for _, par := range []int{1, 4} {
		fused := New(SchemeMQE1Bit, shape, Options{CodecParallelism: par})

		acc := quant.NewErrorAccumulator(shape...)
		dequant := tensor.New(shape...)
		var q quant.OneBitQuantized

		for step := 0; step < 4; step++ {
			in := randTensor(uint64(100+step), n, 0.02)

			gotWire := fused.CompressInto(in, nil)

			sum := acc.Accumulate(in)
			quant.QuantizeOneBitInto(sum, &q)
			quant.DequantizeOneBitInto(&q, dequant)
			acc.Residual(dequant)
			wantWire := append([]byte{byte(SchemeMQE1Bit)}, appendF32(appendF32(nil, q.MPos), q.MNeg)...)
			wantWire = append(wantWire, q.Bits...)

			if !bytes.Equal(gotWire, wantWire) {
				t.Fatalf("par %d step %d: fused wire differs from staged (%d vs %d bytes)",
					par, step, len(gotWire), len(wantWire))
			}
			got := fused.(*oneBitCompressor).acc.Buffer().Data()
			want := acc.Buffer().Data()
			for i := range want {
				if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
					t.Fatalf("par %d step %d: residual differs at %d: %x vs %x",
						par, step, i, math.Float32bits(got[i]), math.Float32bits(want[i]))
				}
			}
		}
	}
}

// TestTopKFusedMatchesStaged does the same for the sparsification
// baseline: the fused AddParallel + SparsifyResidual path must reproduce
// the staged SparsifyInto/ReconstructInto/Residual composition byte for
// byte — same threshold RNG stream, same wires, same residuals.
func TestTopKFusedMatchesStaged(t *testing.T) {
	const n = 2017
	const seed = 99
	shape := []int{n}
	for _, par := range []int{1, 4} {
		fused := New(SchemeTopK, shape, Options{Fraction: 0.25, Seed: seed, CodecParallelism: par})

		sp := sparse.NewSparsifier(0.25, tensor.NewRNG(seed^0x546f704b))
		acc := quant.NewErrorAccumulator(shape...)
		dequant := tensor.New(shape...)
		var sel sparse.Selection

		for step := 0; step < 4; step++ {
			in := randTensor(uint64(200+step), n, 0.02)

			gotWire := fused.CompressInto(in, nil)

			sum := acc.Accumulate(in)
			sp.SparsifyInto(sum, &sel)
			sparse.ReconstructInto(&sel, dequant)
			acc.Residual(dequant)
			wantWire := appendSelection(nil, byte(SchemeTopK), &sel)

			if !bytes.Equal(gotWire, wantWire) {
				t.Fatalf("par %d step %d: fused wire differs from staged (%d vs %d bytes)",
					par, step, len(gotWire), len(wantWire))
			}
			got := fused.(*topKCompressor).acc.Buffer().Data()
			want := acc.Buffer().Data()
			for i := range want {
				if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
					t.Fatalf("par %d step %d: residual differs at %d: %x vs %x",
						par, step, i, math.Float32bits(got[i]), math.Float32bits(want[i]))
				}
			}
		}
	}
}

// TestOneBitTopKPassCounts extends the pass-count guarantee to the two
// satellite codecs: compress must sweep tensor memory exactly twice.
func TestOneBitTopKPassCounts(t *testing.T) {
	var passes []string
	kernel.PassHook = func(name string, elems int) { passes = append(passes, name) }
	defer func() { kernel.PassHook = nil }()

	const n = 1003
	in := randTensor(77, n, 0.01)
	for _, tc := range []struct {
		name string
		s    Scheme
		o    Options
	}{
		{"onebit", SchemeMQE1Bit, Options{}},
		{"topk", SchemeTopK, Options{Fraction: 0.25, Seed: 5}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ctx := New(tc.s, []int{n}, tc.o)
			passes = nil
			ctx.CompressInto(in, nil)
			if len(passes) != 2 {
				t.Fatalf("CompressInto swept tensor memory %d times (%v), want exactly 2", len(passes), passes)
			}
		})
	}
}
