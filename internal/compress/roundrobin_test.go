package compress

import (
	"math"
	"testing"

	"threelc/internal/tensor"
)

func TestRoundRobinWireRoundTrip(t *testing.T) {
	shape := []int{100}
	c := New(SchemeRoundRobin, shape, Options{Parts: 4})
	in := randTensor(30, 100, 0.5)
	out, err := Decompress(c.Compress(in), shape)
	if err != nil {
		t.Fatal(err)
	}
	// First step transmits exactly partition 0 (indices 0, 4, 8, ...).
	for i := 0; i < 100; i++ {
		if i%4 == 0 {
			if out.Data()[i] != in.Data()[i] {
				t.Fatalf("partition element %d altered", i)
			}
		} else if out.Data()[i] != 0 {
			t.Fatalf("non-partition element %d transmitted", i)
		}
	}
}

func TestRoundRobinDeliversFullCycle(t *testing.T) {
	shape := []int{64}
	c := New(SchemeRoundRobin, shape, Options{Parts: 4})
	in := randTensor(31, 64, 0.5)
	total := tensor.New(64)
	for step := 0; step < 4; step++ {
		out, err := Decompress(c.Compress(in), shape)
		if err != nil {
			t.Fatal(err)
		}
		total.Add(out)
	}
	// After one full cycle, the cumulative transmission is exactly 4x the
	// constant input... no: each element was accumulated 4 times but
	// transmitted once per cycle with the accumulated value at its turn.
	// Element at partition p accumulates (p+1) copies before its turn,
	// then accumulates the rest after. Over one cycle, delivered value is
	// (p+1) * in[i]. Verify that exact relation.
	for i, v := range in.Data() {
		want := float32(i%4+1) * v
		if math.Abs(float64(total.Data()[i]-want)) > 1e-5 {
			t.Fatalf("element %d delivered %v, want %v", i, total.Data()[i], want)
		}
	}
}

func TestRoundRobinTrafficQuarter(t *testing.T) {
	shape := []int{10000}
	c := New(SchemeRoundRobin, shape, Options{Parts: 4})
	in := randTensor(32, 10000, 0.5)
	wire := c.Compress(in)
	// Bitmap (1250 B) + ~2500 values * 4 B + header.
	want := 1 + 1250 + 4*2500
	if len(wire) < want-64 || len(wire) > want+64 {
		t.Errorf("wire %d bytes, want ~%d", len(wire), want)
	}
}

func TestRoundRobinDefaultParts(t *testing.T) {
	c := New(SchemeRoundRobin, []int{8}, Options{})
	if c.Name() != "round-robin 1/4 exchange" {
		t.Errorf("Name = %q", c.Name())
	}
}
