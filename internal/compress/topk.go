package compress

import (
	"fmt"
	"math/bits"

	"threelc/internal/encode"
	"threelc/internal/kernel"
	"threelc/internal/quant"
	"threelc/internal/sparse"
	"threelc/internal/tensor"
)

func init() {
	RegisterDecoder(SchemeTopK, decodeTopK)
}

// topKCompressor is the "25% / 5% sparsification" baseline (§5.1): the
// largest-magnitude fraction of buffered state changes is transmitted with
// a 1-bit-per-element bitmap plus 4 bytes per selected value; unsent
// changes stay in the error-accumulation buffer.
// Wire format: [scheme][bitmap ceil(n/8)B][4B per selected value].
//
// The encode runs on the fused kernels: kernel.AddParallel chunks the
// error-accumulation sweep (pass 1), then — after the sampled threshold
// estimate, which touches only the sample — kernel.SparsifyResidual fuses
// select, value emission, and the residual subtract into one serial pass 2
// with no dense scratch tensor. Two passes over tensor memory instead of
// the staged four; wires and residual state stay bit-identical to the
// staged sparse.SparsifyInto composition, which remains the reference.
type topKCompressor struct {
	shape []int
	n     int
	par   int // per-pass fan-out cap (Options.CodecParallelism)
	sp    *sparse.Sparsifier
	acc   *quant.ErrorAccumulator
	sel   sparse.Selection // selection scratch, reused across steps
}

func newTopKCompressor(shape []int, fraction float64, seed uint64, par int) *topKCompressor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	return &topKCompressor{
		shape: append([]int(nil), shape...),
		n:     n,
		par:   par,
		sp:    sparse.NewSparsifier(fraction, tensor.NewRNG(seed^0x546f704b)), // "TopK"
		acc:   quant.NewErrorAccumulator(shape...),
	}
}

func (c *topKCompressor) Scheme() Scheme { return SchemeTopK }
func (c *topKCompressor) Name() string {
	return fmt.Sprintf("%d%% sparsification", int(c.sp.Fraction*100+0.5))
}

func (c *topKCompressor) Compress(in *tensor.Tensor) []byte {
	return c.CompressInto(in, nil)
}

//3lc:noalloc
func (c *topKCompressor) CompressInto(in *tensor.Tensor, dst []byte) []byte {
	if in.Len() != c.n {
		panic("compress: input size mismatch")
	}
	buf := c.acc.Buffer().Data()
	w := kernel.PassWorkers(c.n, c.par, kernel.SpanReduce)
	kernel.AddParallel(buf, in.Data(), w)
	thr := c.sp.Threshold(buf)
	if c.sel.Mask == nil || c.sel.Mask.Len() != c.n {
		c.sel.Mask = encode.NewBitmap(c.n)
	} else {
		c.sel.Mask.Reset()
	}
	c.sel.Values = c.sel.Values[:0]
	c.sel.Shape = append(c.sel.Shape[:0], in.Shape()...)
	c.sel.Values = kernel.SparsifyResidual(buf, thr, c.sel.Mask.Bytes(), c.sel.Values)
	return appendSelection(dst, byte(SchemeTopK), &c.sel)
}

// appendSelection appends the bitmap wire layout shared by the top-k and
// round-robin schemes.
func appendSelection(dst []byte, scheme byte, sel *sparse.Selection) []byte {
	dst = append(dst, scheme)
	dst = append(dst, sel.Mask.Bytes()...)
	off := len(dst)
	dst = growBytes(dst, 4*len(sel.Values))
	for i, v := range sel.Values {
		putF32(dst[off+4*i:], v)
	}
	return dst
}

func decodeTopK(payload []byte, dst *tensor.Tensor) error {
	d := dst.Data()
	bmLen := encode.BitmapSizeBytes(len(d))
	if len(payload) < bmLen {
		return fmt.Errorf("compress: top-k payload %d bytes, bitmap alone needs %d", len(payload), bmLen)
	}
	bm := payload[:bmLen]
	vals := payload[bmLen:]
	if len(vals)%4 != 0 {
		return fmt.Errorf("compress: top-k value bytes %d not a multiple of 4", len(vals))
	}
	count := 0
	for _, b := range bm {
		count += bits.OnesCount8(b)
	}
	if count*4 != len(vals) {
		return fmt.Errorf("compress: top-k bitmap selects %d values, payload has %d", count, len(vals)/4)
	}
	dst.Zero()
	vi := 0
	for i := range d {
		if bm[i>>3]&(1<<(uint(i)&7)) != 0 {
			d[i] = getF32(vals[4*vi:])
			vi++
		}
	}
	return nil
}
