package compress

import (
	"math"
	"testing"
	"testing/quick"

	"threelc/internal/quant"
	"threelc/internal/tensor"
)

func randTensor(seed uint64, n int, std float64) *tensor.Tensor {
	rng := tensor.NewRNG(seed)
	tt := tensor.New(n)
	tensor.FillNormal(tt, std, rng)
	return tt
}

func TestSchemeString(t *testing.T) {
	names := map[Scheme]string{
		SchemeNone:       "32-bit float",
		SchemeInt8:       "8-bit int",
		SchemeThreeLC:    "3LC",
		SchemeStoch3QE:   "Stoch 3-value + QE",
		SchemeMQE1Bit:    "MQE 1-bit int",
		SchemeTopK:       "sparsification",
		SchemeLocalSteps: "local steps",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
}

func TestNoneExactRoundTrip(t *testing.T) {
	shape := []int{7, 13}
	c := New(SchemeNone, shape, Options{})
	in := randTensor(1, 7*13, 0.5).Reshape(7, 13)
	wire := c.Compress(in)
	if len(wire) != 1+4*91 {
		t.Fatalf("wire size %d", len(wire))
	}
	out, err := Decompress(wire, shape)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(in.Reshape(7, 13)) {
		t.Error("float32 baseline must be lossless")
	}
}

func TestInt8WireRoundTrip(t *testing.T) {
	shape := []int{100}
	c := New(SchemeInt8, shape, Options{})
	in := randTensor(2, 100, 0.5)
	out, err := Decompress(c.Compress(in), shape)
	if err != nil {
		t.Fatal(err)
	}
	m := in.MaxAbs()
	for i := range in.Data() {
		if math.Abs(float64(in.Data()[i]-out.Data()[i])) > float64(m)/254+1e-6 {
			t.Fatalf("int8 error too large at %d", i)
		}
	}
}

func TestThreeLCWireRoundTripMatchesLocalDequant(t *testing.T) {
	// The receiver must reconstruct exactly what the sender's local
	// dequantization produced — otherwise error accumulation would
	// correct the wrong error. The fused compressor no longer keeps a
	// dequantization tensor, so the expectation is recomputed with the
	// staged reference pipeline from a snapshot of the error buffer.
	shape := []int{997} // not a multiple of 5: exercises padding
	c := New(SchemeThreeLC, shape, Options{Sparsity: 1.5, ZeroRun: true}).(*threeLCCompressor)
	for round := 0; round < 10; round++ {
		in := randTensor(uint64(round+10), 997, 0.01)
		sum := c.acc.Buffer().Clone()
		sum.Add(in)
		want := quant.Dequantize3(quant.Quantize3(sum, 1.5))
		wire := c.Compress(in)
		out, err := Decompress(wire, shape)
		if err != nil {
			t.Fatal(err)
		}
		if !out.Equal(want) {
			t.Fatalf("round %d: receiver reconstruction != sender local dequant", round)
		}
	}
}

func TestThreeLCNoZRERoundTrip(t *testing.T) {
	shape := []int{503}
	c := New(SchemeThreeLC, shape, Options{Sparsity: 1.0, ZeroRun: false})
	in := randTensor(3, 503, 0.1)
	wire := c.Compress(in)
	// no-ZRE payload is exactly header + ceil(n/5).
	if len(wire) != 1+4+1+101 {
		t.Fatalf("no-ZRE wire size %d", len(wire))
	}
	if _, err := Decompress(wire, shape); err != nil {
		t.Fatal(err)
	}
}

func TestThreeLCZRESmallerOnSparseData(t *testing.T) {
	shape := []int{10000}
	in := tensor.New(10000)
	in.Data()[0] = 1 // single spike: quantization output is nearly all zeros
	zre := New(SchemeThreeLC, shape, Options{Sparsity: 1.0, ZeroRun: true}).Compress(in)
	raw := New(SchemeThreeLC, shape, Options{Sparsity: 1.0, ZeroRun: false}).Compress(in)
	if len(zre) >= len(raw) {
		t.Errorf("ZRE (%d B) should beat plain quartic (%d B) on sparse data", len(zre), len(raw))
	}
	if float64(len(raw))/float64(len(zre)) < 10 {
		t.Errorf("expected large ZRE gain on near-zero tensor, got %.1fx", float64(len(raw))/float64(len(zre)))
	}
}

func TestThreeLCErrorAccumulationAcrossCalls(t *testing.T) {
	shape := []int{64}
	c := New(SchemeThreeLC, shape, Options{Sparsity: 1.0, ZeroRun: true})
	in := tensor.New(64)
	in.Fill(0.3)
	in.Data()[0] = 1 // dominates M
	total := tensor.New(64)
	rounds := 100
	for i := 0; i < rounds; i++ {
		out, err := Decompress(c.Compress(in), shape)
		if err != nil {
			t.Fatal(err)
		}
		total.Add(out)
	}
	// Every element must be delivered at its true rate.
	for i, want := range in.Data() {
		got := total.Data()[i] / float32(rounds)
		if math.Abs(float64(got-want)) > 0.05 {
			t.Errorf("element %d delivered at %v, want %v", i, got, want)
		}
	}
}

func TestStochRoundTrip(t *testing.T) {
	shape := []int{1001}
	c := New(SchemeStoch3QE, shape, Options{Seed: 42})
	in := randTensor(4, 1001, 0.2)
	wire := c.Compress(in)
	out, err := Decompress(wire, shape)
	if err != nil {
		t.Fatal(err)
	}
	m := in.MaxAbs()
	for _, v := range out.Data() {
		if v != 0 && math.Abs(math.Abs(float64(v))-float64(m)) > 1e-6 {
			t.Fatalf("stochastic output %v not in {0, +-M}", v)
		}
	}
}

func TestStochDeterministicPerSeed(t *testing.T) {
	shape := []int{100}
	in := randTensor(5, 100, 0.2)
	w1 := New(SchemeStoch3QE, shape, Options{Seed: 7}).Compress(in)
	w2 := New(SchemeStoch3QE, shape, Options{Seed: 7}).Compress(in)
	if string(w1) != string(w2) {
		t.Error("same seed must give same wire")
	}
}

func TestMQE1BitRoundTrip(t *testing.T) {
	shape := []int{777}
	c := New(SchemeMQE1Bit, shape, Options{})
	in := randTensor(6, 777, 0.3)
	out, err := Decompress(c.Compress(in), shape)
	if err != nil {
		t.Fatal(err)
	}
	// Outputs take exactly two values.
	vals := make(map[float32]bool)
	for _, v := range out.Data() {
		vals[v] = true
	}
	if len(vals) > 2 {
		t.Errorf("1-bit reconstruction has %d distinct values", len(vals))
	}
}

func TestMQE1BitErrorFeedbackDelivers(t *testing.T) {
	shape := []int{32}
	c := New(SchemeMQE1Bit, shape, Options{})
	in := tensor.New(32)
	for i := range in.Data() {
		in.Data()[i] = float32(i-16) / 16
	}
	total := tensor.New(32)
	rounds := 200
	for i := 0; i < rounds; i++ {
		out, err := Decompress(c.Compress(in), shape)
		if err != nil {
			t.Fatal(err)
		}
		total.Add(out)
	}
	for i, want := range in.Data() {
		got := total.Data()[i] / float32(rounds)
		if math.Abs(float64(got-want)) > 0.08 {
			t.Errorf("element %d delivered at %v, want %v", i, got, want)
		}
	}
}

func TestTopKRoundTrip(t *testing.T) {
	shape := []int{1000}
	c := New(SchemeTopK, shape, Options{Fraction: 0.25, Seed: 1})
	in := randTensor(7, 1000, 0.5)
	out, err := Decompress(c.Compress(in), shape)
	if err != nil {
		t.Fatal(err)
	}
	// Transmitted values are exact; the rest decode to zero.
	nonzero := 0
	for i, v := range out.Data() {
		if v != 0 {
			nonzero++
			if v != in.Data()[i] {
				t.Fatalf("transmitted value %d altered", i)
			}
		}
	}
	if nonzero == 0 || nonzero > 600 {
		t.Errorf("unexpected selection count %d", nonzero)
	}
}

func TestTopKFractionValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for missing Fraction")
		}
	}()
	New(SchemeTopK, []int{10}, Options{})
}

func TestLocalStepsCadence(t *testing.T) {
	shape := []int{50}
	c := New(SchemeLocalSteps, shape, Options{Interval: 2})
	in := tensor.New(50)
	in.Fill(0.5)
	w1 := c.Compress(in)
	if len(w1) != 0 {
		t.Fatalf("step 1 should transmit nothing, got %d bytes", len(w1))
	}
	w2 := c.Compress(in)
	if len(w2) == 0 {
		t.Fatal("step 2 should transmit")
	}
	out, err := Decompress(w2, shape)
	if err != nil {
		t.Fatal(err)
	}
	// Two accumulated steps of 0.5 each.
	for _, v := range out.Data() {
		if v != 1.0 {
			t.Fatalf("accumulated value %v, want 1.0", v)
		}
	}
}

func TestLocalStepsEmptyWireDecodesToZero(t *testing.T) {
	out, err := Decompress(nil, []int{10})
	if err != nil {
		t.Fatal(err)
	}
	if out.MaxAbs() != 0 {
		t.Error("empty wire must decode to zeros")
	}
}

func TestDefaultIntervalAndSparsity(t *testing.T) {
	c := New(SchemeLocalSteps, []int{10}, Options{}) // Interval 0 -> 2
	if c.Name() != "2 local steps" {
		t.Errorf("Name = %q", c.Name())
	}
	c3 := New(SchemeThreeLC, []int{10}, Options{ZeroRun: true}) // Sparsity 0 -> 1
	if c3.Name() != "3LC (s=1.00)" {
		t.Errorf("Name = %q", c3.Name())
	}
}

func TestUnknownSchemePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Scheme(99), []int{4}, Options{})
}

func TestDecompressMalformed(t *testing.T) {
	shape := []int{100}
	cases := map[string][]byte{
		"unknown scheme": {99, 0, 0},
		"short raw":      {byte(SchemeNone), 1, 2, 3},
		"short int8":     {byte(SchemeInt8), 1, 2},
		"short ternary":  {byte(SchemeThreeLC), 1},
		"bad quartic":    append([]byte{byte(SchemeThreeLC), 0, 0, 0, 0, 0}, make([]byte, 3)...),
		"short onebit":   {byte(SchemeMQE1Bit), 0, 0, 0, 0},
		"short topk":     {byte(SchemeTopK), 0},
	}
	for name, wire := range cases {
		if _, err := Decompress(wire, shape); err == nil {
			t.Errorf("%s: expected decode error", name)
		}
	}
}

func TestTopKBitmapValueCountMismatch(t *testing.T) {
	// Bitmap says 1 value selected but payload has none.
	wire := make([]byte, 1+13)
	wire[0] = byte(SchemeTopK)
	wire[1] = 1 // bit 0 set
	if _, err := Decompress(wire, []int{100}); err == nil {
		t.Error("expected mismatch error")
	}
}

func TestCompressSizeMismatchPanics(t *testing.T) {
	for _, s := range []Scheme{SchemeNone, SchemeInt8, SchemeThreeLC, SchemeStoch3QE, SchemeMQE1Bit, SchemeTopK, SchemeLocalSteps} {
		opt := Options{Fraction: 0.5}
		c := New(s, []int{10}, opt)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("scheme %v: expected panic on size mismatch", s)
				}
			}()
			c.Compress(tensor.New(11))
		}()
	}
}

// Property: every scheme's wire decodes without error and preserves shape.
func TestAllSchemesDecodeProperty(t *testing.T) {
	schemes := []struct {
		s   Scheme
		opt Options
	}{
		{SchemeNone, Options{}},
		{SchemeInt8, Options{}},
		{SchemeThreeLC, Options{Sparsity: 1.5, ZeroRun: true}},
		{SchemeStoch3QE, Options{Seed: 1}},
		{SchemeMQE1Bit, Options{}},
		{SchemeTopK, Options{Fraction: 0.1, Seed: 1}},
	}
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw)%500 + 1
		in := randTensor(seed, n, 0.1)
		for _, sc := range schemes {
			c := New(sc.s, []int{n}, sc.opt)
			out, err := Decompress(c.Compress(in), []int{n})
			if err != nil || out.Len() != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: 3LC compressed size never exceeds the no-ZRE size by more than
// the framing byte (ZRE never expands quartic data).
func TestZRENeverExpandsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		in := randTensor(seed, 2000, 0.05)
		zre := New(SchemeThreeLC, []int{2000}, Options{Sparsity: 1.0, ZeroRun: true}).Compress(in)
		raw := New(SchemeThreeLC, []int{2000}, Options{Sparsity: 1.0, ZeroRun: false}).Compress(in)
		return len(zre) <= len(raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
