package compress_test

import (
	"fmt"

	"threelc/internal/compress"
	"threelc/internal/tensor"
)

// Example demonstrates the basic 3LC round trip: one compression context
// per tensor, compress on the sender, stateless decompress on the
// receiver.
func Example() {
	grad := tensor.FromSlice([]float32{-0.3, 0.1, -0.4, 0, 0.2, -0.1, -0.1, -0.1, 0, 0.3}, 10)

	ctx := compress.New(compress.SchemeThreeLC, grad.Shape(),
		compress.Options{Sparsity: 1.0, ZeroRun: true})
	wire := ctx.Compress(grad)
	out, err := compress.Decompress(wire, grad.Shape())
	if err != nil {
		panic(err)
	}

	fmt.Printf("raw %d bytes -> wire %d bytes\n", 4*grad.Len(), len(wire))
	fmt.Printf("reconstruction: %v\n", out.Data())
	// Output:
	// raw 40 bytes -> wire 8 bytes
	// reconstruction: [-0.4 0 -0.4 0 0.4 0 0 0 0 0.4]
}

// ExampleCompressor_errorAccumulation shows how the context's error
// accumulation delivers values that individual steps quantize away: the
// small 0.1 entries are below the rounding threshold every step, yet
// their accumulated sum is transmitted every few steps.
func Example_errorAccumulation() {
	in := tensor.FromSlice([]float32{1.0, 0.1}, 2)
	ctx := compress.New(compress.SchemeThreeLC, in.Shape(),
		compress.Options{Sparsity: 1.0, ZeroRun: true})

	total := tensor.New(2)
	for step := 0; step < 10; step++ {
		out, err := compress.Decompress(ctx.Compress(in), in.Shape())
		if err != nil {
			panic(err)
		}
		total.Add(out)
	}
	fmt.Printf("after 10 steps: delivered %.1f and %.1f (inputs sum to 10.0 and 1.0)\n",
		total.Data()[0], total.Data()[1])
	// Output:
	// after 10 steps: delivered 10.0 and 1.0 (inputs sum to 10.0 and 1.0)
}
