package compress

import "sync"

// Wire-buffer pooling. Compression contexts own their steady-state buffers
// (they recycle the caller's dst slice); the remaining transient need is
// zero-run expansion scratch inside the ternary decoder, which comes from
// a sync.Pool so the steady-state pull path allocates nothing.

var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// getBuf returns a pooled buffer with capacity >= n. The pointer form
// avoids re-boxing the slice header on every Get/Put.
func getBuf(n int) *[]byte {
	p := bufPool.Get().(*[]byte)
	if cap(*p) < n {
		*p = make([]byte, 0, n)
	}
	return p
}

// putBuf returns a buffer obtained from getBuf to the pool.
func putBuf(p *[]byte) {
	bufPool.Put(p)
}

// growBytes extends b by n bytes and returns the enlarged slice, reusing
// capacity when available. Unlike append(b, make([]byte, n)...) it never
// allocates a temporary.
func growBytes(b []byte, n int) []byte {
	if cap(b)-len(b) < n {
		// 1/8 headroom so buffers whose needed size fluctuates around a
		// mean (zero-run output length varies step to step) converge to a
		// stable capacity instead of reallocating on every new maximum.
		want := len(b) + n
		nb := make([]byte, len(b), want+want/8)
		copy(nb, b)
		b = nb
	}
	return b[:len(b)+n]
}
