package compress

import "sync"

// Compression contexts own their steady-state buffers (they recycle the
// caller's dst slice and context-held scratch). The ternary decoder's old
// zero-run expansion scratch is gone entirely — the fused kernel decoder
// streams wire bytes straight into the destination tensor, pooling only
// its per-M scaled LUT (see internal/kernel).

// scratchPool recycles float32 scratch for the decode-then-add fallback
// of DecompressAddInto (schemes without a fused add-decoder), so even the
// fallback aggregation path allocates nothing in steady state.
var scratchPool = sync.Pool{New: func() any { return new([]float32) }}

// growBytes extends b by n bytes and returns the enlarged slice, reusing
// capacity when available. Unlike append(b, make([]byte, n)...) it never
// allocates a temporary.
func growBytes(b []byte, n int) []byte {
	if cap(b)-len(b) < n {
		// 1/8 headroom so buffers whose needed size fluctuates around a
		// mean (zero-run output length varies step to step) converge to a
		// stable capacity instead of reallocating on every new maximum.
		want := len(b) + n
		nb := make([]byte, len(b), want+want/8)
		copy(nb, b)
		b = nb
	}
	return b[:len(b)+n]
}
