package compress

import (
	"fmt"

	"threelc/internal/tensor"
)

// DecodeFunc decodes one scheme's wire payload (the bytes after the scheme
// identifier) into dst. Decoders operate on untrusted network data: they
// must return errors for malformed payloads, never panic, and must not
// retain the payload slice.
type DecodeFunc func(payload []byte, dst *tensor.Tensor) error

// decoders is the wire-dispatch table: the first byte of a compressed
// message indexes directly into it. Each scheme self-registers its decoder
// from an init function next to its encoder, so adding a codec is a single
// file touching no central switch.
var decoders [256]DecodeFunc

// RegisterDecoder installs fn as the decoder for scheme s. It panics on a
// nil decoder or a duplicate registration — both are programming errors
// caught at process start, not at decode time.
func RegisterDecoder(s Scheme, fn DecodeFunc) {
	if fn == nil {
		panic(fmt.Sprintf("compress: RegisterDecoder(%v) with nil decoder", s))
	}
	if decoders[s] != nil {
		panic(fmt.Sprintf("compress: duplicate decoder registration for %v", s))
	}
	decoders[s] = fn
}

// RegisteredSchemes returns every scheme with an installed decoder, in
// ascending wire-identifier order. Tests use it to assert full corpus
// coverage of the decode error paths.
func RegisteredSchemes() []Scheme {
	var out []Scheme
	for s, fn := range decoders {
		if fn != nil {
			out = append(out, Scheme(s))
		}
	}
	return out
}

// Decompress decodes a wire message produced by any Compressor into a new
// tensor of the given shape. It returns an error for malformed messages.
func Decompress(wire []byte, shape []int) (*tensor.Tensor, error) {
	out := tensor.New(shape...)
	if err := DecompressInto(wire, out); err != nil {
		return nil, err
	}
	return out, nil
}

// DecompressInto decodes wire into dst through the codec registry. An
// empty wire message (produced by the local-steps scheme on
// non-transmitting steps) decodes as all zeros. Decoding allocates nothing
// in steady state: scratch space comes from a sync.Pool and the output is
// written in place.
func DecompressInto(wire []byte, dst *tensor.Tensor) error {
	if len(wire) == 0 {
		dst.Zero()
		return nil
	}
	fn := decoders[wire[0]]
	if fn == nil {
		return fmt.Errorf("compress: unknown scheme byte %d", wire[0])
	}
	return fn(wire[1:], dst)
}
