package compress

import (
	"fmt"

	"threelc/internal/tensor"
)

// DecodeFunc decodes one scheme's wire payload (the bytes after the scheme
// identifier) into dst. Decoders operate on untrusted network data: they
// must return errors for malformed payloads, never panic, and must not
// retain the payload slice.
type DecodeFunc func(payload []byte, dst *tensor.Tensor) error

// decoders is the wire-dispatch table: the first byte of a compressed
// message indexes directly into it. Each scheme self-registers its decoder
// from an init function next to its encoder, so adding a codec is a single
// file touching no central switch.
var decoders [256]DecodeFunc

// RegisterDecoder installs fn as the decoder for scheme s. It panics on a
// nil decoder or a duplicate registration — both are programming errors
// caught at process start, not at decode time.
func RegisterDecoder(s Scheme, fn DecodeFunc) {
	if fn == nil {
		panic(fmt.Sprintf("compress: RegisterDecoder(%v) with nil decoder", s))
	}
	if decoders[s] != nil {
		panic(fmt.Sprintf("compress: duplicate decoder registration for %v", s))
	}
	decoders[s] = fn
}

// RegisteredSchemes returns every scheme with an installed decoder, in
// ascending wire-identifier order. Tests use it to assert full corpus
// coverage of the decode error paths.
func RegisteredSchemes() []Scheme {
	var out []Scheme
	for s, fn := range decoders {
		if fn != nil {
			out = append(out, Scheme(s))
		}
	}
	return out
}

// AddDecodeFunc decodes one scheme's wire payload and ACCUMULATES it into
// dst (dst += decoded) in a single fused pass, with no intermediate
// tensor: the aggregation-side counterpart of DecodeFunc. workers caps
// the kernel-level goroutine fan-out for large tensors (<= 1 means fully
// serial, the zero-allocation configuration).
//
// The accumulator contract is stricter than DecodeFunc's: dst holds live
// aggregation state (other workers' gradients already summed), so a
// malformed payload must be rejected BEFORE any element of dst is
// modified — validate-then-accumulate, never partially apply. The
// accumulated result must be bit-identical to decoding into scratch and
// adding the scratch element-wise.
type AddDecodeFunc func(payload []byte, dst *tensor.Tensor, workers int) error

// addDecoders is the decode-accumulate dispatch table. Schemes without a
// fused decode-add register nothing and fall back to pooled
// decode-then-add inside DecompressAddInto, which trivially satisfies the
// bit-identity contract.
var addDecoders [256]AddDecodeFunc

// RegisterAddDecoder installs fn as the decode-accumulate path for scheme
// s, with the same duplicate/nil policing as RegisterDecoder. A scheme
// must already have a plain decoder registered: the add path is an
// optimization over decode-then-add, never a replacement.
func RegisterAddDecoder(s Scheme, fn AddDecodeFunc) {
	if fn == nil {
		panic(fmt.Sprintf("compress: RegisterAddDecoder(%v) with nil decoder", s))
	}
	if addDecoders[s] != nil {
		panic(fmt.Sprintf("compress: duplicate add-decoder registration for %v", s))
	}
	addDecoders[s] = fn
}

// Decompress decodes a wire message produced by any Compressor into a new
// tensor of the given shape. It returns an error for malformed messages.
func Decompress(wire []byte, shape []int) (*tensor.Tensor, error) {
	out := tensor.New(shape...)
	if err := DecompressInto(wire, out); err != nil {
		return nil, err
	}
	return out, nil
}

// DecompressInto decodes wire into dst through the codec registry. An
// empty wire message (produced by the local-steps scheme on
// non-transmitting steps) decodes as all zeros. Decoding allocates nothing
// in steady state: scratch space comes from a sync.Pool and the output is
// written in place.
//
//3lc:noalloc
//3lc:decode
func DecompressInto(wire []byte, dst *tensor.Tensor) error {
	if len(wire) == 0 {
		dst.Zero()
		return nil
	}
	fn := decoders[wire[0]]
	if fn == nil {
		return fmt.Errorf("compress: unknown scheme byte %d", wire[0])
	}
	return fn(wire[1:], dst)
}

// DecompressAddInto decodes wire and accumulates it into dst: dst +=
// decoded, bit-identical to DecompressInto into scratch followed by
// dst.Add(scratch), but — for schemes with a registered add-decoder — in
// a single fused pass with no intermediate tensor. This is the
// aggregation hot path: the parameter server runs one call per worker per
// tensor, so fusing here halves the tensor-memory traffic of gradient
// aggregation. workers caps the kernel fan-out for large tensors.
//
// An empty wire message (local steps, non-transmitting) accumulates
// zeros — an explicit += 0 sweep, because x + 0 is not the identity on
// negative zeros and the staged composition performs the adds. On error
// dst is unchanged (see AddDecodeFunc).
//
//3lc:noalloc
//3lc:decode
func DecompressAddInto(wire []byte, dst *tensor.Tensor, workers int) error {
	if len(wire) == 0 {
		d := dst.Data()
		for i := range d {
			d[i] += 0
		}
		return nil
	}
	if fn := addDecoders[wire[0]]; fn != nil {
		return fn(wire[1:], dst, workers)
	}
	if decoders[wire[0]] == nil {
		return fmt.Errorf("compress: unknown scheme byte %d", wire[0])
	}
	return decodeThenAdd(wire, dst)
}

// DecompressFirstAddInto decodes wire into dst as the FIRST accumulation
// of a fresh gradient sum: bit-identical to zeroing dst and then
// DecompressAddInto, but it skips both the zeroing sweep and the
// read-modify-write when the wire provably decodes to no negative zeros —
// then writing the decode over dst IS the zero-and-accumulate result
// (x + 0 differs from x only at x = −0). Ternary wires with a
// non-negative scale qualify: every decoded value is M·q with M >= +0,
// so −0 (only M·(−1) with M = ±0, or negative M) cannot appear. Other
// schemes (raw floats can carry −0 on the wire) zero and accumulate.
//
// On error dst is zeroed — exactly the staged state of a fresh sum whose
// first accumulation was rejected.
func DecompressFirstAddInto(wire []byte, dst *tensor.Tensor, workers int) error {
	if firstAddAsSet(wire) {
		if err := DecompressInto(wire, dst); err != nil {
			dst.Zero()
			return err
		}
		return nil
	}
	dst.Zero()
	return DecompressAddInto(wire, dst, workers)
}

// firstAddAsSet reports whether wire's decode provably contains no
// negative zeros (see DecompressFirstAddInto): a ternary wire whose scale
// M is strictly positive (or +NaN/+Inf — their products are never −0).
// M = ±0 is excluded: a hostile wire can pair a zero scale with nonzero
// digits, and +0·(−1) = −0. The scale sits at wire bytes [1,5)
// little-endian, sign bit atop wire[4].
func firstAddAsSet(wire []byte) bool {
	if len(wire) < 5 {
		return false
	}
	switch Scheme(wire[0]) {
	case SchemeThreeLC, SchemeStoch3QE:
		return wire[4]&0x80 == 0 && wire[1]|wire[2]|wire[3]|wire[4] != 0
	}
	return false
}

// decodeThenAdd is the fallback decode-accumulate: decode into pooled
// scratch, then add. The scratch slice is pooled (only the small tensor
// header is rebuilt per call); schemes with subtractive wire formats
// (top-k bitmaps, whose skipped elements must contribute an exact staged
// +0) stay on it.
func decodeThenAdd(wire []byte, dst *tensor.Tensor) error {
	sp := scratchPool.Get().(*[]float32)
	s := *sp
	if cap(s) < dst.Len() {
		s = make([]float32, dst.Len())
	}
	s = s[:dst.Len()]
	tmp := tensor.FromSlice(s, dst.Len())
	err := DecompressInto(wire, tmp)
	if err == nil {
		dst.Add(tmp)
	}
	*sp = s
	scratchPool.Put(sp)
	return err
}
