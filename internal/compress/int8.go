package compress

import (
	"fmt"

	"threelc/internal/quant"
	"threelc/internal/tensor"
)

// int8Compressor is the "8-bit int" baseline (§5.1): 255-level quantization
// with no error accumulation, approximating TPU-internal 8-bit quantization.
// Wire format: [scheme][4B M][n bytes int8].
type int8Compressor struct {
	shape []int
	n     int
}

func (c *int8Compressor) Scheme() Scheme { return SchemeInt8 }
func (c *int8Compressor) Name() string   { return "8-bit int" }

func (c *int8Compressor) Compress(in *tensor.Tensor) []byte {
	if in.Len() != c.n {
		panic("compress: input size mismatch")
	}
	q := quant.QuantizeInt8(in)
	wire := make([]byte, 1+4+len(q.Q))
	wire[0] = byte(SchemeInt8)
	putF32(wire[1:], q.M)
	for i, v := range q.Q {
		wire[5+i] = byte(v)
	}
	return wire
}

func decodeInt8(payload []byte, dst *tensor.Tensor) error {
	d := dst.Data()
	if len(payload) != 4+len(d) {
		return fmt.Errorf("compress: int8 payload %d bytes, want %d", len(payload), 4+len(d))
	}
	m := getF32(payload)
	scale := m / 127
	for i := range d {
		d[i] = scale * float32(int8(payload[4+i]))
	}
	return nil
}
