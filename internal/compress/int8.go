package compress

import (
	"fmt"

	"threelc/internal/kernel"
	"threelc/internal/tensor"
)

func init() {
	RegisterDecoder(SchemeInt8, decodeInt8)
	RegisterAddDecoder(SchemeInt8, decodeInt8Add)
}

// int8Compressor is the "8-bit int" baseline (§5.1): 255-level quantization
// with no error accumulation, approximating TPU-internal 8-bit quantization.
// Wire format: [scheme][4B M][n bytes int8].
//
// The encode runs on the fused kernels through the chunked-parallel path:
// a two-phase parallel |max| reduction, then kernel.EncodeInt8Parallel
// quantizing straight into the wire buffer in disjoint spans — two passes
// over tensor memory and byte-identical output for any worker count. The
// staged quant.QuantizeInt8Into remains the bit-identical reference.
type int8Compressor struct {
	shape []int
	n     int
	par   int // per-pass fan-out cap (Options.CodecParallelism)
}

func (c *int8Compressor) Scheme() Scheme { return SchemeInt8 }
func (c *int8Compressor) Name() string   { return "8-bit int" }

func (c *int8Compressor) Compress(in *tensor.Tensor) []byte {
	return c.CompressInto(in, nil)
}

//3lc:noalloc
func (c *int8Compressor) CompressInto(in *tensor.Tensor, dst []byte) []byte {
	if in.Len() != c.n {
		panic("compress: input size mismatch")
	}
	w1 := kernel.PassWorkers(c.n, c.par, kernel.SpanReduce)
	m := float64(kernel.MaxAbsParallel(in.Data(), w1))
	dst = append(dst, byte(SchemeInt8))
	dst = appendF32(dst, float32(m))
	w2 := kernel.PassWorkers(c.n, c.par, kernel.SpanEncode)
	return kernel.EncodeInt8Parallel(in.Data(), m, dst, w2)
}

func decodeInt8(payload []byte, dst *tensor.Tensor) error {
	d := dst.Data()
	if len(payload) != 4+len(d) {
		return fmt.Errorf("compress: int8 payload %d bytes, want %d", len(payload), 4+len(d))
	}
	m := getF32(payload)
	scale := m / 127
	for i := range d {
		d[i] = scale * float32(int8(payload[4+i]))
	}
	return nil
}

// decodeInt8Add accumulates the int8 payload in one pass: dst[i] +=
// scale·q is the exact per-element add of decode-then-add; the length
// check rejects malformed payloads before dst is touched.
func decodeInt8Add(payload []byte, dst *tensor.Tensor, _ int) error {
	d := dst.Data()
	if len(payload) != 4+len(d) {
		return fmt.Errorf("compress: int8 payload %d bytes, want %d", len(payload), 4+len(d))
	}
	m := getF32(payload)
	scale := m / 127
	for i := range d {
		d[i] += scale * float32(int8(payload[4+i]))
	}
	return nil
}
