package compress

import (
	"fmt"

	"threelc/internal/quant"
	"threelc/internal/tensor"
)

func init() {
	RegisterDecoder(SchemeInt8, decodeInt8)
}

// int8Compressor is the "8-bit int" baseline (§5.1): 255-level quantization
// with no error accumulation, approximating TPU-internal 8-bit quantization.
// Wire format: [scheme][4B M][n bytes int8].
type int8Compressor struct {
	shape []int
	n     int
	q     quant.Int8Quantized // quantization scratch, reused across steps
}

func (c *int8Compressor) Scheme() Scheme { return SchemeInt8 }
func (c *int8Compressor) Name() string   { return "8-bit int" }

func (c *int8Compressor) Compress(in *tensor.Tensor) []byte {
	return c.CompressInto(in, nil)
}

func (c *int8Compressor) CompressInto(in *tensor.Tensor, dst []byte) []byte {
	if in.Len() != c.n {
		panic("compress: input size mismatch")
	}
	quant.QuantizeInt8Into(in, &c.q)
	dst = append(dst, byte(SchemeInt8))
	dst = appendF32(dst, c.q.M)
	off := len(dst)
	dst = growBytes(dst, len(c.q.Q))
	for i, v := range c.q.Q {
		dst[off+i] = byte(v)
	}
	return dst
}

func decodeInt8(payload []byte, dst *tensor.Tensor) error {
	d := dst.Data()
	if len(payload) != 4+len(d) {
		return fmt.Errorf("compress: int8 payload %d bytes, want %d", len(payload), 4+len(d))
	}
	m := getF32(payload)
	scale := m / 127
	for i := range d {
		d[i] = scale * float32(int8(payload[4+i]))
	}
	return nil
}
