package compress

import (
	"bytes"
	"math"
	"testing"

	"threelc/internal/kernel"
	"threelc/internal/tensor"
)

// batchShapes is a tiny-tensor mix exercising odd group remainders and a
// scalar member.
var batchShapes = [][]int{{7}, {3, 5}, {1}, {64}, {2, 2, 2}, {33}}

// TestTernaryBatchMatchesStandalone drives a TernaryBatch and a set of
// standalone 3LC contexts with identical inputs over several accumulating
// steps: wires must be byte-identical and every member's residual buffer
// bit-identical, for both ZRE settings.
func TestTernaryBatchMatchesStandalone(t *testing.T) {
	for _, zre := range []bool{true, false} {
		opt := Options{Sparsity: 1.0, ZeroRun: zre}
		batch := NewTernaryBatch(batchShapes, opt)
		solo := make([]Compressor, len(batchShapes))
		for k, shape := range batchShapes {
			solo[k] = New(SchemeThreeLC, shape, opt)
		}

		ins := make([]*tensor.Tensor, len(batchShapes))
		for step := 0; step < 4; step++ {
			for k, shape := range batchShapes {
				n := 1
				for _, d := range shape {
					n *= d
				}
				ins[k] = randTensor(uint64(1000*step+k), n, 0.3)
			}
			wires := batch.CompressAll(func(k int) []float32 { return ins[k].Data() })
			if len(wires) != len(batchShapes) {
				t.Fatalf("zre=%v: CompressAll returned %d wires, want %d", zre, len(wires), len(batchShapes))
			}
			for k := range batchShapes {
				want := solo[k].CompressInto(ins[k], nil)
				if !bytes.Equal(wires[k], want) {
					t.Fatalf("zre=%v step %d member %d: batched wire differs from standalone (%d vs %d bytes)",
						zre, step, k, len(wires[k]), len(want))
				}
				got := batch.members[k].acc.Buffer().Data()
				ref := solo[k].(*threeLCCompressor).acc.Buffer().Data()
				for i := range ref {
					if math.Float32bits(got[i]) != math.Float32bits(ref[i]) {
						t.Fatalf("zre=%v step %d member %d: residual differs at %d", zre, step, k, i)
					}
				}
			}
		}
	}
}

// TestTernaryBatchPreAccumulated checks the pull-leg protocol: folding
// state changes into members' AccData and handing kernel-reduced maxes to
// EncodePreAccumulated must match the standalone PreAccumulator path.
func TestTernaryBatchPreAccumulated(t *testing.T) {
	opt := Options{Sparsity: 1.25, ZeroRun: true}
	batch := NewTernaryBatch(batchShapes, opt)
	solo := make([]Compressor, len(batchShapes))
	for k, shape := range batchShapes {
		solo[k] = New(SchemeThreeLC, shape, opt)
	}

	maxes := make([]float32, len(batchShapes))
	for step := 0; step < 3; step++ {
		soloWires := make([][]byte, len(batchShapes))
		for k := range batchShapes {
			m := batch.Member(k).(PreAccumulator)
			in := randTensor(uint64(500*step+k), len(m.AccData()), 0.2)
			maxes[k] = kernel.AccumulateMaxAbs(m.AccData(), in.Data())
			sm := solo[k].(PreAccumulator)
			soloWires[k] = solo[k].(*threeLCCompressor).CompressPreAccumulated(
				kernel.AccumulateMaxAbs(sm.AccData(), in.Data()), nil)
		}
		wires := batch.EncodePreAccumulated(maxes)
		for k := range batchShapes {
			if !bytes.Equal(wires[k], soloWires[k]) {
				t.Fatalf("step %d member %d: pre-accumulated batched wire differs", step, k)
			}
		}
	}
}

// TestTernaryBatchMemberStateful checks that batch members expose the
// ordinary checkpoint protocol: state captured from a standalone context
// restores into a batch member and reproduces its wire stream.
func TestTernaryBatchMemberStateful(t *testing.T) {
	opt := Options{Sparsity: 1.0, ZeroRun: true}
	shape := []int{33}
	ref := New(SchemeThreeLC, shape, opt)
	in := randTensor(7, 33, 0.4)
	ref.CompressInto(in, nil) // leave nonzero residual state

	batch := NewTernaryBatch([][]int{{5}, shape}, opt)
	st, ok := batch.Member(1).(Stateful)
	if !ok {
		t.Fatal("batch member does not implement Stateful")
	}
	if err := st.RestoreState(ref.(Stateful).AppendState(nil)); err != nil {
		t.Fatalf("RestoreState: %v", err)
	}
	in2 := randTensor(8, 33, 0.4)
	want := ref.CompressInto(in2, nil)
	got := batch.Member(1).CompressInto(in2, nil)
	if !bytes.Equal(got, want) {
		t.Fatal("restored batch member wire differs from reference context")
	}
	// The restore must have landed in the shared arena, not a detached
	// buffer.
	if &batch.members[1].acc.Buffer().Data()[0] != &batch.arena[5] {
		t.Fatal("batch member accumulator no longer aliases the arena")
	}
}

// TestTernaryBatchZeroAllocSteadyState: after the first step converges
// the wire arena, CompressAll must allocate nothing.
func TestTernaryBatchZeroAllocSteadyState(t *testing.T) {
	batch := NewTernaryBatch(batchShapes, Options{Sparsity: 1.0, ZeroRun: true})
	ins := make([][]float32, len(batchShapes))
	for k := range batchShapes {
		n := 1
		for _, d := range batchShapes[k] {
			n *= d
		}
		ins[k] = randTensor(uint64(k+40), n, 0.3).Data()
	}
	get := func(k int) []float32 { return ins[k] }
	batch.CompressAll(get)
	batch.CompressAll(get)
	if allocs := testing.AllocsPerRun(20, func() { batch.CompressAll(get) }); allocs != 0 {
		t.Fatalf("steady-state CompressAll allocates %.1f times per step, want 0", allocs)
	}
}
