package stats

import (
	"math"
	"testing"

	"threelc/internal/encode"
	"threelc/internal/quant"
	"threelc/internal/tensor"
)

func TestSummarizeBasics(t *testing.T) {
	tt := tensor.FromSlice([]float32{-2, 0, 0, 2}, 4)
	s := Summarize(tt)
	if s.N != 4 {
		t.Errorf("N = %d", s.N)
	}
	if s.Mean != 0 {
		t.Errorf("Mean = %v", s.Mean)
	}
	if s.MaxAbs != 2 {
		t.Errorf("MaxAbs = %v", s.MaxAbs)
	}
	if s.MeanAbs != 1 {
		t.Errorf("MeanAbs = %v", s.MeanAbs)
	}
	if s.ZeroFrac != 0.5 {
		t.Errorf("ZeroFrac = %v", s.ZeroFrac)
	}
	if math.Abs(s.Std-math.Sqrt2) > 1e-9 {
		t.Errorf("Std = %v, want sqrt(2)", s.Std)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(tensor.New(0))
	if s.N != 0 || s.Mean != 0 {
		t.Error("empty tensor summary should be zero-valued")
	}
}

func TestSummarizeGaussianMoments(t *testing.T) {
	rng := tensor.NewRNG(1)
	tt := tensor.New(100000)
	tensor.FillNormal(tt, 2, rng)
	s := Summarize(tt)
	if math.Abs(s.Mean) > 0.05 {
		t.Errorf("Mean = %v", s.Mean)
	}
	if math.Abs(s.Std-2) > 0.05 {
		t.Errorf("Std = %v, want 2", s.Std)
	}
	// Gaussian excess kurtosis is 0; |v| quantiles follow |N(0,2)|.
	if math.Abs(s.Kurtosis) > 0.15 {
		t.Errorf("Kurtosis = %v, want ~0", s.Kurtosis)
	}
	// p50 of |N(0,σ)| = 0.674σ.
	if math.Abs(s.AbsP50-0.674*2) > 0.05 {
		t.Errorf("AbsP50 = %v, want ~1.35", s.AbsP50)
	}
	if !(s.AbsP50 < s.AbsP90 && s.AbsP90 < s.AbsP99 && s.AbsP99 < s.AbsP999) {
		t.Error("quantiles not monotone")
	}
}

func TestSummaryString(t *testing.T) {
	s := Summarize(tensor.FromSlice([]float32{1, -1}, 2))
	if len(s.String()) == 0 {
		t.Error("String empty")
	}
}

func TestHistogram(t *testing.T) {
	tt := tensor.FromSlice([]float32{-1, -0.5, 0.5, 1}, 4)
	h := NewHistogram(tt, 4)
	if h.Total != 4 {
		t.Errorf("Total = %d", h.Total)
	}
	var sum float64
	for i := range h.Counts {
		sum += h.Frac(i)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("fractions sum to %v", sum)
	}
	// Extremes land in the outer bins.
	if h.Counts[0] == 0 || h.Counts[3] == 0 {
		t.Errorf("outer bins empty: %v", h.Counts)
	}
}

func TestHistogramValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 0 bins")
		}
	}()
	NewHistogram(tensor.New(4), 0)
}

func TestQuantSparsityMatchesQuantizer(t *testing.T) {
	// The analytical prediction must equal the quantizer's actual zero
	// count.
	rng := tensor.NewRNG(2)
	tt := tensor.New(10000)
	tensor.FillNormal(tt, 0.1, rng)
	for _, s := range []float64{1.0, 1.5, 1.9} {
		predicted := QuantSparsity(tt, s)
		actual := float64(quant.Quantize3(tt, s).CountZeros()) / float64(tt.Len())
		if math.Abs(predicted-actual) > 1e-9 {
			t.Errorf("s=%v: predicted %v, quantizer produced %v", s, predicted, actual)
		}
	}
}

func TestQuantSparsityZeroTensor(t *testing.T) {
	if QuantSparsity(tensor.New(10), 1.5) != 1 {
		t.Error("zero tensor should be fully sparse")
	}
}

func TestZeroRunRatioEstimateEndpoints(t *testing.T) {
	// z=0: no zeros, ratio 1. z=1: all zeros, ratio 14 (runs of 14 -> 1).
	if r := ZeroRunRatioEstimate(0); math.Abs(r-1) > 1e-9 {
		t.Errorf("z=0: ratio %v, want 1", r)
	}
	if r := ZeroRunRatioEstimate(1); r != 14 {
		t.Errorf("z=1: ratio %v, want 14", r)
	}
	// Monotone in z.
	prev := 0.0
	for z := 0.0; z <= 1.0001; z += 0.05 {
		zz := math.Min(z, 1)
		r := ZeroRunRatioEstimate(zz)
		if r < prev-1e-9 {
			t.Fatalf("ratio not monotone at z=%v", zz)
		}
		prev = r
	}
}

func TestZeroRunRatioEstimateAgainstMeasured(t *testing.T) {
	// On iid ternary data the estimate should be close to the measured
	// zero-run ratio.
	rng := tensor.NewRNG(3)
	n := 200000
	for _, z := range []float64{0.7, 0.9, 0.97} {
		q := make([]int8, n)
		zeros := 0
		for i := range q {
			if rng.Float64() < z {
				zeros++
			} else if rng.Float64() < 0.5 {
				q[i] = 1
			} else {
				q[i] = -1
			}
		}
		qe := encode.QuarticEncode(q)
		zre := encode.ZeroRunEncode(qe)
		measured := float64(len(qe)) / float64(len(zre))
		estimated := ZeroRunRatioEstimate(float64(zeros) / float64(n))
		if math.Abs(measured-estimated)/measured > 0.1 {
			t.Errorf("z=%v: measured ratio %.3f vs estimate %.3f", z, measured, estimated)
		}
	}
}

func TestZeroRunRatioEstimateValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for z out of range")
		}
	}()
	ZeroRunRatioEstimate(1.5)
}
