// Package stats computes distribution statistics of state-change tensors.
// The effectiveness of 3LC's pipeline depends entirely on these statistics
// — 3-value quantization exploits the zero-centred concentration of
// gradient values (§3.1), and zero-run encoding's ratio is a direct
// function of the quantized zero fraction (§3.3) — so the experiment
// harness reports them alongside compression results.
package stats

import (
	"fmt"
	"math"
	"sort"

	"threelc/internal/tensor"
)

// Summary captures the distribution of one tensor's values.
type Summary struct {
	N        int
	Mean     float64
	Std      float64
	MaxAbs   float64
	MeanAbs  float64
	Kurtosis float64 // excess kurtosis; > 0 means heavier-than-Gaussian tails
	// ZeroFrac is the fraction of exactly-zero values in the input.
	ZeroFrac float64
	// Quantiles of |v| at 50/90/99/99.9 %.
	AbsP50, AbsP90, AbsP99, AbsP999 float64
}

// Summarize computes a Summary of t's values.
func Summarize(t *tensor.Tensor) Summary {
	d := t.Data()
	s := Summary{N: len(d)}
	if len(d) == 0 {
		return s
	}
	var sum, sq float64
	zeros := 0
	abs := make([]float64, len(d))
	for i, v := range d {
		f := float64(v)
		sum += f
		sq += f * f
		a := math.Abs(f)
		abs[i] = a
		if a > s.MaxAbs {
			s.MaxAbs = a
		}
		s.MeanAbs += a
		if v == 0 {
			zeros++
		}
	}
	n := float64(len(d))
	s.Mean = sum / n
	s.MeanAbs /= n
	variance := sq/n - s.Mean*s.Mean
	if variance < 0 {
		variance = 0
	}
	s.Std = math.Sqrt(variance)
	s.ZeroFrac = float64(zeros) / n

	if s.Std > 0 {
		var m4 float64
		for _, v := range d {
			z := (float64(v) - s.Mean) / s.Std
			m4 += z * z * z * z
		}
		s.Kurtosis = m4/n - 3
	}

	sort.Float64s(abs)
	q := func(p float64) float64 {
		idx := int(p * float64(len(abs)-1))
		return abs[idx]
	}
	s.AbsP50, s.AbsP90, s.AbsP99, s.AbsP999 = q(0.50), q(0.90), q(0.99), q(0.999)
	return s
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3g std=%.3g max|v|=%.3g p50|v|=%.3g p99|v|=%.3g kurt=%.2f zeros=%.1f%%",
		s.N, s.Mean, s.Std, s.MaxAbs, s.AbsP50, s.AbsP99, s.Kurtosis, 100*s.ZeroFrac)
}

// Histogram is a fixed-width histogram over [-MaxAbs, +MaxAbs].
type Histogram struct {
	Lo, Hi float64
	Counts []int
	Total  int
}

// NewHistogram builds a histogram of t's values with the given bin count.
func NewHistogram(t *tensor.Tensor, bins int) *Histogram {
	if bins < 1 {
		panic("stats: need at least one bin")
	}
	m := float64(t.MaxAbs())
	if m == 0 {
		m = 1
	}
	h := &Histogram{Lo: -m, Hi: m, Counts: make([]int, bins)}
	w := (h.Hi - h.Lo) / float64(bins)
	for _, v := range t.Data() {
		idx := int((float64(v) - h.Lo) / w)
		if idx < 0 {
			idx = 0
		}
		if idx >= bins {
			idx = bins - 1
		}
		h.Counts[idx]++
		h.Total++
	}
	return h
}

// Frac returns the fraction of values in bin i.
func (h *Histogram) Frac(i int) float64 {
	if h.Total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.Total)
}

// QuantSparsity predicts the zero fraction 3-value quantization would
// produce on t at sparsity multiplier s: the fraction of values with
// |v| < M/2 where M = max|t|*s. This is the analytical link between a
// tensor's distribution and 3LC's compression ratio.
func QuantSparsity(t *tensor.Tensor, s float64) float64 {
	m := float64(t.MaxAbs()) * s
	if m == 0 {
		return 1
	}
	half := m / 2
	n := 0
	for _, v := range t.Data() {
		f := float64(v)
		if f < half && f > -half {
			n++
		}
	}
	return float64(n) / float64(t.Len())
}

// ZeroRunRatioEstimate predicts the zero-run encoding compression ratio
// (output bytes over quartic bytes, inverted) at a quantized zero
// fraction z, under an independence assumption: each quartic byte is the
// zero-group byte 121 with probability p = z^5, and maximal runs of 121s
// are geometrically distributed. A run of length k costs ceil(k/14)
// output bytes (run bytes encode 2..14; a lone 121 passes through as one
// byte). Real quantized tensors have spatially correlated zeros, so
// measured ratios typically exceed this estimate.
func ZeroRunRatioEstimate(z float64) float64 {
	if z < 0 || z > 1 {
		panic(fmt.Sprintf("stats: zero fraction %v outside [0,1]", z))
	}
	p := math.Pow(z, 5)
	if p >= 1-1e-12 {
		return 14 // all bytes are 121: every full 14-run collapses to one byte
	}
	// Expected output bytes contributed per input byte:
	//   non-121 bytes: (1-p) each costing 1.
	//   runs of 121s: a run starts with rate (1-p)*p per byte; its length
	//   K is geometric with mean 1/(1-p); it emits ceil(K/14) bytes.
	var expOutPerRun float64
	pk := 1.0
	for k := 1; k <= 4096; k++ {
		prob := pk * (1 - p) // P(K = k)
		expOutPerRun += prob * math.Ceil(float64(k)/14)
		pk *= p
		if pk < 1e-15 {
			break
		}
	}
	outPerByte := (1 - p) + (1-p)*p*expOutPerRun
	return 1 / outPerByte
}
