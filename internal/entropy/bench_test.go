package entropy_test

import (
	"testing"

	"threelc/internal/compress"
	"threelc/internal/entropy"
	"threelc/internal/tensor"
)

// quarticWire builds the workload the paper benchmarks entropy coders on
// (§5.3): the zero-run-encoded quartic stream of a 3LC-compressed
// gradient tensor. Its byte distribution is skewed (runs trimmed, but the
// quartic alphabet stays non-uniform), which is where a second-stage
// coder earns its keep.
func quarticWire(n int) []byte {
	rng := tensor.NewRNG(9)
	in := tensor.New(n)
	tensor.FillNormal(in, 0.01, rng)
	ctx := compress.New(compress.SchemeThreeLC, []int{n}, compress.Options{Sparsity: 1.0, ZeroRun: true})
	return ctx.CompressInto(in, nil)
}

// BenchmarkEntropyStage measures the streaming second stage over a 1M-element
// 3LC quartic wire: steady-state encode/decode with recycled buffers must
// be allocation-free, and the encoders report the achieved compression
// ratio (raw/coded) as a custom metric — CI floors it at 1.1x for Huffman.
func BenchmarkEntropyStage(b *testing.B) {
	raw := quarticWire(1 << 20)

	bench := func(name string, encode func(dst, src []byte) []byte,
		decode func(dst, src []byte) ([]byte, error)) {
		coded := encode(nil, raw)
		b.Run(name+"-encode", func(b *testing.B) {
			buf := encode(nil, raw)
			b.SetBytes(int64(len(raw)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf = encode(buf[:0], raw)
			}
			b.ReportMetric(float64(len(raw))/float64(len(buf)), "ratio")
		})
		b.Run(name+"-decode", func(b *testing.B) {
			buf, err := decode(nil, coded)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(raw)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf, err = decode(buf[:0], coded)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	bench("huffman", entropy.HuffmanEncodeInto, entropy.HuffmanDecodeInto)
	bench("lz", entropy.LZEncodeInto, entropy.LZDecodeInto)
}
