package entropy

import (
	"bytes"
	"testing"
)

// FuzzHuffmanDecode drives the canonical-table decoder with arbitrary
// streams: it must return an error for malformed input — over-subscribed
// length tables, truncated bit streams, codes overrunning maxCodeLen —
// and never panic. Accepted streams are cross-checked by re-encoding the
// decoded bytes and decoding again (round-trip oracle), and the fuzz
// input is also exercised as plaintext through a full encode/decode
// round trip that must reproduce it exactly.
func FuzzHuffmanDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Add(HuffmanEncode(nil))
	f.Add(HuffmanEncode([]byte("the quick brown fox jumps over the lazy dog")))
	f.Add(HuffmanEncode(bytes.Repeat([]byte{121}, 300)))
	f.Add(HuffmanEncode(quarticData(11, 2000, 1.75)))
	over := make([]byte, 4+256) // every symbol 1 bit: over-subscribed
	over[0] = 8
	for i := 4; i < 4+256; i++ {
		over[i] = 1
	}
	f.Add(over)
	f.Fuzz(func(t *testing.T, in []byte) {
		dec, err := HuffmanDecodeInto(nil, in)
		if err == nil {
			re := HuffmanEncodeInto(nil, dec)
			dec2, err2 := HuffmanDecodeInto(nil, re)
			if err2 != nil {
				t.Fatalf("re-encode of accepted stream failed to decode: %v", err2)
			}
			if !bytes.Equal(dec, dec2) {
				t.Fatalf("re-encode round trip mismatch: %d vs %d bytes", len(dec), len(dec2))
			}
		}

		// The input as plaintext must always survive a round trip, and
		// decoding must leave a pre-existing dst prefix untouched.
		enc := HuffmanEncodeInto(nil, in)
		prefix := []byte{0xAA, 0xBB, 0xCC}
		out, err := HuffmanDecodeInto(append([]byte(nil), prefix...), enc)
		if err != nil {
			t.Fatalf("round trip decode error: %v", err)
		}
		if !bytes.Equal(out[:3], prefix) {
			t.Fatalf("decode corrupted dst prefix: %x", out[:3])
		}
		if !bytes.Equal(out[3:], in) {
			t.Fatalf("round trip mismatch: %d vs %d bytes", len(out)-3, len(in))
		}
	})
}

// FuzzLZDecode is the LZ counterpart: arbitrary streams must decode or
// error (truncated tokens, invalid offsets, length mismatches) without
// panicking, accepted output must re-encode losslessly, and the input as
// plaintext must round-trip byte-exact.
func FuzzLZDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2})
	f.Add([]byte{5, 0, 0, 0, 0x01, 4, 9, 0})
	f.Add(LZEncode(nil))
	f.Add(LZEncode([]byte("abcabcabcabcabc")))
	f.Add(LZEncode(bytes.Repeat([]byte{121}, 300)))
	f.Add(LZEncode(quarticData(12, 2000, 1.75)))
	f.Fuzz(func(t *testing.T, in []byte) {
		dec, err := LZDecodeInto(nil, in)
		if err == nil {
			re := LZEncodeInto(nil, dec)
			dec2, err2 := LZDecodeInto(nil, re)
			if err2 != nil {
				t.Fatalf("re-encode of accepted stream failed to decode: %v", err2)
			}
			if !bytes.Equal(dec, dec2) {
				t.Fatalf("re-encode round trip mismatch: %d vs %d bytes", len(dec), len(dec2))
			}
		}

		enc := LZEncodeInto(nil, in)
		prefix := []byte{0xAA, 0xBB, 0xCC}
		out, err := LZDecodeInto(append([]byte(nil), prefix...), enc)
		if err != nil {
			t.Fatalf("round trip decode error: %v", err)
		}
		if !bytes.Equal(out[:3], prefix) {
			t.Fatalf("decode corrupted dst prefix: %x", out[:3])
		}
		if !bytes.Equal(out[3:], in) {
			t.Fatalf("round trip mismatch: %d vs %d bytes", len(out)-3, len(in))
		}
	})
}
