package entropy

import (
	"bytes"
	"testing"
)

// TestIntoMatchesShims pins the append-style forms to the one-shot
// shims: identical wire bytes, identical decode, and appending after a
// non-empty prefix leaves the prefix intact.
func TestIntoMatchesShims(t *testing.T) {
	cases := [][]byte{
		nil,
		{42},
		{1, 1, 1, 1, 1},
		[]byte("the quick brown fox jumps over the lazy dog"),
		quarticData(21, 10000, 1.0),
		quarticData(22, 10000, 1.9),
	}
	prefix := []byte{9, 9, 9}
	for i, data := range cases {
		hShim, hInto := HuffmanEncode(data), HuffmanEncodeInto(append([]byte(nil), prefix...), data)
		if !bytes.Equal(hInto[:3], prefix) || !bytes.Equal(hShim, hInto[3:]) {
			t.Fatalf("case %d: HuffmanEncodeInto diverges from shim", i)
		}
		lShim, lInto := LZEncode(data), LZEncodeInto(append([]byte(nil), prefix...), data)
		if !bytes.Equal(lInto[:3], prefix) || !bytes.Equal(lShim, lInto[3:]) {
			t.Fatalf("case %d: LZEncodeInto diverges from shim", i)
		}
		hDec, err := HuffmanDecodeInto(append([]byte(nil), prefix...), hShim)
		if err != nil || !bytes.Equal(hDec[:3], prefix) || !bytes.Equal(hDec[3:], data) {
			t.Fatalf("case %d: HuffmanDecodeInto mismatch (err=%v)", i, err)
		}
		lDec, err := LZDecodeInto(append([]byte(nil), prefix...), lShim)
		if err != nil || !bytes.Equal(lDec[:3], prefix) || !bytes.Equal(lDec[3:], data) {
			t.Fatalf("case %d: LZDecodeInto mismatch (err=%v)", i, err)
		}
	}
}

// TestDecodeIntoErrorLeavesDst pins the error contract: a malformed
// stream returns dst re-sliced to its original length.
func TestDecodeIntoErrorLeavesDst(t *testing.T) {
	dst := []byte{1, 2, 3}
	enc := HuffmanEncode(bytes.Repeat([]byte{1, 2, 3, 4}, 100))
	out, err := HuffmanDecodeInto(dst, enc[:len(enc)-5])
	if err == nil {
		t.Fatal("expected error for truncated huffman body")
	}
	if !bytes.Equal(out, dst) {
		t.Fatalf("dst not restored on error: %v", out)
	}
	out, err = LZDecodeInto(dst, []byte{5, 0, 0, 0, 0x01, 4, 9, 0})
	if err == nil {
		t.Fatal("expected error for invalid lz offset")
	}
	if !bytes.Equal(out, dst) {
		t.Fatalf("dst not restored on error: %v", out)
	}
}

// TestLZDecodeIntoOffsetsIgnorePrefix pins that match offsets resolve
// only within the current stream: a stream whose first token is a match
// must error even when dst already holds bytes.
func TestLZDecodeIntoOffsetsIgnorePrefix(t *testing.T) {
	// 4 decoded bytes declared, immediate match at offset 2.
	bad := []byte{4, 0, 0, 0, 0x01, 4, 2, 0}
	if _, err := LZDecodeInto([]byte{7, 7, 7, 7, 7, 7}, bad); err == nil {
		t.Fatal("match offset resolved against pre-existing dst prefix")
	}
}

// TestEncodeDecodeZeroAllocs pins the steady-state allocation contract
// of the Into forms: with recycled destination buffers, encode and
// decode of both coders perform zero heap allocations per call.
func TestEncodeDecodeZeroAllocs(t *testing.T) {
	data := quarticData(23, 65536, 1.75)
	encBuf := make([]byte, 0, 2*len(data)+512)
	decBuf := make([]byte, 0, 2*len(data)+512)

	encBuf = HuffmanEncodeInto(encBuf[:0], data) // warm the pool
	if allocs := testing.AllocsPerRun(10, func() {
		encBuf = HuffmanEncodeInto(encBuf[:0], data)
	}); allocs != 0 {
		t.Errorf("HuffmanEncodeInto: %v allocs/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(10, func() {
		var err error
		decBuf, err = HuffmanDecodeInto(decBuf[:0], encBuf)
		if err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("HuffmanDecodeInto: %v allocs/op, want 0", allocs)
	}
	if !bytes.Equal(decBuf, data) {
		t.Fatal("huffman round trip mismatch")
	}

	encBuf = LZEncodeInto(encBuf[:0], data)
	if allocs := testing.AllocsPerRun(10, func() {
		encBuf = LZEncodeInto(encBuf[:0], data)
	}); allocs != 0 {
		t.Errorf("LZEncodeInto: %v allocs/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(10, func() {
		var err error
		decBuf, err = LZDecodeInto(decBuf[:0], encBuf)
		if err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("LZDecodeInto: %v allocs/op, want 0", allocs)
	}
	if !bytes.Equal(decBuf, data) {
		t.Fatal("lz round trip mismatch")
	}
}
