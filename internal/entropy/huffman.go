// Package entropy implements the general-purpose byte compressors the
// paper positions zero-run encoding against (§3.3, §6): a canonical
// Huffman coder (the entropy-coding family of QSGD/Øland-Raj) and a
// Snappy-like byte-level LZ coder. 3LC deliberately avoids these —
// "zero-run encoding is simple to implement and fast to run by avoiding
// any bit-level operation and lookup tables" — and the ablation benchmark
// quantifies that trade: comparable ratios on quartic-encoded data at a
// fraction of the cost.
//
// Since the WAN/hierarchical work the package is wired into the codec
// path as an optional second stage (compress.WithEntropy), so the coders
// follow the repo's zero-allocation convention: the hot-path API is
// append-style (HuffmanEncodeInto / HuffmanDecodeInto / LZEncodeInto /
// LZDecodeInto) with every table and scratch buffer drawn from a
// sync.Pool. A caller that recycles its destination buffers performs
// zero heap allocations per call in steady state. The original
// one-shot names remain as shims over the Into forms, and the stream
// formats are byte-identical to the seed implementation.
package entropy

import (
	"encoding/binary"
	"fmt"
	"sync"
)

// Huffman-coded stream format:
//
//	[4B LE decoded length][256B code lengths][bit stream]
//
// Code lengths define a canonical Huffman code; a zero length means the
// symbol does not occur. Codes are assigned canonically — symbols sorted
// by (length, value) receive consecutive codes — and each code is
// emitted LSB-first after bit-reversal, so the bit stream delivers the
// canonical code MSB-first and the decoder can walk it with the
// table-driven first/count/offset scheme with no per-stream map.

const maxCodeLen = 31

// huffScratch holds every table both directions of the coder need, so a
// pooled instance makes encode and decode allocation-free. ~8 KiB.
type huffScratch struct {
	freq    [256]int
	lengths [256]byte
	codes   [256]uint32

	// Tree construction (encode): up to 256 leaves + 255 internal nodes.
	nodeWeight [511]int
	nodeSym    [511]int16 // >= 0 for leaves
	nodeLeft   [511]int16
	nodeRight  [511]int16
	heap       [256]int16 // min-heap of node indices by weight
	nHeap      int

	// Depth assignment (encode): explicit DFS stack.
	stackIdx   [511]int16
	stackDepth [511]byte

	// Canonical decode tables: per-length code counts, the first
	// (MSB-first) code of each length, and the offset of each length's
	// symbol run inside symbols.
	count   [maxCodeLen + 1]uint32
	first   [maxCodeLen + 1]uint32
	offset  [maxCodeLen + 1]uint32
	symbols [256]byte
}

var huffPool = sync.Pool{New: func() any { return new(huffScratch) }}

// HuffmanEncode compresses data with a canonical Huffman code built from
// its own byte frequencies. It is HuffmanEncodeInto(nil, data).
func HuffmanEncode(data []byte) []byte {
	return HuffmanEncodeInto(nil, data)
}

// HuffmanEncodeInto appends the Huffman-coded stream for data to dst and
// returns the extended slice. All coder state comes from a pooled
// scratch, so driving it with a recycled dst performs zero heap
// allocations per call once capacities converge.
//
//3lc:noalloc
func HuffmanEncodeInto(dst, data []byte) []byte {
	hs := huffPool.Get().(*huffScratch)
	hs.buildCodeLengths(data)
	hs.buildCodes()

	base := len(dst)
	var hdr [4 + 256]byte
	dst = append(dst, hdr[:]...)
	binary.LittleEndian.PutUint32(dst[base:], uint32(len(data)))
	copy(dst[base+4:], hs.lengths[:])

	var acc uint64
	var nbits uint
	for _, b := range data {
		acc |= uint64(hs.codes[b]) << nbits
		nbits += uint(hs.lengths[b])
		for nbits >= 8 {
			dst = append(dst, byte(acc))
			acc >>= 8
			nbits -= 8
		}
	}
	if nbits > 0 {
		dst = append(dst, byte(acc))
	}
	huffPool.Put(hs)
	return dst
}

// HuffmanDecode reverses HuffmanEncode. It is HuffmanDecodeInto(nil, enc).
func HuffmanDecode(enc []byte) ([]byte, error) {
	return HuffmanDecodeInto(nil, enc)
}

// HuffmanDecodeInto appends the decoded bytes to dst and returns the
// extended slice. enc is untrusted network data: malformed streams
// (truncation, over-subscribed code-length tables, codes that overrun
// maxCodeLen) return an error with dst unmodified (the returned slice is
// dst re-sliced to its original length), and never panic. Decoding uses
// canonical first/count/offset tables from a pooled scratch — no
// per-stream map — so a recycled dst makes the call allocation-free.
//
//3lc:noalloc
//3lc:decode
func HuffmanDecodeInto(dst, enc []byte) ([]byte, error) {
	base := len(dst)
	if len(enc) < 4+256 {
		return dst, fmt.Errorf("entropy: huffman stream too short (%d bytes)", len(enc))
	}
	n := int(binary.LittleEndian.Uint32(enc))
	if n == 0 {
		return dst, nil
	}
	hs := huffPool.Get().(*huffScratch)
	defer huffPool.Put(hs)
	copy(hs.lengths[:], enc[4:4+256])
	nsyms, err := hs.buildDecodeTables()
	if err != nil {
		return dst, err
	}
	if nsyms == 0 {
		return dst, fmt.Errorf("entropy: huffman stream declares no symbols for %d bytes", n)
	}
	body := enc[4+256:]

	var code uint32
	codeLen := 0
	for _, b := range body {
		for bit := 0; bit < 8; bit++ {
			code = code<<1 | uint32(b>>uint(bit))&1
			codeLen++
			// Canonical invariant: at every length code >= first[l], and
			// the live codes of length l are [first[l], first[l]+count[l]).
			if idx := code - hs.first[codeLen]; idx < hs.count[codeLen] {
				dst = append(dst, hs.symbols[hs.offset[codeLen]+idx])
				code, codeLen = 0, 0
				if len(dst)-base == n {
					return dst, nil
				}
			} else if codeLen == maxCodeLen {
				return dst[:base], fmt.Errorf("entropy: code overruns %d bits", maxCodeLen)
			}
		}
	}
	return dst[:base], fmt.Errorf("entropy: huffman stream truncated (%d of %d bytes decoded)", len(dst)-base, n)
}

// buildCodeLengths constructs Huffman code lengths from data's byte
// frequencies into hs.lengths. Lengths are capped at maxCodeLen with a
// Kraft-preserving adjustment, so the resulting canonical code is always
// a valid prefix code (the cap needs multi-megabyte adversarial
// frequency skews to even trigger).
func (hs *huffScratch) buildCodeLengths(data []byte) {
	for i := range hs.freq {
		hs.freq[i] = 0
	}
	for _, b := range data {
		hs.freq[b]++
	}
	for i := range hs.lengths {
		hs.lengths[i] = 0
	}

	nNodes := 0
	hs.nHeap = 0
	for s := 0; s < 256; s++ {
		if hs.freq[s] > 0 {
			hs.nodeWeight[nNodes] = hs.freq[s]
			hs.nodeSym[nNodes] = int16(s)
			hs.nodeLeft[nNodes], hs.nodeRight[nNodes] = -1, -1
			hs.heapPush(int16(nNodes))
			nNodes++
		}
	}
	if nNodes == 0 {
		return
	}
	if nNodes == 1 {
		hs.lengths[hs.nodeSym[0]] = 1
		return
	}
	for hs.nHeap > 1 {
		a, b := hs.heapPop(), hs.heapPop()
		hs.nodeWeight[nNodes] = hs.nodeWeight[a] + hs.nodeWeight[b]
		hs.nodeSym[nNodes] = -1
		hs.nodeLeft[nNodes], hs.nodeRight[nNodes] = a, b
		hs.heapPush(int16(nNodes))
		nNodes++
	}

	// Depth-first assignment of depths as code lengths.
	top := 0
	hs.stackIdx[0], hs.stackDepth[0] = hs.heap[0], 0
	top++
	overlong := false
	for top > 0 {
		top--
		idx, depth := hs.stackIdx[top], hs.stackDepth[top]
		if sym := hs.nodeSym[idx]; sym >= 0 {
			d := depth
			if d == 0 {
				d = 1
			}
			if d > maxCodeLen {
				d = maxCodeLen
				overlong = true
			}
			hs.lengths[sym] = d
			continue
		}
		hs.stackIdx[top], hs.stackDepth[top] = hs.nodeLeft[idx], depth+1
		top++
		hs.stackIdx[top], hs.stackDepth[top] = hs.nodeRight[idx], depth+1
		top++
	}
	if overlong {
		hs.restoreKraft()
	}
}

// restoreKraft repairs the code-length multiset after depths were capped
// at maxCodeLen: capping shortens codes, which can over-subscribe the
// code space. Lengthening the deepest still-lengthenable codes restores
// Kraft validity with minimal ratio damage.
func (hs *huffScratch) restoreKraft() {
	const limit = uint64(1) << maxCodeLen
	kraft := uint64(0)
	for _, l := range hs.lengths {
		if l > 0 {
			kraft += uint64(1) << (maxCodeLen - l)
		}
	}
	for kraft > limit {
		// Deepest symbol shorter than the cap: lengthening it frees the
		// least code space per step, so the loop converges exactly.
		deepest, dl := -1, byte(0)
		for s, l := range hs.lengths {
			if l > dl && l < maxCodeLen {
				deepest, dl = s, l
			}
		}
		if deepest < 0 {
			return // all symbols at the cap: kraft <= 256 << 0 <= limit
		}
		hs.lengths[deepest] = dl + 1
		kraft -= uint64(1) << (maxCodeLen - dl - 1)
	}
}

// buildCodes derives canonical codes from hs.lengths into hs.codes,
// stored bit-reversed so LSB-first emission yields the canonical code
// MSB-first on the wire.
func (hs *huffScratch) buildCodes() {
	for i := range hs.count {
		hs.count[i] = 0
	}
	for _, l := range hs.lengths {
		if l > 0 {
			hs.count[l]++
		}
	}
	var next [maxCodeLen + 1]uint32
	code := uint32(0)
	for l := 1; l <= maxCodeLen; l++ {
		code = (code + hs.count[l-1]) << 1
		next[l] = code
	}
	for s := 0; s < 256; s++ {
		if l := hs.lengths[s]; l > 0 {
			hs.codes[s] = reverseBits(next[l], uint(l))
			next[l]++
		}
	}
}

// buildDecodeTables validates hs.lengths as an untrusted code-length
// table and fills the canonical decode tables (count, first, offset,
// symbols). It returns the number of declared symbols, or an error if
// the lengths over-subscribe the code space (no prefix code exists).
func (hs *huffScratch) buildDecodeTables() (int, error) {
	for i := range hs.count {
		hs.count[i] = 0
	}
	nsyms := 0
	for _, l := range hs.lengths {
		if l == 0 {
			continue
		}
		if l > maxCodeLen {
			return 0, fmt.Errorf("entropy: code length %d exceeds %d bits", l, maxCodeLen)
		}
		hs.count[l]++
		nsyms++
	}
	var kraft uint64
	for l := 1; l <= maxCodeLen; l++ {
		kraft += uint64(hs.count[l]) << uint(maxCodeLen-l)
	}
	if kraft > uint64(1)<<maxCodeLen {
		return nsyms, fmt.Errorf("entropy: huffman code lengths over-subscribe the code space")
	}
	code := uint32(0)
	off := uint32(0)
	var next [maxCodeLen + 1]uint32
	for l := 1; l <= maxCodeLen; l++ {
		code = (code + hs.count[l-1]) << 1
		hs.first[l] = code
		hs.offset[l] = off
		next[l] = off
		off += hs.count[l]
	}
	for s := 0; s < 256; s++ {
		if l := hs.lengths[s]; l > 0 {
			hs.symbols[next[l]] = byte(s)
			next[l]++
		}
	}
	return nsyms, nil
}

func (hs *huffScratch) heapPush(i int16) {
	hs.heap[hs.nHeap] = i
	c := hs.nHeap
	hs.nHeap++
	for c > 0 {
		p := (c - 1) / 2
		if hs.nodeWeight[hs.heap[p]] <= hs.nodeWeight[hs.heap[c]] {
			break
		}
		hs.heap[p], hs.heap[c] = hs.heap[c], hs.heap[p]
		c = p
	}
}

func (hs *huffScratch) heapPop() int16 {
	top := hs.heap[0]
	hs.nHeap--
	hs.heap[0] = hs.heap[hs.nHeap]
	c := 0
	for {
		l, r := 2*c+1, 2*c+2
		small := c
		if l < hs.nHeap && hs.nodeWeight[hs.heap[l]] < hs.nodeWeight[hs.heap[small]] {
			small = l
		}
		if r < hs.nHeap && hs.nodeWeight[hs.heap[r]] < hs.nodeWeight[hs.heap[small]] {
			small = r
		}
		if small == c {
			break
		}
		hs.heap[c], hs.heap[small] = hs.heap[small], hs.heap[c]
		c = small
	}
	return top
}

func reverseBits(v uint32, n uint) uint32 {
	var r uint32
	for i := uint(0); i < n; i++ {
		r = (r << 1) | ((v >> i) & 1)
	}
	return r
}
