// Package entropy implements the general-purpose byte compressors the
// paper positions zero-run encoding against (§3.3, §6): a canonical
// Huffman coder (the entropy-coding family of QSGD/Øland-Raj) and a
// Snappy-like byte-level LZ coder. 3LC deliberately avoids these —
// "zero-run encoding is simple to implement and fast to run by avoiding
// any bit-level operation and lookup tables" — and the ablation benchmark
// quantifies that trade: comparable ratios on quartic-encoded data at a
// fraction of the cost.
package entropy

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Huffman-coded stream format:
//
//	[4B LE decoded length][256B code lengths][bit stream]
//
// Code lengths define a canonical Huffman code; a zero length means the
// symbol does not occur.

const maxCodeLen = 31

// HuffmanEncode compresses data with a canonical Huffman code built from
// its own byte frequencies.
func HuffmanEncode(data []byte) []byte {
	lengths := buildCodeLengths(data)
	codes := canonicalCodes(lengths)

	out := make([]byte, 4+256, 4+256+len(data)/2)
	binary.LittleEndian.PutUint32(out, uint32(len(data)))
	copy(out[4:], lengths[:])

	var acc uint64
	var nbits uint
	for _, b := range data {
		c := codes[b]
		l := uint(lengths[b])
		acc |= uint64(c) << nbits
		nbits += l
		for nbits >= 8 {
			out = append(out, byte(acc))
			acc >>= 8
			nbits -= 8
		}
	}
	if nbits > 0 {
		out = append(out, byte(acc))
	}
	return out
}

// HuffmanDecode reverses HuffmanEncode.
func HuffmanDecode(enc []byte) ([]byte, error) {
	if len(enc) < 4+256 {
		return nil, fmt.Errorf("entropy: huffman stream too short (%d bytes)", len(enc))
	}
	n := int(binary.LittleEndian.Uint32(enc))
	var lengths [256]byte
	copy(lengths[:], enc[4:4+256])
	body := enc[4+256:]

	if n == 0 {
		return nil, nil
	}
	codes := canonicalCodes(lengths)

	// Build a decode map keyed by (length, code).
	type key struct {
		l uint8
		c uint32
	}
	decode := make(map[key]byte)
	single := -1 // the only symbol, if exactly one occurs
	nsyms := 0
	for s := 0; s < 256; s++ {
		if lengths[s] > 0 {
			decode[key{lengths[s], codes[s]}] = byte(s)
			single = s
			nsyms++
		}
	}
	if nsyms == 0 {
		return nil, fmt.Errorf("entropy: huffman stream declares no symbols for %d bytes", n)
	}
	if nsyms == 1 {
		out := make([]byte, n)
		for i := range out {
			out[i] = byte(single)
		}
		return out, nil
	}

	out := make([]byte, 0, n)
	var code uint32
	var codeLen uint8
	for _, b := range body {
		for bit := 0; bit < 8; bit++ {
			// Codes are emitted LSB-first; reconstruct in emission order.
			code |= uint32((b>>uint(bit))&1) << codeLen
			codeLen++
			if codeLen > maxCodeLen {
				return nil, fmt.Errorf("entropy: code overruns %d bits", maxCodeLen)
			}
			if s, ok := decode[key{codeLen, code}]; ok {
				out = append(out, s)
				code, codeLen = 0, 0
				if len(out) == n {
					return out, nil
				}
			}
		}
	}
	return nil, fmt.Errorf("entropy: huffman stream truncated (%d of %d bytes decoded)", len(out), n)
}

// buildCodeLengths constructs Huffman code lengths from byte frequencies,
// capped at maxCodeLen (frequencies at this scale never hit the cap).
func buildCodeLengths(data []byte) [256]byte {
	var freq [256]int
	for _, b := range data {
		freq[b]++
	}
	type node struct {
		weight      int
		sym         int // >= 0 for leaves
		left, right int // indices into nodes
	}
	var nodes []node
	var heap []int // indices, min-heap by weight

	push := func(i int) {
		heap = append(heap, i)
		c := len(heap) - 1
		for c > 0 {
			p := (c - 1) / 2
			if nodes[heap[p]].weight <= nodes[heap[c]].weight {
				break
			}
			heap[p], heap[c] = heap[c], heap[p]
			c = p
		}
	}
	pop := func() int {
		top := heap[0]
		last := len(heap) - 1
		heap[0] = heap[last]
		heap = heap[:last]
		c := 0
		for {
			l, r := 2*c+1, 2*c+2
			small := c
			if l < len(heap) && nodes[heap[l]].weight < nodes[heap[small]].weight {
				small = l
			}
			if r < len(heap) && nodes[heap[r]].weight < nodes[heap[small]].weight {
				small = r
			}
			if small == c {
				break
			}
			heap[c], heap[small] = heap[small], heap[c]
			c = small
		}
		return top
	}

	for s := 0; s < 256; s++ {
		if freq[s] > 0 {
			nodes = append(nodes, node{weight: freq[s], sym: s, left: -1, right: -1})
			push(len(nodes) - 1)
		}
	}
	var lengths [256]byte
	if len(nodes) == 0 {
		return lengths
	}
	if len(nodes) == 1 {
		lengths[nodes[0].sym] = 1
		return lengths
	}
	for len(heap) > 1 {
		a, b := pop(), pop()
		nodes = append(nodes, node{weight: nodes[a].weight + nodes[b].weight, sym: -1, left: a, right: b})
		push(len(nodes) - 1)
	}
	root := heap[0]
	// Depth-first assignment of depths as code lengths.
	type walkItem struct {
		idx   int
		depth byte
	}
	stack := []walkItem{{root, 0}}
	for len(stack) > 0 {
		it := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nd := nodes[it.idx]
		if nd.sym >= 0 {
			d := it.depth
			if d == 0 {
				d = 1
			}
			if d > maxCodeLen {
				d = maxCodeLen
			}
			lengths[nd.sym] = d
			continue
		}
		stack = append(stack, walkItem{nd.left, it.depth + 1}, walkItem{nd.right, it.depth + 1})
	}
	return lengths
}

// canonicalCodes derives canonical codes (LSB-first bit order) from code
// lengths: symbols sorted by (length, value) receive consecutive codes.
func canonicalCodes(lengths [256]byte) [256]uint32 {
	type sl struct {
		sym int
		l   byte
	}
	var syms []sl
	for s := 0; s < 256; s++ {
		if lengths[s] > 0 {
			syms = append(syms, sl{s, lengths[s]})
		}
	}
	sort.Slice(syms, func(a, b int) bool {
		if syms[a].l != syms[b].l {
			return syms[a].l < syms[b].l
		}
		return syms[a].sym < syms[b].sym
	})
	var codes [256]uint32
	var code uint32
	var prevLen byte
	for _, s := range syms {
		code <<= uint(s.l - prevLen)
		prevLen = s.l
		// Store bit-reversed so that emission LSB-first preserves the
		// prefix property when read bit by bit.
		codes[s.sym] = reverseBits(code, uint(s.l))
		code++
	}
	return codes
}

func reverseBits(v uint32, n uint) uint32 {
	var r uint32
	for i := uint(0); i < n; i++ {
		r = (r << 1) | ((v >> i) & 1)
	}
	return r
}
