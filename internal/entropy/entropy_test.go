package entropy

import (
	"bytes"
	"testing"
	"testing/quick"

	"threelc/internal/encode"
	"threelc/internal/quant"
	"threelc/internal/tensor"
)

func quarticData(seed uint64, n int, sparsity float64) []byte {
	rng := tensor.NewRNG(seed)
	in := tensor.New(n)
	tensor.FillNormal(in, 0.01, rng)
	tv := quant.Quantize3(in, sparsity)
	return encode.QuarticEncode(tv.Q)
}

func TestHuffmanRoundTrip(t *testing.T) {
	cases := [][]byte{
		nil,
		{42},
		{1, 1, 1, 1, 1},
		[]byte("the quick brown fox jumps over the lazy dog"),
		quarticData(1, 10000, 1.0),
		quarticData(2, 10000, 1.9),
	}
	for i, data := range cases {
		enc := HuffmanEncode(data)
		dec, err := HuffmanDecode(enc)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !bytes.Equal(dec, data) {
			t.Fatalf("case %d: round trip mismatch (%d vs %d bytes)", i, len(dec), len(data))
		}
	}
}

func TestHuffmanRoundTripProperty(t *testing.T) {
	f := func(data []byte) bool {
		dec, err := HuffmanDecode(HuffmanEncode(data))
		return err == nil && bytes.Equal(dec, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHuffmanCompressesSkewedData(t *testing.T) {
	// Quartic data at high sparsity is dominated by byte 121: Huffman
	// must compress it well below 8 bits/byte.
	data := quarticData(3, 100000, 1.9)
	enc := HuffmanEncode(data)
	ratio := float64(len(data)) / float64(len(enc))
	if ratio < 3 {
		t.Errorf("huffman ratio %v on highly skewed data, want > 3", ratio)
	}
}

func TestHuffmanDecodeErrors(t *testing.T) {
	if _, err := HuffmanDecode([]byte{1, 2, 3}); err == nil {
		t.Error("expected error for short stream")
	}
	// Declared length but truncated bit stream.
	enc := HuffmanEncode(bytes.Repeat([]byte{1, 2, 3, 4}, 100))
	if _, err := HuffmanDecode(enc[:len(enc)-5]); err == nil {
		t.Error("expected error for truncated body")
	}
	// No symbols declared but non-zero length.
	bogus := make([]byte, 4+256)
	bogus[0] = 10
	if _, err := HuffmanDecode(bogus); err == nil {
		t.Error("expected error for empty code table")
	}
}

func TestLZRoundTrip(t *testing.T) {
	cases := [][]byte{
		nil,
		{7},
		bytes.Repeat([]byte{121}, 1000),
		[]byte("abcabcabcabcabc"),
		quarticData(4, 10000, 1.0),
		quarticData(5, 10000, 1.75),
	}
	for i, data := range cases {
		enc := LZEncode(data)
		dec, err := LZDecode(enc)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !bytes.Equal(dec, data) {
			t.Fatalf("case %d: round trip mismatch", i)
		}
	}
}

func TestLZRoundTripProperty(t *testing.T) {
	f := func(data []byte) bool {
		dec, err := LZDecode(LZEncode(data))
		return err == nil && bytes.Equal(dec, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLZCompressesRuns(t *testing.T) {
	data := bytes.Repeat([]byte{121}, 10000)
	enc := LZEncode(data)
	if len(enc) > len(data)/10 {
		t.Errorf("lz produced %d bytes for a 10000-byte run", len(enc))
	}
}

func TestLZDecodeErrors(t *testing.T) {
	for _, bad := range [][]byte{
		{1, 2},                      // too short
		{5, 0, 0, 0, 0x00, 200},     // literal run truncated
		{5, 0, 0, 0, 0x01, 4},       // match token truncated
		{5, 0, 0, 0, 0xff, 0, 0},    // unknown token
		{5, 0, 0, 0, 0x01, 4, 9, 0}, // match offset beyond output
	} {
		if _, err := LZDecode(bad); err == nil {
			t.Errorf("expected error for %v", bad)
		}
	}
}

func TestComparatorRatiosOnQuarticData(t *testing.T) {
	// Sanity: on quartic data all three compressors achieve > 1 ratio,
	// and ZRE is competitive with the general-purpose coders (the
	// paper's §3.3 claim is about speed, not ratio dominance).
	data := quarticData(6, 200000, 1.75)
	zre := encode.ZeroRunEncode(data)
	huff := HuffmanEncode(data)
	lz := LZEncode(data)
	t.Logf("quartic %d B -> ZRE %d, Huffman %d, LZ %d", len(data), len(zre), len(huff), len(lz))
	for name, n := range map[string]int{"zre": len(zre), "huffman": len(huff), "lz": len(lz)} {
		if n >= len(data) {
			t.Errorf("%s did not compress (%d >= %d)", name, n, len(data))
		}
	}
}
