package entropy

import (
	"encoding/binary"
	"fmt"
	"sync"
)

// LZ is a small Snappy-flavoured byte-level LZ77 coder: greedy
// hash-chained matching within a 64 KiB window, literal runs and
// copy tokens. It stands in for the general-purpose compressors the
// paper cites (Snappy [12]) when quantifying what 3LC gives up — and
// keeps — by using zero-run encoding instead.
//
// Stream format:
//
//	[4B LE decoded length] token*
//	token := 0x00 len8 literal-bytes      (literal run, 1..255 bytes)
//	       | 0x01 len8 off16              (match, 4..255 bytes, offset 1..65535)

const (
	lzMinMatch  = 4
	lzMaxMatch  = 255
	lzMaxOffset = 1 << 16
	lzHashBits  = 14
)

// lzScratch is the 64 KiB encoder hash table, pooled so LZEncodeInto
// allocates nothing per call.
type lzScratch struct {
	table [1 << lzHashBits]int32
}

var lzPool = sync.Pool{New: func() any { return new(lzScratch) }}

// LZEncode compresses data. It is LZEncodeInto(nil, data).
func LZEncode(data []byte) []byte {
	return LZEncodeInto(nil, data)
}

// LZEncodeInto appends the LZ stream for data to dst and returns the
// extended slice. The hash table comes from a sync.Pool, so recycling
// dst makes the call allocation-free in steady state.
//
//3lc:noalloc
func LZEncodeInto(dst, data []byte) []byte {
	ls := lzPool.Get().(*lzScratch)
	table := &ls.table
	for i := range table {
		table[i] = -1
	}

	base := len(dst)
	var hdr [4]byte
	dst = append(dst, hdr[:]...)
	binary.LittleEndian.PutUint32(dst[base:], uint32(len(data)))

	i := 0
	litStart := 0
	for i+lzMinMatch <= len(data) {
		h := lzHash(data, i)
		cand := table[h]
		table[h] = int32(i)
		if cand >= 0 && i-int(cand) < lzMaxOffset &&
			binary.LittleEndian.Uint32(data[cand:]) == binary.LittleEndian.Uint32(data[i:]) {
			// Extend the match.
			m := lzMinMatch
			for i+m < len(data) && m < lzMaxMatch && data[int(cand)+m] == data[i+m] {
				m++
			}
			dst = lzEmitLiterals(dst, data, litStart, i)
			dst = append(dst, 0x01, byte(m))
			var off [2]byte
			binary.LittleEndian.PutUint16(off[:], uint16(i-int(cand)))
			dst = append(dst, off[:]...)
			i += m
			litStart = i
			continue
		}
		i++
	}
	dst = lzEmitLiterals(dst, data, litStart, len(data))
	lzPool.Put(ls)
	return dst
}

// lzHash maps the 4 bytes at data[i:] to a table slot. Hoisted out of
// LZEncodeInto (rather than a closure over data) so the encode loop is
// structurally allocation-free.
//
//3lc:noalloc
func lzHash(data []byte, i int) uint32 {
	v := binary.LittleEndian.Uint32(data[i:])
	return (v * 2654435761) >> (32 - lzHashBits)
}

// lzEmitLiterals appends literal runs covering data[lo:hi] to dst in
// 255-byte chunks and returns the extended slice.
//
//3lc:noalloc
func lzEmitLiterals(dst, data []byte, lo, hi int) []byte {
	for lo < hi {
		n := hi - lo
		if n > 255 {
			n = 255
		}
		dst = append(dst, 0x00, byte(n))
		dst = append(dst, data[lo:lo+n]...)
		lo += n
	}
	return dst
}

// LZDecode reverses LZEncode. It is LZDecodeInto(nil, enc).
func LZDecode(enc []byte) ([]byte, error) {
	return LZDecodeInto(nil, enc)
}

// LZDecodeInto appends the decoded bytes to dst and returns the extended
// slice. Match offsets are resolved against the bytes decoded from THIS
// stream only, never against pre-existing dst content. enc is untrusted:
// malformed streams return an error with dst unmodified (the returned
// slice is dst re-sliced to its original length), and never panic.
//
//3lc:noalloc
//3lc:decode
func LZDecodeInto(dst, enc []byte) ([]byte, error) {
	if len(enc) < 4 {
		return dst, fmt.Errorf("entropy: lz stream too short")
	}
	base := len(dst)
	n := int(binary.LittleEndian.Uint32(enc))
	body := enc[4:]
	i := 0
	for i < len(body) {
		switch body[i] {
		case 0x00:
			if i+2 > len(body) {
				return dst[:base], fmt.Errorf("entropy: literal token truncated")
			}
			l := int(body[i+1])
			if i+2+l > len(body) {
				return dst[:base], fmt.Errorf("entropy: literal run truncated")
			}
			dst = append(dst, body[i+2:i+2+l]...)
			i += 2 + l
		case 0x01:
			if i+4 > len(body) {
				return dst[:base], fmt.Errorf("entropy: match token truncated")
			}
			m := int(body[i+1])
			off := int(binary.LittleEndian.Uint16(body[i+2:]))
			if off == 0 || off > len(dst)-base {
				return dst[:base], fmt.Errorf("entropy: match offset %d invalid at %d decoded bytes", off, len(dst)-base)
			}
			src := len(dst) - off
			for k := 0; k < m; k++ {
				dst = append(dst, dst[src+k])
			}
			i += 4
		default:
			return dst[:base], fmt.Errorf("entropy: unknown token 0x%02x", body[i])
		}
	}
	if len(dst)-base != n {
		return dst[:base], fmt.Errorf("entropy: decoded %d bytes, header says %d", len(dst)-base, n)
	}
	return dst, nil
}
