package entropy

import (
	"encoding/binary"
	"fmt"
)

// LZ is a small Snappy-flavoured byte-level LZ77 coder: greedy
// hash-chained matching within a 64 KiB window, literal runs and
// copy tokens. It stands in for the general-purpose compressors the
// paper cites (Snappy [12]) when quantifying what 3LC gives up — and
// keeps — by using zero-run encoding instead.
//
// Stream format:
//
//	[4B LE decoded length] token*
//	token := 0x00 len8 literal-bytes      (literal run, 1..255 bytes)
//	       | 0x01 len8 off16              (match, 4..255 bytes, offset 1..65535)

const (
	lzMinMatch  = 4
	lzMaxMatch  = 255
	lzMaxOffset = 1 << 16
	lzHashBits  = 14
)

// LZEncode compresses data.
func LZEncode(data []byte) []byte {
	out := make([]byte, 4, 4+len(data)/2+16)
	binary.LittleEndian.PutUint32(out, uint32(len(data)))

	var table [1 << lzHashBits]int32
	for i := range table {
		table[i] = -1
	}
	hash := func(i int) uint32 {
		v := binary.LittleEndian.Uint32(data[i:])
		return (v * 2654435761) >> (32 - lzHashBits)
	}

	emitLiterals := func(lo, hi int) {
		for lo < hi {
			n := hi - lo
			if n > 255 {
				n = 255
			}
			out = append(out, 0x00, byte(n))
			out = append(out, data[lo:lo+n]...)
			lo += n
		}
	}

	i := 0
	litStart := 0
	for i+lzMinMatch <= len(data) {
		h := hash(i)
		cand := table[h]
		table[h] = int32(i)
		if cand >= 0 && i-int(cand) < lzMaxOffset &&
			binary.LittleEndian.Uint32(data[cand:]) == binary.LittleEndian.Uint32(data[i:]) {
			// Extend the match.
			m := lzMinMatch
			for i+m < len(data) && m < lzMaxMatch && data[int(cand)+m] == data[i+m] {
				m++
			}
			emitLiterals(litStart, i)
			out = append(out, 0x01, byte(m))
			var off [2]byte
			le16 := uint16(i - int(cand))
			binary.LittleEndian.PutUint16(off[:], le16)
			out = append(out, off[:]...)
			i += m
			litStart = i
			continue
		}
		i++
	}
	emitLiterals(litStart, len(data))
	return out
}

// LZDecode reverses LZEncode.
func LZDecode(enc []byte) ([]byte, error) {
	if len(enc) < 4 {
		return nil, fmt.Errorf("entropy: lz stream too short")
	}
	n := int(binary.LittleEndian.Uint32(enc))
	body := enc[4:]
	out := make([]byte, 0, n)
	i := 0
	for i < len(body) {
		switch body[i] {
		case 0x00:
			if i+2 > len(body) {
				return nil, fmt.Errorf("entropy: literal token truncated")
			}
			l := int(body[i+1])
			if i+2+l > len(body) {
				return nil, fmt.Errorf("entropy: literal run truncated")
			}
			out = append(out, body[i+2:i+2+l]...)
			i += 2 + l
		case 0x01:
			if i+4 > len(body) {
				return nil, fmt.Errorf("entropy: match token truncated")
			}
			m := int(body[i+1])
			off := int(binary.LittleEndian.Uint16(body[i+2:]))
			if off == 0 || off > len(out) {
				return nil, fmt.Errorf("entropy: match offset %d invalid at %d decoded bytes", off, len(out))
			}
			src := len(out) - off
			for k := 0; k < m; k++ {
				out = append(out, out[src+k])
			}
			i += 4
		default:
			return nil, fmt.Errorf("entropy: unknown token 0x%02x", body[i])
		}
	}
	if len(out) != n {
		return nil, fmt.Errorf("entropy: decoded %d bytes, header says %d", len(out), n)
	}
	return out, nil
}
