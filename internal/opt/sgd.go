// Package opt provides the local optimizer and learning-rate schedule the
// paper's evaluation uses (§5.2): SGD with momentum 0.9, weight decay
// 1e-4, and cosine decay without restarts over the full training run, with
// learning-rate scaling proportional to the worker count (Goyal et al.).
package opt

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"threelc/internal/nn"
	"threelc/internal/tensor"
)

// SGDConfig mirrors the paper's hyperparameters.
type SGDConfig struct {
	// BaseLR is the single-worker starting learning rate (paper: 0.1).
	BaseLR float64
	// FinalLR is the end of the cosine range (paper: 0.001).
	FinalLR float64
	// Momentum (paper: 0.9).
	Momentum float64
	// WeightDecay (paper: 1e-4).
	WeightDecay float64
	// Workers scales the learning rate proportionally (large-batch rule).
	Workers int
	// TotalSteps is the length of the cosine schedule; the schedule always
	// sweeps the full LR range over however many steps the run uses
	// (§5.2: "the learning rate schedule uses adjusted training steps").
	TotalSteps int
	// WarmupFrac linearly ramps the learning rate from BaseLR (unscaled)
	// to the worker-scaled rate over this fraction of total steps. The
	// paper follows the large-batch guideline of Goyal et al. [13], whose
	// recipe pairs learning-rate scaling with gradual warmup.
	WarmupFrac float64
}

// DefaultSGDConfig returns the paper's settings for a given cluster size
// and run length.
func DefaultSGDConfig(workers, totalSteps int) SGDConfig {
	return SGDConfig{
		BaseLR:      0.1,
		FinalLR:     0.001,
		Momentum:    0.9,
		WeightDecay: 1e-4,
		Workers:     workers,
		TotalSteps:  totalSteps,
		WarmupFrac:  0.1,
	}
}

// TunedSGDConfig returns the learning-rate range adapted to this
// repository's substitute workloads (synthetic-data MLP / MicroResNet).
// The paper's ResNet-110 trains at base LR 0.1; the smaller substitute
// models sit closer to the stability edge under worker-scaled rates and
// quantization-overshoot noise (sparsity multipliers enlarge transmitted
// values by up to 2x), so the range is shifted down while keeping the
// paper's momentum, weight decay, cosine decay, and warmup structure.
// DESIGN.md documents this substitution.
func TunedSGDConfig(workers, totalSteps int) SGDConfig {
	cfg := DefaultSGDConfig(workers, totalSteps)
	cfg.BaseLR = 0.02
	cfg.FinalLR = 0.0002
	return cfg
}

// SGD implements momentum SGD with decoupled-by-addition weight decay
// (decay folded into the gradient, as in the original ResNet recipe).
type SGD struct {
	cfg      SGDConfig
	velocity map[string]*tensor.Tensor
	step     int
}

// NewSGD creates the optimizer.
func NewSGD(cfg SGDConfig) *SGD {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	return &SGD{cfg: cfg, velocity: make(map[string]*tensor.Tensor)}
}

// LR returns the warmed-up, cosine-decayed, worker-scaled learning rate at
// step t.
func (o *SGD) LR(t int) float64 {
	base := o.cfg.BaseLR * float64(o.cfg.Workers)
	final := o.cfg.FinalLR * float64(o.cfg.Workers)
	if o.cfg.TotalSteps <= 1 {
		return base
	}
	warmup := int(o.cfg.WarmupFrac * float64(o.cfg.TotalSteps))
	if t < warmup {
		// Linear ramp from the unscaled base rate to the scaled rate.
		lo := o.cfg.BaseLR
		return lo + (base-lo)*float64(t)/float64(warmup)
	}
	frac := float64(t-warmup) / float64(o.cfg.TotalSteps-1-warmup)
	if frac > 1 {
		frac = 1
	}
	return final + 0.5*(base-final)*(1+math.Cos(math.Pi*frac))
}

// Step returns the number of updates applied so far.
func (o *SGD) Step() int { return o.step }

// Apply performs one update of params from their gradient tensors:
//
//	v = momentum*v + (grad + wd*w)
//	w -= lr * v
//
// It advances the schedule by one step.
func (o *SGD) Apply(params []*nn.Param) {
	lr := float32(o.LR(o.step))
	o.step++
	mom := float32(o.cfg.Momentum)
	wd := float32(o.cfg.WeightDecay)
	for _, p := range params {
		v, ok := o.velocity[p.Name]
		if !ok {
			v = tensor.New(p.W.Shape()...)
			o.velocity[p.Name] = v
		}
		vd, wdta, gd := v.Data(), p.W.Data(), p.G.Data()
		for i := range vd {
			g := gd[i] + wd*wdta[i]
			vd[i] = mom*vd[i] + g
			wdta[i] -= lr * vd[i]
		}
	}
}

// ApplyWithDelta performs the same update as Apply and additionally
// records each parameter's model delta — delta[i] = w_new - w_old — in
// the same sweep. The per-element arithmetic is exactly Apply followed by
// a weight snapshot diff (the parameter server's staged sequence:
// snapshot prevW, Apply, delta = W - prevW), so the weights, velocity,
// and deltas are bit-identical to that three-sweep composition while
// touching each tensor once.
func (o *SGD) ApplyWithDelta(params []*nn.Param, deltas []*tensor.Tensor) {
	if len(params) != len(deltas) {
		panic("opt: delta count mismatch")
	}
	lr := float32(o.LR(o.step))
	o.step++
	mom := float32(o.cfg.Momentum)
	wd := float32(o.cfg.WeightDecay)
	for pi, p := range params {
		v, ok := o.velocity[p.Name]
		if !ok {
			v = tensor.New(p.W.Shape()...)
			o.velocity[p.Name] = v
		}
		vd, wdta, gd := v.Data(), p.W.Data(), p.G.Data()
		// Reslice to a common length so the compiler drops the per-index
		// bounds checks in the fused update loop.
		wdta = wdta[:len(vd)]
		gd = gd[:len(vd)]
		dd := deltas[pi].Data()[:len(vd)]
		for i := range vd {
			old := wdta[i]
			g := gd[i] + wd*old
			vv := mom*vd[i] + g
			vd[i] = vv
			nw := old - lr*vv
			wdta[i] = nw
			dd[i] = nw - old
		}
	}
}

// ApplyFusedStep is the parameter server's fully fused update sweep. It
// differs from ApplyWithDelta in where the gradient comes from:
// instead of p.G, each parameter's gradient is read through gradFor as a
// raw accumulation buffer plus a scale, and the averaging multiply is
// fused into the update — g = gsum[i]·gscale + wd·w, the exact product of
// materializing the averaged gradient first (and, at gscale = 1, the
// float32 multiplicative identity, matching a straight copy bitwise).
// Combined with the accFor delta folding, the server's entire
// average → update → delta → accumulate-max chain touches each tensor
// exactly once; weights, velocity, residuals, and reductions are
// bit-identical to the staged sweeps. p.G is neither read nor written.
func (o *SGD) ApplyFusedStep(params []*nn.Param, gradFor func(pi int) ([]float32, float32), deltas []*tensor.Tensor, accFor func(pi int) []float32, maxAbs []float32) {
	if len(params) != len(deltas) {
		panic("opt: delta count mismatch")
	}
	lr := float32(o.LR(o.step))
	o.step++
	mom := float32(o.cfg.Momentum)
	wd := float32(o.cfg.WeightDecay)
	for pi, p := range params {
		v, ok := o.velocity[p.Name]
		if !ok {
			v = tensor.New(p.W.Shape()...)
			o.velocity[p.Name] = v
		}
		vd, wdta := v.Data(), p.W.Data()
		wdta = wdta[:len(vd)]
		gs, gscale := gradFor(pi)
		gs = gs[:len(vd)]
		acc := accFor(pi)
		if acc == nil {
			dd := deltas[pi].Data()[:len(vd)]
			for i := range vd {
				old := wdta[i]
				g := gs[i]*gscale + wd*old
				vv := mom*vd[i] + g
				vd[i] = vv
				nw := old - lr*vv
				wdta[i] = nw
				dd[i] = nw - old
			}
			continue
		}
		acc = acc[:len(vd)]
		var m float32
		for i := range vd {
			old := wdta[i]
			g := gs[i]*gscale + wd*old
			vv := mom*vd[i] + g
			vd[i] = vv
			nw := old - lr*vv
			wdta[i] = nw
			sum := acc[i] + (nw - old)
			acc[i] = sum
			a := math.Float32frombits(math.Float32bits(sum) &^ (1 << 31))
			if a > m {
				m = a
			}
		}
		maxAbs[pi] = m
	}
}

// AppendState serializes the optimizer's full mutable state — the
// schedule step and every velocity tensor, sorted by parameter name so the
// bytes are deterministic — and appends it to dst. Together with the model
// weights this is everything a resumed run needs to continue the update
// sequence bit-identically (the LR schedule is a pure function of the
// step counter).
func (o *SGD) AppendState(dst []byte) []byte {
	le := binary.LittleEndian
	var b8 [8]byte
	le.PutUint64(b8[:], uint64(o.step))
	dst = append(dst, b8[:]...)
	names := make([]string, 0, len(o.velocity))
	for name := range o.velocity {
		names = append(names, name)
	}
	sort.Strings(names)
	var b4 [4]byte
	le.PutUint32(b4[:], uint32(len(names)))
	dst = append(dst, b4[:]...)
	for _, name := range names {
		v := o.velocity[name].Data()
		var b2 [2]byte
		le.PutUint16(b2[:], uint16(len(name)))
		dst = append(dst, b2[:]...)
		dst = append(dst, name...)
		le.PutUint32(b4[:], uint32(len(v)))
		dst = append(dst, b4[:]...)
		for _, x := range v {
			le.PutUint32(b4[:], math.Float32bits(x))
			dst = append(dst, b4[:]...)
		}
	}
	return dst
}

// RestoreState replaces the optimizer's state with one captured by
// AppendState. Malformed input returns an error without panicking; the
// optimizer is only mutated after the whole blob parses.
func (o *SGD) RestoreState(src []byte) error {
	le := binary.LittleEndian
	if len(src) < 12 {
		return fmt.Errorf("opt: state blob truncated (%d bytes)", len(src))
	}
	step := int(le.Uint64(src))
	count := int(le.Uint32(src[8:]))
	src = src[12:]
	// The count is untrusted until the entries parse; cap the capacity
	// hint so a corrupt blob cannot force a huge up-front allocation.
	vel := make(map[string]*tensor.Tensor, min(count, 1024))
	for i := 0; i < count; i++ {
		if len(src) < 2 {
			return fmt.Errorf("opt: state blob truncated at entry %d", i)
		}
		nameLen := int(le.Uint16(src))
		src = src[2:]
		if len(src) < nameLen+4 {
			return fmt.Errorf("opt: state blob truncated at entry %d name", i)
		}
		name := string(src[:nameLen])
		n := int(le.Uint32(src[nameLen:]))
		src = src[nameLen+4:]
		if len(src) < 4*n {
			return fmt.Errorf("opt: state blob truncated at entry %q (%d of %d value bytes)", name, len(src), 4*n)
		}
		if _, dup := vel[name]; dup {
			return fmt.Errorf("opt: duplicate velocity entry %q", name)
		}
		t := tensor.New(n)
		d := t.Data()
		for j := range d {
			d[j] = math.Float32frombits(le.Uint32(src[4*j:]))
		}
		src = src[4*n:]
		vel[name] = t
	}
	if len(src) != 0 {
		return fmt.Errorf("opt: %d trailing state bytes", len(src))
	}
	o.step = step
	o.velocity = vel
	return nil
}

// ApplyDelta applies a precomputed model delta to params: w += delta[i].
// The parameter server uses this on workers when applying pulled deltas.
func ApplyDelta(params []*nn.Param, deltas []*tensor.Tensor) {
	if len(params) != len(deltas) {
		panic("opt: delta count mismatch")
	}
	for i, p := range params {
		p.W.Add(deltas[i])
	}
}
