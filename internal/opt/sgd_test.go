package opt

import (
	"math"
	"testing"

	"threelc/internal/nn"
	"threelc/internal/tensor"
)

func TestLRWarmupRampsUp(t *testing.T) {
	o := NewSGD(DefaultSGDConfig(10, 1000))
	// Warmup covers the first 10% of steps; the rate must rise from
	// ~BaseLR to ~BaseLR*Workers.
	if o.LR(0) > 0.11 {
		t.Errorf("LR(0) = %v, want ~0.1 (unscaled base)", o.LR(0))
	}
	if o.LR(99) < 0.9 {
		t.Errorf("LR(99) = %v, want ~1.0 (scaled)", o.LR(99))
	}
	for tstep := 1; tstep < 100; tstep++ {
		if o.LR(tstep) < o.LR(tstep-1) {
			t.Fatalf("LR decreased during warmup at step %d", tstep)
		}
	}
}

func TestLRCosineDecaysToFinal(t *testing.T) {
	o := NewSGD(DefaultSGDConfig(10, 1000))
	last := o.LR(999)
	want := 0.001 * 10
	if math.Abs(last-want) > 1e-6 {
		t.Errorf("final LR %v, want %v", last, want)
	}
	// Monotone decrease after warmup.
	for tstep := 101; tstep < 1000; tstep++ {
		if o.LR(tstep) > o.LR(tstep-1)+1e-12 {
			t.Fatalf("LR increased after warmup at step %d", tstep)
		}
	}
}

func TestLRSweepsFullRangeForAnyTotal(t *testing.T) {
	// §5.2: the schedule sweeps the whole range regardless of run length.
	for _, total := range []int{50, 200, 1000} {
		o := NewSGD(DefaultSGDConfig(4, total))
		if math.Abs(o.LR(total-1)-0.004) > 1e-9 {
			t.Errorf("total=%d: final LR %v, want 0.004", total, o.LR(total-1))
		}
	}
}

func TestTunedConfigKeepsStructure(t *testing.T) {
	cfg := TunedSGDConfig(10, 100)
	if cfg.Momentum != 0.9 || cfg.WeightDecay != 1e-4 || cfg.WarmupFrac != 0.1 {
		t.Error("tuned config must keep the paper's momentum/decay/warmup")
	}
	if cfg.BaseLR >= 0.1 {
		t.Error("tuned config must lower the base LR")
	}
}

func TestApplyMomentumMath(t *testing.T) {
	// One parameter, no weight decay, LR pinned via TotalSteps=1.
	cfg := SGDConfig{BaseLR: 0.5, FinalLR: 0.5, Momentum: 0.5, WeightDecay: 0, Workers: 1, TotalSteps: 1}
	o := NewSGD(cfg)
	p := &nn.Param{Name: "w", W: tensor.FromSlice([]float32{1}, 1), G: tensor.FromSlice([]float32{2}, 1)}

	o.Apply([]*nn.Param{p}) // v = 2, w = 1 - 0.5*2 = 0
	if p.W.Data()[0] != 0 {
		t.Fatalf("after step 1: w = %v, want 0", p.W.Data()[0])
	}
	o.Apply([]*nn.Param{p}) // v = 0.5*2 + 2 = 3, w = 0 - 1.5 = -1.5
	if p.W.Data()[0] != -1.5 {
		t.Fatalf("after step 2: w = %v, want -1.5", p.W.Data()[0])
	}
	if o.Step() != 2 {
		t.Errorf("Step() = %d", o.Step())
	}
}

func TestApplyWeightDecay(t *testing.T) {
	cfg := SGDConfig{BaseLR: 1, FinalLR: 1, Momentum: 0, WeightDecay: 0.1, Workers: 1, TotalSteps: 1}
	o := NewSGD(cfg)
	p := &nn.Param{Name: "w", W: tensor.FromSlice([]float32{2}, 1), G: tensor.FromSlice([]float32{0}, 1)}
	o.Apply([]*nn.Param{p}) // g_eff = 0 + 0.1*2 = 0.2; w = 2 - 0.2 = 1.8
	if math.Abs(float64(p.W.Data()[0])-1.8) > 1e-6 {
		t.Errorf("w = %v, want 1.8", p.W.Data()[0])
	}
}

func TestApplyDelta(t *testing.T) {
	p := &nn.Param{Name: "w", W: tensor.FromSlice([]float32{1, 2}, 2), G: tensor.New(2)}
	d := tensor.FromSlice([]float32{0.5, -0.5}, 2)
	ApplyDelta([]*nn.Param{p}, []*tensor.Tensor{d})
	if p.W.Data()[0] != 1.5 || p.W.Data()[1] != 1.5 {
		t.Errorf("ApplyDelta result %v", p.W)
	}
}

func TestApplyDeltaMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ApplyDelta([]*nn.Param{}, []*tensor.Tensor{tensor.New(1)})
}

func TestVelocityIsPerParameter(t *testing.T) {
	cfg := SGDConfig{BaseLR: 1, FinalLR: 1, Momentum: 0.9, Workers: 1, TotalSteps: 1}
	o := NewSGD(cfg)
	a := &nn.Param{Name: "a", W: tensor.New(1), G: tensor.FromSlice([]float32{1}, 1)}
	b := &nn.Param{Name: "b", W: tensor.New(1), G: tensor.New(1)}
	o.Apply([]*nn.Param{a, b})
	o.Apply([]*nn.Param{a, b})
	// b never had gradient; its weight must be unchanged.
	if b.W.Data()[0] != 0 {
		t.Errorf("b.W = %v, velocity leaked across params", b.W.Data()[0])
	}
}

func TestOptimizerConvergesOnQuadratic(t *testing.T) {
	// Minimize f(w) = w^2 with gradients 2w.
	cfg := SGDConfig{BaseLR: 0.1, FinalLR: 0.01, Momentum: 0.9, Workers: 1, TotalSteps: 200}
	o := NewSGD(cfg)
	p := &nn.Param{Name: "w", W: tensor.FromSlice([]float32{5}, 1), G: tensor.New(1)}
	for i := 0; i < 200; i++ {
		p.G.Data()[0] = 2 * p.W.Data()[0]
		o.Apply([]*nn.Param{p})
	}
	if math.Abs(float64(p.W.Data()[0])) > 0.01 {
		t.Errorf("did not converge: w = %v", p.W.Data()[0])
	}
}
