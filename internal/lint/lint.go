package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named invariant checker. The shape deliberately
// mirrors golang.org/x/tools/go/analysis so the suite could migrate to
// the upstream framework wholesale if the dependency ever lands in the
// build; until then the framework below is the stdlib-only equivalent.
type Analyzer struct {
	// Name is the rule identifier used in output and in
	// //3lc:allow <name> <reason> suppressions.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run reports findings on one type-checked package via pass.Reportf.
	Run func(pass *Pass) error
}

// All returns the full analyzer suite in stable order. cmd/3lc-lint and
// the repo self-check both run exactly this list.
func All() []*Analyzer {
	return []*Analyzer{NoAlloc, NoPanic, PoolSafe, DetOnly}
}

// ByName resolves a comma-separated analyzer list ("noalloc,detonly").
func ByName(names string) ([]*Analyzer, error) {
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		found := false
		for _, a := range All() {
			if a.Name == n {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("lint: unknown analyzer %q", n)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("lint: empty analyzer list")
	}
	return out, nil
}

// A Diagnostic is one finding, resolved against any //3lc:allow
// suppression covering its line.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
	// Suppressed is true when an //3lc:allow directive for this rule
	// covers the finding's line; Reason carries the directive's text.
	Suppressed bool
	Reason     string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Rule)
}

// A Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	dirs  *directives
	diags *[]Diagnostic
}

// Reportf records one finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     p.Fset.Position(pos),
		Rule:    p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil if the checker recorded none.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if tv, ok := p.Info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.Info.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// isBuiltin reports whether id resolves to the universe-scope builtin of
// that name (so a local variable shadowing `panic` or `make` is not
// mistaken for the builtin).
func (p *Pass) isBuiltin(id *ast.Ident, name string) bool {
	if id.Name != name {
		return false
	}
	obj := p.Info.Uses[id]
	_, ok := obj.(*types.Builtin)
	return ok
}

// pkgFunc returns the import path and function name if call's callee is a
// plain package-level function selected from an imported package
// (`fmt.Errorf`, `time.Now`, `rand.Intn`), and "" otherwise.
func (p *Pass) pkgFunc(call *ast.CallExpr) (pkgPath, name string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	base, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	pn, ok := p.Info.Uses[base].(*types.PkgName)
	if !ok {
		return "", ""
	}
	return pn.Imported().Path(), sel.Sel.Name
}

// markedFuncs yields every function declaration covered by mark, whether
// through a function-level directive or a file-level one.
func (p *Pass) markedFuncs(mark string) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range p.Files {
		fileMarked := p.dirs.fileMarks[f][mark]
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if fileMarked || p.dirs.funcMarks[fn][mark] {
				out = append(out, fn)
			}
		}
	}
	return out
}

// funcName renders a function's reporting name ("(*FrameReader).ReadFrame").
func funcName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return fn.Name.Name
	}
	t := fn.Recv.List[0].Type
	var b strings.Builder
	if star, ok := t.(*ast.StarExpr); ok {
		b.WriteString("(*")
		writeTypeName(&b, star.X)
		b.WriteString(")")
	} else {
		writeTypeName(&b, t)
	}
	b.WriteString(".")
	b.WriteString(fn.Name.Name)
	return b.String()
}

func writeTypeName(b *strings.Builder, t ast.Expr) {
	switch t := t.(type) {
	case *ast.Ident:
		b.WriteString(t.Name)
	case *ast.IndexExpr:
		writeTypeName(b, t.X)
	case *ast.IndexListExpr:
		writeTypeName(b, t.X)
	default:
		b.WriteString("?")
	}
}

// Run executes every analyzer over every package and returns the findings
// (suppressed ones included, flagged) in file/line order. Malformed
// directives are reported as findings of the pseudo-rule "directive".
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		dirs, dirDiags := extractDirectives(pkg.Fset, pkg.Files)
		diags = append(diags, dirDiags...)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				dirs:     dirs,
				diags:    &diags,
			}
			if err := a.Run(pass); err != nil {
				diags = append(diags, Diagnostic{
					Rule:    a.Name,
					Message: fmt.Sprintf("analyzer error: %v", err),
				})
			}
		}
		// Resolve suppressions for this package's findings.
		for i := range diags {
			d := &diags[i]
			if d.Suppressed || d.Rule == "directive" {
				continue
			}
			if reason, ok := dirs.allowedAt(d.Pos, d.Rule); ok {
				d.Suppressed = true
				d.Reason = reason
			}
		}
	}
	sort.SliceStable(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return diags
}

// Unsuppressed filters diags down to the findings that fail the build.
func Unsuppressed(diags []Diagnostic) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		if !d.Suppressed {
			out = append(out, d)
		}
	}
	return out
}
