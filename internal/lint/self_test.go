package lint

import (
	"bytes"
	"os/exec"
	"strings"
	"testing"
)

// TestRepoSelfCheck runs the full analyzer suite over the entire module
// — exactly what `go run ./cmd/3lc-lint ./...` and the CI lint job do —
// and fails on any unsuppressed finding. Landing this inside `go test
// ./...` means the invariant gate runs even where CI is not wired up,
// and a change that breaks a //3lc: contract fails the plain test suite,
// not just the lint job.
func TestRepoSelfCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("self-check type-checks the whole module; skipped in -short")
	}
	root := moduleRoot(t)
	pkgs, err := LoadPackages(root, "./...")
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages — pattern ./... broken?", len(pkgs))
	}
	diags := Run(pkgs, All())
	for _, d := range Unsuppressed(diags) {
		t.Errorf("%s", d)
	}
	// The annotation vocabulary must actually be in use: an accidental
	// mass-deletion of directives would otherwise make this test pass
	// vacuously while the gate checks nothing.
	marked := 0
	for _, pkg := range pkgs {
		dirs, _ := extractDirectives(pkg.Fset, pkg.Files)
		marked += len(dirs.fileMarks) + len(dirs.funcMarks)
	}
	if marked < 10 {
		t.Errorf("only %d //3lc: contract annotations found across the module; the suite is not guarding anything", marked)
	}
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	var out bytes.Buffer
	cmd := exec.Command("go", "list", "-m", "-f", "{{.Dir}}")
	cmd.Stdout = &out
	if err := cmd.Run(); err != nil {
		t.Fatalf("go list -m: %v", err)
	}
	root := strings.TrimSpace(out.String())
	if root == "" {
		t.Fatal("empty module root")
	}
	return root
}
