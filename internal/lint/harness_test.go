package lint

// The golden-file harness: the stdlib-only equivalent of
// golang.org/x/tools/go/analysis/analysistest. Fixture packages live
// under testdata/src/<name>; every line that should produce a finding
// carries a trailing `// want "regexp"` comment (several per line are
// allowed), and the test fails on any unmatched finding or unmatched
// expectation. Suppressed findings (covered by //3lc:allow) must NOT
// carry a want — that is how the suppression path itself is tested.

import (
	"bufio"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

type wantKey struct {
	file string
	line int
}

// runGolden runs analyzers over testdata/src/<dirname> and diffs the
// unsuppressed findings against the fixture's want comments. It returns
// every diagnostic (suppressed included) for extra assertions.
func runGolden(t *testing.T, dirname string, analyzers ...*Analyzer) []Diagnostic {
	t.Helper()
	dir := filepath.Join("testdata", "src", dirname)
	matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no fixture files in %s: %v", dir, err)
	}
	sort.Strings(matches)
	pkg, err := loadFiles(".", dirname, matches)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dirname, err)
	}
	diags := Run([]*Package{pkg}, analyzers)

	wants := make(map[wantKey][]*regexp.Regexp)
	for _, name := range matches {
		parseWants(t, name, wants)
	}

	for _, d := range diags {
		if d.Suppressed {
			continue
		}
		key := wantKey{file: filepath.Base(d.Pos.Filename), line: d.Pos.Line}
		idx := -1
		for i, re := range wants[key] {
			if re != nil && re.MatchString(d.Message) {
				idx = i
				break
			}
		}
		if idx < 0 {
			t.Errorf("unexpected finding at %s:%d: %s [%s]", key.file, key.line, d.Message, d.Rule)
			continue
		}
		wants[key][idx] = nil // consume
	}
	for key, res := range wants {
		for _, re := range res {
			if re != nil {
				t.Errorf("%s:%d: expected finding matching %q, got none", key.file, key.line, re)
			}
		}
	}
	return diags
}

// parseWants scans a fixture for `// want "re"` comments.
func parseWants(t *testing.T, filename string, out map[wantKey][]*regexp.Regexp) {
	t.Helper()
	f, err := os.Open(filename)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for line := 1; sc.Scan(); line++ {
		text := sc.Text()
		i := strings.Index(text, "// want ")
		if i < 0 {
			continue
		}
		rest := strings.TrimSpace(text[i+len("// want "):])
		for rest != "" {
			if rest[0] != '"' {
				t.Fatalf("%s:%d: malformed want clause %q", filename, line, rest)
			}
			end := strings.Index(rest[1:], `"`)
			if end < 0 {
				t.Fatalf("%s:%d: unterminated want pattern", filename, line)
			}
			pat, err := strconv.Unquote(rest[:end+2])
			if err != nil {
				t.Fatalf("%s:%d: bad want pattern: %v", filename, line, err)
			}
			re, err := regexp.Compile(pat)
			if err != nil {
				t.Fatalf("%s:%d: bad want regexp: %v", filename, line, err)
			}
			key := wantKey{file: filepath.Base(filename), line: line}
			out[key] = append(out[key], re)
			rest = strings.TrimSpace(rest[end+2:])
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
}

// countSuppressed tallies suppressed findings per rule.
func countSuppressed(diags []Diagnostic, rule string) int {
	n := 0
	for _, d := range diags {
		if d.Suppressed && d.Rule == rule {
			n++
		}
	}
	return n
}
