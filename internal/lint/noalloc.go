package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NoAlloc checks functions annotated //3lc:noalloc for constructs that
// heap-allocate. The rule set is deliberately conservative-by-syntax:
// it flags the constructs that always (or almost always) allocate —
// make/new, slice and map literals, fmt and errors.New calls, capturing
// closures, go statements, interface boxing, string/byte conversions and
// non-constant string concatenation, and append onto a freshly created
// slice. Two structural exemptions keep the contract about the steady
// state, which is what the benchcheck 0 allocs/op gate measures:
// amortized growth (append onto a caller-provided or struct-held buffer)
// passes, and fmt/errors calls written directly into a return statement
// or a panic argument pass — error construction runs only on malformed
// input, never on the hot path.
var NoAlloc = &Analyzer{
	Name: "noalloc",
	Doc:  "report heap-allocating constructs inside //3lc:noalloc functions",
	Run:  runNoAlloc,
}

func runNoAlloc(p *Pass) error {
	for _, fn := range p.markedFuncs(markNoAlloc) {
		checkNoAlloc(p, fn)
	}
	return nil
}

func checkNoAlloc(p *Pass, fn *ast.FuncDecl) {
	// Collect the expressions in call position, so method *values* (which
	// allocate a bound-method closure) can be told apart from method calls.
	called := make(map[ast.Expr]bool)
	// cold marks the fmt/errors calls on failure paths: a formatted error
	// built directly in a return statement, or a message built for a
	// panic guard, runs only on malformed input or programmer error —
	// never in the steady state the 0 allocs/op contract is about.
	cold := make(map[*ast.CallExpr]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			called[ast.Unparen(n.Fun)] = true
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && p.isBuiltin(id, "panic") {
				for _, arg := range n.Args {
					markColdCalls(arg, cold)
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				markColdCalls(res, cold)
			}
		}
		return true
	})

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			p.Reportf(n.Pos(), "%s is //3lc:noalloc: go statement spawns a goroutine (allocates)", funcName(fn))

		case *ast.FuncLit:
			if v := captured(p, n); v != "" {
				p.Reportf(n.Pos(), "%s is //3lc:noalloc: function literal captures %q (closure allocates)", funcName(fn), v)
			}

		case *ast.CompositeLit:
			switch p.TypeOf(n).Underlying().(type) {
			case *types.Slice:
				p.Reportf(n.Pos(), "%s is //3lc:noalloc: slice literal allocates", funcName(fn))
			case *types.Map:
				p.Reportf(n.Pos(), "%s is //3lc:noalloc: map literal allocates", funcName(fn))
			}

		case *ast.UnaryExpr:
			// &T{...}: taking the address of a composite literal is the
			// canonical escape-to-heap construct.
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					p.Reportf(n.Pos(), "%s is //3lc:noalloc: &composite literal allocates", funcName(fn))
				}
			}

		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if t := p.TypeOf(n); t != nil {
					if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						if tv, ok := p.Info.Types[ast.Expr(n)]; !ok || tv.Value == nil {
							p.Reportf(n.Pos(), "%s is //3lc:noalloc: string concatenation allocates", funcName(fn))
						}
					}
				}
			}

		case *ast.SelectorExpr:
			if !called[ast.Expr(n)] {
				if sel, ok := p.Info.Selections[n]; ok && sel.Kind() == types.MethodVal {
					p.Reportf(n.Pos(), "%s is //3lc:noalloc: method value %s allocates a bound closure", funcName(fn), n.Sel.Name)
				}
			}

		case *ast.CallExpr:
			checkNoAllocCall(p, fn, n, cold)
		}
		return true
	})
}

// markColdCalls records every fmt/errors-style call nested in e (a return
// result or panic argument) as cold-path error construction.
func markColdCalls(e ast.Expr, cold map[*ast.CallExpr]bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			cold[call] = true
		}
		return true
	})
}

func checkNoAllocCall(p *Pass, fn *ast.FuncDecl, call *ast.CallExpr, cold map[*ast.CallExpr]bool) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		switch {
		case p.isBuiltin(id, "make"):
			p.Reportf(call.Pos(), "%s is //3lc:noalloc: make allocates", funcName(fn))
			return
		case p.isBuiltin(id, "new"):
			p.Reportf(call.Pos(), "%s is //3lc:noalloc: new allocates", funcName(fn))
			return
		case p.isBuiltin(id, "append"):
			if len(call.Args) > 0 && freshSlice(call.Args[0]) {
				p.Reportf(call.Pos(), "%s is //3lc:noalloc: append onto a fresh slice allocates", funcName(fn))
			}
			return
		}
	}

	// Conversions: string<->[]byte/[]rune copies; conversion to an
	// interface type boxes the operand.
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to := tv.Type
		from := p.TypeOf(call.Args[0])
		if from != nil {
			if convAllocates(to, from) {
				p.Reportf(call.Pos(), "%s is //3lc:noalloc: conversion %s -> %s allocates", funcName(fn), from, to)
			}
			return
		}
	}

	if pkg, name := p.pkgFunc(call); pkg != "" && !cold[call] {
		switch {
		case pkg == "fmt":
			p.Reportf(call.Pos(), "%s is //3lc:noalloc: fmt.%s allocates outside a cold error/panic path", funcName(fn), name)
		case pkg == "errors" && name == "New":
			p.Reportf(call.Pos(), "%s is //3lc:noalloc: errors.New allocates (hoist to a package-level sentinel)", funcName(fn))
		}
	}
}

// freshSlice reports whether e denotes a slice that cannot already own
// backing storage: a literal, a conversion like []byte(nil), or a typed
// nil — appending onto it always allocates.
func freshSlice(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.Ident:
		return e.Name == "nil"
	case *ast.CallExpr:
		// Conversions like []byte("x") or []byte(nil).
		return true
	}
	return false
}

// captured returns the name of a variable the function literal closes
// over (declared outside the literal, but not at package scope), or "".
func captured(p *Pass, lit *ast.FuncLit) string {
	found := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := p.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Package-level variables (of this package or an imported one)
		// are accessed directly, not captured.
		if v.Parent() == nil || (v.Pkg() != nil && v.Parent() == v.Pkg().Scope()) {
			return true
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			found = v.Name()
			return false
		}
		return true
	})
	return found
}

// convAllocates reports whether converting from -> to copies or boxes.
func convAllocates(to, from types.Type) bool {
	if types.IsInterface(to) && !types.IsInterface(from) {
		if b, ok := from.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
			return false
		}
		return true
	}
	tb, tok := to.Underlying().(*types.Basic)
	fs, fok := from.Underlying().(*types.Slice)
	if tok && tb.Info()&types.IsString != 0 && fok && isByteOrRune(fs.Elem()) {
		return true // []byte/[]rune -> string
	}
	ts, tok2 := to.Underlying().(*types.Slice)
	fb, fok2 := from.Underlying().(*types.Basic)
	if tok2 && isByteOrRune(ts.Elem()) && fok2 && fb.Info()&types.IsString != 0 {
		return true // string -> []byte/[]rune
	}
	return false
}

func isByteOrRune(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32)
}
