package lint

import (
	"go/ast"
	"go/types"
)

// PoolSafe tracks values drawn from a sync.Pool through a function body
// and reports the three ways they outlive the call that borrowed them:
// being returned, being stored into a struct field, or being sent on a
// channel. Any of the three hands pooled memory to code that cannot see
// the matching Put, which is how use-after-Put corruption starts.
//
// The taint analysis is local and syntactic: a variable assigned from
// pool.Get() (through any chain of parens, type assertions, derefs and
// re-slicings) is pooled; so is any variable assigned from a pooled
// variable through the same alias-preserving operators. Unlike noalloc
// and nopanic this analyzer needs no annotation — every function that
// touches a sync.Pool is checked. Intentional hand-offs (a registry
// getter whose documented contract is get-now-put-later) carry a
// //3lc:allow poolsafe line naming the contract.
var PoolSafe = &Analyzer{
	Name: "poolsafe",
	Doc:  "forbid returning, storing, or sending sync.Pool-borrowed values",
	Run:  runPoolSafe,
}

func runPoolSafe(p *Pass) error {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkPoolSafe(p, fn)
		}
	}
	return nil
}

func checkPoolSafe(p *Pass, fn *ast.FuncDecl) {
	tainted := make(map[types.Object]bool)

	// isPooled reports whether e evaluates to pooled memory: a Get() call
	// on a sync.Pool, or a tainted variable, through alias-preserving
	// operators (parens, *x, x[:...], x.(T)).
	var isPooled func(e ast.Expr) bool
	isPooled = func(e ast.Expr) bool {
		switch e := ast.Unparen(e).(type) {
		case *ast.CallExpr:
			return isPoolGet(p, e)
		case *ast.Ident:
			obj := p.Info.Uses[e]
			return obj != nil && tainted[obj]
		case *ast.StarExpr:
			return isPooled(e.X)
		case *ast.SliceExpr:
			return isPooled(e.X)
		case *ast.TypeAssertExpr:
			return isPooled(e.X)
		}
		return false
	}

	// Pass 1 (iterated to a fixed point): propagate taint through
	// assignments. Two rounds suffice for the straight-line aliasing this
	// targets, but iterate until stable to stay order-independent.
	for changed := true; changed; {
		changed = false
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			asg, ok := n.(*ast.AssignStmt)
			if !ok || len(asg.Lhs) != len(asg.Rhs) {
				return true
			}
			for i, rhs := range asg.Rhs {
				if !isPooled(rhs) {
					continue
				}
				if id, ok := asg.Lhs[i].(*ast.Ident); ok {
					obj := p.Info.Defs[id]
					if obj == nil {
						obj = p.Info.Uses[id]
					}
					if obj != nil && !tainted[obj] {
						tainted[obj] = true
						changed = true
					}
				}
			}
			return true
		})
	}

	// Pass 2: report escapes.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if isPooled(res) {
					p.Reportf(res.Pos(), "%s returns a sync.Pool-borrowed value (pooled memory escapes the call)", funcName(fn))
				}
			}
		case *ast.SendStmt:
			if isPooled(n.Value) {
				p.Reportf(n.Value.Pos(), "%s sends a sync.Pool-borrowed value on a channel", funcName(fn))
			}
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				if !isPooled(rhs) {
					continue
				}
				if sel, ok := n.Lhs[i].(*ast.SelectorExpr); ok {
					// Storing back through a pooled pointer (*bp = buf or
					// bp.field = x where bp is itself pooled) is the
					// put-back idiom, not an escape.
					if isPooled(sel.X) {
						continue
					}
					p.Reportf(rhs.Pos(), "%s stores a sync.Pool-borrowed value in field %s (outlives the call)", funcName(fn), sel.Sel.Name)
				}
			}
		}
		return true
	})
}

// isPoolGet matches `x.Get()` where x is a sync.Pool or *sync.Pool.
func isPoolGet(p *Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Get" {
		return false
	}
	t := p.TypeOf(sel.X)
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Pool" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}
