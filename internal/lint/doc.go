// Package lint is the repo's invariant-enforcing static-analysis suite:
// the conventions the optimization PRs rely on — zero-allocation hot
// paths, decoders that error instead of panicking, sync.Pool borrows
// that never escape, seeded determinism in retry/chaos/placement/train
// logic — turned into machine-checked rules. The benchcheck gate, the
// fuzzers, and the race legs verify those properties dynamically on the
// inputs they happen to see; this package pins the structural discipline
// at compile time, on every path, in CI and in `go test ./...` (see
// self_test.go).
//
// # Annotation vocabulary
//
// Contracts are declared with directive comments (no space after the
// slashes, like //go:noinline, so gofmt keeps them attached):
//
//	//3lc:noalloc
//	    On a function's doc comment: the function body may not contain
//	    heap-allocating constructs (make/new, slice and map literals,
//	    fmt calls, errors.New, capturing closures, go statements,
//	    interface boxing, string<->[]byte conversions, non-constant
//	    string concatenation, append onto a fresh slice). Amortized
//	    append growth onto caller-provided buffers is allowed — the
//	    benchcheck CI gate proves 0 allocs/op dynamically.
//
//	//3lc:decode
//	    On a function's doc comment, or at file level (before the
//	    package clause): the code parses untrusted input and must
//	    return errors, never panic. Panic calls are forbidden, and
//	    every slice index or sub-slice must be anchored by a len()
//	    check (or range) over the same expression in the same function.
//
//	//3lc:det
//	    On a function's doc comment, or at file level: the code's
//	    outputs must be a pure function of its inputs and seeds.
//	    time.Now/Since/Until, the global math/rand source, and map
//	    iteration are forbidden.
//
// The poolsafe analyzer needs no annotation: every function that calls
// (*sync.Pool).Get is checked for borrows that escape (returned, stored
// in a field, or sent on a channel).
//
// # Suppressions
//
// A finding is suppressed by a directive on the same line or the line
// directly above it, naming the rule and a non-empty reason:
//
//	//3lc:allow noalloc cold error path, runs at most once per connection
//	return fmt.Errorf("transport: bad frame length %d", n)
//
// Malformed directives (unknown rule, missing reason) are themselves
// findings, so a typo cannot silently disable a check.
//
// # Running
//
//	go run ./cmd/3lc-lint ./...          # whole repo, exit 1 on findings
//	go run ./cmd/3lc-lint -only detonly ./internal/retry/
//	go run ./cmd/3lc-lint -v ./...       # also list suppressed findings
//
// The framework mirrors golang.org/x/tools/go/analysis (Analyzer / Pass
// / Reportf) but is built on the standard library alone: packages are
// enumerated with `go list -deps -export -json` and type-checked with
// go/types against the compiler's export data, so the module keeps zero
// dependencies.
package lint
