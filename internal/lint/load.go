package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
)

// A Package is one type-checked target package ready for analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// The loader deliberately avoids golang.org/x/tools/go/packages (the repo
// carries no module dependencies): it shells out to `go list -deps
// -export -json`, which compiles dependencies into the build cache and
// reports the export-data file for each, then type-checks the target
// packages from source with go/types and an export-data importer. Only
// non-test GoFiles are analyzed — the invariants under check (alloc-free
// hot paths, panic-free decoders, pool hygiene, determinism) are
// production-code contracts, and test files routinely violate all of
// them on purpose.

type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Error      *struct{ Err string }
}

// exports maps import paths to export-data files, filled from `go list`
// output and extended lazily for paths first seen during type-checking
// (e.g. stdlib imports of testdata fixtures).
type exports struct {
	mu    sync.Mutex
	dir   string
	files map[string]string
}

func (e *exports) lookup(path string) (io.ReadCloser, error) {
	e.mu.Lock()
	f, ok := e.files[path]
	e.mu.Unlock()
	if !ok {
		if _, err := e.ensure(path); err != nil {
			return nil, err
		}
		e.mu.Lock()
		f, ok = e.files[path]
		e.mu.Unlock()
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
	}
	return os.Open(f)
}

// ensure runs `go list -deps -export` for the given patterns and records
// every export-data file it reports, returning the non-dep-only packages.
func (e *exports) ensure(patterns ...string) ([]listPkg, error) {
	args := append([]string{
		"list", "-e", "-deps", "-export",
		"-json=ImportPath,Dir,Export,GoFiles,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = e.dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var targets []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if p.Error != nil && !p.DepOnly {
			return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			e.mu.Lock()
			e.files[p.ImportPath] = p.Export
			e.mu.Unlock()
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}
	return targets, nil
}

// LoadPackages loads and type-checks the packages matched by patterns,
// resolved relative to dir (the module root or any directory inside it).
func LoadPackages(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	exp := &exports{dir: dir, files: make(map[string]string)}
	targets, err := exp.ensure(patterns...)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", exp.lookup)
	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("lint: %v", err)
			}
			files = append(files, f)
		}
		pkg, info, err := check(t.ImportPath, fset, files, imp)
		if err != nil {
			return nil, fmt.Errorf("lint: type-checking %s: %v", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{Path: t.ImportPath, Fset: fset, Files: files, Types: pkg, Info: info})
	}
	return pkgs, nil
}

// loadFiles type-checks one directory of already-located Go files as a
// single package (the analysistest path: testdata fixtures are not part
// of the module build, so `go list` never sees them). Stdlib imports are
// resolved through the same lazy export-data importer.
func loadFiles(moduleDir, pkgPath string, filenames []string) (*Package, error) {
	exp := &exports{dir: moduleDir, files: make(map[string]string)}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", exp.lookup)
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		files = append(files, f)
	}
	pkg, info, err := check(pkgPath, fset, files, imp)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", pkgPath, err)
	}
	return &Package{Path: pkgPath, Fset: fset, Files: files, Types: pkg, Info: info}, nil
}

func check(path string, fset *token.FileSet, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}
