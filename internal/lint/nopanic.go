package lint

import (
	"go/ast"
	"go/types"
)

// NoPanic pins the decode-path contract: functions covered by
// //3lc:decode parse untrusted bytes and must return errors, never
// panic. Two rules:
//
//  1. No reachable panic() call.
//  2. Indexing (and sub-slicing) discipline: every non-array index or
//     slice expression must be "anchored" in the function — the indexed
//     expression appears in a len() call somewhere in the function (the
//     bounds-check idiom), or the index variable is the range key of a
//     range over that same expression. This is a heuristic, not an
//     escape-proof bounds analysis: its job is to force decode loops to
//     keep their validation local and visible, with //3lc:allow
//     available for helpers whose validation provably happened upstream
//     (say so in the reason).
var NoPanic = &Analyzer{
	Name: "nopanic",
	Doc:  "forbid panics and unanchored indexing in //3lc:decode functions",
	Run:  runNoPanic,
}

func runNoPanic(p *Pass) error {
	for _, fn := range p.markedFuncs(markDecode) {
		checkNoPanic(p, fn)
	}
	return nil
}

func checkNoPanic(p *Pass, fn *ast.FuncDecl) {
	anchored := make(map[string]bool) // ExprString(x) for every len(x) in fn
	rangeKey := make(map[types.Object]string)

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			// len(x) anchors x; so does cap(x) — for re-slicing, capacity
			// is the actual bound (s[:n] is legal up to cap(s)).
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && len(n.Args) == 1 &&
				(p.isBuiltin(id, "len") || p.isBuiltin(id, "cap")) {
				anchored[types.ExprString(ast.Unparen(n.Args[0]))] = true
			}
		case *ast.RangeStmt:
			if key, ok := n.Key.(*ast.Ident); ok {
				if obj := p.Info.Defs[key]; obj != nil {
					rangeKey[obj] = types.ExprString(ast.Unparen(n.X))
				}
			}
			// Ranging over x visits only valid indices of x itself.
			anchored[types.ExprString(ast.Unparen(n.X))] = true
		}
		return true
	})

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && p.isBuiltin(id, "panic") {
				p.Reportf(n.Pos(), "%s is //3lc:decode: panic on malformed input (return an error instead)", funcName(fn))
			}
		case *ast.IndexExpr:
			checkAnchoredIndex(p, fn, n.X, n.Index, anchored, rangeKey, n)
		case *ast.SliceExpr:
			for _, ix := range [3]ast.Expr{n.Low, n.High, n.Max} {
				if ix != nil {
					checkAnchoredIndex(p, fn, n.X, ix, anchored, rangeKey, n)
				}
			}
		}
		return true
	})
}

// checkAnchoredIndex reports base[idx] when nothing in the function
// anchors idx to base's length.
func checkAnchoredIndex(p *Pass, fn *ast.FuncDecl, base, idx ast.Expr, anchored map[string]bool, rangeKey map[types.Object]string, at ast.Node) {
	bt := p.TypeOf(base)
	if bt == nil {
		return
	}
	switch u := bt.Underlying().(type) {
	case *types.Map:
		return // map reads cannot panic
	case *types.Pointer:
		if _, ok := u.Elem().Underlying().(*types.Array); ok {
			return // fixed-size array: indexing is compiler-checked
		}
	case *types.Array:
		return
	case *types.Basic, *types.Slice:
		// strings and slices: fall through to the anchoring rules
	default:
		return // generic/other index expressions (type params, etc.)
	}
	baseKey := types.ExprString(ast.Unparen(base))
	if anchored[baseKey] {
		return
	}
	// Constant indices into constant-free slices still panic when the
	// slice is short, so constants get no special pass — but an index
	// that is the key of `range base` is always in bounds.
	if id, ok := ast.Unparen(idx).(*ast.Ident); ok {
		if obj := p.Info.Uses[id]; obj != nil && rangeKey[obj] == baseKey {
			return
		}
	}
	p.Reportf(at.Pos(), "%s is //3lc:decode: index into %q with no len(%s) anchor in this function", funcName(fn), baseKey, baseKey)
}
