package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// The annotation vocabulary. Directives use the standard Go directive
// comment shape (`//3lc:name`, no space after the slashes) so gofmt keeps
// them attached to their declaration.
//
//	//3lc:noalloc          function contract: no heap allocation
//	//3lc:decode           function/file contract: error, never panic
//	//3lc:det              function/file contract: deterministic logic
//	//3lc:allow r reason   suppress rule r on the next (or same) line
const (
	markNoAlloc = "noalloc"
	markDecode  = "decode"
	markDet     = "det"
)

// scopeMarks are the directives that tag a function or file with a
// contract; allowRule ("allow") is the suppression directive.
var scopeMarks = map[string]bool{markNoAlloc: true, markDecode: true, markDet: true}

type allowEntry struct {
	rule   string
	reason string
}

type directives struct {
	fileMarks map[*ast.File]map[string]bool
	funcMarks map[*ast.FuncDecl]map[string]bool
	// allows maps filename -> line -> suppressions recorded on that line.
	allows map[string]map[int][]allowEntry
}

// allowedAt reports whether a finding of rule at pos is covered by an
// //3lc:allow directive on the same line or the line directly above it.
func (d *directives) allowedAt(pos token.Position, rule string) (string, bool) {
	lines := d.allows[pos.Filename]
	if lines == nil {
		return "", false
	}
	for _, ln := range [2]int{pos.Line, pos.Line - 1} {
		for _, e := range lines[ln] {
			if e.rule == rule {
				return e.reason, true
			}
		}
	}
	return "", false
}

// extractDirectives scans every comment in the package for the 3lc
// annotation vocabulary. Malformed directives (unknown mark, allow with a
// missing rule or reason) are returned as findings of the pseudo-rule
// "directive" so typos fail the build instead of silently disabling a
// check.
func extractDirectives(fset *token.FileSet, files []*ast.File) (*directives, []Diagnostic) {
	d := &directives{
		fileMarks: make(map[*ast.File]map[string]bool),
		funcMarks: make(map[*ast.FuncDecl]map[string]bool),
		allows:    make(map[string]map[int][]allowEntry),
	}
	var diags []Diagnostic

	bad := func(pos token.Pos, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Pos:     fset.Position(pos),
			Rule:    "directive",
			Message: fmt.Sprintf(format, args...),
		})
	}

	for _, f := range files {
		// Every //3lc: comment in the file: record allows, validate names.
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name, rest, ok := splitDirective(c.Text)
				if !ok {
					continue
				}
				switch {
				case name == "allow":
					rule, reason, _ := strings.Cut(rest, " ")
					reason = strings.TrimSpace(reason)
					if !validRule(rule) {
						bad(c.Pos(), "//3lc:allow names unknown rule %q", rule)
						continue
					}
					if reason == "" {
						bad(c.Pos(), "//3lc:allow %s needs a reason", rule)
						continue
					}
					pos := fset.Position(c.Pos())
					if d.allows[pos.Filename] == nil {
						d.allows[pos.Filename] = make(map[int][]allowEntry)
					}
					d.allows[pos.Filename][pos.Line] = append(
						d.allows[pos.Filename][pos.Line], allowEntry{rule: rule, reason: reason})
				case scopeMarks[name]:
					// Scope marks are picked up from doc comments below;
					// here we only validate placement-independent syntax.
				default:
					bad(c.Pos(), "unknown directive //3lc:%s", name)
				}
			}
		}

		// File-level scope marks: any //3lc: mark in a comment group that
		// ends before the package clause (including the package doc).
		for _, cg := range f.Comments {
			if cg.End() > f.Package {
				break
			}
			for _, m := range marksIn(cg) {
				if d.fileMarks[f] == nil {
					d.fileMarks[f] = make(map[string]bool)
				}
				d.fileMarks[f][m] = true
			}
		}

		// Function-level scope marks from doc comments.
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Doc == nil {
				continue
			}
			for _, m := range marksIn(fn.Doc) {
				if d.funcMarks[fn] == nil {
					d.funcMarks[fn] = make(map[string]bool)
				}
				d.funcMarks[fn][m] = true
			}
		}
	}
	return d, diags
}

// splitDirective parses "//3lc:name rest..." comment text.
func splitDirective(text string) (name, rest string, ok bool) {
	body, found := strings.CutPrefix(text, "//3lc:")
	if !found {
		return "", "", false
	}
	name, rest, _ = strings.Cut(body, " ")
	return strings.TrimSpace(name), strings.TrimSpace(rest), name != ""
}

func marksIn(cg *ast.CommentGroup) []string {
	var out []string
	for _, c := range cg.List {
		if name, _, ok := splitDirective(c.Text); ok && scopeMarks[name] {
			out = append(out, name)
		}
	}
	return out
}

func validRule(rule string) bool {
	for _, a := range All() {
		if a.Name == rule {
			return true
		}
	}
	return false
}
