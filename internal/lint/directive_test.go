package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseOne(t *testing.T, src string) (*token.FileSet, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, f
}

func TestDirectiveExtraction(t *testing.T) {
	fset, f := parseOne(t, `// Package doc.
//
//3lc:det
package p

//3lc:noalloc
func hot() {}

// helper does things.
//
//3lc:decode
//3lc:noalloc
func helper() {}

func plain() {}
`)
	d, diags := extractDirectives(fset, []*ast.File{f})
	if len(diags) != 0 {
		t.Fatalf("unexpected directive diagnostics: %v", diags)
	}
	if !d.fileMarks[f][markDet] {
		t.Error("file-level //3lc:det not recorded")
	}
	var hot, helper, plain *ast.FuncDecl
	for _, decl := range f.Decls {
		fn := decl.(*ast.FuncDecl)
		switch fn.Name.Name {
		case "hot":
			hot = fn
		case "helper":
			helper = fn
		case "plain":
			plain = fn
		}
	}
	if !d.funcMarks[hot][markNoAlloc] {
		t.Error("//3lc:noalloc on hot not recorded")
	}
	if !d.funcMarks[helper][markDecode] || !d.funcMarks[helper][markNoAlloc] {
		t.Error("stacked directives on helper not recorded")
	}
	if len(d.funcMarks[plain]) != 0 {
		t.Error("plain should carry no marks")
	}
}

func TestDirectiveAllow(t *testing.T) {
	fset, f := parseOne(t, `package p

func f() int {
	//3lc:allow noalloc warmup table, off the hot path
	x := 1
	y := 2 //3lc:allow detonly body is order-independent
	return x + y
}
`)
	d, diags := extractDirectives(fset, []*ast.File{f})
	if len(diags) != 0 {
		t.Fatalf("unexpected directive diagnostics: %v", diags)
	}
	// The comment sits on line 4; a finding on the line below (5) or the
	// same line is covered, farther away is not.
	if reason, ok := d.allowedAt(token.Position{Filename: "fixture.go", Line: 5}, "noalloc"); !ok || !strings.Contains(reason, "warmup") {
		t.Errorf("allow on preceding line not honored: %q %v", reason, ok)
	}
	if _, ok := d.allowedAt(token.Position{Filename: "fixture.go", Line: 6}, "noalloc"); ok {
		t.Error("allow must not reach two lines down")
	}
	if _, ok := d.allowedAt(token.Position{Filename: "fixture.go", Line: 5}, "detonly"); ok {
		t.Error("allow must be rule-specific")
	}
	if _, ok := d.allowedAt(token.Position{Filename: "fixture.go", Line: 6}, "detonly"); !ok {
		t.Error("same-line allow not honored")
	}
}

func TestDirectiveMalformed(t *testing.T) {
	fset, f := parseOne(t, `package p

//3lc:allow noalloc
func a() {}

//3lc:allow nosuchrule because reasons
func b() {}

//3lc:frobnicate
func c() {}
`)
	_, diags := extractDirectives(fset, []*ast.File{f})
	if len(diags) != 3 {
		t.Fatalf("malformed directives = %d diagnostics, want 3: %v", len(diags), diags)
	}
	for _, want := range []string{"needs a reason", "unknown rule", "unknown directive"} {
		found := false
		for _, d := range diags {
			if strings.Contains(d.Message, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("no diagnostic matching %q in %v", want, diags)
		}
	}
}
