// Package poolsafe exercises the poolsafe analyzer: sync.Pool borrows
// must not outlive the borrowing call. No annotation is needed — every
// function touching a pool is checked.
package poolsafe

import (
	"io"
	"sync"
)

var pool = sync.Pool{New: func() any { b := make([]byte, 0, 64); return &b }}

type holder struct{ buf *[]byte }

func leakReturn() *[]byte {
	bp := pool.Get().(*[]byte)
	return bp // want "returns a sync.Pool-borrowed value"
}

func leakReturnDirect() any {
	return pool.Get() // want "returns a sync.Pool-borrowed value"
}

func leakField(h *holder) {
	h.buf = pool.Get().(*[]byte) // want "stores a sync.Pool-borrowed value in field buf"
}

func leakSend(ch chan *[]byte) {
	bp := pool.Get().(*[]byte)
	ch <- bp // want "sends a sync.Pool-borrowed value"
}

func leakAliasedSlice() []byte {
	bp := pool.Get().(*[]byte)
	buf := (*bp)[:0]
	return buf // want "returns a sync.Pool-borrowed value"
}

// writeFramed is the blessed idiom: borrow, use, put back; nothing
// pooled leaves the function.
func writeFramed(w io.Writer, payload []byte) error {
	bp := pool.Get().(*[]byte)
	buf := (*bp)[:0]
	buf = append(buf, payload...)
	_, err := w.Write(buf)
	*bp = buf
	pool.Put(bp)
	return err
}

// getScratch is an intentional hand-off: the registry contract makes the
// caller responsible for the put, so the escape is suppressed by name.
func getScratch() *[]byte {
	bp := pool.Get().(*[]byte)
	//3lc:allow poolsafe registry getter: caller owns the buffer until putScratch
	return bp
}

func putScratch(bp *[]byte) {
	pool.Put(bp)
}
