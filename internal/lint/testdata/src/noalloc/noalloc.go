// Package noalloc exercises the noalloc analyzer: annotated functions
// with deliberately-introduced allocations (each carrying a want
// expectation), the allowed idioms that must stay silent, and the
// //3lc:allow suppression path.
package noalloc

import (
	"errors"
	"fmt"
)

type pair struct{ a, b int }

type counter struct{ n int }

func (c *counter) inc() { c.n++ }

// kernelCore mimics a hot encode loop: append-style growth onto the
// caller's buffer is fine, creating storage is not.
//
//3lc:noalloc
func kernelCore(dst []byte, xs []float32) []byte {
	buf := make([]byte, 16) // want "make allocates"
	_ = buf
	for _, x := range xs {
		dst = append(dst, byte(x)) // fine: caller-provided buffer
	}
	fresh := append([]byte(nil), dst...) // want "append onto a fresh slice allocates"
	_ = fresh
	return dst
}

//3lc:noalloc
func literals() int {
	xs := []int{1, 2, 3}  // want "slice literal allocates"
	m := map[string]int{} // want "map literal allocates"
	p := &pair{1, 2}      // want "composite literal allocates"
	q := new(pair)        // want "new allocates"
	v := pair{3, 4}       // fine: value composite literal stays on the stack
	return xs[0] + len(m) + p.a + q.b + v.a
}

//3lc:noalloc
func formatting(n int) (string, error) {
	msg := fmt.Sprintf("step %d", n) // want "fmt.Sprintf allocates"
	e := errors.New("hot")           // want "errors.New allocates"
	_ = e
	if n > 1 {
		// Cold-path exemption: error construction directly in a return
		// (or panic) runs only on failure, never in steady state.
		return "", fmt.Errorf("bad value %d", n)
	}
	if n < 0 {
		panic(fmt.Sprintf("negative %d", n)) // fine: panic guard is cold
	}
	return msg, errSentinel // fine: package-level sentinel
}

var errSentinel = errors.New("noalloc: bad input")

//3lc:noalloc
func closures(xs []float32) float32 {
	total := float32(0)
	add := func(v float32) { total += v } // want "captures .total."
	for _, x := range xs {
		add(x)
	}
	return total
}

//3lc:noalloc
func spawn(ch chan int) int {
	go func() { ch <- 1 }() // want "go statement spawns a goroutine" "captures .ch."
	return <-ch
}

//3lc:noalloc
func boxing(n int) any {
	return any(n) // want "conversion int -> any allocates"
}

//3lc:noalloc
func stringBytes(b []byte, s string) int {
	t := string(b) // want "conversion ..byte -> string allocates"
	u := []byte(s) // want "conversion string -> ..byte allocates"
	return len(t) + len(u)
}

//3lc:noalloc
func concat(a, b string) string {
	const prefix = "x" + "y" // fine: constant concatenation
	return prefix + a + b    // want "string concatenation allocates" "string concatenation allocates"
}

//3lc:noalloc
func methodValue(c *counter) func() {
	return c.inc // want "method value inc allocates"
}

//3lc:noalloc
func suppressed() []int {
	//3lc:allow noalloc one-time warmup table build, not on the step path
	tab := make([]int, 256)
	return tab
}

// unannotated allocates freely: no directive, no findings.
func unannotated() []int {
	out := make([]int, 8)
	out = append(out, 1)
	return out
}
