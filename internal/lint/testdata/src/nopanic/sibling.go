package nopanic

// parseHeader carries the decode mark on the function alone: the rest of
// this file is unmarked and may use panic for programmer errors.
//
//3lc:decode
func parseHeader(src []byte) (byte, byte, error) {
	if len(src) < 2 {
		return 0, 0, errShort
	}
	return src[0], src[1], nil
}

//3lc:decode
func parseBroken(src []byte) byte {
	return src[2] // want "index into .src. with no len"
}

// mustScheme is unmarked: panicking on a programming error is fine here.
func mustScheme(ok bool) {
	if !ok {
		panic("nopanic: invalid scheme registration")
	}
}
