// Package nopanic exercises the nopanic analyzer. This file is marked
// //3lc:decode at file level, so every function in it is held to the
// error-never-panic contract; sibling.go shows function-level marking.
//
//3lc:decode
package nopanic

import "errors"

var errShort = errors.New("nopanic: short input")

// decode is the well-behaved shape: length anchored, then indexed.
func decode(src []byte) (int, error) {
	if len(src) < 4 {
		return 0, errShort
	}
	v := int(src[0]) | int(src[1])<<8 | int(src[2])<<16 | int(src[3])<<24
	return v, nil
}

func badPanic(src []byte) (byte, error) {
	if len(src) == 0 {
		panic("empty input") // want "panic on malformed input"
	}
	return src[0], nil
}

func unanchored(src []byte, i int) byte {
	return src[i] // want "index into .src. with no len"
}

func unanchoredSlice(src []byte, n int) []byte {
	return src[:n] // want "index into .src. with no len"
}

func rangeIndexed(xs []byte) int {
	t := 0
	for i := range xs {
		t += int(xs[i]) // fine: i is xs's own range key
	}
	return t
}

func crossRange(xs, ys []byte) int {
	t := 0
	for i := range xs {
		t += int(ys[i]) // want "index into .ys. with no len"
	}
	return t
}

func mapRead(m map[int]int, k int) int {
	return m[k] // fine: map reads cannot panic
}

func arrayIndex(k uint8) byte {
	var lut [256]byte
	return lut[k] // fine: fixed-size array, compiler-checked
}

func trustedHelper(body []byte) byte {
	//3lc:allow nopanic caller ran scanTernaryBody over body first
	return body[5]
}

func constIndex(src []byte) byte {
	return src[0] // want "index into .src. with no len"
}

// capAnchored mirrors the FrameReader scratch idiom: capacity is the
// true bound for re-slicing, so cap() anchors too.
func capAnchored(buf []byte, n int) []byte {
	if cap(buf) < n {
		return nil
	}
	return buf[:n]
}
