// Package detonly exercises the detonly analyzer. This file carries the
// file-level mark: everything in it must be a pure function of inputs
// and seeds.
//
//3lc:det
package detonly

import (
	"math/rand"
	"sort"
	"time"
)

func clock() int64 {
	return time.Now().UnixNano() // want "time.Now reads the wall clock"
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want "time.Since reads the wall clock"
}

func globalRand() int {
	return rand.Intn(10) // want "rand.Intn draws from the global source"
}

func seeded(r *rand.Rand) int {
	return r.Intn(10) // fine: explicitly seeded stream
}

func mapOrder(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // want "map iteration order is randomized"
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func orderFree(m map[int]int) int {
	total := 0
	//3lc:allow detonly summation commutes, order-independent
	for _, v := range m {
		total += v
	}
	return total
}

func sliceRange(xs []int) int {
	t := 0
	for _, x := range xs { // fine: slice iteration is ordered
		t += x
	}
	return t
}
