package lint

import "testing"

// The golden fixtures contain deliberately-introduced violations of each
// contract — an alloc in a //3lc:noalloc kernel, a panic and raw
// indexing in decoders, returned/stored/sent pooled buffers, wall-clock
// and global-rand reads in det code — and the harness fails unless the
// analyzer reports every one (and nothing else). The same fixtures carry
// one //3lc:allow per analyzer, asserted below, so the suppression path
// is exercised everywhere too.

func TestNoAllocGolden(t *testing.T) {
	diags := runGolden(t, "noalloc", NoAlloc)
	if got := countSuppressed(diags, "noalloc"); got != 1 {
		t.Errorf("suppressed noalloc findings = %d, want 1", got)
	}
}

func TestNoPanicGolden(t *testing.T) {
	diags := runGolden(t, "nopanic", NoPanic)
	if got := countSuppressed(diags, "nopanic"); got != 1 {
		t.Errorf("suppressed nopanic findings = %d, want 1", got)
	}
}

func TestPoolSafeGolden(t *testing.T) {
	diags := runGolden(t, "poolsafe", PoolSafe)
	if got := countSuppressed(diags, "poolsafe"); got != 1 {
		t.Errorf("suppressed poolsafe findings = %d, want 1", got)
	}
}

func TestDetOnlyGolden(t *testing.T) {
	diags := runGolden(t, "detonly", DetOnly)
	if got := countSuppressed(diags, "detonly"); got != 1 {
		t.Errorf("suppressed detonly findings = %d, want 1", got)
	}
}

// TestSuiteDisjoint runs the full suite over every fixture at once: each
// analyzer must stay silent on the other analyzers' fixtures (their
// violations are unannotated for it, or out of its scope), so the suite
// composes without cross-talk.
func TestSuiteDisjoint(t *testing.T) {
	for _, dir := range []string{"noalloc", "nopanic", "poolsafe", "detonly"} {
		runGolden(t, dir, All()...)
	}
}

func TestByName(t *testing.T) {
	as, err := ByName("noalloc,detonly")
	if err != nil || len(as) != 2 || as[0] != NoAlloc || as[1] != DetOnly {
		t.Fatalf("ByName(noalloc,detonly) = %v, %v", as, err)
	}
	if _, err := ByName("nosuchrule"); err == nil {
		t.Fatal("ByName(nosuchrule) should fail")
	}
	if _, err := ByName(""); err == nil {
		t.Fatal("ByName of empty list should fail")
	}
}
