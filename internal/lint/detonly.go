package lint

import (
	"go/ast"
	"go/types"
)

// DetOnly guards the code whose outputs must be a pure function of seeds
// and inputs — retry backoff schedules, chaos fault streams, train step
// logic, shard placement. PR-by-PR those paths were deliberately moved
// off wall clocks and shared RNGs (splitmix64 streams, seeded
// tensor.RNG); this analyzer keeps them there. Inside //3lc:det scope it
// reports:
//
//   - time.Now / time.Since / time.Until — wall-clock reads
//   - any call into the global math/rand or math/rand/v2 source
//     (methods on an explicitly seeded *rand.Rand are fine)
//   - ranging over a map — Go randomizes iteration order per run, so
//     any map-order-dependent output is nondeterministic by
//     construction; iterate a sorted key slice instead, or //3lc:allow
//     the loop with a note that its body is order-independent
var DetOnly = &Analyzer{
	Name: "detonly",
	Doc:  "forbid wall-clock, global rand, and map-order dependence in //3lc:det code",
	Run:  runDetOnly,
}

func runDetOnly(p *Pass) error {
	for _, fn := range p.markedFuncs(markDet) {
		checkDetOnly(p, fn)
	}
	return nil
}

func checkDetOnly(p *Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			pkg, name := p.pkgFunc(n)
			switch {
			case pkg == "time" && (name == "Now" || name == "Since" || name == "Until"):
				p.Reportf(n.Pos(), "%s is //3lc:det: time.%s reads the wall clock", funcName(fn), name)
			case pkg == "math/rand" || pkg == "math/rand/v2":
				p.Reportf(n.Pos(), "%s is //3lc:det: rand.%s draws from the global source (use a seeded stream)", funcName(fn), name)
			}
		case *ast.RangeStmt:
			if t := p.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Map); ok {
					p.Reportf(n.Pos(), "%s is //3lc:det: map iteration order is randomized (iterate sorted keys)", funcName(fn))
				}
			}
		}
		return true
	})
}
