package shard

import (
	"testing"

	"threelc/internal/compress"
	"threelc/internal/nn"
	"threelc/internal/opt"
	"threelc/internal/ps"
	"threelc/internal/tenant"
	"threelc/internal/tensor"
)

// benchConfig mirrors the ps package's SteadyStatePushPull workload so
// the tenancy layer's cost is directly comparable: same model scale, same
// codec, same serial decode path.
func benchConfig() ps.Config {
	return ps.Config{
		Scheme:           compress.SchemeThreeLC,
		Opts:             compress.Options{Sparsity: 1.75, ZeroRun: true},
		Workers:          1,
		MinCompressElems: 8,
		Parallelism:      1,
		Optimizer: opt.SGDConfig{
			BaseLR: 0.1, FinalLR: 0.01, Momentum: 0.9, WeightDecay: 1e-4,
			Workers: 1, TotalSteps: 100, WarmupFrac: 0,
		},
	}
}

func benchTierModel(seed uint64) *nn.Model {
	return nn.NewMLP(784, []int{256}, 10, seed)
}

// BenchmarkTenantServicePushPull is the single-tenant parity gate for the
// multi-tenant tier: one job, one shard, driven through its JobHandle —
// the full lane hop, DRR scheduling, and quota accounting — against the
// same workload BenchmarkSteadyStatePushPull runs directly on a ps
// server. The benchcheck speedup rule pins this at >=0.95x of the direct
// path: multi-tenancy must stay out of the single-job hot path.
func BenchmarkTenantServicePushPull(b *testing.B) {
	cfg := benchConfig()
	svc := NewService(Config{Shards: 1}, tenant.NewRegistry(1))
	defer svc.Close()
	global := benchTierModel(1)
	h, err := svc.Admit(1, global, cfg, tenant.Limits{})
	if err != nil {
		b.Fatal(err)
	}
	m := benchTierModel(1)
	m.CopyParamsFrom(global)
	worker := ps.NewWorker(0, m, cfg)

	rng := tensor.NewRNG(31)
	for _, p := range worker.Model.Params() {
		tensor.FillNormal(p.G, 0.01, rng)
	}
	step := func() {
		wires, _ := worker.CompressGrads()
		h.BeginStep()
		sess := h.BeginPush(0)
		if err := sess.Set(wires); err != nil {
			b.Fatal(err)
		}
		if err := sess.End(); err != nil {
			b.Fatal(err)
		}
		pull, _, err := h.FinishStep()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := worker.ApplyPull(pull); err != nil {
			b.Fatal(err)
		}
	}
	// Warm up buffer capacities.
	for i := 0; i < 3; i++ {
		step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step()
	}
}
