package shard

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"threelc/internal/compress"
	"threelc/internal/nn"
	"threelc/internal/opt"
	"threelc/internal/ps"
	"threelc/internal/tenant"
	"threelc/internal/tensor"
)

// sessionDriver is the step surface the multi-tenant tests drive — it is
// satisfied by both *JobHandle (a job on a shared Service) and *Cluster
// (a dedicated tier), which is exactly the equivalence under test.
type sessionDriver interface {
	BeginStep()
	BeginPush(workerID int) ps.PushSession
	FinishStep() ([][]byte, time.Duration, error)
}

// jobSpec is one tenant's training configuration in the isolation tests:
// its own codec, model seed, and data seed, so no two tenants do the
// same work.
type jobSpec struct {
	id     tenant.ID
	scheme compress.Scheme
	opts   compress.Options
	mseed  uint64
	dseed  uint64
}

func (s jobSpec) psConfig(workers, steps int) ps.Config {
	return ps.Config{
		Scheme:           s.scheme,
		Opts:             s.opts,
		Workers:          workers,
		MinCompressElems: 1,
		Parallelism:      1,
		Optimizer:        opt.DefaultSGDConfig(workers, steps),
	}
}

func (s jobSpec) build() *nn.Model {
	return nn.NewMLP(12, []int{16, 10}, 4, s.mseed)
}

// driveJob runs `steps` BSP steps of spec's job against srv and returns
// every step's pull wires (deep-copied) plus the final global weights.
// Safe to call from a non-test goroutine: failures are returned, not
// Fatal'd.
func driveJob(spec jobSpec, cfg ps.Config, global *nn.Model, srv sessionDriver, steps, workers int) ([][][]byte, []float32, error) {
	const in, classes, batch = 12, 4, 6
	ws := make([]*ps.Worker, workers)
	rngs := make([]*tensor.RNG, workers)
	for w := range ws {
		m := spec.build()
		m.CopyParamsFrom(global)
		ws[w] = ps.NewWorker(w, m, cfg)
		rngs[w] = tensor.NewRNG(spec.dseed + uint64(w))
	}

	var pullLog [][][]byte
	for step := 0; step < steps; step++ {
		srv.BeginStep()
		wires := make([][][]byte, workers)
		for w, wk := range ws {
			x := tensor.New(batch, in)
			tensor.FillNormal(x, 1, rngs[w])
			labels := make([]int, batch)
			for i := range labels {
				labels[i] = (step + w + i) % classes
			}
			wk.Model.TrainStep(x, labels)
			wires[w], _ = wk.CompressGrads()
		}
		for w := range ws {
			sess := srv.BeginPush(w)
			if err := sess.Set(wires[w]); err != nil {
				return nil, nil, fmt.Errorf("step %d push %d: %w", step, w, err)
			}
			if err := sess.End(); err != nil {
				return nil, nil, fmt.Errorf("step %d push end %d: %w", step, w, err)
			}
		}
		pulls, _, err := srv.FinishStep()
		if err != nil {
			return nil, nil, fmt.Errorf("step %d finish: %w", step, err)
		}
		cp := make([][]byte, len(pulls))
		for i, p := range pulls {
			cp[i] = append([]byte(nil), p...)
		}
		pullLog = append(pullLog, cp)
		for _, wk := range ws {
			if _, err := wk.ApplyPull(pulls); err != nil {
				return nil, nil, fmt.Errorf("step %d apply: %w", step, err)
			}
		}
	}

	var flat []float32
	for _, p := range global.Params() {
		flat = append(flat, p.W.Data()...)
	}
	return pullLog, flat, nil
}

// tenantSpecs builds n distinct job configurations cycling through the
// codecs with per-tenant seeds.
func tenantSpecs(n int) []jobSpec {
	specs := make([]jobSpec, n)
	for i := range specs {
		c := allCodecs[i%len(allCodecs)]
		specs[i] = jobSpec{
			id:     tenant.ID(i + 1),
			scheme: c.s,
			opts:   c.o,
			mseed:  uint64(7 + i),
			dseed:  uint64(1000 + 100*i),
		}
	}
	return specs
}

// TestTenantsIsolatedBitIdentical is the multi-tenant isolation gate: N
// concurrent tenants — different codecs, different model and data seeds
// — training over ONE shared shard tier must each produce byte-identical
// pull wires every step and bit-identical final weights to the same job
// run alone on a dedicated tier of the same shape. Fair scheduling may
// interleave the tenants' decode work arbitrarily; it must never leak
// one job's arithmetic into another's.
func TestTenantsIsolatedBitIdentical(t *testing.T) {
	const tenants, steps, workers, shards = 4, 4, 3, 2
	specs := tenantSpecs(tenants)

	type outcome struct {
		pulls [][][]byte
		w     []float32
		err   error
	}

	// Solo baselines: each job on its own dedicated tier.
	solo := make([]outcome, tenants)
	for i, spec := range specs {
		cfg := spec.psConfig(workers, steps)
		global := spec.build()
		cl := mustCluster(t, global, cfg, Config{Shards: shards})
		solo[i].pulls, solo[i].w, solo[i].err = driveJob(spec, cfg, global, cl, steps, workers)
		cl.Close()
		if solo[i].err != nil {
			t.Fatalf("tenant %d solo: %v", spec.id, solo[i].err)
		}
	}

	// Shared tier: all jobs admitted to one Service, driven concurrently.
	svc := NewService(Config{Shards: shards}, tenant.NewRegistry(tenants))
	defer svc.Close()
	shared := make([]outcome, tenants)
	var wg sync.WaitGroup
	for i, spec := range specs {
		cfg := spec.psConfig(workers, steps)
		global := spec.build()
		h, err := svc.Admit(spec.id, global, cfg, tenant.Limits{})
		if err != nil {
			t.Fatalf("admit tenant %d: %v", spec.id, err)
		}
		wg.Add(1)
		go func(i int, spec jobSpec) {
			defer wg.Done()
			shared[i].pulls, shared[i].w, shared[i].err = driveJob(spec, cfg, global, h, steps, workers)
		}(i, spec)
	}
	wg.Wait()

	for i, spec := range specs {
		if shared[i].err != nil {
			t.Fatalf("tenant %d shared: %v", spec.id, shared[i].err)
		}
		for s := range solo[i].pulls {
			for k := range solo[i].pulls[s] {
				if !bytes.Equal(solo[i].pulls[s][k], shared[i].pulls[s][k]) {
					t.Fatalf("tenant %d step %d tensor %d: pull wires differ (%d vs %d bytes)",
						spec.id, s, k, len(solo[i].pulls[s][k]), len(shared[i].pulls[s][k]))
				}
			}
		}
		for k := range solo[i].w {
			if solo[i].w[k] != shared[i].w[k] {
				t.Fatalf("tenant %d final weight %d differs: %v vs %v", spec.id, k, solo[i].w[k], shared[i].w[k])
			}
		}
		// Per-tenant accounting: every step and its traffic must be
		// attributed to the tenant that caused it.
		ten, err := svc.Registry().Get(spec.id)
		if err != nil {
			t.Fatalf("tenant %d stats: %v", spec.id, err)
		}
		snap := ten.Stats.Snapshot()
		if snap.Steps != uint64(steps) {
			t.Errorf("tenant %d charged %d steps, ran %d", spec.id, snap.Steps, steps)
		}
		if snap.PushBytes == 0 || snap.PullBytes == 0 {
			t.Errorf("tenant %d has zero traffic stats (push %d, pull %d)", spec.id, snap.PushBytes, snap.PullBytes)
		}
	}
}

// TestServiceAdmissionReject pins admission control at the tier surface:
// a full registry and a duplicate id must reject with the sentinel
// errors, and a rejected admission must leave no residue (the same id
// admits after a slot frees).
func TestServiceAdmissionReject(t *testing.T) {
	specs := tenantSpecs(3)
	cfg := specs[0].psConfig(1, 4)
	svc := NewService(Config{Shards: 2}, tenant.NewRegistry(2))
	defer svc.Close()

	if _, err := svc.Admit(1, specs[0].build(), cfg, tenant.Limits{}); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Admit(1, specs[0].build(), cfg, tenant.Limits{}); !errors.Is(err, tenant.ErrDuplicate) {
		t.Fatalf("duplicate admit err = %v, want ErrDuplicate", err)
	}
	if _, err := svc.Admit(2, specs[1].build(), cfg, tenant.Limits{}); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Admit(3, specs[2].build(), cfg, tenant.Limits{}); !errors.Is(err, tenant.ErrAdmitLimit) {
		t.Fatalf("over-capacity admit err = %v, want ErrAdmitLimit", err)
	}
	if _, err := svc.Retire(2); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Retire(2); !errors.Is(err, tenant.ErrUnknown) {
		t.Fatalf("double retire err = %v, want ErrUnknown", err)
	}
	if _, err := svc.Admit(3, specs[2].build(), cfg, tenant.Limits{}); err != nil {
		t.Fatalf("admit after retire freed a slot: %v", err)
	}
	if _, ok := svc.Handle(2); ok {
		t.Fatal("retired tenant still has a handle")
	}
}

// TestServiceQuotaExhaustion pins quota enforcement on the live step
// path: a step quota fails the step that exceeds it at the FinishStep
// barrier, and a byte quota fails once the tenant's traffic passes it —
// both with tenant.ErrQuota, both leaving other tenants untouched.
func TestServiceQuotaExhaustion(t *testing.T) {
	const workers = 2
	cases := []struct {
		name     string
		limits   tenant.Limits
		failStep int // 1-based step whose FinishStep must fail; 0 = none in budget
	}{
		{name: "step quota", limits: tenant.Limits{MaxSteps: 2}, failStep: 3},
		{name: "byte quota", limits: tenant.Limits{MaxBytes: 64}, failStep: 1},
		{name: "roomy quotas pass", limits: tenant.Limits{MaxSteps: 100, MaxBytes: 1 << 30}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := tenantSpecs(1)[0]
			cfg := spec.psConfig(workers, 4)
			svc := NewService(Config{Shards: 2}, nil)
			defer svc.Close()
			global := spec.build()
			h, err := svc.Admit(spec.id, global, cfg, tc.limits)
			if err != nil {
				t.Fatal(err)
			}
			steps := 3
			_, _, err = driveJob(spec, cfg, global, h, steps, workers)
			if tc.failStep == 0 {
				if err != nil {
					t.Fatalf("within quota: %v", err)
				}
				return
			}
			if !errors.Is(err, tenant.ErrQuota) {
				t.Fatalf("err = %v, want ErrQuota", err)
			}
			if want := fmt.Sprintf("step %d finish", tc.failStep-1); !strings.Contains(err.Error(), want) {
				t.Fatalf("quota failed at wrong step: %v (want %s)", err, want)
			}
		})
	}
}

// TestServiceTenantEpochsDistinguishIncarnations pins that retiring and
// re-admitting the same tenant id mints a new epoch, so frames from the
// old incarnation are rejectable at the wire boundary.
func TestServiceTenantEpochsDistinguishIncarnations(t *testing.T) {
	spec := tenantSpecs(1)[0]
	cfg := spec.psConfig(1, 2)
	svc := NewService(Config{Shards: 1}, nil)
	defer svc.Close()
	h1, err := svc.Admit(spec.id, spec.build(), cfg, tenant.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	ep1 := h1.Tenant().Epoch
	if _, err := svc.Retire(spec.id); err != nil {
		t.Fatal(err)
	}
	h2, err := svc.Admit(spec.id, spec.build(), cfg, tenant.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if h2.Tenant().Epoch == ep1 {
		t.Fatalf("re-admission reused epoch %d", ep1)
	}
	if _, err := svc.Registry().Check(spec.id, ep1); !errors.Is(err, tenant.ErrEpoch) {
		t.Fatalf("stale epoch check err = %v, want ErrEpoch", err)
	}
}
