package shard

import (
	"fmt"
	"testing"
)

func TestPackBySizeDeterministicAndBalanced(t *testing.T) {
	// Deliberately adversarial sizes: a few giants, many tie-sized smalls.
	sizes := []int{4096, 12, 12, 12, 96000, 4096, 640, 640, 31, 31, 31, 128, 50000, 7}
	for _, shards := range []int{1, 2, 3, 4, 8} {
		a := PackBySize(sizes, shards)
		b := PackBySize(append([]int(nil), sizes...), shards)
		if err := a.Validate(len(sizes)); err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		for i := range a.ShardOf {
			if a.ShardOf[i] != b.ShardOf[i] {
				t.Fatalf("shards=%d: placement differs across identical runs at tensor %d", shards, i)
			}
		}
		// LPT guarantee: max load <= (4/3) * OPT, and OPT >= max(total/m, maxSize).
		total, maxSize := 0, 0
		for _, s := range sizes {
			total += s
			if s > maxSize {
				maxSize = s
			}
		}
		optLB := total / shards
		if maxSize > optLB {
			optLB = maxSize
		}
		loads := a.Loads(sizes)
		for s, l := range loads {
			if float64(l) > 4.0/3.0*float64(optLB)+1 {
				t.Errorf("shards=%d: shard %d load %d exceeds 4/3 of lower bound %d (loads %v)",
					shards, s, l, optLB, loads)
			}
		}
	}
}

func TestAssignSamePlacementAcrossRuns(t *testing.T) {
	names := make([]string, 20)
	sizes := make([]int, 20)
	for i := range names {
		names[i] = fmt.Sprintf("block%d.conv.weight", i)
		sizes[i] = 100 + 37*i%11*1000
	}
	a := Assign(names, sizes, 4)
	b := Assign(names, sizes, 4)
	if a.Hash() != b.Hash() {
		t.Fatal("same tensor set produced different placements across runs")
	}
	// Unknown sizes fall back to the consistent-hash ring — still
	// deterministic.
	h1 := Assign(names, nil, 4).Hash()
	h2 := Assign(names, nil, 4).Hash()
	if h1 != h2 {
		t.Fatal("hash-fallback placement differs across runs")
	}
}

func TestRingRebalanceBounded(t *testing.T) {
	const keys = 2000
	names := make([]string, keys)
	for i := range names {
		names[i] = fmt.Sprintf("tensor-%d-weight", i)
	}
	for _, old := range []int{2, 4, 8} {
		before := NewRing(old, DefaultVnodes).AssignByName(names)
		after := NewRing(old+1, DefaultVnodes).AssignByName(names)
		moved := 0
		for i := range names {
			if before.ShardOf[i] != after.ShardOf[i] {
				moved++
				// Consistent hashing's defining property: growing the ring
				// only moves keys onto the NEW shard — existing shards
				// never trade keys with each other.
				if after.ShardOf[i] != old {
					t.Fatalf("old=%d: key %q moved shard %d -> %d, not to the new shard %d",
						old, names[i], before.ShardOf[i], after.ShardOf[i], old)
				}
			}
		}
		// Expected movement is keys/(old+1); allow 2x for hash variance.
		bound := 2 * keys / (old + 1)
		if moved > bound {
			t.Errorf("old=%d: %d of %d keys moved, bound %d", old, moved, keys, bound)
		}
		if moved == 0 {
			t.Errorf("old=%d: adding a shard moved nothing (ring inert?)", old)
		}
	}
}

func TestAssignmentHashDetectsDrift(t *testing.T) {
	a := Assignment{NumShards: 3, ShardOf: []int{0, 1, 2, 0}}
	b := Assignment{NumShards: 3, ShardOf: []int{0, 1, 2, 1}}
	c := Assignment{NumShards: 4, ShardOf: []int{0, 1, 2, 0}}
	if a.Hash() == b.Hash() {
		t.Error("placement change not reflected in hash")
	}
	if a.Hash() == c.Hash() {
		t.Error("shard-count change not reflected in hash")
	}
}

func TestValidateRejectsBrokenAssignments(t *testing.T) {
	if err := (Assignment{NumShards: 2, ShardOf: []int{0, 2}}).Validate(2); err == nil {
		t.Error("out-of-range shard id accepted")
	}
	if err := (Assignment{NumShards: 2, ShardOf: []int{0}}).Validate(2); err == nil {
		t.Error("short assignment accepted")
	}
	if err := (Assignment{NumShards: 3, ShardOf: []int{0, 0, 0, 0}}).Validate(4); err == nil {
		t.Error("empty shard accepted despite enough tensors")
	}
	if err := (Assignment{NumShards: 4, ShardOf: []int{1, 2}}).Validate(2); err != nil {
		t.Errorf("fewer tensors than shards must allow empty shards: %v", err)
	}
}
