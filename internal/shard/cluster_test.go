package shard

import (
	"bytes"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"threelc/internal/compress"
	"threelc/internal/nn"
	"threelc/internal/opt"
	"threelc/internal/ps"
	"threelc/internal/tensor"
)

// allCodecs is one configuration per registered wire scheme — the
// equivalence tests must hold for every codec, since each has its own
// error-accumulation and seeding behavior.
var allCodecs = []struct {
	name string
	s    compress.Scheme
	o    compress.Options
}{
	{"float32", compress.SchemeNone, compress.Options{}},
	{"int8", compress.SchemeInt8, compress.Options{}},
	{"3lc", compress.SchemeThreeLC, compress.Options{Sparsity: 1.5, ZeroRun: true}},
	{"stoch3", compress.SchemeStoch3QE, compress.Options{Seed: 9}},
	{"mqe1bit", compress.SchemeMQE1Bit, compress.Options{}},
	{"topk", compress.SchemeTopK, compress.Options{Fraction: 0.3, Seed: 9}},
	{"localsteps", compress.SchemeLocalSteps, compress.Options{Interval: 2}},
	{"roundrobin", compress.SchemeRoundRobin, compress.Options{Parts: 3}},
	// Entropy-wrapped contexts emit SchemeEntropy wires end to end: the
	// sharded tier must aggregate them byte-identically to the single
	// server like any base scheme.
	{"3lc+huffman", compress.SchemeThreeLC, compress.Options{Sparsity: 1.5, ZeroRun: true, Entropy: compress.EntropyHuffman}},
	{"3lc+lz", compress.SchemeThreeLC, compress.Options{Sparsity: 1.5, ZeroRun: true, Entropy: compress.EntropyLZ}},
}

func TestAllCodecsCoverRegistry(t *testing.T) {
	covered := map[compress.Scheme]bool{}
	for _, c := range allCodecs {
		if c.o.Entropy != compress.EntropyOff {
			covered[compress.SchemeEntropy] = true
			continue
		}
		covered[c.s] = true
	}
	for _, s := range compress.RegisteredSchemes() {
		if !covered[s] {
			t.Errorf("registered scheme %v has no sharded-equivalence coverage", s)
		}
	}
}

// mustCluster builds a cluster or fails the test; the equivalence tests
// all run over placements that NewCluster accepts by construction.
func mustCluster(t testing.TB, g *nn.Model, cfg ps.Config, sc Config) *Cluster {
	t.Helper()
	cl, err := NewCluster(g, cfg, sc)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	return cl
}

// stepServer is the driver-facing surface shared by ps.Server and Cluster.
type stepServer interface {
	BeginStep()
	AddPush(workerID int, wires [][]byte) (time.Duration, error)
	FinishStep() ([][]byte, time.Duration, error)
}

// runPS drives `steps` BSP steps of a small MLP against srv-built servers
// and returns every step's pull wire set (deep-copied) plus the final
// global weights.
func runPS(t *testing.T, cfg ps.Config, steps, workers int,
	mkServer func(global *nn.Model) stepServer) ([][][]byte, []float32) {
	t.Helper()
	const in, classes, batch = 12, 4, 6
	build := func() *nn.Model { return nn.NewMLP(in, []int{16, 10}, classes, 7) }
	global := build()
	srv := mkServer(global)

	ws := make([]*ps.Worker, workers)
	rngs := make([]*tensor.RNG, workers)
	for w := range ws {
		m := build()
		m.CopyParamsFrom(global)
		ws[w] = ps.NewWorker(w, m, cfg)
		rngs[w] = tensor.NewRNG(1000 + uint64(w))
	}

	var pullLog [][][]byte
	for step := 0; step < steps; step++ {
		srv.BeginStep()
		wires := make([][][]byte, workers)
		for w, wk := range ws {
			x := tensor.New(batch, in)
			tensor.FillNormal(x, 1, rngs[w])
			labels := make([]int, batch)
			for i := range labels {
				labels[i] = (step + w + i) % classes
			}
			wk.Model.TrainStep(x, labels)
			wires[w], _ = wk.CompressGrads()
		}
		for w := range ws {
			if _, err := srv.AddPush(w, wires[w]); err != nil {
				t.Fatalf("step %d push %d: %v", step, w, err)
			}
		}
		pulls, _, err := srv.FinishStep()
		if err != nil {
			t.Fatalf("step %d finish: %v", step, err)
		}
		cp := make([][]byte, len(pulls))
		for i, p := range pulls {
			cp[i] = append([]byte(nil), p...)
		}
		pullLog = append(pullLog, cp)
		for _, wk := range ws {
			if _, err := wk.ApplyPull(pulls); err != nil {
				t.Fatalf("step %d apply: %v", step, err)
			}
		}
	}

	var flat []float32
	for _, p := range global.Params() {
		flat = append(flat, p.W.Data()...)
	}
	return pullLog, flat
}

// TestShardedEquivalentToSinglePS is the end-to-end equivalence gate: for
// every registered codec, a multi-shard cluster must produce byte-
// identical pull wires every step and bit-identical final model state to
// the single parameter server.
func TestShardedEquivalentToSinglePS(t *testing.T) {
	const steps, workers = 4, 3
	for _, codec := range allCodecs {
		for _, shards := range []int{2, 4} {
			t.Run(fmt.Sprintf("%s/shards=%d", codec.name, shards), func(t *testing.T) {
				cfg := ps.Config{
					Scheme:           codec.s,
					Opts:             codec.o,
					Workers:          workers,
					MinCompressElems: 1,
					Parallelism:      1,
					Optimizer:        opt.DefaultSGDConfig(workers, steps),
				}
				singlePulls, singleW := runPS(t, cfg, steps, workers, func(g *nn.Model) stepServer {
					return ps.NewServer(g, cfg)
				})
				var cl *Cluster
				shardPulls, shardW := runPS(t, cfg, steps, workers, func(g *nn.Model) stepServer {
					cl = mustCluster(t, g, cfg, Config{Shards: shards})
					return cl
				})
				defer cl.Close()

				for s := range singlePulls {
					for i := range singlePulls[s] {
						if !bytes.Equal(singlePulls[s][i], shardPulls[s][i]) {
							t.Fatalf("step %d tensor %d: pull wires differ (%d vs %d bytes)",
								s, i, len(singlePulls[s][i]), len(shardPulls[s][i]))
						}
					}
				}
				if len(singleW) != len(shardW) {
					t.Fatalf("weight count mismatch: %d vs %d", len(singleW), len(shardW))
				}
				for i := range singleW {
					if singleW[i] != shardW[i] {
						t.Fatalf("final weight %d differs: %v vs %v", i, singleW[i], shardW[i])
					}
				}
			})
		}
	}
}

// tensorStreamAdapter routes whole-set pushes through the per-tensor
// ingestion API (AddPushTensor + EndPush), so the existing equivalence
// driver exercises the overlapped-pipeline entry points.
type tensorStreamAdapter struct{ *Cluster }

func (a tensorStreamAdapter) AddPush(workerID int, wires [][]byte) (time.Duration, error) {
	for gi, wire := range wires {
		if err := a.Cluster.AddPushTensor(workerID, gi, wire); err != nil {
			return 0, err
		}
	}
	return 0, a.Cluster.EndPush()
}

// TestClusterPerTensorPushEquivalent pins the per-tensor streamed
// ingestion against the whole-set AddPush driver: byte-identical pull
// wires every step and bit-identical final weights, across shard counts.
func TestClusterPerTensorPushEquivalent(t *testing.T) {
	const steps, workers = 4, 3
	for _, codec := range []int{0, 2} { // float32 and 3lc from allCodecs
		c := allCodecs[codec]
		for _, shards := range []int{1, 3} {
			t.Run(fmt.Sprintf("%s/shards=%d", c.name, shards), func(t *testing.T) {
				cfg := ps.Config{
					Scheme:           c.s,
					Opts:             c.o,
					Workers:          workers,
					MinCompressElems: 1,
					Parallelism:      1,
					Optimizer:        opt.DefaultSGDConfig(workers, steps),
				}
				var wholeCl *Cluster
				wholePulls, wholeW := runPS(t, cfg, steps, workers, func(g *nn.Model) stepServer {
					wholeCl = mustCluster(t, g, cfg, Config{Shards: shards})
					return wholeCl
				})
				defer wholeCl.Close()
				var streamCl *Cluster
				streamPulls, streamW := runPS(t, cfg, steps, workers, func(g *nn.Model) stepServer {
					streamCl = mustCluster(t, g, cfg, Config{Shards: shards})
					return tensorStreamAdapter{streamCl}
				})
				defer streamCl.Close()

				for s := range wholePulls {
					for i := range wholePulls[s] {
						if !bytes.Equal(wholePulls[s][i], streamPulls[s][i]) {
							t.Fatalf("step %d tensor %d: pull wires differ", s, i)
						}
					}
				}
				for i := range wholeW {
					if wholeW[i] != streamW[i] {
						t.Fatalf("final weight %d differs: %v vs %v", i, wholeW[i], streamW[i])
					}
				}
			})
		}
	}
}

// TestClusterMoreShardsThanTensors exercises empty shards (the assignment
// leaves high shard ids without tensors when the model is small).
func TestClusterMoreShardsThanTensors(t *testing.T) {
	cfg := ps.Config{
		Scheme:           compress.SchemeThreeLC,
		Opts:             compress.Options{Sparsity: 1.5, ZeroRun: true},
		Workers:          2,
		MinCompressElems: 1,
		Parallelism:      1,
		Optimizer:        opt.DefaultSGDConfig(2, 3),
	}
	_, singleW := runPS(t, cfg, 3, 2, func(g *nn.Model) stepServer { return ps.NewServer(g, cfg) })
	var cl *Cluster
	_, shardW := runPS(t, cfg, 3, 2, func(g *nn.Model) stepServer {
		cl = mustCluster(t, g, cfg, Config{Shards: 32})
		return cl
	})
	defer cl.Close()
	for i := range singleW {
		if singleW[i] != shardW[i] {
			t.Fatalf("weight %d differs with 32 shards: %v vs %v", i, singleW[i], shardW[i])
		}
	}
}

// TestClusterStragglerRetryRecovers injects a per-step delay into one
// shard so the enqueue path hits the timeout+retry logic, and checks the
// run still completes with state identical to an undelayed single server —
// retries and dedupe must not perturb accumulation order.
func TestClusterStragglerRetryRecovers(t *testing.T) {
	cfg := ps.Config{
		Scheme:           compress.SchemeInt8,
		Workers:          3,
		MinCompressElems: 1,
		Parallelism:      1,
		Optimizer:        opt.DefaultSGDConfig(3, 3),
	}
	_, singleW := runPS(t, cfg, 3, 3, func(g *nn.Model) stepServer { return ps.NewServer(g, cfg) })
	var cl *Cluster
	_, shardW := runPS(t, cfg, 3, 3, func(g *nn.Model) stepServer {
		cl = mustCluster(t, g, cfg, Config{
			Shards:     2,
			QueueDepth: 1,
			Timeout:    2 * time.Millisecond,
			Retries:    10,
			SlowShard: func(shard, step int) {
				if shard == 1 {
					time.Sleep(15 * time.Millisecond)
				}
			},
		})
		return cl
	})
	defer cl.Close()
	for i := range singleW {
		if singleW[i] != shardW[i] {
			t.Fatalf("weight %d differs under straggler retries: %v vs %v", i, singleW[i], shardW[i])
		}
	}
}

// TestClusterStragglerExceedsRetryBudget pins the failure mode: a shard
// wedged for longer than the whole retry schedule turns into an error, not
// a hang.
func TestClusterStragglerExceedsRetryBudget(t *testing.T) {
	cfg := ps.Config{
		Scheme:           compress.SchemeInt8,
		Workers:          2,
		MinCompressElems: 1,
		Parallelism:      1,
		Optimizer:        opt.DefaultSGDConfig(2, 1),
	}
	global := nn.NewMLP(12, []int{16, 10}, 4, 7)
	cl := mustCluster(t, global, cfg, Config{
		Shards:     2,
		QueueDepth: 1,
		Timeout:    time.Millisecond,
		Retries:    1,
		SlowShard: func(shard, step int) {
			if shard == 1 {
				time.Sleep(200 * time.Millisecond)
			}
		},
	})
	defer cl.Close()

	m := nn.NewMLP(12, []int{16, 10}, 4, 7)
	m.CopyParamsFrom(global)
	wk := ps.NewWorker(0, m, cfg)
	rng := tensor.NewRNG(3)
	x := tensor.New(6, 12)
	tensor.FillNormal(x, 1, rng)
	wk.Model.TrainStep(x, []int{0, 1, 2, 3, 0, 1})
	wires, _ := wk.CompressGrads()

	cl.BeginStep()
	var firstErr error
	for w := 0; w < 4 && firstErr == nil; w++ {
		_, firstErr = cl.AddPush(0, wires)
	}
	if firstErr == nil {
		_, _, firstErr = cl.FinishStep()
	}
	if firstErr == nil {
		t.Fatal("wedged shard did not surface an error")
	}
	if !strings.Contains(firstErr.Error(), "straggler") {
		t.Fatalf("error %q does not identify the straggler path", firstErr)
	}
}

// TestClusterThroughputScalesWithShards measures aggregate push/pull
// round-trip throughput at 1 vs 4 shards with each shard pinned to a
// serial codec (modelling one single-core PS node per shard). Gated on
// GOMAXPROCS>=4: on smaller hosts sharding cannot add CPU and the test
// skips (the -exp shard bench prints the same measurement for eyeballing).
func TestClusterThroughputScalesWithShards(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("GOMAXPROCS=%d < 4: shard scaling needs spare cores", runtime.GOMAXPROCS(0))
	}
	if testing.Short() {
		t.Skip("timing measurement")
	}
	const workers, steps = 2, 12
	stepsPerSec := func(shards int) float64 {
		cfg := ps.Config{
			Scheme:           compress.SchemeThreeLC,
			Opts:             compress.Options{Sparsity: 1.75, ZeroRun: true},
			Workers:          workers,
			MinCompressElems: 1,
			Parallelism:      1,
			Optimizer:        opt.DefaultSGDConfig(workers, steps),
		}
		global := nn.NewMLP(256, []int{512, 512, 512, 512}, 32, 7)
		cl := mustCluster(t, global, cfg, Config{Shards: shards})
		defer cl.Close()
		wires := make([][][]byte, workers)
		for w := 0; w < workers; w++ {
			m := nn.NewMLP(256, []int{512, 512, 512, 512}, 32, 7)
			m.CopyParamsFrom(global)
			wk := ps.NewWorker(w, m, cfg)
			rng := tensor.NewRNG(uint64(w) + 5)
			x := tensor.New(4, 256)
			tensor.FillNormal(x, 1, rng)
			wk.Model.TrainStep(x, []int{0, 1, 2, 3})
			wires[w], _ = wk.CompressGrads()
		}
		// Warm up buffer capacities, then measure.
		for i := 0; i < 2; i++ {
			cl.BeginStep()
			for w := 0; w < workers; w++ {
				cl.AddPush(w, wires[w])
			}
			if _, _, err := cl.FinishStep(); err != nil {
				t.Fatal(err)
			}
		}
		start := time.Now()
		for i := 0; i < steps; i++ {
			cl.BeginStep()
			for w := 0; w < workers; w++ {
				cl.AddPush(w, wires[w])
			}
			if _, _, err := cl.FinishStep(); err != nil {
				t.Fatal(err)
			}
		}
		return float64(steps) / time.Since(start).Seconds()
	}
	one := stepsPerSec(1)
	four := stepsPerSec(4)
	t.Logf("steps/sec: 1 shard %.1f, 4 shards %.1f (%.2fx)", one, four, four/one)
	if four < 1.3*one {
		t.Errorf("4-shard throughput %.1f steps/s is not >=1.3x the 1-shard %.1f", four, one)
	}
}
