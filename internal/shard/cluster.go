package shard

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"threelc/internal/nn"
	"threelc/internal/ps"
)

// Config tunes the sharded tier and its asynchronous push/pull pipeline.
type Config struct {
	// Shards is the parameter-server shard count. Zero or one means a
	// single shard (still running behind the async pipeline, so the two
	// paths share every line of code).
	Shards int
	// QueueDepth is the per-shard outstanding-request budget: how many
	// begin/push/finish requests a shard may have queued before the
	// pipeline applies backpressure. Zero means DefaultQueueDepth.
	QueueDepth int
	// Window caps how many per-shard requests one driver call keeps in
	// flight simultaneously (the async pipeline's in-flight window). Zero
	// means "all shards at once".
	Window int
	// Timeout is how long one enqueue attempt waits on a saturated shard
	// queue before the straggler-retry logic kicks in. Zero means
	// DefaultTimeout.
	Timeout time.Duration
	// Retries is how many times a timed-out enqueue is retried, each
	// attempt waiting twice as long as the last (a straggling shard —
	// e.g. one lagging under stale-synchronous emulation — usually just
	// needs more time; a dead one should fail fast). Zero means
	// DefaultRetries.
	Retries int
	// Assignment overrides the tensor placement. Nil computes the default
	// size-balanced packing (Assign) over the model's tensors.
	Assignment *Assignment
	// SlowShard, if non-nil, is invoked by shard s's service goroutine
	// before it processes each step's first request — a test hook that
	// emulates a straggling shard so the timeout+retry path is exercised
	// deterministically.
	SlowShard func(shard, step int)
}

// Pipeline defaults.
const (
	DefaultQueueDepth = 16
	DefaultTimeout    = 5 * time.Second
	DefaultRetries    = 3
)

func (c Config) queueDepth() int {
	if c.QueueDepth > 0 {
		return c.QueueDepth
	}
	return DefaultQueueDepth
}

func (c Config) timeout() time.Duration {
	if c.Timeout > 0 {
		return c.Timeout
	}
	return DefaultTimeout
}

func (c Config) retries() int {
	if c.Retries > 0 {
		return c.Retries
	}
	return DefaultRetries
}

// Cluster is a sharded parameter-server tier over one global model: shard
// s owns the tensors Assignment.Tensors(s), runs a ps sub-server (with the
// zero-allocation codec pool) for them on its own service goroutine, and
// receives work through a bounded request queue. The driver API mirrors
// ps.Server — BeginStep / AddPush / FinishStep — so the training loop can
// switch between the single server and the sharded tier freely:
//
//   - BeginStep and AddPush are asynchronous: they enqueue per-shard
//     requests (splitting each worker's wire set by placement) and return
//     without waiting for the shards to process them. Shards therefore
//     decode worker w's push while the driver is still enqueuing worker
//     w+1's — the push pipeline.
//   - FinishStep is the step barrier: it waits for every shard to drain
//     its queue, apply its optimizer slice, and compress its pull wires,
//     then reassembles the shards' pulls into the full-model wire set.
//
// Determinism: pushes are enqueued in worker order and each shard services
// its queue FIFO, so per-tensor gradient accumulation happens in exactly
// the order the single server uses — the sharded model state is
// byte-identical to the single-PS state for every codec (the equivalence
// tests pin this). The straggler retry in send() only re-attempts enqueues
// that did NOT succeed, so every request reaches its shard at most once
// and in driver order; retries can delay a step but never reorder or
// duplicate work within it.
//
// Like ps.Server, a Cluster's driver methods are not safe for concurrent
// use; the concurrency lives behind the queues.
type Cluster struct {
	asn   Assignment
	cfg   Config
	nodes []*node
	param int   // full-model tensor count
	local []int // global tensor index -> shard-local index

	step  int
	pull  [][]byte // reassembled full pull set, recycled across steps
	sem   chan struct{}
	began bool
}

// node is one shard: a ps sub-server plus its service goroutine state.
type node struct {
	id  int
	srv *ps.Server
	idx []int // global tensor indices owned, ascending

	reqs chan request
	subs sync.Pool // *[]([]byte) scratch for split wire sets

	// Service-goroutine state (touched only by run()).
	step      int
	decodeDur time.Duration
	err       error
	slow      func(shard, step int)
}

type reqKind uint8

const (
	reqBegin reqKind = iota + 1
	reqPush
	reqPushTensor
	reqPushEnd
	reqFinish
)

type request struct {
	kind   reqKind
	step   int
	worker int
	tensor int         // shard-local tensor index (reqPushTensor)
	wire   []byte      // single tensor wire (reqPushTensor); aliases the caller's buffer
	wires  *[][]byte   // sub wire set (reqPush); returned to the node pool after use
	done   chan result // reqFinish only
}

type result struct {
	pulls [][]byte
	dur   time.Duration
	err   error
}

// NewCluster builds the sharded tier over model. The placement defaults to
// size-balanced packing of the model's tensors (by byte size) across
// cfg.Shards shards; psCfg configures each shard's codec and optimizer
// exactly as it would a single ps.Server. Callers must Close the cluster
// to stop the shard goroutines.
func NewCluster(model *nn.Model, psCfg ps.Config, cfg Config) *Cluster {
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	params := model.Params()
	asn := defaultAssignment(params, cfg)
	if err := asn.Validate(len(params)); err != nil {
		panic(err)
	}

	c := &Cluster{asn: asn, cfg: cfg, param: len(params)}
	c.pull = make([][]byte, len(params))
	c.local = make([]int, len(params))
	for s := 0; s < cfg.Shards; s++ {
		for k, gi := range asn.Tensors(s) {
			c.local[gi] = k
		}
	}
	window := cfg.Window
	if window <= 0 || window > cfg.Shards {
		window = cfg.Shards
	}
	c.sem = make(chan struct{}, window)

	for s := 0; s < cfg.Shards; s++ {
		idx := asn.Tensors(s)
		sub := make([]*nn.Param, len(idx))
		for k, gi := range idx {
			sub[k] = params[gi]
		}
		n := &node{
			id:   s,
			srv:  ps.NewSubServer(sub, idx, psCfg),
			idx:  idx,
			reqs: make(chan request, cfg.queueDepth()),
			slow: cfg.SlowShard,
		}
		n.subs.New = func() any {
			b := make([][]byte, len(idx))
			return &b
		}
		c.nodes = append(c.nodes, n)
		go n.run()
	}
	return c
}

// defaultAssignment resolves cfg.Assignment or computes the size-balanced
// default over the model's tensor byte sizes.
func defaultAssignment(params []*nn.Param, cfg Config) Assignment {
	if cfg.Assignment != nil {
		return *cfg.Assignment
	}
	names := make([]string, len(params))
	sizes := make([]int, len(params))
	for i, p := range params {
		names[i] = p.Name
		sizes[i] = p.W.Len() * 4
	}
	return Assign(names, sizes, cfg.Shards)
}

// ForModel computes the default (size-balanced, deterministic) placement
// of model's tensors across `shards` shards — the one NewCluster uses.
// Workers and the server tier each call this on their own model replica
// and arrive at the same placement; Assignment.Hash is exchanged in the
// sharded transport handshake to verify that.
func ForModel(model *nn.Model, shards int) Assignment {
	return defaultAssignment(model.Params(), Config{Shards: shards})
}

// SubServers builds one ps sub-server per shard over model under the given
// placement — the building blocks for a multi-process deployment where
// each shard runs behind its own transport listener (transport.ShardServer).
func SubServers(model *nn.Model, psCfg ps.Config, asn Assignment) []*ps.Server {
	params := model.Params()
	if err := asn.Validate(len(params)); err != nil {
		panic(err)
	}
	out := make([]*ps.Server, asn.NumShards)
	for s := range out {
		idx := asn.Tensors(s)
		sub := make([]*nn.Param, len(idx))
		for k, gi := range idx {
			sub[k] = params[gi]
		}
		out[s] = ps.NewSubServer(sub, idx, psCfg)
	}
	return out
}

// Assignment returns the tensor placement in use.
func (c *Cluster) Assignment() Assignment { return c.asn }

// NumShards returns the shard count.
func (c *Cluster) NumShards() int { return c.asn.NumShards }

// send enqueues req on shard n with the straggler timeout+retry policy:
// each attempt waits twice as long as the previous, so a shard that is
// merely slow (stale-sync lag, GC pause) gets absorbed while a wedged one
// turns into an error after cfg.Retries attempts.
func (c *Cluster) send(n *node, req request) error {
	wait := c.cfg.timeout()
	for attempt := 0; ; attempt++ {
		select {
		case n.reqs <- req:
			return nil
		default:
		}
		if attempt >= c.cfg.retries() {
			return fmt.Errorf("shard: shard %d queue full after %d attempts (straggler exceeded retry budget)",
				n.id, attempt+1)
		}
		t := time.NewTimer(wait)
		select {
		case n.reqs <- req:
			t.Stop()
			return nil
		case <-t.C:
			wait *= 2
		}
	}
}

// broadcast sends one request per shard (built by mk) with at most
// `window` sends in flight, collecting the first error.
func (c *Cluster) broadcast(mk func(n *node) request) error {
	var wg sync.WaitGroup
	errs := make([]error, len(c.nodes))
	for i, n := range c.nodes {
		c.sem <- struct{}{}
		wg.Add(1)
		go func(i int, n *node) {
			defer func() { <-c.sem; wg.Done() }()
			errs[i] = c.send(n, mk(n))
		}(i, n)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// BeginStep starts a new training step on every shard (asynchronously).
// A shard that cannot accept its begin request will also fail the step's
// FinishStep barrier, where the error is returned — this method stays
// error-free to keep the ps.Server driver shape.
func (c *Cluster) BeginStep() {
	c.step++
	c.began = true
	_ = c.broadcast(func(n *node) request {
		return request{kind: reqBegin, step: c.step}
	})
}

// AddPush splits one worker's full-model wire set by placement and
// enqueues the per-shard sub-pushes, pipelined across shards under the
// in-flight window. It returns as soon as every shard has accepted its
// sub-request — decode work overlaps with the caller's next AddPush. The
// returned duration is always zero (decode time is accounted on the
// FinishStep critical path); the error reports enqueue failures
// (exhausted straggler retries). Decode errors surface at FinishStep.
//
// The wires must stay valid until FinishStep returns: sub-requests alias
// them.
func (c *Cluster) AddPush(workerID int, wires [][]byte) (time.Duration, error) {
	if len(wires) != c.param {
		return 0, fmt.Errorf("shard: push has %d tensors, model has %d", len(wires), c.param)
	}
	if !c.began {
		return 0, fmt.Errorf("shard: AddPush before BeginStep")
	}
	err := c.broadcast(func(n *node) request {
		sp := n.subs.Get().(*[][]byte)
		sub := (*sp)[:len(n.idx)]
		for k, gi := range n.idx {
			sub[k] = wires[gi]
		}
		*sp = sub
		return request{kind: reqPush, step: c.step, worker: workerID, wires: sp}
	})
	return 0, err
}

// AddPushTensor routes a single tensor of workerID's push to the shard
// that owns it, asynchronously: the owning shard begins decode-accumulate
// on the tensor as soon as the request lands in its queue — typically
// while the worker is still compressing its next tensor — instead of
// after the worker's full wire set has been staged. Per-tensor requests
// for the same tensor must be issued in worker order (the FIFO queue then
// preserves it, keeping the aggregate byte-identical to the whole-set
// driver); after a worker's last tensor, call EndPush once. The wire must
// stay valid until FinishStep returns.
func (c *Cluster) AddPushTensor(workerID, gi int, wire []byte) error {
	if gi < 0 || gi >= c.param {
		return fmt.Errorf("shard: push tensor index %d out of range (model has %d tensors)", gi, c.param)
	}
	if !c.began {
		return fmt.Errorf("shard: AddPushTensor before BeginStep")
	}
	n := c.nodes[c.asn.ShardOf[gi]]
	return c.send(n, request{kind: reqPushTensor, step: c.step, worker: workerID, tensor: c.local[gi], wire: wire})
}

// EndPush marks one worker's per-tensor push complete on every shard
// (each shard's sub-server advances the push count its averaging divides
// by). Pair with AddPushTensor; the whole-set AddPush needs no EndPush.
func (c *Cluster) EndPush() error {
	if !c.began {
		return fmt.Errorf("shard: EndPush before BeginStep")
	}
	return c.broadcast(func(n *node) request {
		return request{kind: reqPushEnd, step: c.step}
	})
}

// FinishStep is the step barrier: every shard drains its queue, averages
// its gradients, applies its optimizer slice, and compresses its pull
// wires; the shards' pulls are then reassembled into full-model tensor
// order. The returned duration is the shard-tier critical path — the
// slowest shard's decode + optimizer + pull-compress time — which is what
// a real deployment's step time would include. The wire slices alias
// shard-owned buffers recycled on that shard's next FinishStep (same
// contract as ps.Server.FinishStep).
func (c *Cluster) FinishStep() ([][]byte, time.Duration, error) {
	if !c.began {
		return nil, 0, fmt.Errorf("shard: FinishStep before BeginStep")
	}
	c.began = false
	dones := make([]chan result, len(c.nodes))
	err := c.broadcast(func(n *node) request {
		done := make(chan result, 1)
		dones[n.id] = done
		return request{kind: reqFinish, step: c.step, done: done}
	})
	if err != nil {
		return nil, 0, err
	}
	var critical time.Duration
	errs := make([]error, 0, len(c.nodes))
	for i := range c.pull {
		c.pull[i] = nil
	}
	for s, done := range dones {
		r := <-done
		if r.err != nil {
			errs = append(errs, r.err)
			continue
		}
		if r.dur > critical {
			critical = r.dur
		}
		for k, gi := range c.nodes[s].idx {
			c.pull[gi] = r.pulls[k]
		}
	}
	if len(errs) > 0 {
		return nil, 0, errors.Join(errs...)
	}
	return c.pull, critical, nil
}

// Close stops the shard service goroutines. The cluster must not be used
// afterwards.
func (c *Cluster) Close() {
	for _, n := range c.nodes {
		close(n.reqs)
	}
}

// run services one shard's request queue on a dedicated goroutine.
func (n *node) run() {
	for req := range n.reqs {
		switch req.kind {
		case reqBegin:
			if n.slow != nil {
				n.slow(n.id, req.step)
			}
			n.step = req.step
			n.decodeDur = 0
			n.err = nil
			n.srv.BeginStep()
		case reqPush:
			n.push(req)
		case reqPushTensor:
			n.pushTensor(req)
		case reqPushEnd:
			if n.err != nil {
				break
			}
			if req.step != n.step {
				n.err = fmt.Errorf("shard %d: push end for step %d during step %d", n.id, req.step, n.step)
				break
			}
			_ = n.srv.EndPush() // always nil on a sub-server
		case reqFinish:
			req.done <- n.finish(req)
		}
	}
}

// pushTensor decode-accumulates one tensor of one worker's push the
// moment its request is serviced.
func (n *node) pushTensor(req request) {
	if n.err != nil {
		return
	}
	if req.step != n.step {
		n.err = fmt.Errorf("shard %d: push tensor for step %d during step %d", n.id, req.step, n.step)
		return
	}
	start := time.Now()
	err := n.srv.AddPushTensor(req.worker, req.tensor, req.wire)
	n.decodeDur += time.Since(start)
	if err != nil {
		n.err = fmt.Errorf("shard %d: %w", n.id, err)
	}
}

// push applies one sub-push. The enqueue path delivers each request at
// most once (send() only retries failed enqueues), so a push for the
// wrong step can only mean a driver-ordering bug — surface it rather than
// drop it silently.
func (n *node) push(req request) {
	defer n.subs.Put(req.wires)
	if n.err != nil {
		return
	}
	if req.step != n.step {
		n.err = fmt.Errorf("shard %d: push for step %d during step %d", n.id, req.step, n.step)
		return
	}
	d, err := n.srv.AddPush(req.worker, *req.wires)
	n.decodeDur += d
	if err != nil {
		n.err = fmt.Errorf("shard %d: %w", n.id, err)
	}
}

// finish completes the shard's step and reports its pulls and critical-
// path duration.
func (n *node) finish(req request) result {
	if n.err != nil {
		return result{err: n.err}
	}
	if req.step != n.step {
		return result{err: fmt.Errorf("shard %d: finish for step %d during step %d", n.id, req.step, n.step)}
	}
	pulls, compDur, err := n.srv.FinishStep()
	if err != nil {
		return result{err: fmt.Errorf("shard %d: %w", n.id, err)}
	}
	return result{pulls: pulls, dur: n.decodeDur + compDur}
}
