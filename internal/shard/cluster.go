package shard

import (
	"fmt"
	"time"

	"threelc/internal/nn"
	"threelc/internal/ps"
	"threelc/internal/tenant"
)

// Config tunes the sharded tier and its asynchronous push/pull pipeline.
type Config struct {
	// Shards is the parameter-server shard count. Zero or one means a
	// single shard (still running behind the async pipeline, so the two
	// paths share every line of code).
	Shards int
	// QueueDepth is the per-tenant, per-shard outstanding-request budget:
	// how many begin/push/finish requests one job may have queued on a
	// shard before the pipeline applies backpressure. Zero means
	// DefaultQueueDepth. A tenant's Limits.MaxOutstanding overrides it.
	QueueDepth int
	// Window caps how many per-shard requests one driver call keeps in
	// flight simultaneously (the async pipeline's in-flight window). Zero
	// means "all shards at once".
	Window int
	// Timeout is how long one enqueue attempt waits on a saturated shard
	// queue before the straggler-retry logic kicks in. Zero means
	// DefaultTimeout.
	Timeout time.Duration
	// Retries is how many times a timed-out enqueue is retried, each
	// attempt waiting twice as long as the last (a straggling shard —
	// e.g. one lagging under stale-synchronous emulation — usually just
	// needs more time; a dead one should fail fast). Zero means
	// DefaultRetries.
	Retries int
	// Assignment overrides the tensor placement. Nil computes the default
	// size-balanced packing (Assign) over the model's tensors. Only
	// meaningful for a dedicated Cluster: jobs admitted to a shared
	// Service always get the default placement over their own model.
	Assignment *Assignment
	// SlowShard, if non-nil, is invoked by shard s's scheduler goroutine
	// before it processes each step's first request — a test hook that
	// emulates a straggling shard so the timeout+retry path is exercised
	// deterministically.
	SlowShard func(shard, step int)
	// RetryJitter is the straggler retry's symmetric jitter fraction in
	// [0, 1) (see retry.Policy.Jitter): each timed wait is scaled by a
	// deterministic factor so many lanes backing off from the same
	// straggling shard do not re-attempt in lockstep. Zero means
	// DefaultRetryJitter; negative disables jitter.
	RetryJitter float64
	// RetrySeed selects the deterministic jitter stream; each (tenant,
	// shard) lane derives a decorrelated sub-stream from it. Runs with the
	// same seed replay the same backoff schedule.
	RetrySeed uint64
	// BreakerThreshold is how many consecutive exhausted-retry failures on
	// one shard's queue open that shard's circuit breaker, after which
	// sends fail fast with ErrShardDown instead of burning the full
	// timeout ladder per request. Zero means DefaultBreakerThreshold;
	// negative disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker rejects instantly before
	// letting one probe request through (half-open). Zero means
	// DefaultBreakerCooldown.
	BreakerCooldown time.Duration
}

// Pipeline defaults.
const (
	DefaultQueueDepth = 16
	DefaultTimeout    = 5 * time.Second
	DefaultRetries    = 3
	// DefaultRetryJitter keeps concurrent lanes' straggler retries from
	// synchronizing without distorting the schedule's shape.
	DefaultRetryJitter = 0.1
	// DefaultBreakerThreshold / DefaultBreakerCooldown tune the per-shard
	// circuit breaker: three consecutive retry-budget exhaustions open it,
	// and it stays open for one second before admitting a probe.
	DefaultBreakerThreshold = 3
	DefaultBreakerCooldown  = time.Second
)

func (c Config) queueDepth() int {
	if c.QueueDepth > 0 {
		return c.QueueDepth
	}
	return DefaultQueueDepth
}

func (c Config) timeout() time.Duration {
	if c.Timeout > 0 {
		return c.Timeout
	}
	return DefaultTimeout
}

func (c Config) retries() int {
	if c.Retries > 0 {
		return c.Retries
	}
	return DefaultRetries
}

func (c Config) retryJitter() float64 {
	if c.RetryJitter < 0 {
		return 0
	}
	if c.RetryJitter == 0 {
		return DefaultRetryJitter
	}
	return c.RetryJitter
}

func (c Config) breakerThreshold() int {
	if c.BreakerThreshold < 0 {
		return 0 // disabled
	}
	if c.BreakerThreshold == 0 {
		return DefaultBreakerThreshold
	}
	return c.BreakerThreshold
}

func (c Config) breakerCooldown() time.Duration {
	if c.BreakerCooldown > 0 {
		return c.BreakerCooldown
	}
	return DefaultBreakerCooldown
}

type reqKind uint8

const (
	reqBegin reqKind = iota + 1
	reqPush
	reqPushTensor
	reqPushEnd
	reqFinish
)

type request struct {
	kind   reqKind
	step   int
	worker int
	tensor int         // shard-local tensor index (reqPushTensor)
	wire   []byte      // single tensor wire (reqPushTensor); aliases the caller's buffer
	wires  *[][]byte   // sub wire set (reqPush); returned to the lane pool after use
	done   chan result // reqFinish only
	enq    time.Time   // enqueue instant, for tenant queue-wait stats
}

type result struct {
	pulls [][]byte
	dur   time.Duration
	err   error
}

// Cluster is a dedicated sharded parameter-server tier over one global
// model: a single-tenant Service plus the JobHandle of its one job (the
// default tenant), kept as one object so the classic driver shape —
// BeginStep / AddPush / FinishStep, mirroring ps.Job — survives
// unchanged. Shard s owns the tensors Assignment.Tensors(s), runs a ps
// sub-job (with the zero-allocation codec pool) for them on its own
// scheduler goroutine, and receives work through a bounded request
// queue:
//
//   - BeginStep and AddPush are asynchronous: they enqueue per-shard
//     requests (splitting each worker's wire set by placement) and return
//     without waiting for the shards to process them. Shards therefore
//     decode worker w's push while the driver is still enqueuing worker
//     w+1's — the push pipeline.
//   - FinishStep is the step barrier: it waits for every shard to drain
//     the job's lane, apply its optimizer slice, and compress its pull
//     wires, then reassembles the shards' pulls into the full-model wire
//     set.
//
// Determinism: pushes are enqueued in worker order and each shard
// services a tenant's lane FIFO, so per-tensor gradient accumulation
// happens in exactly the order the single server uses — the sharded
// model state is byte-identical to the single-PS state for every codec
// (the equivalence tests pin this). The straggler retry in send() only
// re-attempts enqueues that did NOT succeed, so every request reaches
// its shard at most once and in driver order; retries can delay a step
// but never reorder or duplicate work within it.
//
// Like ps.Job, a Cluster's driver methods are not safe for concurrent
// use; the concurrency lives behind the queues. To share one shard tier
// between many jobs, use Service/Admit directly.
type Cluster struct {
	svc *Service
	h   *JobHandle
}

// NewCluster builds a dedicated sharded tier over model. The placement
// defaults to size-balanced packing of the model's tensors (by byte
// size) across cfg.Shards shards; psCfg configures each shard's codec
// and optimizer exactly as it would a single ps.Job. Callers must Close
// the cluster to stop the shard goroutines. A bad configuration (e.g. an
// override Assignment that does not cover the model) is an error, not a
// panic: tier construction sits on the service path of long-lived
// processes.
func NewCluster(model *nn.Model, psCfg ps.Config, cfg Config) (*Cluster, error) {
	svc := NewService(cfg, tenant.NewRegistry(1))
	h, err := svc.Admit(tenant.Default, model, psCfg, tenant.Limits{})
	if err != nil {
		svc.Close()
		return nil, fmt.Errorf("shard: build dedicated cluster: %w", err)
	}
	return &Cluster{svc: svc, h: h}, nil
}

// defaultAssignment resolves cfg.Assignment or computes the size-balanced
// default over the model's tensor byte sizes.
func defaultAssignment(params []*nn.Param, cfg Config) Assignment {
	if cfg.Assignment != nil {
		return *cfg.Assignment
	}
	names := make([]string, len(params))
	sizes := make([]int, len(params))
	for i, p := range params {
		names[i] = p.Name
		sizes[i] = p.W.Len() * 4
	}
	return Assign(names, sizes, cfg.Shards)
}

// ForModel computes the default (size-balanced, deterministic) placement
// of model's tensors across `shards` shards — the one NewCluster and
// Service.Admit use. Workers and the server tier each call this on their
// own model replica and arrive at the same placement; Assignment.Hash is
// exchanged in the sharded transport handshake to verify that.
func ForModel(model *nn.Model, shards int) Assignment {
	return defaultAssignment(model.Params(), Config{Shards: shards})
}

// SubServers builds one ps sub-job per shard over model under the given
// placement — the building blocks for a multi-process deployment where
// each shard runs behind its own transport listener (transport.ShardServer).
// An assignment that does not cover the model's tensors is an error.
func SubServers(model *nn.Model, psCfg ps.Config, asn Assignment) ([]*ps.Job, error) {
	params := model.Params()
	if err := asn.Validate(len(params)); err != nil {
		return nil, fmt.Errorf("shard: build sub-servers: %w", err)
	}
	out := make([]*ps.Job, asn.NumShards)
	for s := range out {
		idx := asn.Tensors(s)
		sub := make([]*nn.Param, len(idx))
		for k, gi := range idx {
			sub[k] = params[gi]
		}
		out[s] = ps.NewSubJob(sub, idx, psCfg)
	}
	return out, nil
}

// Service returns the underlying (single-tenant) shard tier.
func (c *Cluster) Service() *Service { return c.svc }

// Handle returns the cluster's job handle — the default tenant's driver.
func (c *Cluster) Handle() *JobHandle { return c.h }

// Assignment returns the tensor placement in use.
func (c *Cluster) Assignment() Assignment { return c.h.asn }

// NumShards returns the shard count.
func (c *Cluster) NumShards() int { return c.h.asn.NumShards }

// BeginStep starts a new training step on every shard (asynchronously).
// A shard that cannot accept its begin request will also fail the step's
// FinishStep barrier, where the error is returned — this method stays
// error-free to keep the ps.Job driver shape.
func (c *Cluster) BeginStep() { c.h.BeginStep() }

// BeginPush opens workerID's push session for the current step (the
// PushSession choke point shared with ps.Job).
func (c *Cluster) BeginPush(workerID int) ps.PushSession { return c.h.BeginPush(workerID) }

// AddPush pushes one worker's full-model wire set.
//
// Deprecated: use BeginPush — Set then End on the session is this call.
// The returned duration is always zero (decode time is accounted on the
// FinishStep critical path); the error reports enqueue failures
// (exhausted straggler retries). Decode errors surface at FinishStep.
// The wires must stay valid until FinishStep returns: sub-requests alias
// them.
func (c *Cluster) AddPush(workerID int, wires [][]byte) (time.Duration, error) {
	sess := c.h.BeginPush(workerID)
	if err := sess.Set(wires); err != nil {
		return 0, err
	}
	return 0, sess.End()
}

// AddPushTensor routes a single tensor of workerID's push to the shard
// that owns it.
//
// Deprecated: use BeginPush — Tensor on the session is this call.
func (c *Cluster) AddPushTensor(workerID, gi int, wire []byte) error {
	return c.h.addPushTensor(workerID, gi, wire)
}

// EndPush marks the streaming worker's per-tensor push complete on every
// shard.
//
// Deprecated: use BeginPush — End on the session is this call (and
// carries the worker identity the multi-tenant tier wants).
func (c *Cluster) EndPush() error {
	return c.h.endPush(0)
}

// FinishStep is the step barrier: every shard drains the job's lane,
// averages its gradients, applies its optimizer slice, and compresses
// its pull wires; the shards' pulls are then reassembled into full-model
// tensor order. The returned duration is the shard-tier critical path —
// the slowest shard's decode + optimizer + pull-compress time — which is
// what a real deployment's step time would include. The wire slices
// alias shard-owned buffers recycled on that shard's next FinishStep
// (same contract as ps.Job.FinishStep).
func (c *Cluster) FinishStep() ([][]byte, time.Duration, error) { return c.h.FinishStep() }

// AppendState serializes every shard sub-job's mutable state to dst, in
// shard order. The model weights are checkpointed separately.
func (c *Cluster) AppendState(dst []byte) []byte { return c.h.AppendState(dst) }

// RestoreState restores state captured by AppendState on a cluster with
// the same shard count and configuration.
func (c *Cluster) RestoreState(src []byte) error { return c.h.RestoreState(src) }

// Close stops the shard scheduler goroutines. The cluster must not be
// used afterwards.
func (c *Cluster) Close() { c.svc.Close() }
