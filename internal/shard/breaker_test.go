package shard

import (
	"errors"
	"strings"
	"testing"
	"time"

	"threelc/internal/compress"
	"threelc/internal/nn"
	"threelc/internal/opt"
	"threelc/internal/ps"
	"threelc/internal/tensor"
)

// TestBreakerStateMachine walks the closed -> open -> half-open -> closed
// lifecycle directly.
func TestBreakerStateMachine(t *testing.T) {
	b := breaker{threshold: 2, cooldown: 10 * time.Millisecond}
	if !b.allow() {
		t.Fatal("fresh breaker must allow")
	}
	b.failure()
	if !b.allow() {
		t.Fatal("one failure under the threshold must not open the breaker")
	}
	b.failure() // second consecutive failure: threshold reached
	if b.allow() {
		t.Fatal("open breaker admitted a send before the cooldown elapsed")
	}
	time.Sleep(15 * time.Millisecond)
	if !b.allow() {
		t.Fatal("cooldown elapsed: the half-open probe must be admitted")
	}
	if b.allow() {
		t.Fatal("a second concurrent probe was admitted")
	}
	b.failure() // probe failed: back to open, cooldown restarts
	if b.allow() {
		t.Fatal("failed probe must re-open the breaker")
	}
	time.Sleep(15 * time.Millisecond)
	if !b.allow() {
		t.Fatal("re-opened cooldown elapsed: next probe must be admitted")
	}
	b.success() // probe succeeded: closed again
	if !b.allow() {
		t.Fatal("successful probe must close the breaker")
	}
	// Successes reset the consecutive-failure count.
	b.failure()
	b.success()
	b.failure()
	if !b.allow() {
		t.Fatal("failure count must reset on success (failures were not consecutive)")
	}
}

func TestBreakerDisabled(t *testing.T) {
	b := breaker{threshold: 0}
	for i := 0; i < 10; i++ {
		b.failure()
	}
	if !b.allow() {
		t.Fatal("a breaker with threshold 0 must never open")
	}
}

// TestBreakerFailsFastOnWedgedShard pins the tier-level behavior: once a
// shard exhausts the straggler retry budget often enough, further sends
// reject immediately with ErrShardDown instead of burning the full
// timeout ladder per request.
func TestBreakerFailsFastOnWedgedShard(t *testing.T) {
	cfg := ps.Config{
		Scheme:           compress.SchemeInt8,
		Workers:          2,
		MinCompressElems: 1,
		Parallelism:      1,
		Optimizer:        opt.DefaultSGDConfig(2, 1),
	}
	global := nn.NewMLP(12, []int{16, 10}, 4, 7)
	cl := mustCluster(t, global, cfg, Config{
		Shards:           2,
		QueueDepth:       1,
		Timeout:          time.Millisecond,
		Retries:          1,
		BreakerThreshold: 1,
		BreakerCooldown:  time.Hour, // never half-opens within the test
		SlowShard: func(shard, step int) {
			if shard == 1 {
				time.Sleep(200 * time.Millisecond)
			}
		},
	})
	defer cl.Close()

	m := nn.NewMLP(12, []int{16, 10}, 4, 7)
	m.CopyParamsFrom(global)
	wk := ps.NewWorker(0, m, cfg)
	rng := tensor.NewRNG(3)
	x := tensor.New(6, 12)
	tensor.FillNormal(x, 1, rng)
	wk.Model.TrainStep(x, []int{0, 1, 2, 3, 0, 1})
	wires, _ := wk.CompressGrads()

	// Drive pushes until the wedged shard exhausts a retry budget once.
	cl.BeginStep()
	var firstErr error
	for w := 0; w < 8 && firstErr == nil; w++ {
		_, firstErr = cl.AddPush(0, wires)
	}
	if firstErr == nil {
		t.Fatal("wedged shard never exhausted the retry budget")
	}
	if !strings.Contains(firstErr.Error(), "straggler") {
		t.Fatalf("first error %q should be the exhausted straggler budget", firstErr)
	}

	// The breaker (threshold 1) is now open: the next send must fail fast
	// with ErrShardDown, not re-run the timeout ladder.
	start := time.Now()
	_, err := cl.AddPush(0, wires)
	if !errors.Is(err, ErrShardDown) {
		t.Fatalf("send after breaker opened: err = %v, want ErrShardDown", err)
	}
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Fatalf("open-breaker rejection took %v: must fail fast, not retry", d)
	}
}

// TestStragglerBackoffDeterministic pins the straggler retry jitter:
// the same RetrySeed reproduces the exact backoff schedule, distinct
// (tenant, shard) lanes draw decorrelated streams, and disabling jitter
// recovers the bare capped-doubling ladder.
func TestStragglerBackoffDeterministic(t *testing.T) {
	cfg := ps.Config{
		Scheme:           compress.SchemeInt8,
		Workers:          2,
		MinCompressElems: 1,
		Parallelism:      1,
		Optimizer:        opt.DefaultSGDConfig(2, 1),
	}
	mk := func(c Config) *Cluster {
		return mustCluster(t, nn.NewMLP(12, []int{16, 10}, 4, 7), cfg, c)
	}

	base := Config{Shards: 2, Timeout: 10 * time.Millisecond, Retries: 3, RetrySeed: 42}
	a := mk(base)
	defer a.Close()
	b := mk(base)
	defer b.Close()
	diffSeed := mk(Config{Shards: 2, Timeout: 10 * time.Millisecond, Retries: 3, RetrySeed: 43})
	defer diffSeed.Close()

	for sh := 0; sh < 2; sh++ {
		for attempt := 0; attempt < 4; attempt++ {
			da := a.Handle().pols[sh].Backoff(attempt)
			if db := b.Handle().pols[sh].Backoff(attempt); da != db {
				t.Fatalf("shard %d attempt %d: same seed gave %v vs %v", sh, attempt, da, db)
			}
			if dc := diffSeed.Handle().pols[sh].Backoff(attempt); da == dc {
				t.Errorf("shard %d attempt %d: seeds 42 and 43 both gave %v", sh, attempt, da)
			}
		}
	}
	// Distinct shards must not back off in lockstep.
	if a.Handle().pols[0].Backoff(0) == a.Handle().pols[1].Backoff(0) &&
		a.Handle().pols[0].Backoff(1) == a.Handle().pols[1].Backoff(1) {
		t.Error("shard lanes 0 and 1 share a jitter stream: backoffs are in lockstep")
	}

	// Jitter disabled: the schedule is the bare doubling ladder.
	plain := mk(Config{Shards: 1, Timeout: 10 * time.Millisecond, Retries: 3, RetryJitter: -1})
	defer plain.Close()
	for attempt, want := range []time.Duration{10, 20, 40, 80} {
		if got := plain.Handle().pols[0].Backoff(attempt); got != want*time.Millisecond {
			t.Fatalf("attempt %d: backoff = %v, want %v", attempt, got, want*time.Millisecond)
		}
	}
}
