// Multi-tenant shard tier: many independent training jobs multiplexed
// over one shared set of shard executors.
//
// The split of responsibilities follows the ps.Job / ps.Service API:
// every piece of per-job state (codec contexts, error accumulation,
// momentum, step counters, pull buffers, checkpoint state) lives in the
// per-shard ps.Job sub-jobs owned by a JobHandle, while the shards
// themselves — snode — are stateless-per-job executors: a job table
// (ps.Service) plus a scheduler over per-tenant request queues.
//
// Scheduling is deficit round-robin (DRR) over the tenants with queued
// work: each sweep a tenant's lane earns its quantum (tenant.Limits.
// Quantum bytes, DefaultQuantum when unset) and serves queued requests
// while its deficit covers their cost (a request costs its wire bytes,
// floor 1), carrying the unspent deficit forward. Large-push tenants
// therefore cannot starve small ones, and an idle lane's deficit resets
// so bursts get no retroactive credit. Within one tenant the lane is a
// FIFO, which preserves the worker-order aggregation determinism the
// bit-identity guarantees rest on — fairness reorders BETWEEN tenants
// only.
//
// Admission control is tenant.Registry (concurrent-tenant cap, fresh
// epoch per admission); per-tenant outstanding budgets bound each lane's
// queue depth (tenant.Limits.MaxOutstanding, falling back to the tier's
// Config.QueueDepth); and quotas/stats (steps, push/pull bytes, queue
// wait) are charged where the scheduler touches the traffic.
package shard

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"threelc/internal/nn"
	"threelc/internal/ps"
	"threelc/internal/retry"
	"threelc/internal/tenant"
)

// DefaultQuantum is the per-sweep DRR refill (in wire bytes) for tenants
// that do not set tenant.Limits.Quantum.
const DefaultQuantum = 64 << 10

// Service is the multi-tenant shard tier: Config.Shards executors shared
// by every admitted job. Admit and Retire are runtime operations; each
// job gets its own placement (computed over its own model), its own
// per-shard ps.Job sub-jobs, and its own lane in every shard's
// scheduler. Driver methods live on the per-job JobHandle.
type Service struct {
	cfg   Config
	reg   *tenant.Registry
	nodes []*snode

	mu   sync.Mutex
	jobs map[tenant.ID]*JobHandle
}

// NewService starts a shard tier with cfg.Shards executors. reg supplies
// admission control; nil means an unbounded registry. Callers must Close
// the service to stop the shard goroutines.
func NewService(cfg Config, reg *tenant.Registry) *Service {
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if reg == nil {
		reg = tenant.NewRegistry(0)
	}
	s := &Service{cfg: cfg, reg: reg, jobs: make(map[tenant.ID]*JobHandle)}
	for i := 0; i < cfg.Shards; i++ {
		n := &snode{
			id:   i,
			jobs: ps.NewService(),
			slow: cfg.SlowShard,
			brk:  breaker{threshold: cfg.breakerThreshold(), cooldown: cfg.breakerCooldown()},
			work: make(chan struct{}, 1),
			stop: make(chan struct{}),
		}
		s.nodes = append(s.nodes, n)
		go n.run()
	}
	return s
}

// Registry returns the tier's admission registry.
func (s *Service) Registry() *tenant.Registry { return s.reg }

// NumShards returns the executor count.
func (s *Service) NumShards() int { return s.cfg.Shards }

// Admit registers a new job: tenant id drives model under psCfg, bounded
// by limits. The job's tensors are placed across the tier's shards with
// the same size-balanced packing a dedicated Cluster would use, and each
// shard gains a ps sub-job plus a scheduler lane for the tenant.
// Admission fails with tenant.ErrAdmitLimit / tenant.ErrDuplicate per
// the registry.
func (s *Service) Admit(id tenant.ID, model *nn.Model, psCfg ps.Config, limits tenant.Limits) (*JobHandle, error) {
	ten, err := s.reg.Admit(id, limits)
	if err != nil {
		return nil, err
	}
	params := model.Params()
	asn := defaultAssignment(params, s.cfg)
	if err := asn.Validate(len(params)); err != nil {
		s.reg.Retire(id)
		return nil, err
	}

	depth := limits.MaxOutstanding
	if depth <= 0 {
		depth = s.cfg.queueDepth()
	}
	quantum := limits.Quantum
	if quantum <= 0 {
		quantum = DefaultQuantum
	}
	window := s.cfg.Window
	if window <= 0 || window > s.cfg.Shards {
		window = s.cfg.Shards
	}

	h := &JobHandle{
		svc:     s,
		ten:     ten,
		asn:     asn,
		param:   len(params),
		workers: psCfg.Workers,
		idxs:    make([][]int, s.cfg.Shards),
		local:   make([]int, len(params)),
		pull:    make([][]byte, len(params)),
		sem:     make(chan struct{}, window),
		dones:   make([]chan result, s.cfg.Shards),
		errs:    make([]error, s.cfg.Shards),
	}
	// The straggler backoff schedule: the same ladder the old bare
	// doubling produced (base = enqueue timeout, 2x growth), but expressed
	// as a retry.Policy so the delays carry deterministic seeded jitter —
	// every (tenant, shard) lane draws a decorrelated stream, which keeps
	// the tier's lanes from re-attempting a shared straggler in lockstep.
	base := retry.Policy{
		MaxAttempts: s.cfg.retries() + 1,
		Base:        s.cfg.timeout(),
		Cap:         s.cfg.timeout() << uint(s.cfg.retries()),
		Multiplier:  2,
		Jitter:      s.cfg.retryJitter(),
		Seed:        s.cfg.RetrySeed,
	}
	h.pols = make([]retry.Policy, s.cfg.Shards)
	for sh := 0; sh < s.cfg.Shards; sh++ {
		h.idxs[sh] = asn.Tensors(sh)
		for k, gi := range h.idxs[sh] {
			h.local[gi] = k
		}
		h.dones[sh] = make(chan result, 1)
		h.pols[sh] = base.Stream(uint64(id)<<20 ^ uint64(sh))
	}
	// The per-kind request builders are allocated once here: broadcast
	// closures created per step would put four heap allocations on the
	// steady-state path. They read the handle's current step/worker/wires
	// fields, which the (single-threaded) driver sets before broadcasting.
	h.mkBegin = func(sh int) request { return request{kind: reqBegin, step: h.step} }
	h.mkEnd = func(sh int) request { return request{kind: reqPushEnd, step: h.step, worker: h.curWorker} }
	h.mkFinish = func(sh int) request { return request{kind: reqFinish, step: h.step, done: h.dones[sh]} }
	h.mkPush = func(sh int) request {
		q := h.tqs[sh]
		sp := q.subs.Get().(*[][]byte)
		idx := h.idxs[sh]
		sub := (*sp)[:len(idx)]
		for k, gi := range idx {
			sub[k] = h.curWires[gi]
		}
		*sp = sub
		return request{kind: reqPush, step: h.step, worker: h.curWorker, wires: sp}
	}
	for sh, n := range s.nodes {
		idx := h.idxs[sh]
		sub := make([]*nn.Param, len(idx))
		for k, gi := range idx {
			sub[k] = params[gi]
		}
		job := ps.NewSubJob(sub, idx, psCfg)
		if err := n.jobs.Put(id, job); err != nil {
			// Unreachable while the registry gates admission, but unwind
			// cleanly rather than leave a half-admitted job.
			for _, m := range s.nodes[:sh] {
				m.removeTenant(id)
			}
			s.reg.Retire(id)
			return nil, err
		}
		q := &tq{
			ten:     ten,
			job:     job,
			reqs:    make(chan request, depth),
			quantum: quantum,
		}
		q.subs.New = func() any {
			b := make([][]byte, len(idx))
			return &b
		}
		h.tqs = append(h.tqs, q)
		n.addTenant(q)
	}
	s.mu.Lock()
	s.jobs[id] = h
	s.mu.Unlock()
	return h, nil
}

// Handle returns the live JobHandle for id.
func (s *Service) Handle(id tenant.ID) (*JobHandle, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.jobs[id]
	return h, ok
}

// Retire removes id's job from every shard and the registry, returning
// the retired tenant for final stats reads. Retire is a step-boundary
// operation: it must only be called after the job's FinishStep has
// returned and before any next BeginStep, when every lane's queue is
// empty (the FinishStep result channel provides the happens-before edge,
// exactly as for state capture).
func (s *Service) Retire(id tenant.ID) (*tenant.Tenant, error) {
	s.mu.Lock()
	h, ok := s.jobs[id]
	if ok {
		delete(s.jobs, id)
	}
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w (id %d)", tenant.ErrUnknown, id)
	}
	for _, n := range s.nodes {
		n.removeTenant(id)
	}
	s.reg.Retire(id)
	return h.ten, nil
}

// Close stops the shard executor goroutines. Every job must be idle (at
// a step boundary); the service must not be used afterwards.
func (s *Service) Close() {
	for _, n := range s.nodes {
		close(n.stop)
	}
}

// snode is one shard executor: a tenant-keyed job table plus the DRR
// scheduler goroutine over the tenants' request lanes. It owns no
// per-job state beyond the table entries.
type snode struct {
	id   int
	jobs *ps.Service // shard-local sub-jobs keyed by tenant
	slow func(shard, step int)
	brk  breaker // shared failure detector: a shard is down for every tenant or none

	mu  sync.Mutex
	tqs []*tq // live lanes, admission order

	scratch []*tq         // scheduler-owned sweep snapshot
	work    chan struct{} // wake signal (cap 1)
	stop    chan struct{}
}

// tq is one tenant's lane on one shard: the bounded request queue (the
// tenant's outstanding budget), its DRR accounting, and the scheduler-
// owned per-step state of its sub-job.
type tq struct {
	ten     *tenant.Tenant
	job     *ps.Job
	reqs    chan request
	quantum int
	subs    sync.Pool // *[][]byte scratch for split wire sets

	// Scheduler-owned state (touched only by snode.run).
	held       request // one-slot peek buffer over the channel
	hasHeld    bool
	deficit    int
	step       int
	decodeDur  time.Duration
	err        error
	sess       ps.PushSession // current streamed-push session
	sessWorker int
	hasSess    bool
}

// peek exposes the lane's head request without consuming it, using the
// one-slot held buffer to emulate peek on a channel.
func (q *tq) peek() (request, bool) {
	if !q.hasHeld {
		select {
		case r := <-q.reqs:
			q.held, q.hasHeld = r, true
		default:
			return request{}, false
		}
	}
	return q.held, true
}

// pop consumes the previously peeked request.
func (q *tq) pop() {
	q.hasHeld = false
	q.held = request{}
}

// addTenant registers a lane with the executor.
func (n *snode) addTenant(q *tq) {
	n.mu.Lock()
	n.tqs = append(n.tqs, q)
	n.mu.Unlock()
}

// removeTenant drops id's lane (step-boundary only: the lane's queue
// must be empty).
func (n *snode) removeTenant(id tenant.ID) {
	n.jobs.Remove(id)
	n.mu.Lock()
	for i, q := range n.tqs {
		if q.ten.ID == id {
			n.tqs = append(n.tqs[:i], n.tqs[i+1:]...)
			break
		}
	}
	n.mu.Unlock()
}

// wake nudges the scheduler after an enqueue; the one-slot channel
// coalesces redundant signals.
func (n *snode) wake() {
	select {
	case n.work <- struct{}{}:
	default:
	}
}

// reqCost is a request's DRR cost: its wire bytes, floor 1 (barriers and
// markers cost the floor, so control traffic cannot be starved by the
// byte accounting).
func reqCost(req request) int {
	c := 1
	switch req.kind {
	case reqPush:
		n := 0
		for _, w := range *req.wires {
			n += len(w)
		}
		if n > c {
			c = n
		}
	case reqPushTensor:
		if len(req.wire) > c {
			c = len(req.wire)
		}
	}
	return c
}

// run is the executor's scheduler: DRR sweeps over the live lanes,
// parking on the wake channel when no lane has work. A lane whose head
// request exceeds its deficit keeps its balance and earns another
// quantum next sweep, so even a request bigger than the quantum is
// eventually affordable while other tenants keep flowing meanwhile.
func (n *snode) run() {
	for {
		n.mu.Lock()
		tqs := append(n.scratch[:0], n.tqs...)
		n.mu.Unlock()
		n.scratch = tqs

		served, starved := false, false
		for _, q := range tqs {
			req, ok := q.peek()
			if !ok {
				q.deficit = 0
				continue
			}
			q.deficit += q.quantum
			for ok {
				cost := reqCost(req)
				if cost > q.deficit {
					starved = true
					break
				}
				q.deficit -= cost
				q.pop()
				n.serve(q, req)
				served = true
				req, ok = q.peek()
			}
			if !ok {
				q.deficit = 0
			}
		}
		if served || starved {
			continue
		}
		select {
		case <-n.work:
		case <-n.stop:
			return
		}
	}
}

// serve applies one request to its tenant's sub-job, charging stats and
// byte quotas as the traffic passes through.
func (n *snode) serve(q *tq, req request) {
	if !req.enq.IsZero() {
		q.ten.Stats.QueueWaitNs.Add(time.Since(req.enq).Nanoseconds())
	}
	switch req.kind {
	case reqBegin:
		if n.slow != nil {
			n.slow(n.id, req.step)
		}
		q.step = req.step
		q.decodeDur = 0
		q.err = nil
		q.hasSess = false
		q.job.BeginStep()
	case reqPush:
		n.servePush(q, req)
	case reqPushTensor:
		n.servePushTensor(q, req)
	case reqPushEnd:
		if q.err != nil {
			break
		}
		if req.step != q.step {
			q.err = fmt.Errorf("shard %d: tenant %d push end for step %d during step %d", n.id, q.ten.ID, req.step, q.step)
			break
		}
		sess := q.session(req.worker)
		q.hasSess = false
		if err := sess.End(); err != nil {
			q.err = fmt.Errorf("shard %d: tenant %d: %w", n.id, q.ten.ID, err)
		}
	case reqFinish:
		req.done <- n.finish(q, req)
	}
}

// session returns the lane's streamed-push session for worker w, opening
// it lazily. Per-tensor requests arrive per worker in contiguous runs
// (the driver streams one worker, then its end marker, then the next),
// so one current session per lane suffices.
func (q *tq) session(w int) ps.PushSession {
	if !q.hasSess || q.sessWorker != w {
		q.sess = q.job.BeginPush(w)
		q.sessWorker = w
		q.hasSess = true
	}
	return q.sess
}

// servePush applies one whole-set sub-push through a push session.
func (n *snode) servePush(q *tq, req request) {
	defer q.subs.Put(req.wires)
	if q.err != nil {
		return
	}
	if req.step != q.step {
		q.err = fmt.Errorf("shard %d: tenant %d push for step %d during step %d", n.id, q.ten.ID, req.step, q.step)
		return
	}
	bytes := 0
	for _, w := range *req.wires {
		bytes += len(w)
	}
	q.ten.Stats.PushBytes.Add(uint64(bytes))
	if err := q.ten.ChargeBytes(uint64(bytes)); err != nil {
		q.err = err
		return
	}
	start := time.Now()
	err := q.session(req.worker).Set(*req.wires)
	q.decodeDur += time.Since(start)
	if err != nil {
		q.err = fmt.Errorf("shard %d: tenant %d: %w", n.id, q.ten.ID, err)
	}
}

// servePushTensor decode-accumulates one tensor of one worker's push the
// moment its request is served.
func (n *snode) servePushTensor(q *tq, req request) {
	if q.err != nil {
		return
	}
	if req.step != q.step {
		q.err = fmt.Errorf("shard %d: tenant %d push tensor for step %d during step %d", n.id, q.ten.ID, req.step, q.step)
		return
	}
	q.ten.Stats.PushBytes.Add(uint64(len(req.wire)))
	if err := q.ten.ChargeBytes(uint64(len(req.wire))); err != nil {
		q.err = err
		return
	}
	start := time.Now()
	err := q.session(req.worker).Tensor(req.tensor, req.wire)
	q.decodeDur += time.Since(start)
	if err != nil {
		q.err = fmt.Errorf("shard %d: tenant %d: %w", n.id, q.ten.ID, err)
	}
}

// finish completes the lane's step and reports its pulls and critical-
// path duration.
func (n *snode) finish(q *tq, req request) result {
	if q.err != nil {
		return result{err: q.err}
	}
	if req.step != q.step {
		return result{err: fmt.Errorf("shard %d: tenant %d finish for step %d during step %d", n.id, q.ten.ID, req.step, q.step)}
	}
	pulls, compDur, err := q.job.FinishStep()
	if err != nil {
		return result{err: fmt.Errorf("shard %d: tenant %d: %w", n.id, q.ten.ID, err)}
	}
	bytes := 0
	for _, w := range pulls {
		bytes += len(w)
	}
	q.ten.Stats.PullBytes.Add(uint64(bytes))
	if err := q.ten.ChargeBytes(uint64(bytes)); err != nil {
		return result{err: err}
	}
	return result{pulls: pulls, dur: q.decodeDur + compDur}
}

// Port is the per-(job, shard) executor view a network endpoint drives:
// one shard's lane of one tenant, addressed by wire step numbers. A
// multi-tenant listener (transport.MuxShardServer) holds one Port per
// tenant group it serves and drives them from independent goroutines —
// the lanes do the serialization. A Port and the job's JobHandle must
// not drive the same lane concurrently; a deployment picks one.
type Port struct {
	h     *JobHandle
	shard int
	step  int
	done  chan result
}

// Port returns the executor view of tenant id's lane on shard sh.
func (s *Service) Port(id tenant.ID, sh int) (*Port, bool) {
	h, ok := s.Handle(id)
	if !ok || sh < 0 || sh >= len(h.tqs) {
		return nil, false
	}
	return &Port{h: h, shard: sh, done: make(chan result, 1)}, true
}

// Tenant returns the port's job identity.
func (p *Port) Tenant() *tenant.Tenant { return p.h.ten }

// Workers returns the job's configured worker count — the size of the
// connection group an endpoint waits for.
func (p *Port) Workers() int { return p.h.workers }

// Hash returns the job's placement checksum for hello validation.
func (p *Port) Hash() uint32 { return p.h.asn.Hash() }

// NumTensors returns the shard-local tensor count of the port's shard.
func (p *Port) NumTensors() int { return len(p.h.asn.Tensors(p.shard)) }

// Begin opens wire step `step` on the port's lane, charging the
// tenant's step quota (once per step: on shard 0's port, so a job
// spanning several shard endpoints is not multiply charged).
func (p *Port) Begin(step int) error {
	p.step = step
	if p.shard == 0 {
		if err := p.h.ten.ChargeStep(); err != nil {
			return err
		}
	}
	return p.h.send(p.shard, request{kind: reqBegin, step: step})
}

// Push enqueues one worker's shard-local wire set (already split by
// placement on the client side). The wires must stay valid until Finish
// returns: the lane aliases them. Pushes must be issued in worker order
// within a step — the lane's FIFO then reproduces the deterministic
// aggregation order.
func (p *Port) Push(worker int, wires [][]byte) error {
	q := p.h.tqs[p.shard]
	sp := q.subs.Get().(*[][]byte)
	sub := append((*sp)[:0], wires...)
	*sp = sub
	return p.h.send(p.shard, request{kind: reqPush, step: p.step, worker: worker, wires: sp})
}

// EndPush completes worker's push (required after Push: the lane counts
// pushes at the End marker).
func (p *Port) EndPush(worker int) error {
	return p.h.send(p.shard, request{kind: reqPushEnd, step: p.step, worker: worker})
}

// Finish drains the lane, completes the shard's step, and returns the
// shard-local pulls (recycled on the lane's next Finish) and the step's
// decode + optimizer + pull-compress duration.
func (p *Port) Finish() ([][]byte, time.Duration, error) {
	if err := p.h.send(p.shard, request{kind: reqFinish, step: p.step, done: p.done}); err != nil {
		return nil, 0, err
	}
	r := <-p.done
	return r.pulls, r.dur, r.err
}

// JobHandle is one admitted job's driver: the same BSP step surface a
// dedicated Cluster (or a single ps.Job) exposes, routed through the
// shared tier's per-tenant lanes. Like them, a handle's driver methods
// are not safe for concurrent use; the concurrency lives behind the
// lanes.
type JobHandle struct {
	svc     *Service
	ten     *tenant.Tenant
	asn     Assignment
	param   int            // full-model tensor count
	workers int            // the job's worker count (ps.Config.Workers)
	idxs    [][]int        // per-shard owned tensor indices (asn.Tensors, precomputed)
	local   []int          // global tensor index -> shard-local index
	tqs     []*tq          // this job's lane on each shard
	pols    []retry.Policy // per-shard straggler backoff, decorrelated per (tenant, shard)
	sem     chan struct{}
	dones   []chan result // recycled FinishStep barrier channels
	errs    []error       // recycled broadcast per-shard error scratch

	// Persistent request builders (see Admit) and the driver-owned fields
	// they read.
	mkBegin, mkEnd, mkFinish, mkPush func(sh int) request
	curWorker                        int
	curWires                         [][]byte

	step     int
	began    bool
	quotaErr error
	pull     [][]byte // reassembled full pull set, recycled across steps
	sessions []handleSession
}

// Tenant returns the job's admitted identity (stats, limits, epoch).
func (h *JobHandle) Tenant() *tenant.Tenant { return h.ten }

// Assignment returns the job's tensor placement over the shared tier.
func (h *JobHandle) Assignment() Assignment { return h.asn }

// Workers returns the job's configured worker count.
func (h *JobHandle) Workers() int { return h.workers }

// send enqueues req on the job's lane at shard sh with the straggler
// timeout+retry policy: each timed wait follows the lane's retry.Policy
// (capped exponential growth with deterministic decorrelated jitter), so
// a shard that is merely slow gets absorbed while a wedged one turns
// into an error after the retry budget. The shard's circuit breaker
// short-circuits the whole ladder once the shard is presumed down —
// every subsequent send fails fast with ErrShardDown instead of adding
// its full timeout ladder to the step barrier's latency — and each timed
// re-attempt is charged to the tenant's Retries stat.
func (h *JobHandle) send(sh int, req request) error {
	q := h.tqs[sh]
	n := h.svc.nodes[sh]
	if !n.brk.allow() {
		return fmt.Errorf("shard: shard %d rejected tenant %d's request: %w", sh, h.ten.ID, ErrShardDown)
	}
	req.enq = time.Now()
	for attempt := 0; ; attempt++ {
		select {
		case q.reqs <- req:
			n.brk.success()
			n.wake()
			return nil
		default:
		}
		if attempt >= h.svc.cfg.retries() {
			n.brk.failure()
			return fmt.Errorf("shard: shard %d queue full for tenant %d after %d attempts (straggler exceeded retry budget)",
				sh, h.ten.ID, attempt+1)
		}
		t := time.NewTimer(h.pols[sh].Backoff(attempt))
		select {
		case q.reqs <- req:
			t.Stop()
			n.brk.success()
			n.wake()
			return nil
		case <-t.C:
			h.ten.Stats.Retries.Add(1)
		}
	}
}

// broadcast sends one request per shard (built by mk) with at most the
// in-flight window's sends outstanding, collecting the first error. The
// single-shard tier skips the goroutine fan-out entirely — the
// multiplexing layer costs one channel send when only one lane exists.
func (h *JobHandle) broadcast(mk func(sh int) request) error {
	if len(h.tqs) == 1 {
		h.errs[0] = h.send(0, mk(0))
		return h.errs[0]
	}
	var wg sync.WaitGroup
	for sh := range h.tqs {
		h.sem <- struct{}{}
		wg.Add(1)
		go func(sh int) {
			defer func() { <-h.sem; wg.Done() }()
			h.errs[sh] = h.send(sh, mk(sh))
		}(sh)
	}
	wg.Wait()
	return errors.Join(h.errs...)
}

// BeginStep starts a new training step on every shard (asynchronously)
// and charges the tenant's step quota. A shard that cannot accept its
// begin request — or an exhausted quota — fails the step at the
// FinishStep barrier; this method stays error-free to keep the driver
// shape.
func (h *JobHandle) BeginStep() {
	h.step++
	h.began = true
	if err := h.ten.ChargeStep(); err != nil {
		h.quotaErr = err
		return
	}
	_ = h.broadcast(h.mkBegin)
}

// BeginPush opens workerID's push session for the current step: the
// driver-side half of the tier's single push choke point. The returned
// session is recycled per worker (valid until the job's next BeginPush
// for the same worker).
func (h *JobHandle) BeginPush(workerID int) ps.PushSession {
	for workerID >= len(h.sessions) {
		h.sessions = append(h.sessions, handleSession{h: h})
	}
	se := &h.sessions[workerID]
	se.worker = workerID
	return se
}

// handleSession routes one worker's push through the job's shard lanes.
type handleSession struct {
	h      *JobHandle
	worker int
}

func (se *handleSession) Set(wires [][]byte) error {
	return se.h.addPush(se.worker, wires)
}

func (se *handleSession) Tensor(i int, wire []byte) error {
	return se.h.addPushTensor(se.worker, i, wire)
}

func (se *handleSession) End() error {
	return se.h.endPush(se.worker)
}

// addPush splits one worker's full-model wire set by placement and
// enqueues the per-shard sub-pushes, pipelined across shards under the
// in-flight window. It returns as soon as every lane has accepted its
// sub-request — decode work overlaps with the caller's next push. The
// wires must stay valid until FinishStep returns: sub-requests alias
// them. Decode errors surface at FinishStep.
func (h *JobHandle) addPush(workerID int, wires [][]byte) error {
	if len(wires) != h.param {
		return fmt.Errorf("shard: push has %d tensors, model has %d", len(wires), h.param)
	}
	if !h.began {
		return fmt.Errorf("shard: AddPush before BeginStep")
	}
	if h.quotaErr != nil {
		return nil // the step already failed admission; FinishStep reports it
	}
	h.curWorker, h.curWires = workerID, wires
	return h.broadcast(h.mkPush)
}

// addPushTensor routes a single tensor of workerID's push to the shard
// that owns it, asynchronously. Per-tensor requests for the same tensor
// must be issued in worker order (each lane's FIFO then preserves it,
// keeping the aggregate byte-identical to the whole-set driver); after a
// worker's last tensor the session End must run once. The wire must stay
// valid until FinishStep returns.
func (h *JobHandle) addPushTensor(workerID, gi int, wire []byte) error {
	if gi < 0 || gi >= h.param {
		return fmt.Errorf("shard: push tensor index %d out of range (model has %d tensors)", gi, h.param)
	}
	if !h.began {
		return fmt.Errorf("shard: AddPushTensor before BeginStep")
	}
	if h.quotaErr != nil {
		return nil
	}
	sh := h.asn.ShardOf[gi]
	return h.send(sh, request{kind: reqPushTensor, step: h.step, worker: workerID, tensor: h.local[gi], wire: wire})
}

// endPush marks workerID's per-tensor push complete on every shard (each
// shard's sub-job advances the push count its averaging divides by).
func (h *JobHandle) endPush(workerID int) error {
	if !h.began {
		return fmt.Errorf("shard: EndPush before BeginStep")
	}
	if h.quotaErr != nil {
		return nil
	}
	h.curWorker = workerID
	return h.broadcast(h.mkEnd)
}

// FinishStep is the step barrier: every shard drains the job's lane,
// averages its gradients, applies its optimizer slice, and compresses
// its pull wires; the shards' pulls are then reassembled into full-model
// tensor order. The returned duration is the tier critical path — the
// slowest shard's decode + optimizer + pull-compress time. The wire
// slices alias shard-owned buffers recycled on the job's next FinishStep
// (the ps.Job contract).
func (h *JobHandle) FinishStep() ([][]byte, time.Duration, error) {
	if !h.began {
		return nil, 0, fmt.Errorf("shard: FinishStep before BeginStep")
	}
	h.began = false
	if h.quotaErr != nil {
		err := h.quotaErr
		h.quotaErr = nil
		return nil, 0, err
	}
	err := h.broadcast(h.mkFinish)
	if err != nil {
		// Drain the shards whose finish DID enqueue so the recycled
		// barrier channels stay empty for the next step.
		for sh, done := range h.dones {
			if h.errs[sh] == nil {
				<-done
			}
		}
		return nil, 0, err
	}
	var critical time.Duration
	var errs []error // nil in the steady state: allocated only on failure
	for i := range h.pull {
		h.pull[i] = nil
	}
	for sh, done := range h.dones {
		r := <-done
		if r.err != nil {
			errs = append(errs, r.err)
			continue
		}
		if r.dur > critical {
			critical = r.dur
		}
		for k, gi := range h.idxs[sh] {
			h.pull[gi] = r.pulls[k]
		}
	}
	if len(errs) > 0 {
		return nil, 0, errors.Join(errs...)
	}
	return h.pull, critical, nil
}
