// Per-shard circuit breaker: a wedged shard fails fast instead of
// charging every request the full straggler timeout ladder.
//
// The straggler retry in JobHandle.send absorbs a shard that is merely
// slow. But a shard that is truly wedged — scheduler goroutine stuck,
// queue permanently full — makes every send burn the entire retry budget
// (seconds each) before erroring, and with many tenants that turns one
// dead shard into tier-wide head-of-line blocking at every step barrier.
// The breaker bounds that: after breakerThreshold consecutive
// exhausted-budget failures the shard is declared down, and until the
// cooldown elapses sends fail immediately with ErrShardDown (wrapped, so
// errors.Is works). After the cooldown one request is let through as a
// probe (half-open); its success closes the breaker, its failure re-opens
// the cooldown window. Step barriers therefore always complete — with an
// error naming the dead shard — rather than wedging.
package shard

import (
	"errors"
	"sync"
	"time"
)

// ErrShardDown marks a send rejected by an open circuit breaker: the
// shard exhausted the straggler retry budget on enough consecutive
// requests to be presumed dead, and the cooldown has not elapsed.
var ErrShardDown = errors.New("shard: circuit breaker open (shard presumed down)")

const (
	breakerClosed  = iota // normal operation
	breakerOpen           // rejecting until cooldown elapses
	breakerProbing        // half-open: one probe in flight
)

// breaker is one shard's failure detector, shared by every tenant lane
// on that shard (a shard is down for everyone or no one).
type breaker struct {
	threshold int           // consecutive failures to open; 0 disables
	cooldown  time.Duration // open duration before a probe is admitted

	mu       sync.Mutex
	state    int
	failures int       // consecutive failures while closed
	openedAt time.Time // when the breaker last opened
}

// allow reports whether a send may proceed. In the open state it fails
// fast until the cooldown elapses, then admits exactly one caller as the
// half-open probe.
func (b *breaker) allow() bool {
	if b.threshold <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		if time.Since(b.openedAt) < b.cooldown {
			return false
		}
		b.state = breakerProbing
		return true
	case breakerProbing:
		return false // one probe at a time
	default:
		return true
	}
}

// success records a completed send: any state collapses back to closed.
func (b *breaker) success() {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	b.state = breakerClosed
	b.failures = 0
	b.mu.Unlock()
}

// failure records an exhausted-retry-budget send. Consecutive failures
// reaching the threshold — or a failed half-open probe — open (re-open)
// the breaker.
func (b *breaker) failure() {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerProbing {
		b.state = breakerOpen
		b.openedAt = time.Now()
		return
	}
	b.failures++
	if b.failures >= b.threshold {
		b.state = breakerOpen
		b.openedAt = time.Now()
	}
}
