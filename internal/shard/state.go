// Sharded-tier state capture: the cluster's mutable training state is the
// union of its shard sub-servers' states (per-shard optimizer slice +
// pull contexts). Both methods must only be called between steps — after
// FinishStep has returned and before the next BeginStep. At that point
// every shard's service goroutine is parked on its empty request queue,
// and the FinishStep result channel (capture) / the next request enqueue
// (restore) provide the happens-before edges that make the direct
// sub-server access race-free.
package shard

import (
	"encoding/binary"
	"fmt"
)

// AppendState serializes every shard sub-server's mutable state to dst,
// in shard order. The model weights are checkpointed separately.
func (c *Cluster) AppendState(dst []byte) []byte {
	le := binary.LittleEndian
	var b4 [4]byte
	le.PutUint32(b4[:], uint32(len(c.nodes)))
	dst = append(dst, b4[:]...)
	for _, n := range c.nodes {
		lenAt := len(dst)
		dst = append(dst, 0, 0, 0, 0)
		dst = n.srv.AppendState(dst)
		le.PutUint32(dst[lenAt:], uint32(len(dst)-lenAt-4))
	}
	return dst
}

// RestoreState restores state captured by AppendState on a cluster with
// the same shard count and configuration.
func (c *Cluster) RestoreState(src []byte) error {
	le := binary.LittleEndian
	if len(src) < 4 {
		return fmt.Errorf("shard: cluster state truncated")
	}
	if n := int(le.Uint32(src)); n != len(c.nodes) {
		return fmt.Errorf("shard: checkpoint has %d shards, cluster has %d", n, len(c.nodes))
	}
	src = src[4:]
	for s, n := range c.nodes {
		if len(src) < 4 {
			return fmt.Errorf("shard: shard %d state length truncated", s)
		}
		size := int(le.Uint32(src))
		src = src[4:]
		if len(src) < size {
			return fmt.Errorf("shard: shard %d state truncated (%d of %d bytes)", s, len(src), size)
		}
		if err := n.srv.RestoreState(src[:size]); err != nil {
			return fmt.Errorf("shard: shard %d: %w", s, err)
		}
		src = src[size:]
	}
	if len(src) != 0 {
		return fmt.Errorf("shard: %d trailing cluster state bytes", len(src))
	}
	return nil
}
