// Sharded-tier state capture: one job's mutable training state is the
// union of its per-shard sub-jobs' states (per-shard optimizer slice +
// pull contexts). Both methods must only be called between steps — after
// FinishStep has returned and before the next BeginStep. At that point
// the job's lane on every shard is empty and the scheduler goroutines
// are not touching its sub-jobs; the FinishStep result channel (capture)
// / the next request enqueue (restore) provide the happens-before edges
// that make the direct sub-job access race-free. Other tenants' traffic
// may keep flowing — their sub-jobs are disjoint.
package shard

import (
	"encoding/binary"
	"fmt"
)

// AppendState serializes every shard sub-job's mutable state to dst, in
// shard order. The model weights are checkpointed separately.
func (h *JobHandle) AppendState(dst []byte) []byte {
	le := binary.LittleEndian
	var b4 [4]byte
	le.PutUint32(b4[:], uint32(len(h.tqs)))
	dst = append(dst, b4[:]...)
	for _, q := range h.tqs {
		lenAt := len(dst)
		dst = append(dst, 0, 0, 0, 0)
		dst = q.job.AppendState(dst)
		le.PutUint32(dst[lenAt:], uint32(len(dst)-lenAt-4))
	}
	return dst
}

// RestoreState restores state captured by AppendState on a job with the
// same shard count and configuration.
func (h *JobHandle) RestoreState(src []byte) error {
	le := binary.LittleEndian
	if len(src) < 4 {
		return fmt.Errorf("shard: cluster state truncated")
	}
	if n := int(le.Uint32(src)); n != len(h.tqs) {
		return fmt.Errorf("shard: checkpoint has %d shards, cluster has %d", n, len(h.tqs))
	}
	src = src[4:]
	for s, q := range h.tqs {
		if len(src) < 4 {
			return fmt.Errorf("shard: shard %d state length truncated", s)
		}
		size := int(le.Uint32(src))
		src = src[4:]
		if len(src) < size {
			return fmt.Errorf("shard: shard %d state truncated (%d of %d bytes)", s, len(src), size)
		}
		if err := q.job.RestoreState(src[:size]); err != nil {
			return fmt.Errorf("shard: shard %d: %w", s, err)
		}
		src = src[size:]
	}
	if len(src) != 0 {
		return fmt.Errorf("shard: %d trailing cluster state bytes", len(src))
	}
	return nil
}
