// Package shard implements the horizontally sharded parameter-server tier
// the paper's architecture sketches in Figure 1: the model's tensors are
// partitioned across N parameter-server shards, each shard owns the
// optimizer state and pull-compression contexts for its tensors, and
// workers push/pull against all shards concurrently through an
// asynchronous pipeline.
//
// The package has two layers:
//
//   - Assignment (this file): a deterministic tensor→shard placement.
//     The primary strategy is size-balanced bin packing (longest-
//     processing-time greedy: biggest tensor to the least-loaded shard),
//     which balances per-shard wire bytes — the quantity that actually
//     limits a shard NIC. A consistent-hash ring is the fallback for
//     settings where tensor sizes are unknown or shard membership is
//     dynamic: adding a shard relocates only ~1/N of the keys.
//   - Cluster (cluster.go): the runtime tier. Each shard runs the
//     zero-allocation codec pool of package ps — per tensor, the fused
//     two-pass compress / one-pass LUT decode kernels of internal/kernel —
//     behind a bounded request queue serviced by its own goroutine, and
//     the push/pull driver pipelines requests to all shards with an
//     in-flight window, per-shard outstanding budgets, and
//     straggler-aware timeout+retry. Because each shard owns a disjoint
//     tensor subset, shard goroutines multiply with the kernels'
//     pass-level fan-out; ps.Config.Parallelism bounds the product per
//     shard exactly as on a single server.
//
// Placement, like compression, is exact: the union of all shards' state
// is byte-identical to a single parameter server's (see
// TestShardedEquivalentToSinglePS).
//
//3lc:det
package shard

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Assignment maps every tensor (by model parameter index) to a shard.
type Assignment struct {
	// NumShards is the shard count N; shard ids are 0..N-1.
	NumShards int
	// ShardOf[i] is the owning shard of tensor i.
	ShardOf []int
}

// Tensors returns the tensor indices owned by shard s, in ascending order.
func (a Assignment) Tensors(s int) []int {
	var out []int
	for i, sh := range a.ShardOf {
		if sh == s {
			out = append(out, i)
		}
	}
	return out
}

// Loads returns the per-shard summed sizes under this assignment.
func (a Assignment) Loads(sizes []int) []int {
	loads := make([]int, a.NumShards)
	for i, s := range a.ShardOf {
		loads[s] += sizes[i]
	}
	return loads
}

// Validate checks structural sanity: every tensor mapped to a shard in
// range, and no empty shard unless there are fewer tensors than shards.
func (a Assignment) Validate(tensors int) error {
	if len(a.ShardOf) != tensors {
		return fmt.Errorf("shard: assignment covers %d tensors, want %d", len(a.ShardOf), tensors)
	}
	seen := make([]bool, a.NumShards)
	for i, s := range a.ShardOf {
		if s < 0 || s >= a.NumShards {
			return fmt.Errorf("shard: tensor %d assigned to shard %d of %d", i, s, a.NumShards)
		}
		seen[s] = true
	}
	if tensors >= a.NumShards {
		for s, ok := range seen {
			if !ok {
				return fmt.Errorf("shard: shard %d owns no tensors", s)
			}
		}
	}
	return nil
}

// Hash returns a stable checksum of the placement. The sharded transport
// handshake exchanges it so a worker and a server tier that computed
// placements from different model descriptions fail fast instead of
// decoding each other's tensors into the wrong slots.
func (a Assignment) Hash() uint32 {
	h := fnv.New32a()
	var b [4]byte
	put := func(v uint32) {
		b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
		h.Write(b[:])
	}
	put(uint32(a.NumShards))
	for _, s := range a.ShardOf {
		put(uint32(s))
	}
	return h.Sum32()
}

// PackBySize builds a size-balanced assignment of tensors to `shards` bins
// using the longest-processing-time greedy rule: tensors are considered in
// descending size order and each goes to the currently least-loaded shard.
// Ties (equal sizes, equal loads) break on the lower index, so the
// placement is a pure function of (sizes, shards) — the same tensor set
// always lands identically, which the wire handshake and the equivalence
// tests rely on. LPT guarantees a per-shard load within 4/3 of optimal.
func PackBySize(sizes []int, shards int) Assignment {
	if shards < 1 {
		shards = 1
	}
	a := Assignment{NumShards: shards, ShardOf: make([]int, len(sizes))}
	order := make([]int, len(sizes))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(x, y int) bool { return sizes[order[x]] > sizes[order[y]] })
	loads := make([]int, shards)
	for _, ti := range order {
		best := 0
		for s := 1; s < shards; s++ {
			if loads[s] < loads[best] {
				best = s
			}
		}
		a.ShardOf[ti] = best
		loads[best] += sizes[ti]
	}
	return a
}

// Ring is a consistent-hash ring over shard ids: each shard projects
// `vnodes` points onto a 64-bit circle and a key belongs to the shard
// owning the first point at or after the key's hash. Placement is a pure
// function of (shard set, vnodes, key), and growing the ring from N to
// N+1 shards relocates only the keys captured by the new shard's points —
// in expectation 1/(N+1) of them (TestRingRebalanceBounded pins the
// bound). It is the assignment fallback when tensor sizes are unknown
// (streaming registration) or shard membership changes at runtime.
type Ring struct {
	points []ringPoint
	vnodes int
}

type ringPoint struct {
	hash  uint64
	shard int
}

// DefaultVnodes is the replica count giving <10% load imbalance at small
// shard counts without making ring construction noticeable.
const DefaultVnodes = 64

// NewRing builds a ring over shards 0..shards-1.
func NewRing(shards, vnodes int) *Ring {
	if shards < 1 {
		shards = 1
	}
	if vnodes < 1 {
		vnodes = DefaultVnodes
	}
	r := &Ring{vnodes: vnodes}
	for s := 0; s < shards; s++ {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: pointHash(s, v), shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].shard < r.points[j].shard
	})
	return r
}

func pointHash(shard, vnode int) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "shard-%d-vnode-%d", shard, vnode)
	return h.Sum64()
}

// ShardFor returns the owning shard of key.
func (r *Ring) ShardFor(key string) int {
	h := fnv.New64a()
	h.Write([]byte(key))
	kh := h.Sum64()
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= kh })
	if i == len(r.points) {
		i = 0 // wrap around the circle
	}
	return r.points[i].shard
}

// AssignByName hashes each tensor name onto the ring.
func (r *Ring) AssignByName(names []string) Assignment {
	shards := 0
	for _, p := range r.points {
		if p.shard+1 > shards {
			shards = p.shard + 1
		}
	}
	a := Assignment{NumShards: shards, ShardOf: make([]int, len(names))}
	for i, n := range names {
		a.ShardOf[i] = r.ShardFor(n)
	}
	return a
}

// Assign places tensors on shards: size-balanced bin packing when sizes
// are known (the normal case — a model's tensor sizes are fixed at
// construction), falling back to consistent hashing by name when they are
// not. Both strategies are deterministic.
func Assign(names []string, sizes []int, shards int) Assignment {
	known := len(sizes) == len(names) && len(sizes) > 0
	for _, s := range sizes {
		if s <= 0 {
			known = false
			break
		}
	}
	if known {
		return PackBySize(sizes, shards)
	}
	return NewRing(shards, DefaultVnodes).AssignByName(names)
}
