package ps

import (
	"sync/atomic"
	"testing"

	"threelc/internal/compress"
	"threelc/internal/nn"
	"threelc/internal/tensor"
)

func TestParallelFor(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 8} {
		for _, n := range []int{0, 1, 7, 100} {
			var hits atomic.Int64
			seen := make([]atomic.Bool, n)
			parallelFor(n, workers, func(i int) {
				hits.Add(1)
				if seen[i].Swap(true) {
					t.Errorf("workers=%d n=%d: index %d visited twice", workers, n, i)
				}
			})
			if int(hits.Load()) != n {
				t.Errorf("workers=%d n=%d: %d calls", workers, n, hits.Load())
			}
		}
	}
}

// TestParallelismMatchesSerial pins the determinism contract of the
// parallel codec fan-out: a run with Parallelism 8 must produce byte-for-
// byte the same push and pull wires as Parallelism 1, because every tensor
// owns its context and its output slot.
func TestParallelismMatchesSerial(t *testing.T) {
	mkPair := func(par int) (*Server, *Worker) {
		cfg := testConfig(compress.SchemeThreeLC, compress.Options{Sparsity: 1.5, ZeroRun: true}, 1)
		cfg.Parallelism = par
		global := testModel(1)
		server := NewServer(global, cfg)
		m := testModel(1)
		m.CopyParamsFrom(global)
		return server, NewWorker(0, m, cfg)
	}
	sSerial, wSerial := mkPair(1)
	sPar, wPar := mkPair(8)

	rng := tensor.NewRNG(21)
	x := tensor.New(5, 8)
	tensor.FillNormal(x, 1, rng)
	labels := []int{0, 1, 2, 0, 1}

	for step := 0; step < 4; step++ {
		wSerial.Model.TrainStep(x, labels)
		wPar.Model.TrainStep(x, labels)

		wiresSerial, _ := wSerial.CompressGrads()
		wiresPar, _ := wPar.CompressGrads()
		if len(wiresSerial) != len(wiresPar) {
			t.Fatal("wire count mismatch")
		}
		for i := range wiresSerial {
			if string(wiresSerial[i]) != string(wiresPar[i]) {
				t.Fatalf("step %d: push wire %d differs between serial and parallel", step, i)
			}
		}

		sSerial.BeginStep()
		sPar.BeginStep()
		if _, err := sSerial.AddPush(0, wiresSerial); err != nil {
			t.Fatal(err)
		}
		if _, err := sPar.AddPush(0, wiresPar); err != nil {
			t.Fatal(err)
		}
		pullSerial, _, err := sSerial.FinishStep()
		if err != nil {
			t.Fatal(err)
		}
		pullPar, _, err := sPar.FinishStep()
		if err != nil {
			t.Fatal(err)
		}
		for i := range pullSerial {
			if string(pullSerial[i]) != string(pullPar[i]) {
				t.Fatalf("step %d: pull wire %d differs between serial and parallel", step, i)
			}
		}
		if _, err := wSerial.ApplyPull(pullSerial); err != nil {
			t.Fatal(err)
		}
		if _, err := wPar.ApplyPull(pullPar); err != nil {
			t.Fatal(err)
		}
	}
}

// benchModel is sized so the codec hot path dominates the measurement
// (largest tensor ~200k elements, ResNet-convlayer scale) instead of the
// per-step fixed overhead a toy model would measure.
func benchModel(seed uint64) *nn.Model {
	return nn.NewMLP(784, []int{256}, 10, seed)
}

// BenchmarkSteadyStatePushPull measures one full codec round trip of the
// parameter-server hot path — worker compress, server decode+aggregate,
// server update+shared-pull compress, worker apply — with all buffers
// recycled. Run with -benchmem: the serial configuration must show ~0
// allocs/op (the parallel pool's goroutine spawns are the only allocs
// otherwise).
func BenchmarkSteadyStatePushPull(b *testing.B) {
	cfg := testConfig(compress.SchemeThreeLC, compress.Options{Sparsity: 1.75, ZeroRun: true}, 1)
	cfg.Parallelism = 1
	global := benchModel(1)
	server := NewServer(global, cfg)
	m := benchModel(1)
	m.CopyParamsFrom(global)
	worker := NewWorker(0, m, cfg)

	rng := tensor.NewRNG(31)
	for _, p := range worker.Model.Params() {
		tensor.FillNormal(p.G, 0.01, rng)
	}
	// Warm up buffer capacities.
	for i := 0; i < 3; i++ {
		steadyStep(b, server, worker)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		steadyStep(b, server, worker)
	}
}

// BenchmarkSteadyStatePushPullStaged is the same round trip through the
// staged decode-then-add reference (Config.StagedAggregate): the
// aggregation baseline the fused decode-accumulate is gated against.
func BenchmarkSteadyStatePushPullStaged(b *testing.B) {
	cfg := testConfig(compress.SchemeThreeLC, compress.Options{Sparsity: 1.75, ZeroRun: true}, 1)
	cfg.Parallelism = 1
	cfg.StagedAggregate = true
	global := benchModel(1)
	server := NewServer(global, cfg)
	m := benchModel(1)
	m.CopyParamsFrom(global)
	worker := NewWorker(0, m, cfg)

	rng := tensor.NewRNG(31)
	for _, p := range worker.Model.Params() {
		tensor.FillNormal(p.G, 0.01, rng)
	}
	for i := 0; i < 3; i++ {
		steadyStep(b, server, worker)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		steadyStep(b, server, worker)
	}
}

func steadyStep(b *testing.B, server *Server, worker *Worker) {
	b.Helper()
	wires, _ := worker.CompressGrads()
	server.BeginStep()
	if _, err := server.AddPush(0, wires); err != nil {
		b.Fatal(err)
	}
	pull, _, err := server.FinishStep()
	if err != nil {
		b.Fatal(err)
	}
	if _, err := worker.ApplyPull(pull); err != nil {
		b.Fatal(err)
	}
}
