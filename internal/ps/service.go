// Service: the job table half of the Job/Service split. A Job owns one
// training job's state; a Service owns NOTHING per job beyond the table
// itself — it is the shared-machinery registry that maps a tenant ID to
// its Job, which is how one process (a shard executor, a transport
// endpoint) hosts many independent jobs. The sharded tier (package
// shard) keeps one Service per shard as that shard's job table.
package ps

import (
	"fmt"
	"sort"
	"sync"

	"threelc/internal/tenant"
)

// Service is a table of independent Jobs keyed by tenant ID. All methods
// are safe for concurrent use; the Jobs themselves keep their own
// single-driver contract.
type Service struct {
	mu   sync.RWMutex
	jobs map[tenant.ID]*Job
}

// NewService returns an empty job table.
func NewService() *Service {
	return &Service{jobs: make(map[tenant.ID]*Job)}
}

// Put registers id's Job. Registering a live id is an error — retire the
// old job first.
func (s *Service) Put(id tenant.ID, j *Job) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.jobs[id]; ok {
		return fmt.Errorf("ps: tenant %d already has a job", id)
	}
	s.jobs[id] = j
	return nil
}

// Get returns id's Job.
func (s *Service) Get(id tenant.ID) (*Job, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Remove retires id's Job from the table and returns it (nil, false if
// id has no job).
func (s *Service) Remove(id tenant.ID) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if ok {
		delete(s.jobs, id)
	}
	return j, ok
}

// Len reports the number of live jobs.
func (s *Service) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.jobs)
}

// IDs returns the live tenant IDs in ascending order.
func (s *Service) IDs() []tenant.ID {
	s.mu.RLock()
	out := make([]tenant.ID, 0, len(s.jobs))
	for id := range s.jobs {
		out = append(out, id)
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
