// Endpoint state capture for fault tolerance. A parameter-server endpoint
// owns two kinds of mutable cross-step state the paper's correctness
// argument depends on: the optimizer (momentum + schedule step, server
// side) and the per-tensor compression contexts (error-accumulation
// buffers, RNG streams; both sides). AppendState/RestoreState serialize
// exactly that — model weights are checkpointed separately (package
// checkpoint), and the recycled wire/scratch buffers carry no semantic
// state. A restored endpoint produces bit-identical wires from the next
// step on.
package ps

import (
	"encoding/binary"
	"fmt"

	"threelc/internal/compress"
)

// appendCtxStates serializes a set of per-tensor compression contexts:
// u32 count, then per context a presence byte and (for stateful schemes)
// a length-prefixed state blob.
func appendCtxStates(dst []byte, ctxs []compress.Compressor) []byte {
	le := binary.LittleEndian
	var b4 [4]byte
	le.PutUint32(b4[:], uint32(len(ctxs)))
	dst = append(dst, b4[:]...)
	for _, ctx := range ctxs {
		sf, ok := ctx.(compress.Stateful)
		if !ok {
			dst = append(dst, 0)
			continue
		}
		dst = append(dst, 1)
		lenAt := len(dst)
		dst = append(dst, 0, 0, 0, 0)
		dst = sf.AppendState(dst)
		le.PutUint32(dst[lenAt:], uint32(len(dst)-lenAt-4))
	}
	return dst
}

// restoreCtxStates restores a context set captured by appendCtxStates,
// returning the remaining input. The context count and each per-context
// statefulness must match — both are fixed by (scheme, shape, options),
// so a mismatch means the checkpoint belongs to a different
// configuration.
func restoreCtxStates(src []byte, ctxs []compress.Compressor) ([]byte, error) {
	le := binary.LittleEndian
	if len(src) < 4 {
		return nil, fmt.Errorf("ps: context state truncated")
	}
	if n := int(le.Uint32(src)); n != len(ctxs) {
		return nil, fmt.Errorf("ps: checkpoint has %d contexts, endpoint has %d", n, len(ctxs))
	}
	src = src[4:]
	for i, ctx := range ctxs {
		if len(src) < 1 {
			return nil, fmt.Errorf("ps: context %d state truncated", i)
		}
		has := src[0]
		src = src[1:]
		sf, stateful := ctx.(compress.Stateful)
		switch has {
		case 0:
			if stateful {
				return nil, fmt.Errorf("ps: context %d is stateful but checkpoint has no state for it", i)
			}
		case 1:
			if len(src) < 4 {
				return nil, fmt.Errorf("ps: context %d state length truncated", i)
			}
			n := int(le.Uint32(src))
			src = src[4:]
			if len(src) < n {
				return nil, fmt.Errorf("ps: context %d state truncated (%d of %d bytes)", i, len(src), n)
			}
			if !stateful {
				return nil, fmt.Errorf("ps: context %d is stateless but checkpoint carries state for it", i)
			}
			if err := sf.RestoreState(src[:n]); err != nil {
				return nil, fmt.Errorf("ps: context %d: %w", i, err)
			}
			src = src[n:]
		default:
			return nil, fmt.Errorf("ps: corrupt context presence byte %d", has)
		}
	}
	return src, nil
}

// AppendState serializes the server's mutable training state — the
// optimizer (momentum, schedule step) and every pull-side compression
// context — to dst. The global model weights are NOT included; checkpoint
// them with package checkpoint.
func (s *Job) AppendState(dst []byte) []byte {
	le := binary.LittleEndian
	lenAt := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	dst = s.optimizer.AppendState(dst)
	le.PutUint32(dst[lenAt:], uint32(len(dst)-lenAt-4))
	return appendCtxStates(dst, s.pullCtx)
}

// RestoreState restores state captured by AppendState on a server with
// the same configuration (tensor set, scheme, options). Malformed input
// returns an error and never panics.
func (s *Job) RestoreState(src []byte) error {
	le := binary.LittleEndian
	if len(src) < 4 {
		return fmt.Errorf("ps: server state truncated")
	}
	n := int(le.Uint32(src))
	src = src[4:]
	if len(src) < n {
		return fmt.Errorf("ps: optimizer state truncated (%d of %d bytes)", len(src), n)
	}
	if err := s.optimizer.RestoreState(src[:n]); err != nil {
		return err
	}
	rest, err := restoreCtxStates(src[n:], s.pullCtx)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return fmt.Errorf("ps: %d trailing server state bytes", len(rest))
	}
	return nil
}

// AppendState serializes the worker's push-side compression contexts to
// dst. The local model replica is checkpointed separately.
func (w *Worker) AppendState(dst []byte) []byte {
	return appendCtxStates(dst, w.pushCtx)
}

// RestoreState restores state captured by AppendState on a worker with
// the same configuration.
func (w *Worker) RestoreState(src []byte) error {
	rest, err := restoreCtxStates(src, w.pushCtx)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return fmt.Errorf("ps: %d trailing worker state bytes", len(rest))
	}
	return nil
}
