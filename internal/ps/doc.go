// Package ps implements the parameter-server architecture of Figure 1/2:
// a server holding the global model and N workers holding local replicas.
// Each training step, workers push compressed gradients, the server
// decompresses and averages them, updates the global model with the local
// optimizer, and publishes compressed model deltas that every worker pulls
// and applies to its replica.
//
// Faithful details from the paper:
//
//   - One compression context per tensor per direction (§3, Figure 2):
//     each worker owns a push context per layer tensor, the server owns a
//     pull context per layer tensor. Contexts carry the error-accumulation
//     state across steps.
//   - Shared compressed pulls (§3, Figure 2b): the server compresses each
//     model delta once and every worker receives the same bytes, avoiding
//     redundant compression work (workers still each consume egress
//     bandwidth, which netsim accounts).
//   - Small-tensor exemption (§5.1): tensors flagged NoCompress (batch
//     norm) or smaller than MinCompressElems bypass compression and travel
//     as raw 32-bit floats.
//   - Batch-norm ownership (§5.2): one designated worker (worker 0) is
//     responsible for batch-norm parameter updates; other workers'
//     NoCompress gradients are ignored by aggregation.
//   - BSP barriers: the step driver (package train) runs all pushes before
//     the update and all pulls after it, the synchronous mode the paper
//     evaluates.
//
// The codec hot path is allocation-free in steady state: workers and the
// server recycle per-tensor wire buffers across steps through the
// append-style compress.CompressInto API, and layer tensors are
// compressed/decompressed concurrently by a bounded worker pool
// (Config.Parallelism). Per tensor, the ternary codecs run on the fused
// kernels of internal/kernel — two passes over tensor memory to compress
// and, on the aggregation side, ONE fused decode-accumulate pass per
// worker payload that streams wire bytes and adds M·q straight into the
// gradient sum (no intermediate decode tensor; payloads are validated
// before the accumulator is touched). Server-side, the step is fused end
// to end: FinishStep's optimizer sweep averages the gradient on the fly,
// applies the update, and folds the model delta directly into the pull
// compressor's error-accumulation buffer with its |max| reduction
// (opt.ApplyFusedStep + compress.PreAccumulator), so compress pass 1
// never runs as its own sweep. The staged decode-then-add / materialized
// delta pipeline remains behind Config.StagedAggregate as the
// bit-identical reference.
//
// Pushes can be ingested per tensor (PushSession.Tensor) so drivers
// overlap aggregation with compression and transport: the server
// decode-adds tensor i the moment its wire exists while tensor i+1 is
// still compressing (see Worker.CompressGradsStream and the streamed
// frames in internal/transport). Per-tensor ingestion in worker order is
// byte-identical to the whole-set AddPush driver. Wire sets returned by
// CompressGrads and FinishStep alias recycled buffers — valid until the
// owner's next step.
//
// # Migrating from the single-job Server API
//
// The multi-tenant service split renamed the server-side types; every old
// name remains as a deprecated alias or shim, so existing code compiles
// unchanged. New code should use the new names:
//
//   - Server is now Job: one job's complete server-side state (codec
//     contexts, error accumulation, optimizer slice, step counters, pull
//     buffers, checkpoint state). `type Server = Job` is a deprecated
//     alias; NewServer and NewSubServer forward to NewJob and NewSubJob.
//   - Service is the tenant-keyed job table (tenant.ID -> *Job) that
//     shared machinery — a shard executor serving many jobs — indexes
//     into. Single-job callers never need it.
//   - Push ingestion flows through one choke point: Job.BeginPush(worker)
//     returns a PushSession whose Set (whole wire set), Tensor (one
//     streamed tensor), and End subsume the three legacy entrypoints.
//     AddPush(w, wires) is now BeginPush(w).Set(wires) followed by End();
//     AddPushTensor(w, i, wire) is BeginPush(w).Tensor(i, wire); EndPush
//     is PushSession.End. The legacy methods remain as thin shims over
//     sessions with identical byte-level behavior.
//
// The BSP step surface (BeginStep / push ingestion / FinishStep) and all
// wire, state, and determinism contracts are unchanged by the rename.
package ps
