package ps

import (
	"testing"

	"threelc/internal/compress"
	"threelc/internal/kernel"
	"threelc/internal/tensor"
)

// TestAllSchemesBitIdenticalAcrossKernelTiers is the dispatch-registry
// acceptance matrix: every compression design runs a full multi-step
// 2-worker push/pull training loop under each available kernel tier
// (scalar / vec / asm), and the final global model state must be
// bit-identical across tiers. Equivalent to running the suite under each
// THREELC_KERNEL value; SetTier swaps the same dispatch set the env pin
// does.
func TestAllSchemesBitIdenticalAcrossKernelTiers(t *testing.T) {
	schemes := []struct {
		name string
		s    compress.Scheme
		o    compress.Options
	}{
		{"none", compress.SchemeNone, compress.Options{}},
		{"int8", compress.SchemeInt8, compress.Options{}},
		{"3lc", compress.SchemeThreeLC, compress.Options{Sparsity: 1.5, ZeroRun: true}},
		{"3lc-nozre", compress.SchemeThreeLC, compress.Options{Sparsity: 1.0}},
		{"stoch3qe", compress.SchemeStoch3QE, compress.Options{Seed: 7}},
		{"onebit", compress.SchemeMQE1Bit, compress.Options{}},
		{"topk", compress.SchemeTopK, compress.Options{Fraction: 0.25, Seed: 9}},
		{"localsteps", compress.SchemeLocalSteps, compress.Options{Interval: 2}},
		{"roundrobin", compress.SchemeRoundRobin, compress.Options{Parts: 2}},
	}
	tiers := kernel.AvailableTiers()
	orig := kernel.ActiveTier()
	defer kernel.SetTier(orig)

	for _, sc := range schemes {
		t.Run(sc.name, func(t *testing.T) {
			var ref [][]float32
			for _, tier := range tiers {
				kernel.SetTier(tier)
				got := runSchemeSteps(t, sc.s, sc.o)
				if ref == nil {
					ref = got
					continue
				}
				assertSameState(t, got, ref, tiers[0].String()+" tier")
			}
		})
	}
}

// runSchemeSteps drives 4 full training steps on a 2-worker cluster with
// the given design and returns the final global parameter data.
func runSchemeSteps(t *testing.T, s compress.Scheme, o compress.Options) [][]float32 {
	t.Helper()
	cfg := testConfig(s, o, 2)
	cfg.Parallelism = 2
	global := testModel(1)
	server := NewServer(global, cfg)
	workers := make([]*Worker, 2)
	for id := range workers {
		m := testModel(1)
		m.CopyParamsFrom(global)
		workers[id] = NewWorker(id, m, cfg)
	}
	rng := tensor.NewRNG(123)
	x := tensor.New(5, 8)
	tensor.FillNormal(x, 1, rng)
	labels := []int{0, 1, 2, 0, 1}
	for step := 0; step < 4; step++ {
		server.BeginStep()
		for _, w := range workers {
			w.Model.TrainStep(x, labels)
			wires, _ := w.CompressGrads()
			if _, err := server.AddPush(w.ID, wires); err != nil {
				t.Fatal(err)
			}
		}
		pull, _, err := server.FinishStep()
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range workers {
			if _, err := w.ApplyPull(pull); err != nil {
				t.Fatal(err)
			}
		}
	}
	var out [][]float32
	for _, p := range global.Params() {
		out = append(out, append([]float32(nil), p.W.Data()...))
	}
	return out
}
