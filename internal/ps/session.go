// PushSession: the single push choke point. The server side historically
// grew three overlapping push entrypoints — the whole-set AddPush, the
// per-tensor AddPushTensor/EndPush pair, and the streamed per-tensor
// transport frames that land on the latter. A PushSession subsumes all
// three behind one object: a driver opens a session per worker per step
// (BeginPush), feeds it either one whole set (Set) or tensors as they
// materialize (Tensor), and completes it (End). Every push in the system
// now flows through a session, which is what gives the multi-tenant
// shard scheduler (package shard) a single place to meter, charge, and
// order tenant traffic.
package ps

import (
	"time"

	"threelc/internal/nn"
)

// PushSession ingests one worker's gradient push for one step. Obtain
// one from Job.BeginPush (or the sharded tier's equivalent). Exactly one
// of Set (whole-set) or a series of Tensor calls (per-tensor, any tensor
// order, each tensor exactly once) feeds the push; End completes it,
// advancing the push count the step's averaging divides by.
//
// Sessions are recycled per (job, worker) — they are valid until the
// owning job's next BeginPush for the same worker — and a session's
// methods must be called from the job's single aggregation driver
// (different tensors of one session may still decode concurrently
// underneath, exactly as AddPushTensor allowed).
type PushSession interface {
	// Set ingests the worker's full wire set (one wire per model tensor).
	Set(wires [][]byte) error
	// Tensor ingests a single tensor's wire. Calls for the SAME tensor
	// index across workers must arrive in worker order (per-tensor
	// accumulation order is what keeps the aggregate byte-identical to
	// the whole-set driver).
	Tensor(i int, wire []byte) error
	// End completes the push. Required after Set and Tensor alike.
	End() error
}

// pushSession is Job's recycled PushSession implementation; one lives in
// Job.sessions per worker id, so BeginPush allocates nothing in steady
// state.
type pushSession struct {
	j      *Job
	worker int
	dur    time.Duration
}

// BeginPush opens workerID's push session for the current step. The
// returned session is recycled: it is valid until the next BeginPush for
// the same worker on this job.
func (s *Job) BeginPush(workerID int) PushSession {
	for workerID >= len(s.sessions) {
		s.sessions = append(s.sessions, pushSession{j: s})
	}
	se := &s.sessions[workerID]
	se.worker = workerID
	se.dur = 0
	return se
}

func (p *pushSession) Set(wires [][]byte) error {
	d, err := p.j.ingestSet(p.worker, wires)
	p.dur += d
	return err
}

func (p *pushSession) Tensor(i int, wire []byte) error {
	return p.j.ingestTensor(p.worker, i, wire)
}

func (p *pushSession) End() error {
	p.j.endPush()
	return nil
}

// Server is the pre-multi-tenant name of Job.
//
// Deprecated: use Job. The alias (and the NewServer/NewSubServer
// constructors) keep existing callers and examples compiling; new code
// should speak Job/Service, where one process hosts many jobs.
type Server = Job

// NewServer wraps the global model.
//
// Deprecated: use NewJob.
func NewServer(model *nn.Model, cfg Config) *Job {
	return NewJob(model, cfg)
}

// NewSubServer builds a job over a subset of a model's parameters.
//
// Deprecated: use NewSubJob.
func NewSubServer(params []*nn.Param, globalIdx []int, cfg Config) *Job {
	return NewSubJob(params, globalIdx, cfg)
}
