// Package ps implements the parameter-server architecture of Figure 1/2:
// a server holding the global model and N workers holding local replicas.
// Each training step, workers push compressed gradients, the server
// decompresses and averages them, updates the global model with the local
// optimizer, and publishes compressed model deltas that every worker pulls
// and applies to its replica.
//
// Faithful details from the paper:
//
//   - One compression context per tensor per direction (§3, Figure 2):
//     each worker owns a push context per layer tensor, the server owns a
//     pull context per layer tensor. Contexts carry the error-accumulation
//     state across steps.
//   - Shared compressed pulls (§3, Figure 2b): the server compresses each
//     model delta once and every worker receives the same bytes, avoiding
//     redundant compression work (workers still each consume egress
//     bandwidth, which netsim accounts).
//   - Small-tensor exemption (§5.1): tensors flagged NoCompress (batch
//     norm) or smaller than MinCompressElems bypass compression and travel
//     as raw 32-bit floats.
//   - Batch-norm ownership (§5.2): one designated worker (worker 0) is
//     responsible for batch-norm parameter updates; other workers'
//     NoCompress gradients are ignored by aggregation.
//   - BSP barriers: the step driver (package train) runs all pushes before
//     the update and all pulls after it, the synchronous mode the paper
//     evaluates.
package ps

import (
	"fmt"
	"time"

	"threelc/internal/compress"
	"threelc/internal/nn"
	"threelc/internal/opt"
	"threelc/internal/tensor"
)

// Config selects the traffic-reduction design and cluster shape.
type Config struct {
	// Scheme picks the compression design for both pushes and pulls.
	Scheme compress.Scheme
	// Opts carries scheme parameters (sparsity multiplier, fraction, ...).
	Opts compress.Options
	// Workers is the cluster size.
	Workers int
	// MinCompressElems exempts tensors with fewer elements from
	// compression (they go as raw floats). The paper exempts small layers
	// because "avoiding computation overhead far outweighs compacting
	// already small tensors".
	MinCompressElems int
	// Optimizer configures the server-side SGD.
	Optimizer opt.SGDConfig
}

// shouldCompress applies the paper's small-tensor exemption rule; both
// endpoints use it so wire formats always agree.
func (c Config) shouldCompress(p *nn.Param) bool {
	if c.Scheme == compress.SchemeNone {
		return false
	}
	if p.NoCompress {
		return false
	}
	return p.W.Len() >= c.MinCompressElems
}

func (c Config) newContext(p *nn.Param, seed uint64) compress.Compressor {
	if !c.shouldCompress(p) {
		return compress.New(compress.SchemeNone, p.W.Shape(), compress.Options{})
	}
	o := c.Opts
	o.Seed ^= seed
	return compress.New(c.Scheme, p.W.Shape(), o)
}

// Server owns the global model, the optimizer, and the pull-side
// compression contexts.
type Server struct {
	Model *nn.Model

	cfg       Config
	optimizer *opt.SGD
	params    []*nn.Param
	pullCtx   []compress.Compressor
	gradSum   []*tensor.Tensor
	prevW     []*tensor.Tensor
	delta     []*tensor.Tensor
	decode    []*tensor.Tensor
	pushes    int
}

// NewServer wraps the global model. The model's current parameters become
// the initial global state.
func NewServer(model *nn.Model, cfg Config) *Server {
	s := &Server{
		Model:     model,
		cfg:       cfg,
		optimizer: opt.NewSGD(cfg.Optimizer),
		params:    model.Params(),
	}
	for i, p := range s.params {
		s.pullCtx = append(s.pullCtx, cfg.newContext(p, 0x5345525645520000+uint64(i))) // "SERVER"
		s.gradSum = append(s.gradSum, tensor.New(p.W.Shape()...))
		s.prevW = append(s.prevW, tensor.New(p.W.Shape()...))
		s.delta = append(s.delta, tensor.New(p.W.Shape()...))
		s.decode = append(s.decode, tensor.New(p.W.Shape()...))
	}
	return s
}

// BeginStep resets gradient aggregation for a new training step.
func (s *Server) BeginStep() {
	for _, g := range s.gradSum {
		g.Zero()
	}
	s.pushes = 0
}

// AddPush decompresses one worker's gradient push and accumulates it.
// NoCompress tensors (batch norm) are taken from worker 0 only.
// It returns the decompression wall time.
func (s *Server) AddPush(workerID int, wires [][]byte) (time.Duration, error) {
	if len(wires) != len(s.params) {
		return 0, fmt.Errorf("ps: push has %d tensors, model has %d", len(wires), len(s.params))
	}
	start := time.Now()
	for i, p := range s.params {
		if p.NoCompress && workerID != 0 {
			continue
		}
		if err := compress.DecompressInto(wires[i], s.decode[i]); err != nil {
			return 0, fmt.Errorf("ps: push tensor %q: %w", p.Name, err)
		}
		s.gradSum[i].Add(s.decode[i])
	}
	s.pushes++
	return time.Since(start), nil
}

// FinishStep averages the aggregated gradients, applies the optimizer to
// the global model, and returns the compressed model-delta wires shared by
// all workers, plus the server-side codec wall time.
func (s *Server) FinishStep() ([][]byte, time.Duration, error) {
	if s.pushes == 0 {
		return nil, 0, fmt.Errorf("ps: FinishStep with no pushes")
	}
	inv := 1 / float32(s.pushes)
	for i, p := range s.params {
		if p.NoCompress {
			// Single designated owner: gradient used as-is.
			p.G.CopyFrom(s.gradSum[i])
			continue
		}
		s.gradSum[i].Scale(inv)
		p.G.CopyFrom(s.gradSum[i])
	}

	// Snapshot weights, update, compute deltas.
	for i, p := range s.params {
		s.prevW[i].CopyFrom(p.W)
	}
	s.optimizer.Apply(s.params)
	for i, p := range s.params {
		s.delta[i].CopyFrom(p.W)
		s.delta[i].Sub(s.prevW[i])
	}

	// Shared pull compression: one wire per tensor for all workers.
	start := time.Now()
	wires := make([][]byte, len(s.params))
	for i := range s.params {
		wires[i] = s.pullCtx[i].Compress(s.delta[i])
	}
	return wires, time.Since(start), nil
}

// Step returns the number of optimizer updates applied.
func (s *Server) Step() int { return s.optimizer.Step() }

// LR returns the learning rate the optimizer will use at its current step.
func (s *Server) LR() float64 { return s.optimizer.LR(s.optimizer.Step()) }

// Worker is one training node: a local model replica plus push-side
// compression contexts.
type Worker struct {
	ID    int
	Model *nn.Model

	cfg     Config
	params  []*nn.Param
	pushCtx []compress.Compressor
	scratch []*tensor.Tensor
}

// NewWorker wraps a local model replica (which must start identical to the
// server's global model).
func NewWorker(id int, model *nn.Model, cfg Config) *Worker {
	w := &Worker{ID: id, Model: model, cfg: cfg, params: model.Params()}
	for i, p := range w.params {
		w.pushCtx = append(w.pushCtx, cfg.newContext(p, 0x574f524b00000000+uint64(id)<<16+uint64(i))) // "WORK"
		w.scratch = append(w.scratch, tensor.New(p.W.Shape()...))
	}
	return w
}

// CompressGrads compresses the gradients currently held in the local
// model's parameter tensors (set by Model.TrainStep) and returns the push
// wires plus the compression wall time.
func (w *Worker) CompressGrads() ([][]byte, time.Duration) {
	start := time.Now()
	wires := make([][]byte, len(w.params))
	for i, p := range w.params {
		wires[i] = w.pushCtx[i].Compress(p.G)
	}
	return wires, time.Since(start)
}

// ApplyPull decompresses the shared model-delta wires and applies them to
// the local replica. It returns the decompression wall time.
func (w *Worker) ApplyPull(wires [][]byte) (time.Duration, error) {
	if len(wires) != len(w.params) {
		return 0, fmt.Errorf("ps: pull has %d tensors, model has %d", len(wires), len(w.params))
	}
	start := time.Now()
	for i, p := range w.params {
		if err := compress.DecompressInto(wires[i], w.scratch[i]); err != nil {
			return 0, fmt.Errorf("ps: pull tensor %q: %w", p.Name, err)
		}
		p.W.Add(w.scratch[i])
	}
	return time.Since(start), nil
}

// WireBytes sums the byte sizes of a wire set.
func WireBytes(wires [][]byte) int {
	n := 0
	for _, w := range wires {
		n += len(w)
	}
	return n
}
