package ps

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"threelc/internal/compress"
	"threelc/internal/nn"
	"threelc/internal/opt"
	"threelc/internal/tensor"
)

// Config selects the traffic-reduction design and cluster shape.
type Config struct {
	// Scheme picks the compression design for both pushes and pulls.
	Scheme compress.Scheme
	// Opts carries scheme parameters (sparsity multiplier, fraction, ...).
	Opts compress.Options
	// Workers is the cluster size.
	Workers int
	// MinCompressElems exempts tensors with fewer elements from
	// compression (they go as raw floats). The paper exempts small layers
	// because "avoiding computation overhead far outweighs compacting
	// already small tensors".
	MinCompressElems int
	// Parallelism bounds the worker pool that compresses / decompresses a
	// node's layer tensors concurrently (contexts are per-tensor, so
	// per-tensor fan-out is safe). Zero means GOMAXPROCS; 1 forces the
	// serial path.
	Parallelism int
	// StagedAggregate routes the decode-accumulate hot paths — server-side
	// push aggregation and worker-side pull apply — through the staged
	// decode-then-add reference (decode into scratch, then a separate add
	// sweep) instead of the fused single-pass kernels. The two are
	// bit-identical for every codec (pinned by differential tests); the
	// staged path remains as the reference implementation and the
	// benchmark baseline. It also disables small-tensor batching (the
	// reference configuration keeps every per-tensor stage separate).
	StagedAggregate bool
	// SmallTensorElems coalesces a node's compressed 3LC tensors with
	// fewer elements than this into one batched compression unit
	// (compress.TernaryBatch): their error-accumulation buffers share a
	// contiguous arena and each push/pull runs them as a single pool job
	// with serial kernels and a shared wire arena, eliminating per-tensor
	// dispatch, pool scheduling, and wire bookkeeping on a model's long
	// tail of bias/scale vectors. Wires and state are bit-identical to
	// unbatched contexts. Zero means DefaultSmallTensorElems; negative
	// disables batching. Only SchemeThreeLC tensors batch (other schemes
	// and exempt tensors keep per-tensor contexts), and batching engages
	// only when at least two tensors qualify.
	SmallTensorElems int
	// Optimizer configures the server-side SGD.
	Optimizer opt.SGDConfig
}

// DefaultSmallTensorElems is the batching threshold Config.SmallTensorElems
// selects when zero: tensors this size compress in a few microseconds, so
// per-tensor pool dispatch is a measurable fraction of their cost.
const DefaultSmallTensorElems = 4096

// batchThreshold resolves the small-tensor batching threshold: 0 means
// batching is disabled (negative setting, or the staged reference
// configuration).
func (c Config) batchThreshold() int {
	if c.SmallTensorElems < 0 || c.StagedAggregate {
		return 0
	}
	if c.SmallTensorElems == 0 {
		return DefaultSmallTensorElems
	}
	return c.SmallTensorElems
}

// batchEligible reports whether tensor p joins the node's ternary batch:
// a compressed 3LC tensor below the batching threshold. The entropy
// second stage opts out — TernaryBatch members emit into a shared wire
// arena without the wrapper, and WAN configurations care about bytes,
// not tiny-tensor dispatch overhead.
func (c Config) batchEligible(p *nn.Param) bool {
	thr := c.batchThreshold()
	return thr > 0 && c.Scheme == compress.SchemeThreeLC &&
		c.Opts.Entropy == compress.EntropyOff &&
		c.shouldCompress(p) && p.W.Len() < thr
}

// buildBatch partitions a node's tensors into the coalesced tiny-tensor
// batch and the per-tensor job list. It returns the batch (nil when
// fewer than two tensors qualify — one tiny tensor gains nothing from an
// arena), the model indices of its members in member order, and the pool
// job list: one entry per unbatched tensor holding its model index, plus
// a single batchJob sentinel covering every member. Job order does not
// affect bytes (the pool is dynamic and per-tensor state is
// independent); the batch job leads so the longest job starts first.
func (c Config) buildBatch(params []*nn.Param) (batch *compress.TernaryBatch, batchIdx, jobs []int) {
	var shapes [][]int
	for i, p := range params {
		if c.batchEligible(p) {
			batchIdx = append(batchIdx, i)
			shapes = append(shapes, p.W.Shape())
		}
	}
	if len(batchIdx) < 2 {
		jobs = make([]int, len(params))
		for i := range jobs {
			jobs[i] = i
		}
		return nil, nil, jobs
	}
	jobs = append(jobs, batchJob)
	inBatch := make(map[int]bool, len(batchIdx))
	for _, i := range batchIdx {
		inBatch[i] = true
	}
	for i := range params {
		if !inBatch[i] {
			jobs = append(jobs, i)
		}
	}
	return compress.NewTernaryBatch(shapes, c.Opts), batchIdx, jobs
}

// batchJob is the job-list sentinel for the coalesced tiny-tensor batch.
const batchJob = -1

// kernelBudget splits the node's goroutine budget between the two levels
// of fan-out: the per-tensor pool takes min(par, tensors) workers and
// each tensor's kernels get the remainder, so the product stays ~par.
func (c Config) kernelBudget(tensors int) int {
	par := c.parallelism()
	pool := par
	if tensors > 0 && tensors < pool {
		pool = tensors
	}
	b := par / pool
	if b < 1 {
		b = 1
	}
	return b
}

// parallelism resolves the configured codec fan-out.
func (c Config) parallelism() int {
	if c.Parallelism > 0 {
		return c.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// spawnHook, when non-nil, is called once per goroutine parallelFor
// spawns — the scheduling test double for the caller-runs-too pool shape.
// Production code must leave it nil.
var spawnHook func()

// parallelFor runs fn(i) for i in [0, n) on up to `workers` goroutines — a
// bounded pool fed by an atomic counter, so uneven per-tensor costs (one
// conv layer dwarfing the biases) balance dynamically. workers <= 1 runs
// serially on the caller's goroutine with zero spawns; otherwise workers-1
// goroutines are spawned and the caller joins the pool itself instead of
// idling in Wait.
func parallelFor(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	loop := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			fn(i)
		}
	}
	wg.Add(workers - 1)
	for g := 0; g < workers-1; g++ {
		if spawnHook != nil {
			spawnHook()
		}
		go func() {
			defer wg.Done()
			loop()
		}()
	}
	loop()
	wg.Wait()
}

// shouldCompress applies the paper's small-tensor exemption rule; both
// endpoints use it so wire formats always agree.
func (c Config) shouldCompress(p *nn.Param) bool {
	if c.Scheme == compress.SchemeNone {
		return false
	}
	if p.NoCompress {
		return false
	}
	return p.W.Len() >= c.MinCompressElems
}

// newContext builds the compression context for one of `tensors` model
// tensors on this node.
func (c Config) newContext(p *nn.Param, seed uint64, tensors int) compress.Compressor {
	if !c.shouldCompress(p) {
		return compress.New(compress.SchemeNone, p.W.Shape(), compress.Options{})
	}
	o := c.Opts
	o.Seed ^= seed
	if o.CodecParallelism == 0 {
		// Split the node's goroutine budget across the per-tensor pool and
		// each context's fused kernels (kernelBudget). Below the
		// per-context cap the scheduling is pass-count aware
		// (kernel.PassWorkers): each of the two fused compress passes sizes
		// its own fan-out to that pass's per-element work, so the cap set
		// here is a ceiling, not a fixed spawn count. A single-tensor model
		// gets full chunk parallelism; a many-tensor model gets serial
		// kernels under a wide pool; Parallelism=1 means fully serial
		// everywhere.
		o.CodecParallelism = c.kernelBudget(tensors)
	}
	return compress.New(c.Scheme, p.W.Shape(), o)
}

// Job owns ALL of one training job's server-side state: the global
// model, the optimizer (momentum, schedule step), the pull-side
// compression contexts with their error-accumulation buffers, the
// gradient aggregation buffers, and the step/push counters. A Job holds
// no shared machinery — shards, queues, transports, and schedulers live
// elsewhere and treat a Job as a value in a job table (ps.Service,
// package shard) keyed by tenant, which is what lets many independent
// jobs multiplex over one shard tier.
//
// Job was previously exported as Server; see the Deprecated aliases.
type Job struct {
	Model *nn.Model

	cfg       Config
	optimizer *opt.SGD
	params    []*nn.Param
	pullCtx   []compress.Compressor
	gradSum   []*tensor.Tensor
	delta     []*tensor.Tensor
	decode    []*tensor.Tensor          // staged-reference decode scratch (StagedAggregate only)
	pullWires [][]byte                  // per-tensor pull wire buffers, recycled across steps
	errs      []error                   // per-tensor error slots for parallel decode, recycled
	decPar    int                       // per-tensor kernel fan-out for fused decode-add
	dirty     []bool                    // per-tensor: gradSum holds this step's data (fused path)
	preAcc    []compress.PreAccumulator // pull contexts with a fusable accumulate pass (nil slots otherwise)
	accMax    []float32                 // per-tensor max|acc| from the fused optimizer sweep
	pushes    int

	// Small-tensor batching (Config.SmallTensorElems): tiny 3LC pull
	// contexts coalesced over one arena, run as a single pool job.
	batch    *compress.TernaryBatch
	batchIdx []int     // model indices of batch members, in member order
	jobs     []int     // pool job list: model index, or batchJob sentinel
	batchMax []float32 // argument slot: accMax gathered in member order

	// Bound once at construction so the parallelFor call sites pass a
	// stored func value instead of a closure literal — closure allocation
	// is the last per-step heap traffic on an otherwise zero-alloc path.
	addPushFn    func(i int)
	pullPackFn   func(i int)
	accForFn     func(i int) []float32
	gradForFn    func(i int) ([]float32, float32)
	inv          float32  // averaging scale of the step being finished
	pushWorkerID int      // argument slot for addPushFn
	pushSrc      [][]byte // argument slot for addPushFn

	// Per-worker push sessions, recycled across steps so BeginPush stays
	// allocation-free in steady state (grown on first contact with a
	// worker id, never during a step's hot path).
	sessions []pushSession
}

// NewJob wraps the global model of one training job. The model's current
// parameters become the initial global state.
func NewJob(model *nn.Model, cfg Config) *Job {
	s := newJob(model.Params(), nil, cfg)
	s.Model = model
	return s
}

// NewSubJob builds a job over a subset of a model's parameters — one
// shard of a horizontally partitioned parameter-server tier (package
// shard). globalIdx[i] is the index params[i] has in the full model's
// parameter list; compression contexts are seeded by that global index, so
// the union of all shards' pull wires is byte-identical to what a single
// NewJob over the whole model would produce. The optimizer is applied
// per shard; because SGD state (velocity, schedule step) has no
// cross-tensor coupling, the per-shard updates equal the single-server
// ones exactly. Model is nil on a sub-job.
func NewSubJob(params []*nn.Param, globalIdx []int, cfg Config) *Job {
	if len(globalIdx) != len(params) {
		panic(fmt.Sprintf("ps: %d params but %d global indices", len(params), len(globalIdx)))
	}
	return newJob(params, globalIdx, cfg)
}

// newJob is the shared constructor: globalIdx == nil means the identity
// mapping (full-model job).
func newJob(params []*nn.Param, globalIdx []int, cfg Config) *Job {
	s := &Job{
		cfg:       cfg,
		optimizer: opt.NewSGD(cfg.Optimizer),
		params:    params,
	}
	s.batch, s.batchIdx, s.jobs = cfg.buildBatch(params)
	member := 0
	for i, p := range params {
		gi := i
		if globalIdx != nil {
			gi = globalIdx[i]
		}
		if member < len(s.batchIdx) && s.batchIdx[member] == i {
			// Batched tiny tensor: the context is the batch's member, so
			// per-tensor decode, checkpointing (state.go walks pullCtx),
			// and any direct CompressInto work unchanged — only the
			// pull-pack job routes through the coalesced encode.
			s.pullCtx = append(s.pullCtx, s.batch.Member(member))
			member++
		} else {
			s.pullCtx = append(s.pullCtx, cfg.newContext(p, 0x5345525645520000+uint64(gi), len(s.params))) // "SERVER"
		}
		s.gradSum = append(s.gradSum, tensor.New(p.W.Shape()...))
		s.delta = append(s.delta, tensor.New(p.W.Shape()...))
		if cfg.StagedAggregate {
			// The fused decode-accumulate needs no per-tensor decode
			// scratch; only the staged reference path does.
			s.decode = append(s.decode, tensor.New(p.W.Shape()...))
		}
	}
	s.batchMax = make([]float32, len(s.batchIdx))
	s.decPar = cfg.kernelBudget(len(s.params))
	s.dirty = make([]bool, len(s.params))
	s.pullWires = make([][]byte, len(s.params))
	s.errs = make([]error, len(s.params))
	s.preAcc = make([]compress.PreAccumulator, len(s.params))
	s.accMax = make([]float32, len(s.params))
	for i, ctx := range s.pullCtx {
		if pa, ok := ctx.(compress.PreAccumulator); ok {
			s.preAcc[i] = pa
		}
	}
	s.addPushFn = s.addPushJob
	s.pullPackFn = s.pullPackJob
	s.accForFn = s.accBufFor
	s.gradForFn = s.gradBufFor
	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	s.sessions = make([]pushSession, workers)
	for i := range s.sessions {
		s.sessions[i].j = s
	}
	return s
}

// gradBufFor hands the optimizer tensor i's raw gradient sum plus the
// averaging scale to fuse into the read — 1 for the batch-norm tensors a
// single designated worker owns (and 1 is the float32 multiplicative
// identity, so the fused multiply equals the staged straight copy
// whenever only one push was accepted).
func (s *Job) gradBufFor(i int) ([]float32, float32) {
	if s.params[i].NoCompress {
		return s.gradSum[i].Data(), 1
	}
	return s.gradSum[i].Data(), s.inv
}

// accBufFor hands the optimizer the pull context's error-accumulation
// buffer for tensors whose compress pass 1 can absorb the delta write
// (compress.PreAccumulator); nil keeps the materialized-delta path. The
// staged reference configuration keeps every pass separate.
func (s *Job) accBufFor(i int) []float32 {
	if s.cfg.StagedAggregate || s.preAcc[i] == nil {
		return nil
	}
	return s.preAcc[i].AccData()
}

// BeginStep resets gradient aggregation for a new training step. The
// fused path resets per-tensor dirty flags instead of sweeping the sum
// buffers to zero: each tensor's first accumulation of the step either
// decodes straight over the stale buffer (DecompressFirstAddInto, when
// bit-safe) or zeroes it just-in-time. The staged reference keeps the
// explicit zeroing sweep.
func (s *Job) BeginStep() {
	if s.cfg.StagedAggregate {
		for _, g := range s.gradSum {
			g.Zero()
		}
	} else {
		for i := range s.dirty {
			s.dirty[i] = false
		}
	}
	s.pushes = 0
}

// AddPush decode-accumulates one worker's gradient push and completes it
// (no EndPush needed). It returns the decompression wall time.
//
// Deprecated: use BeginPush — Set on the session is this call, End is the
// implicit completion. AddPush remains as a thin shim for existing
// drivers.
func (s *Job) AddPush(workerID int, wires [][]byte) (time.Duration, error) {
	d, err := s.ingestSet(workerID, wires)
	if err != nil {
		return 0, err
	}
	s.pushes++
	return d, nil
}

// ingestSet decode-accumulates one worker's whole-set push, fanning out
// across layer tensors (each tensor owns its gradient-sum buffer, so
// per-tensor parallelism is safe). Each tensor runs the fused
// decode-accumulate — one LUT-driven pass that adds M·q straight into the
// aggregation buffer, no intermediate decode tensor — unless
// Config.StagedAggregate selects the staged decode-then-add reference.
// NoCompress tensors (batch norm) are taken from worker 0 only. It does
// NOT advance the push count — that is the session End (or the AddPush
// shim).
func (s *Job) ingestSet(workerID int, wires [][]byte) (time.Duration, error) {
	if len(wires) != len(s.params) {
		return 0, fmt.Errorf("ps: push has %d tensors, model has %d", len(wires), len(s.params))
	}
	start := time.Now()
	s.pushWorkerID, s.pushSrc = workerID, wires
	parallelFor(len(s.jobs), s.cfg.parallelism(), s.addPushFn)
	s.pushSrc = nil
	for _, err := range s.errs {
		if err != nil {
			return 0, err
		}
	}
	return time.Since(start), nil
}

// addPushJob runs pool job j of the push staged in pushWorkerID/pushSrc:
// one tensor, or — for the batch job — every batched tiny tensor back to
// back on this goroutine (their individual decodes cost less than a pool
// hand-off; per-tensor decode-add semantics are unchanged, so the
// aggregate stays bit-identical to unbatched).
func (s *Job) addPushJob(j int) {
	i := s.jobs[j]
	if i != batchJob {
		s.addPushOne(i)
		return
	}
	for _, bi := range s.batchIdx {
		s.addPushOne(bi)
	}
}

// addPushOne decode-accumulates tensor i of the push staged in
// pushWorkerID/pushSrc.
func (s *Job) addPushOne(i int) {
	p := s.params[i]
	s.errs[i] = nil
	if p.NoCompress && s.pushWorkerID != 0 {
		return
	}
	if err := s.decodeAdd(i, s.pushSrc[i]); err != nil {
		s.errs[i] = fmt.Errorf("ps: push tensor %q: %w", p.Name, err)
	}
}

// decodeAdd accumulates one wire into gradSum[i]: the fused single-pass
// registry path by default, the staged decode-then-add reference under
// StagedAggregate. Both leave the accumulator bit-identical; a malformed
// wire leaves it untouched either way.
func (s *Job) decodeAdd(i int, wire []byte) error {
	if s.cfg.StagedAggregate {
		if err := compress.DecompressInto(wire, s.decode[i]); err != nil {
			return err
		}
		s.gradSum[i].Add(s.decode[i])
		return nil
	}
	if !s.dirty[i] {
		s.dirty[i] = true
		return compress.DecompressFirstAddInto(wire, s.gradSum[i], s.decPar)
	}
	return compress.DecompressAddInto(wire, s.gradSum[i], s.decPar)
}

// AddPushTensor decode-accumulates a single tensor of workerID's push.
//
// Deprecated: use BeginPush — Tensor on the session is this call. The
// shim remains for existing per-tensor drivers.
func (s *Job) AddPushTensor(workerID, i int, wire []byte) error {
	return s.ingestTensor(workerID, i, wire)
}

// ingestTensor decode-accumulates a single tensor of workerID's push —
// the per-tensor ingestion path behind the overlapped push/aggregate
// pipeline: a driver can feed each tensor the moment its wire is
// available (a transport frame landing, a compressor finishing) instead
// of staging the worker's full wire set. Different tensors may be
// ingested concurrently; pushes of the SAME tensor must arrive in worker
// order — per-tensor accumulation order is what keeps the aggregate
// byte-identical to the serial whole-set driver. After a worker's last
// tensor, the session End must run exactly once.
func (s *Job) ingestTensor(workerID, i int, wire []byte) error {
	if i < 0 || i >= len(s.params) {
		return fmt.Errorf("ps: push tensor index %d out of range (model has %d tensors)", i, len(s.params))
	}
	p := s.params[i]
	if p.NoCompress && workerID != 0 {
		return nil
	}
	if err := s.decodeAdd(i, wire); err != nil {
		return fmt.Errorf("ps: push tensor %q: %w", p.Name, err)
	}
	return nil
}

// NumTensors returns the number of model tensors this server owns — the
// tensor count a per-tensor push must cover (transports use it to verify
// stream completeness).
func (s *Job) NumTensors() int {
	return len(s.params)
}

// EndPush marks one worker's per-tensor push (AddPushTensor) complete,
// advancing the push count FinishStep's averaging divides by. AddPush
// counts implicitly; per-tensor drivers must call EndPush themselves.
// The error is always nil (the signature matches the sharded tier's
// EndPush, whose enqueue can fail).
//
// Deprecated: use BeginPush — End on the session is this call.
func (s *Job) EndPush() error {
	s.endPush()
	return nil
}

// endPush advances the push count FinishStep's averaging divides by.
func (s *Job) endPush() {
	s.pushes++
}

// FinishStep averages the aggregated gradients, applies the optimizer to
// the global model, and returns the compressed model-delta wires shared by
// all workers, plus the server-side codec wall time. The wire slices are
// backed by server-owned buffers recycled across steps: they are valid
// until the next FinishStep, and callers that keep them longer (stale
// synchronous emulation) must copy the bytes.
func (s *Job) FinishStep() ([][]byte, time.Duration, error) {
	if s.pushes == 0 {
		return nil, 0, fmt.Errorf("ps: FinishStep with no pushes")
	}
	s.inv = 1 / float32(s.pushes)
	if s.cfg.StagedAggregate {
		// Staged reference: materialize the averaged gradient in p.G, run
		// the optimizer against it, materialize delta tensors, and let the
		// pull contexts run their own accumulate pass.
		for i, p := range s.params {
			if p.NoCompress {
				// Single designated owner: gradient used as-is.
				p.G.CopyFrom(s.gradSum[i])
				continue
			}
			s.gradSum[i].Scale(s.inv)
			p.G.CopyFrom(s.gradSum[i])
		}
		s.optimizer.ApplyWithDelta(s.params, s.delta)
	} else {
		for i := range s.params {
			if !s.dirty[i] {
				// Defensive: a tensor that received no push this step must
				// average as zero even though the fused path skipped the
				// up-front zeroing sweep. (Every driver pushes every
				// tensor — worker 0 is never dropped — so this is
				// unreachable in practice.)
				s.gradSum[i].Zero()
			}
		}
		// One fused sweep per tensor: average (scale fused into the read),
		// momentum update, delta, and — for 3LC pull contexts — the
		// delta fold into the compressor's error-accumulation buffer with
		// its |max| reduction. Bit-identical to the staged average →
		// Apply → delta = W - prevW → AccumulateMaxAbs sequence; the
		// averaged gradient is not materialized (p.G is untouched).
		s.optimizer.ApplyFusedStep(s.params, s.gradForFn, s.delta, s.accForFn, s.accMax)
	}

	// Shared pull compression: one wire per tensor for all workers, built
	// once into recycled per-tensor buffers (§3, Figure 2b) by the bounded
	// worker pool. The returned slices are valid until the next FinishStep
	// call; callers that retain pulls across steps must copy them.
	start := time.Now()
	parallelFor(len(s.jobs), s.cfg.parallelism(), s.pullPackFn)
	return s.pullWires, time.Since(start), nil
}

// pullPackJob runs pull-compression pool job j: one tensor, or — for the
// batch job — the coalesced encode of every batched tiny tensor. The
// fused optimizer sweep already folded each member's delta into the
// shared arena (members' AccData slices tile it) and reduced accMax, so
// the batch runs encode-only, one contiguous sweep emitting every
// member's wire into the shared wire arena.
func (s *Job) pullPackJob(j int) {
	i := s.jobs[j]
	if i != batchJob {
		s.pullPackOne(i)
		return
	}
	for k, bi := range s.batchIdx {
		s.batchMax[k] = s.accMax[bi]
	}
	wires := s.batch.EncodePreAccumulated(s.batchMax)
	for k, bi := range s.batchIdx {
		s.pullWires[bi] = wires[k]
	}
}

// pullPackOne compresses model-delta tensor i into its recycled buffer:
// encode-only for contexts whose accumulate pass the optimizer sweep
// already absorbed, the full CompressInto otherwise.
func (s *Job) pullPackOne(i int) {
	if pa := s.preAcc[i]; pa != nil && !s.cfg.StagedAggregate {
		s.pullWires[i] = pa.CompressPreAccumulated(s.accMax[i], s.pullWires[i][:0])
		return
	}
	s.pullWires[i] = s.pullCtx[i].CompressInto(s.delta[i], s.pullWires[i][:0])
}

// Step returns the number of optimizer updates applied.
func (s *Job) Step() int { return s.optimizer.Step() }

// LR returns the learning rate the optimizer will use at its current step.
func (s *Job) LR() float64 { return s.optimizer.LR(s.optimizer.Step()) }

// Worker is one training node: a local model replica plus push-side
// compression contexts.
type Worker struct {
	ID    int
	Model *nn.Model

	cfg       Config
	params    []*nn.Param
	pushCtx   []compress.Compressor
	scratch   []*tensor.Tensor // staged-reference decode scratch (StagedAggregate only)
	pushWires [][]byte         // per-tensor push wire buffers, recycled across steps
	errs      []error          // per-tensor error slots for parallel decode, recycled
	decPar    int              // per-tensor kernel fan-out for fused decode-add

	// Small-tensor batching, mirroring Server: tiny 3LC push contexts
	// coalesced over one arena, run as a single pool job.
	batch    *compress.TernaryBatch
	batchIdx []int
	jobs     []int

	// Bound method values + argument slots, mirroring Server (see there).
	compressFn   func(j int)
	applyFn      func(j int)
	batchGradFn  func(k int) []float32
	pullSrc      [][]byte
	streamEmitFn func(i int, wire []byte) // argument slot for CompressGradsStream
	streamFn     func(j int)
}

// NewWorker wraps a local model replica (which must start identical to the
// server's global model).
func NewWorker(id int, model *nn.Model, cfg Config) *Worker {
	w := &Worker{ID: id, Model: model, cfg: cfg, params: model.Params()}
	w.batch, w.batchIdx, w.jobs = cfg.buildBatch(w.params)
	member := 0
	for i, p := range w.params {
		if member < len(w.batchIdx) && w.batchIdx[member] == i {
			w.pushCtx = append(w.pushCtx, w.batch.Member(member))
			member++
		} else {
			w.pushCtx = append(w.pushCtx, cfg.newContext(p, 0x574f524b00000000+uint64(id)<<16+uint64(i), len(w.params))) // "WORK"
		}
		if cfg.StagedAggregate {
			w.scratch = append(w.scratch, tensor.New(p.W.Shape()...))
		}
	}
	w.decPar = cfg.kernelBudget(len(w.params))
	w.pushWires = make([][]byte, len(w.params))
	w.errs = make([]error, len(w.params))
	w.compressFn = w.compressJob
	w.applyFn = w.applyJob
	w.batchGradFn = w.batchGrad
	w.streamFn = w.streamJob
	return w
}

// CompressGrads compresses the gradients currently held in the local
// model's parameter tensors (set by Model.TrainStep) and returns the push
// wires plus the compression wall time. Layer tensors are compressed
// concurrently by a bounded worker pool (each tensor has its own context,
// so ordering never affects the bytes). The wire slices are backed by
// worker-owned buffers recycled across steps: they are valid until the
// next CompressGrads call on this worker.
func (w *Worker) CompressGrads() ([][]byte, time.Duration) {
	start := time.Now()
	parallelFor(len(w.jobs), w.cfg.parallelism(), w.compressFn)
	return w.pushWires, time.Since(start)
}

// compressJob runs compression pool job j: one tensor, or — for the
// batch job — the coalesced CompressAll over every batched tiny tensor
// (one arena-order sweep of their error state, one shared wire arena, no
// per-tensor dispatch).
func (w *Worker) compressJob(j int) {
	i := w.jobs[j]
	if i != batchJob {
		w.compressOne(i)
		return
	}
	wires := w.batch.CompressAll(w.batchGradFn)
	for k, bi := range w.batchIdx {
		w.pushWires[bi] = wires[k]
	}
}

// batchGrad hands CompressAll batch member k's gradient data.
func (w *Worker) batchGrad(k int) []float32 {
	return w.params[w.batchIdx[k]].G.Data()
}

// compressOne compresses gradient tensor i into its recycled buffer.
func (w *Worker) compressOne(i int) {
	w.pushWires[i] = w.pushCtx[i].CompressInto(w.params[i].G, w.pushWires[i][:0])
}

// CompressGradsStream compresses exactly like CompressGrads but hands
// each tensor's wire to emit the moment it is encoded, so a driver can
// push tensor i — frame it, enqueue it, start server-side decode-add —
// while tensor i+1 is still compressing: the worker half of the
// overlapped push/aggregate pipeline. emit may be invoked concurrently
// from the codec pool's goroutines (tensors finish in arbitrary order;
// the index identifies the slot) and must not retain the wire past the
// next CompressGrads* call. The returned full wire set and duration match
// CompressGrads.
func (w *Worker) CompressGradsStream(emit func(i int, wire []byte)) ([][]byte, time.Duration) {
	start := time.Now()
	w.streamEmitFn = emit
	parallelFor(len(w.jobs), w.cfg.parallelism(), w.streamFn)
	w.streamEmitFn = nil
	return w.pushWires, time.Since(start)
}

// streamJob is compressJob plus per-tensor emission: batched tiny
// tensors are emitted member by member the moment the coalesced encode
// finishes (their wires materialize together, so there is nothing
// earlier to overlap with).
func (w *Worker) streamJob(j int) {
	i := w.jobs[j]
	if i != batchJob {
		w.compressOne(i)
		w.streamEmitFn(i, w.pushWires[i])
		return
	}
	wires := w.batch.CompressAll(w.batchGradFn)
	for k, bi := range w.batchIdx {
		w.pushWires[bi] = wires[k]
		w.streamEmitFn(bi, wires[k])
	}
}

// ApplyPull decompresses the shared model-delta wires and applies them to
// the local replica, fanning out across layer tensors. It returns the
// decompression wall time.
func (w *Worker) ApplyPull(wires [][]byte) (time.Duration, error) {
	if len(wires) != len(w.params) {
		return 0, fmt.Errorf("ps: pull has %d tensors, model has %d", len(wires), len(w.params))
	}
	start := time.Now()
	w.pullSrc = wires
	parallelFor(len(w.jobs), w.cfg.parallelism(), w.applyFn)
	w.pullSrc = nil
	for _, err := range w.errs {
		if err != nil {
			return 0, err
		}
	}
	return time.Since(start), nil
}

// applyJob runs pull-apply pool job j: one tensor, or every batched tiny
// tensor back to back (per-tensor decode-add semantics unchanged).
func (w *Worker) applyJob(j int) {
	i := w.jobs[j]
	if i != batchJob {
		w.applyOne(i)
		return
	}
	for _, bi := range w.batchIdx {
		w.applyOne(bi)
	}
}

// applyOne decode-applies pull tensor i of the staged wire set to the
// replica: the fused decode-accumulate adds M·q straight into the weight
// tensor in one pass (the staged decode-then-add under StagedAggregate).
func (w *Worker) applyOne(i int) {
	w.errs[i] = w.applyTensor(i, w.pullSrc[i])
}

// applyTensor decode-applies one pull wire into weight tensor i.
func (w *Worker) applyTensor(i int, wire []byte) error {
	p := w.params[i]
	if w.cfg.StagedAggregate {
		if err := compress.DecompressInto(wire, w.scratch[i]); err != nil {
			return fmt.Errorf("ps: pull tensor %q: %w", p.Name, err)
		}
		p.W.Add(w.scratch[i])
		return nil
	}
	if err := compress.DecompressAddInto(wire, p.W, w.decPar); err != nil {
		return fmt.Errorf("ps: pull tensor %q: %w", p.Name, err)
	}
	return nil
}

// ApplyPullTensor decode-applies a single tensor of the shared pull — the
// worker-side counterpart of Server.AddPushTensor, for transports that
// stream per-tensor pull frames: the replica applies tensor i while
// tensor i+1 is still in flight (double-buffered pull decode). Different
// tensors may be applied concurrently.
func (w *Worker) ApplyPullTensor(i int, wire []byte) error {
	if i < 0 || i >= len(w.params) {
		return fmt.Errorf("ps: pull tensor index %d out of range (model has %d tensors)", i, len(w.params))
	}
	return w.applyTensor(i, wire)
}

// WireBytes sums the byte sizes of a wire set.
func WireBytes(wires [][]byte) int {
	n := 0
	for _, w := range wires {
		n += len(w)
	}
	return n
}
