// Package ps implements the parameter-server architecture of Figure 1/2:
// a server holding the global model and N workers holding local replicas.
// Each training step, workers push compressed gradients, the server
// decompresses and averages them, updates the global model with the local
// optimizer, and publishes compressed model deltas that every worker pulls
// and applies to its replica.
//
// Faithful details from the paper:
//
//   - One compression context per tensor per direction (§3, Figure 2):
//     each worker owns a push context per layer tensor, the server owns a
//     pull context per layer tensor. Contexts carry the error-accumulation
//     state across steps.
//   - Shared compressed pulls (§3, Figure 2b): the server compresses each
//     model delta once and every worker receives the same bytes, avoiding
//     redundant compression work (workers still each consume egress
//     bandwidth, which netsim accounts).
//   - Small-tensor exemption (§5.1): tensors flagged NoCompress (batch
//     norm) or smaller than MinCompressElems bypass compression and travel
//     as raw 32-bit floats.
//   - Batch-norm ownership (§5.2): one designated worker (worker 0) is
//     responsible for batch-norm parameter updates; other workers'
//     NoCompress gradients are ignored by aggregation.
//   - BSP barriers: the step driver (package train) runs all pushes before
//     the update and all pulls after it, the synchronous mode the paper
//     evaluates.
//
// The codec hot path is allocation-free in steady state: workers and the
// server recycle per-tensor wire buffers across steps through the
// append-style compress.CompressInto API, and layer tensors are
// compressed/decompressed concurrently by a bounded worker pool
// (Config.Parallelism). Per tensor, the ternary codecs run on the fused
// kernels of internal/kernel — two passes over tensor memory to compress,
// one LUT-driven pass to decompress — so a node's step cost is two
// streaming sweeps of its model size plus the wire bytes. Wire sets
// returned by CompressGrads and FinishStep alias those recycled buffers —
// valid until the owner's next step.
package ps

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"threelc/internal/compress"
	"threelc/internal/nn"
	"threelc/internal/opt"
	"threelc/internal/tensor"
)

// Config selects the traffic-reduction design and cluster shape.
type Config struct {
	// Scheme picks the compression design for both pushes and pulls.
	Scheme compress.Scheme
	// Opts carries scheme parameters (sparsity multiplier, fraction, ...).
	Opts compress.Options
	// Workers is the cluster size.
	Workers int
	// MinCompressElems exempts tensors with fewer elements from
	// compression (they go as raw floats). The paper exempts small layers
	// because "avoiding computation overhead far outweighs compacting
	// already small tensors".
	MinCompressElems int
	// Parallelism bounds the worker pool that compresses / decompresses a
	// node's layer tensors concurrently (contexts are per-tensor, so
	// per-tensor fan-out is safe). Zero means GOMAXPROCS; 1 forces the
	// serial path.
	Parallelism int
	// Optimizer configures the server-side SGD.
	Optimizer opt.SGDConfig
}

// parallelism resolves the configured codec fan-out.
func (c Config) parallelism() int {
	if c.Parallelism > 0 {
		return c.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// parallelFor runs fn(i) for i in [0, n) on up to `workers` goroutines — a
// bounded pool fed by an atomic counter, so uneven per-tensor costs (one
// conv layer dwarfing the biases) balance dynamically. workers <= 1 runs
// serially on the caller's goroutine.
func parallelFor(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for g := 0; g < workers; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// shouldCompress applies the paper's small-tensor exemption rule; both
// endpoints use it so wire formats always agree.
func (c Config) shouldCompress(p *nn.Param) bool {
	if c.Scheme == compress.SchemeNone {
		return false
	}
	if p.NoCompress {
		return false
	}
	return p.W.Len() >= c.MinCompressElems
}

// newContext builds the compression context for one of `tensors` model
// tensors on this node.
func (c Config) newContext(p *nn.Param, seed uint64, tensors int) compress.Compressor {
	if !c.shouldCompress(p) {
		return compress.New(compress.SchemeNone, p.W.Shape(), compress.Options{})
	}
	o := c.Opts
	o.Seed ^= seed
	if o.CodecParallelism == 0 {
		// Split the node's goroutine budget between the two levels of
		// fan-out: the per-tensor pool takes min(par, tensors) workers,
		// and each context's fused kernels get the remainder, so the
		// product stays ~par. Below the per-context cap the scheduling is
		// pass-count aware (kernel.PassWorkers): each of the two fused
		// compress passes sizes its own fan-out to that pass's per-element
		// work, so the cap set here is a ceiling, not a fixed spawn count.
		// A single-tensor model gets full chunk parallelism; a many-tensor
		// model gets serial kernels under a wide pool; Parallelism=1 means
		// fully serial everywhere.
		par := c.parallelism()
		pool := par
		if tensors > 0 && tensors < pool {
			pool = tensors
		}
		o.CodecParallelism = par / pool
		if o.CodecParallelism < 1 {
			o.CodecParallelism = 1
		}
	}
	return compress.New(c.Scheme, p.W.Shape(), o)
}

// Server owns the global model, the optimizer, and the pull-side
// compression contexts.
type Server struct {
	Model *nn.Model

	cfg       Config
	optimizer *opt.SGD
	params    []*nn.Param
	pullCtx   []compress.Compressor
	gradSum   []*tensor.Tensor
	prevW     []*tensor.Tensor
	delta     []*tensor.Tensor
	decode    []*tensor.Tensor
	pullWires [][]byte // per-tensor pull wire buffers, recycled across steps
	errs      []error  // per-tensor error slots for parallel decode, recycled
	pushes    int

	// Bound once at construction so the parallelFor call sites pass a
	// stored func value instead of a closure literal — closure allocation
	// is the last per-step heap traffic on an otherwise zero-alloc path.
	addPushFn    func(i int)
	pullPackFn   func(i int)
	pushWorkerID int      // argument slot for addPushFn
	pushSrc      [][]byte // argument slot for addPushFn
}

// NewServer wraps the global model. The model's current parameters become
// the initial global state.
func NewServer(model *nn.Model, cfg Config) *Server {
	s := newServer(model.Params(), nil, cfg)
	s.Model = model
	return s
}

// NewSubServer builds a server over a subset of a model's parameters — one
// shard of a horizontally partitioned parameter-server tier (package
// shard). globalIdx[i] is the index params[i] has in the full model's
// parameter list; compression contexts are seeded by that global index, so
// the union of all shards' pull wires is byte-identical to what a single
// NewServer over the whole model would produce. The optimizer is applied
// per shard; because SGD state (velocity, schedule step) has no
// cross-tensor coupling, the per-shard updates equal the single-server
// ones exactly. Model is nil on a sub-server.
func NewSubServer(params []*nn.Param, globalIdx []int, cfg Config) *Server {
	if len(globalIdx) != len(params) {
		panic(fmt.Sprintf("ps: %d params but %d global indices", len(params), len(globalIdx)))
	}
	return newServer(params, globalIdx, cfg)
}

// newServer is the shared constructor: globalIdx == nil means the identity
// mapping (full-model server).
func newServer(params []*nn.Param, globalIdx []int, cfg Config) *Server {
	s := &Server{
		cfg:       cfg,
		optimizer: opt.NewSGD(cfg.Optimizer),
		params:    params,
	}
	for i, p := range params {
		gi := i
		if globalIdx != nil {
			gi = globalIdx[i]
		}
		s.pullCtx = append(s.pullCtx, cfg.newContext(p, 0x5345525645520000+uint64(gi), len(s.params))) // "SERVER"
		s.gradSum = append(s.gradSum, tensor.New(p.W.Shape()...))
		s.prevW = append(s.prevW, tensor.New(p.W.Shape()...))
		s.delta = append(s.delta, tensor.New(p.W.Shape()...))
		s.decode = append(s.decode, tensor.New(p.W.Shape()...))
	}
	s.pullWires = make([][]byte, len(s.params))
	s.errs = make([]error, len(s.params))
	s.addPushFn = s.addPushOne
	s.pullPackFn = s.pullPackOne
	return s
}

// BeginStep resets gradient aggregation for a new training step.
func (s *Server) BeginStep() {
	for _, g := range s.gradSum {
		g.Zero()
	}
	s.pushes = 0
}

// AddPush decompresses one worker's gradient push and accumulates it,
// fanning out across layer tensors (each has its own decode scratch and
// gradient-sum tensor, so per-tensor parallelism is safe).
// NoCompress tensors (batch norm) are taken from worker 0 only.
// It returns the decompression wall time.
func (s *Server) AddPush(workerID int, wires [][]byte) (time.Duration, error) {
	if len(wires) != len(s.params) {
		return 0, fmt.Errorf("ps: push has %d tensors, model has %d", len(wires), len(s.params))
	}
	start := time.Now()
	s.pushWorkerID, s.pushSrc = workerID, wires
	parallelFor(len(s.params), s.cfg.parallelism(), s.addPushFn)
	s.pushSrc = nil
	for _, err := range s.errs {
		if err != nil {
			return 0, err
		}
	}
	s.pushes++
	return time.Since(start), nil
}

// addPushOne decodes and accumulates tensor i of the push staged in
// pushWorkerID/pushSrc.
func (s *Server) addPushOne(i int) {
	p := s.params[i]
	s.errs[i] = nil
	if p.NoCompress && s.pushWorkerID != 0 {
		return
	}
	if err := compress.DecompressInto(s.pushSrc[i], s.decode[i]); err != nil {
		s.errs[i] = fmt.Errorf("ps: push tensor %q: %w", p.Name, err)
		return
	}
	s.gradSum[i].Add(s.decode[i])
}

// FinishStep averages the aggregated gradients, applies the optimizer to
// the global model, and returns the compressed model-delta wires shared by
// all workers, plus the server-side codec wall time. The wire slices are
// backed by server-owned buffers recycled across steps: they are valid
// until the next FinishStep, and callers that keep them longer (stale
// synchronous emulation) must copy the bytes.
func (s *Server) FinishStep() ([][]byte, time.Duration, error) {
	if s.pushes == 0 {
		return nil, 0, fmt.Errorf("ps: FinishStep with no pushes")
	}
	inv := 1 / float32(s.pushes)
	for i, p := range s.params {
		if p.NoCompress {
			// Single designated owner: gradient used as-is.
			p.G.CopyFrom(s.gradSum[i])
			continue
		}
		s.gradSum[i].Scale(inv)
		p.G.CopyFrom(s.gradSum[i])
	}

	// Snapshot weights, update, compute deltas.
	for i, p := range s.params {
		s.prevW[i].CopyFrom(p.W)
	}
	s.optimizer.Apply(s.params)
	for i, p := range s.params {
		s.delta[i].CopyFrom(p.W)
		s.delta[i].Sub(s.prevW[i])
	}

	// Shared pull compression: one wire per tensor for all workers, built
	// once into recycled per-tensor buffers (§3, Figure 2b) by the bounded
	// worker pool. The returned slices are valid until the next FinishStep
	// call; callers that retain pulls across steps must copy them.
	start := time.Now()
	parallelFor(len(s.params), s.cfg.parallelism(), s.pullPackFn)
	return s.pullWires, time.Since(start), nil
}

// pullPackOne compresses model-delta tensor i into its recycled buffer.
func (s *Server) pullPackOne(i int) {
	s.pullWires[i] = s.pullCtx[i].CompressInto(s.delta[i], s.pullWires[i][:0])
}

// Step returns the number of optimizer updates applied.
func (s *Server) Step() int { return s.optimizer.Step() }

// LR returns the learning rate the optimizer will use at its current step.
func (s *Server) LR() float64 { return s.optimizer.LR(s.optimizer.Step()) }

// Worker is one training node: a local model replica plus push-side
// compression contexts.
type Worker struct {
	ID    int
	Model *nn.Model

	cfg       Config
	params    []*nn.Param
	pushCtx   []compress.Compressor
	scratch   []*tensor.Tensor
	pushWires [][]byte // per-tensor push wire buffers, recycled across steps
	errs      []error  // per-tensor error slots for parallel decode, recycled

	// Bound method values + argument slot, mirroring Server (see there).
	compressFn func(i int)
	applyFn    func(i int)
	pullSrc    [][]byte
}

// NewWorker wraps a local model replica (which must start identical to the
// server's global model).
func NewWorker(id int, model *nn.Model, cfg Config) *Worker {
	w := &Worker{ID: id, Model: model, cfg: cfg, params: model.Params()}
	for i, p := range w.params {
		w.pushCtx = append(w.pushCtx, cfg.newContext(p, 0x574f524b00000000+uint64(id)<<16+uint64(i), len(w.params))) // "WORK"
		w.scratch = append(w.scratch, tensor.New(p.W.Shape()...))
	}
	w.pushWires = make([][]byte, len(w.params))
	w.errs = make([]error, len(w.params))
	w.compressFn = w.compressOne
	w.applyFn = w.applyOne
	return w
}

// CompressGrads compresses the gradients currently held in the local
// model's parameter tensors (set by Model.TrainStep) and returns the push
// wires plus the compression wall time. Layer tensors are compressed
// concurrently by a bounded worker pool (each tensor has its own context,
// so ordering never affects the bytes). The wire slices are backed by
// worker-owned buffers recycled across steps: they are valid until the
// next CompressGrads call on this worker.
func (w *Worker) CompressGrads() ([][]byte, time.Duration) {
	start := time.Now()
	parallelFor(len(w.params), w.cfg.parallelism(), w.compressFn)
	return w.pushWires, time.Since(start)
}

// compressOne compresses gradient tensor i into its recycled buffer.
func (w *Worker) compressOne(i int) {
	w.pushWires[i] = w.pushCtx[i].CompressInto(w.params[i].G, w.pushWires[i][:0])
}

// ApplyPull decompresses the shared model-delta wires and applies them to
// the local replica, fanning out across layer tensors. It returns the
// decompression wall time.
func (w *Worker) ApplyPull(wires [][]byte) (time.Duration, error) {
	if len(wires) != len(w.params) {
		return 0, fmt.Errorf("ps: pull has %d tensors, model has %d", len(wires), len(w.params))
	}
	start := time.Now()
	w.pullSrc = wires
	parallelFor(len(w.params), w.cfg.parallelism(), w.applyFn)
	w.pullSrc = nil
	for _, err := range w.errs {
		if err != nil {
			return 0, err
		}
	}
	return time.Since(start), nil
}

// applyOne decodes pull tensor i of the staged wire set and applies it to
// the replica.
func (w *Worker) applyOne(i int) {
	p := w.params[i]
	w.errs[i] = nil
	if err := compress.DecompressInto(w.pullSrc[i], w.scratch[i]); err != nil {
		w.errs[i] = fmt.Errorf("ps: pull tensor %q: %w", p.Name, err)
		return
	}
	p.W.Add(w.scratch[i])
}

// WireBytes sums the byte sizes of a wire set.
func WireBytes(wires [][]byte) int {
	n := 0
	for _, w := range wires {
		n += len(w)
	}
	return n
}
