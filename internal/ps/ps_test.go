package ps

import (
	"math"
	"testing"

	"threelc/internal/compress"
	"threelc/internal/nn"
	"threelc/internal/opt"
	"threelc/internal/tensor"
)

func testModel(seed uint64) *nn.Model {
	return nn.NewMLP(8, []int{6}, 3, seed)
}

func testConfig(scheme compress.Scheme, opts compress.Options, workers int) Config {
	return Config{
		Scheme:           scheme,
		Opts:             opts,
		Workers:          workers,
		MinCompressElems: 8,
		Optimizer: opt.SGDConfig{
			BaseLR: 0.1, FinalLR: 0.01, Momentum: 0.9, WeightDecay: 1e-4,
			Workers: workers, TotalSteps: 100, WarmupFrac: 0,
		},
	}
}

// runStep pushes each worker's current gradients through the server and
// applies the pull on every worker.
func runStep(t *testing.T, server *Server, workers []*Worker) {
	t.Helper()
	server.BeginStep()
	for _, w := range workers {
		wires, _ := w.CompressGrads()
		if _, err := server.AddPush(w.ID, wires); err != nil {
			t.Fatal(err)
		}
	}
	pull, _, err := server.FinishStep()
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range workers {
		if _, err := w.ApplyPull(pull); err != nil {
			t.Fatal(err)
		}
	}
}

func setup(scheme compress.Scheme, opts compress.Options, workers int) (*Server, []*Worker) {
	global := testModel(1)
	cfg := testConfig(scheme, opts, workers)
	server := NewServer(global, cfg)
	var ws []*Worker
	for i := 0; i < workers; i++ {
		m := testModel(1)
		m.CopyParamsFrom(global)
		ws = append(ws, NewWorker(i, m, cfg))
	}
	return server, ws
}

func TestUncompressedDistributedMatchesCentralized(t *testing.T) {
	// With SchemeNone, K workers pushing gradients must be exactly
	// equivalent to a centralized optimizer stepping on the averaged
	// gradient — the BSP parameter server is then a pure SGD machine.
	const workers = 4
	server, ws := setup(compress.SchemeNone, compress.Options{}, workers)

	central := testModel(1)
	centralOpt := opt.NewSGD(testConfig(compress.SchemeNone, compress.Options{}, workers).Optimizer)

	rng := tensor.NewRNG(9)
	x := tensor.New(5, 8)
	tensor.FillNormal(x, 1, rng)
	labels := []int{0, 1, 2, 0, 1}

	for step := 0; step < 5; step++ {
		// All workers compute on the same batch -> average == single grad.
		for _, w := range ws {
			w.Model.TrainStep(x, labels)
		}
		runStep(t, server, ws)

		central.TrainStep(x, labels)
		centralOpt.Apply(central.Params())

		sp := server.Model.Params()
		cp := central.Params()
		for i := range sp {
			if sp[i].NoCompress {
				continue // BN grads come from worker 0 only; identical batches make them equal anyway
			}
			if !sp[i].W.AlmostEqual(cp[i].W, 1e-5) {
				t.Fatalf("step %d: param %s diverged from centralized SGD", step, sp[i].Name)
			}
		}
		// Workers' replicas must equal the global model exactly (lossless pulls).
		for _, w := range ws {
			wp := w.Model.Params()
			for i := range sp {
				if !sp[i].W.AlmostEqual(wp[i].W, 1e-6) {
					t.Fatalf("step %d: worker %d replica diverged", step, w.ID)
				}
			}
		}
	}
}

func TestGradientAveraging(t *testing.T) {
	// Workers pushing different constant gradients: the update must use
	// their mean.
	server, ws := setup(compress.SchemeNone, compress.Options{}, 2)
	for wi, w := range ws {
		for _, p := range w.Model.Params() {
			if p.NoCompress {
				continue
			}
			p.G.Fill(float32(wi + 1)) // worker 0: 1, worker 1: 2
		}
	}
	before := server.Model.Params()[0].W.Clone()
	runStep(t, server, ws)
	after := server.Model.Params()[0].W
	// First step, no momentum history: w -= lr * (mean_grad + wd*w),
	// with lr worker-scaled (BaseLR 0.1 x 2 workers).
	lr := 0.2
	w0 := float64(before.Data()[0])
	want := w0 - lr*(1.5+1e-4*w0)
	if math.Abs(float64(after.Data()[0])-want) > 1e-5 {
		t.Errorf("update used %v, want %v (gradient mean 1.5)", after.Data()[0], want)
	}
}

func TestBatchNormOwnership(t *testing.T) {
	// NoCompress (batch norm) gradients must come from worker 0 only.
	server, ws := setup(compress.SchemeNone, compress.Options{}, 3)
	var bnIdx int = -1
	params := server.Model.Params()
	for i, p := range params {
		if p.NoCompress {
			bnIdx = i
			break
		}
	}
	if bnIdx < 0 {
		t.Fatal("test model has no NoCompress parameter")
	}
	for wi, w := range ws {
		for i, p := range w.Model.Params() {
			if i == bnIdx {
				p.G.Fill(float32(10 * (wi + 1))) // 10, 20, 30
			} else {
				p.G.Zero()
			}
		}
	}
	before := params[bnIdx].W.Clone()
	runStep(t, server, ws)
	after := params[bnIdx].W
	// Update must reflect gradient 10 (worker 0), not the mean 20,
	// with lr worker-scaled (BaseLR 0.1 x 3 workers).
	lr := 0.3
	w0 := float64(before.Data()[0])
	want := w0 - lr*(10+1e-4*w0)
	if math.Abs(float64(after.Data()[0])-want) > 1e-4 {
		t.Errorf("BN update used %v, want %v (worker-0 gradient only)", after.Data()[0], want)
	}
}

func TestSmallTensorExemption(t *testing.T) {
	cfg := testConfig(compress.SchemeThreeLC, compress.Options{Sparsity: 1, ZeroRun: true}, 1)
	cfg.MinCompressElems = 1000 // everything is "small"
	global := testModel(1)
	server := NewServer(global, cfg)
	m := testModel(1)
	m.CopyParamsFrom(global)
	w := NewWorker(0, m, cfg)
	for _, p := range w.Model.Params() {
		p.G.Fill(0.1)
	}
	wires, _ := w.CompressGrads()
	for i, wire := range wires {
		if len(wire) > 0 && compress.Scheme(wire[0]) != compress.SchemeNone {
			t.Errorf("tensor %d compressed despite exemption", i)
		}
	}
	_ = server
}

func TestSharedPullIdenticalForAllWorkers(t *testing.T) {
	server, ws := setup(compress.SchemeThreeLC, compress.Options{Sparsity: 1.5, ZeroRun: true}, 3)
	rng := tensor.NewRNG(11)
	x := tensor.New(4, 8)
	tensor.FillNormal(x, 1, rng)
	labels := []int{0, 1, 2, 0}
	for _, w := range ws {
		w.Model.TrainStep(x, labels)
	}
	server.BeginStep()
	for _, w := range ws {
		wires, _ := w.CompressGrads()
		if _, err := server.AddPush(w.ID, wires); err != nil {
			t.Fatal(err)
		}
	}
	pull, _, err := server.FinishStep()
	if err != nil {
		t.Fatal(err)
	}
	// Apply the SAME pull wires to all workers; replicas must stay in
	// lockstep with each other.
	for _, w := range ws {
		if _, err := w.ApplyPull(pull); err != nil {
			t.Fatal(err)
		}
	}
	p0 := ws[0].Model.Params()
	for _, w := range ws[1:] {
		pw := w.Model.Params()
		for i := range p0 {
			if !p0[i].W.Equal(pw[i].W) {
				t.Fatalf("worker %d replica differs from worker 0 at %s", w.ID, p0[i].Name)
			}
		}
	}
}

func TestCompressedTrainingConvergesAllSchemes(t *testing.T) {
	// End-to-end: each scheme must reduce the loss on a fixed batch.
	schemes := []struct {
		name string
		s    compress.Scheme
		o    compress.Options
	}{
		{"float32", compress.SchemeNone, compress.Options{}},
		{"int8", compress.SchemeInt8, compress.Options{}},
		{"3lc", compress.SchemeThreeLC, compress.Options{Sparsity: 1.0, ZeroRun: true}},
		{"3lc-s1.9", compress.SchemeThreeLC, compress.Options{Sparsity: 1.9, ZeroRun: true}},
		{"mqe1bit", compress.SchemeMQE1Bit, compress.Options{}},
		{"topk", compress.SchemeTopK, compress.Options{Fraction: 0.25, Seed: 3}},
		{"local2", compress.SchemeLocalSteps, compress.Options{Interval: 2}},
	}
	rng := tensor.NewRNG(12)
	x := tensor.New(6, 8)
	tensor.FillNormal(x, 1, rng)
	labels := []int{0, 1, 2, 0, 1, 2}

	for _, sc := range schemes {
		t.Run(sc.name, func(t *testing.T) {
			server, ws := setup(sc.s, sc.o, 2)
			var first, last float64
			for step := 0; step < 60; step++ {
				var sum float64
				for _, w := range ws {
					sum += w.Model.TrainStep(x, labels)
				}
				if step == 0 {
					first = sum / 2
				}
				last = sum / 2
				runStep(t, server, ws)
			}
			if last >= first*0.7 {
				t.Errorf("loss barely moved: %v -> %v", first, last)
			}
		})
	}
}

func TestAddPushValidation(t *testing.T) {
	server, _ := setup(compress.SchemeNone, compress.Options{}, 1)
	server.BeginStep()
	if _, err := server.AddPush(0, [][]byte{{1, 2}}); err == nil {
		t.Error("expected error for wrong tensor count")
	}
}

func TestFinishStepWithoutPushes(t *testing.T) {
	server, _ := setup(compress.SchemeNone, compress.Options{}, 1)
	server.BeginStep()
	if _, _, err := server.FinishStep(); err == nil {
		t.Error("expected error for FinishStep with no pushes")
	}
}

func TestApplyPullValidation(t *testing.T) {
	_, ws := setup(compress.SchemeNone, compress.Options{}, 1)
	if _, err := ws[0].ApplyPull([][]byte{{1}}); err == nil {
		t.Error("expected error for wrong tensor count")
	}
}

func TestWireBytes(t *testing.T) {
	if WireBytes([][]byte{{1, 2}, nil, {3}}) != 3 {
		t.Error("WireBytes sum wrong")
	}
}

func TestServerLRSchedule(t *testing.T) {
	server, ws := setup(compress.SchemeNone, compress.Options{}, 1)
	lr0 := server.LR()
	for _, p := range ws[0].Model.Params() {
		p.G.Fill(0.01)
	}
	runStep(t, server, ws)
	if server.Step() != 1 {
		t.Errorf("Step = %d after one update", server.Step())
	}
	if server.LR() == lr0 {
		t.Log("LR unchanged after one step (schedule may be flat here) — not an error")
	}
}
