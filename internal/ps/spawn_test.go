package ps

import (
	"sync/atomic"
	"testing"
)

// TestParallelForSpawnCounts pins the caller-joins-the-pool shape: a pool
// of w workers spawns exactly w-1 goroutines (the caller drains the atomic
// counter too), a serial run spawns none, and every index runs exactly
// once either way.
func TestParallelForSpawnCounts(t *testing.T) {
	cases := []struct {
		name       string
		n, workers int
		wantGoro   int
	}{
		{"serial", 10, 1, 0},
		{"single item", 1, 8, 0},
		{"pool of four", 100, 4, 3},
		{"more workers than items", 3, 8, 2},
		{"empty", 0, 8, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var spawns atomic.Int64
			spawnHook = func() { spawns.Add(1) }
			defer func() { spawnHook = nil }()
			seen := make([]atomic.Int64, tc.n)
			parallelFor(tc.n, tc.workers, func(i int) {
				seen[i].Add(1)
			})
			if int(spawns.Load()) != tc.wantGoro {
				t.Errorf("spawned %d goroutines, want %d", spawns.Load(), tc.wantGoro)
			}
			for i := range seen {
				if seen[i].Load() != 1 {
					t.Errorf("index %d ran %d times, want 1", i, seen[i].Load())
				}
			}
		})
	}
}
