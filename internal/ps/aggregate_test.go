package ps

import (
	"math"
	"sync"
	"testing"

	"threelc/internal/compress"
	"threelc/internal/tensor"
)

// runPair drives `steps` full push/pull rounds on a 2-worker cluster with
// the given config mutation, returning the final global parameter data.
func runPair(t *testing.T, mut func(*Config), ingest func(t *testing.T, s *Server, workerID int, wires [][]byte)) [][]float32 {
	t.Helper()
	cfg := testConfig(compress.SchemeThreeLC, compress.Options{Sparsity: 1.75, ZeroRun: true}, 2)
	if mut != nil {
		mut(&cfg)
	}
	global := testModel(1)
	server := NewServer(global, cfg)
	workers := make([]*Worker, 2)
	for id := range workers {
		m := testModel(1)
		m.CopyParamsFrom(global)
		workers[id] = NewWorker(id, m, cfg)
	}
	rng := tensor.NewRNG(77)
	x := tensor.New(5, 8)
	tensor.FillNormal(x, 1, rng)
	labels := []int{0, 1, 2, 0, 1}

	for step := 0; step < 4; step++ {
		server.BeginStep()
		for _, w := range workers {
			w.Model.TrainStep(x, labels)
			wires, _ := w.CompressGrads()
			ingest(t, server, w.ID, wires)
		}
		pull, _, err := server.FinishStep()
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range workers {
			if _, err := w.ApplyPull(pull); err != nil {
				t.Fatal(err)
			}
		}
	}
	var out [][]float32
	for _, p := range global.Params() {
		out = append(out, append([]float32(nil), p.W.Data()...))
	}
	return out
}

func ingestWhole(t *testing.T, s *Server, workerID int, wires [][]byte) {
	t.Helper()
	if _, err := s.AddPush(workerID, wires); err != nil {
		t.Fatal(err)
	}
}

// TestFusedAggregateMatchesStaged pins the fused decode-accumulate server
// (and fused worker apply) against the staged decode-then-add reference:
// after several training steps the global model state must be
// bit-identical.
func TestFusedAggregateMatchesStaged(t *testing.T) {
	fused := runPair(t, nil, ingestWhole)
	staged := runPair(t, func(c *Config) { c.StagedAggregate = true }, ingestWhole)
	assertSameState(t, fused, staged, "staged")
}

// TestAddPushTensorMatchesAddPush pins the per-tensor ingestion API
// (AddPushTensor + EndPush, the overlapped-pipeline entry) against the
// whole-set AddPush driver.
func TestAddPushTensorMatchesAddPush(t *testing.T) {
	whole := runPair(t, nil, ingestWhole)
	perTensor := runPair(t, nil, func(t *testing.T, s *Server, workerID int, wires [][]byte) {
		t.Helper()
		for i, wire := range wires {
			if err := s.AddPushTensor(workerID, i, wire); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.EndPush(); err != nil {
			t.Fatal(err)
		}
	})
	assertSameState(t, perTensor, whole, "whole-set")
}

func assertSameState(t *testing.T, got, want [][]float32, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("tensor count %d vs %d", len(got), len(want))
	}
	for ti := range got {
		for i := range got[ti] {
			if math.Float32bits(got[ti][i]) != math.Float32bits(want[ti][i]) {
				t.Fatalf("tensor %d elem %d: %x differs from %s reference %x",
					ti, i, math.Float32bits(got[ti][i]), label, math.Float32bits(want[ti][i]))
			}
		}
	}
}

// TestCompressGradsStreamMatches pins the streaming compressor: the
// emitted (index, wire) pairs must cover every tensor exactly once and
// byte-match the whole-set CompressGrads output of an identical worker.
func TestCompressGradsStreamMatches(t *testing.T) {
	cfg := testConfig(compress.SchemeThreeLC, compress.Options{Sparsity: 1.5, ZeroRun: true}, 1)
	cfg.Parallelism = 4
	mk := func() *Worker {
		m := testModel(3)
		return NewWorker(0, m, cfg)
	}
	a, b := mk(), mk()
	rng := tensor.NewRNG(9)
	x := tensor.New(5, 8)
	tensor.FillNormal(x, 1, rng)
	labels := []int{0, 1, 2, 0, 1}
	for step := 0; step < 3; step++ {
		a.Model.TrainStep(x, labels)
		b.Model.TrainStep(x, labels)
		want, _ := a.CompressGrads()

		got := make([][]byte, len(want))
		var mu sync.Mutex
		_, _ = b.CompressGradsStream(func(i int, wire []byte) {
			mu.Lock()
			defer mu.Unlock()
			if got[i] != nil {
				t.Errorf("tensor %d emitted twice", i)
			}
			got[i] = append([]byte(nil), wire...)
		})
		for i := range want {
			if got[i] == nil {
				t.Fatalf("step %d: tensor %d never emitted", step, i)
			}
			if string(got[i]) != string(want[i]) {
				t.Fatalf("step %d: streamed wire %d differs from CompressGrads", step, i)
			}
		}
	}
}
