package ps

import (
	"testing"

	"threelc/internal/compress"
	"threelc/internal/nn"
	"threelc/internal/tensor"
)

// tinyModel is the small-tensor batching workload: ~200 tensors of at
// most 64 elements (100 hidden layers of width 8), where per-tensor
// dispatch overhead rivals the kernel work itself.
func tinyModel(seed uint64) *nn.Model {
	hidden := make([]int, 100)
	for i := range hidden {
		hidden[i] = 8
	}
	return nn.NewMLP(8, hidden, 3, seed)
}

func benchTinyPushPull(b *testing.B, smallTensorElems int) {
	cfg := testConfig(compress.SchemeThreeLC, compress.Options{Sparsity: 1.75, ZeroRun: true}, 1)
	cfg.Parallelism = 1
	cfg.SmallTensorElems = smallTensorElems
	global := tinyModel(1)
	server := NewServer(global, cfg)
	m := tinyModel(1)
	m.CopyParamsFrom(global)
	worker := NewWorker(0, m, cfg)

	rng := tensor.NewRNG(31)
	for _, p := range worker.Model.Params() {
		tensor.FillNormal(p.G, 0.01, rng)
	}
	for i := 0; i < 3; i++ { // converge buffer capacities
		steadyStep(b, server, worker)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		steadyStep(b, server, worker)
	}
}

// BenchmarkSteadyStatePushPullTiny measures one full codec round trip on
// the many-tiny-tensor model with small-tensor batching on (the default):
// the batched tensors compress as one pool job over a contiguous arena.
// Serial configuration — must be 0 allocs/op under -benchmem; benchcheck
// gates it against the unbatched variant.
func BenchmarkSteadyStatePushPullTiny(b *testing.B) {
	benchTinyPushPull(b, 0)
}

// BenchmarkSteadyStatePushPullTinyUnbatched is the same round trip with
// batching disabled (per-tensor contexts and pool jobs throughout): the
// dispatch-overhead baseline the batched path is gated against.
func BenchmarkSteadyStatePushPullTinyUnbatched(b *testing.B) {
	benchTinyPushPull(b, -1)
}
