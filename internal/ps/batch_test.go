package ps

import (
	"bytes"
	"testing"

	"threelc/internal/compress"
	"threelc/internal/nn"
	"threelc/internal/tensor"
)

// TestBatchedMatchesUnbatchedState pins the small-tensor batching path
// against per-tensor contexts end to end: identical training runs with
// batching on (default threshold) and off (-1) must leave bit-identical
// global model state.
func TestBatchedMatchesUnbatchedState(t *testing.T) {
	batched := runPair(t, nil, ingestWhole)
	unbatched := runPair(t, func(c *Config) { c.SmallTensorElems = -1 }, ingestWhole)
	assertSameState(t, batched, unbatched, "unbatched")
}

// TestBatchedWiresMatchUnbatched compares the actual bytes: every push
// wire a batched worker emits and every pull wire a batched server emits
// must byte-match its unbatched twin, step after step.
func TestBatchedWiresMatchUnbatched(t *testing.T) {
	mk := func(smallTensorElems int) (*Server, *Worker) {
		cfg := testConfig(compress.SchemeThreeLC, compress.Options{Sparsity: 1.5, ZeroRun: true}, 1)
		cfg.SmallTensorElems = smallTensorElems
		global := testModel(1)
		server := NewServer(global, cfg)
		m := testModel(1)
		m.CopyParamsFrom(global)
		return server, NewWorker(0, m, cfg)
	}
	bs, bw := mk(0)  // batched (default threshold covers every test tensor)
	us, uw := mk(-1) // unbatched
	if bw.batch == nil {
		t.Fatal("batched worker built no batch — test model tensors should all qualify")
	}
	if uw.batch != nil || len(uw.jobs) != len(uw.params) {
		t.Fatal("SmallTensorElems=-1 still built a batch")
	}

	rng := tensor.NewRNG(42)
	x := tensor.New(5, 8)
	tensor.FillNormal(x, 1, rng)
	labels := []int{0, 1, 2, 0, 1}
	for step := 0; step < 4; step++ {
		bw.Model.TrainStep(x, labels)
		uw.Model.TrainStep(x, labels)
		bWires, _ := bw.CompressGrads()
		uWires, _ := uw.CompressGrads()
		for i := range uWires {
			if !bytes.Equal(bWires[i], uWires[i]) {
				t.Fatalf("step %d: batched push wire %d differs from unbatched", step, i)
			}
		}
		for s, wires := range map[*Server][][]byte{bs: bWires, us: uWires} {
			s.BeginStep()
			if _, err := s.AddPush(0, wires); err != nil {
				t.Fatal(err)
			}
		}
		bPull, _, err := bs.FinishStep()
		if err != nil {
			t.Fatal(err)
		}
		uPull, _, err := us.FinishStep()
		if err != nil {
			t.Fatal(err)
		}
		for i := range uPull {
			if !bytes.Equal(bPull[i], uPull[i]) {
				t.Fatalf("step %d: batched pull wire %d differs from unbatched", step, i)
			}
		}
		if _, err := bw.ApplyPull(bPull); err != nil {
			t.Fatal(err)
		}
		if _, err := uw.ApplyPull(uPull); err != nil {
			t.Fatal(err)
		}
	}
}

// TestBatchPartition checks the job-list construction on a model mixing
// batched tiny tensors, a large unbatched tensor, and exempt
// (uncompressed) tensors.
func TestBatchPartition(t *testing.T) {
	model := nn.NewMLP(8, []int{6, 7}, 3, 1)
	// Compressed tensors: 8x6=48, 6x7=42, 7x3=21 (biases 6, 7, 3 are
	// below MinCompressElems=8 and stay exempt).
	cfg := testConfig(compress.SchemeThreeLC, compress.Options{Sparsity: 1.0, ZeroRun: true}, 1)

	cfg.SmallTensorElems = 45 // batch {42, 21}, leave 48 per-tensor
	w := NewWorker(0, model, cfg)
	if w.batch == nil || len(w.batchIdx) != 2 {
		t.Fatalf("batchIdx = %v, want two members", w.batchIdx)
	}
	for _, bi := range w.batchIdx {
		if n := w.params[bi].W.Len(); n >= 45 || n < 8 {
			t.Fatalf("batched tensor has %d elems, outside [8,45)", n)
		}
	}
	if len(w.jobs) != len(w.params)-1 {
		t.Fatalf("%d jobs for %d params with a 2-member batch", len(w.jobs), len(w.params))
	}
	if w.batch.Elems() != 42+21 {
		t.Fatalf("batch arena has %d elems, want 63", w.batch.Elems())
	}

	cfg.SmallTensorElems = 30 // only {21} qualifies: no batch
	w = NewWorker(0, model, cfg)
	if w.batch != nil {
		t.Fatal("single qualifying tensor should not batch")
	}
	if len(w.jobs) != len(w.params) {
		t.Fatal("unbatched job list should be the identity")
	}

	cfg.SmallTensorElems = 0
	cfg.StagedAggregate = true // reference configuration disables batching
	w = NewWorker(0, model, cfg)
	if w.batch != nil {
		t.Fatal("StagedAggregate should disable batching")
	}
}

// TestBatchedCheckpointRoundTrip: endpoint state capture must work
// unchanged with batching on (contexts are batch members), and a state
// captured from a batched endpoint must restore into an unbatched one
// and vice versa — statefulness is per tensor either way.
func TestBatchedCheckpointRoundTrip(t *testing.T) {
	batched := runPair(t, nil, ingestWhole)
	_ = batched

	cfg := testConfig(compress.SchemeThreeLC, compress.Options{Sparsity: 1.5, ZeroRun: true}, 1)
	mkWorker := func(small int, seed uint64) *Worker {
		c := cfg
		c.SmallTensorElems = small
		return NewWorker(0, testModel(seed), c)
	}
	bw := mkWorker(0, 1)
	uw := mkWorker(-1, 1)
	rng := tensor.NewRNG(5)
	x := tensor.New(5, 8)
	tensor.FillNormal(x, 1, rng)
	labels := []int{0, 1, 2, 0, 1}
	bw.Model.TrainStep(x, labels)
	bw.CompressGrads() // leave nonzero residual state in the arena

	if err := uw.RestoreState(bw.AppendState(nil)); err != nil {
		t.Fatalf("batched state into unbatched worker: %v", err)
	}
	bw2 := mkWorker(0, 1)
	if err := bw2.RestoreState(uw.AppendState(nil)); err != nil {
		t.Fatalf("unbatched state into batched worker: %v", err)
	}
	bw.Model.TrainStep(x, labels)
	bw2.Model.CopyParamsFrom(bw.Model)
	for i := range bw2.params {
		bw2.params[i].G.CopyFrom(bw.params[i].G)
	}
	want, _ := bw.CompressGrads()
	got, _ := bw2.CompressGrads()
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("wire %d differs after state round trip through unbatched form", i)
		}
	}
}
