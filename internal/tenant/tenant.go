// Package tenant provides identity, admission control, quotas, and
// accounting for jobs multiplexed over one shared parameter-server tier.
//
// A tenant is one training job: one model, one codec configuration, one
// set of workers. The Registry admits and retires tenants at runtime and
// is the single authority on which tenant IDs are live. Each admission
// mints a fresh epoch, so a frame tagged with a stale (ID, epoch) pair —
// e.g. from a worker of a retired job whose ID was recycled — is
// rejectable at the transport boundary instead of corrupting the new
// job's state.
//
// Tenant 0 (Default) is reserved for untagged traffic: v1 wire clients
// and single-job in-process callers that predate the multi-tenant
// service map onto it, which keeps the tenancy layer invisible (and
// free) when only one job runs.
package tenant

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// ID names one tenant (one training job) inside a shared tier. IDs are
// caller-assigned: the service keys job state by ID, and workers tag
// every wire frame with their job's ID.
type ID uint32

// Default is the tenant that untagged (v1 or flag-less v2) traffic and
// legacy single-job callers map onto.
const Default ID = 0

// Epoch distinguishes successive admissions of the same ID. Epochs are
// minted by the Registry and strictly increase across all admissions.
type Epoch uint32

// Limits bounds one tenant's use of the shared tier. Zero values mean
// "unlimited" for the quota fields and "use the service default" for
// the scheduling fields.
type Limits struct {
	// MaxOutstanding caps the tenant's per-shard request queue depth
	// (its outstanding budget). Requests beyond the budget block the
	// tenant's own driver; they never displace other tenants.
	MaxOutstanding int

	// MaxSteps is a hard quota on training steps. Once exhausted,
	// further steps fail with ErrQuota.
	MaxSteps uint64

	// MaxBytes is a hard quota on total wire bytes (push + pull).
	// Charged at aggregation time; once exhausted, further steps fail
	// with ErrQuota.
	MaxBytes uint64

	// Quantum is the tenant's deficit-round-robin refill in bytes per
	// scheduling round. Larger quanta give a tenant a proportionally
	// larger share of each shard's aggregation loop.
	Quantum int
}

// Stats is one tenant's running usage, updated atomically by the shard
// tier. Read with the Snapshot method.
type Stats struct {
	Steps       atomic.Uint64 // completed aggregation steps
	PushBytes   atomic.Uint64 // wire bytes received from workers
	PullBytes   atomic.Uint64 // wire bytes served back to workers
	QueueWaitNs atomic.Int64  // cumulative request queue wait
	Retries     atomic.Uint64 // straggler re-attempts charged to this tenant's sends
}

// Snapshot is a plain-value copy of a tenant's Stats.
type Snapshot struct {
	Steps       uint64
	PushBytes   uint64
	PullBytes   uint64
	QueueWaitNs int64
	Retries     uint64
}

// Snapshot returns a consistent-enough copy for reporting. Individual
// fields are atomic; the set is not taken under one lock, which is fine
// for monitoring output.
func (s *Stats) Snapshot() Snapshot {
	return Snapshot{
		Steps:       s.Steps.Load(),
		PushBytes:   s.PushBytes.Load(),
		PullBytes:   s.PullBytes.Load(),
		QueueWaitNs: s.QueueWaitNs.Load(),
		Retries:     s.Retries.Load(),
	}
}

// Registry errors.
var (
	// ErrAdmitLimit is returned by Admit when the registry is at its
	// concurrent-tenant capacity.
	ErrAdmitLimit = errors.New("tenant: admission rejected: registry full")
	// ErrDuplicate is returned by Admit when the ID is already live.
	ErrDuplicate = errors.New("tenant: admission rejected: id already admitted")
	// ErrUnknown is returned when an operation names an ID that is not
	// (or is no longer) admitted.
	ErrUnknown = errors.New("tenant: unknown tenant")
	// ErrEpoch is returned when a frame or request carries a stale
	// epoch for a live ID.
	ErrEpoch = errors.New("tenant: stale epoch")
	// ErrQuota is returned when a step or byte quota is exhausted.
	ErrQuota = errors.New("tenant: quota exhausted")
)

// Tenant is one admitted job's identity, limits, and accounting. It is
// created by Registry.Admit and stays valid (for stats reads) after
// Retire.
type Tenant struct {
	ID     ID
	Epoch  Epoch
	Limits Limits
	Stats  Stats

	steps atomic.Uint64 // quota counter, separate from Stats so charging is one CAS-free Add
	bytes atomic.Uint64
}

// ChargeStep consumes one step of quota. It returns ErrQuota once the
// tenant has used Limits.MaxSteps steps (0 = unlimited).
func (t *Tenant) ChargeStep() error {
	n := t.steps.Add(1)
	if max := t.Limits.MaxSteps; max != 0 && n > max {
		return fmt.Errorf("%w: tenant %d used %d/%d steps", ErrQuota, t.ID, n, max)
	}
	t.Stats.Steps.Add(1)
	return nil
}

// ChargeBytes consumes wire-byte quota (push + pull share one budget).
// It returns ErrQuota once cumulative bytes exceed Limits.MaxBytes
// (0 = unlimited). The overshooting charge itself is still recorded so
// accounting stays truthful.
func (t *Tenant) ChargeBytes(n uint64) error {
	total := t.bytes.Add(n)
	if max := t.Limits.MaxBytes; max != 0 && total > max {
		return fmt.Errorf("%w: tenant %d used %d/%d wire bytes", ErrQuota, t.ID, total, max)
	}
	return nil
}

// Registry tracks the live tenants of one shared tier. All methods are
// safe for concurrent use.
type Registry struct {
	mu      sync.Mutex
	max     int
	nextEp  uint32
	tenants map[ID]*Tenant
}

// NewRegistry returns a registry admitting at most max concurrent
// tenants (0 = unlimited).
func NewRegistry(max int) *Registry {
	return &Registry{max: max, tenants: make(map[ID]*Tenant)}
}

// Admit registers id with the given limits and returns its Tenant,
// carrying a freshly minted epoch. It fails with ErrAdmitLimit when the
// registry is full and ErrDuplicate when id is already live.
func (r *Registry) Admit(id ID, limits Limits) (*Tenant, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.max > 0 && len(r.tenants) >= r.max {
		return nil, fmt.Errorf("%w (%d live, max %d)", ErrAdmitLimit, len(r.tenants), r.max)
	}
	if _, ok := r.tenants[id]; ok {
		return nil, fmt.Errorf("%w (id %d)", ErrDuplicate, id)
	}
	r.nextEp++
	t := &Tenant{ID: id, Epoch: Epoch(r.nextEp), Limits: limits}
	r.tenants[id] = t
	return t, nil
}

// Retire removes id from the live set. The returned Tenant (valid for
// final stats reads) is nil with ErrUnknown if id is not live.
func (r *Registry) Retire(id ID) (*Tenant, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.tenants[id]
	if !ok {
		return nil, fmt.Errorf("%w (id %d)", ErrUnknown, id)
	}
	delete(r.tenants, id)
	return t, nil
}

// Get returns the live tenant for id, or ErrUnknown.
func (r *Registry) Get(id ID) (*Tenant, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.tenants[id]
	if !ok {
		return nil, fmt.Errorf("%w (id %d)", ErrUnknown, id)
	}
	return t, nil
}

// Check validates a frame's (id, epoch) identity pair against the live
// set: ErrUnknown for a dead ID, ErrEpoch for a stale epoch.
func (r *Registry) Check(id ID, ep Epoch) (*Tenant, error) {
	t, err := r.Get(id)
	if err != nil {
		return nil, err
	}
	if t.Epoch != ep {
		return nil, fmt.Errorf("%w (id %d: frame epoch %d, live epoch %d)", ErrEpoch, id, ep, t.Epoch)
	}
	return t, nil
}

// Live returns the live tenants sorted by ID, for stable reporting.
func (r *Registry) Live() []*Tenant {
	r.mu.Lock()
	out := make([]*Tenant, 0, len(r.tenants))
	for _, t := range r.tenants {
		out = append(out, t)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Len reports the number of live tenants.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.tenants)
}
