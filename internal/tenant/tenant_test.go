package tenant

import (
	"errors"
	"sync"
	"testing"
)

func TestAdmitRejectTable(t *testing.T) {
	cases := []struct {
		name    string
		max     int
		pre     []ID // admitted before the probe
		probe   ID
		wantErr error
	}{
		{name: "empty registry admits", max: 4, probe: 7},
		{name: "duplicate id rejected", max: 4, pre: []ID{7}, probe: 7, wantErr: ErrDuplicate},
		{name: "full registry rejected", max: 2, pre: []ID{1, 2}, probe: 3, wantErr: ErrAdmitLimit},
		{name: "unlimited registry admits", max: 0, pre: []ID{1, 2, 3, 4, 5}, probe: 6},
		{name: "default tenant admits like any other", max: 1, probe: Default},
		{name: "duplicate beats spare capacity", max: 2, pre: []ID{9}, probe: 9, wantErr: ErrDuplicate},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewRegistry(tc.max)
			for _, id := range tc.pre {
				if _, err := r.Admit(id, Limits{}); err != nil {
					t.Fatalf("pre-admit %d: %v", id, err)
				}
			}
			_, err := r.Admit(tc.probe, Limits{})
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("Admit(%d) err = %v, want %v", tc.probe, err, tc.wantErr)
			}
		})
	}
}

func TestRetireFreesSlotAndMintsNewEpoch(t *testing.T) {
	r := NewRegistry(1)
	t1, err := r.Admit(3, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Admit(4, Limits{}); !errors.Is(err, ErrAdmitLimit) {
		t.Fatalf("expected ErrAdmitLimit while full, got %v", err)
	}
	if _, err := r.Retire(3); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Retire(3); !errors.Is(err, ErrUnknown) {
		t.Fatalf("double retire err = %v, want ErrUnknown", err)
	}
	t2, err := r.Admit(3, Limits{})
	if err != nil {
		t.Fatalf("re-admit after retire: %v", err)
	}
	if t2.Epoch == t1.Epoch {
		t.Fatalf("re-admission reused epoch %d; epochs must be fresh", t2.Epoch)
	}
	// The stale epoch must now be rejectable at the frame boundary.
	if _, err := r.Check(3, t1.Epoch); !errors.Is(err, ErrEpoch) {
		t.Fatalf("Check(stale epoch) err = %v, want ErrEpoch", err)
	}
	if _, err := r.Check(3, t2.Epoch); err != nil {
		t.Fatalf("Check(live epoch) err = %v", err)
	}
	if _, err := r.Check(99, 1); !errors.Is(err, ErrUnknown) {
		t.Fatalf("Check(unknown id) err = %v, want ErrUnknown", err)
	}
}

func TestQuotaExhaustionTable(t *testing.T) {
	cases := []struct {
		name     string
		limits   Limits
		steps    int    // steps to charge
		bytes    uint64 // bytes per step to charge
		failStep int    // 1-based step at which a charge must fail; 0 = never
	}{
		{name: "unlimited never fails", limits: Limits{}, steps: 100, bytes: 1 << 20},
		{name: "step quota exact boundary", limits: Limits{MaxSteps: 3}, steps: 4, failStep: 4},
		{name: "single step quota", limits: Limits{MaxSteps: 1}, steps: 2, failStep: 2},
		{name: "byte quota mid-run", limits: Limits{MaxBytes: 250}, steps: 5, bytes: 100, failStep: 3},
		{name: "byte quota exact fit passes", limits: Limits{MaxBytes: 500}, steps: 5, bytes: 100},
		{name: "both quotas, steps bind first", limits: Limits{MaxSteps: 2, MaxBytes: 1 << 30}, steps: 3, bytes: 10, failStep: 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ten := &Tenant{ID: 1, Limits: tc.limits}
			for i := 1; i <= tc.steps; i++ {
				err := ten.ChargeStep()
				if err == nil && tc.bytes > 0 {
					err = ten.ChargeBytes(tc.bytes)
				}
				if tc.failStep != 0 && i >= tc.failStep {
					if !errors.Is(err, ErrQuota) {
						t.Fatalf("step %d: err = %v, want ErrQuota", i, err)
					}
				} else if err != nil {
					t.Fatalf("step %d: unexpected err %v", i, err)
				}
			}
		})
	}
}

func TestAdmitConcurrentRespectsCapacity(t *testing.T) {
	const cap, tries = 8, 64
	r := NewRegistry(cap)
	var wg sync.WaitGroup
	errs := make([]error, tries)
	for i := 0; i < tries; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = r.Admit(ID(i), Limits{})
		}(i)
	}
	wg.Wait()
	admitted := 0
	for _, err := range errs {
		if err == nil {
			admitted++
		} else if !errors.Is(err, ErrAdmitLimit) {
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if admitted != cap || r.Len() != cap {
		t.Fatalf("admitted %d (registry %d), want %d", admitted, r.Len(), cap)
	}
	if got := len(r.Live()); got != cap {
		t.Fatalf("Live() = %d tenants, want %d", got, cap)
	}
}

func TestStatsSnapshot(t *testing.T) {
	var s Stats
	s.Steps.Add(2)
	s.PushBytes.Add(100)
	s.PullBytes.Add(200)
	s.QueueWaitNs.Add(42)
	snap := s.Snapshot()
	if snap.Steps != 2 || snap.PushBytes != 100 || snap.PullBytes != 200 || snap.QueueWaitNs != 42 {
		t.Fatalf("snapshot mismatch: %+v", snap)
	}
}
