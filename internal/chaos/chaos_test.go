package chaos

import (
	"bytes"
	"errors"
	"net"
	"testing"
	"time"
)

// sinkConn is a write-capturing net.Conn stand-in: writes append to a
// buffer, reads report EOF-ish zero, close is recorded.
type sinkConn struct {
	buf    bytes.Buffer
	closed bool
}

func (s *sinkConn) Read(b []byte) (int, error)         { return 0, nil }
func (s *sinkConn) Write(b []byte) (int, error)        { return s.buf.Write(b) }
func (s *sinkConn) Close() error                       { s.closed = true; return nil }
func (s *sinkConn) LocalAddr() net.Addr                { return nil }
func (s *sinkConn) RemoteAddr() net.Addr               { return nil }
func (s *sinkConn) SetDeadline(t time.Time) error      { return nil }
func (s *sinkConn) SetReadDeadline(t time.Time) error  { return nil }
func (s *sinkConn) SetWriteDeadline(t time.Time) error { return nil }

// faultTrace runs a fixed write workload through a fresh injector and
// returns the per-write outcome signature.
func faultTrace(t *testing.T, seed uint64) string {
	t.Helper()
	in := New(Config{Seed: seed, BitFlip: 0.2, Truncate: 0.1, Reset: 0.1})
	var sig []byte
	for i := 0; i < 64; i++ {
		sink := &sinkConn{}
		c := in.WrapConn(sink)
		payload := bytes.Repeat([]byte{0xAA}, 32)
		_, err := c.Write(payload)
		switch {
		case err != nil && sink.closed && sink.buf.Len() < len(payload):
			sig = append(sig, 'T') // truncate or reset
		case err != nil:
			sig = append(sig, 'E')
		case !bytes.Equal(sink.buf.Bytes(), payload):
			sig = append(sig, 'F') // bit flip
		default:
			sig = append(sig, '.')
		}
	}
	return string(sig)
}

// TestDeterministicSchedule: same seed, same op sequence, same faults;
// a different seed diverges.
func TestDeterministicSchedule(t *testing.T) {
	a, b := faultTrace(t, 42), faultTrace(t, 42)
	if a != b {
		t.Fatalf("same seed diverged:\n%s\n%s", a, b)
	}
	if c := faultTrace(t, 43); c == a {
		t.Fatalf("different seeds produced identical schedules: %s", a)
	}
	if !bytes.ContainsAny([]byte(a), "TF") {
		t.Fatalf("no faults fired over 64 connections: %s", a)
	}
}

// TestBitFlipCorruptsExactlyOneBit: the flip preserves length and
// touches a single bit, and never mutates the caller's buffer.
func TestBitFlipCorruptsExactlyOneBit(t *testing.T) {
	in := New(Config{Seed: 7, BitFlip: 1})
	sink := &sinkConn{}
	c := in.WrapConn(sink)
	payload := bytes.Repeat([]byte{0x55}, 64)
	orig := append([]byte(nil), payload...)
	n, err := c.Write(payload)
	if err != nil || n != len(payload) {
		t.Fatalf("Write = %d, %v", n, err)
	}
	if !bytes.Equal(payload, orig) {
		t.Fatal("injector mutated the caller's buffer")
	}
	got := sink.buf.Bytes()
	if len(got) != len(payload) {
		t.Fatalf("corrupted write changed length: %d != %d", len(got), len(payload))
	}
	diff := 0
	for i := range got {
		for bit := 0; bit < 8; bit++ {
			if (got[i]^payload[i])>>bit&1 == 1 {
				diff++
			}
		}
	}
	if diff != 1 {
		t.Fatalf("bit flip changed %d bits, want 1", diff)
	}
	if s := in.Stats(); s.BitFlips != 1 || s.Total() != 1 {
		t.Fatalf("stats = %v", s)
	}
}

// TestResetAndTruncate: both sever the connection and surface
// ErrInjected; truncate writes only a prefix.
func TestResetAndTruncate(t *testing.T) {
	in := New(Config{Seed: 1, Reset: 1})
	sink := &sinkConn{}
	if _, err := in.WrapConn(sink).Write([]byte("abcd")); !errors.Is(err, ErrInjected) {
		t.Fatalf("reset err = %v", err)
	}
	if !sink.closed || sink.buf.Len() != 0 {
		t.Fatalf("reset wrote %d bytes, closed=%v", sink.buf.Len(), sink.closed)
	}

	in = New(Config{Seed: 1, Truncate: 1})
	sink = &sinkConn{}
	payload := bytes.Repeat([]byte{1}, 256)
	n, err := in.WrapConn(sink).Write(payload)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("truncate err = %v", err)
	}
	if !sink.closed || sink.buf.Len() != n || n >= len(payload) {
		t.Fatalf("truncate wrote %d (returned %d), closed=%v", sink.buf.Len(), n, sink.closed)
	}
}

// TestFaultBudget: MaxFaults caps injection; past the cap, traffic
// passes through untouched.
func TestFaultBudget(t *testing.T) {
	in := New(Config{Seed: 3, BitFlip: 1, MaxFaults: 2})
	for i := 0; i < 8; i++ {
		sink := &sinkConn{}
		payload := []byte{0xFF, 0x00, 0xFF, 0x00}
		if _, err := in.WrapConn(sink).Write(payload); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		corrupted := !bytes.Equal(sink.buf.Bytes(), payload)
		if i < 2 && !corrupted {
			t.Fatalf("write %d: expected corruption within budget", i)
		}
		if i >= 2 && corrupted {
			t.Fatalf("write %d: corruption past the fault budget", i)
		}
	}
	if s := in.Stats(); s.Total() != 2 {
		t.Fatalf("stats total = %d, want 2", s.Total())
	}
}

// TestDelayAndStallCount: timing faults fire and are counted (the
// durations themselves are scheduler territory).
func TestDelayAndStallCount(t *testing.T) {
	in := New(Config{Seed: 5, StallProb: 1, Stall: time.Microsecond, DelayProb: 1, Delay: time.Microsecond})
	sink := &sinkConn{}
	c := in.WrapConn(sink)
	if _, err := c.Write([]byte{1}); err != nil {
		t.Fatal(err)
	}
	var b [1]byte
	if _, err := c.Read(b[:]); err != nil {
		t.Fatal(err)
	}
	s := in.Stats()
	if s.Stalls != 1 || s.Delays != 1 {
		t.Fatalf("stats = %v", s)
	}
}
