// Package chaos is the deterministic fault-injection layer for the
// transport tier: a net.Conn / net.Listener wrapper that perturbs real
// sockets with the failure modes WAN training actually sees — flipped
// bits, truncated writes, abrupt connection resets, write stalls, and
// delayed reads (the delayed-ACK shape) — driven by a seeded,
// reproducible schedule instead of ambient randomness.
//
// Determinism model: every wrapped connection gets its own fault stream,
// derived by mixing the injector seed with the connection's admission
// index, and each I/O operation on that connection consumes the stream
// in order. For a fixed seed, the decisions along any one connection are
// a pure function of its (index, operation ordinal) — reruns of a
// failed soak replay the same per-connection schedule, with only the
// cross-connection interleaving left to the scheduler. Stalls and
// delays also reorder traffic at connection granularity: one stalled
// connection's frames land after a neighbor's later frames, which is
// exactly the reordering a multi-path WAN exhibits.
//
// The injector plugs into the transport tier through the
// transport.Dialer / transport.ListenWrapper hooks (Injector.Dial and
// Injector.WrapListener match those signatures), so every dial and
// listen point in the tree can be subjected to the same schedule. It is
// the adversary half of the chaos contract; the defenses it validates —
// CRC-32C frame checksums, reconnect-and-replay, unified retry/backoff,
// the shard circuit breaker — live in transport and shard.
//
//3lc:det
package chaos

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected marks every error the injector fabricates, so tests and
// retry loops can tell injected faults from real ones.
var ErrInjected = errors.New("chaos: injected fault")

// Config is one injector's fault mix. Probabilities are per I/O
// operation on a wrapped connection; zero disables that fault class.
type Config struct {
	// Seed selects the fault schedule. The same seed over the same
	// per-connection operation sequences reproduces the same decisions.
	Seed uint64
	// BitFlip is the per-write probability of flipping one bit of the
	// buffer before it hits the socket (the write still succeeds —
	// corruption in flight, not failure).
	BitFlip float64
	// Truncate is the per-write probability of writing only a prefix and
	// then severing the connection: the canonical torn frame.
	Truncate float64
	// Reset is the per-write probability of closing the connection
	// outright before any bytes move.
	Reset float64
	// StallProb stalls a write by Stall before it proceeds: the peer's
	// read deadline sees a silent peer.
	StallProb float64
	Stall     time.Duration
	// DelayProb delays a read by Delay before it is served — the
	// delayed-ACK shape, and the lever that reorders one connection's
	// traffic relative to another's.
	DelayProb float64
	Delay     time.Duration
	// MaxFaults bounds the total faults injected across the whole
	// injector (0 = unlimited): soaks use it to guarantee the fault load
	// stays within the recovery budget of the tier under test.
	MaxFaults int64
}

// Stats counts the faults an injector has actually dealt.
type Stats struct {
	Conns     int64
	BitFlips  int64
	Truncates int64
	Resets    int64
	Stalls    int64
	Delays    int64
}

// Total is the number of injected faults across every class.
func (s Stats) Total() int64 {
	return s.BitFlips + s.Truncates + s.Resets + s.Stalls + s.Delays
}

func (s Stats) String() string {
	return fmt.Sprintf("conns=%d bitflips=%d truncates=%d resets=%d stalls=%d delays=%d",
		s.Conns, s.BitFlips, s.Truncates, s.Resets, s.Stalls, s.Delays)
}

// Injector wraps connections with a seeded fault schedule. One injector
// may wrap any number of listeners and dialers; they share its fault
// budget and stats.
type Injector struct {
	cfg    Config
	conns  atomic.Int64 // admission index allocator
	faults atomic.Int64

	bitFlips  atomic.Int64
	truncates atomic.Int64
	resets    atomic.Int64
	stalls    atomic.Int64
	delays    atomic.Int64
}

// New builds an injector for cfg.
func New(cfg Config) *Injector {
	return &Injector{cfg: cfg}
}

// Stats snapshots the injected-fault counters.
func (in *Injector) Stats() Stats {
	return Stats{
		Conns:     in.conns.Load(),
		BitFlips:  in.bitFlips.Load(),
		Truncates: in.truncates.Load(),
		Resets:    in.resets.Load(),
		Stalls:    in.stalls.Load(),
		Delays:    in.delays.Load(),
	}
}

// spend takes one unit of fault budget; a false return means the
// injector is out of budget and the operation must pass through clean.
func (in *Injector) spend() bool {
	if in.cfg.MaxFaults <= 0 {
		return true
	}
	for {
		n := in.faults.Load()
		if n >= in.cfg.MaxFaults {
			return false
		}
		if in.faults.CompareAndSwap(n, n+1) {
			return true
		}
	}
}

// WrapConn wraps one connection with the next fault stream.
func (in *Injector) WrapConn(c net.Conn) net.Conn {
	idx := in.conns.Add(1)
	return &conn{
		Conn: c,
		in:   in,
		rng:  splitmix64(in.cfg.Seed ^ uint64(idx)*0x9e3779b97f4a7c15),
	}
}

// Dial opens a TCP connection and wraps it. Its signature matches
// transport.Dialer.
func (in *Injector) Dial(addr string) (net.Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return in.WrapConn(c), nil
}

// WrapListener wraps a listener so every accepted connection carries the
// injector's schedule. Its signature matches transport.ListenWrapper.
func (in *Injector) WrapListener(ln net.Listener) net.Listener {
	return &listener{Listener: ln, in: in}
}

type listener struct {
	net.Listener
	in *Injector
}

func (l *listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.in.WrapConn(c), nil
}

// SetDeadline forwards to the wrapped listener when it supports
// deadlines (a *net.TCPListener does). Embedding the net.Listener
// interface would otherwise hide the method, and the transport tier's
// deadline-bounded accept loops — the resilient reacquire path — would
// block forever under injection.
func (l *listener) SetDeadline(t time.Time) error {
	if dl, ok := l.Listener.(interface{ SetDeadline(time.Time) error }); ok {
		return dl.SetDeadline(t)
	}
	return nil
}

// conn is one wrapped connection: a deterministic fault stream over an
// underlying net.Conn. The schedule words are drawn under the lock; the
// underlying I/O always runs outside it, so a write stalled on TCP
// backpressure never blocks the connection's concurrent read path (the
// streamed push/pull window overlaps the two).
type conn struct {
	net.Conn
	in *Injector

	mu  sync.Mutex
	rng uint64
}

// draw consumes the connection's next two schedule words: a fault
// selector and an auxiliary position word. Both are drawn on every
// operation so the schedule shape does not depend on which faults
// actually fire.
func (c *conn) draw() (sel, aux uint64) {
	c.mu.Lock()
	c.rng = splitmix64(c.rng)
	sel = c.rng
	c.rng = splitmix64(c.rng)
	aux = c.rng
	c.mu.Unlock()
	return sel, aux
}

// prob converts a schedule word to a uniform in [0, 1).
func prob(u uint64) float64 {
	return float64(u>>11) / (1 << 53)
}

func (c *conn) Write(b []byte) (int, error) {
	sel, aux := c.draw()
	p := prob(sel)
	cfg := &c.in.cfg
	switch {
	case p < cfg.Reset:
		if c.in.spend() {
			c.in.resets.Add(1)
			c.Conn.Close()
			return 0, fmt.Errorf("%w: connection reset on write", ErrInjected)
		}
	case p < cfg.Reset+cfg.Truncate:
		if len(b) > 0 && c.in.spend() {
			c.in.truncates.Add(1)
			n := int(aux % uint64(len(b)))
			if n > 0 {
				c.Conn.Write(b[:n])
			}
			c.Conn.Close()
			return n, fmt.Errorf("%w: write truncated at %d/%d bytes", ErrInjected, n, len(b))
		}
	case p < cfg.Reset+cfg.Truncate+cfg.BitFlip:
		if len(b) > 0 && c.in.spend() {
			c.in.bitFlips.Add(1)
			// Corrupt a copy: the caller's buffer is not ours to mutate.
			corrupted := append([]byte(nil), b...)
			bit := aux % uint64(8*len(b))
			corrupted[bit/8] ^= 1 << (bit % 8)
			return c.Conn.Write(corrupted)
		}
	case p < cfg.Reset+cfg.Truncate+cfg.BitFlip+cfg.StallProb:
		if cfg.Stall > 0 && c.in.spend() {
			c.in.stalls.Add(1)
			time.Sleep(cfg.Stall)
		}
	}
	return c.Conn.Write(b)
}

func (c *conn) Read(b []byte) (int, error) {
	sel, _ := c.draw()
	cfg := &c.in.cfg
	if prob(sel) < cfg.DelayProb && cfg.Delay > 0 && c.in.spend() {
		c.in.delays.Add(1)
		time.Sleep(cfg.Delay)
	}
	return c.Conn.Read(b)
}

// splitmix64 is the SplitMix64 step/finalizer (same mix as
// internal/retry): cheap, full-avalanche, and stateless per draw.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
