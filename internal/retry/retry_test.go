package retry

import (
	"testing"
	"time"
)

// TestBackoffPinned pins the exact backoff sequences for fixed seeds:
// the jitter is part of the reproducibility contract (a replayed run
// must make the same timing decisions), so any change to the mixing
// function or scaling is a wire-level behavior change and must show up
// here.
func TestBackoffPinned(t *testing.T) {
	cases := []struct {
		name string
		p    Policy
		want []time.Duration
	}{
		{
			name: "zero-policy-defaults",
			p:    Policy{},
			want: []time.Duration{50000000, 100000000, 200000000, 400000000, 800000000, 1600000000, 2000000000},
		},
		{
			name: "jitter-seed-42",
			p:    Policy{MaxAttempts: 8, Jitter: 0.5, Seed: 42},
			want: []time.Duration{61408938, 71335876, 113716178, 492079709, 786569421, 2370438487, 2936827179},
		},
		{
			name: "jitter-seed-42-stream-3",
			p:    Policy{MaxAttempts: 8, Jitter: 0.5, Seed: 42}.Stream(3),
			want: []time.Duration{74850353, 54196081, 195571926, 464968754, 1174086728, 1211082265, 1130624187},
		},
		{
			name: "soak-shape",
			p:    Policy{Base: 25 * time.Millisecond, Cap: 250 * time.Millisecond, Multiplier: 2, Jitter: 0.2, Seed: 7},
			want: []time.Duration{27398170, 47735360, 97258232, 169076027, 259118973, 256656157, 288331080},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for a, want := range tc.want {
				if got := tc.p.Backoff(a); got != want {
					t.Errorf("attempt %d: Backoff = %d, want %d", a, got, want)
				}
			}
		})
	}
}

func TestBackoffBounds(t *testing.T) {
	p := Policy{Base: 10 * time.Millisecond, Cap: 80 * time.Millisecond, Multiplier: 2, Jitter: 0.3, Seed: 99}
	for a := 0; a < 64; a++ {
		d := p.Backoff(a)
		nominal := 10 * time.Millisecond << uint(a)
		if a > 3 {
			nominal = 80 * time.Millisecond
		}
		lo := time.Duration(float64(nominal) * 0.7)
		hi := time.Duration(float64(nominal) * 1.3)
		if d < lo || d > hi {
			t.Fatalf("attempt %d: %v outside jitter envelope [%v, %v]", a, d, lo, hi)
		}
	}
	// Negative attempts clamp instead of panicking.
	if d := p.Backoff(-5); d != p.Backoff(0) {
		t.Fatalf("negative attempt: %v != attempt 0's %v", d, p.Backoff(0))
	}
}

func TestAttempts(t *testing.T) {
	if got := (Policy{}).Attempts(); got != DefaultAttempts {
		t.Fatalf("zero policy attempts = %d, want %d", got, DefaultAttempts)
	}
	if got := (Policy{MaxAttempts: -1}).Attempts(); got != 1 {
		t.Fatalf("negative attempts = %d, want 1", got)
	}
	if got := (Policy{MaxAttempts: 9}).Attempts(); got != 9 {
		t.Fatalf("attempts = %d, want 9", got)
	}
}

// TestStreamDecorrelates checks distinct salts yield distinct jitter
// streams while the same salt reproduces the same one.
func TestStreamDecorrelates(t *testing.T) {
	p := Policy{Jitter: 0.5, Seed: 42}
	a, b, a2 := p.Stream(3), p.Stream(4), p.Stream(3)
	if a.Seed == b.Seed {
		t.Fatal("streams 3 and 4 share a seed")
	}
	if a.Seed != a2.Seed {
		t.Fatal("stream derivation is not deterministic")
	}
	same := 0
	for i := 0; i < 8; i++ {
		if a.Backoff(i) == b.Backoff(i) {
			same++
		}
	}
	if same == 8 {
		t.Fatal("streams 3 and 4 produced identical schedules")
	}
}
