// Package retry is the repo-wide backoff policy: capped exponential
// delays with deterministic, seeded jitter.
//
// Every retry loop in the tree — the transport tier's reconnect/failover
// path, the shard service's straggler re-enqueue, the chaos soak's
// recovery budget — shares this one Policy so schedules are tuned in a
// single place and, critically, are reproducible: the jitter for a given
// (seed, attempt) pair is a pure function, not a rand.Rand draw, so a
// failed run can be replayed decision-for-decision. Distinct retry
// streams (per tenant, per shard, per worker) decorrelate by deriving
// their seed with Stream, which keeps independent loops from
// synchronizing their retries into load spikes — the thundering-herd
// failure mode of bare doubling schedules.
//
//3lc:det
package retry

import "time"

// Defaults used for zero-valued Policy fields.
const (
	DefaultAttempts   = 4
	DefaultBase       = 50 * time.Millisecond
	DefaultCap        = 2 * time.Second
	DefaultMultiplier = 2.0
)

// Policy is a capped exponential backoff schedule with deterministic
// jitter. The zero value is a usable default policy (4 attempts, 50ms
// base, 2s cap, 2x growth, no jitter).
type Policy struct {
	// MaxAttempts is the total number of tries, including the first.
	// Zero means DefaultAttempts; negative means 1 (no retries).
	MaxAttempts int
	// Base is the nominal delay before the first retry. Zero means
	// DefaultBase.
	Base time.Duration
	// Cap bounds the nominal (pre-jitter) delay. Zero means DefaultCap.
	Cap time.Duration
	// Multiplier is the per-attempt growth factor. Zero means
	// DefaultMultiplier; values below 1 are treated as 1 (constant
	// delay).
	Multiplier float64
	// Jitter is the symmetric jitter fraction in [0, 1): the delay for
	// attempt i is the nominal delay scaled by a deterministic factor in
	// [1-Jitter, 1+Jitter] derived from (Seed, i). Zero means no jitter.
	Jitter float64
	// Seed selects the jitter stream. Two loops with the same Seed see
	// the same jitter sequence; decorrelate them with Stream.
	Seed uint64
}

// Attempts returns the effective total attempt budget (>= 1).
func (p Policy) Attempts() int {
	if p.MaxAttempts == 0 {
		return DefaultAttempts
	}
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// Stream returns a copy of p whose jitter stream is derived from salt,
// so independent retry loops (per tenant, shard, worker...) sharing one
// configured policy draw decorrelated jitter.
func (p Policy) Stream(salt uint64) Policy {
	p.Seed = splitmix64(p.Seed ^ (salt + 0x9e3779b97f4a7c15))
	return p
}

// Backoff returns the delay to sleep before retry number attempt
// (attempt 0 = the delay after the first failure). The result is a pure
// function of the policy and attempt: nominal = min(Cap, Base *
// Multiplier^attempt), scaled by the deterministic jitter factor.
func (p Policy) Backoff(attempt int) time.Duration {
	if attempt < 0 {
		attempt = 0
	}
	base := p.Base
	if base <= 0 {
		base = DefaultBase
	}
	ceil := p.Cap
	if ceil <= 0 {
		ceil = DefaultCap
	}
	mult := p.Multiplier
	if mult == 0 {
		mult = DefaultMultiplier
	}
	if mult < 1 {
		mult = 1
	}
	d := float64(base)
	limit := float64(ceil)
	for i := 0; i < attempt && d < limit; i++ {
		d *= mult
	}
	if d > limit {
		d = limit
	}
	if j := p.Jitter; j > 0 {
		if j >= 1 {
			j = 0.999
		}
		// Uniform in [-1, 1) from the top 53 bits of a splitmix64 draw.
		u := float64(splitmix64(p.Seed^uint64(attempt+1))>>11) / (1 << 52)
		d *= 1 + j*(u-1)
	}
	if d < 1 {
		d = 1
	}
	return time.Duration(d)
}

// splitmix64 is the SplitMix64 finalizer: a bijective avalanche mix,
// the standard cheap way to turn structured integers into independent-
// looking streams.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
