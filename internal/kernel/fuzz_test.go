package kernel

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"threelc/internal/tensor"
)

// tierSweep runs fn once under every kernel tier this CPU/build supports,
// restoring the entry tier afterwards. Fuzz callbacks run serially within
// a worker process, so the global SetTier swap is safe here.
func tierSweep(fn func(tier Tier)) {
	prev := ActiveTier()
	defer SetTier(prev)
	for _, tier := range AvailableTiers() {
		SetTier(tier)
		fn(tier)
	}
}

// nanClassEqual is bitsEqual relaxed by the one cross-tier exception the
// simd package documents: when BOTH operands of an accumulate are NaN, the
// surviving payload is whichever operand the hardware add kept, which can
// differ between code shapes. Slots that are NaN in both buffers therefore
// compare equal regardless of payload; everything else must be
// bit-identical.
func nanClassEqual(a, b []float32) (int, bool) {
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) && !(a[i] != a[i] && b[i] != b[i]) {
			return i, false
		}
	}
	return 0, true
}

// FuzzFusedVsStaged is the differential fuzz target behind the fused
// kernels' bit-compatibility guarantee: for arbitrary tensor contents
// (including NaN/Inf bit patterns), sparsity multipliers, and both ZRE
// settings, the fused compress path must produce byte-identical wires and
// bit-identical residual buffers (up to NaN payload class) to the staged
// quant+encode composition — across two accumulating steps, in serial and
// chunked-parallel form, under EVERY available kernel tier — and the fused
// LUT decoder must reproduce the staged decode bit-exactly.
func FuzzFusedVsStaged(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0}, uint8(0), true)
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}, uint8(128), false)
	f.Add(bytes.Repeat([]byte{0xff, 0xff, 0x7f, 0x7f}, 9), uint8(255), true) // large finite values
	f.Add(bytes.Repeat([]byte{0, 0, 0xc0, 0x7f}, 7), uint8(17), true)        // NaNs

	f.Fuzz(func(t *testing.T, data []byte, sByte uint8, zre bool) {
		n := len(data) / 4
		if n == 0 || n > 1<<14 {
			return
		}
		tierSweep(func(tier Tier) {
			fuzzFusedVsStagedBody(t, data, sByte, zre, n, tier)
		})
	})
}

func fuzzFusedVsStagedBody(t *testing.T, data []byte, sByte uint8, zre bool, n int, tier Tier) {
	// Sparsity in [1, 2): the full legal range of Eq. 1.
	s := 1 + float64(sByte)/256

	vals := make([]float32, n)
	for i := range vals {
		vals[i] = math.Float32frombits(binary.LittleEndian.Uint32(data[4*i:]))
	}
	in := tensor.FromSlice(append([]float32(nil), vals...), n)

	accStaged := tensor.New(n)
	bufSerial := make([]float32, n)
	bufParallel := make([]float32, n)

	for step := 0; step < 2; step++ {
		wantWire, wantM := stagedTernary(accStaged, in, s, zre)

		parIn := append([]float32(nil), in.Data()...)
		m := float64(AccumulateMaxAbs(bufSerial, in.Data())) * s
		mPar := float64(AccumulateMaxAbsParallel(bufParallel, parIn, 3)) * s
		if math.Float64bits(m) != math.Float64bits(mPar) {
			t.Fatalf("step %d: serial scale %v != parallel %v", step, m, mPar)
		}
		if math.Float32bits(float32(m)) != math.Float32bits(wantM) {
			t.Fatalf("step %d: fused scale %v != staged %v", step, float32(m), wantM)
		}

		gotSerial := EncodeTernary(bufSerial, m, zre, nil)
		gotParallel, _ := EncodeTernaryParallel(bufParallel, m, zre, nil, 3, nil)
		if !bytes.Equal(gotSerial, wantWire) {
			t.Fatalf("tier %v step %d: serial fused wire != staged wire (%d vs %d bytes)", tier, step, len(gotSerial), len(wantWire))
		}
		if !bytes.Equal(gotParallel, wantWire) {
			t.Fatalf("tier %v step %d: parallel fused wire != staged wire", tier, step)
		}
		if i, ok := nanClassEqual(bufSerial, accStaged.Data()); !ok {
			t.Fatalf("tier %v step %d: serial residual differs at %d", tier, step, i)
		}
		if i, ok := nanClassEqual(bufParallel, accStaged.Data()); !ok {
			t.Fatalf("tier %v step %d: parallel residual differs at %d", tier, step, i)
		}

		// Decode side: the fused LUT decoder must agree with the
		// staged expand+scaled-decode bit for bit. Skip wires the
		// staged decoder itself rejects (garbage values can quantize
		// outside the ternary range and produce undecodable bytes).
		want, errStaged := stagedDecode(wantWire, zre, wantM, n)
		got := make([]float32, n)
		errFused := DecodeTernary(wantWire, zre, wantM, got)
		if (errStaged == nil) != (errFused == nil) {
			t.Fatalf("tier %v step %d: staged decode err=%v, fused err=%v", tier, step, errStaged, errFused)
		}
		if errStaged == nil {
			if i, ok := bitsEqual(got, want); !ok {
				t.Fatalf("tier %v step %d: decode differs at %d: %x vs %x",
					tier, step, i, math.Float32bits(got[i]), math.Float32bits(want[i]))
			}
		}
	}
}

// FuzzDecodeTernaryAdd feeds arbitrary bytes to the fused
// decode-accumulate kernels: untrusted payloads may error but must never
// panic, and — stronger than the decode-into contract — a rejected
// payload must leave the accumulator bit-identical to its prior state, in
// every form (serial, scaled, multi-payload parallel). Accepted payloads
// must accumulate bit-identically to decode-then-add.
func FuzzDecodeTernaryAdd(f *testing.F) {
	f.Add([]byte{121, 121, 121}, uint32(0x3f800000), true)
	f.Add([]byte{255, 0, 243}, uint32(0x7fc00000), true) // runs + NaN scale
	f.Add([]byte{242, 121}, uint32(0), false)
	f.Add([]byte{250, 250, 250, 7}, uint32(0xbf000000), true)

	small := make([]float32, 13)
	big := make([]float32, scaledLUTMinElems+2)
	snapBuf := make([]float32, len(big))
	tmpBuf := make([]float32, len(big))
	f.Fuzz(func(t *testing.T, body []byte, mBits uint32, zre bool) {
		m := math.Float32frombits(mBits)
		tierSweep(func(Tier) {
			for _, dst := range [][]float32{small, big} {
				for i := range dst {
					dst[i] = float32(i%7) - 3
				}
				snap := snapBuf[:len(dst)]
				copy(snap, dst)

				want := tmpBuf[:len(dst)]
				errRef := DecodeTernary(body, zre, m, want)
				err := DecodeTernaryAdd(body, zre, m, dst)
				if (err == nil) != (errRef == nil) {
					t.Fatalf("decode err=%v, decode-add err=%v", errRef, err)
				}
				if err != nil {
					if i, ok := bitsEqual(dst, snap); !ok {
						t.Fatalf("rejected payload corrupted accumulator at %d", i)
					}
				} else {
					for i := range snap {
						snap[i] += want[i]
					}
					if i, ok := bitsEqual(dst, snap); !ok {
						t.Fatalf("decode-add differs from decode-then-add at %d", i)
					}
				}

				copy(snap, dst)
				if err := DecodeTernaryAddScaled(body, zre, m, -0.5, dst); (err == nil) != (errRef == nil) {
					t.Fatalf("scaled decode-add err=%v, decode err=%v", err, errRef)
				} else if err != nil {
					if i, ok := bitsEqual(dst, snap); !ok {
						t.Fatalf("rejected payload corrupted accumulator at %d (scaled)", i)
					}
				}

				wires := []TernaryWire{{Body: body, ZRE: zre, M: m}, {Body: body, ZRE: zre, M: m}}
				copy(snap, dst)
				if err := DecodeTernaryAddParallel(wires, dst, 3); (err == nil) != (errRef == nil) {
					t.Fatalf("parallel decode-add err=%v, decode err=%v", err, errRef)
				} else if err != nil {
					if i, ok := bitsEqual(dst, snap); !ok {
						t.Fatalf("rejected payload corrupted accumulator at %d (parallel)", i)
					}
				}
			}
		})
	})
}

// FuzzDecodeTernary feeds arbitrary bytes to the fused decoder: untrusted
// network payloads may error but must never panic, in any destination
// size, on both sides of the ScaledLUT threshold.
func FuzzDecodeTernary(f *testing.F) {
	f.Add([]byte{121, 121, 121}, uint32(0x3f800000), true)
	f.Add([]byte{255, 0, 243}, uint32(0x7fc00000), true) // runs + NaN scale
	f.Add([]byte{242, 121}, uint32(0), false)

	small := make([]float32, 13)
	big := make([]float32, scaledLUTMinElems+2)
	f.Fuzz(func(t *testing.T, body []byte, mBits uint32, zre bool) {
		m := math.Float32frombits(mBits)
		tierSweep(func(Tier) {
			_ = DecodeTernary(body, zre, m, small)
			_ = DecodeTernary(body, zre, m, big)
		})
	})
}
