package kernel

import (
	"fmt"
	"math"
	"sync"

	"threelc/internal/encode"
)

// ternLUT maps each valid quartic byte (0..242) to its five shifted-back
// ternary digits in {-1, 0, +1}: the decode side's 243-entry lookup table.
// Built once at init from the same base-3 digit extraction the staged
// decoder performs per byte. The table is padded to 256 rows (run-marker
// rows stay zero and are never decoded from) so byte-indexed lookups need
// no bounds check and the vector tiers' 16-byte row loads stay in bounds.
var ternLUT [256][encode.GroupSize]int8

func init() {
	for b := 0; b <= encode.MaxQuartic; b++ {
		v := byte(b)
		ternLUT[b][4] = int8(v%3) - 1
		v /= 3
		ternLUT[b][3] = int8(v%3) - 1
		v /= 3
		ternLUT[b][2] = int8(v%3) - 1
		v /= 3
		ternLUT[b][1] = int8(v%3) - 1
		v /= 3
		ternLUT[b][0] = int8(v) - 1
	}
}

// ScaledLUT is the per-M float32 expansion of ternLUT: tab[b][k] =
// M · ternLUT[b][k], so the decode loop copies five ready floats per wire
// byte with no per-element multiply. Build costs 243·5 multiplies, so the
// fused decoder only uses it for tensors comfortably above that size
// (scaledLUTMinElems) and caches the last M (by bit pattern — scales from
// untrusted wires can be NaN) to skip rebuilds when M repeats.
type ScaledLUT struct {
	mbits uint32
	valid bool
	// tab is padded to 256 rows like ternLUT (see scaledTab).
	tab scaledTab
}

// Build populates the table for scale m, skipping the work when the table
// already holds exactly this scale.
func (l *ScaledLUT) Build(m float32) {
	bits := math.Float32bits(m)
	if l.valid && l.mbits == bits {
		return
	}
	for b := range l.tab {
		for k := 0; k < encode.GroupSize; k++ {
			l.tab[b][k] = m * float32(ternLUT[b][k])
		}
	}
	l.mbits = bits
	l.valid = true
}

// scaledLUTMinElems is the tensor size above which building the per-M
// ScaledLUT (243·5 multiplies) amortizes; smaller tensors decode through
// ternLUT with an inline multiply instead, which is the same single pass.
const scaledLUTMinElems = 4096

// lutPool recycles ScaledLUTs (~4.8 KB each) across decode calls so the
// steady-state pull path allocates nothing; the cached-M check inside
// Build makes reuse with a repeated scale free.
var lutPool = sync.Pool{New: func() any { return new(ScaledLUT) }}

// DecodeTernary decodes a ternary wire body — quartic bytes, zero-run
// encoded when zre is set — into dst in a single fused pass: each wire
// byte is either expanded from a run marker into scaled zeros or looked up
// in the LUT and streamed into dst as five scaled floats (dst[i] = m·q).
// It never reads or writes any intermediate buffer.
//
// The body is untrusted network data, so like encode.QuarticDecodeScaledInto
// the kernel returns errors instead of panicking: a payload whose group
// count does not expand to exactly len(dst) values (truncated, overlong,
// or a run overrunning the end), or — without zre — a byte above
// encode.MaxQuartic, is rejected. On error dst's contents are unspecified;
// validation happens in the same pass that decodes.
//
//3lc:noalloc
//3lc:decode
func DecodeTernary(body []byte, zre bool, m float32, dst []float32) error {
	n := len(dst)
	notePass("lut-decode", n)
	gTotal := encode.QuarticEncodedLen(n)
	if !zre && len(body) != gTotal {
		return fmt.Errorf("kernel: quartic payload %d bytes, want %d", len(body), gTotal)
	}
	if n >= scaledLUTMinElems {
		l := lutPool.Get().(*ScaledLUT)
		l.Build(m)
		err := decodeCore(body, zre, &l.tab, gTotal, dst)
		lutPool.Put(l)
		return err
	}
	return decodeSmall(body, zre, m, gTotal, dst)
}

// decodeScaled is the scalar-tier ScaledLUT decode loop.
//
//3lc:noalloc
//3lc:decode
func decodeScaled(body []byte, zre bool, tab *scaledTab, gTotal int, dst []float32) error {
	n := len(dst)
	zero := tab[encode.ZeroGroupByte][0] // m·0, NaN-propagating like the staged multiply
	gi, w := 0, 0
	for off, b := range body {
		if b > encode.MaxQuartic {
			if !zre {
				return fmt.Errorf("kernel: invalid quartic byte %d at offset %d", b, off)
			}
			k := int(b) - encode.RunBase + 2
			if gi+k > gTotal {
				return fmt.Errorf("kernel: zero run at offset %d expands past %d groups", off, gTotal)
			}
			gi += k
			end := w + k*encode.GroupSize
			if end > n {
				end = n
			}
			for ; w < end; w++ {
				dst[w] = zero
			}
			continue
		}
		if gi >= gTotal {
			return fmt.Errorf("kernel: payload longer than %d groups", gTotal)
		}
		gi++
		row := &tab[b]
		if w+encode.GroupSize <= n {
			dst[w] = row[0]
			dst[w+1] = row[1]
			dst[w+2] = row[2]
			dst[w+3] = row[3]
			dst[w+4] = row[4]
			w += encode.GroupSize
		} else {
			for k := 0; w < n; k, w = k+1, w+1 {
				dst[w] = row[k]
			}
		}
	}
	if gi != gTotal {
		return fmt.Errorf("kernel: payload expands to %d groups, want %d", gi, gTotal)
	}
	return nil
}

// decodeSmall is the small-tensor decode loop: same single pass, ternLUT
// digits scaled by an inline multiply instead of a prebuilt ScaledLUT.
//
//3lc:noalloc
//3lc:decode
func decodeSmall(body []byte, zre bool, m float32, gTotal int, dst []float32) error {
	n := len(dst)
	zero := m * float32(0)
	gi, w := 0, 0
	for off, b := range body {
		if b > encode.MaxQuartic {
			if !zre {
				return fmt.Errorf("kernel: invalid quartic byte %d at offset %d", b, off)
			}
			k := int(b) - encode.RunBase + 2
			if gi+k > gTotal {
				return fmt.Errorf("kernel: zero run at offset %d expands past %d groups", off, gTotal)
			}
			gi += k
			end := w + k*encode.GroupSize
			if end > n {
				end = n
			}
			for ; w < end; w++ {
				dst[w] = zero
			}
			continue
		}
		if gi >= gTotal {
			return fmt.Errorf("kernel: payload longer than %d groups", gTotal)
		}
		gi++
		row := &ternLUT[b]
		if w+encode.GroupSize <= n {
			dst[w] = m * float32(row[0])
			dst[w+1] = m * float32(row[1])
			dst[w+2] = m * float32(row[2])
			dst[w+3] = m * float32(row[3])
			dst[w+4] = m * float32(row[4])
			w += encode.GroupSize
		} else {
			for k := 0; w < n; k, w = k+1, w+1 {
				dst[w] = m * float32(row[k])
			}
		}
	}
	if gi != gTotal {
		return fmt.Errorf("kernel: payload expands to %d groups, want %d", gi, gTotal)
	}
	return nil
}
