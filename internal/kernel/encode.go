package kernel

import (
	"math"

	"threelc/internal/encode"
	"threelc/internal/tensor"
)

// EncodeTernary is compress pass 2, the fused 3LC encoder: in a single
// loop over buf it 3-value quantizes each element against the scale m
// (q = round(v/m), Eq. 2), locally dequantizes and subtracts the sent
// value so buf is left holding the residual (steps a–b of Figure 3), packs
// each 5-element group into one quartic byte (§3.2), and — when zeroRun is
// set — zero-run encodes on the fly (§3.3), appending the wire payload
// directly to dst. No intermediate ternary buffer or dequantized tensor
// ever exists.
//
// m is the float64 quantization scale max|buf|·s; the value transmitted on
// the wire (and used for the local dequantization) is float32(m), exactly
// as in the staged quant.Quantize3Into/DequantizeInto pair, so wires and
// residuals are bit-identical to the staged pipeline. m == 0 (an all-zero
// buffer) quantizes everything to zero without touching buf at all.
//
//3lc:noalloc
func EncodeTernary(buf []float32, m float64, zeroRun bool, dst []byte) []byte {
	n := len(buf)
	qlen := encode.QuarticEncodedLen(n)
	if m == 0 {
		// max|buf| == 0: every element quantizes to zero and the residual
		// subtraction is a no-op, so the wire — one maximal zero run — is
		// emitted without a pass over tensor memory.
		if zeroRun {
			return appendZeroRun(dst, qlen)
		}
		return appendZeroGroups(dst, qlen)
	}
	notePass("quantize+pack", n)
	tpos := ternaryThreshold(1 / m)
	dq := makeDequantTab(float32(m))
	base := len(dst)
	dst = growCap(dst, qlen)
	out := dst[base : base+qlen]
	if packBlocksFn != nil {
		// Asm tier: pack every group to its absolute slot through the block
		// core, then zero-run compact in place. Byte-identical to the inline
		// ZRE loop below (zreCompact replays flushZeroRun's sequencing).
		packRangeFast(buf, 0, n, tpos, &dq, out)
		if !zeroRun {
			return dst[:base+qlen]
		}
		return dst[:base+zreCompact(out)]
	}
	w, run := 0, 0
	i := 0
	for ; i+encode.GroupSize <= n; i += encode.GroupSize {
		b := quantPack5(buf, i, tpos, &dq)
		if zeroRun {
			if b == encode.ZeroGroupByte {
				run++
				continue
			}
			w = flushZeroRun(out, w, run)
			run = 0
		}
		out[w] = b
		w++
	}
	if i < n {
		b := quantPackTail(buf, i, n, tpos, &dq)
		if zeroRun && b == encode.ZeroGroupByte {
			run++
		} else {
			if zeroRun {
				w = flushZeroRun(out, w, run)
				run = 0
			}
			out[w] = b
			w++
		}
	}
	if zeroRun {
		w = flushZeroRun(out, w, run)
	}
	return dst[:base+w]
}

// ternChunk is one chunk's contribution to the parallel fused encode: the
// count of leading zero groups, the fully encoded middle (first through
// last non-zero-group byte), and the count of trailing zero groups. A
// chunk containing only zero groups reports them all in lead with allZero
// set, so boundary-spanning zero runs accumulate across any number of
// chunks during stitch-up.
type ternChunk struct {
	lead    int
	trail   int
	mid     []byte
	allZero bool
}

// EncodeTernaryParallel is the chunked-parallel form of EncodeTernary:
// chunks aligned to 5-element group boundaries quantize, update residuals,
// and pack concurrently, then a serial stitch-up merges zero runs that
// cross chunk boundaries so the output is byte-identical to the serial
// kernel for any worker count. scratch holds the per-chunk encodings
// (grown to the quartic length when needed) and is returned for the caller
// to retain across steps.
func EncodeTernaryParallel(buf []float32, m float64, zeroRun bool, dst []byte, workers int, scratch []byte) (out, newScratch []byte) {
	n := len(buf)
	if workers <= 1 || m == 0 {
		return EncodeTernary(buf, m, zeroRun, dst), scratch
	}
	notePass("quantize+pack", n)
	tpos := ternaryThreshold(1 / m)
	dq := makeDequantTab(float32(m))
	qlen := encode.QuarticEncodedLen(n)
	base := len(dst)
	dst = growCap(dst, qlen)
	outBuf := dst[base : base+qlen]

	if !zeroRun {
		// Without zero-run encoding every group maps to a fixed output
		// byte, so chunks write disjoint spans of the destination directly.
		forEachChunk(n, encode.GroupSize, workers, func(_, lo, hi int) {
			quantPackRangeDispatch(buf, lo, hi, tpos, &dq, outBuf)
		})
		return dst[:base+qlen], scratch
	}

	if cap(scratch) < qlen {
		scratch = make([]byte, qlen)
	}
	sc := scratch[:qlen]
	res := make([]ternChunk, workers)
	used := forEachChunk(n, encode.GroupSize, workers, func(idx, lo, hi int) {
		region := sc[lo/encode.GroupSize : (hi+encode.GroupSize-1)/encode.GroupSize]
		if packBlocksFn != nil {
			res[idx] = encodeTernaryChunkFast(buf, lo, hi, tpos, &dq, region)
		} else {
			res[idx] = encodeTernaryChunk(buf, lo, hi, tpos, &dq, region)
		}
	})

	// Serial stitch-up: pending carries the zero run open at the current
	// chunk boundary; it is flushed exactly where the serial encoder would
	// flush it (the next non-zero-group byte or end of stream).
	w, pending := 0, 0
	for c := 0; c < used; c++ {
		r := &res[c]
		pending += r.lead
		if r.allZero {
			continue
		}
		w = flushZeroRun(outBuf, w, pending)
		copy(outBuf[w:], r.mid)
		w += len(r.mid)
		pending = r.trail
	}
	w = flushZeroRun(outBuf, w, pending)
	return dst[:base+w], scratch
}

// encodeTernaryChunk runs the fused quantize+pack+ZRE loop over buf[lo:hi],
// writing the chunk's middle encoding into region and reporting boundary
// zero runs as counts for the stitch-up.
func encodeTernaryChunk(buf []float32, lo, hi int, tpos float32, dq *dequantTab, region []byte) ternChunk {
	r := ternChunk{allZero: true}
	w, run := 0, 0
	emit := func(b byte) {
		if b == encode.ZeroGroupByte {
			if r.allZero {
				r.lead++
			} else {
				run++
			}
			return
		}
		r.allZero = false
		w = flushZeroRun(region, w, run)
		run = 0
		region[w] = b
		w++
	}
	i := lo
	for ; i+encode.GroupSize <= hi; i += encode.GroupSize {
		emit(quantPack5(buf, i, tpos, dq))
	}
	if i < hi {
		emit(quantPackTail(buf, i, hi, tpos, dq))
	}
	r.trail = run
	r.mid = region[:w]
	return r
}

// quantPackRange quantizes full groups (plus a trailing partial group when
// hi is the end of the tensor) of buf[lo:hi] into their absolute group
// slots of out. Chunk boundaries are multiples of GroupSize, so only the
// global last chunk can hold a partial group.
//
//3lc:noalloc
func quantPackRange(buf []float32, lo, hi int, tpos float32, dq *dequantTab, out []byte) {
	g := lo / encode.GroupSize
	i := lo
	for ; i+encode.GroupSize <= hi; i, g = i+encode.GroupSize, g+1 {
		out[g] = quantPack5(buf, i, tpos, dq)
	}
	if i < hi {
		out[g] = quantPackTail(buf, i, hi, tpos, dq)
	}
}

// dequantTab precomputes the three possible dequantized values
// {−M, M·0, +M} so the hot loop replaces a convert+multiply per element
// with an index. The entries are built with the exact staged
// multiplications (M·float32(q)), so table lookup is bit-identical to the
// staged DequantizeInto — including M = ±Inf, where M·0 is NaN, not zero.
type dequantTab [3]float32

func makeDequantTab(m32 float32) dequantTab {
	return dequantTab{m32 * float32(-1), m32 * float32(0), m32 * float32(1)}
}

// ternaryThreshold precomputes the float32 decision threshold of the
// quantizer so the per-element work needs no float64 arithmetic at all.
//
// The staged reference quantizes v to +1 iff x = fl64(float64(v)·inv) >=
// 0.5 (see the quantOne history: round-half-away over the in-range
// product collapses to that comparison, with x <= −0.5 for −1). For a
// fixed inv > 0, x is a monotone non-decreasing function of v — float32
// to float64 conversion is exact and IEEE multiplication rounds
// monotonically — so there is a unique smallest float32 t with
// fl64(t·inv) >= 0.5, and for EVERY float32 v: v·inv >= 0.5 ⟺ v >= t.
// The negative side is exactly symmetric (negation is sign-exact under
// round-to-nearest: fl64(−v·inv) = −fl64(v·inv)), so x <= −0.5 ⟺
// v <= −t. The per-element quantizer therefore reduces to two float32
// comparisons against ±t, bit-identical to the staged float64 product
// for every input including NaN (all comparisons false → digit 0, like
// int8(NaN)).
//
// t is found by converting the real-valued crossing point 0.5/inv to
// float32 and walking ULPs (math.Nextafter32) to the exact boundary — at
// most a couple of steps, once per tensor per pass.
//
// Degenerate scales take the all-zeros digit everywhere in the staged
// pipeline — inv == 0 (M = +Inf: every finite product is ±0, and
// Inf·0 = NaN) and inv = NaN both make every comparison false — and are
// represented by t = NaN, which likewise fails every comparison. (m < 0
// cannot reach the encoder: it is a |max| reduction result.)
func ternaryThreshold(inv float64) float32 {
	if !(inv > 0) {
		return float32(math.NaN())
	}
	t := float32(0.5 / inv)
	if math.IsNaN(float64(t)) {
		t = float32(math.MaxFloat32)
	}
	for float64(t)*inv < 0.5 {
		t = math.Nextafter32(t, float32(math.Inf(1)))
	}
	for {
		p := math.Nextafter32(t, float32(math.Inf(-1)))
		if float64(p)*inv >= 0.5 {
			t = p
			continue
		}
		return t
	}
}

// quantOne quantizes one element in place and returns its shifted ternary
// digit (q+1 ∈ {0,1,2}), subtracting the locally dequantized value so *p
// is left holding the residual. tpos is the precomputed float32 decision
// threshold (ternaryThreshold): v >= tpos → +1, v <= −tpos → −1, else 0,
// bit-identical to the staged float64 round(v·inv) — without the
// per-element convert+multiply that dominated the fused encode pass.
//
// The two comparisons are written as independent ifs (the conditions are
// mutually exclusive: tpos > 0 or NaN) so the compiler emits conditional
// moves: under steady-state error feedback many elements hover around the
// ±M/2 thresholds, which makes an actual branch here mispredict heavily
// (measured ~3x slower).
func quantOne(p *float32, tpos float32, dq *dequantTab) int {
	v := *p
	q := 1
	if v >= tpos {
		q = 2
	}
	if v <= -tpos {
		q = 0
	}
	*p = v - dq[q]
	return q
}

// quantPack5 quantizes the full group buf[i:i+5] and packs it into one
// quartic byte (§3.2), updating the residuals in place.
func quantPack5(buf []float32, i int, tpos float32, dq *dequantTab) byte {
	g := buf[i : i+encode.GroupSize : i+encode.GroupSize]
	a := quantOne(&g[0], tpos, dq)
	b := quantOne(&g[1], tpos, dq)
	c := quantOne(&g[2], tpos, dq)
	d := quantOne(&g[3], tpos, dq)
	e := quantOne(&g[4], tpos, dq)
	return byte(a*81 + b*27 + c*9 + d*3 + e)
}

// quantPackTail packs the trailing partial group buf[i:n], zero-padding
// the missing digits exactly like the staged encoder.
func quantPackTail(buf []float32, i, n int, tpos float32, dq *dequantTab) byte {
	var digits [encode.GroupSize]int
	for k := range digits {
		digits[k] = 1 // ternary 0 after the +1 shift
	}
	for k := 0; i < n; k, i = k+1, i+1 {
		digits[k] = quantOne(&buf[i], tpos, dq)
	}
	return byte(digits[0]*81 + digits[1]*27 + digits[2]*9 + digits[3]*3 + digits[4])
}

// EncodeStoch is the fused stochastic-ternary encoder (the "Stoch 3-value
// + QE" baseline): one loop quantizes each element to sign(v) with
// probability |v|/m and packs the groups into quartic bytes appended to
// dst. RNG draws happen element by element in input order — exactly the
// staged quant.QuantizeStochastic3Into sequence — so wires are
// byte-identical. data is not modified (the stochastic scheme is unbiased
// and keeps no error state). m == 0 emits all-zero groups without
// consuming any RNG draws, like the staged quantizer.
func EncodeStoch(data []float32, m float64, rng *tensor.RNG, dst []byte) []byte {
	n := len(data)
	qlen := encode.QuarticEncodedLen(n)
	if m == 0 {
		return appendZeroGroups(dst, qlen)
	}
	notePass("stoch-quantize+pack", n)
	inv := 1 / m
	base := len(dst)
	dst = growCap(dst, qlen)
	out := dst[base : base+qlen]
	g := 0
	i := 0
	for ; i+encode.GroupSize <= n; i, g = i+encode.GroupSize, g+1 {
		a := stochDigit(data[i], inv, rng)
		b := stochDigit(data[i+1], inv, rng)
		c := stochDigit(data[i+2], inv, rng)
		d := stochDigit(data[i+3], inv, rng)
		e := stochDigit(data[i+4], inv, rng)
		out[g] = byte(a*81 + b*27 + c*9 + d*3 + e)
	}
	if i < n {
		var digits [encode.GroupSize]uint16
		for k := range digits {
			digits[k] = 1
		}
		for k := 0; i < n; k, i = k+1, i+1 {
			digits[k] = stochDigit(data[i], inv, rng)
		}
		out[g] = byte(digits[0]*81 + digits[1]*27 + digits[2]*9 + digits[3]*3 + digits[4])
	}
	return dst[:base+qlen]
}

// stochDigit draws one stochastic ternary digit: sign(v) with probability
// |v|/m, zero otherwise. One RNG draw per element, always — matching the
// staged quantizer's consumption order.
func stochDigit(v float32, inv float64, rng *tensor.RNG) uint16 {
	p := math.Abs(float64(v)) * inv
	if rng.Float64() < p {
		if v > 0 {
			return 2
		}
		return 0
	}
	return 1
}

// flushZeroRun emits the canonical zero-run encoding of a run of `run`
// zero-group bytes at out[w:], returning the advanced cursor: runs of
// 2..14 become one byte in [243, 255], longer runs chain greedily, and a
// lone zero group is copied literally — byte-for-byte the staged
// encode.ZeroRunEncodeAppend emission.
func flushZeroRun(out []byte, w, run int) int {
	for run >= 2 {
		k := run
		if k > encode.MaxRun {
			k = encode.MaxRun
		}
		out[w] = byte(encode.RunBase + k - 2)
		w++
		run -= k
	}
	if run == 1 {
		out[w] = encode.ZeroGroupByte
		w++
	}
	return w
}

// appendZeroRun appends the zero-run encoding of `groups` consecutive zero
// groups — the whole-tensor-is-zero fast path.
func appendZeroRun(dst []byte, groups int) []byte {
	// ceil(groups/MaxRun) run bytes, +1 for a possible trailing literal.
	dst = growCap(dst, groups/encode.MaxRun+2)
	w := len(dst)
	out := dst[w : w+groups/encode.MaxRun+2]
	return dst[:w+flushZeroRun(out, 0, groups)]
}

// appendZeroGroups appends `groups` literal zero-group bytes (the m == 0
// fast path without zero-run encoding).
func appendZeroGroups(dst []byte, groups int) []byte {
	dst = growCap(dst, groups)
	for i := 0; i < groups; i++ {
		dst = append(dst, encode.ZeroGroupByte)
	}
	return dst
}

// growCap ensures cap(dst)-len(dst) >= n without changing len, with 1/8
// headroom so buffers whose needed size fluctuates step to step converge
// to a stable capacity instead of reallocating at every new maximum.
func growCap(b []byte, n int) []byte {
	if cap(b)-len(b) < n {
		want := len(b) + n
		nb := make([]byte, len(b), want+want/8)
		copy(nb, b)
		return nb
	}
	return b
}
