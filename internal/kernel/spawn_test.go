package kernel

import (
	"sync/atomic"
	"testing"
)

// countSpawns runs fn with a counting SpawnHook installed and returns how
// many goroutines the kernel fan-outs spawned.
func countSpawns(t *testing.T, fn func()) int {
	t.Helper()
	var n atomic.Int64
	SpawnHook = func() { n.Add(1) }
	defer func() { SpawnHook = nil }()
	fn()
	return int(n.Load())
}

// TestForEachChunkSpawnCounts pins the caller-runs-last pool shape: a
// fan-out over k chunks spawns exactly k-1 goroutines (the caller runs the
// final chunk itself), and any input that collapses to a single chunk —
// small n, one worker, or fewer align-groups than workers — spawns none.
func TestForEachChunkSpawnCounts(t *testing.T) {
	cases := []struct {
		name               string
		n, align, workers  int
		wantUsed, wantGoro int
	}{
		{"serial", 100, 1, 1, 1, 0},
		{"four chunks", 100, 5, 4, 4, 3},
		{"smaller than one group", 3, 5, 8, 1, 0},
		{"fewer groups than workers", 10, 5, 8, 2, 1},
		{"empty", 0, 5, 8, 0, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var calls atomic.Int64
			var used int
			got := countSpawns(t, func() {
				used = forEachChunk(tc.n, tc.align, tc.workers, func(idx, lo, hi int) {
					calls.Add(1)
					if lo < 0 || hi > tc.n || lo >= hi {
						t.Errorf("bad span [%d,%d) for n=%d", lo, hi, tc.n)
					}
				})
			})
			if used != tc.wantUsed {
				t.Errorf("used = %d, want %d", used, tc.wantUsed)
			}
			if int(calls.Load()) != tc.wantUsed {
				t.Errorf("fn ran %d times, want %d", calls.Load(), tc.wantUsed)
			}
			if got != tc.wantGoro {
				t.Errorf("spawned %d goroutines, want %d", got, tc.wantGoro)
			}
		})
	}
}

// TestSmallTensorsSpawnNothing is the satellite regression test: a tensor
// below ParallelThresholdElems resolves to one worker via PassWorkers, and
// the full fused pipeline — parallel reduction, parallel encode, parallel
// decode-add — then runs entirely on the calling goroutine with zero
// spawns.
func TestSmallTensorsSpawnNothing(t *testing.T) {
	n := 1000 // << ParallelThresholdElems
	w := PassWorkers(n, 0, SpanReduce)
	if w != 1 {
		t.Fatalf("PassWorkers(%d) = %d, want 1", n, w)
	}
	buf := make([]float32, n)
	in := make([]float32, n)
	for i := range in {
		in[i] = float32(i%11) - 5
	}
	got := countSpawns(t, func() {
		m := float64(AccumulateMaxAbsParallel(buf, in, w)) * 1.0
		wire, _ := EncodeTernaryParallel(buf, m, true, nil, w, nil)
		dst := make([]float32, n)
		if err := DecodeTernaryAddParallel(
			[]TernaryWire{{Body: wire, ZRE: true, M: float32(m)}}, dst, w); err != nil {
			t.Fatal(err)
		}
	})
	if got != 0 {
		t.Fatalf("small-tensor pipeline spawned %d goroutines, want 0", got)
	}
}
