package kernel

import (
	"fmt"
	"os"

	"threelc/internal/encode"
	"threelc/internal/kernel/simd"
)

// CPU-feature-dispatched kernel registry.
//
// The three hot inner loops — the fused accumulate+|max| reduction, the
// ternary quantize→pack encode, and the LUT decode-add — exist in up to
// three implementations ("tiers"):
//
//	scalar  the portable loops in this package, the reference tier
//	vec     explicitly unrolled pure-Go cores (package simd): 8-chain
//	        reductions, 4-byte-unrolled LUT literal loops. Runs anywhere.
//	        The encode pass stays on the scalar core: the cmov-based
//	        scalar quantize loop is the fastest pure-Go formulation
//	        (every unrolled rewrite measured slower), so only asm
//	        accelerates encode.
//	asm     vec, plus AVX2 amd64 assembly for the byte-level
//	        quantize/pack and LUT-row loops. Requires AVX2.
//
// The tier is chosen once at init — asm when the CPU supports it, else
// vec — and can be pinned with THREELC_KERNEL=scalar|vec|asm (malformed
// or unavailable values fail fast with a panic, so CI legs can't silently
// test the wrong tier). Every tier produces byte-identical wires for
// every input, and float outputs bit-identical up to NaN payloads (see
// package simd); the fuzz oracles sweep all available tiers.
var (
	activeTier Tier

	// Dispatched cores. The scalar tier binds the loops defined in this
	// package; SetTier swaps them as a set so a tier is always coherent.
	accMaxCore   func(buf, in []float32) float32
	maxAbsCore   func(data []float32) float32
	addSpanCore  func(body []byte, tab *scaledTab, dst []float32, lo, hi, off, skip int)
	decodeCore   func(body []byte, zre bool, tab *scaledTab, gTotal int, dst []float32) error
	litsAddCore  func(tab *scaledTab, body []byte, dst []float32) int
	litsSetCore  func(tab *scaledTab, body []byte, dst []float32) int
	packBlocksFn func(buf []float32, out []byte, blocks int, tpos, dqNeg, dqZero, dqPos float32)
)

// scaledTab is the padded 256-row scaled LUT type shared with package
// simd; rows above encode.MaxQuartic are never decoded from (literal
// loops stop at run markers) and exist so 16-byte row loads stay in
// bounds.
type scaledTab = [256][encode.GroupSize]float32

// Tier identifies one kernel implementation tier.
type Tier int

const (
	TierScalar Tier = iota
	TierVec
	TierAsm
)

func (t Tier) String() string {
	switch t {
	case TierScalar:
		return "scalar"
	case TierVec:
		return "vec"
	case TierAsm:
		return "asm"
	}
	return fmt.Sprintf("Tier(%d)", int(t))
}

// kernelEnv is the environment variable that pins the kernel tier.
const kernelEnv = "THREELC_KERNEL"

// selectTier resolves the tier from the CPU feature report and the
// THREELC_KERNEL override ("" means auto). Split out from init so the
// cpuid-fallback paths are unit-testable on any machine.
func selectTier(f simd.Features, env string) (Tier, error) {
	asmOK := simd.HasAsm && f.AVX2
	switch env {
	case "":
		if asmOK {
			return TierAsm, nil
		}
		return TierVec, nil
	case "scalar":
		return TierScalar, nil
	case "vec":
		return TierVec, nil
	case "asm":
		if !asmOK {
			return 0, fmt.Errorf("kernel: %s=asm but CPU/build lacks AVX2 assembly support", kernelEnv)
		}
		return TierAsm, nil
	}
	return 0, fmt.Errorf("kernel: invalid %s=%q (want scalar, vec, or asm)", kernelEnv, env)
}

func init() {
	t, err := selectTier(simd.Detect(), os.Getenv(kernelEnv))
	if err != nil {
		panic(err)
	}
	SetTier(t)
}

// SetTier swaps every dispatched core to the given tier. It panics when
// the tier is unavailable on this CPU/build. It is not concurrency-safe:
// it exists for init and for tests/benchmarks that sweep tiers while no
// kernel call is in flight.
func SetTier(t Tier) {
	switch t {
	case TierScalar:
		accMaxCore = accMaxAbsRange
		maxAbsCore = maxAbsRange
		addSpanCore = addScaledSpan
		decodeCore = decodeScaled
		litsAddCore = nil
		litsSetCore = nil
		packBlocksFn = nil
	case TierVec:
		accMaxCore = simd.AccMaxAbs
		maxAbsCore = simd.MaxAbs
		addSpanCore = addScaledSpanVec
		decodeCore = decodeScaledVec
		litsAddCore = simd.AddScaledLiterals
		litsSetCore = simd.SetScaledLiterals
		packBlocksFn = nil
	case TierAsm:
		if !simd.HasAsm || !simd.Detect().AVX2 {
			panic("kernel: asm tier unavailable on this CPU/build")
		}
		accMaxCore = simd.AccMaxAbs
		maxAbsCore = simd.MaxAbs
		addSpanCore = addScaledSpanVec
		decodeCore = decodeScaledVec
		litsAddCore = simd.AddScaledLiteralsAsm
		litsSetCore = simd.SetScaledLiteralsAsm
		packBlocksFn = simd.QuantPackBlocks
	default:
		panic(fmt.Sprintf("kernel: unknown tier %v", t))
	}
	activeTier = t
}

// ActiveTier reports the currently dispatched tier.
func ActiveTier() Tier { return activeTier }

// AvailableTiers lists the tiers this CPU/build can run, in ascending
// order. Tests and benchmarks sweep it.
func AvailableTiers() []Tier {
	tiers := []Tier{TierScalar, TierVec}
	if simd.HasAsm && simd.Detect().AVX2 {
		tiers = append(tiers, TierAsm)
	}
	return tiers
}
