package kernel

import (
	"fmt"

	"threelc/internal/encode"
	"threelc/internal/kernel/simd"
)

// Vectorized-tier forms of the decode loops and the packed encode path.
// Each mirrors its scalar counterpart byte-for-byte on the wire and
// bit-for-bit on floats (up to NaN payloads, see package simd): the fast
// paths only regroup WHICH loop processes each wire byte, never the
// per-element operations or their order.

// addScaledSpanVec is the vec/asm-tier addScaledSpan: maximal stretches
// of literal bytes go through the dispatched unrolled literal core, runs
// through the unrolled fill, and only partial tail groups fall back to
// the per-element loop. Same contract as addScaledSpan.
func addScaledSpanVec(body []byte, tab *scaledTab, dst []float32, lo, hi, off, skip int) {
	zero := tab[encode.ZeroGroupByte][0] // m·0, NaN-propagating like the staged multiply
	lits := litsAddCore
	w := lo
	for w < hi {
		b := body[off]
		if b > encode.MaxQuartic {
			k := int(b) - encode.RunBase + 2 - skip
			skip = 0
			end := w + k*encode.GroupSize
			if end > hi {
				end = hi
			}
			simd.AddFill(dst[w:end], zero)
			w = end
			off++
			continue
		}
		skip = 0
		if lim := hi - w; lim >= encode.GroupSize {
			lim -= lim % encode.GroupSize
			nb := lits(tab, body[off:], dst[w:w+lim])
			if nb > 0 {
				off += nb
				w += nb * encode.GroupSize
				continue
			}
		}
		// Partial tail group (hi is the tensor end mid-group).
		row := &tab[b]
		for k := 0; w < hi; k, w = k+1, w+1 {
			dst[w] += row[k]
		}
		off++
	}
}

// decodeScaledVec is the vec/asm-tier decodeScaled: identical validation
// semantics, with literal stretches through the dispatched set-literal
// core and runs through the unrolled fill.
func decodeScaledVec(body []byte, zre bool, tab *scaledTab, gTotal int, dst []float32) error {
	n := len(dst)
	zero := tab[encode.ZeroGroupByte][0]
	lits := litsSetCore
	gi, w, off := 0, 0, 0
	for off < len(body) {
		b := body[off]
		if b > encode.MaxQuartic {
			if !zre {
				return fmt.Errorf("kernel: invalid quartic byte %d at offset %d", b, off)
			}
			k := int(b) - encode.RunBase + 2
			if gi+k > gTotal {
				return fmt.Errorf("kernel: zero run at offset %d expands past %d groups", off, gTotal)
			}
			gi += k
			end := w + k*encode.GroupSize
			if end > n {
				end = n
			}
			simd.SetFill(dst[w:end], zero)
			w = end
			off++
			continue
		}
		if gi >= gTotal {
			return fmt.Errorf("kernel: payload longer than %d groups", gTotal)
		}
		if lim := n - w; lim >= encode.GroupSize {
			lim -= lim % encode.GroupSize
			// Every byte the literal core consumes is a valid literal
			// producing one full in-bounds group, so the per-byte checks
			// above are preserved: lim/GroupSize never exceeds the groups
			// remaining to gTotal.
			nb := lits(tab, body[off:], dst[w:w+lim])
			if nb > 0 {
				off += nb
				gi += nb
				w += nb * encode.GroupSize
				continue
			}
		}
		gi++
		row := &tab[b]
		if w+encode.GroupSize <= n {
			dst[w] = row[0]
			dst[w+1] = row[1]
			dst[w+2] = row[2]
			dst[w+3] = row[3]
			dst[w+4] = row[4]
			w += encode.GroupSize
		} else {
			for k := 0; w < n; k, w = k+1, w+1 {
				dst[w] = row[k]
			}
		}
		off++
	}
	if gi != gTotal {
		return fmt.Errorf("kernel: payload expands to %d groups, want %d", gi, gTotal)
	}
	return nil
}

// packRangeFast quantizes buf[lo:hi] into out (indexed from out[0], one
// byte per group, absolute-slot layout with no zero-run encoding),
// routing whole 8-group blocks through the assembly core and the
// remainder through the scalar group loops. Residual updates are
// identical to the scalar path: the asm core performs the same compares
// against ±tpos and the same v - dq[q] subtraction per element.
func packRangeFast(buf []float32, lo, hi int, tpos float32, dq *dequantTab, out []byte) {
	g := 0
	if blocks := (hi - lo) / (8 * encode.GroupSize); blocks > 0 {
		packBlocksFn(buf[lo:hi], out, blocks, tpos, dq[0], dq[1], dq[2])
		lo += blocks * 8 * encode.GroupSize
		g = blocks * 8
	}
	i := lo
	for ; i+encode.GroupSize <= hi; i, g = i+encode.GroupSize, g+1 {
		out[g] = quantPack5(buf, i, tpos, dq)
	}
	if i < hi {
		out[g] = quantPackTail(buf, i, hi, tpos, dq)
	}
}

// quantPackRangeDispatch is quantPackRange (absolute group slots in the
// full output buffer) with the asm block core when dispatched.
func quantPackRangeDispatch(buf []float32, lo, hi int, tpos float32, dq *dequantTab, out []byte) {
	if packBlocksFn != nil {
		packRangeFast(buf, lo, hi, tpos, dq, out[lo/encode.GroupSize:])
		return
	}
	quantPackRange(buf, lo, hi, tpos, dq, out)
}

// zreCompact zero-run encodes a packed quartic byte stream in place,
// returning the compacted length. The write cursor never passes the read
// cursor (runs only ever shrink), and the emission — runs of 2..14 as one
// marker byte, chained greedily, lone zero groups literal — is exactly
// the serial encoder's flushZeroRun sequencing, so compacting a packed
// stream is byte-identical to encoding with inline ZRE.
func zreCompact(out []byte) int {
	w, run := 0, 0
	for _, b := range out {
		if b == encode.ZeroGroupByte {
			run++
			continue
		}
		w = flushZeroRun(out, w, run)
		run = 0
		out[w] = b
		w++
	}
	return flushZeroRun(out, w, run)
}

// compactChunk derives one chunk's parallel-encode contribution from its
// packed (absolute-slot) region: leading/trailing zero-group counts for
// the cross-chunk stitch-up, and the in-place zero-run compacted middle.
// Matches encodeTernaryChunk's reporting exactly.
func compactChunk(region []byte) ternChunk {
	lead := 0
	for lead < len(region) && region[lead] == encode.ZeroGroupByte {
		lead++
	}
	if lead == len(region) {
		return ternChunk{lead: lead, allZero: true}
	}
	trail := 0
	for region[len(region)-1-trail] == encode.ZeroGroupByte {
		trail++
	}
	mid := region[lead : len(region)-trail]
	return ternChunk{lead: lead, trail: trail, mid: mid[:zreCompact(mid)]}
}

// encodeTernaryChunkFast is the asm-tier encodeTernaryChunk: pack the
// chunk to absolute slots, then compact.
func encodeTernaryChunkFast(buf []float32, lo, hi int, tpos float32, dq *dequantTab, region []byte) ternChunk {
	packRangeFast(buf, lo, hi, tpos, dq, region)
	return compactChunk(region)
}
