package kernel

import (
	"testing"

	"threelc/internal/kernel/simd"
)

// TestSelectTier pins the init-time tier resolution: the auto choice
// follows the CPU feature report, explicit pins always win, and
// unavailable or malformed pins fail fast instead of silently running a
// different tier.
func TestSelectTier(t *testing.T) {
	avx2 := simd.Features{AVX2: true}
	noAVX2 := simd.Features{}
	cases := []struct {
		name    string
		f       simd.Features
		env     string
		want    Tier
		wantErr bool
	}{
		{"auto picks asm on AVX2", avx2, "", TierAsm, false},
		{"auto falls back to vec without AVX2", noAVX2, "", TierVec, false},
		{"scalar pin on AVX2", avx2, "scalar", TierScalar, false},
		{"scalar pin without AVX2", noAVX2, "scalar", TierScalar, false},
		{"vec pin without AVX2", noAVX2, "vec", TierVec, false},
		{"asm pin on AVX2", avx2, "asm", TierAsm, false},
		{"asm pin without AVX2 errors", noAVX2, "asm", 0, true},
		{"malformed pin errors", avx2, "avx512", 0, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if !simd.HasAsm && (tc.want == TierAsm || tc.env == "asm") {
				t.Skip("build has no assembly tier")
			}
			got, err := selectTier(tc.f, tc.env)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("selectTier(%+v, %q) = %v, want error", tc.f, tc.env, got)
				}
				return
			}
			if err != nil {
				t.Fatalf("selectTier(%+v, %q): %v", tc.f, tc.env, err)
			}
			if got != tc.want {
				t.Fatalf("selectTier(%+v, %q) = %v, want %v", tc.f, tc.env, got, tc.want)
			}
		})
	}
}

// TestSetTierRoundTrip sweeps every available tier and checks the
// dispatched cores stay a coherent set (ActiveTier reports what SetTier
// installed, and a kernel smoke call works on each tier).
func TestSetTierRoundTrip(t *testing.T) {
	orig := ActiveTier()
	defer SetTier(orig)
	buf := make([]float32, 100)
	in := make([]float32, 100)
	for i := range in {
		in[i] = float32(i) - 50
	}
	for _, tier := range AvailableTiers() {
		SetTier(tier)
		if ActiveTier() != tier {
			t.Fatalf("ActiveTier() = %v after SetTier(%v)", ActiveTier(), tier)
		}
		for i := range buf {
			buf[i] = 0
		}
		if m := AccumulateMaxAbs(buf, in); m != 50 {
			t.Fatalf("tier %v: AccumulateMaxAbs = %v, want 50", tier, m)
		}
	}
}
