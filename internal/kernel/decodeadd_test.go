package kernel

import (
	"math"
	"testing"

	"threelc/internal/quant"
	"threelc/internal/tensor"
)

// mkTernaryWire builds a valid ternary wire body (and its scale) from a
// fresh error accumulator over random data, exercising real zero-run
// structure.
func mkTernaryWire(seed uint64, n int, std, sparsity float64, zre bool) (body []byte, m float32) {
	in := tensor.New(n)
	fillRand(in, seed, std)
	buf := make([]float32, n)
	mm := float64(AccumulateMaxAbs(buf, in.Data())) * sparsity
	return EncodeTernary(buf, mm, zre, nil), float32(mm)
}

// stagedDecodeAdd is the reference composition: fused decode into scratch,
// then an element-wise add.
func stagedDecodeAdd(t *testing.T, body []byte, zre bool, m float32, dst []float32) {
	t.Helper()
	tmp := make([]float32, len(dst))
	if err := DecodeTernary(body, zre, m, tmp); err != nil {
		t.Fatal(err)
	}
	for i, v := range tmp {
		dst[i] += v
	}
}

// TestDecodeTernaryAddMatchesStaged pins the fused decode-accumulate
// against decode-then-add bit for bit, across sizes on both sides of the
// ScaledLUT threshold, both ZRE settings, and repeated accumulation.
func TestDecodeTernaryAddMatchesStaged(t *testing.T) {
	for _, n := range []int{1, 7, 640, 1003, scaledLUTMinElems + 13, 1 << 16} {
		for _, zre := range []bool{true, false} {
			body, m := mkTernaryWire(uint64(n), n, 0.01, 1.75, zre)
			want := make([]float32, n)
			got := make([]float32, n)
			fillRand(tensor.FromSlice(want, n), 99, 0.5)
			copy(got, want)
			for step := 0; step < 3; step++ {
				stagedDecodeAdd(t, body, zre, m, want)
				if err := DecodeTernaryAdd(body, zre, m, got); err != nil {
					t.Fatalf("n=%d zre=%v: %v", n, zre, err)
				}
			}
			if i, ok := bitsEqual(got, want); !ok {
				t.Fatalf("n=%d zre=%v: fused add differs at %d: %x vs %x",
					n, zre, i, math.Float32bits(got[i]), math.Float32bits(want[i]))
			}
		}
	}
}

// TestDecodeTernaryAddNonFinite covers non-finite scales: the additions
// must propagate NaN/Inf exactly like the staged composition.
func TestDecodeTernaryAddNonFinite(t *testing.T) {
	const n = 5000
	body, _ := mkTernaryWire(5, n, 0.01, 1.5, true)
	for _, m := range []float32{
		float32(math.NaN()), float32(math.Inf(1)), float32(math.Inf(-1)), -2.5, 0,
	} {
		want := make([]float32, n)
		got := make([]float32, n)
		fillRand(tensor.FromSlice(want, n), 7, 1)
		copy(got, want)
		stagedDecodeAdd(t, body, true, m, want)
		if err := DecodeTernaryAdd(body, true, m, got); err != nil {
			t.Fatal(err)
		}
		if i, ok := bitsEqual(got, want); !ok {
			t.Fatalf("m=%v: differs at %d: %x vs %x", m, i,
				math.Float32bits(got[i]), math.Float32bits(want[i]))
		}
	}
}

// TestDecodeTernaryAddParallelMatchesSerial pins the range-partitioned
// multi-payload form against serial payload-by-payload accumulation for
// several worker counts, payload counts, and tail shapes.
func TestDecodeTernaryAddParallelMatchesSerial(t *testing.T) {
	for _, n := range []int{scaledLUTMinElems + 2, 1<<16 + 3, 1 << 17} {
		for _, payloads := range []int{1, 3, 5} {
			wires := make([]TernaryWire, payloads)
			for p := range wires {
				std := 0.002 * float64(p+1) // vary zero-run density per payload
				body, m := mkTernaryWire(uint64(3*n+p), n, std, 1.75, true)
				wires[p] = TernaryWire{Body: body, ZRE: true, M: m}
			}
			want := make([]float32, n)
			for p := range wires {
				if err := DecodeTernaryAdd(wires[p].Body, wires[p].ZRE, wires[p].M, want); err != nil {
					t.Fatal(err)
				}
			}
			for _, workers := range []int{1, 2, 3, 8} {
				got := make([]float32, n)
				if err := DecodeTernaryAddParallel(wires, got, workers); err != nil {
					t.Fatalf("n=%d payloads=%d workers=%d: %v", n, payloads, workers, err)
				}
				if i, ok := bitsEqual(got, want); !ok {
					t.Fatalf("n=%d payloads=%d workers=%d: differs at %d",
						n, payloads, workers, i)
				}
			}
		}
	}
}

// TestDecodeTernaryAddScaled pins the scale-into variant against the
// decode-then-AXPY composition.
func TestDecodeTernaryAddScaled(t *testing.T) {
	for _, n := range []int{640, 1 << 13} {
		body, m := mkTernaryWire(uint64(n)+17, n, 0.01, 1.75, true)
		for _, alpha := range []float32{0.25, 1.0 / 3.0, -1, float32(math.NaN())} {
			tmp := make([]float32, n)
			if err := DecodeTernary(body, true, m, tmp); err != nil {
				t.Fatal(err)
			}
			want := make([]float32, n)
			got := make([]float32, n)
			fillRand(tensor.FromSlice(want, n), 3, 1)
			copy(got, want)
			for i := range want {
				want[i] += alpha * tmp[i]
			}
			if err := DecodeTernaryAddScaled(body, true, m, alpha, got); err != nil {
				t.Fatal(err)
			}
			if i, ok := bitsEqual(got, want); !ok {
				t.Fatalf("n=%d alpha=%v: differs at %d", n, alpha, i)
			}
		}
	}
}

// TestDecodeTernaryAddRejectsMalformed feeds the malformed shapes the
// scan must catch and asserts the accumulator is never touched — the
// decode-ADD contract is stronger than decode-into's "unspecified on
// error".
func TestDecodeTernaryAddRejectsMalformed(t *testing.T) {
	const n = 640 // 128 groups
	valid, m := mkTernaryWire(2, n, 0.01, 1.75, true)
	cases := []struct {
		name string
		body []byte
		zre  bool
	}{
		{"truncated", valid[:len(valid)-1], true},
		{"overlong", append(append([]byte{}, valid...), 121), true},
		{"run overrun", append(append([]byte{}, valid...), 255), true},
		{"run byte without zre", []byte{243}, false},
		{"short quartic", make([]byte, 127), false},
		{"long quartic", make([]byte, 129), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			acc := make([]float32, n)
			fillRand(tensor.FromSlice(acc, n), 11, 1)
			snap := append([]float32(nil), acc...)
			if err := DecodeTernaryAdd(tc.body, tc.zre, m, acc); err == nil {
				t.Fatal("malformed payload accepted")
			}
			if i, ok := bitsEqual(acc, snap); !ok {
				t.Fatalf("accumulator corrupted at %d by rejected payload", i)
			}
			wires := []TernaryWire{{Body: valid, ZRE: true, M: m}, {Body: tc.body, ZRE: tc.zre, M: m}}
			if err := DecodeTernaryAddParallel(wires, acc, 4); err == nil {
				t.Fatal("parallel: malformed payload accepted")
			}
			if i, ok := bitsEqual(acc, snap); !ok {
				t.Fatalf("parallel: accumulator corrupted at %d (valid payload must not be applied when a later one is rejected)", i)
			}
		})
	}
}

// TestDecodeAddPassCount extends the pass-count invariant to aggregation:
// fused decode+add is exactly ONE sweep of tensor memory per payload (the
// validation pre-scan walks wire bytes only), serial, parallel, and
// scaled forms alike.
func TestDecodeAddPassCount(t *testing.T) {
	var passes []string
	PassHook = func(name string, elems int) { passes = append(passes, name) }
	defer func() { PassHook = nil }()

	const n = scaledLUTMinElems * 4
	body, m := mkTernaryWire(9, n, 0.01, 1.75, true)
	dst := make([]float32, n)

	passes = nil
	if err := DecodeTernaryAdd(body, true, m, dst); err != nil {
		t.Fatal(err)
	}
	if len(passes) != 1 || passes[0] != "lut-decode-add" {
		t.Fatalf("serial decode-add made passes %v, want exactly [lut-decode-add]", passes)
	}

	passes = nil
	wires := []TernaryWire{{Body: body, ZRE: true, M: m}, {Body: body, ZRE: true, M: m}, {Body: body, ZRE: true, M: m}}
	if err := DecodeTernaryAddParallel(wires, dst, 4); err != nil {
		t.Fatal(err)
	}
	if len(passes) != len(wires) {
		t.Fatalf("parallel decode-add of %d payloads made %d passes, want one per payload", len(wires), len(passes))
	}

	passes = nil
	if err := DecodeTernaryAddScaled(body, true, m, 0.5, dst); err != nil {
		t.Fatal(err)
	}
	if len(passes) != 1 {
		t.Fatalf("scaled decode-add made %d passes, want 1", len(passes))
	}
}

// TestEncodeInt8MatchesStaged pins the fused int8 quantize-to-wire kernel
// against the staged quantize-into-scratch + byte-copy reference, serial
// and chunked.
func TestEncodeInt8MatchesStaged(t *testing.T) {
	for _, n := range []int{1, 6, 1003, 1 << 16} {
		in := tensor.New(n)
		fillRand(in, uint64(n)+41, 0.01)
		var q quant.Int8Quantized
		quant.QuantizeInt8Into(in, &q)
		want := make([]byte, n)
		for i, v := range q.Q {
			want[i] = byte(v)
		}
		m := float64(in.MaxAbs())
		got := EncodeInt8(in.Data(), m, nil)
		if string(got) != string(want) {
			t.Fatalf("n=%d: serial fused int8 bytes differ from staged", n)
		}
		for _, workers := range []int{2, 3, 16} {
			got := EncodeInt8Parallel(in.Data(), m, nil, workers)
			if string(got) != string(want) {
				t.Fatalf("n=%d workers=%d: parallel fused int8 bytes differ", n, workers)
			}
		}
	}
	// m == 0 emits all zero bytes, like the staged zero fill.
	zero := EncodeInt8(make([]float32, 9), 0, nil)
	for i, b := range zero {
		if b != 0 {
			t.Fatalf("m=0 byte %d = %d, want 0", i, b)
		}
	}
}

// TestSpanBounds sanity-checks the shared boundary computation.
func TestSpanBounds(t *testing.T) {
	for _, tc := range []struct{ n, align, workers int }{
		{0, 5, 4}, {1, 5, 4}, {23, 5, 4}, {100, 5, 3}, {1 << 16, 5, 7}, {1 << 16, 1, 16},
	} {
		b := spanBounds(tc.n, tc.align, tc.workers)
		if b[0] != 0 || b[len(b)-1] != tc.n {
			t.Fatalf("%+v: bounds %v do not cover [0, n)", tc, b)
		}
		for i := 1; i < len(b); i++ {
			if b[i] < b[i-1] {
				t.Fatalf("%+v: bounds %v not monotonic", tc, b)
			}
			if i < len(b)-1 && b[i]%tc.align != 0 {
				t.Fatalf("%+v: interior bound %d not aligned", tc, b[i])
			}
		}
		if len(b)-1 > tc.workers && tc.n > 0 {
			t.Fatalf("%+v: %d spans exceed worker budget", tc, len(b)-1)
		}
	}
}
