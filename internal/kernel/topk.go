package kernel

// Fused top-k sparsification kernel. The staged baseline runs three full
// sweeps after the accumulate: select (bitmap + value gather), reconstruct
// the dense transmission into a scratch tensor, and the residual subtract.
// SparsifyResidual collapses them into one pass with no scratch tensor, so
// with AddParallel as pass 1 the whole sparsifying compress side touches
// tensor memory exactly twice.
//
// The pass is serial by contract: selected values are emitted into the
// wire in element-index order, so a chunked form would need either a
// counting pre-pass or a gather post-pass — an extra sweep either way,
// which defeats the fusion for a codec whose select loop is already
// memory-bound.

// SparsifyResidual runs the fused select/emit/residual pass over buf:
// every element with |v| >= thr and v != 0 is selected — its bit set in
// mask (little-endian within each byte, the encode.Bitmap layout), its
// value appended to vals, and buf[i] replaced by v - v, the residual of
// transmitting v (NaN for selected infinities, exactly like the staged
// reconstruct-then-subtract). Unselected elements are left untouched:
// the staged pass computes v -= 0 for them, and IEEE subtraction of +0
// is bitwise identity for every float32 including -0 and NaN, so skipping
// the store is bit-identical. mask must hold (len(buf)+7)/8 zeroed bytes.
// The appended vals slice is returned.
func SparsifyResidual(buf []float32, thr float32, mask []byte, vals []float32) []float32 {
	notePass("sparsify+residual", len(buf))
	for i, v := range buf {
		a := v
		if a < 0 {
			a = -a
		}
		if a >= thr && v != 0 {
			mask[i>>3] |= 1 << (uint(i) & 7)
			vals = append(vals, v)
			buf[i] = v - v
		}
	}
	return vals
}
