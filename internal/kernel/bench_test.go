package kernel

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"threelc/internal/encode"
	"threelc/internal/quant"
	"threelc/internal/tensor"
)

// Steady-state fused-kernel benchmarks. Run with -benchmem: the serial
// fused kernels must report 0 allocs/op (cmd/benchcheck enforces this in
// CI under -cpu 1,4); the *Parallel variants spawn goroutines by design
// and sit outside the zero-alloc gate.

func benchSizes() []int { return []int{1 << 14, 1 << 17, 1 << 20} }

func sizeName(n int) string {
	if n >= 1<<20 {
		return fmt.Sprintf("%dM", n>>20)
	}
	return fmt.Sprintf("%dk", n>>10)
}

// BenchmarkFusedCompress measures the two-pass fused compress side
// (AccumulateMaxAbs + EncodeTernary) with recycled buffers.
func BenchmarkFusedCompress(b *testing.B) {
	for _, n := range benchSizes() {
		b.Run(sizeName(n), func(b *testing.B) {
			in := tensor.New(n)
			fillRand(in, 1, 0.01)
			buf := make([]float32, n)
			var wire []byte
			for i := 0; i < 2; i++ { // converge wire capacity
				m := float64(AccumulateMaxAbs(buf, in.Data())) * 1.75
				wire = EncodeTernary(buf, m, true, wire[:0])
			}
			b.SetBytes(4 * int64(n))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m := float64(AccumulateMaxAbs(buf, in.Data())) * 1.75
				wire = EncodeTernary(buf, m, true, wire[:0])
			}
		})
	}
}

// BenchmarkStagedCompress is the same workload through the staged
// seven-sweep reference pipeline with preallocated scratch — the
// comparison baseline for the fusion speedup (benchcheck gates
// FusedCompress against this).
func BenchmarkStagedCompress(b *testing.B) {
	for _, n := range benchSizes() {
		b.Run(sizeName(n), func(b *testing.B) {
			in := tensor.New(n)
			fillRand(in, 1, 0.01)
			acc := tensor.New(n)
			deq := tensor.New(n)
			var tv quant.ThreeValue
			qbuf := make([]byte, encode.QuarticEncodedLen(n))
			var wire []byte
			b.SetBytes(4 * int64(n))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				acc.Add(in)
				quant.Quantize3Into(acc, 1.75, &tv)
				quant.DequantizeInto(&tv, deq)
				acc.Sub(deq)
				encode.QuarticEncodeInto(tv.Q, qbuf)
				wire = encode.ZeroRunEncodeAppend(wire[:0], qbuf)
			}
		})
	}
}

// BenchmarkFusedDecompress measures the single-pass LUT decode.
func BenchmarkFusedDecompress(b *testing.B) {
	for _, n := range benchSizes() {
		b.Run(sizeName(n), func(b *testing.B) {
			buf := make([]float32, n)
			in := tensor.New(n)
			fillRand(in, 2, 0.01)
			m := float64(AccumulateMaxAbs(buf, in.Data())) * 1.75
			wire := EncodeTernary(buf, m, true, nil)
			dst := make([]float32, n)
			// Warm up the ScaledLUT pool so the measured loop is the true
			// steady state (first Get allocates the pooled table once).
			if err := DecodeTernary(wire, true, float32(m), dst); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(4 * int64(n))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := DecodeTernary(wire, true, float32(m), dst); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStagedDecompress is the staged decode baseline: zero-run
// expansion into scratch, then scaled quartic decode.
func BenchmarkStagedDecompress(b *testing.B) {
	for _, n := range benchSizes() {
		b.Run(sizeName(n), func(b *testing.B) {
			buf := make([]float32, n)
			in := tensor.New(n)
			fillRand(in, 2, 0.01)
			m := float64(AccumulateMaxAbs(buf, in.Data())) * 1.75
			wire := EncodeTernary(buf, m, true, nil)
			scratch := make([]byte, encode.QuarticEncodedLen(n))
			dst := make([]float32, n)
			b.SetBytes(4 * int64(n))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				encode.ZeroRunDecodeInto(wire, scratch)
				if err := encode.QuarticDecodeScaledInto(scratch, dst, float32(m)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDecodeAdd measures the fused decode-accumulate: one LUT-driven
// pass that streams wire bytes and adds M·q directly into the aggregation
// buffer (the server-side AddPush hot path). Serial — must be 0 allocs/op
// under -benchmem; benchcheck gates it against BenchmarkDecodeThenAdd.
func BenchmarkDecodeAdd(b *testing.B) {
	for _, n := range benchSizes() {
		b.Run(sizeName(n), func(b *testing.B) {
			buf := make([]float32, n)
			in := tensor.New(n)
			fillRand(in, 2, 0.01)
			m := float64(AccumulateMaxAbs(buf, in.Data())) * 1.75
			wire := EncodeTernary(buf, m, true, nil)
			acc := make([]float32, n)
			if err := DecodeTernaryAdd(wire, true, float32(m), acc); err != nil {
				b.Fatal(err) // also warms the ScaledLUT pool
			}
			b.SetBytes(4 * int64(n))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := DecodeTernaryAdd(wire, true, float32(m), acc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDecodeThenAdd is the staged aggregation baseline the fusion
// replaces: fused decode into a scratch tensor, then a separate add sweep
// into the accumulator — two passes of tensor-scale memory per payload.
func BenchmarkDecodeThenAdd(b *testing.B) {
	for _, n := range benchSizes() {
		b.Run(sizeName(n), func(b *testing.B) {
			buf := make([]float32, n)
			in := tensor.New(n)
			fillRand(in, 2, 0.01)
			m := float64(AccumulateMaxAbs(buf, in.Data())) * 1.75
			wire := EncodeTernary(buf, m, true, nil)
			scratch := make([]float32, n)
			acc := make([]float32, n)
			if err := DecodeTernary(wire, true, float32(m), scratch); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(4 * int64(n))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := DecodeTernary(wire, true, float32(m), scratch); err != nil {
					b.Fatal(err)
				}
				for j, v := range scratch {
					acc[j] += v
				}
			}
		})
	}
}

// BenchmarkDecodeAddParallel measures the range-partitioned multi-payload
// aggregation: 4 workers' payloads accumulated into one buffer across the
// machine's cores (goroutine spawns allocate; outside the zero-alloc
// gate by name).
func BenchmarkDecodeAddParallel(b *testing.B) {
	const n = 1 << 20
	const payloads = 4
	workers := runtime.GOMAXPROCS(0)
	wires := make([]TernaryWire, payloads)
	for p := range wires {
		buf := make([]float32, n)
		in := tensor.New(n)
		fillRand(in, uint64(p)+2, 0.01)
		m := float64(AccumulateMaxAbs(buf, in.Data())) * 1.75
		wires[p] = TernaryWire{Body: EncodeTernary(buf, m, true, nil), ZRE: true, M: float32(m)}
	}
	acc := make([]float32, n)
	b.SetBytes(4 * int64(n) * payloads)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := DecodeTernaryAddParallel(wires, acc, workers); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFusedCompressParallel measures the chunked-parallel fused
// encode at 1M elements across the machine's cores (goroutine spawns
// allocate; excluded from the zero-alloc gate by name).
func BenchmarkFusedCompressParallel(b *testing.B) {
	const n = 1 << 20
	workers := runtime.GOMAXPROCS(0)
	in := tensor.New(n)
	fillRand(in, 1, 0.01)
	buf := make([]float32, n)
	var wire, scratch []byte
	b.SetBytes(4 * int64(n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := float64(AccumulateMaxAbsParallel(buf, in.Data(), workers)) * 1.75
		wire, scratch = EncodeTernaryParallel(buf, m, true, wire[:0], workers, scratch)
	}
}

// TestFusedFasterThanStaged asserts the point of the whole exercise: the
// fused two-pass compress beats the staged seven-sweep pipeline on the
// same data. The margin is left loose (1.2x serial) so slow CI machines
// do not flake; local hardware typically shows well above that.
func TestFusedFasterThanStaged(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	const n = 1 << 20
	in := tensor.New(n)
	fillRand(in, 1, 0.01)

	stagedNs := benchNs(3, func() {
		acc := tensor.New(n)
		deq := tensor.New(n)
		var tv quant.ThreeValue
		qbuf := make([]byte, encode.QuarticEncodedLen(n))
		var wire []byte
		for i := 0; i < 3; i++ {
			acc.Add(in)
			quant.Quantize3Into(acc, 1.75, &tv)
			quant.DequantizeInto(&tv, deq)
			acc.Sub(deq)
			encode.QuarticEncodeInto(tv.Q, qbuf)
			wire = encode.ZeroRunEncodeAppend(wire[:0], qbuf)
		}
	})
	fusedNs := benchNs(3, func() {
		buf := make([]float32, n)
		var wire []byte
		for i := 0; i < 3; i++ {
			m := float64(AccumulateMaxAbs(buf, in.Data())) * 1.75
			wire = EncodeTernary(buf, m, true, wire[:0])
		}
	})
	ratio := float64(stagedNs) / float64(fusedNs)
	t.Logf("staged %d ns, fused %d ns: %.2fx", stagedNs, fusedNs, ratio)
	if ratio < 1.2 {
		t.Errorf("fused compress only %.2fx over staged, want >= 1.2x", ratio)
	}
}

func benchNs(trials int, fn func()) int64 {
	fn() // warm up
	best := int64(1<<63 - 1)
	for i := 0; i < trials; i++ {
		start := time.Now()
		fn()
		if d := time.Since(start).Nanoseconds(); d < best {
			best = d
		}
	}
	return best
}
