package kernel

// Fused MQE 1-bit kernels. The staged baseline (quant.QuantizeOneBitInto
// plus ErrorAccumulator and DequantizeOneBitInto) sweeps tensor memory
// four times per step: accumulate, quantize (bit-pack + partition sums),
// dequantize into scratch, residual subtract. The two kernels here fuse
// the sweeps pairwise so the whole compress side touches tensor memory
// exactly twice, matching the ternary pipeline's shape:
//
//	pass 1  AccumulateSignStats    buf += in fused with the sign bit-pack
//	                               and the two partition sums
//	pass 2  OneBitResidualParallel buf[i] -= (bit ? mPos : mNeg), the
//	                               dequantize+residual fused and chunked
//
// Pass 1 is serial by contract: the partition means are float64 sums taken
// in element-index order, and float64 addition is not associative, so any
// chunked reordering would change the transmitted MPos/MNeg bits. Pass 2
// is element-wise independent and parallelizes like the int8 encode.

// AccumulateSignStats is the fused 1-bit compress pass 1: buf += in, the
// sign bit of each updated element packed into bits (bit=1 for v >= 0,
// little-endian within each byte), and the two partition sums accumulated
// in element order. bits must hold (len(buf)+7)/8 bytes; it is cleared
// first. The per-element operations and their order are exactly the
// staged accumulate-then-QuantizeOneBitInto sequence, so bits, both sums,
// and the residual state are bit-identical to the staged composition.
func AccumulateSignStats(buf, in []float32, bits []byte) (mPos, mNeg float32) {
	if len(buf) != len(in) {
		panic("kernel: AccumulateSignStats length mismatch")
	}
	for i := range bits {
		bits[i] = 0
	}
	notePass("accumulate+signstats", len(buf))
	var sumPos, sumNeg float64
	var nPos, nNeg int
	buf = buf[:len(in)]
	for i, v := range in {
		s := buf[i] + v
		buf[i] = s
		if s >= 0 {
			bits[i>>3] |= 1 << (uint(i) & 7)
			sumPos += float64(s)
			nPos++
		} else {
			sumNeg += float64(s)
			nNeg++
		}
	}
	if nPos > 0 {
		mPos = float32(sumPos / float64(nPos))
	}
	if nNeg > 0 {
		mNeg = float32(sumNeg / float64(nNeg))
	}
	return mPos, mNeg
}

// OneBitResidualParallel is the fused 1-bit compress pass 2: for every
// element, buf[i] -= mPos when its transmitted bit is set, mNeg otherwise
// — the staged dequantize-into-scratch followed by the residual subtract,
// without the scratch tensor. Element-wise independent, so chunks (byte-
// aligned in the bit buffer) produce bit-identical residuals for any
// worker count. workers <= 1 runs serially.
func OneBitResidualParallel(buf []float32, bits []byte, mPos, mNeg float32, workers int) {
	notePass("onebit-residual", len(buf))
	if workers <= 1 {
		oneBitResidualRange(buf, bits, mPos, mNeg, 0, len(buf))
		return
	}
	forEachChunk(len(buf), 8, workers, func(_, lo, hi int) {
		oneBitResidualRange(buf, bits, mPos, mNeg, lo, hi)
	})
}

func oneBitResidualRange(buf []float32, bits []byte, mPos, mNeg float32, lo, hi int) {
	for i := lo; i < hi; i++ {
		if bits[i>>3]&(1<<(uint(i)&7)) != 0 {
			buf[i] -= mPos
		} else {
			buf[i] -= mNeg
		}
	}
}

// AddParallel is the plain chunked accumulate buf += in, for codecs whose
// quantization statistics cannot fuse with the accumulation sweep (the
// top-k sparsifier estimates its threshold from a sample, not a
// reduction). Element-wise independent and bit-identical for any worker
// count.
func AddParallel(buf, in []float32, workers int) {
	if len(buf) != len(in) {
		panic("kernel: AddParallel length mismatch")
	}
	notePass("accumulate", len(buf))
	if workers <= 1 {
		addRange(buf, in, 0, len(buf))
		return
	}
	forEachChunk(len(buf), 1, workers, func(_, lo, hi int) {
		addRange(buf, in, lo, hi)
	})
}

func addRange(buf, in []float32, lo, hi int) {
	b := buf[lo:hi]
	v := in[lo:hi]
	b = b[:len(v)]
	for i := range v {
		b[i] += v[i]
	}
}
