package kernel

import (
	"fmt"
	"sync"

	"threelc/internal/encode"
)

// Fused decode-accumulate kernels.
//
// Server-side gradient aggregation is decode-bound: for every worker's
// push the staged path decodes the ternary wire into a scratch tensor
// (one full write sweep) and then adds the scratch into the aggregation
// buffer (another read+read/write sweep). The kernels here collapse the
// two into a single LUT-driven pass that streams wire bytes and
// accumulates dst[i] += M·q_i directly into the aggregation buffer — no
// intermediate float tensor exists, and per payload the aggregate side
// touches tensor memory exactly once.
//
// Unlike DecodeTernary, whose destination is unspecified on error, the
// decode-ADD kernels mutate live aggregation state, so a malformed
// payload must not corrupt the sum: every payload is fully validated by a
// wire-byte scan (a few percent of tensor size; not a tensor-memory pass)
// before the first element of dst is touched. On error dst is unchanged.

// scanTernaryBody validates a ternary wire body against the group count a
// destination of gTotal groups requires, touching only the wire bytes:
// every byte must be legal and the payload must expand to exactly gTotal
// quartic groups.
//
//3lc:noalloc
//3lc:decode
func scanTernaryBody(body []byte, zre bool, gTotal int) error {
	if !zre {
		if len(body) != gTotal {
			return fmt.Errorf("kernel: quartic payload %d bytes, want %d", len(body), gTotal)
		}
		for off, b := range body {
			if b > encode.MaxQuartic {
				return fmt.Errorf("kernel: invalid quartic byte %d at offset %d", b, off)
			}
		}
		return nil
	}
	gi := 0
	for off, b := range body {
		if b > encode.MaxQuartic {
			k := int(b) - encode.RunBase + 2
			if gi+k > gTotal {
				return fmt.Errorf("kernel: zero run at offset %d expands past %d groups", off, gTotal)
			}
			gi += k
			continue
		}
		if gi >= gTotal {
			return fmt.Errorf("kernel: payload longer than %d groups", gTotal)
		}
		gi++
	}
	if gi != gTotal {
		return fmt.Errorf("kernel: payload expands to %d groups, want %d", gi, gTotal)
	}
	return nil
}

// DecodeTernaryAdd decodes a ternary wire body — quartic bytes, zero-run
// encoded when zre is set — and accumulates it into dst in a single fused
// pass: dst[i] += m·q_i. The additions are the exact float32 operations
// the staged composition (DecodeTernary into scratch, then dst += scratch)
// performs element by element, so the resulting sums are bit-identical to
// the staged decode-then-add for any payload, including non-finite scales.
// The payload is validated before accumulation begins; on error dst is
// unchanged.
//
//3lc:noalloc
//3lc:decode
func DecodeTernaryAdd(body []byte, zre bool, m float32, dst []float32) error {
	if err := scanTernaryBody(body, zre, encode.QuarticEncodedLen(len(dst))); err != nil {
		return err
	}
	notePass("lut-decode-add", len(dst))
	addValidated(body, m, dst)
	return nil
}

// addValidated runs the fused accumulate pass over an already-validated
// payload, choosing the ScaledLUT or inline-multiply form by size exactly
// like DecodeTernary.
func addValidated(body []byte, m float32, dst []float32) {
	if len(dst) >= scaledLUTMinElems {
		l := lutPool.Get().(*ScaledLUT)
		l.Build(m)
		addSpanCore(body, &l.tab, dst, 0, len(dst), 0, 0)
		lutPool.Put(l)
		return
	}
	addSmallSpan(body, m, dst, 0, len(dst), 0, 0)
}

// addScaledSpan accumulates the span dst[lo:hi) of a validated body
// through a prebuilt ScaledLUT: decoding starts at body[off], whose first
// skip groups belong to the preceding span (skip is non-zero only when a
// zero run straddles a span boundary). Serial callers pass the full range
// with off = skip = 0. This is the scalar tier; addScaledSpanVec is the
// dispatched unrolled form.
func addScaledSpan(body []byte, tab *scaledTab, dst []float32, lo, hi, off, skip int) {
	zero := tab[encode.ZeroGroupByte][0] // m·0, NaN-propagating like the staged multiply
	w := lo
	for ; w < hi; off++ {
		b := body[off]
		if b > encode.MaxQuartic {
			k := int(b) - encode.RunBase + 2 - skip
			skip = 0
			end := w + k*encode.GroupSize
			if end > hi {
				end = hi
			}
			for ; w < end; w++ {
				dst[w] += zero
			}
			continue
		}
		skip = 0
		row := &tab[b]
		if w+encode.GroupSize <= hi {
			d := dst[w : w+encode.GroupSize : w+encode.GroupSize]
			d[0] += row[0]
			d[1] += row[1]
			d[2] += row[2]
			d[3] += row[3]
			d[4] += row[4]
			w += encode.GroupSize
		} else {
			for k := 0; w < hi; k, w = k+1, w+1 {
				dst[w] += row[k]
			}
		}
	}
}

// addSmallSpan is the small-tensor form of addScaledSpan: ternLUT digits
// scaled by an inline multiply, the same single pass.
func addSmallSpan(body []byte, m float32, dst []float32, lo, hi, off, skip int) {
	zero := m * float32(0)
	w := lo
	for ; w < hi; off++ {
		b := body[off]
		if b > encode.MaxQuartic {
			k := int(b) - encode.RunBase + 2 - skip
			skip = 0
			end := w + k*encode.GroupSize
			if end > hi {
				end = hi
			}
			for ; w < end; w++ {
				dst[w] += zero
			}
			continue
		}
		skip = 0
		row := &ternLUT[b]
		if w+encode.GroupSize <= hi {
			dst[w] += m * float32(row[0])
			dst[w+1] += m * float32(row[1])
			dst[w+2] += m * float32(row[2])
			dst[w+3] += m * float32(row[3])
			dst[w+4] += m * float32(row[4])
			w += encode.GroupSize
		} else {
			for k := 0; w < hi; k, w = k+1, w+1 {
				dst[w] += m * float32(row[k])
			}
		}
	}
}

// DecodeTernaryAddScaled is the scale-into variant for weighted
// accumulation: dst[i] += alpha·(m·q_i), the exact operations of decoding
// into scratch and then dst.AXPY(alpha, scratch). Like DecodeTernaryAdd
// it validates before mutating; on error dst is unchanged.
//
//3lc:noalloc
//3lc:decode
func DecodeTernaryAddScaled(body []byte, zre bool, m, alpha float32, dst []float32) error {
	n := len(dst)
	if err := scanTernaryBody(body, zre, encode.QuarticEncodedLen(n)); err != nil {
		return err
	}
	notePass("lut-decode-add-scaled", n)
	zero := alpha * (m * float32(0))
	w := 0
	for off := 0; w < n; off++ {
		//3lc:allow nopanic scanTernaryBody validated every byte of body against n upfront
		b := body[off]
		if b > encode.MaxQuartic {
			k := int(b) - encode.RunBase + 2
			end := w + k*encode.GroupSize
			if end > n {
				end = n
			}
			for ; w < end; w++ {
				dst[w] += zero
			}
			continue
		}
		row := &ternLUT[b]
		if w+encode.GroupSize <= n {
			dst[w] += alpha * (m * float32(row[0]))
			dst[w+1] += alpha * (m * float32(row[1]))
			dst[w+2] += alpha * (m * float32(row[2]))
			dst[w+3] += alpha * (m * float32(row[3]))
			dst[w+4] += alpha * (m * float32(row[4]))
			w += encode.GroupSize
		} else {
			for k := 0; w < n; k, w = k+1, w+1 {
				dst[w] += alpha * (m * float32(row[k]))
			}
		}
	}
	return nil
}

// TernaryWire is one worker's ternary payload for the batched
// decode-accumulate kernel: the wire body plus the header fields the
// accumulation needs.
type TernaryWire struct {
	Body []byte
	ZRE  bool
	M    float32
}

// wireEntry is one payload's decode entry point for one span: the byte
// offset at which the span's first group is produced, plus how many of
// that byte's groups belong to the preceding span (non-zero only when a
// zero run straddles the boundary).
type wireEntry struct {
	off  int
	skip int
}

// DecodeTernaryAddParallel accumulates every payload of wires into dst,
// range-partitioned: [0, len(dst)) is split into group-aligned spans and
// each goroutine owns one span across ALL payloads, accumulating them in
// slice order. No two goroutines touch the same element — no locks — and
// every dst[i] receives its contributions in exactly the serial payload
// order, so the sums are byte-identical to looping DecodeTernaryAdd over
// wires for any worker count. A per-payload wire-byte pre-scan locates
// each span's entry offset (and validates, so on error dst is untouched);
// the accumulate side still sweeps tensor memory exactly once per
// payload. workers <= 1, a small destination, or a single span fall back
// to the serial kernel.
func DecodeTernaryAddParallel(wires []TernaryWire, dst []float32, workers int) error {
	n := len(dst)
	gTotal := encode.QuarticEncodedLen(n)
	for wi := range wires {
		if err := scanTernaryBody(wires[wi].Body, wires[wi].ZRE, gTotal); err != nil {
			return fmt.Errorf("kernel: payload %d: %w", wi, err)
		}
	}
	for range wires {
		notePass("lut-decode-add", n)
	}
	if n == 0 || len(wires) == 0 {
		return nil
	}
	bounds := spanBounds(n, encode.GroupSize, workers)
	if workers <= 1 || n < scaledLUTMinElems || len(bounds) <= 2 {
		for wi := range wires {
			addValidated(wires[wi].Body, wires[wi].M, dst)
		}
		return nil
	}

	spans := len(bounds) - 1
	ents := make([]wireEntry, len(wires)*spans)
	luts := make([]*ScaledLUT, len(wires))
	for wi := range wires {
		buildEntries(wires[wi].Body, bounds, ents[wi*spans:(wi+1)*spans])
		luts[wi] = lutPool.Get().(*ScaledLUT)
		luts[wi].Build(wires[wi].M)
	}
	var wg sync.WaitGroup
	for s := 0; s < spans; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			lo, hi := bounds[s], bounds[s+1]
			for wi := range wires {
				e := ents[wi*spans+s]
				addSpanCore(wires[wi].Body, &luts[wi].tab, dst, lo, hi, e.off, e.skip)
			}
		}(s)
	}
	wg.Wait()
	for _, l := range luts {
		lutPool.Put(l)
	}
	return nil
}

// buildEntries walks one validated payload's wire bytes once and records,
// for every span start in bounds (all but the final boundary), where its
// decoding begins.
func buildEntries(body []byte, bounds []int, out []wireEntry) {
	j := 0
	gi := 0
	for off, b := range body {
		k := 1
		if b > encode.MaxQuartic {
			k = int(b) - encode.RunBase + 2
		}
		for j < len(out) && bounds[j]/encode.GroupSize < gi+k {
			out[j] = wireEntry{off: off, skip: bounds[j]/encode.GroupSize - gi}
			j++
		}
		gi += k
	}
}

// spanBounds splits [0, n) into at most `workers` contiguous spans whose
// interior boundaries are multiples of align, returning the offsets
// [0, b1, ..., n]. It is the boundary computation behind forEachChunk,
// exposed separately for callers that need the boundaries ahead of the
// fan-out (the decode-add entry-point pre-scan).
func spanBounds(n, align, workers int) []int {
	if n <= 0 {
		return []int{0, 0}
	}
	if align < 1 {
		align = 1
	}
	groups := (n + align - 1) / align
	if workers > groups {
		workers = groups
	}
	if workers < 1 {
		workers = 1
	}
	bounds := make([]int, 1, workers+1)
	per, rem := groups/workers, groups%workers
	lo := 0
	for g := 0; g < workers; g++ {
		cnt := per
		if g < rem {
			cnt++
		}
		hi := lo + cnt*align
		if hi > n {
			hi = n
		}
		bounds = append(bounds, hi)
		lo = hi
	}
	return bounds
}
