// Package kernel implements the fused single-pass hot-path kernels of the
// 3LC compression pipeline.
//
// The staged pipeline (package quant + package encode) realizes §3.1–§3.3
// as seven separate full sweeps over tensor memory — accumulate, |max|
// reduction, quantize, local dequantize, residual update, quartic pack,
// zero-run emit — so steady-state step time is memory-bandwidth bound.
// This package collapses the per-element work so the whole compress side
// touches tensor memory exactly twice and the decode side exactly once:
//
//	pass 1  AccumulateMaxAbs    buf += in fused with the max|buf| reduction
//	pass 2  EncodeTernary       quantize → local-dequantize → residual →
//	                            quartic-pack → zero-run-emit in one loop
//	                            that writes wire bytes directly
//	decode  DecodeTernary       ZRE-expand → quartic-unpack → scaled-apply
//	                            in one LUT-driven loop streaming wire bytes
//	                            straight into the destination floats
//
// Every kernel is bit-compatible with the staged reference: wires are
// byte-identical and residual buffers bit-identical for any input,
// property-tested (and fuzzed, FuzzFusedVsStaged) against the staged
// composition. The staged primitives remain in quant/encode as the
// reference implementation and for callers that need the intermediate
// representations.
//
// Both compress passes have chunked-parallel forms (two-phase parallel max
// reduction; group-aligned parallel fused encode with a per-chunk zero-run
// stitch-up) that produce byte-identical output to the serial kernels for
// any worker count. Scheduling is pass-count aware: see PassWorkers.
//
// The inner loops behind the three kernels are dispatched through a
// CPU-feature-selected registry (see dispatch.go) with up to three tiers
// per core:
//
//	core                  scalar              vec                     asm (AVX2)
//	accumulate+|max|      range loop          8-chain unrolled        = vec
//	|max| reduction       range loop          8-chain unrolled        = vec
//	ternary quantize/pack cmov quantize loop  = scalar (fastest       32-elem AVX2
//	                                          pure-Go formulation)    quantize+pack blocks
//	LUT decode-add/set    byte-at-a-time      4-byte-unrolled rows,   AVX2 gather rows,
//	                      row apply           vectorized literals     asm literal loops
//
// The tier is picked once at init from CPUID (asm when AVX2 is present,
// else vec) and can be pinned with THREELC_KERNEL=scalar|vec|asm; every
// tier emits byte-identical wires, so the choice is invisible outside
// timing.
package kernel

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// PassHook, when non-nil, is called once per full sweep a kernel in this
// package makes over tensor memory, with a pass label and the element
// count swept. It is the pass-counting test double behind the "compress is
// exactly two passes, decode exactly one" guarantee: tests install a
// recording hook, run the pipeline, and count calls. Production code must
// leave it nil (the hot loops pay only a nil check).
var PassHook func(pass string, elems int)

func notePass(pass string, n int) {
	if PassHook != nil {
		PassHook(pass, n)
	}
}

// SpawnHook, when non-nil, is called once per goroutine a kernel fan-out
// spawns. It is the scheduling test double behind the "small tensors
// spawn zero goroutines, a k-chunk fan-out spawns k-1" guarantee (the
// caller always runs the last chunk itself instead of idling in Wait).
// Production code must leave it nil.
var SpawnHook func()

func noteSpawn() {
	if SpawnHook != nil {
		SpawnHook()
	}
}

// Pass-count-aware parallel scheduling.
//
// With the pipeline fused into two passes, each pass is a large fraction
// of total step time, so the fan-out decision is made per pass rather than
// per pipeline: a pass's goroutine count scales with the work *that pass*
// performs per element. The reduction pass (accumulate + |max|) streams at
// ~2 flops/element and only amortizes goroutine handoff at about twice the
// span the quantize+pack pass (~12 flops/element plus the byte emit)
// needs, so each pass class declares its own minimum span and callers ask
// PassWorkers once per pass.
const (
	// ParallelThresholdElems is the tensor size below which every pass
	// runs serially: under it, fan-out overhead outweighs any win.
	ParallelThresholdElems = 1 << 18
	// SpanReduce is the minimum number of elements per goroutine for the
	// memory-bound reduction pass (pass 1).
	SpanReduce = 1 << 17
	// SpanEncode is the minimum number of elements per goroutine for the
	// compute-bound fused quantize+pack pass (pass 2).
	SpanEncode = 1 << 16
)

// PassWorkers returns the goroutine fan-out for one fused pass over n
// elements: 1 below ParallelThresholdElems, otherwise GOMAXPROCS capped by
// the caller's budget (budget <= 0 means no cap) and by work
// proportionality (at least span elements per goroutine, so small passes
// never over-spawn even under a generous budget).
func PassWorkers(n, budget, span int) int {
	if n < ParallelThresholdElems {
		return 1
	}
	w := runtime.GOMAXPROCS(0)
	if budget > 0 && w > budget {
		w = budget
	}
	if m := n / span; w > m {
		w = m
	}
	if w < 1 {
		w = 1
	}
	return w
}

// forEachChunk splits [0, n) into `workers` contiguous spans whose
// boundaries (except the last) are multiples of align and runs fn(idx, lo,
// hi) for each span. With one resulting span, fn runs on the calling
// goroutine with zero spawns; with k spans, k-1 goroutines are spawned and
// the caller runs the final span itself instead of idling in Wait (one
// fewer handoff per fan-out, and tiny tensors never pay a spawn at all).
// Unlike encode.Chunked it hands fn the chunk index, which the two-phase
// reductions and the zero-run stitch-up need to address per-chunk result
// slots.
func forEachChunk(n, align, workers int, fn func(idx, lo, hi int)) int {
	if n <= 0 {
		return 0
	}
	if align < 1 {
		align = 1
	}
	groups := (n + align - 1) / align
	if workers > groups {
		workers = groups
	}
	if workers <= 1 {
		fn(0, 0, n)
		return 1
	}
	per := groups / workers
	rem := groups % workers
	var wg sync.WaitGroup
	lo := 0
	lastLo := 0
	for g := 0; g < workers; g++ {
		cnt := per
		if g < rem {
			cnt++
		}
		hi := lo + cnt*align
		if hi > n {
			hi = n
		}
		if g == workers-1 {
			lastLo = lo
			break
		}
		wg.Add(1)
		noteSpawn()
		go func(idx, lo, hi int) {
			defer wg.Done()
			fn(idx, lo, hi)
		}(g, lo, hi)
		lo = hi
	}
	fn(workers-1, lastLo, n)
	wg.Wait()
	return workers
}

// AccumulateMaxAbs is compress pass 1: it adds in to buf element-wise and
// returns max|buf| of the updated buffer, fusing the error-accumulation
// sweep with the |max| reduction the quantizer needs (the staged pipeline
// runs them as two separate sweeps). buf and in must have equal length.
//
//3lc:noalloc
func AccumulateMaxAbs(buf, in []float32) float32 {
	if len(buf) != len(in) {
		panic(fmt.Sprintf("kernel: AccumulateMaxAbs length mismatch %d != %d", len(buf), len(in)))
	}
	notePass("accumulate+maxabs", len(buf))
	return accMaxCore(buf, in)
}

// accMaxAbsRange is the unhooked serial core shared by the serial and
// chunked-parallel forms. |s| is taken by masking the sign bit rather than
// a compare-and-negate: the sign of random data makes that branch
// unpredictable (measured ~7x slower), while the mask is branchless. The
// reduction result is bit-identical either way — ±0 and NaN lose every
// `a > m` comparison under both forms.
func accMaxAbsRange(buf, in []float32) float32 {
	var m float32
	buf = buf[:len(in)]
	for i, v := range in {
		s := buf[i] + v
		buf[i] = s
		a := math.Float32frombits(math.Float32bits(s) &^ (1 << 31))
		if a > m {
			m = a
		}
	}
	return m
}

// AccumulateMaxAbsParallel is the chunked form of AccumulateMaxAbs: a
// two-phase parallel max reduction (each chunk accumulates its span and
// reduces a local max, then the chunk maxes reduce serially). float32 max
// is associative, so the result is bit-identical to the serial kernel for
// any worker count. workers <= 1 runs the serial kernel.
func AccumulateMaxAbsParallel(buf, in []float32, workers int) float32 {
	if len(buf) != len(in) {
		panic(fmt.Sprintf("kernel: AccumulateMaxAbs length mismatch %d != %d", len(buf), len(in)))
	}
	notePass("accumulate+maxabs", len(buf))
	if workers <= 1 || len(buf) == 0 {
		return accMaxCore(buf, in)
	}
	maxes := make([]float32, workers)
	used := forEachChunk(len(buf), 1, workers, func(idx, lo, hi int) {
		maxes[idx] = accMaxCore(buf[lo:hi], in[lo:hi])
	})
	var m float32
	for _, v := range maxes[:used] {
		if v > m {
			m = v
		}
	}
	return m
}

// MaxAbs returns max|data| in one hooked sweep. It is pass 1 of the fused
// stochastic-ternary pipeline, which has no error accumulation to fuse the
// reduction with.
func MaxAbs(data []float32) float32 {
	notePass("maxabs", len(data))
	return maxAbsCore(data)
}

// MaxAbsParallel is the two-phase chunked form of MaxAbs, bit-identical
// for any worker count.
func MaxAbsParallel(data []float32, workers int) float32 {
	notePass("maxabs", len(data))
	if workers <= 1 || len(data) == 0 {
		return maxAbsCore(data)
	}
	maxes := make([]float32, workers)
	used := forEachChunk(len(data), 1, workers, func(idx, lo, hi int) {
		maxes[idx] = maxAbsCore(data[lo:hi])
	})
	var m float32
	for _, v := range maxes[:used] {
		if v > m {
			m = v
		}
	}
	return m
}

func maxAbsRange(data []float32) float32 {
	var m float32
	for _, v := range data {
		a := math.Float32frombits(math.Float32bits(v) &^ (1 << 31))
		if a > m {
			m = a
		}
	}
	return m
}
