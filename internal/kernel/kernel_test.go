package kernel

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"threelc/internal/encode"
	"threelc/internal/quant"
	"threelc/internal/tensor"
)

// --- staged reference pipeline ---------------------------------------------
//
// The staged seven-sweep composition from quant + encode is the
// bit-identical reference every fused kernel is tested (and fuzzed)
// against: accumulate, MaxAbs, quantize, dequantize, residual, quartic
// pack, zero-run encode as separate full sweeps.

// stagedTernary runs the staged 3LC pipeline: acc += in, quantize the sum,
// subtract the local dequantization (residual stays in acc), and return
// the wire payload plus the float32 scale M.
func stagedTernary(acc, in *tensor.Tensor, s float64, zre bool) ([]byte, float32) {
	acc.Add(in)
	tv := quant.Quantize3(acc, s)
	acc.Sub(quant.Dequantize3(tv))
	qe := encode.QuarticEncode(tv.Q)
	if zre {
		return encode.ZeroRunEncode(qe), tv.M
	}
	return qe, tv.M
}

// stagedStoch runs the staged stochastic-ternary pipeline.
func stagedStoch(in *tensor.Tensor, rng *tensor.RNG) ([]byte, float32) {
	tv := quant.QuantizeStochastic3(in, rng)
	return encode.QuarticEncode(tv.Q), tv.M
}

// stagedDecode reverses a ternary payload with the staged primitives:
// zero-run expand, then scaled quartic decode.
func stagedDecode(body []byte, zre bool, m float32, n int) ([]float32, error) {
	qlen := encode.QuarticEncodedLen(n)
	q := body
	if zre {
		if got := encode.ZeroRunDecodedLen(body); got != qlen {
			return nil, fmt.Errorf("staged: zero-run payload expands to %d bytes, want %d", got, qlen)
		}
		q = make([]byte, qlen)
		encode.ZeroRunDecodeInto(body, q)
	} else if len(body) != qlen {
		return nil, fmt.Errorf("staged: quartic payload %d bytes, want %d", len(body), qlen)
	}
	dst := make([]float32, n)
	if err := encode.QuarticDecodeScaledInto(q, dst, m); err != nil {
		return nil, err
	}
	return dst, nil
}

func bitsEqual(a, b []float32) (int, bool) {
	if len(a) != len(b) {
		return -1, false
	}
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return i, false
		}
	}
	return -1, true
}

func fillRand(t *tensor.Tensor, seed uint64, std float64) {
	rng := tensor.NewRNG(seed)
	tensor.FillNormal(t, std, rng)
}

// --- fused vs staged equivalence -------------------------------------------

// TestEncodeTernaryMatchesStaged drives the fused two-pass compressor and
// the staged seven-sweep reference over multiple accumulating steps and
// requires byte-identical wires and bit-identical residual buffers at
// every step, across sizes (including n % 5 != 0), sparsities, and both
// ZRE settings.
func TestEncodeTernaryMatchesStaged(t *testing.T) {
	for _, n := range []int{1, 4, 5, 6, 100, 997, 1280, 4099} {
		for _, s := range []float64{1.0, 1.5, 1.75, 1.999} {
			for _, zre := range []bool{true, false} {
				t.Run(fmt.Sprintf("n=%d/s=%v/zre=%v", n, s, zre), func(t *testing.T) {
					accStaged := tensor.New(n)
					bufFused := make([]float32, n)
					in := tensor.New(n)
					var wire []byte
					for step := 0; step < 6; step++ {
						fillRand(in, uint64(n*1000+step), 0.01)
						wantWire, wantM := stagedTernary(accStaged, in, s, zre)

						m := float64(AccumulateMaxAbs(bufFused, in.Data())) * s
						if math.Float32bits(float32(m)) != math.Float32bits(wantM) {
							t.Fatalf("step %d: scale %v != staged %v", step, float32(m), wantM)
						}
						wire = EncodeTernary(bufFused, m, zre, wire[:0])
						if !bytes.Equal(wire, wantWire) {
							t.Fatalf("step %d: fused wire (%d B) != staged wire (%d B)", step, len(wire), len(wantWire))
						}
						if i, ok := bitsEqual(bufFused, accStaged.Data()); !ok {
							t.Fatalf("step %d: residual differs at %d: %v vs %v", step, i, bufFused[i], accStaged.Data()[i])
						}
					}
				})
			}
		}
	}
}

// TestEncodeTernaryParallelByteIdentical pins the stitch-up contract: for
// any worker count the parallel fused encoder must produce exactly the
// serial kernel's bytes and residuals, including zero runs spanning chunk
// boundaries and all-zero chunks.
func TestEncodeTernaryParallelByteIdentical(t *testing.T) {
	for _, n := range []int{5, 64, 997, 4096, 100_003} {
		for _, workers := range []int{2, 3, 7, 16} {
			for _, sparse := range []bool{false, true} {
				t.Run(fmt.Sprintf("n=%d/w=%d/sparse=%v", n, workers, sparse), func(t *testing.T) {
					base := tensor.New(n)
					if sparse {
						// Two spikes leave almost everything zero, forcing
						// long runs across every chunk boundary.
						base.Data()[0] = 1
						base.Data()[n-1] = -1
					} else {
						fillRand(base, uint64(n), 0.01)
					}
					serialBuf := append([]float32(nil), base.Data()...)
					parBuf := append([]float32(nil), base.Data()...)
					m := float64(maxAbsRange(serialBuf)) * 1.75

					want := EncodeTernary(serialBuf, m, true, nil)
					got, _ := EncodeTernaryParallel(parBuf, m, true, nil, workers, nil)
					if !bytes.Equal(want, got) {
						t.Fatalf("parallel ZRE wire differs: %d B vs %d B", len(got), len(want))
					}
					if i, ok := bitsEqual(serialBuf, parBuf); !ok {
						t.Fatalf("parallel residual differs at %d", i)
					}

					// And the no-ZRE fixed-position parallel path.
					serialBuf = append(serialBuf[:0], base.Data()...)
					parBuf = append(parBuf[:0], base.Data()...)
					want = EncodeTernary(serialBuf, m, false, nil)
					got, _ = EncodeTernaryParallel(parBuf, m, false, nil, workers, nil)
					if !bytes.Equal(want, got) {
						t.Fatalf("parallel quartic wire differs")
					}
					if i, ok := bitsEqual(serialBuf, parBuf); !ok {
						t.Fatalf("parallel no-ZRE residual differs at %d", i)
					}
				})
			}
		}
	}
}

// TestAccumulateMaxAbsParallelMatchesSerial checks the two-phase parallel
// max reduction is bit-identical for any worker count.
func TestAccumulateMaxAbsParallelMatchesSerial(t *testing.T) {
	for _, n := range []int{1, 17, 1000, 65536} {
		for _, workers := range []int{2, 5, 13} {
			a := tensor.New(n)
			b := tensor.New(n)
			in := tensor.New(n)
			fillRand(a, 1, 0.5)
			b.CopyFrom(a)
			fillRand(in, 2, 0.5)
			ms := AccumulateMaxAbs(a.Data(), in.Data())
			mp := AccumulateMaxAbsParallel(b.Data(), in.Data(), workers)
			if math.Float32bits(ms) != math.Float32bits(mp) {
				t.Fatalf("n=%d w=%d: max %v != %v", n, workers, ms, mp)
			}
			if i, ok := bitsEqual(a.Data(), b.Data()); !ok {
				t.Fatalf("n=%d w=%d: buffers differ at %d", n, workers, i)
			}
			if math.Float32bits(MaxAbs(a.Data())) != math.Float32bits(MaxAbsParallel(b.Data(), workers)) {
				t.Fatalf("n=%d w=%d: MaxAbsParallel differs", n, workers)
			}
		}
	}
}

// TestEncodeStochMatchesStaged pins the fused stochastic encoder to the
// staged quantizer: identical RNG consumption order means identical
// bytes.
func TestEncodeStochMatchesStaged(t *testing.T) {
	for _, n := range []int{3, 5, 100, 1003} {
		in := tensor.New(n)
		fillRand(in, uint64(n)+7, 0.01)
		rngStaged := tensor.NewRNG(42)
		rngFused := tensor.NewRNG(42)
		for step := 0; step < 4; step++ {
			wantWire, wantM := stagedStoch(in, rngStaged)
			m := float64(MaxAbs(in.Data()))
			if math.Float32bits(float32(m)) != math.Float32bits(wantM) {
				t.Fatalf("n=%d step %d: scale mismatch", n, step)
			}
			got := EncodeStoch(in.Data(), m, rngFused, nil)
			if !bytes.Equal(got, wantWire) {
				t.Fatalf("n=%d step %d: stoch wire differs", n, step)
			}
		}
	}
	// All-zero input must not consume RNG draws (the staged quantizer
	// returns early), or the two paths would diverge on later steps.
	zero := tensor.New(64)
	live := tensor.New(64)
	fillRand(live, 9, 0.01)
	rngStaged := tensor.NewRNG(5)
	rngFused := tensor.NewRNG(5)
	stagedStoch(zero, rngStaged)
	EncodeStoch(zero.Data(), 0, rngFused, nil)
	wantWire, _ := stagedStoch(live, rngStaged)
	got := EncodeStoch(live.Data(), float64(MaxAbs(live.Data())), rngFused, nil)
	if !bytes.Equal(got, wantWire) {
		t.Fatal("RNG state diverged after all-zero tensor")
	}
}

// TestDecodeTernaryMatchesStaged checks the LUT decoder against the staged
// zero-run-expand + scaled-quartic-decode reference, on both sides of the
// ScaledLUT threshold and for n % 5 != 0.
func TestDecodeTernaryMatchesStaged(t *testing.T) {
	for _, n := range []int{1, 5, 13, 100, 997, scaledLUTMinElems, 8192, 100_003} {
		for _, zre := range []bool{true, false} {
			buf := make([]float32, n)
			in := tensor.New(n)
			fillRand(in, uint64(n)+31, 0.01)
			m := float64(AccumulateMaxAbs(buf, in.Data())) * 1.75
			body := EncodeTernary(buf, m, zre, nil)

			want, err := stagedDecode(body, zre, float32(m), n)
			if err != nil {
				t.Fatalf("n=%d zre=%v: staged decode: %v", n, zre, err)
			}
			got := make([]float32, n)
			if err := DecodeTernary(body, zre, float32(m), got); err != nil {
				t.Fatalf("n=%d zre=%v: fused decode: %v", n, zre, err)
			}
			if i, ok := bitsEqual(got, want); !ok {
				t.Fatalf("n=%d zre=%v: decode differs at %d: %v vs %v", n, zre, i, got[i], want[i])
			}
		}
	}
}

// TestDecodeTernaryAllZero covers the all-zero wire (one maximal run) and
// the m == 0 encode fast path round-tripping.
func TestDecodeTernaryAllZero(t *testing.T) {
	for _, n := range []int{4, 70, 5000} {
		buf := make([]float32, n)
		body := EncodeTernary(buf, 0, true, nil)
		out := make([]float32, n)
		for i := range out {
			out[i] = 99 // must be overwritten
		}
		if err := DecodeTernary(body, true, 0, out); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i, v := range out {
			if v != 0 {
				t.Fatalf("n=%d: element %d = %v, want 0", n, i, v)
			}
		}
	}
}

// --- decode error paths (untrusted network input) ---------------------------

// TestDecodeTernaryErrors is the table test for malformed ZRE/quartic
// payloads: truncated and overlong bodies, runs overrunning the end, and
// invalid bytes must all return errors (extending the
// QuarticDecodeScaledInto error convention to the fused decoder), never
// panic — including around trailing partial groups (n % 5 != 0).
func TestDecodeTernaryErrors(t *testing.T) {
	// n = 13 → 3 quartic groups, last one partial (3 values).
	const n = 13
	valid := validZREBody(t, n)

	cases := []struct {
		name    string
		body    []byte
		zre     bool
		wantErr bool
	}{
		{"valid-zre", valid, true, false},
		{"truncated-zre", valid[:len(valid)-1], true, true},
		{"empty-zre", nil, true, true},
		{"overlong-literal", append(append([]byte(nil), valid...), encode.ZeroGroupByte), true, true},
		{"overlong-run", append(append([]byte(nil), valid...), byte(encode.RunBase)), true, true},
		{"run-overruns-end", []byte{byte(encode.RunBase + encode.MaxRun - 2)}, true, true}, // 14 groups > 3
		{"run-short-of-end", []byte{byte(encode.RunBase)}, true, true},                     // 2 groups < 3
		{"exact-run", []byte{byte(encode.RunBase + 1)}, true, false},                       // run of 3 == gTotal
		{"valid-quartic", []byte{121, 121, 121}, false, false},
		{"quartic-truncated", []byte{121, 121}, false, true},
		{"quartic-overlong", []byte{121, 121, 121, 121}, false, true},
		{"quartic-run-byte", []byte{121, byte(encode.RunBase), 121}, false, true},
		{"quartic-255", []byte{121, 121, 255}, false, true},
		{"empty-quartic", nil, false, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dst := make([]float32, n)
			err := DecodeTernary(tc.body, tc.zre, 0.5, dst)
			if tc.wantErr && err == nil {
				t.Fatalf("decode of %v succeeded, want error", tc.body)
			}
			if !tc.wantErr && err != nil {
				t.Fatalf("decode of %v failed: %v", tc.body, err)
			}
		})
	}

	// Same table through the large-tensor ScaledLUT path: a run
	// overrunning the end and an overlong payload must error there too.
	big := scaledLUTMinElems + 3 // partial trailing group
	bigBody := validZREBody(t, big)
	for _, tc := range []struct {
		name string
		body []byte
	}{
		{"big-truncated", bigBody[:len(bigBody)-1]},
		{"big-overlong", append(append([]byte(nil), bigBody...), encode.ZeroGroupByte)},
		{"big-run-overrun", append(append([]byte(nil), bigBody...), 255)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dst := make([]float32, big)
			if err := DecodeTernary(tc.body, true, 0.5, dst); err == nil {
				t.Fatal("malformed big payload decoded without error")
			}
		})
	}

	// n == 0 accepts only an empty body.
	if err := DecodeTernary(nil, true, 1, nil); err != nil {
		t.Fatalf("empty tensor, empty body: %v", err)
	}
	if err := DecodeTernary([]byte{121}, true, 1, nil); err == nil {
		t.Fatal("empty tensor with non-empty body decoded without error")
	}
}

// validZREBody builds a known-good zero-run-encoded payload for n values
// with a mix of runs and literals.
func validZREBody(t *testing.T, n int) []byte {
	t.Helper()
	buf := make([]float32, n)
	in := tensor.New(n)
	in.Data()[0] = 1 // sparse: long zero runs plus a literal group
	m := float64(AccumulateMaxAbs(buf, in.Data())) * 1.0
	return EncodeTernary(buf, m, true, nil)
}

// --- pass counting -----------------------------------------------------------

// TestPassCounts is the pass-counting test double: the fused compress side
// must sweep tensor memory exactly twice and the decode side exactly once.
func TestPassCounts(t *testing.T) {
	type pass struct {
		name  string
		elems int
	}
	var passes []pass
	PassHook = func(name string, elems int) { passes = append(passes, pass{name, elems}) }
	defer func() { PassHook = nil }()

	const n = 1003
	buf := make([]float32, n)
	in := tensor.New(n)
	fillRand(in, 3, 0.01)

	passes = nil
	m := float64(AccumulateMaxAbs(buf, in.Data())) * 1.75
	wire := EncodeTernary(buf, m, true, nil)
	if len(passes) != 2 {
		t.Fatalf("fused compress made %d passes (%v), want exactly 2", len(passes), passes)
	}
	for _, p := range passes {
		if p.elems != n {
			t.Fatalf("pass %q swept %d elems, want %d", p.name, p.elems, n)
		}
	}

	passes = nil
	dst := make([]float32, n)
	if err := DecodeTernary(wire, true, float32(m), dst); err != nil {
		t.Fatal(err)
	}
	if len(passes) != 1 {
		t.Fatalf("fused decode made %d passes (%v), want exactly 1", len(passes), passes)
	}

	// The parallel kernels are still one pass each: chunks shard a sweep,
	// they do not add one.
	passes = nil
	buf2 := make([]float32, n)
	m = float64(AccumulateMaxAbsParallel(buf2, in.Data(), 4)) * 1.75
	_, _ = EncodeTernaryParallel(buf2, m, true, nil, 4, nil)
	if len(passes) != 2 {
		t.Fatalf("parallel fused compress made %d passes, want 2", len(passes))
	}
}

// --- scheduling --------------------------------------------------------------

func TestPassWorkers(t *testing.T) {
	if w := PassWorkers(1000, 0, SpanEncode); w != 1 {
		t.Errorf("small tensor: %d workers, want 1", w)
	}
	if w := PassWorkers(1<<20, 1, SpanEncode); w != 1 {
		t.Errorf("budget 1: %d workers, want 1", w)
	}
	// Work proportionality: a pass never gets more workers than n/span.
	n := ParallelThresholdElems
	if w := PassWorkers(n, 1024, SpanReduce); w > n/SpanReduce {
		t.Errorf("reduce pass over-spawned: %d workers for %d elems", w, n)
	}
	if wR, wE := PassWorkers(n, 1024, SpanReduce), PassWorkers(n, 1024, SpanEncode); wR > wE {
		t.Errorf("reduction pass (%d) should not out-fan the encode pass (%d) at equal n", wR, wE)
	}
}

// TestScaledLUTCaching pins the per-M rebuild semantics: same bits skip
// the rebuild, different bits (including ±0) rebuild.
func TestScaledLUTCaching(t *testing.T) {
	var l ScaledLUT
	l.Build(2)
	if l.tab[242][0] != 2 { // digits of 242 are all +1
		t.Fatalf("tab[242][0] = %v, want 2", l.tab[242][0])
	}
	l.Build(3)
	if l.tab[242][0] != 3 {
		t.Fatalf("rebuild skipped: tab[242][0] = %v, want 3", l.tab[242][0])
	}
	negZero := math.Float32frombits(1 << 31)
	l.Build(negZero)
	if math.Float32bits(l.tab[242][4]) != math.Float32bits(negZero*1) {
		t.Fatal("-0 scale not rebuilt distinctly from +0")
	}
}
