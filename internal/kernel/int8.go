package kernel

import "math"

// Fused 8-bit integer quantization. The staged reference
// (quant.QuantizeInt8Into) sweeps the tensor twice past the |max|
// reduction — quantize into an int8 scratch slice, then a byte-copy into
// the wire buffer — which left the "8-bit int" baseline an order of
// magnitude behind the ternary codecs. EncodeInt8 writes the wire bytes
// directly (one pass after the reduction), and EncodeInt8Parallel chunks
// it: every group maps to a fixed output byte, so chunks write disjoint
// spans and the output is byte-identical to the serial kernel for any
// worker count.

// EncodeInt8 quantizes data onto 255 levels spanning [-m, +m] (the
// paper's TPU-style "8-bit int" baseline) and appends one byte per
// element to dst. m is the float64 |max| of the data; the per-element
// arithmetic — round(v·127/m) in float64, clamped to ±127, converted
// through int8 — is exactly the staged quant.QuantizeInt8Into sequence,
// so the emitted bytes are bit-identical to quantize-then-copy. m == 0
// emits all zero bytes without a pass over tensor memory, like the staged
// quantizer's zero fill.
func EncodeInt8(data []float32, m float64, dst []byte) []byte {
	n := len(data)
	base := len(dst)
	dst = growCap(dst, n)
	out := dst[base : base+n]
	if m == 0 {
		for i := range out {
			out[i] = 0
		}
		return dst[:base+n]
	}
	notePass("int8-quantize", n)
	scale := 127 / m
	for i, v := range data {
		out[i] = quantInt8(v, scale)
	}
	return dst[:base+n]
}

// quantInt8 quantizes one element with the staged rounding and clamping.
func quantInt8(v float32, scale float64) byte {
	q := math.Round(float64(v) * scale)
	if q > 127 {
		q = 127
	} else if q < -127 {
		q = -127
	}
	return byte(int8(q))
}

// EncodeInt8Parallel is the chunked form of EncodeInt8: disjoint output
// spans, byte-identical for any worker count. workers <= 1 runs the
// serial kernel.
func EncodeInt8Parallel(data []float32, m float64, dst []byte, workers int) []byte {
	n := len(data)
	if workers <= 1 || m == 0 {
		return EncodeInt8(data, m, dst)
	}
	notePass("int8-quantize", n)
	scale := 127 / m
	base := len(dst)
	dst = growCap(dst, n)
	out := dst[base : base+n]
	forEachChunk(n, 1, workers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = quantInt8(data[i], scale)
		}
	})
	return dst[:base+n]
}
