package simd

// cpuid executes the CPUID instruction with the given leaf (EAX) and
// sub-leaf (ECX). Implemented in cpuid_amd64.s.
func cpuid(leaf, subleaf uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads extended control register 0 (XCR0), which reports which
// vector register state the OS saves across context switches. Only valid
// when CPUID leaf 1 reports OSXSAVE. Implemented in cpuid_amd64.s.
func xgetbv() (eax, edx uint32)

const (
	cpuid1ECXOSXSAVE = 1 << 27
	cpuid1ECXAVX     = 1 << 28
	cpuid7EBXAVX2    = 1 << 5
	xcr0XMM          = 1 << 1
	xcr0YMM          = 1 << 2
)

func detect() Features {
	var f Features
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return f
	}
	_, _, ecx1, _ := cpuid(1, 0)
	if ecx1&cpuid1ECXOSXSAVE == 0 || ecx1&cpuid1ECXAVX == 0 {
		return f
	}
	// The OS must save YMM state or AVX registers are silently corrupted
	// across context switches.
	xcr0, _ := xgetbv()
	if xcr0&(xcr0XMM|xcr0YMM) != xcr0XMM|xcr0YMM {
		return f
	}
	_, ebx7, _, _ := cpuid(7, 0)
	f.AVX2 = ebx7&cpuid7EBXAVX2 != 0
	return f
}
