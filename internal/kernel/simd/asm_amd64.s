#include "textflag.h"

// The ternary digit of v against threshold t>0 is
//
//	q = 1 - (v >= t) + (v <= -t)   with the compares as 0/-1 masks,
//
// the selected dequantization level is dqPos/dqNeg/dqZero by the same
// masks, and the packed quartic byte of digits d0..d4 is
// 81*d0 + 27*d1 + 9*d2 + 3*d3 + d4.
//
// The pack uses a multiply trick: loading 8 little-endian digit bytes as
// a uint64 x and multiplying by
//
//	C = 81<<32 | 27<<24 | 9<<16 | 3<<8 | 1 = 0x511B090301
//
// makes byte 4 of x*C exactly 81*d0+27*d1+9*d2+3*d3+d4: every partial
// product below byte 4 sums to < 256 for digits <= 2 (worst case 80), so
// no carry reaches byte 4, and bytes beyond d4 only contribute to bytes
// >= 5. One MOVQ/IMULQ/SHRQ/MOVB per group replaces 5 scalar multiplies.

// func quantPackBlocks(buf *float32, out *byte, blocks int, tpos, tneg, dqNeg, dqZero, dqPos float32)
//
// Register plan per 8-float vector:
//	Y0 = v            Y1 = mask(v >= tpos)    Y2 = mask(v <= tneg)
//	Y3 = digits       Y4 = dequant selection  Y5 = residual
// Constants: Y15=tpos Y14=tneg Y13=dqNeg Y12=dqZero Y11=dqPos Y10=int32(1)
// Digit bytes for one block (8 groups = 5 vectors) land in 40 stack
// bytes; the combine loop folds each 5-byte run into one wire byte.
TEXT ·quantPackBlocks(SB), NOSPLIT, $48-44
	MOVQ buf+0(FP), SI
	MOVQ out+8(FP), DI
	MOVQ blocks+16(FP), CX
	VBROADCASTSS tpos+24(FP), Y15
	VBROADCASTSS tneg+28(FP), Y14
	VBROADCASTSS dqNeg+32(FP), Y13
	VBROADCASTSS dqZero+36(FP), Y12
	VBROADCASTSS dqPos+40(FP), Y11
	VPCMPEQD Y10, Y10, Y10
	VPSRLD $31, Y10, Y10
	MOVQ $0x511B090301, R9

blockloop:
	TESTQ CX, CX
	JZ done

	// vector 0: elements 0..7 -> digit bytes 0..7 on the stack
	VMOVUPS (SI), Y0
	VCMPPS $13, Y15, Y0, Y1    // GE_OS: false on NaN, like Go >=
	VCMPPS $2, Y14, Y0, Y2     // LE_OS
	VPSUBD Y1, Y10, Y3
	VPADDD Y2, Y3, Y3
	VBLENDVPS Y1, Y11, Y12, Y4
	VBLENDVPS Y2, Y13, Y4, Y4
	VSUBPS Y4, Y0, Y5          // residual = v - dq[q], v as operand 1
	VMOVUPS Y5, (SI)
	VPACKSSDW Y3, Y3, Y6       // dwords -> words, per 128-bit lane
	VPERMQ $0x08, Y6, Y6       // gather the two low-qword word runs
	VPACKUSWB X6, X6, X6       // words -> bytes
	VMOVQ X6, 0(SP)

	// vector 1
	VMOVUPS 32(SI), Y0
	VCMPPS $13, Y15, Y0, Y1
	VCMPPS $2, Y14, Y0, Y2
	VPSUBD Y1, Y10, Y3
	VPADDD Y2, Y3, Y3
	VBLENDVPS Y1, Y11, Y12, Y4
	VBLENDVPS Y2, Y13, Y4, Y4
	VSUBPS Y4, Y0, Y5
	VMOVUPS Y5, 32(SI)
	VPACKSSDW Y3, Y3, Y6
	VPERMQ $0x08, Y6, Y6
	VPACKUSWB X6, X6, X6
	VMOVQ X6, 8(SP)

	// vector 2
	VMOVUPS 64(SI), Y0
	VCMPPS $13, Y15, Y0, Y1
	VCMPPS $2, Y14, Y0, Y2
	VPSUBD Y1, Y10, Y3
	VPADDD Y2, Y3, Y3
	VBLENDVPS Y1, Y11, Y12, Y4
	VBLENDVPS Y2, Y13, Y4, Y4
	VSUBPS Y4, Y0, Y5
	VMOVUPS Y5, 64(SI)
	VPACKSSDW Y3, Y3, Y6
	VPERMQ $0x08, Y6, Y6
	VPACKUSWB X6, X6, X6
	VMOVQ X6, 16(SP)

	// vector 3
	VMOVUPS 96(SI), Y0
	VCMPPS $13, Y15, Y0, Y1
	VCMPPS $2, Y14, Y0, Y2
	VPSUBD Y1, Y10, Y3
	VPADDD Y2, Y3, Y3
	VBLENDVPS Y1, Y11, Y12, Y4
	VBLENDVPS Y2, Y13, Y4, Y4
	VSUBPS Y4, Y0, Y5
	VMOVUPS Y5, 96(SI)
	VPACKSSDW Y3, Y3, Y6
	VPERMQ $0x08, Y6, Y6
	VPACKUSWB X6, X6, X6
	VMOVQ X6, 24(SP)

	// vector 4
	VMOVUPS 128(SI), Y0
	VCMPPS $13, Y15, Y0, Y1
	VCMPPS $2, Y14, Y0, Y2
	VPSUBD Y1, Y10, Y3
	VPADDD Y2, Y3, Y3
	VBLENDVPS Y1, Y11, Y12, Y4
	VBLENDVPS Y2, Y13, Y4, Y4
	VSUBPS Y4, Y0, Y5
	VMOVUPS Y5, 128(SI)
	VPACKSSDW Y3, Y3, Y6
	VPERMQ $0x08, Y6, Y6
	VPACKUSWB X6, X6, X6
	VMOVQ X6, 32(SP)

	// combine: groups g=0..7 read 8 digit bytes at 5g, emit byte 4 of x*C
	MOVQ 0(SP), AX
	IMULQ R9, AX
	SHRQ $32, AX
	MOVB AX, (DI)
	MOVQ 5(SP), AX
	IMULQ R9, AX
	SHRQ $32, AX
	MOVB AX, 1(DI)
	MOVQ 10(SP), AX
	IMULQ R9, AX
	SHRQ $32, AX
	MOVB AX, 2(DI)
	MOVQ 15(SP), AX
	IMULQ R9, AX
	SHRQ $32, AX
	MOVB AX, 3(DI)
	MOVQ 20(SP), AX
	IMULQ R9, AX
	SHRQ $32, AX
	MOVB AX, 4(DI)
	MOVQ 25(SP), AX
	IMULQ R9, AX
	SHRQ $32, AX
	MOVB AX, 5(DI)
	MOVQ 30(SP), AX
	IMULQ R9, AX
	SHRQ $32, AX
	MOVB AX, 6(DI)
	MOVQ 35(SP), AX
	IMULQ R9, AX
	SHRQ $32, AX
	MOVB AX, 7(DI)

	ADDQ $160, SI
	ADDQ $8, DI
	DECQ CX
	JMP blockloop

done:
	VZEROUPPER
	RET

// func addScaledLiteralsAsm(tab *[256][5]float32, body *byte, n int, dst *float32) int
//
// Per literal byte b: dst[0:5] += tab[b] as one 16-byte VADDPS plus one
// scalar VADDSS (the 16-byte loads are safe because tab has 256 padded
// rows, so row+16 is always in bounds). dst is operand 1 of both adds to
// match the scalar loop's NaN behavior. Exits at the first marker byte
// (> 242), returning bytes consumed.
TEXT ·addScaledLiteralsAsm(SB), NOSPLIT, $0-40
	MOVQ tab+0(FP), R8
	MOVQ body+8(FP), SI
	MOVQ n+16(FP), CX
	MOVQ dst+24(FP), DI
	XORQ DX, DX

addloop:
	CMPQ DX, CX
	JGE adddone
	MOVBLZX (SI)(DX*1), AX
	CMPL AX, $242
	JA adddone
	LEAQ (AX)(AX*4), AX        // row offset = b * 20
	SHLQ $2, AX
	VMOVUPS (R8)(AX*1), X0
	VMOVSS 16(R8)(AX*1), X1
	VMOVUPS (DI), X2
	VMOVSS 16(DI), X3
	VADDPS X0, X2, X2          // dst + row, dst as operand 1
	VADDSS X1, X3, X3
	VMOVUPS X2, (DI)
	VMOVSS X3, 16(DI)
	ADDQ $20, DI
	INCQ DX
	JMP addloop

adddone:
	MOVQ DX, ret+32(FP)
	RET

// func setScaledLiteralsAsm(tab *[256][5]float32, body *byte, n int, dst *float32) int
//
// Write form: dst[0:5] = tab[b].
TEXT ·setScaledLiteralsAsm(SB), NOSPLIT, $0-40
	MOVQ tab+0(FP), R8
	MOVQ body+8(FP), SI
	MOVQ n+16(FP), CX
	MOVQ dst+24(FP), DI
	XORQ DX, DX

setloop:
	CMPQ DX, CX
	JGE setdone
	MOVBLZX (SI)(DX*1), AX
	CMPL AX, $242
	JA setdone
	LEAQ (AX)(AX*4), AX
	SHLQ $2, AX
	VMOVUPS (R8)(AX*1), X0
	VMOVSS 16(R8)(AX*1), X1
	VMOVUPS X0, (DI)
	VMOVSS X1, 16(DI)
	ADDQ $20, DI
	INCQ DX
	JMP setloop

setdone:
	MOVQ DX, ret+32(FP)
	RET
