package simd

import (
	"math"
	"math/rand"
	"testing"
)

// refAccMaxAbs mirrors the scalar kernel core exactly.
func refAccMaxAbs(buf, in []float32) float32 {
	var m float32
	for i, v := range in {
		s := buf[i] + v
		buf[i] = s
		a := math.Float32frombits(math.Float32bits(s) &^ (1 << 31))
		if a > m {
			m = a
		}
	}
	return m
}

func refMaxAbs(data []float32) float32 {
	var m float32
	for _, v := range data {
		a := math.Float32frombits(math.Float32bits(v) &^ (1 << 31))
		if a > m {
			m = a
		}
	}
	return m
}

// nasty values every equivalence test mixes in: both NaN payload classes,
// infinities, signed zeros, denormals.
var nasty = []float32{
	float32(math.NaN()),
	math.Float32frombits(0x7fc00001),
	math.Float32frombits(0xffc00002),
	float32(math.Inf(1)),
	float32(math.Inf(-1)),
	math.Float32frombits(0x80000000), // -0
	0,
	math.Float32frombits(1), // smallest denormal
	-1e30, 1e30, 1, -1, 0.5,
}

// eqf is bit equality up to NaN payload: when both sides are NaN the
// payloads may legitimately differ between code shapes (the compiler
// commutes float adds, and x86 keeps operand 1's payload when both
// operands are NaN). NaN-ness itself must still agree exactly.
func eqf(a, b float32) bool {
	if math.Float32bits(a) == math.Float32bits(b) {
		return true
	}
	return a != a && b != b
}

func fillMixed(rng *rand.Rand, dst []float32) {
	for i := range dst {
		if rng.Intn(8) == 0 {
			dst[i] = nasty[rng.Intn(len(nasty))]
		} else {
			dst[i] = float32(rng.NormFloat64())
		}
	}
}

func TestAccMaxAbsMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 5, 7, 8, 9, 16, 63, 100, 1023, 4096} {
		buf := make([]float32, n)
		in := make([]float32, n)
		fillMixed(rng, buf)
		fillMixed(rng, in)
		refBuf := append([]float32(nil), buf...)
		wantM := refAccMaxAbs(refBuf, in)
		gotM := AccMaxAbs(buf, in)
		if math.Float32bits(wantM) != math.Float32bits(gotM) {
			t.Fatalf("n=%d: max %x != scalar %x", n, math.Float32bits(gotM), math.Float32bits(wantM))
		}
		for i := range buf {
			if !eqf(buf[i], refBuf[i]) {
				t.Fatalf("n=%d: buf[%d] %x != scalar %x", n, i, math.Float32bits(buf[i]), math.Float32bits(refBuf[i]))
			}
		}
	}
}

func TestMaxAbsMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{0, 1, 7, 8, 9, 40, 1000} {
		data := make([]float32, n)
		fillMixed(rng, data)
		want := refMaxAbs(data)
		got := MaxAbs(data)
		if math.Float32bits(want) != math.Float32bits(got) {
			t.Fatalf("n=%d: %x != %x", n, math.Float32bits(got), math.Float32bits(want))
		}
	}
}

// buildLUT makes a scaled LUT shaped like the kernel's: 243 valid rows of
// digit values scaled by m (including non-finite m), rows 243..255 zero.
func buildLUT(m float32) *[256][5]float32 {
	var tab [256][5]float32
	levels := [3]float32{m * -1, m * 0, m * 1}
	for b := 0; b < 243; b++ {
		x := b
		for k := 4; k >= 0; k-- {
			tab[b][k] = levels[x%3]
			x /= 3
		}
	}
	return &tab
}

func refAddLiterals(tab *[256][5]float32, body []byte, dst []float32) int {
	nb := 0
	for nb < len(body) && (nb+1)*5 <= len(dst) {
		b := body[nb]
		if b > maxLiteral {
			break
		}
		for k := 0; k < 5; k++ {
			dst[nb*5+k] += tab[b][k]
		}
		nb++
	}
	return nb
}

func refSetLiterals(tab *[256][5]float32, body []byte, dst []float32) int {
	nb := 0
	for nb < len(body) && (nb+1)*5 <= len(dst) {
		b := body[nb]
		if b > maxLiteral {
			break
		}
		for k := 0; k < 5; k++ {
			dst[nb*5+k] = tab[b][k]
		}
		nb++
	}
	return nb
}

func literalBodies(rng *rand.Rand) [][]byte {
	bodies := [][]byte{
		nil,
		{0}, {242}, {243}, {255},
		{1, 2, 3}, {1, 2, 3, 4}, {1, 2, 3, 4, 5},
		{10, 20, 250, 30}, {10, 20, 30, 250}, {250, 1, 2, 3},
	}
	long := make([]byte, 300)
	for i := range long {
		long[i] = byte(rng.Intn(256))
	}
	bodies = append(bodies, long)
	allLit := make([]byte, 301)
	for i := range allLit {
		allLit[i] = byte(rng.Intn(243))
	}
	bodies = append(bodies, allLit)
	return bodies
}

func testLiteralForms(t *testing.T, name string, m float32,
	got func(*[256][5]float32, []byte, []float32) int,
	want func(*[256][5]float32, []byte, []float32) int) {
	t.Helper()
	rng := rand.New(rand.NewSource(3))
	tab := buildLUT(m)
	for _, body := range literalBodies(rng) {
		for _, dstGroups := range []int{0, 1, 3, 4, 5, len(body), len(body) + 2} {
			dst := make([]float32, dstGroups*5)
			fillMixed(rng, dst)
			ref := append([]float32(nil), dst...)
			wantN := want(tab, body, ref)
			gotN := got(tab, body, dst)
			if gotN != wantN {
				t.Fatalf("%s m=%v len(body)=%d groups=%d: consumed %d, want %d", name, m, len(body), dstGroups, gotN, wantN)
			}
			for i := range dst {
				if !eqf(dst[i], ref[i]) {
					t.Fatalf("%s m=%v len(body)=%d groups=%d: dst[%d] %x != %x", name, m, len(body), dstGroups, i, math.Float32bits(dst[i]), math.Float32bits(ref[i]))
				}
			}
		}
	}
}

func TestScaledLiteralsMatchScalar(t *testing.T) {
	for _, m := range []float32{1.5, 0.25, float32(math.Inf(1)), float32(math.NaN()), math.Float32frombits(0x80000000)} {
		testLiteralForms(t, "add", m, AddScaledLiterals, refAddLiterals)
		testLiteralForms(t, "set", m, SetScaledLiterals, refSetLiterals)
	}
}

func TestFillsMatchScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{0, 1, 7, 8, 9, 100} {
		for _, v := range []float32{0.5, float32(math.NaN()), float32(math.Inf(-1)), math.Float32frombits(0x80000000)} {
			dst := make([]float32, n)
			fillMixed(rng, dst)
			ref := append([]float32(nil), dst...)
			for i := range ref {
				ref[i] += v
			}
			AddFill(dst, v)
			for i := range dst {
				if !eqf(dst[i], ref[i]) {
					t.Fatalf("AddFill n=%d v=%v: dst[%d] %x != %x", n, v, i, math.Float32bits(dst[i]), math.Float32bits(ref[i]))
				}
			}
			SetFill(dst, v)
			for i := range dst {
				if math.Float32bits(dst[i]) != math.Float32bits(v) {
					t.Fatalf("SetFill n=%d v=%v: dst[%d] = %x", n, v, i, math.Float32bits(dst[i]))
				}
			}
		}
	}
}

func TestDetectDoesNotPanic(t *testing.T) {
	f := Detect()
	t.Logf("features: %+v, HasAsm=%v", f, HasAsm)
}
