package simd

// HasAsm reports whether the assembly fast paths are compiled into this
// binary. They additionally require AVX2 at runtime (Detect().AVX2).
const HasAsm = true

//go:noescape
func quantPackBlocks(buf *float32, out *byte, blocks int, tpos, tneg, dqNeg, dqZero, dqPos float32)

//go:noescape
func addScaledLiteralsAsm(tab *[256][5]float32, body *byte, n int, dst *float32) int

//go:noescape
func setScaledLiteralsAsm(tab *[256][5]float32, body *byte, n int, dst *float32) int

// QuantPackBlocks runs the AVX2 fused quantize→residual→quartic-pack over
// blocks of 8 quartic groups (40 elements): for each element of buf it
// computes the ternary digit against ±tpos, subtracts the selected
// dequantization level (dqNeg/dqZero/dqPos) in place, and writes one
// packed quartic byte per group to out. buf must hold blocks*40 elements
// and out blocks*8 bytes. Requires AVX2; callers gate on Detect().AVX2.
//
// Bit-identity with the scalar kernel: the digit compares use the ordered
// predicates GE_OS/LE_OS (false on NaN, like Go's >= and <=), the
// residual subtract keeps buf as operand 1 exactly as the compiled scalar
// SUBSS does (so NaN payload selection matches), and the pack is integer.
func QuantPackBlocks(buf []float32, out []byte, blocks int, tpos, dqNeg, dqZero, dqPos float32) {
	if blocks <= 0 {
		return
	}
	_ = buf[blocks*40-1]
	_ = out[blocks*8-1]
	quantPackBlocks(&buf[0], &out[0], blocks, tpos, -tpos, dqNeg, dqZero, dqPos)
}

// AddScaledLiteralsAsm is the AVX LUT-row form of AddScaledLiterals: one
// 16-byte + 4-byte row load and add per literal byte. Same contract and
// bit-identity as the Go form (dst is operand 1 of every add). Requires
// AVX; callers gate on Detect().AVX2.
func AddScaledLiteralsAsm(tab *[256][5]float32, body []byte, dst []float32) int {
	n := len(body)
	if g := len(dst) / 5; n > g {
		n = g
	}
	if n <= 0 {
		return 0
	}
	return addScaledLiteralsAsm(tab, &body[0], n, &dst[0])
}

// SetScaledLiteralsAsm is the write form of AddScaledLiteralsAsm.
func SetScaledLiteralsAsm(tab *[256][5]float32, body []byte, dst []float32) int {
	n := len(body)
	if g := len(dst) / 5; n > g {
		n = g
	}
	if n <= 0 {
		return 0
	}
	return setScaledLiteralsAsm(tab, &body[0], n, &dst[0])
}
