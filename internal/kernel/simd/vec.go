package simd

import "math"

// maxLiteral is the largest quartic literal byte (encode.MaxQuartic);
// anything above it is a zero-run marker the literal loops must stop at.
// Redeclared here because simd sits below the encode package.
const maxLiteral = 242

func abs32(v float32) float32 {
	return math.Float32frombits(math.Float32bits(v) &^ (1 << 31))
}

// AccMaxAbs is the unrolled form of the fused accumulate+|max| reduction:
// buf[i] += in[i] with a running max|buf| kept in 8 independent
// accumulator chains so the adds, the sign-mask abs, and the compares
// pipeline instead of serializing on one max register. buf must be at
// least as long as in. Bit-identical to the scalar kernel: after the sign
// mask every candidate is non-negative (or NaN, which loses every `>`),
// so the max reduction is exactly associative and any lane split yields
// the same bits.
func AccMaxAbs(buf, in []float32) float32 {
	n := len(in)
	buf = buf[:n]
	var m0, m1, m2, m3, m4, m5, m6, m7 float32
	i := 0
	for ; i+8 <= n; i += 8 {
		b := buf[i : i+8 : i+8]
		v := in[i : i+8 : i+8]
		s0 := b[0] + v[0]
		s1 := b[1] + v[1]
		s2 := b[2] + v[2]
		s3 := b[3] + v[3]
		s4 := b[4] + v[4]
		s5 := b[5] + v[5]
		s6 := b[6] + v[6]
		s7 := b[7] + v[7]
		b[0], b[1], b[2], b[3] = s0, s1, s2, s3
		b[4], b[5], b[6], b[7] = s4, s5, s6, s7
		if a := abs32(s0); a > m0 {
			m0 = a
		}
		if a := abs32(s1); a > m1 {
			m1 = a
		}
		if a := abs32(s2); a > m2 {
			m2 = a
		}
		if a := abs32(s3); a > m3 {
			m3 = a
		}
		if a := abs32(s4); a > m4 {
			m4 = a
		}
		if a := abs32(s5); a > m5 {
			m5 = a
		}
		if a := abs32(s6); a > m6 {
			m6 = a
		}
		if a := abs32(s7); a > m7 {
			m7 = a
		}
	}
	for ; i < n; i++ {
		s := buf[i] + in[i]
		buf[i] = s
		if a := abs32(s); a > m0 {
			m0 = a
		}
	}
	if m1 > m0 {
		m0 = m1
	}
	if m2 > m0 {
		m0 = m2
	}
	if m3 > m0 {
		m0 = m3
	}
	if m4 > m0 {
		m0 = m4
	}
	if m5 > m0 {
		m0 = m5
	}
	if m6 > m0 {
		m0 = m6
	}
	if m7 > m0 {
		m0 = m7
	}
	return m0
}

// MaxAbs is the unrolled 8-chain |max| reduction, bit-identical to the
// scalar kernel by the same associativity argument as AccMaxAbs.
func MaxAbs(data []float32) float32 {
	n := len(data)
	var m0, m1, m2, m3, m4, m5, m6, m7 float32
	i := 0
	for ; i+8 <= n; i += 8 {
		v := data[i : i+8 : i+8]
		if a := abs32(v[0]); a > m0 {
			m0 = a
		}
		if a := abs32(v[1]); a > m1 {
			m1 = a
		}
		if a := abs32(v[2]); a > m2 {
			m2 = a
		}
		if a := abs32(v[3]); a > m3 {
			m3 = a
		}
		if a := abs32(v[4]); a > m4 {
			m4 = a
		}
		if a := abs32(v[5]); a > m5 {
			m5 = a
		}
		if a := abs32(v[6]); a > m6 {
			m6 = a
		}
		if a := abs32(v[7]); a > m7 {
			m7 = a
		}
	}
	for ; i < n; i++ {
		if a := abs32(data[i]); a > m0 {
			m0 = a
		}
	}
	if m1 > m0 {
		m0 = m1
	}
	if m2 > m0 {
		m0 = m2
	}
	if m3 > m0 {
		m0 = m3
	}
	if m4 > m0 {
		m0 = m4
	}
	if m5 > m0 {
		m0 = m5
	}
	if m6 > m0 {
		m0 = m6
	}
	if m7 > m0 {
		m0 = m7
	}
	return m0
}

// AddScaledLiterals consumes a run of literal quartic bytes from body,
// accumulating tab[b] rows into dst 4 bytes (20 floats) per iteration,
// and returns the number of bytes consumed. It stops at the first
// zero-run marker byte (> maxLiteral) or when body or full groups of dst
// run out; the caller handles markers, partial tail groups, and resumes.
// Each consumed byte k does dst[5k+j] += tab[b][j] in index order, so the
// result is bit-identical to the scalar per-byte loop.
func AddScaledLiterals(tab *[256][5]float32, body []byte, dst []float32) int {
	nb := 0
	for nb+4 <= len(body) && (nb+4)*5 <= len(dst) {
		b0 := body[nb]
		b1 := body[nb+1]
		b2 := body[nb+2]
		b3 := body[nb+3]
		if b0 > maxLiteral || b1 > maxLiteral || b2 > maxLiteral || b3 > maxLiteral {
			break
		}
		d := dst[nb*5 : nb*5+20 : nb*5+20]
		r0, r1, r2, r3 := &tab[b0], &tab[b1], &tab[b2], &tab[b3]
		d[0] += r0[0]
		d[1] += r0[1]
		d[2] += r0[2]
		d[3] += r0[3]
		d[4] += r0[4]
		d[5] += r1[0]
		d[6] += r1[1]
		d[7] += r1[2]
		d[8] += r1[3]
		d[9] += r1[4]
		d[10] += r2[0]
		d[11] += r2[1]
		d[12] += r2[2]
		d[13] += r2[3]
		d[14] += r2[4]
		d[15] += r3[0]
		d[16] += r3[1]
		d[17] += r3[2]
		d[18] += r3[3]
		d[19] += r3[4]
		nb += 4
	}
	for nb < len(body) && (nb+1)*5 <= len(dst) {
		b := body[nb]
		if b > maxLiteral {
			break
		}
		d := dst[nb*5 : nb*5+5 : nb*5+5]
		r := &tab[b]
		d[0] += r[0]
		d[1] += r[1]
		d[2] += r[2]
		d[3] += r[3]
		d[4] += r[4]
		nb++
	}
	return nb
}

// SetScaledLiterals is the write (first-decode) form of
// AddScaledLiterals: dst[5k+j] = tab[b][j] instead of +=.
func SetScaledLiterals(tab *[256][5]float32, body []byte, dst []float32) int {
	nb := 0
	for nb+4 <= len(body) && (nb+4)*5 <= len(dst) {
		b0 := body[nb]
		b1 := body[nb+1]
		b2 := body[nb+2]
		b3 := body[nb+3]
		if b0 > maxLiteral || b1 > maxLiteral || b2 > maxLiteral || b3 > maxLiteral {
			break
		}
		d := dst[nb*5 : nb*5+20 : nb*5+20]
		r0, r1, r2, r3 := &tab[b0], &tab[b1], &tab[b2], &tab[b3]
		d[0] = r0[0]
		d[1] = r0[1]
		d[2] = r0[2]
		d[3] = r0[3]
		d[4] = r0[4]
		d[5] = r1[0]
		d[6] = r1[1]
		d[7] = r1[2]
		d[8] = r1[3]
		d[9] = r1[4]
		d[10] = r2[0]
		d[11] = r2[1]
		d[12] = r2[2]
		d[13] = r2[3]
		d[14] = r2[4]
		d[15] = r3[0]
		d[16] = r3[1]
		d[17] = r3[2]
		d[18] = r3[3]
		d[19] = r3[4]
		nb += 4
	}
	for nb < len(body) && (nb+1)*5 <= len(dst) {
		b := body[nb]
		if b > maxLiteral {
			break
		}
		d := dst[nb*5 : nb*5+5 : nb*5+5]
		r := &tab[b]
		d[0] = r[0]
		d[1] = r[1]
		d[2] = r[2]
		d[3] = r[3]
		d[4] = r[4]
		nb++
	}
	return nb
}

// AddFill does dst[i] += v, 8-wide unrolled (zero-run region fills).
func AddFill(dst []float32, v float32) {
	i := 0
	for ; i+8 <= len(dst); i += 8 {
		d := dst[i : i+8 : i+8]
		d[0] += v
		d[1] += v
		d[2] += v
		d[3] += v
		d[4] += v
		d[5] += v
		d[6] += v
		d[7] += v
	}
	for ; i < len(dst); i++ {
		dst[i] += v
	}
}

// SetFill does dst[i] = v, 8-wide unrolled.
func SetFill(dst []float32, v float32) {
	i := 0
	for ; i+8 <= len(dst); i += 8 {
		d := dst[i : i+8 : i+8]
		d[0] = v
		d[1] = v
		d[2] = v
		d[3] = v
		d[4] = v
		d[5] = v
		d[6] = v
		d[7] = v
	}
	for ; i < len(dst); i++ {
		dst[i] = v
	}
}
