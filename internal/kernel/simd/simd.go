// Package simd holds the hand-vectorized cores behind the kernel
// package's CPU-feature-dispatched registry (kernel dispatch, PR 6 of the
// roadmap): explicitly unrolled, branch-minimized Go forms of the three
// hot inner loops — the fused accumulate+|max| reduction, the ternary
// quantize→quartic-pack encode, and the 243-entry LUT decode-add — plus
// amd64 assembly fast paths for the byte-level pack and LUT loops, where
// pure Go cannot reach the instruction shapes the loops need (packed
// compares, byte shuffles, 20-byte row copies).
//
// Every core is bit-identical to the scalar kernels in package kernel for
// every input — including ±Inf, negative zero, and denormals — with one
// precisely-bounded exception: when BOTH operands of an accumulate are
// NaN, the surviving payload is whichever operand the hardware add kept,
// and Go itself does not pin ADDSS operand order between differently
// shaped code bodies (SSA canonicalization commutes float adds), so the
// payload may differ between tiers. NaN-ness itself is exact, a NaN slot
// always quantizes to the zero digit, and wire bytes therefore remain
// byte-identical for every input on every tier; only the payload bits of
// floats that are NaN on all tiers can vary. The kernel package's
// differential fuzz oracles sweep all tiers under exactly this relation.
//
// This package has no dispatch logic of its own: it exposes raw cores and
// the Features report, and package kernel decides which core runs
// (THREELC_KERNEL / cpuid; see kernel.SetTier).
package simd

// Features reports the CPU capabilities the kernel dispatch consults.
// On amd64 it is populated from CPUID/XGETBV at Detect time; on other
// architectures every field is false and the dispatch stays on the
// portable tiers.
type Features struct {
	// AVX2 is true when the CPU and OS support 256-bit AVX2 integer and
	// float vectors (CPUID leaf 7 AVX2, leaf 1 AVX+OSXSAVE, and XCR0
	// enabling XMM+YMM state) — the x86-64-v3 baseline the assembly fast
	// paths require.
	AVX2 bool
}

// Detect probes the CPU once and returns its feature report. It is cheap
// enough to call repeatedly (two CPUID leaves and one XGETBV), but the
// kernel package calls it once at init.
func Detect() Features {
	return detect()
}
