//go:build !amd64

package simd

// HasAsm reports whether the assembly fast paths are compiled into this
// binary; on non-amd64 the dispatch never selects the asm tier, so these
// stubs are unreachable.
const HasAsm = false

func QuantPackBlocks(buf []float32, out []byte, blocks int, tpos, dqNeg, dqZero, dqPos float32) {
	panic("simd: no assembly kernels on this architecture")
}

func AddScaledLiteralsAsm(tab *[256][5]float32, body []byte, dst []float32) int {
	panic("simd: no assembly kernels on this architecture")
}

func SetScaledLiteralsAsm(tab *[256][5]float32, body []byte, dst []float32) int {
	panic("simd: no assembly kernels on this architecture")
}
