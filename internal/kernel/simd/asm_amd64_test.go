package simd

import (
	"math"
	"math/rand"
	"testing"
)

// refQuantPack mirrors the scalar kernel's quantize→residual→pack loop
// over full quartic groups: two independent threshold compares (so NaN
// quantizes to the zero digit), residual via v - dq[q] with v first, and
// the quartic byte folded most-significant-digit-first.
func refQuantPack(buf []float32, out []byte, groups int, tpos, dqNeg, dqZero, dqPos float32) {
	for g := 0; g < groups; g++ {
		b := 0
		for k := 0; k < 5; k++ {
			v := buf[g*5+k]
			q := 1
			d := dqZero
			if v >= tpos {
				q = 2
				d = dqPos
			}
			if v <= -tpos {
				q = 0
				d = dqNeg
			}
			buf[g*5+k] = v - d
			b = b*3 + q
		}
		out[g] = byte(b)
	}
}

func TestQuantPackBlocksMatchesScalar(t *testing.T) {
	if !Detect().AVX2 {
		t.Skip("no AVX2")
	}
	rng := rand.New(rand.NewSource(7))
	type mcase struct{ tpos, dqNeg, dqZero, dqPos float32 }
	inf := float32(math.Inf(1))
	cases := []mcase{
		{0.5, -1.5, 0, 1.5},
		{1e-30, -2e-30, 0, 2e-30},
		{float32(math.NaN()), -1, 0, 1},
		{0.5, -inf, float32(math.NaN()), inf},
	}
	for _, mc := range cases {
		for _, blocks := range []int{1, 2, 3, 7} {
			n := blocks * 40
			buf := make([]float32, n)
			fillMixed(rng, buf)
			refBuf := append([]float32(nil), buf...)
			out := make([]byte, blocks*8)
			refOut := make([]byte, blocks*8)
			refQuantPack(refBuf, refOut, blocks*8, mc.tpos, mc.dqNeg, mc.dqZero, mc.dqPos)
			QuantPackBlocks(buf, out, blocks, mc.tpos, mc.dqNeg, mc.dqZero, mc.dqPos)
			for g := range out {
				if out[g] != refOut[g] {
					t.Fatalf("tpos=%v blocks=%d: byte %d = %d, want %d", mc.tpos, blocks, g, out[g], refOut[g])
				}
			}
			for i := range buf {
				if !eqf(buf[i], refBuf[i]) {
					t.Fatalf("tpos=%v blocks=%d: residual[%d] %x != %x (v=%x)", mc.tpos, blocks, i, math.Float32bits(buf[i]), math.Float32bits(refBuf[i]), math.Float32bits(refBuf[i]))
				}
			}
		}
	}
}

func TestScaledLiteralsAsmMatchesScalar(t *testing.T) {
	if !Detect().AVX2 {
		t.Skip("no AVX2")
	}
	for _, m := range []float32{1.5, 0.25, float32(math.Inf(1)), float32(math.NaN()), math.Float32frombits(0x80000000)} {
		testLiteralForms(t, "asm-add", m, AddScaledLiteralsAsm, refAddLiterals)
		testLiteralForms(t, "asm-set", m, SetScaledLiteralsAsm, refSetLiterals)
	}
}
