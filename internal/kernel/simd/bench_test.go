package simd

import (
	"math/rand"
	"testing"
)

func BenchmarkAccMaxAbs1M(b *testing.B) {
	n := 1 << 20
	buf := make([]float32, n)
	in := make([]float32, n)
	rng := rand.New(rand.NewSource(1))
	for i := range in {
		in[i] = float32(rng.NormFloat64())
	}
	b.SetBytes(int64(12 * n)) // read buf+in, write buf
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AccMaxAbs(buf, in)
	}
}

func BenchmarkQuantPackBlocks1M(b *testing.B) {
	if !Detect().AVX2 {
		b.Skip("no AVX2")
	}
	n := 1 << 20
	buf := make([]float32, n)
	rng := rand.New(rand.NewSource(1))
	for i := range buf {
		buf[i] = float32(rng.NormFloat64())
	}
	out := make([]byte, n/5+1)
	blocks := n / 40
	b.SetBytes(int64(8 * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		QuantPackBlocks(buf, out, blocks, 0.7, -1.2, 0, 1.2)
	}
}

func BenchmarkAddScaledLiterals1M(b *testing.B) {
	n := 1 << 20
	body := make([]byte, n/5)
	rng := rand.New(rand.NewSource(1))
	for i := range body {
		body[i] = byte(rng.Intn(243))
	}
	dst := make([]float32, n)
	tab := buildLUT(1.5)
	b.SetBytes(int64(8 * n))
	b.Run("go", func(b *testing.B) {
		b.SetBytes(int64(8 * n))
		for i := 0; i < b.N; i++ {
			AddScaledLiterals(tab, body, dst)
		}
	})
	if HasAsm && Detect().AVX2 {
		b.Run("asm", func(b *testing.B) {
			b.SetBytes(int64(8 * n))
			for i := 0; i < b.N; i++ {
				AddScaledLiteralsAsm(tab, body, dst)
			}
		})
	}
}
