//go:build !amd64

package simd

// detect on non-amd64 architectures reports no vector features: the
// kernel dispatch stays on the portable scalar/vec tiers.
func detect() Features {
	return Features{}
}
