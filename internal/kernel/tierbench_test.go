package kernel

import (
	"testing"

	"threelc/internal/tensor"
)

// Tier-sweep benchmarks for the dispatched kernel registry: the same
// workload on each available tier, so benchcheck can gate the vectorized
// and assembly tiers against the scalar reference by name
// (EncodeTernaryKernel/asm vs EncodeTernaryKernel/scalar, etc.). Serial
// kernels: 0 allocs/op under -benchmem.

// BenchmarkEncodeTernaryKernel measures the fused ternary
// quantize→pack→zero-run encode pass at 1M elements per tier. The encode
// consumes the accumulated buffer (it leaves the residual behind), so
// each iteration restores the buffer from a snapshot outside the timer.
func BenchmarkEncodeTernaryKernel(b *testing.B) {
	const n = 1 << 20
	orig := ActiveTier()
	defer SetTier(orig)
	in := tensor.New(n)
	fillRand(in, 1, 0.01)
	snapshot := make([]float32, n)
	m := float64(AccumulateMaxAbs(snapshot, in.Data())) * 1.75
	buf := make([]float32, n)
	var wire []byte
	for _, tier := range AvailableTiers() {
		b.Run(tier.String()+"/1M", func(b *testing.B) {
			SetTier(tier)
			copy(buf, snapshot)
			wire = EncodeTernary(buf, m, true, wire[:0]) // converge wire capacity
			b.SetBytes(4 * int64(n))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				copy(buf, snapshot)
				b.StartTimer()
				wire = EncodeTernary(buf, m, true, wire[:0])
			}
		})
	}
}

// BenchmarkDecodeAddKernel measures the LUT decode-accumulate pass at 1M
// elements per tier (the server-side aggregation inner loop).
func BenchmarkDecodeAddKernel(b *testing.B) {
	const n = 1 << 20
	orig := ActiveTier()
	defer SetTier(orig)
	buf := make([]float32, n)
	in := tensor.New(n)
	fillRand(in, 2, 0.01)
	m := float64(AccumulateMaxAbs(buf, in.Data())) * 1.75
	wire := EncodeTernary(buf, m, true, nil)
	acc := make([]float32, n)
	for _, tier := range AvailableTiers() {
		b.Run(tier.String()+"/1M", func(b *testing.B) {
			SetTier(tier)
			if err := DecodeTernaryAdd(wire, true, float32(m), acc); err != nil {
				b.Fatal(err) // also warms the ScaledLUT pool
			}
			b.SetBytes(4 * int64(n))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := DecodeTernaryAdd(wire, true, float32(m), acc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAccumulateMaxAbsKernel measures the fused error-accumulate +
// |max| reduction at 1M elements per tier (compress pass 1).
func BenchmarkAccumulateMaxAbsKernel(b *testing.B) {
	const n = 1 << 20
	orig := ActiveTier()
	defer SetTier(orig)
	in := tensor.New(n)
	fillRand(in, 3, 0.01)
	buf := make([]float32, n)
	for _, tier := range AvailableTiers() {
		b.Run(tier.String()+"/1M", func(b *testing.B) {
			SetTier(tier)
			b.SetBytes(4 * int64(n))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				AccumulateMaxAbs(buf, in.Data())
			}
		})
	}
}
