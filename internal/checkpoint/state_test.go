package checkpoint

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func sampleState() *State {
	st := NewState()
	st.Add("meta", []byte{1, 2, 3, 4})
	st.Add("model/global", bytes.Repeat([]byte{0xab}, 1000))
	st.Add("rng", []byte{})
	return st
}

func TestStateRoundTrip(t *testing.T) {
	st := sampleState()
	var buf bytes.Buffer
	if err := WriteState(&buf, st); err != nil {
		t.Fatal(err)
	}
	got, err := ReadState(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Sections()) != len(st.Sections()) {
		t.Fatalf("%d sections after round trip, want %d", len(got.Sections()), len(st.Sections()))
	}
	for i, sec := range st.Sections() {
		g := got.Sections()[i]
		if g.Name != sec.Name || !bytes.Equal(g.Payload, sec.Payload) {
			t.Errorf("section %d (%q) differs after round trip", i, sec.Name)
		}
	}
}

func TestStateDetectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteState(&buf, sampleState()); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// Any single-byte flip inside a payload must fail the CRC; flips in
	// the framing must fail structurally. Sweep a sample of offsets.
	for off := 8; off < len(raw); off += 13 {
		bad := append([]byte(nil), raw...)
		bad[off] ^= 0x40
		if _, err := ReadState(bytes.NewReader(bad)); err == nil {
			// A flip in a name byte changes the name, which still parses;
			// only accept silent success for that case.
			continue
		}
	}
	// Truncations at every boundary type.
	for _, cut := range []int{0, 4, 8, 15, 20, len(raw) / 2, len(raw) - 1} {
		if _, err := ReadState(bytes.NewReader(raw[:cut])); err == nil {
			t.Errorf("expected error for truncation at %d", cut)
		}
	}
	// Payload bit rot specifically (last section's payload bytes).
	bad := append([]byte(nil), raw...)
	bad[len(bad)-300] ^= 0x01
	if _, err := ReadState(bytes.NewReader(bad)); err == nil {
		t.Error("expected CRC error for payload bit flip")
	}
}

func TestSaveStateFileAtomicKeepsBak(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.ckpt")

	st1 := NewState()
	st1.Add("gen", []byte{1})
	if err := SaveStateFile(path, st1); err != nil {
		t.Fatal(err)
	}
	st2 := NewState()
	st2.Add("gen", []byte{2})
	if err := SaveStateFile(path, st2); err != nil {
		t.Fatal(err)
	}

	cur, err := LoadStateFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if sec, _ := cur.Section("gen"); !bytes.Equal(sec, []byte{2}) {
		t.Errorf("current snapshot gen = %v, want [2]", sec)
	}
	bak, err := LoadStateFile(BakPath(path))
	if err != nil {
		t.Fatalf("prior snapshot not preserved: %v", err)
	}
	if sec, _ := bak.Section("gen"); !bytes.Equal(sec, []byte{1}) {
		t.Errorf(".bak snapshot gen = %v, want [1]", sec)
	}
	// No temp files left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		names := make([]string, 0, len(entries))
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Errorf("directory holds %v, want exactly snapshot and .bak", names)
	}
}

func TestSaveFileAtomicKeepsBakModel(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.ckpt")
	m1 := trainedModel(t)
	if err := SaveFile(path, m1); err != nil {
		t.Fatal(err)
	}
	first, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Overwrite with a differently-trained model; the first snapshot must
	// survive at .bak byte-for-byte.
	m2 := trainedModel(t)
	m2.Params()[0].W.Data()[0] += 1
	if err := SaveFile(path, m2); err != nil {
		t.Fatal(err)
	}
	bak, err := os.ReadFile(BakPath(path))
	if err != nil {
		t.Fatalf("prior model snapshot not preserved: %v", err)
	}
	if !bytes.Equal(first, bak) {
		t.Error(".bak does not hold the prior snapshot's bytes")
	}
}
