// Full-training-state checkpoints (format v2). The v1 format (Save/Load)
// captures a model's weights; v2 wraps arbitrary named sections so a
// training run can snapshot EVERYTHING its bit-identical resume needs:
// model replicas, optimizer momentum, every codec's error-accumulation
// state, RNG stream positions, and the step counter. Package train
// assembles and consumes the sections; this file owns only the container.
//
// Format (all little-endian):
//
//	magic "3LCCKPT2"
//	u32 format version (currently 1)
//	u32 section count
//	per section:
//	  u16 nameLen, name
//	  u32 CRC-32 (IEEE) of payload
//	  u64 payloadLen, payload
//
// Every section is length-prefixed and CRC-checked: truncation, bit rot,
// and splices are detected at read time and returned as errors — a
// corrupt checkpoint can never be silently restored (FuzzCheckpointLoad
// pins the never-panic contract).
package checkpoint

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

var stateMagic = [8]byte{'3', 'L', 'C', 'C', 'K', 'P', 'T', '2'}

// StateVersion is the current v2 format generation. Incompatible layout
// changes must bump it; readers reject versions they do not know.
const StateVersion = 1

// Section caps, bounding what a corrupt length prefix can make the reader
// allocate.
const (
	maxSectionName  = 1 << 10
	maxSectionBytes = 1 << 30
	maxSections     = 1 << 16
)

// Section is one named payload of a full-state checkpoint.
type Section struct {
	Name    string
	Payload []byte
}

// State is an ordered collection of named sections — one full training
// snapshot. Order is preserved and serialized, so identical snapshots
// produce identical bytes.
type State struct {
	sections []Section
	index    map[string]int
}

// NewState returns an empty snapshot.
func NewState() *State {
	return &State{index: make(map[string]int)}
}

// Add appends a section. Adding a name twice replaces the payload (the
// checkpoint writer runs once per snapshot, so this is defensive).
func (st *State) Add(name string, payload []byte) {
	if i, ok := st.index[name]; ok {
		st.sections[i].Payload = payload
		return
	}
	st.index[name] = len(st.sections)
	st.sections = append(st.sections, Section{Name: name, Payload: payload})
}

// Section returns the payload stored under name.
func (st *State) Section(name string) ([]byte, bool) {
	i, ok := st.index[name]
	if !ok {
		return nil, false
	}
	return st.sections[i].Payload, true
}

// Sections returns the sections in insertion order.
func (st *State) Sections() []Section { return st.sections }

// WriteState serializes st to w.
func WriteState(w io.Writer, st *State) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(stateMagic[:]); err != nil {
		return err
	}
	var b8 [8]byte
	le := binary.LittleEndian
	le.PutUint32(b8[:4], StateVersion)
	le.PutUint32(b8[4:], uint32(len(st.sections)))
	if _, err := bw.Write(b8[:]); err != nil {
		return err
	}
	for _, sec := range st.sections {
		if len(sec.Name) == 0 || len(sec.Name) > maxSectionName {
			return fmt.Errorf("checkpoint: bad section name length %d", len(sec.Name))
		}
		if len(sec.Payload) > maxSectionBytes {
			return fmt.Errorf("checkpoint: section %q payload %d bytes exceeds limit", sec.Name, len(sec.Payload))
		}
		le.PutUint16(b8[:2], uint16(len(sec.Name)))
		if _, err := bw.Write(b8[:2]); err != nil {
			return err
		}
		if _, err := bw.WriteString(sec.Name); err != nil {
			return err
		}
		le.PutUint32(b8[:4], crc32.ChecksumIEEE(sec.Payload))
		if _, err := bw.Write(b8[:4]); err != nil {
			return err
		}
		le.PutUint64(b8[:], uint64(len(sec.Payload)))
		if _, err := bw.Write(b8[:]); err != nil {
			return err
		}
		if _, err := bw.Write(sec.Payload); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadState parses a v2 checkpoint. Malformed input — bad magic, unknown
// version, truncation, CRC mismatch, implausible lengths — returns an
// error; ReadState never panics and never returns a partially-checked
// state.
//
//3lc:decode
func ReadState(r io.Reader) (*State, error) {
	br := bufio.NewReader(r)
	le := binary.LittleEndian
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("checkpoint: reading state header: %w", err)
	}
	if [8]byte(hdr[:8]) != stateMagic {
		return nil, fmt.Errorf("checkpoint: bad state magic %q", hdr[:8])
	}
	if v := le.Uint32(hdr[8:12]); v != StateVersion {
		return nil, fmt.Errorf("checkpoint: unsupported state version %d (have %d)", v, StateVersion)
	}
	count := int(le.Uint32(hdr[12:16]))
	if count > maxSections {
		return nil, fmt.Errorf("checkpoint: implausible section count %d", count)
	}
	st := NewState()
	var b8 [8]byte
	for i := 0; i < count; i++ {
		if _, err := io.ReadFull(br, b8[:2]); err != nil {
			return nil, fmt.Errorf("checkpoint: section %d: %w", i, err)
		}
		nameLen := int(le.Uint16(b8[:2]))
		if nameLen == 0 || nameLen > maxSectionName {
			return nil, fmt.Errorf("checkpoint: section %d: bad name length %d", i, nameLen)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(br, name); err != nil {
			return nil, fmt.Errorf("checkpoint: section %d name: %w", i, err)
		}
		if _, err := io.ReadFull(br, b8[:4]); err != nil {
			return nil, fmt.Errorf("checkpoint: section %q CRC: %w", name, err)
		}
		wantCRC := le.Uint32(b8[:4])
		if _, err := io.ReadFull(br, b8[:]); err != nil {
			return nil, fmt.Errorf("checkpoint: section %q length: %w", name, err)
		}
		size := le.Uint64(b8[:])
		if size > maxSectionBytes {
			return nil, fmt.Errorf("checkpoint: section %q payload %d bytes exceeds limit", name, size)
		}
		payload, err := readPayload(br, int(size))
		if err != nil {
			return nil, fmt.Errorf("checkpoint: section %q payload: %w", name, err)
		}
		if got := crc32.ChecksumIEEE(payload); got != wantCRC {
			return nil, fmt.Errorf("checkpoint: section %q CRC mismatch (%#x != %#x)", name, got, wantCRC)
		}
		if _, dup := st.Section(string(name)); dup {
			return nil, fmt.Errorf("checkpoint: duplicate section %q", name)
		}
		st.Add(string(name), payload)
	}
	return st, nil
}

// readPayload reads exactly n bytes, growing the buffer in bounded chunks
// so a corrupt length prefix on a truncated file fails with a read error
// before a large allocation, not after.
//
//3lc:decode
func readPayload(r io.Reader, n int) ([]byte, error) {
	const chunk = 1 << 20
	buf := make([]byte, 0, min(n, chunk))
	for len(buf) < n {
		step := min(n-len(buf), chunk)
		start := len(buf)
		buf = append(buf, make([]byte, step)...)
		if _, err := io.ReadFull(r, buf[start:]); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// SaveStateFile atomically writes a full-state checkpoint to path (see
// writeFileAtomic: temp file + fsync + rename, prior snapshot kept as
// path.bak).
func SaveStateFile(path string, st *State) error {
	return writeFileAtomic(path, func(w io.Writer) error { return WriteState(w, st) })
}

// LoadStateFile reads a full-state checkpoint from path.
func LoadStateFile(path string) (*State, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadState(f)
}

// BakPath returns the sibling path the previous snapshot is preserved at
// by the atomic save.
func BakPath(path string) string { return path + ".bak" }

// writeFileAtomic writes via `write` into a temp file in path's directory,
// fsyncs it, preserves any existing snapshot as path.bak, and renames the
// temp file over path. A crash at any point leaves either the old
// checkpoint at path or the new one — never a torn file: the classic
// os.Create-in-place save window (old bytes destroyed before the new ones
// are durable) does not exist.
func writeFileAtomic(path string, write func(w io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := write(tmp); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	// Preserve the previous good snapshot. The hard link keeps `path`
	// present at every instant; the rename fallback (filesystems without
	// link support) opens a brief window where only the .bak name exists,
	// which recovery tooling must probe — still never a torn file.
	if _, err := os.Stat(path); err == nil {
		bak := BakPath(path)
		os.Remove(bak)
		if err := os.Link(path, bak); err != nil {
			if err := os.Rename(path, bak); err != nil {
				os.Remove(tmpName)
				return err
			}
		}
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	// Make the rename itself durable (best-effort: not all platforms
	// support fsync on directories).
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}
