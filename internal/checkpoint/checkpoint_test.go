package checkpoint

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"threelc/internal/nn"
	"threelc/internal/tensor"
)

func trainedModel(t *testing.T) *nn.Model {
	t.Helper()
	m := nn.NewMLP(6, []int{5}, 3, 7)
	rng := tensor.NewRNG(9)
	x := tensor.New(8, 6)
	tensor.FillNormal(x, 1, rng)
	labels := []int{0, 1, 2, 0, 1, 2, 0, 1}
	for i := 0; i < 5; i++ {
		m.TrainStep(x, labels)
		for _, p := range m.Params() {
			p.W.AXPY(-0.1, p.G)
		}
	}
	return m
}

func TestSaveLoadRoundTrip(t *testing.T) {
	src := trainedModel(t)
	var buf bytes.Buffer
	if err := Save(&buf, src); err != nil {
		t.Fatal(err)
	}

	dst := nn.NewMLP(6, []int{5}, 3, 999) // different init
	if err := Load(&buf, dst); err != nil {
		t.Fatal(err)
	}

	sp, dp := src.Params(), dst.Params()
	for i := range sp {
		if !sp[i].W.Equal(dp[i].W) {
			t.Errorf("parameter %s differs after load", sp[i].Name)
		}
	}

	// Eval-mode outputs must agree exactly (BN stats restored too).
	rng := tensor.NewRNG(10)
	x := tensor.New(4, 6)
	tensor.FillNormal(x, 1, rng)
	ys := src.Net.Forward(x, false)
	yd := dst.Net.Forward(x, false)
	if !ys.Equal(yd) {
		t.Error("eval outputs differ after checkpoint round trip")
	}
}

func TestSaveLoadResNet(t *testing.T) {
	cfg := nn.DefaultMicroResNet()
	cfg.StageChannels = []int{4, 8}
	cfg.ImageSize = 8
	src := nn.NewMicroResNet(cfg)
	rng := tensor.NewRNG(11)
	x := tensor.New(2, 3, 8, 8)
	tensor.FillNormal(x, 1, rng)
	src.TrainStep(x, []int{0, 1})

	var buf bytes.Buffer
	if err := Save(&buf, src); err != nil {
		t.Fatal(err)
	}
	dst := nn.NewMicroResNet(cfg)
	if err := Load(&buf, dst); err != nil {
		t.Fatal(err)
	}
	ys := src.Net.Forward(x, false)
	yd := dst.Net.Forward(x, false)
	if !ys.Equal(yd) {
		t.Error("ResNet eval outputs differ after checkpoint round trip")
	}
}

func TestLoadArchitectureMismatch(t *testing.T) {
	src := trainedModel(t)
	var buf bytes.Buffer
	if err := Save(&buf, src); err != nil {
		t.Fatal(err)
	}
	wrong := nn.NewMLP(6, []int{4}, 3, 1) // different hidden width
	if err := Load(bytes.NewReader(buf.Bytes()), wrong); err == nil {
		t.Error("expected error for architecture mismatch")
	}
}

func TestLoadCorruptData(t *testing.T) {
	src := trainedModel(t)
	var buf bytes.Buffer
	if err := Save(&buf, src); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// Bad magic.
	bad := append([]byte(nil), raw...)
	bad[0] = 'X'
	if err := Load(bytes.NewReader(bad), nn.NewMLP(6, []int{5}, 3, 1)); err == nil {
		t.Error("expected error for bad magic")
	}
	// Truncations at several offsets.
	for _, cut := range []int{4, 12, len(raw) / 2, len(raw) - 3} {
		if err := Load(bytes.NewReader(raw[:cut]), nn.NewMLP(6, []int{5}, 3, 1)); err == nil {
			t.Errorf("expected error for truncation at %d", cut)
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	src := trainedModel(t)
	path := filepath.Join(t.TempDir(), "model.ckpt")
	if err := SaveFile(path, src); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil || info.Size() == 0 {
		t.Fatalf("checkpoint file missing or empty: %v", err)
	}
	dst := nn.NewMLP(6, []int{5}, 3, 2)
	if err := LoadFile(path, dst); err != nil {
		t.Fatal(err)
	}
	if !src.Params()[0].W.Equal(dst.Params()[0].W) {
		t.Error("file round trip lost parameters")
	}
}
