package checkpoint

import (
	"bytes"
	"math"
	"testing"

	"threelc/internal/nn"
)

// FuzzCheckpointLoad feeds arbitrary bytes to both checkpoint readers.
// The contract under fuzz: malformed or truncated input returns an error —
// never a panic — and a failed v1 Load leaves the destination model
// bit-untouched (Load is transactional: parse fully, then commit).
func FuzzCheckpointLoad(f *testing.F) {
	seedModel := nn.NewMLP(6, []int{5}, 3, 7)
	var v1 bytes.Buffer
	if err := Save(&v1, seedModel); err != nil {
		f.Fatal(err)
	}
	f.Add(v1.Bytes())
	st := NewState()
	st.Add("meta", []byte{1, 2, 3})
	st.Add("model/global", v1.Bytes())
	var v2 bytes.Buffer
	if err := WriteState(&v2, st); err != nil {
		f.Fatal(err)
	}
	f.Add(v2.Bytes())
	f.Add([]byte("3LCCKPT1"))
	f.Add([]byte("3LCCKPT2"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		m := nn.NewMLP(6, []int{5}, 3, 42)
		before := snapshotBits(m)
		if err := Load(bytes.NewReader(data), m); err != nil {
			after := snapshotBits(m)
			for i := range before {
				if before[i] != after[i] {
					t.Fatalf("failed Load mutated the model at element %d", i)
				}
			}
		}
		// ReadState must never panic; a parsed state's sections must
		// round-trip back to identical bytes.
		if st, err := ReadState(bytes.NewReader(data)); err == nil {
			var buf bytes.Buffer
			if err := WriteState(&buf, st); err != nil {
				t.Fatalf("re-serializing a parsed state failed: %v", err)
			}
		}
	})
}

// snapshotBits flattens a model's parameters to raw bits for exact
// comparison.
func snapshotBits(m *nn.Model) []uint32 {
	var out []uint32
	for _, p := range m.Params() {
		for _, v := range p.W.Data() {
			out = append(out, math.Float32bits(v))
		}
	}
	return out
}
