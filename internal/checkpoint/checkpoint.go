// Package checkpoint serializes trained models: parameter tensors by name
// plus batch-norm running statistics. A production training system needs
// durable snapshots (the paper's measurement methodology reads "the
// snapshot of the global model" for accuracy evaluation, §5.2); this is
// that mechanism.
//
// Format (all little-endian):
//
//	magic "3LCCKPT1"
//	u32 paramCount
//	per param: u16 nameLen, name, u8 rank, u32 dims..., f32 data...
//	u32 bnCount
//	per BN layer: u32 width, f64 mean..., f64 var...
//
// Batch-norm layers are serialized in model Walk order, so loading
// requires a structurally identical model — the same contract as
// nn.CopyBatchNormStats.
package checkpoint

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"threelc/internal/nn"
)

var magic = [8]byte{'3', 'L', 'C', 'C', 'K', 'P', 'T', '1'}

// Save writes m's parameters and batch-norm statistics to w.
func Save(w io.Writer, m *nn.Model) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	params := m.Params()
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(params))); err != nil {
		return err
	}
	for _, p := range params {
		if len(p.Name) > 1<<16-1 {
			return fmt.Errorf("checkpoint: parameter name %q too long", p.Name)
		}
		if err := binary.Write(bw, binary.LittleEndian, uint16(len(p.Name))); err != nil {
			return err
		}
		if _, err := bw.WriteString(p.Name); err != nil {
			return err
		}
		shape := p.W.Shape()
		if err := bw.WriteByte(byte(len(shape))); err != nil {
			return err
		}
		for _, d := range shape {
			if err := binary.Write(bw, binary.LittleEndian, uint32(d)); err != nil {
				return err
			}
		}
		for _, v := range p.W.Data() {
			if err := binary.Write(bw, binary.LittleEndian, math.Float32bits(v)); err != nil {
				return err
			}
		}
	}

	// Batch-norm running statistics, in Walk order.
	var stats [][2][]float64
	nn.Walk(m.Net, func(l nn.Layer) {
		if mean, variance, ok := bnStats(l); ok {
			stats = append(stats, [2][]float64{mean, variance})
		}
	})
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(stats))); err != nil {
		return err
	}
	for _, s := range stats {
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(s[0]))); err != nil {
			return err
		}
		for _, v := range s[0] {
			if err := binary.Write(bw, binary.LittleEndian, math.Float64bits(v)); err != nil {
				return err
			}
		}
		for _, v := range s[1] {
			if err := binary.Write(bw, binary.LittleEndian, math.Float64bits(v)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Load restores parameters and batch-norm statistics into m, which must
// have the same architecture (parameter names, shapes, BN layout) as the
// model that was saved.
func Load(r io.Reader, m *nn.Model) error {
	br := bufio.NewReader(r)
	var gotMagic [8]byte
	if _, err := io.ReadFull(br, gotMagic[:]); err != nil {
		return fmt.Errorf("checkpoint: reading magic: %w", err)
	}
	if gotMagic != magic {
		return fmt.Errorf("checkpoint: bad magic %q", gotMagic)
	}
	var count uint32
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return err
	}
	params := m.Params()
	byName := make(map[string]*nn.Param, len(params))
	for _, p := range params {
		byName[p.Name] = p
	}
	if int(count) != len(params) {
		return fmt.Errorf("checkpoint: %d parameters, model has %d", count, len(params))
	}
	for i := 0; i < int(count); i++ {
		var nameLen uint16
		if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
			return err
		}
		nameBuf := make([]byte, nameLen)
		if _, err := io.ReadFull(br, nameBuf); err != nil {
			return err
		}
		name := string(nameBuf)
		p, ok := byName[name]
		if !ok {
			return fmt.Errorf("checkpoint: unknown parameter %q", name)
		}
		rank, err := br.ReadByte()
		if err != nil {
			return err
		}
		n := 1
		shape := make([]int, rank)
		for d := range shape {
			var dim uint32
			if err := binary.Read(br, binary.LittleEndian, &dim); err != nil {
				return err
			}
			shape[d] = int(dim)
			n *= int(dim)
		}
		if n != p.W.Len() {
			return fmt.Errorf("checkpoint: parameter %q has %d elements, model wants %d", name, n, p.W.Len())
		}
		data := p.W.Data()
		for j := 0; j < n; j++ {
			var bits uint32
			if err := binary.Read(br, binary.LittleEndian, &bits); err != nil {
				return fmt.Errorf("checkpoint: parameter %q truncated: %w", name, err)
			}
			data[j] = math.Float32frombits(bits)
		}
	}

	var bnCount uint32
	if err := binary.Read(br, binary.LittleEndian, &bnCount); err != nil {
		return err
	}
	var layers []nn.Layer
	nn.Walk(m.Net, func(l nn.Layer) {
		if _, _, ok := bnStats(l); ok {
			layers = append(layers, l)
		}
	})
	if int(bnCount) != len(layers) {
		return fmt.Errorf("checkpoint: %d batch-norm layers, model has %d", bnCount, len(layers))
	}
	for _, l := range layers {
		mean, variance, _ := bnStats(l)
		var width uint32
		if err := binary.Read(br, binary.LittleEndian, &width); err != nil {
			return err
		}
		if int(width) != len(mean) {
			return fmt.Errorf("checkpoint: batch-norm width %d, model wants %d", width, len(mean))
		}
		for j := range mean {
			var bits uint64
			if err := binary.Read(br, binary.LittleEndian, &bits); err != nil {
				return err
			}
			mean[j] = math.Float64frombits(bits)
		}
		for j := range variance {
			var bits uint64
			if err := binary.Read(br, binary.LittleEndian, &bits); err != nil {
				return err
			}
			variance[j] = math.Float64frombits(bits)
		}
	}
	return nil
}

// SaveFile writes a checkpoint to path.
func SaveFile(path string, m *nn.Model) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Save(f, m); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile restores a checkpoint from path.
func LoadFile(path string, m *nn.Model) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return Load(f, m)
}

// bnStats exposes a batch-norm layer's running statistics slices (aliased)
// for serialization.
func bnStats(l nn.Layer) (mean, variance []float64, ok bool) {
	switch t := l.(type) {
	case *nn.BatchNorm1D:
		m, v := t.RunningStats()
		return m, v, true
	case *nn.BatchNorm2D:
		m, v := t.RunningStats()
		return m, v, true
	}
	return nil, nil, false
}
