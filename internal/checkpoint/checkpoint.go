// Package checkpoint serializes trained models: parameter tensors by name
// plus batch-norm running statistics. A production training system needs
// durable snapshots (the paper's measurement methodology reads "the
// snapshot of the global model" for accuracy evaluation, §5.2); this is
// that mechanism.
//
// Format (all little-endian):
//
//	magic "3LCCKPT1"
//	u32 paramCount
//	per param: u16 nameLen, name, u8 rank, u32 dims..., f32 data...
//	u32 bnCount
//	per BN layer: u32 width, f64 mean..., f64 var...
//
// Batch-norm layers are serialized in model Walk order, so loading
// requires a structurally identical model — the same contract as
// nn.CopyBatchNormStats.
package checkpoint

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"threelc/internal/nn"
)

var magic = [8]byte{'3', 'L', 'C', 'C', 'K', 'P', 'T', '1'}

// Save writes m's parameters and batch-norm statistics to w.
func Save(w io.Writer, m *nn.Model) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	params := m.Params()
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(params))); err != nil {
		return err
	}
	for _, p := range params {
		if len(p.Name) > 1<<16-1 {
			return fmt.Errorf("checkpoint: parameter name %q too long", p.Name)
		}
		if err := binary.Write(bw, binary.LittleEndian, uint16(len(p.Name))); err != nil {
			return err
		}
		if _, err := bw.WriteString(p.Name); err != nil {
			return err
		}
		shape := p.W.Shape()
		if err := bw.WriteByte(byte(len(shape))); err != nil {
			return err
		}
		for _, d := range shape {
			if err := binary.Write(bw, binary.LittleEndian, uint32(d)); err != nil {
				return err
			}
		}
		for _, v := range p.W.Data() {
			if err := binary.Write(bw, binary.LittleEndian, math.Float32bits(v)); err != nil {
				return err
			}
		}
	}

	// Batch-norm running statistics, in Walk order.
	var stats [][2][]float64
	nn.Walk(m.Net, func(l nn.Layer) {
		if mean, variance, ok := bnStats(l); ok {
			stats = append(stats, [2][]float64{mean, variance})
		}
	})
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(stats))); err != nil {
		return err
	}
	for _, s := range stats {
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(s[0]))); err != nil {
			return err
		}
		for _, v := range s[0] {
			if err := binary.Write(bw, binary.LittleEndian, math.Float64bits(v)); err != nil {
				return err
			}
		}
		for _, v := range s[1] {
			if err := binary.Write(bw, binary.LittleEndian, math.Float64bits(v)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Load restores parameters and batch-norm statistics into m, which must
// have the same architecture (parameter names, shapes, BN layout) as the
// model that was saved.
//
// Load is transactional: the checkpoint is fully parsed and validated into
// staging buffers before the first byte of the model is modified, so a
// malformed or truncated checkpoint returns an error with the model
// untouched (FuzzCheckpointLoad pins this).
//
//3lc:decode
func Load(r io.Reader, m *nn.Model) error {
	staged, bn, err := parse(r, m)
	if err != nil {
		return err
	}
	params := m.Params()
	var layers []nn.Layer
	nn.Walk(m.Net, func(l nn.Layer) {
		if _, _, ok := bnStats(l); ok {
			layers = append(layers, l)
		}
	})
	// parse stages exactly one entry per parameter and per BN layer; pin
	// that contract here so the copy loops below are visibly in bounds.
	if len(staged) != len(params) || len(bn) != len(layers) {
		return fmt.Errorf("checkpoint: staging mismatch: %d/%d params, %d/%d bn layers",
			len(staged), len(params), len(bn), len(layers))
	}
	for i, p := range params {
		copy(p.W.Data(), staged[i])
	}
	for li, l := range layers {
		mean, variance, _ := bnStats(l)
		copy(mean, bn[li][0])
		copy(variance, bn[li][1])
	}
	return nil
}

// parse reads and validates a v1 checkpoint against m's architecture,
// returning staged parameter data (in m.Params() order) and staged
// batch-norm statistics (in Walk order) without touching the model.
//
//3lc:decode
func parse(r io.Reader, m *nn.Model) (staged [][]float32, bn [][2][]float64, err error) {
	br := bufio.NewReader(r)
	var gotMagic [8]byte
	if _, err := io.ReadFull(br, gotMagic[:]); err != nil {
		return nil, nil, fmt.Errorf("checkpoint: reading magic: %w", err)
	}
	if gotMagic != magic {
		return nil, nil, fmt.Errorf("checkpoint: bad magic %q", gotMagic)
	}
	var count uint32
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, nil, err
	}
	params := m.Params()
	byName := make(map[string]int, len(params))
	for i, p := range params {
		byName[p.Name] = i
	}
	if int(count) != len(params) {
		return nil, nil, fmt.Errorf("checkpoint: %d parameters, model has %d", count, len(params))
	}
	staged = make([][]float32, len(params))
	for i := 0; i < int(count); i++ {
		var nameLen uint16
		if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
			return nil, nil, err
		}
		nameBuf := make([]byte, nameLen)
		if _, err := io.ReadFull(br, nameBuf); err != nil {
			return nil, nil, err
		}
		name := string(nameBuf)
		pi, ok := byName[name]
		if !ok || pi >= len(staged) {
			return nil, nil, fmt.Errorf("checkpoint: unknown parameter %q", name)
		}
		if staged[pi] != nil {
			return nil, nil, fmt.Errorf("checkpoint: duplicate parameter %q", name)
		}
		p := params[pi]
		rank, err := br.ReadByte()
		if err != nil {
			return nil, nil, err
		}
		n := 1
		shape := make([]int, rank)
		for d := range shape {
			var dim uint32
			if err := binary.Read(br, binary.LittleEndian, &dim); err != nil {
				return nil, nil, err
			}
			shape[d] = int(dim)
			n *= int(dim)
		}
		if n != p.W.Len() {
			return nil, nil, fmt.Errorf("checkpoint: parameter %q has %d elements, model wants %d", name, n, p.W.Len())
		}
		data := make([]float32, n)
		for j := range data {
			var bits uint32
			if err := binary.Read(br, binary.LittleEndian, &bits); err != nil {
				return nil, nil, fmt.Errorf("checkpoint: parameter %q truncated: %w", name, err)
			}
			data[j] = math.Float32frombits(bits)
		}
		staged[pi] = data
	}

	var bnCount uint32
	if err := binary.Read(br, binary.LittleEndian, &bnCount); err != nil {
		return nil, nil, err
	}
	var widths []int
	nn.Walk(m.Net, func(l nn.Layer) {
		if mean, _, ok := bnStats(l); ok {
			widths = append(widths, len(mean))
		}
	})
	if int(bnCount) != len(widths) {
		return nil, nil, fmt.Errorf("checkpoint: %d batch-norm layers, model has %d", bnCount, len(widths))
	}
	bn = make([][2][]float64, 0, len(widths))
	for _, want := range widths {
		var width uint32
		if err := binary.Read(br, binary.LittleEndian, &width); err != nil {
			return nil, nil, err
		}
		if int(width) != want {
			return nil, nil, fmt.Errorf("checkpoint: batch-norm width %d, model wants %d", width, want)
		}
		mean := make([]float64, want)
		variance := make([]float64, want)
		for j := range mean {
			var bits uint64
			if err := binary.Read(br, binary.LittleEndian, &bits); err != nil {
				return nil, nil, err
			}
			mean[j] = math.Float64frombits(bits)
		}
		for j := range variance {
			var bits uint64
			if err := binary.Read(br, binary.LittleEndian, &bits); err != nil {
				return nil, nil, err
			}
			variance[j] = math.Float64frombits(bits)
		}
		bn = append(bn, [2][]float64{mean, variance})
	}
	return staged, bn, nil
}

// SaveFile writes a checkpoint to path atomically: the bytes go to a temp
// file in the same directory, are fsynced, and are renamed over path only
// once complete, with the prior snapshot preserved at path.bak. A crash
// mid-save can therefore never destroy the previous good checkpoint.
func SaveFile(path string, m *nn.Model) error {
	return writeFileAtomic(path, func(w io.Writer) error { return Save(w, m) })
}

// LoadFile restores a checkpoint from path.
func LoadFile(path string, m *nn.Model) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return Load(f, m)
}

// bnStats exposes a batch-norm layer's running statistics slices (aliased)
// for serialization.
func bnStats(l nn.Layer) (mean, variance []float64, ok bool) {
	switch t := l.(type) {
	case *nn.BatchNorm1D:
		m, v := t.RunningStats()
		return m, v, true
	case *nn.BatchNorm2D:
		m, v := t.RunningStats()
		return m, v, true
	}
	return nil, nil, false
}
