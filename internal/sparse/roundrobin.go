package sparse

import (
	"threelc/internal/tensor"
)

// RoundRobin implements Ako-style partial gradient exchange (§6,
// Watcharapichat et al.): the tensor is divided into P interleaved
// partitions and each step transmits one partition in full, cycling
// through all of them every P steps. Unsent partitions stay in the error
// accumulation buffer (the compress package wires that up), so every
// element is transmitted exactly once per cycle.
//
// Unlike magnitude-based selection it needs no thresholding or sampling at
// all — selection is a function of the step counter only — at the cost of
// ignoring which changes are important.
type RoundRobin struct {
	// Parts is the number of partitions P (cycle length).
	Parts int
	step  int
}

// Step returns the number of Sparsify calls performed — which partition
// the next call transmits (step mod Parts). Checkpoints capture it so a
// resumed run continues the cycle where it left off.
func (r *RoundRobin) Step() int { return r.step }

// SetStep restores a step counter captured by Step.
func (r *RoundRobin) SetStep(step int) { r.step = step }

// NewRoundRobin creates a selector cycling through parts partitions.
func NewRoundRobin(parts int) *RoundRobin {
	if parts < 1 {
		panic("sparse: RoundRobin needs at least 1 partition")
	}
	return &RoundRobin{Parts: parts}
}

// Sparsify selects partition (step mod Parts): elements whose index i has
// i % Parts == step % Parts. It advances the step counter.
func (r *RoundRobin) Sparsify(in *tensor.Tensor) *Selection {
	sel := &Selection{}
	r.SparsifyInto(in, sel)
	return sel
}

// SparsifyInto is the buffer-reusing form of Sparsify, with the same reuse
// contract as Sparsifier.SparsifyInto. It advances the step counter.
func (r *RoundRobin) SparsifyInto(in *tensor.Tensor, sel *Selection) {
	data := in.Data()
	sel.reset(in)
	part := r.step % r.Parts
	r.step++
	for i := part; i < len(data); i += r.Parts {
		// Zero values still occupy a bitmap slot but add no payload
		// value; skip them like the magnitude sparsifier does.
		if data[i] != 0 {
			sel.Mask.Set(i)
			sel.Values = append(sel.Values, data[i])
		}
	}
}
