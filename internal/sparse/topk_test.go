package sparse

import (
	"math"
	"testing"
	"testing/quick"

	"threelc/internal/encode"
	"threelc/internal/tensor"
)

func newMask(n, k int) *encode.Bitmap {
	m := encode.NewBitmap(n)
	for i := 0; i < k; i++ {
		m.Set(i)
	}
	return m
}

func TestSparsifyFractionApproximate(t *testing.T) {
	rng := tensor.NewRNG(1)
	in := tensor.New(20000)
	tensor.FillNormal(in, 1, rng)
	for _, frac := range []float64{0.25, 0.05} {
		sp := NewSparsifier(frac, tensor.NewRNG(2))
		sel := sp.Sparsify(in)
		got := float64(len(sel.Values)) / float64(in.Len())
		if math.Abs(got-frac) > frac*0.5 {
			t.Errorf("fraction %v: selected %v", frac, got)
		}
	}
}

func TestSparsifySelectsLargest(t *testing.T) {
	// With full sampling the threshold is exact; the selected minimum
	// magnitude must be >= the unselected maximum magnitude.
	rng := tensor.NewRNG(3)
	in := tensor.New(1000)
	tensor.FillNormal(in, 1, rng)
	sp := NewSparsifier(0.1, tensor.NewRNG(4))
	sp.SampleSize = in.Len() // exact threshold
	sel := sp.Sparsify(in)

	var minSel, maxUnsel float64 = math.Inf(1), 0
	vi := 0
	for i, v := range in.Data() {
		mag := math.Abs(float64(v))
		if sel.Mask.Get(i) {
			if mag < minSel {
				minSel = mag
			}
			vi++
		} else if mag > maxUnsel {
			maxUnsel = mag
		}
	}
	if minSel < maxUnsel {
		t.Errorf("selected min %v < unselected max %v", minSel, maxUnsel)
	}
}

func TestSparsifyValuesMatchMask(t *testing.T) {
	rng := tensor.NewRNG(5)
	in := tensor.New(500)
	tensor.FillNormal(in, 1, rng)
	sel := NewSparsifier(0.25, tensor.NewRNG(6)).Sparsify(in)
	if sel.Mask.Count() != len(sel.Values) {
		t.Fatalf("mask count %d != values %d", sel.Mask.Count(), len(sel.Values))
	}
	// Values appear in index order.
	vi := 0
	for i := 0; i < in.Len(); i++ {
		if sel.Mask.Get(i) {
			if sel.Values[vi] != in.Data()[i] {
				t.Fatalf("value %d mismatch", vi)
			}
			vi++
		}
	}
}

func TestReconstructRoundTrip(t *testing.T) {
	rng := tensor.NewRNG(7)
	in := tensor.New(300)
	tensor.FillNormal(in, 1, rng)
	sel := NewSparsifier(0.5, tensor.NewRNG(8)).Sparsify(in)
	out := Reconstruct(sel)
	if !out.SameShape(in) {
		t.Fatal("shape lost")
	}
	for i := 0; i < in.Len(); i++ {
		if sel.Mask.Get(i) {
			if out.Data()[i] != in.Data()[i] {
				t.Fatalf("selected element %d not reconstructed", i)
			}
		} else if out.Data()[i] != 0 {
			t.Fatalf("unselected element %d should be 0", i)
		}
	}
}

func TestSparsifyZeroTensor(t *testing.T) {
	sel := NewSparsifier(0.25, tensor.NewRNG(9)).Sparsify(tensor.New(100))
	if len(sel.Values) != 0 {
		t.Errorf("zero tensor selected %d values", len(sel.Values))
	}
}

func TestSparsifierFractionValidation(t *testing.T) {
	for _, f := range []float64{0, -0.1, 1.1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("fraction %v: expected panic", f)
				}
			}()
			NewSparsifier(f, tensor.NewRNG(1))
		}()
	}
}

func TestWireSizeBytes(t *testing.T) {
	sel := &Selection{Mask: newMask(100, 10), Values: make([]float32, 10), Shape: []int{100}}
	want := 13 + 40 // ceil(100/8) + 4*10
	if sel.WireSizeBytes() != want {
		t.Errorf("WireSizeBytes = %d, want %d", sel.WireSizeBytes(), want)
	}
}

// Property: error accumulation across sparsification rounds conserves mass
// (selected + residual = input).
func TestSparsifyConservationProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		in := tensor.New(200)
		tensor.FillNormal(in, 1, rng)
		sel := NewSparsifier(0.3, rng).Sparsify(in)
		dense := Reconstruct(sel)
		residual := in.Clone()
		residual.Sub(dense)
		// Every element is either transmitted exactly (residual 0) or
		// fully retained (residual = input).
		for i := range in.Data() {
			if sel.Mask.Get(i) {
				if residual.Data()[i] != 0 {
					return false
				}
			} else if residual.Data()[i] != in.Data()[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
