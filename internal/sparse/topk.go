// Package sparse implements the sparsification baselines of §5.1:
// selecting the fraction of state changes with the largest magnitude
// (25% and 5% in the paper), transmitting them with a bitmap selection
// mask, and accumulating unsent changes for later transmission.
//
// Finding an exact top-k threshold requires sorting millions of values, so
// — like the paper (following Aji & Heafield) — the threshold is estimated
// from a uniform sample of the input, then applied to the whole tensor.
package sparse

import (
	"math"
	"sort"

	"threelc/internal/encode"
	"threelc/internal/tensor"
)

// DefaultSampleSize is how many elements the threshold estimator samples.
// Sampling keeps selection O(n) instead of O(n log n).
const DefaultSampleSize = 1024

// Selection is a sparsified tensor: a bitmap marking transmitted elements
// plus their full-precision values in index order.
type Selection struct {
	Mask   *encode.Bitmap
	Values []float32
	Shape  []int
}

// Sparsifier selects the top fraction of elements by absolute magnitude.
type Sparsifier struct {
	// Fraction is the target fraction of elements to transmit (0, 1].
	Fraction float64
	// SampleSize is the number of elements sampled for threshold
	// estimation. Zero means DefaultSampleSize.
	SampleSize int

	rng  *tensor.RNG
	mags []float64 // threshold-estimation scratch, reused across steps
}

// NewSparsifier creates a sparsifier transmitting the given fraction of
// elements, using rng for threshold sampling.
func NewSparsifier(fraction float64, rng *tensor.RNG) *Sparsifier {
	if fraction <= 0 || fraction > 1 {
		panic("sparse: fraction must be in (0, 1]")
	}
	return &Sparsifier{Fraction: fraction, rng: rng}
}

// RNG exposes the threshold-sampling generator so checkpoints can capture
// and restore the selection stream (see tensor.RNG.State).
func (s *Sparsifier) RNG() *tensor.RNG { return s.rng }

// Threshold estimates the magnitude cutoff that keeps ~Fraction of the
// elements, by sorting a sample of |values|. It is exported for fused
// callers (package compress drives kernel.SparsifyResidual with it); each
// call consumes the same RNG draws the staged SparsifyInto would, so fused
// and staged selection streams stay interchangeable.
func (s *Sparsifier) Threshold(data []float32) float32 {
	n := len(data)
	if n == 0 {
		return 0
	}
	sample := s.SampleSize
	if sample <= 0 {
		sample = DefaultSampleSize
	}
	if sample > n {
		sample = n
	}
	if cap(s.mags) < sample {
		s.mags = make([]float64, sample)
	}
	mags := s.mags[:sample]
	if sample == n {
		for i, v := range data {
			mags[i] = math.Abs(float64(v))
		}
	} else {
		for i := range mags {
			mags[i] = math.Abs(float64(data[s.rng.Intn(n)]))
		}
	}
	sort.Float64s(mags)
	// Keep the top Fraction: cutoff at the (1-Fraction) quantile.
	idx := int(float64(sample) * (1 - s.Fraction))
	if idx >= sample {
		idx = sample - 1
	}
	if idx < 0 {
		idx = 0
	}
	return float32(mags[idx])
}

// Sparsify selects elements of in with |v| >= threshold (estimated to keep
// ~Fraction of them). Elements equal to zero are never selected. The
// returned Selection holds the transmitted values; the caller is
// responsible for error-accumulating the unsent remainder (the compress
// package wires this to quant.ErrorAccumulator).
func (s *Sparsifier) Sparsify(in *tensor.Tensor) *Selection {
	sel := &Selection{}
	s.SparsifyInto(in, sel)
	return sel
}

// SparsifyInto is the buffer-reusing form of Sparsify: the selection's
// bitmap and value slice are rebuilt in place, so a per-tensor context
// sparsifying the same shape every training step pays no allocation.
func (s *Sparsifier) SparsifyInto(in *tensor.Tensor, sel *Selection) {
	data := in.Data()
	thr := s.Threshold(data)
	sel.reset(in)
	// Guard: a zero threshold on a non-zero tensor would select
	// everything; fall back to selecting only non-zero elements, which is
	// what "largest magnitude" degenerates to.
	for i, v := range data {
		a := v
		if a < 0 {
			a = -a
		}
		if a >= thr && v != 0 {
			sel.Mask.Set(i)
			sel.Values = append(sel.Values, v)
		}
	}
}

// reset prepares sel for a fresh selection over in, retaining the bitmap
// and value storage when the element count is unchanged.
func (sel *Selection) reset(in *tensor.Tensor) {
	n := in.Len()
	if sel.Mask == nil || sel.Mask.Len() != n {
		sel.Mask = encode.NewBitmap(n)
	} else {
		sel.Mask.Reset()
	}
	sel.Values = sel.Values[:0]
	sel.Shape = append(sel.Shape[:0], in.Shape()...)
}

// Reconstruct expands a Selection into a dense tensor with unselected
// elements set to zero.
func Reconstruct(sel *Selection) *tensor.Tensor {
	out := tensor.New(sel.Shape...)
	ReconstructInto(sel, out)
	return out
}

// ReconstructInto writes the dense expansion into dst (which is zeroed
// first).
func ReconstructInto(sel *Selection, dst *tensor.Tensor) {
	dst.Zero()
	d := dst.Data()
	if len(d) != sel.Mask.Len() {
		panic("sparse: reconstruct size mismatch")
	}
	vi := 0
	for i := 0; i < len(d); i++ {
		if sel.Mask.Get(i) {
			d[i] = sel.Values[vi]
			vi++
		}
	}
}

// WireSizeBytes returns the transmitted size of the selection: the bitmap
// (1 bit per element) plus 4 bytes per selected value.
func (sel *Selection) WireSizeBytes() int {
	return encode.BitmapSizeBytes(sel.Mask.Len()) + 4*len(sel.Values)
}
