package sparse

import (
	"testing"

	"threelc/internal/tensor"
)

func TestRoundRobinCyclesAllElements(t *testing.T) {
	rng := tensor.NewRNG(1)
	in := tensor.New(103) // not a multiple of parts
	tensor.FillNormal(in, 1, rng)
	rr := NewRoundRobin(4)

	covered := make([]bool, in.Len())
	for step := 0; step < 4; step++ {
		sel := rr.Sparsify(in)
		for i := 0; i < in.Len(); i++ {
			if sel.Mask.Get(i) {
				if covered[i] {
					t.Fatalf("element %d selected twice within one cycle", i)
				}
				covered[i] = true
			}
		}
	}
	for i, c := range covered {
		if !c && in.Data()[i] != 0 {
			t.Fatalf("element %d never selected in a full cycle", i)
		}
	}
}

func TestRoundRobinPartitionStructure(t *testing.T) {
	in := tensor.New(12)
	in.Fill(1)
	rr := NewRoundRobin(3)
	sel := rr.Sparsify(in)
	// First step selects indices 0, 3, 6, 9.
	for i := 0; i < 12; i++ {
		want := i%3 == 0
		if sel.Mask.Get(i) != want {
			t.Errorf("step 0: index %d selected=%v want %v", i, sel.Mask.Get(i), want)
		}
	}
	sel = rr.Sparsify(in)
	if !sel.Mask.Get(1) || sel.Mask.Get(0) {
		t.Error("step 1 should select partition 1")
	}
}

func TestRoundRobinSkipsZeros(t *testing.T) {
	in := tensor.New(10) // all zeros
	rr := NewRoundRobin(2)
	sel := rr.Sparsify(in)
	if len(sel.Values) != 0 {
		t.Errorf("zero tensor selected %d values", len(sel.Values))
	}
}

func TestRoundRobinValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 0 partitions")
		}
	}()
	NewRoundRobin(0)
}
