package data

import (
	"os"
	"path/filepath"
	"testing"

	"threelc/internal/tensor"
)

// writeFakeCIFAR writes n records in the CIFAR-10 binary layout.
func writeFakeCIFAR(t *testing.T, path string, n int, seed uint64) {
	t.Helper()
	rng := tensor.NewRNG(seed)
	buf := make([]byte, n*cifarRecordSize)
	for r := 0; r < n; r++ {
		base := r * cifarRecordSize
		buf[base] = byte(r % cifarClasses)
		for i := 1; i < cifarRecordSize; i++ {
			buf[base+i] = byte(rng.Uint64())
		}
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
}

func fakeCIFARDir(t *testing.T, perFile int) string {
	t.Helper()
	dir := t.TempDir()
	for i, name := range CIFARTrainFiles {
		writeFakeCIFAR(t, filepath.Join(dir, name), perFile, uint64(i+1))
	}
	writeFakeCIFAR(t, filepath.Join(dir, CIFARTestFile), perFile, 99)
	return dir
}

func TestLoadCIFAR10(t *testing.T) {
	dir := fakeCIFARDir(t, 20)
	train, test, err := LoadCIFAR10(dir)
	if err != nil {
		t.Fatal(err)
	}
	if train.Len() != 100 || test.Len() != 20 {
		t.Fatalf("train %d test %d records", train.Len(), test.Len())
	}
	if train.C != 3 || train.H != 32 || train.W != 32 {
		t.Fatalf("dims %dx%dx%d", train.C, train.H, train.W)
	}
	// Pixels in [-1, 1].
	for _, v := range train.Images[0].Data() {
		if v < -1 || v > 1 {
			t.Fatalf("pixel %v out of range", v)
		}
	}
	// Labels follow the written pattern.
	if train.Labels[7] != 7%10 {
		t.Errorf("label[7] = %d", train.Labels[7])
	}
}

func TestLoadCIFAR10MissingFile(t *testing.T) {
	if _, _, err := LoadCIFAR10(t.TempDir()); err == nil {
		t.Error("expected error for missing files")
	}
}

func TestLoadCIFAR10Truncated(t *testing.T) {
	dir := fakeCIFARDir(t, 5)
	// Truncate one training file mid-record.
	path := filepath.Join(dir, CIFARTrainFiles[2])
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-100], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadCIFAR10(dir); err == nil {
		t.Error("expected error for truncated record")
	}
}

func TestLoadCIFAR10BadLabel(t *testing.T) {
	dir := fakeCIFARDir(t, 5)
	path := filepath.Join(dir, CIFARTrainFiles[0])
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[0] = 200 // invalid label
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadCIFAR10(dir); err == nil {
		t.Error("expected error for out-of-range label")
	}
}

func TestLoadOrSynthesizeFallback(t *testing.T) {
	cfg := smallConfig()
	train, test, real := LoadOrSynthesize("", cfg)
	if real {
		t.Error("empty dir must fall back to synthetic")
	}
	if train.Len() != cfg.Train || test.Len() != cfg.Test {
		t.Error("synthetic fallback has wrong sizes")
	}

	dir := fakeCIFARDir(t, 10)
	train2, _, real2 := LoadOrSynthesize(dir, cfg)
	if !real2 {
		t.Error("real data should be preferred when present")
	}
	if train2.Len() != 50 {
		t.Errorf("real train set %d records", train2.Len())
	}
}

func TestCIFARBatchCompatible(t *testing.T) {
	// Loaded CIFAR data must work with the batching/augmentation path.
	dir := fakeCIFARDir(t, 8)
	train, _, err := LoadCIFAR10(dir)
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(5)
	x, labels := train.Batch([]int{0, 1, 2}, Augment, rng)
	if x.Shape()[0] != 3 || len(labels) != 3 {
		t.Error("CIFAR batch assembly broken")
	}
}
