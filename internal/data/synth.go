// Package data generates deterministic synthetic image-classification
// datasets standing in for CIFAR-10 (which cannot be downloaded in this
// offline environment). Each class is a smooth random template pattern;
// examples are the class template plus per-example Gaussian noise and
// random geometric jitter, so the task is learnable but not trivial, and
// gradient tensors during training have realistic statistics.
//
// The paper's data augmentation (random crop with padding + horizontal
// flip, §5.2) is reproduced in Augment.
package data

import (
	"fmt"

	"threelc/internal/tensor"
)

// Dataset is an in-memory labelled image set with CIFAR-like layout:
// images are [C, H, W] float32 in roughly [-1, 1].
type Dataset struct {
	Images  []*tensor.Tensor
	Labels  []int
	Classes int
	C, H, W int
}

// Config controls synthetic dataset generation.
type Config struct {
	Classes   int
	Train     int // number of training examples
	Test      int // number of test examples
	C, H, W   int
	NoiseStd  float64 // per-pixel Gaussian noise
	Seed      uint64
	Smoothing int // box-blur passes applied to class templates
}

// DefaultConfig mirrors CIFAR-10's shape at reduced resolution: 10
// classes, 3x16x16 images.
func DefaultConfig() Config {
	return Config{
		Classes:   10,
		Train:     2000,
		Test:      500,
		C:         3,
		H:         16,
		W:         16,
		NoiseStd:  1.8,
		Seed:      42,
		Smoothing: 2,
	}
}

// Synthetic generates a train/test pair from cfg. Generation is fully
// deterministic in cfg.Seed.
func Synthetic(cfg Config) (train, test *Dataset) {
	if cfg.Classes < 2 {
		panic("data: need at least 2 classes")
	}
	rng := tensor.NewRNG(cfg.Seed)

	templates := make([]*tensor.Tensor, cfg.Classes)
	for k := range templates {
		t := tensor.New(cfg.C, cfg.H, cfg.W)
		tensor.FillNormal(t, 1.0, rng)
		for p := 0; p < cfg.Smoothing; p++ {
			boxBlur(t, cfg.C, cfg.H, cfg.W)
		}
		normalize(t)
		templates[k] = t
	}

	gen := func(n int, r *tensor.RNG) *Dataset {
		ds := &Dataset{Classes: cfg.Classes, C: cfg.C, H: cfg.H, W: cfg.W}
		for i := 0; i < n; i++ {
			k := i % cfg.Classes // balanced classes
			img := templates[k].Clone()
			d := img.Data()
			for j := range d {
				d[j] += float32(r.Norm() * cfg.NoiseStd)
			}
			ds.Images = append(ds.Images, img)
			ds.Labels = append(ds.Labels, k)
		}
		// Shuffle so that strided worker shards are class-balanced (the
		// paper's workers sample IID from a shuffled CIFAR-10).
		perm := r.Perm(n)
		images := make([]*tensor.Tensor, n)
		labels := make([]int, n)
		for i, p := range perm {
			images[i] = ds.Images[p]
			labels[i] = ds.Labels[p]
		}
		ds.Images, ds.Labels = images, labels
		return ds
	}

	train = gen(cfg.Train, rng.Split())
	test = gen(cfg.Test, rng.Split())
	return train, test
}

func boxBlur(t *tensor.Tensor, c, h, w int) {
	d := t.Data()
	out := make([]float32, len(d))
	for ch := 0; ch < c; ch++ {
		base := ch * h * w
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				var s float32
				var n float32
				for dy := -1; dy <= 1; dy++ {
					for dx := -1; dx <= 1; dx++ {
						yy, xx := y+dy, x+dx
						if yy < 0 || yy >= h || xx < 0 || xx >= w {
							continue
						}
						s += d[base+yy*w+xx]
						n++
					}
				}
				out[base+y*w+x] = s / n
			}
		}
	}
	copy(d, out)
}

func normalize(t *tensor.Tensor) {
	m := t.MaxAbs()
	if m > 0 {
		t.Scale(1 / m)
	}
}

// Len returns the number of examples.
func (ds *Dataset) Len() int { return len(ds.Images) }

// Batch assembles examples at the given indices into one [N, C, H, W]
// tensor plus labels. If augment is non-nil it is applied per example.
func (ds *Dataset) Batch(idx []int, augment func(src, dst *tensor.Tensor, r *tensor.RNG), rng *tensor.RNG) (*tensor.Tensor, []int) {
	n := len(idx)
	x := tensor.New(n, ds.C, ds.H, ds.W)
	labels := make([]int, n)
	per := ds.C * ds.H * ds.W
	xd := x.Data()
	scratch := tensor.New(ds.C, ds.H, ds.W)
	for i, id := range idx {
		if id < 0 || id >= ds.Len() {
			panic(fmt.Sprintf("data: index %d out of range (%d examples)", id, ds.Len()))
		}
		src := ds.Images[id]
		if augment != nil {
			augment(src, scratch, rng)
			copy(xd[i*per:(i+1)*per], scratch.Data())
		} else {
			copy(xd[i*per:(i+1)*per], src.Data())
		}
		labels[i] = ds.Labels[id]
	}
	return x, labels
}

// FlatBatch is Batch but reshaped to [N, C*H*W] for MLP models.
func (ds *Dataset) FlatBatch(idx []int, augment func(src, dst *tensor.Tensor, r *tensor.RNG), rng *tensor.RNG) (*tensor.Tensor, []int) {
	x, labels := ds.Batch(idx, augment, rng)
	n := x.Shape()[0]
	return x.Reshape(n, ds.C*ds.H*ds.W), labels
}

// Augment reproduces the paper's standard CIFAR augmentation: pad by 2,
// random crop back to the original size, and random horizontal flip.
func Augment(src, dst *tensor.Tensor, r *tensor.RNG) {
	shape := src.Shape()
	c, h, w := shape[0], shape[1], shape[2]
	const pad = 2
	offY := r.Intn(2*pad+1) - pad
	offX := r.Intn(2*pad+1) - pad
	flip := r.Intn(2) == 1
	sd, dd := src.Data(), dst.Data()
	for ch := 0; ch < c; ch++ {
		base := ch * h * w
		for y := 0; y < h; y++ {
			sy := y + offY
			for x := 0; x < w; x++ {
				sx := x + offX
				var v float32
				if sy >= 0 && sy < h && sx >= 0 && sx < w {
					if flip {
						v = sd[base+sy*w+(w-1-sx)]
					} else {
						v = sd[base+sy*w+sx]
					}
				}
				dd[base+y*w+x] = v
			}
		}
	}
}
