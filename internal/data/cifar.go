package data

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"threelc/internal/tensor"
)

// CIFAR-10 binary format support. The paper evaluates on CIFAR-10
// (Krizhevsky); the dataset cannot be downloaded in this offline
// environment, so experiments default to the synthetic generator — but
// when the standard binary files (data_batch_1.bin .. data_batch_5.bin,
// test_batch.bin) are present, LoadCIFAR10 reads them so the full
// pipeline runs on the real data unchanged.
//
// Record layout (per the CIFAR-10 distribution): 1 label byte followed by
// 3072 pixel bytes (1024 red, 1024 green, 1024 blue, row-major 32x32).

const (
	cifarClasses    = 10
	cifarDim        = 32
	cifarChannels   = 3
	cifarRecordSize = 1 + cifarChannels*cifarDim*cifarDim
)

// CIFARTrainFiles lists the standard training batch file names.
var CIFARTrainFiles = []string{
	"data_batch_1.bin", "data_batch_2.bin", "data_batch_3.bin",
	"data_batch_4.bin", "data_batch_5.bin",
}

// CIFARTestFile is the standard test batch file name.
const CIFARTestFile = "test_batch.bin"

// LoadCIFAR10 reads the CIFAR-10 binary batches from dir. Pixels are
// scaled to [-1, 1]. It returns an error if any expected file is missing
// or malformed.
func LoadCIFAR10(dir string) (train, test *Dataset, err error) {
	train = &Dataset{Classes: cifarClasses, C: cifarChannels, H: cifarDim, W: cifarDim}
	for _, name := range CIFARTrainFiles {
		if err := readCIFARFile(filepath.Join(dir, name), train); err != nil {
			return nil, nil, err
		}
	}
	test = &Dataset{Classes: cifarClasses, C: cifarChannels, H: cifarDim, W: cifarDim}
	if err := readCIFARFile(filepath.Join(dir, CIFARTestFile), test); err != nil {
		return nil, nil, err
	}
	return train, test, nil
}

func readCIFARFile(path string, ds *Dataset) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("data: cifar: %w", err)
	}
	defer f.Close()
	buf := make([]byte, cifarRecordSize)
	for {
		_, err := io.ReadFull(f, buf)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("data: cifar %s: truncated record: %w", path, err)
		}
		label := int(buf[0])
		if label >= cifarClasses {
			return fmt.Errorf("data: cifar %s: label %d out of range", path, label)
		}
		img := tensor.New(cifarChannels, cifarDim, cifarDim)
		d := img.Data()
		for i, b := range buf[1:] {
			d[i] = float32(b)/127.5 - 1
		}
		ds.Images = append(ds.Images, img)
		ds.Labels = append(ds.Labels, label)
	}
}

// LoadOrSynthesize returns the real CIFAR-10 dataset if dir contains it,
// and otherwise the synthetic stand-in from cfg. The boolean reports
// whether real data was used.
func LoadOrSynthesize(dir string, cfg Config) (train, test *Dataset, real bool) {
	if dir != "" {
		if tr, te, err := LoadCIFAR10(dir); err == nil {
			return tr, te, true
		}
	}
	tr, te := Synthetic(cfg)
	return tr, te, false
}
