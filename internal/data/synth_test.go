package data

import (
	"testing"

	"threelc/internal/tensor"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Train, cfg.Test = 200, 50
	return cfg
}

func TestSyntheticDeterminism(t *testing.T) {
	a1, b1 := Synthetic(smallConfig())
	a2, b2 := Synthetic(smallConfig())
	if a1.Len() != a2.Len() || b1.Len() != b2.Len() {
		t.Fatal("sizes differ across identical configs")
	}
	for i := range a1.Images {
		if a1.Labels[i] != a2.Labels[i] || !a1.Images[i].Equal(a2.Images[i]) {
			t.Fatalf("example %d differs across identical configs", i)
		}
	}
}

func TestSyntheticSeedChangesData(t *testing.T) {
	cfg2 := smallConfig()
	cfg2.Seed = 777
	a1, _ := Synthetic(smallConfig())
	a2, _ := Synthetic(cfg2)
	if a1.Images[0].Equal(a2.Images[0]) {
		t.Error("different seeds should give different data")
	}
}

func TestSyntheticClassBalance(t *testing.T) {
	trainSet, _ := Synthetic(smallConfig())
	counts := make([]int, trainSet.Classes)
	for _, l := range trainSet.Labels {
		counts[l]++
	}
	for k, c := range counts {
		if c != trainSet.Len()/trainSet.Classes {
			t.Errorf("class %d has %d examples, want %d", k, c, trainSet.Len()/trainSet.Classes)
		}
	}
}

func TestSyntheticShardBalance(t *testing.T) {
	// After shuffling, a strided shard must contain multiple classes —
	// this is the regression test for the class/shard aliasing bug that
	// collapses batch-norm training.
	trainSet, _ := Synthetic(smallConfig())
	workers := 10
	for w := 0; w < workers; w++ {
		classes := make(map[int]bool)
		for i := w; i < trainSet.Len(); i += workers {
			classes[trainSet.Labels[i]] = true
		}
		if len(classes) < 3 {
			t.Errorf("worker %d shard has only %d classes — dataset not shuffled", w, len(classes))
		}
	}
}

func TestSyntheticLearnable(t *testing.T) {
	// Nearest-template classification must beat chance by a wide margin:
	// the task carries signal.
	cfg := smallConfig()
	trainSet, testSet := Synthetic(cfg)

	// Estimate class means from training data.
	means := make([]*tensor.Tensor, cfg.Classes)
	counts := make([]int, cfg.Classes)
	for i, img := range trainSet.Images {
		k := trainSet.Labels[i]
		if means[k] == nil {
			means[k] = tensor.New(img.Shape()...)
		}
		means[k].Add(img)
		counts[k]++
	}
	for k := range means {
		means[k].Scale(1 / float32(counts[k]))
	}
	correct := 0
	for i, img := range testSet.Images {
		best, bi := -1e30, 0
		for k := range means {
			score := img.Dot(means[k])
			if score > best {
				best, bi = score, k
			}
		}
		if bi == testSet.Labels[i] {
			correct++
		}
	}
	acc := float64(correct) / float64(testSet.Len())
	if acc < 0.5 {
		t.Errorf("nearest-mean accuracy %v — task carries too little signal", acc)
	}
}

func TestBatchAssembly(t *testing.T) {
	trainSet, _ := Synthetic(smallConfig())
	x, labels := trainSet.Batch([]int{0, 5, 7}, nil, nil)
	shape := x.Shape()
	if shape[0] != 3 || shape[1] != trainSet.C || shape[2] != trainSet.H || shape[3] != trainSet.W {
		t.Fatalf("batch shape %v", shape)
	}
	if labels[1] != trainSet.Labels[5] {
		t.Error("labels misaligned")
	}
	// Content of example 1 matches source image 5.
	per := trainSet.C * trainSet.H * trainSet.W
	for j := 0; j < per; j++ {
		if x.Data()[per+j] != trainSet.Images[5].Data()[j] {
			t.Fatal("batch content mismatch")
		}
	}
}

func TestFlatBatchShape(t *testing.T) {
	trainSet, _ := Synthetic(smallConfig())
	x, _ := trainSet.FlatBatch([]int{1, 2}, nil, nil)
	shape := x.Shape()
	if len(shape) != 2 || shape[1] != trainSet.C*trainSet.H*trainSet.W {
		t.Fatalf("flat shape %v", shape)
	}
}

func TestBatchIndexOutOfRangePanics(t *testing.T) {
	trainSet, _ := Synthetic(smallConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	trainSet.Batch([]int{trainSet.Len()}, nil, nil)
}

func TestAugmentPreservesShapeAndScale(t *testing.T) {
	trainSet, _ := Synthetic(smallConfig())
	rng := tensor.NewRNG(1)
	src := trainSet.Images[0]
	dst := tensor.New(src.Shape()...)
	Augment(src, dst, rng)
	if !dst.SameShape(src) {
		t.Fatal("augment changed shape")
	}
	if dst.MaxAbs() > src.MaxAbs() {
		t.Error("augment must not amplify values")
	}
}

func TestAugmentIdentityPossible(t *testing.T) {
	// Some RNG draw yields offsets (0,0) and no flip, which reproduces
	// the source exactly; verify a no-crop, no-flip draw is the identity.
	trainSet, _ := Synthetic(smallConfig())
	src := trainSet.Images[0]
	dst := tensor.New(src.Shape()...)
	found := false
	rng := tensor.NewRNG(2)
	for trial := 0; trial < 300 && !found; trial++ {
		Augment(src, dst, rng)
		if dst.Equal(src) {
			found = true
		}
	}
	if !found {
		t.Error("identity augmentation never occurred in 300 draws")
	}
}

func TestAugmentViaBatch(t *testing.T) {
	trainSet, _ := Synthetic(smallConfig())
	rng := tensor.NewRNG(3)
	x, _ := trainSet.Batch([]int{0, 0, 0, 0}, Augment, rng)
	// With random crops, not all four copies should be identical.
	per := trainSet.C * trainSet.H * trainSet.W
	allSame := true
	for c := 1; c < 4; c++ {
		for j := 0; j < per; j++ {
			if x.Data()[c*per+j] != x.Data()[j] {
				allSame = false
				break
			}
		}
	}
	if allSame {
		t.Error("augmentation produced four identical crops")
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := smallConfig()
	cfg.Classes = 1
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 1 class")
		}
	}()
	Synthetic(cfg)
}
