package quant

import "threelc/internal/tensor"

// ErrorAccumulator implements the per-tensor error-accumulation buffer of
// §3.1 (Figure 3). It is shared by 3LC, MQE 1-bit, sparsification, and the
// multi-local-step baseline: each training step the caller
//
//  1. accumulates the new input into the buffer (step 1 in Fig. 3),
//  2. produces a lossy approximation of the buffered sum,
//  3. calls Residual with the local dequantization of what was actually
//     sent (steps a-b in Fig. 3), leaving buffer = sum - sent, the
//     quantization error to be corrected at later steps.
type ErrorAccumulator struct {
	buf *tensor.Tensor
}

// NewErrorAccumulator creates a zeroed accumulation buffer with the given
// shape.
func NewErrorAccumulator(shape ...int) *ErrorAccumulator {
	return &ErrorAccumulator{buf: tensor.New(shape...)}
}

// NewErrorAccumulatorOver wraps an existing (zeroed) tensor as the
// accumulation buffer instead of allocating one. Callers that coalesce
// many small tensors' error state into one contiguous arena
// (compress.TernaryBatch) hand each member a slice-backed tensor so the
// batched accumulate sweep walks adjacent memory.
func NewErrorAccumulatorOver(buf *tensor.Tensor) *ErrorAccumulator {
	return &ErrorAccumulator{buf: buf}
}

// Accumulate adds in to the buffer and returns the buffered sum
// (input + accumulated error). The returned tensor aliases the internal
// buffer; callers must not retain it past the following Residual call.
func (e *ErrorAccumulator) Accumulate(in *tensor.Tensor) *tensor.Tensor {
	e.buf.Add(in)
	return e.buf
}

// Residual subtracts the locally dequantized transmission from the buffer,
// leaving the quantization error for future correction.
func (e *ErrorAccumulator) Residual(sent *tensor.Tensor) {
	e.buf.Sub(sent)
}

// Buffer exposes the internal buffer (for tests and metrics).
func (e *ErrorAccumulator) Buffer() *tensor.Tensor { return e.buf }

// Reset zeroes the accumulated error.
func (e *ErrorAccumulator) Reset() { e.buf.Zero() }
