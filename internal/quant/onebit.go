package quant

import "threelc/internal/tensor"

// OneBitQuantized is the output of 1-bit quantization with minimum squared
// quantization error (the paper's "MQE 1-bit int" baseline, after 1-bit
// SGD, Seide et al.): each element is mapped to one bit by sign, and the
// two dequantization magnitudes are the means of the non-negative and
// negative partitions, which minimize the squared quantization error for a
// sign-based split.
type OneBitQuantized struct {
	// Bits holds one bit per element, packed little-endian within each
	// byte; bit=1 means the element was non-negative.
	Bits []byte
	// N is the number of valid elements (the last byte may be partial).
	N int
	// MPos is the mean of the non-negative elements.
	MPos float32
	// MNeg is the mean of the negative elements (a negative number).
	MNeg  float32
	Shape []int
}

// QuantizeOneBit performs MQE 1-bit quantization of in.
func QuantizeOneBit(in *tensor.Tensor) *OneBitQuantized {
	out := &OneBitQuantized{}
	QuantizeOneBitInto(in, out)
	return out
}

// QuantizeOneBitInto is the buffer-reusing form of QuantizeOneBit: the
// packed bit buffer grows only when in is larger than any previous input,
// so a per-tensor context quantizing the same shape every training step
// pays no allocation.
func QuantizeOneBitInto(in *tensor.Tensor, out *OneBitQuantized) {
	data := in.Data()
	nb := (len(data) + 7) / 8
	if cap(out.Bits) < nb {
		out.Bits = make([]byte, nb)
	}
	out.Bits = out.Bits[:nb]
	for i := range out.Bits {
		out.Bits[i] = 0
	}
	out.N = len(data)
	out.Shape = append(out.Shape[:0], in.Shape()...)
	out.MPos, out.MNeg = 0, 0
	var sumPos, sumNeg float64
	var nPos, nNeg int
	for i, v := range data {
		if v >= 0 {
			out.Bits[i>>3] |= 1 << (uint(i) & 7)
			sumPos += float64(v)
			nPos++
		} else {
			sumNeg += float64(v)
			nNeg++
		}
	}
	if nPos > 0 {
		out.MPos = float32(sumPos / float64(nPos))
	}
	if nNeg > 0 {
		out.MNeg = float32(sumNeg / float64(nNeg))
	}
}

// DequantizeOneBit reconstructs the approximation: non-negative elements
// become MPos, negative elements become MNeg.
func DequantizeOneBit(q *OneBitQuantized) *tensor.Tensor {
	out := tensor.New(q.Shape...)
	DequantizeOneBitInto(q, out)
	return out
}

// DequantizeOneBitInto writes the reconstruction into dst.
func DequantizeOneBitInto(q *OneBitQuantized, dst *tensor.Tensor) {
	d := dst.Data()
	if len(d) != q.N {
		panic("quant: 1-bit dequantize size mismatch")
	}
	for i := range d {
		if q.Bits[i>>3]&(1<<(uint(i)&7)) != 0 {
			d[i] = q.MPos
		} else {
			d[i] = q.MNeg
		}
	}
}
