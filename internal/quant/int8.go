package quant

import (
	"math"

	"threelc/internal/tensor"
)

// Int8Quantized is the output of 8-bit integer quantization: one int8 in
// [-127, 127] per element plus the dequantization scale. It approximates
// the TPU-style 255-level quantization the paper uses as its "8-bit int"
// baseline (§5.1); -128 is left unused.
type Int8Quantized struct {
	Q     []int8
	M     float32 // scale: value = M * q / 127
	Shape []int
}

// QuantizeInt8 maps in onto 255 levels spanning [-max|in|, +max|in|].
func QuantizeInt8(in *tensor.Tensor) *Int8Quantized {
	out := &Int8Quantized{}
	QuantizeInt8Into(in, out)
	return out
}

// QuantizeInt8Into is the buffer-reusing form of QuantizeInt8: out.Q grows
// only when in is larger than any previous input, so a per-tensor context
// quantizing the same shape every step pays no allocation.
func QuantizeInt8Into(in *tensor.Tensor, out *Int8Quantized) {
	data := in.Data()
	if cap(out.Q) < len(data) {
		out.Q = make([]int8, len(data))
	}
	out.Q = out.Q[:len(data)]
	out.Shape = append(out.Shape[:0], in.Shape()...)
	m := float64(in.MaxAbs())
	out.M = float32(m)
	if m == 0 {
		for i := range out.Q {
			out.Q[i] = 0
		}
		return
	}
	scale := 127 / m
	for i, v := range data {
		q := math.Round(float64(v) * scale)
		if q > 127 {
			q = 127
		} else if q < -127 {
			q = -127
		}
		out.Q[i] = int8(q)
	}
}

// DequantizeInt8 reconstructs the approximate tensor.
func DequantizeInt8(q *Int8Quantized) *tensor.Tensor {
	out := tensor.New(q.Shape...)
	DequantizeInt8Into(q, out)
	return out
}

// DequantizeInt8Into writes the reconstruction into dst.
func DequantizeInt8Into(q *Int8Quantized, dst *tensor.Tensor) {
	d := dst.Data()
	if len(d) != len(q.Q) {
		panic("quant: int8 dequantize size mismatch")
	}
	scale := q.M / 127
	if q.M == 0 {
		scale = 0
	}
	for i, v := range q.Q {
		d[i] = scale * float32(v)
	}
}
