package quant

import (
	"math"
	"testing"
	"testing/quick"

	"threelc/internal/tensor"
)

func TestQuantize3Values(t *testing.T) {
	// From Figure 3: M = 0.3 (s=1), values quantize by round(v/M).
	in := tensor.FromSlice([]float32{-0.3, 0.1, -0.4, 0, 0.3}, 5)
	tv := Quantize3(in, 1.0)
	if tv.M != 0.4 {
		t.Fatalf("M = %v, want 0.4", tv.M)
	}
	want := []int8{-1, 0, -1, 0, 1}
	for i, q := range tv.Q {
		if q != want[i] {
			t.Errorf("Q[%d] = %d, want %d", i, q, want[i])
		}
	}
}

func TestQuantize3OnlyTernaryOutputs(t *testing.T) {
	rng := tensor.NewRNG(1)
	in := tensor.New(10000)
	tensor.FillNormal(in, 1, rng)
	for _, s := range []float64{1.0, 1.25, 1.5, 1.75, 1.99} {
		tv := Quantize3(in, s)
		for i, q := range tv.Q {
			if q < -1 || q > 1 {
				t.Fatalf("s=%v: Q[%d]=%d outside {-1,0,1}", s, i, q)
			}
		}
	}
}

func TestQuantize3ErrorBound(t *testing.T) {
	// Paper §3.1: max |Tin - Tout| <= M/2.
	rng := tensor.NewRNG(2)
	for _, s := range []float64{1.0, 1.5, 1.9} {
		in := tensor.New(5000)
		tensor.FillNormal(in, 0.1, rng)
		tv := Quantize3(in, s)
		out := Dequantize3(tv)
		bound := float64(tv.M) / 2 * (1 + 1e-6)
		for i := range in.Data() {
			e := math.Abs(float64(in.Data()[i] - out.Data()[i]))
			if e > bound {
				t.Fatalf("s=%v: |err|=%v exceeds M/2=%v", s, e, bound)
			}
		}
	}
}

func TestQuantize3SparsityMonotone(t *testing.T) {
	// Larger s must not decrease the number of zeros (§3.1).
	rng := tensor.NewRNG(3)
	in := tensor.New(10000)
	tensor.FillUniform(in, -1, 1, rng)
	prev := -1
	for _, s := range []float64{1.0, 1.3, 1.6, 1.9} {
		z := Quantize3(in, s).CountZeros()
		if z < prev {
			t.Fatalf("zeros decreased from %d to %d at s=%v", prev, z, s)
		}
		prev = z
	}
}

func TestQuantize3ZeroTensor(t *testing.T) {
	in := tensor.New(100)
	tv := Quantize3(in, 1.5)
	if tv.M != 0 {
		t.Errorf("M = %v for zero tensor", tv.M)
	}
	if tv.CountZeros() != 100 {
		t.Errorf("zero tensor should quantize to all zeros")
	}
	out := Dequantize3(tv)
	if out.MaxAbs() != 0 {
		t.Errorf("dequantized zero tensor should be zero")
	}
}

func TestQuantize3PreservesMaxMagnitudeAtS1(t *testing.T) {
	// s=1 preserves the maximum magnitude across quantize/dequantize.
	in := tensor.FromSlice([]float32{0.5, -1.25, 0.1}, 3)
	tv := Quantize3(in, 1.0)
	out := Dequantize3(tv)
	if out.MaxAbs() != 1.25 {
		t.Errorf("max magnitude %v not preserved (want 1.25)", out.MaxAbs())
	}
}

func TestQuantize3SparsityRangePanics(t *testing.T) {
	in := tensor.New(4)
	for _, s := range []float64{0.5, 0.99, 2.0, 2.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("s=%v: expected panic", s)
				}
			}()
			Quantize3(in, s)
		}()
	}
}

func TestDequantizeIntoSizeMismatchPanics(t *testing.T) {
	tv := Quantize3(tensor.New(4), 1.0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	DequantizeInto(tv, tensor.New(5))
}

func TestQuantize3ShapePreserved(t *testing.T) {
	in := tensor.New(2, 3, 4)
	tv := Quantize3(in, 1.0)
	out := Dequantize3(tv)
	if !out.SameShape(in) {
		t.Errorf("shape %v != %v", out.Shape(), in.Shape())
	}
	if tv.Len() != 24 {
		t.Errorf("Len = %d", tv.Len())
	}
}

// Property: dequantized values are always in {-M, 0, +M}.
func TestDequantize3ValueSetProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		in := tensor.New(256)
		tensor.FillNormal(in, 0.5, rng)
		s := 1.0 + 0.99*rng.Float64()
		tv := Quantize3(in, s)
		out := Dequantize3(tv)
		for _, v := range out.Data() {
			if v != 0 && v != tv.M && v != -tv.M {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStochastic3Unbiased(t *testing.T) {
	// E[M*q] must equal the input value.
	rng := tensor.NewRNG(4)
	in := tensor.FromSlice([]float32{0.3, -0.6, 0.9, 0}, 4)
	n := 20000
	sums := make([]float64, 4)
	for trial := 0; trial < n; trial++ {
		tv := QuantizeStochastic3(in, rng)
		for i, q := range tv.Q {
			sums[i] += float64(tv.M) * float64(q)
		}
	}
	for i, want := range []float64{0.3, -0.6, 0.9, 0} {
		got := sums[i] / float64(n)
		if math.Abs(got-want) > 0.02 {
			t.Errorf("E[deq[%d]] = %v, want %v", i, got, want)
		}
	}
}

func TestStochastic3TernaryOnly(t *testing.T) {
	rng := tensor.NewRNG(5)
	in := tensor.New(1000)
	tensor.FillNormal(in, 1, rng)
	tv := QuantizeStochastic3(in, rng)
	for _, q := range tv.Q {
		if q < -1 || q > 1 {
			t.Fatalf("stochastic output %d outside ternary set", q)
		}
	}
}

func TestStochastic3SignAgreement(t *testing.T) {
	// A non-zero quantized value must carry the input's sign.
	rng := tensor.NewRNG(6)
	in := tensor.New(1000)
	tensor.FillNormal(in, 1, rng)
	tv := QuantizeStochastic3(in, rng)
	for i, q := range tv.Q {
		v := in.Data()[i]
		if q == 1 && v <= 0 || q == -1 && v >= 0 {
			t.Fatalf("sign mismatch at %d: v=%v q=%d", i, v, q)
		}
	}
}

func TestStochastic3ZeroTensor(t *testing.T) {
	rng := tensor.NewRNG(7)
	tv := QuantizeStochastic3(tensor.New(64), rng)
	if tv.M != 0 || tv.CountZeros() != 64 {
		t.Error("zero tensor should stay zero under stochastic quantization")
	}
}
