package quant

import (
	"math"
	"testing"

	"threelc/internal/tensor"
)

func TestErrorAccumulatorTelescoping(t *testing.T) {
	// Invariant: after k rounds, sum(inputs) = sum(sent) + buffer.
	// This is the property that makes error feedback deliver every state
	// change eventually (§3.1).
	rng := tensor.NewRNG(1)
	acc := NewErrorAccumulator(128)
	inputSum := tensor.New(128)
	sentSum := tensor.New(128)
	for round := 0; round < 50; round++ {
		in := tensor.New(128)
		tensor.FillNormal(in, 0.1, rng)
		inputSum.Add(in)

		sum := acc.Accumulate(in)
		tv := Quantize3(sum, 1.5)
		sent := Dequantize3(tv)
		acc.Residual(sent)
		sentSum.Add(sent)
	}
	// inputSum - sentSum must equal the buffer exactly (float32 order
	// effects aside).
	diff := inputSum.Clone()
	diff.Sub(sentSum)
	diff.Sub(acc.Buffer())
	if diff.MaxAbs() > 1e-4 {
		t.Errorf("telescoping violated: residual error %v", diff.MaxAbs())
	}
}

func TestErrorAccumulatorDeliversConstantSignal(t *testing.T) {
	// A constant input must be delivered at the right average rate even
	// when each individual round quantizes it to zero.
	acc := NewErrorAccumulator(4)
	in := tensor.FromSlice([]float32{0.4, -0.4, 0.1, 1.0}, 4)
	delivered := tensor.New(4)
	rounds := 400
	for i := 0; i < rounds; i++ {
		sum := acc.Accumulate(in)
		tv := Quantize3(sum, 1.0)
		sent := Dequantize3(tv)
		acc.Residual(sent)
		delivered.Add(sent)
	}
	for i, want := range in.Data() {
		got := delivered.Data()[i] / float32(rounds)
		if math.Abs(float64(got-want)) > 0.05 {
			t.Errorf("element %d: delivered rate %v, want %v", i, got, want)
		}
	}
}

func TestErrorAccumulatorReset(t *testing.T) {
	acc := NewErrorAccumulator(8)
	in := tensor.New(8)
	in.Fill(1)
	acc.Accumulate(in)
	acc.Reset()
	if acc.Buffer().MaxAbs() != 0 {
		t.Error("Reset should zero the buffer")
	}
}

func TestErrorAccumulatorAliasedReturn(t *testing.T) {
	acc := NewErrorAccumulator(2)
	in := tensor.FromSlice([]float32{1, 2}, 2)
	sum := acc.Accumulate(in)
	if sum != acc.Buffer() {
		t.Error("Accumulate should return the internal buffer")
	}
	if sum.Data()[1] != 2 {
		t.Errorf("buffer content wrong: %v", sum)
	}
	acc.Residual(tensor.FromSlice([]float32{0.5, 0.5}, 2))
	if acc.Buffer().Data()[0] != 0.5 || acc.Buffer().Data()[1] != 1.5 {
		t.Errorf("residual wrong: %v", acc.Buffer())
	}
}
