package quant

import (
	"math"
	"testing"
	"testing/quick"

	"threelc/internal/tensor"
)

func TestInt8RoundTripBound(t *testing.T) {
	rng := tensor.NewRNG(1)
	in := tensor.New(4096)
	tensor.FillNormal(in, 0.3, rng)
	q := QuantizeInt8(in)
	out := DequantizeInt8(q)
	// Error bound: half a quantization bucket = M/254 (rounding to 255
	// levels over [-M, M]).
	bound := float64(q.M)/254 + 1e-7
	for i := range in.Data() {
		e := math.Abs(float64(in.Data()[i] - out.Data()[i]))
		if e > bound {
			t.Fatalf("int8 error %v exceeds %v", e, bound)
		}
	}
}

func TestInt8Levels(t *testing.T) {
	rng := tensor.NewRNG(2)
	in := tensor.New(4096)
	tensor.FillUniform(in, -1, 1, rng)
	q := QuantizeInt8(in)
	for _, v := range q.Q {
		if v < -127 || v > 127 {
			t.Fatalf("level %d outside [-127,127] (-128 must be unused)", v)
		}
	}
}

func TestInt8ZeroTensor(t *testing.T) {
	q := QuantizeInt8(tensor.New(16))
	out := DequantizeInt8(q)
	if out.MaxAbs() != 0 {
		t.Error("zero tensor should round-trip to zero")
	}
}

func TestInt8ExtremesExact(t *testing.T) {
	in := tensor.FromSlice([]float32{-2, 0, 2}, 3)
	out := DequantizeInt8(QuantizeInt8(in))
	if out.Data()[0] != -2 || out.Data()[2] != 2 {
		t.Errorf("extreme values should be exact: %v", out)
	}
	if out.Data()[1] != 0 {
		t.Errorf("zero should stay zero: %v", out)
	}
}

func TestOneBitPartitionMeans(t *testing.T) {
	in := tensor.FromSlice([]float32{1, 3, -2, -4, 0}, 5)
	q := QuantizeOneBit(in)
	// Non-negative: {1, 3, 0} mean 4/3. Negative: {-2, -4} mean -3.
	if math.Abs(float64(q.MPos)-4.0/3) > 1e-6 {
		t.Errorf("MPos = %v, want 4/3", q.MPos)
	}
	if q.MNeg != -3 {
		t.Errorf("MNeg = %v, want -3", q.MNeg)
	}
	out := DequantizeOneBit(q)
	want := []float32{4.0 / 3, 4.0 / 3, -3, -3, 4.0 / 3}
	for i := range want {
		if math.Abs(float64(out.Data()[i]-want[i])) > 1e-6 {
			t.Errorf("out[%d] = %v, want %v", i, out.Data()[i], want[i])
		}
	}
}

func TestOneBitMinimizesSquaredError(t *testing.T) {
	// Among all (a, b) dequantization pairs for a sign split, the
	// partition means minimize squared error; nudging them must not
	// reduce the error.
	rng := tensor.NewRNG(3)
	in := tensor.New(512)
	tensor.FillNormal(in, 1, rng)
	q := QuantizeOneBit(in)

	sqErr := func(mPos, mNeg float32) float64 {
		var s float64
		for _, v := range in.Data() {
			var d float64
			if v >= 0 {
				d = float64(v - mPos)
			} else {
				d = float64(v - mNeg)
			}
			s += d * d
		}
		return s
	}
	base := sqErr(q.MPos, q.MNeg)
	for _, eps := range []float32{-0.05, 0.05} {
		if sqErr(q.MPos+eps, q.MNeg) < base-1e-6 {
			t.Errorf("nudging MPos by %v reduced squared error", eps)
		}
		if sqErr(q.MPos, q.MNeg+eps) < base-1e-6 {
			t.Errorf("nudging MNeg by %v reduced squared error", eps)
		}
	}
}

func TestOneBitAllPositive(t *testing.T) {
	in := tensor.FromSlice([]float32{1, 2, 3}, 3)
	q := QuantizeOneBit(in)
	if q.MPos != 2 || q.MNeg != 0 {
		t.Errorf("MPos=%v MNeg=%v", q.MPos, q.MNeg)
	}
}

func TestOneBitBitPacking(t *testing.T) {
	// 9 elements exercises the partial final byte.
	in := tensor.FromSlice([]float32{1, -1, 1, -1, 1, -1, 1, -1, 1}, 9)
	q := QuantizeOneBit(in)
	if len(q.Bits) != 2 {
		t.Fatalf("9 elements should pack into 2 bytes, got %d", len(q.Bits))
	}
	out := DequantizeOneBit(q)
	for i, v := range in.Data() {
		if (v > 0) != (out.Data()[i] > 0) {
			t.Errorf("sign lost at %d", i)
		}
	}
}

// Property: 1-bit round trip preserves signs exactly.
func TestOneBitSignProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		in := tensor.New(100)
		tensor.FillNormal(in, 1, rng)
		q := QuantizeOneBit(in)
		out := DequantizeOneBit(q)
		for i, v := range in.Data() {
			got := out.Data()[i]
			if v >= 0 && got != q.MPos {
				return false
			}
			if v < 0 && got != q.MNeg {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
