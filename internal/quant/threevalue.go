// Package quant implements the lossy value transformations of the 3LC paper
// (§3.1) and the quantization baselines it is evaluated against (§5.1):
//
//   - 3-value quantization with sparsity multiplication (the 3LC lossy core)
//   - error-accumulation buffers shared by several schemes
//   - stochastic 3-value quantization (TernGrad-like)
//   - 8-bit integer quantization (TPU-like, 255 levels)
//   - 1-bit quantization with minimum squared quantization error (1-bit SGD)
//
// All quantizers operate on flat []float32 data and are written as simple
// loops over dense arrays — the direct analogue of the paper's "vectorizable
// operations" argument.
//
// These staged single-responsibility sweeps are the *reference
// implementation*: the production hot path (package compress) runs the
// fused kernels of internal/kernel, which collapse accumulate → |max| →
// quantize → dequantize → residual into two passes with bit-identical
// results. The differential tests and FuzzFusedVsStaged pin the fused
// kernels to the functions in this package.
package quant

import (
	"fmt"
	"math"

	"threelc/internal/tensor"
)

// MinSparsity and MaxSparsity bound the sparsity multiplier s of 3-value
// quantization: 1 <= s < 2 (paper Eq. 1 and the convergence argument of
// §3.1, which needs M/2 < max|Tin|).
const (
	MinSparsity = 1.0
	MaxSparsity = 2.0 // exclusive
)

// ThreeValue holds the output of 3-value quantization: a ternary tensor
// (values in {-1, 0, +1} stored as int8) plus the full-precision scale M.
type ThreeValue struct {
	// Q holds the quantized values, one int8 in {-1,0,1} per input element.
	Q []int8
	// M is the dequantization magnitude: max(|Tin|) * s.
	M float32
	// Shape is the original tensor shape, carried for reconstruction.
	Shape []int
}

// Quantize3 applies 3-value quantization with sparsity multiplication
// (paper Eq. 1-2) to in:
//
//	M = max(|in|) * s
//	q = round(in / M)
//
// With s = 1 every element maps to {-1,0,1} with round-half-away-from-zero;
// with 1 < s < 2 more elements fall below M/2 and quantize to zero, making
// the output sparser. Quantize3 panics if s is outside [1, 2).
func Quantize3(in *tensor.Tensor, s float64) *ThreeValue {
	out := &ThreeValue{}
	Quantize3Into(in, s, out)
	return out
}

// Quantize3Into is the buffer-reusing form of Quantize3: it quantizes in
// into out, growing out.Q only when the tensor is larger than any previous
// input. A per-tensor compression context that keeps one ThreeValue across
// training steps pays no allocation in steady state.
func Quantize3Into(in *tensor.Tensor, s float64, out *ThreeValue) {
	if s < MinSparsity || s >= MaxSparsity {
		panic(fmt.Sprintf("quant: sparsity multiplier %v outside [1,2)", s))
	}
	data := in.Data()
	out.reset(in)
	m := float64(in.MaxAbs()) * s
	out.M = float32(m)
	if m == 0 {
		for i := range out.Q {
			out.Q[i] = 0
		}
		return // all-zero input quantizes to all zeros
	}
	inv := 1 / m
	for i, v := range data {
		// round(v/M) for |v| <= M/s < M can only land in {-1,0,1}.
		r := math.Round(float64(v) * inv)
		out.Q[i] = int8(r)
	}
}

// reset sizes the quantized output for in, reusing Q's backing array when
// its capacity suffices.
func (tv *ThreeValue) reset(in *tensor.Tensor) {
	n := in.Len()
	if cap(tv.Q) < n {
		tv.Q = make([]int8, n)
	}
	tv.Q = tv.Q[:n]
	tv.Shape = append(tv.Shape[:0], in.Shape()...)
}

// Dequantize3 reverses Quantize3 into a new tensor: out = M * q (Eq. 3).
func Dequantize3(tv *ThreeValue) *tensor.Tensor {
	out := tensor.New(tv.Shape...)
	DequantizeInto(tv, out)
	return out
}

// DequantizeInto writes M * q into dst, which must have the same element
// count as the quantized data.
func DequantizeInto(tv *ThreeValue, dst *tensor.Tensor) {
	d := dst.Data()
	if len(d) != len(tv.Q) {
		panic(fmt.Sprintf("quant: dequantize into %d elements, have %d", len(d), len(tv.Q)))
	}
	m := tv.M
	for i, q := range tv.Q {
		d[i] = m * float32(q)
	}
}

// CountZeros returns the number of zero entries in the quantized output,
// the quantity the sparsity multiplier controls and zero-run encoding
// exploits.
func (tv *ThreeValue) CountZeros() int {
	n := 0
	for _, q := range tv.Q {
		if q == 0 {
			n++
		}
	}
	return n
}

// Len returns the number of quantized elements.
func (tv *ThreeValue) Len() int { return len(tv.Q) }

// QuantizeStochastic3 applies stochastic 3-value quantization in the style
// of TernGrad (§5.1 "Stoch 3-value + QE"): each element quantizes to
// sign(v) with probability |v|/M and to 0 otherwise, making the quantized
// value an unbiased estimator of v/M. M = max(|in|) (no sparsity
// multiplication; TernGrad has no compression-level knob).
func QuantizeStochastic3(in *tensor.Tensor, rng *tensor.RNG) *ThreeValue {
	out := &ThreeValue{}
	QuantizeStochastic3Into(in, rng, out)
	return out
}

// QuantizeStochastic3Into is the buffer-reusing form of
// QuantizeStochastic3, with the same reuse contract as Quantize3Into.
func QuantizeStochastic3Into(in *tensor.Tensor, rng *tensor.RNG, out *ThreeValue) {
	data := in.Data()
	out.reset(in)
	m := float64(in.MaxAbs())
	out.M = float32(m)
	if m == 0 {
		for i := range out.Q {
			out.Q[i] = 0
		}
		return
	}
	inv := 1 / m
	for i, v := range data {
		out.Q[i] = 0
		p := math.Abs(float64(v)) * inv // in [0,1]
		if rng.Float64() < p {
			if v > 0 {
				out.Q[i] = 1
			} else {
				out.Q[i] = -1
			}
		}
	}
}
