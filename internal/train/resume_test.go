package train

import (
	"errors"
	"math"
	"path/filepath"
	"testing"

	"threelc/internal/compress"
	"threelc/internal/nn"
)

// allDesigns enumerates every implemented codec — the full Table-2 set.
func allDesigns() []Design {
	return []Design{
		{Name: "32-bit float", Scheme: compress.SchemeNone},
		{Name: "8-bit int", Scheme: compress.SchemeInt8},
		{Name: "3LC (s=1.75)", Scheme: compress.SchemeThreeLC, Opts: compress.Options{Sparsity: 1.75, ZeroRun: true}},
		{Name: "Stoch 3-value + QE", Scheme: compress.SchemeStoch3QE, Opts: compress.Options{Seed: 11}},
		{Name: "MQE 1-bit int", Scheme: compress.SchemeMQE1Bit},
		{Name: "25% sparsification", Scheme: compress.SchemeTopK, Opts: compress.Options{Fraction: 0.25, Seed: 5}},
		{Name: "2 local steps", Scheme: compress.SchemeLocalSteps, Opts: compress.Options{Interval: 2}},
		{Name: "round-robin exchange", Scheme: compress.SchemeRoundRobin, Opts: compress.Options{Parts: 4}},
	}
}

// captureGlobal wires cfg.BuildModel so the first constructed model — the
// run's global model — is captured for post-run inspection.
func captureGlobal(cfg *Config) **nn.Model {
	var global *nn.Model
	orig := cfg.BuildModel
	cfg.BuildModel = func() *nn.Model {
		m := orig()
		if global == nil {
			global = m
		}
		return m
	}
	return &global
}

func paramsBits(m *nn.Model) []uint32 {
	var out []uint32
	for _, p := range m.Params() {
		for _, v := range p.W.Data() {
			out = append(out, math.Float32bits(v))
		}
	}
	return out
}

// runResumeCase checks the tentpole guarantee for one configuration: a run
// checkpointed every 3 steps and "killed" after step 6 (between two
// checkpoint boundaries), then resumed from the latest checkpoint, must
// reproduce the uninterrupted run's per-step loss trajectory and final
// model state bit-for-bit.
func runResumeCase(t *testing.T, cfg Config) {
	t.Helper()
	const steps = 8
	cfg.Steps = steps
	cfg.MinCompressElems = 1 // exercise the codec on every tensor

	// Reference: uninterrupted run.
	ref := cfg
	refGlobal := captureGlobal(&ref)
	refRes, err := Run(ref)
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: checkpoint after steps 3 and 6, crash after step 6.
	path := filepath.Join(t.TempDir(), "train.ckpt")
	boom := errors.New("simulated crash")
	crashed := cfg
	crashed.CheckpointPath = path
	crashed.CheckpointEvery = 3
	crashed.OnStep = func(step int) error {
		if step == 6 {
			return boom
		}
		return nil
	}
	if _, err := Run(crashed); !errors.Is(err, boom) {
		t.Fatalf("crash run: got err %v, want simulated crash", err)
	}

	// Resume from the latest checkpoint (step 6) and finish the run.
	resumed := cfg
	resumed.ResumeFrom = path
	resGlobal := captureGlobal(&resumed)
	resRes, err := Run(resumed)
	if err != nil {
		t.Fatal(err)
	}

	if got, want := len(resRes.StepRecords), steps-6; got != want {
		t.Fatalf("resumed run recorded %d steps, want %d", got, want)
	}
	for i, sr := range resRes.StepRecords {
		want := refRes.StepRecords[6+i]
		if sr.Step != want.Step {
			t.Fatalf("resumed record %d is step %d, want %d", i, sr.Step, want.Step)
		}
		if math.Float64bits(sr.Loss) != math.Float64bits(want.Loss) {
			t.Errorf("step %d loss %v != uninterrupted %v (not bit-identical)", sr.Step, sr.Loss, want.Loss)
		}
		if sr.PushBytes != want.PushBytes || sr.PullBytes != want.PullBytes {
			t.Errorf("step %d traffic (%d,%d) != uninterrupted (%d,%d)",
				sr.Step, sr.PushBytes, sr.PullBytes, want.PushBytes, want.PullBytes)
		}
	}
	if math.Float64bits(resRes.FinalLoss) != math.Float64bits(refRes.FinalLoss) {
		t.Errorf("final loss %v != uninterrupted %v", resRes.FinalLoss, refRes.FinalLoss)
	}
	if resRes.FinalAccuracy != refRes.FinalAccuracy {
		t.Errorf("final accuracy %v != uninterrupted %v", resRes.FinalAccuracy, refRes.FinalAccuracy)
	}
	a, b := paramsBits(*refGlobal), paramsBits(*resGlobal)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("global model diverges at element %d after resume", i)
		}
	}
}

func TestResumeBitIdenticalAllCodecs(t *testing.T) {
	for _, d := range allDesigns() {
		t.Run(d.Name, func(t *testing.T) {
			runResumeCase(t, tinyConfig(d, 8))
		})
	}
}

func TestResumeBitIdenticalSharded(t *testing.T) {
	cfg := tinyConfig(Design{Name: "3LC (s=1.50)", Scheme: compress.SchemeThreeLC,
		Opts: compress.Options{Sparsity: 1.5, ZeroRun: true}}, 8)
	cfg.Shards = 2
	runResumeCase(t, cfg)
}

func TestResumeBitIdenticalStale(t *testing.T) {
	cfg := tinyConfig(Design{Name: "3LC (s=1.75)", Scheme: compress.SchemeThreeLC,
		Opts: compress.Options{Sparsity: 1.75, ZeroRun: true}}, 8)
	cfg.Staleness = 1
	runResumeCase(t, cfg)
}

func TestResumeBitIdenticalJitter(t *testing.T) {
	cfg := tinyConfig(Design{Name: "3LC (s=1.75)", Scheme: compress.SchemeThreeLC,
		Opts: compress.Options{Sparsity: 1.75, ZeroRun: true}}, 8)
	cfg.ComputeJitterStd = 0.3
	cfg.BackupWorkers = 1
	runResumeCase(t, cfg)
}

func TestResumeConfigMismatch(t *testing.T) {
	d := Design{Name: "3LC (s=1.75)", Scheme: compress.SchemeThreeLC,
		Opts: compress.Options{Sparsity: 1.75, ZeroRun: true}}
	cfg := tinyConfig(d, 8)
	cfg.MinCompressElems = 1
	path := filepath.Join(t.TempDir(), "train.ckpt")
	cfg.CheckpointPath = path
	cfg.CheckpointEvery = 4
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	wrong := tinyConfig(d, 8)
	wrong.MinCompressElems = 1
	wrong.Seed = 999 // fingerprint mismatch
	wrong.ResumeFrom = path
	if _, err := Run(wrong); err == nil {
		t.Fatal("expected resume with mismatched seed to fail")
	}
	// Codec options are fingerprinted too: the scheme byte alone would
	// match, but a different sparsity multiplier changes every wire.
	wrong = tinyConfig(d, 8)
	wrong.MinCompressElems = 1
	wrong.Design.Opts.Sparsity = 1.25
	wrong.ResumeFrom = path
	if _, err := Run(wrong); err == nil {
		t.Fatal("expected resume with mismatched sparsity to fail")
	}
}
