package train

import (
	"math"
	"testing"

	"threelc/internal/compress"
)

// hierDesigns mirrors the eight CLI designs of ParseDesign — the full
// codec matrix the hierarchical topology must preserve.
var hierDesigns = []Design{
	{Name: "32-bit float", Scheme: compress.SchemeNone},
	{Name: "8-bit int", Scheme: compress.SchemeInt8},
	{Name: "Stoch 3-value + QE", Scheme: compress.SchemeStoch3QE},
	{Name: "MQE 1-bit int", Scheme: compress.SchemeMQE1Bit},
	{Name: "25% sparsification", Scheme: compress.SchemeTopK,
		Opts: compress.Options{Fraction: 0.25}},
	{Name: "5% sparsification", Scheme: compress.SchemeTopK,
		Opts: compress.Options{Fraction: 0.05}},
	{Name: "2 local steps", Scheme: compress.SchemeLocalSteps,
		Opts: compress.Options{Interval: 2}},
	{Name: "3LC (s=1.50)", Scheme: compress.SchemeThreeLC,
		Opts: compress.Options{Sparsity: 1.5, ZeroRun: true}},
}

// TestHierarchicalMatchesFlat pins the central invariant of the two-level
// topology: in exact mode the region tier is a pure relay, so a 2-region
// run produces a bit-identical learning trajectory and identical local
// wire traffic to the flat run for every codec — only the WAN accounting
// and virtual time differ.
func TestHierarchicalMatchesFlat(t *testing.T) {
	for _, d := range hierDesigns {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			flatCfg := tinyConfig(d, 6)
			hierCfg := tinyConfig(d, 6)
			hierCfg.Regions = 2

			flat, err := Run(flatCfg)
			if err != nil {
				t.Fatal(err)
			}
			hier, err := Run(hierCfg)
			if err != nil {
				t.Fatal(err)
			}

			if flat.Regions != 1 || hier.Regions != 2 {
				t.Fatalf("Regions recorded as %d / %d, want 1 / 2", flat.Regions, hier.Regions)
			}
			if flat.FinalLoss != hier.FinalLoss {
				t.Errorf("final loss differs: flat %v hierarchical %v", flat.FinalLoss, hier.FinalLoss)
			}
			if flat.FinalAccuracy != hier.FinalAccuracy {
				t.Errorf("final accuracy differs: flat %v hierarchical %v", flat.FinalAccuracy, hier.FinalAccuracy)
			}
			if flat.TotalPushBytes != hier.TotalPushBytes || flat.TotalPullBytes != hier.TotalPullBytes {
				t.Errorf("local traffic differs: flat %d/%d hierarchical %d/%d",
					flat.TotalPushBytes, flat.TotalPullBytes, hier.TotalPushBytes, hier.TotalPullBytes)
			}
			for i := range flat.StepRecords {
				a, b := flat.StepRecords[i], hier.StepRecords[i]
				if a.Loss != b.Loss || a.PushBytes != b.PushBytes || a.PullBytes != b.PullBytes {
					t.Fatalf("step %d diverges: flat %+v hierarchical %+v", i, a, b)
				}
				if b.WANBytes <= 0 {
					t.Fatalf("step %d recorded no WAN traffic in hierarchical run", i)
				}
				if a.WANBytes != 0 {
					t.Fatalf("step %d recorded WAN traffic %d in flat run", i, a.WANBytes)
				}
			}
			if flat.TotalWANBytes != 0 {
				t.Errorf("flat run accumulated WAN bytes %d", flat.TotalWANBytes)
			}
			if hier.TotalWANBytes <= 0 {
				t.Error("hierarchical run accumulated no WAN bytes")
			}
			// The slow inter-region link (100 Mbps default) adds
			// un-overlapped time the flat run never pays.
			if hier.TotalVirtualSec <= flat.TotalVirtualSec {
				t.Errorf("hierarchical virtual time %v not above flat %v",
					hier.TotalVirtualSec, flat.TotalVirtualSec)
			}
		})
	}
}

// TestHierarchicalRecompressConverges exercises fused re-encode mode: the
// region aggregator decode-accumulates local pushes and re-encodes one
// residual stream per tensor, which changes the trajectory (aggregator-side
// error accumulation) but must still learn and must move fewer WAN bytes
// than relaying every worker bundle.
func TestHierarchicalRecompressConverges(t *testing.T) {
	d := Design{Name: "3LC (s=1.00)", Scheme: compress.SchemeThreeLC,
		Opts: compress.Options{Sparsity: 1.0, ZeroRun: true}}

	exactCfg := tinyConfig(d, 40)
	exactCfg.Regions = 2
	recCfg := tinyConfig(d, 40)
	recCfg.Regions = 2
	recCfg.RegionRecompress = true

	exact, err := Run(exactCfg)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Run(recCfg)
	if err != nil {
		t.Fatal(err)
	}

	if math.IsNaN(rec.FinalLoss) || math.IsInf(rec.FinalLoss, 0) {
		t.Fatalf("recompress run diverged: final loss %v", rec.FinalLoss)
	}
	if rec.FinalAccuracy < 0.3 {
		t.Errorf("recompress accuracy %v too low for a learnable task", rec.FinalAccuracy)
	}
	// Exact mode bundles 2 worker wires per region; recompress forwards a
	// single re-encoded stream, so the WAN leg must shrink.
	if rec.TotalWANBytes >= exact.TotalWANBytes {
		t.Errorf("recompress WAN bytes %d not below exact-mode %d",
			rec.TotalWANBytes, exact.TotalWANBytes)
	}
}

// TestHierarchicalEntropyLossless pins that the streaming entropy second
// stage on the WAN leg is purely a wire-format change: the recompress
// trajectory is bit-identical with and without it, and only the accounted
// WAN bytes move.
func TestHierarchicalEntropyLossless(t *testing.T) {
	d := Design{Name: "3LC (s=1.50)", Scheme: compress.SchemeThreeLC,
		Opts: compress.Options{Sparsity: 1.5, ZeroRun: true}}

	plainCfg := tinyConfig(d, 12)
	plainCfg.Regions = 2
	plainCfg.RegionRecompress = true
	entCfg := tinyConfig(d, 12)
	entCfg.Regions = 2
	entCfg.RegionRecompress = true
	entCfg.RegionEntropy = compress.EntropyHuffman

	plain, err := Run(plainCfg)
	if err != nil {
		t.Fatal(err)
	}
	ent, err := Run(entCfg)
	if err != nil {
		t.Fatal(err)
	}

	if plain.FinalLoss != ent.FinalLoss || plain.FinalAccuracy != ent.FinalAccuracy {
		t.Errorf("entropy stage changed the trajectory: plain %v/%v entropy %v/%v",
			plain.FinalLoss, plain.FinalAccuracy, ent.FinalLoss, ent.FinalAccuracy)
	}
	for i := range plain.StepRecords {
		if plain.StepRecords[i].Loss != ent.StepRecords[i].Loss {
			t.Fatalf("step %d loss diverges with entropy stage on", i)
		}
	}
	if plain.TotalWANBytes == ent.TotalWANBytes {
		t.Errorf("entropy stage did not change WAN accounting (%d bytes both ways)",
			plain.TotalWANBytes)
	}
	t.Logf("WAN bytes: plain %d, entropy %d (%.3fx)",
		plain.TotalWANBytes, ent.TotalWANBytes,
		float64(plain.TotalWANBytes)/float64(ent.TotalWANBytes))
}

// TestHierarchicalConfigRejections pins the unsupported combinations.
func TestHierarchicalConfigRejections(t *testing.T) {
	base := tinyConfig(Design{Name: "32-bit float", Scheme: compress.SchemeNone}, 2)
	base.Regions = 2

	sharded := base
	sharded.Shards = 2
	if _, err := Run(sharded); err == nil {
		t.Error("Regions with Shards > 1 accepted")
	}

	elastic := base
	elastic.Dropouts = []Dropout{{Worker: 1, From: 1, To: 2}}
	if _, err := Run(elastic); err == nil {
		t.Error("Regions with Dropouts accepted")
	}

	tooMany := base
	tooMany.Regions = 8 // more regions than the 4 workers
	if _, err := Run(tooMany); err == nil {
		t.Error("Regions > Workers accepted")
	}
}
