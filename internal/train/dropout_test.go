package train

import (
	"math"
	"testing"

	"threelc/internal/compress"
	"threelc/internal/data"
	"threelc/internal/ps"
	"threelc/internal/tensor"
)

// stagedDropoutReference replicates Run's elastic-dropout semantics with
// the plain staged ps driver — serial whole-set AddPush in worker order,
// no overlapped aggregation, no pipelining — and returns the final global
// model's parameter bits. Run's pipelined path must match it exactly: the
// equivalence pins that dropout and rejoin compose with the overlapped
// pipeline without changing a single bit.
func stagedDropoutReference(t *testing.T, cfg Config) []uint32 {
	t.Helper()
	trainSet, _ := data.Synthetic(cfg.Data)
	global := cfg.BuildModel()
	optCfg := *cfg.Optimizer
	optCfg.Workers = cfg.Workers
	optCfg.TotalSteps = cfg.Steps
	psCfg := ps.Config{
		Scheme:           cfg.Design.Scheme,
		Opts:             cfg.Design.Opts,
		Workers:          cfg.Workers,
		MinCompressElems: cfg.MinCompressElems,
		Parallelism:      1,
		Optimizer:        optCfg,
	}
	server := ps.NewServer(global, psCfg)
	workers := make([]*ps.Worker, cfg.Workers)
	rngs := make([]*tensor.RNG, cfg.Workers)
	shards := make([][]int, cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		m := cfg.BuildModel()
		m.CopyParamsFrom(global)
		workers[w] = ps.NewWorker(w, m, psCfg)
		rngs[w] = tensor.NewRNG(cfg.Seed + 1000*uint64(w) + 7)
		for i := w; i < trainSet.Len(); i += cfg.Workers {
			shards[w] = append(shards[w], i)
		}
	}
	down := func(w, step int) bool {
		for _, d := range cfg.Dropouts {
			if d.Worker == w && step >= d.From && step < d.To {
				return true
			}
		}
		return false
	}
	missed := make([][][][]byte, cfg.Workers)
	for step := 0; step < cfg.Steps; step++ {
		server.BeginStep()
		wires := make([][][]byte, cfg.Workers)
		for w := 0; w < cfg.Workers; w++ {
			if down(w, step) {
				continue
			}
			for _, ws := range missed[w] {
				if _, err := workers[w].ApplyPull(ws); err != nil {
					t.Fatal(err)
				}
			}
			missed[w] = nil
			idx := make([]int, cfg.BatchPerWorker)
			for i := range idx {
				idx[i] = shards[w][rngs[w].Intn(len(shards[w]))]
			}
			x, labels := trainSet.FlatBatch(idx, nil, nil)
			workers[w].Model.TrainStep(x, labels)
			wires[w], _ = workers[w].CompressGrads()
		}
		for w := 0; w < cfg.Workers; w++ {
			if wires[w] == nil {
				continue
			}
			if _, err := server.AddPush(w, wires[w]); err != nil {
				t.Fatal(err)
			}
		}
		pull, _, err := server.FinishStep()
		if err != nil {
			t.Fatal(err)
		}
		for w := 0; w < cfg.Workers; w++ {
			if down(w, step) {
				continue
			}
			if _, err := workers[w].ApplyPull(pull); err != nil {
				t.Fatal(err)
			}
		}
		var cp [][]byte
		for w := 0; w < cfg.Workers; w++ {
			if !down(w, step) {
				continue
			}
			if cp == nil {
				cp = make([][]byte, len(pull))
				for i, pw := range pull {
					if pw != nil {
						cp[i] = append([]byte(nil), pw...)
					}
				}
			}
			missed[w] = append(missed[w], cp)
		}
	}
	return paramsBits(global)
}

// TestDropoutRejoinMatchesStagedReference: a worker dropping out and
// rejoining under Run's overlapped pipeline yields bit-identical global
// model state to the staged serial reference driver, for an
// error-accumulating codec (3LC), a stateless one (int8), and raw floats.
func TestDropoutRejoinMatchesStagedReference(t *testing.T) {
	designs := []Design{
		{Name: "3LC (s=1.75)", Scheme: compress.SchemeThreeLC, Opts: compress.Options{Sparsity: 1.75, ZeroRun: true}},
		{Name: "8-bit int", Scheme: compress.SchemeInt8},
		{Name: "32-bit float", Scheme: compress.SchemeNone},
	}
	for _, d := range designs {
		t.Run(d.Name, func(t *testing.T) {
			cfg := tinyConfig(d, 8)
			cfg.MinCompressElems = 1
			cfg.Parallelism = 1
			cfg.Dropouts = []Dropout{
				{Worker: 1, From: 2, To: 5}, // drops and rejoins mid-run
				{Worker: 3, From: 6, To: 8}, // down through the end
			}
			run := cfg
			runGlobal := captureGlobal(&run)
			res, err := Run(run)
			if err != nil {
				t.Fatal(err)
			}
			if math.IsNaN(res.FinalLoss) {
				t.Fatal("dropout run produced NaN loss")
			}
			got := paramsBits(*runGlobal)
			want := stagedDropoutReference(t, cfg)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("dropout run diverges from staged reference at element %d", i)
				}
			}
		})
	}
}

// TestDropoutResidualFoldsOnRejoin: with an error-accumulating codec, the
// residual a worker accumulated before dropping out is still present in
// its push contexts at rejoin time (frozen while away) — the property the
// paper's dropout-tolerance argument relies on.
func TestDropoutResidualFoldsOnRejoin(t *testing.T) {
	d := Design{Name: "3LC (s=1.75)", Scheme: compress.SchemeThreeLC,
		Opts: compress.Options{Sparsity: 1.75, ZeroRun: true}}
	cfg := tinyConfig(d, 6)
	cfg.MinCompressElems = 1
	cfg.Dropouts = []Dropout{{Worker: 2, From: 2, To: 4}}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestDropoutValidation(t *testing.T) {
	d := Design{Name: "32-bit float", Scheme: compress.SchemeNone}
	cfg := tinyConfig(d, 4)
	cfg.Dropouts = []Dropout{{Worker: 0, From: 1, To: 2}}
	if _, err := Run(cfg); err == nil {
		t.Error("expected error for chief dropout")
	}
	cfg = tinyConfig(d, 4)
	cfg.Dropouts = []Dropout{{Worker: 1, From: 3, To: 3}}
	if _, err := Run(cfg); err == nil {
		t.Error("expected error for empty dropout interval")
	}
	cfg = tinyConfig(d, 4)
	cfg.Dropouts = []Dropout{{Worker: 1, From: 1, To: 2}}
	cfg.Staleness = 1
	if _, err := Run(cfg); err == nil {
		t.Error("expected error for dropouts combined with staleness")
	}
}
