// CLI design-name resolution, shared by cmd/3lc-train and the
// checkpoint/resume tooling so both build identical configurations.
package train

import (
	"fmt"
	"strings"

	"threelc/internal/compress"
	"threelc/internal/data"
	"threelc/internal/netsim"
	"threelc/internal/nn"
	"threelc/internal/opt"
)

// ParseDesign resolves a CLI design name (float32 | int8 | stoch3 |
// mqe1bit | sparse25 | sparse5 | local2 | 3lc) to its Design.
func ParseDesign(name string, sparsity float64, noZRE bool) (Design, error) {
	switch strings.ToLower(name) {
	case "float32", "none", "baseline":
		return Design{Name: "32-bit float", Scheme: compress.SchemeNone}, nil
	case "int8":
		return Design{Name: "8-bit int", Scheme: compress.SchemeInt8}, nil
	case "stoch3":
		return Design{Name: "Stoch 3-value + QE", Scheme: compress.SchemeStoch3QE}, nil
	case "mqe1bit":
		return Design{Name: "MQE 1-bit int", Scheme: compress.SchemeMQE1Bit}, nil
	case "sparse25":
		return Design{Name: "25% sparsification", Scheme: compress.SchemeTopK,
			Opts: compress.Options{Fraction: 0.25}}, nil
	case "sparse5":
		return Design{Name: "5% sparsification", Scheme: compress.SchemeTopK,
			Opts: compress.Options{Fraction: 0.05}}, nil
	case "local2":
		return Design{Name: "2 local steps", Scheme: compress.SchemeLocalSteps,
			Opts: compress.Options{Interval: 2}}, nil
	case "3lc":
		label := fmt.Sprintf("3LC (s=%.2f)", sparsity)
		if noZRE {
			label += " no ZRE"
		}
		return Design{Name: label, Scheme: compress.SchemeThreeLC,
			Opts: compress.Options{Sparsity: sparsity, ZeroRun: !noZRE}}, nil
	}
	return Design{}, fmt.Errorf("unknown design %q", name)
}

// CLIOptions mirrors the training flags shared by cmd/3lc-train and
// cmd/3lc-ckpt -resume. Both commands build their Config through
// CLIConfig so a checkpoint written by one is resumable by the other
// without the model architecture or optimizer tuning silently drifting
// between the two assemblies.
type CLIOptions struct {
	Design    Design
	Workers   int
	Steps     int
	Batch     int
	Bandwidth float64
	EvalEvery int
	Backup    int
	Jitter    float64
	ResNet    bool
	Seed      uint64
}

// CLIConfig assembles the standard CLI training configuration: the
// synthetic-data workload (MLP by default, MicroResNet with ResNet), the
// tuned SGD schedule, and the calibrated virtual network.
func CLIConfig(o CLIOptions) Config {
	dcfg := data.DefaultConfig()
	var build func() *nn.Model
	flat := true
	if o.ResNet {
		flat = false
		build = func() *nn.Model {
			cfg := nn.DefaultMicroResNet()
			cfg.Seed = o.Seed
			return nn.NewMicroResNet(cfg)
		}
	} else {
		in := dcfg.C * dcfg.H * dcfg.W
		build = func() *nn.Model { return nn.NewMLP(in, []int{48}, dcfg.Classes, o.Seed) }
	}
	optCfg := opt.TunedSGDConfig(o.Workers, o.Steps)
	cfg := Config{
		Design:         o.Design,
		Workers:        o.Workers,
		BatchPerWorker: o.Batch,
		Steps:          o.Steps,
		Data:           dcfg,
		BuildModel:     build,
		FlatInput:      flat,
		Augment:        o.ResNet,
		Net:            netsim.DefaultParams(o.Bandwidth),
		Optimizer:      &optCfg,
		EvalEvery:      o.EvalEvery,
		RecordSteps:    true,
		Seed:           o.Seed,

		BackupWorkers:    o.Backup,
		ComputeJitterStd: o.Jitter,
	}
	cfg.Net.Workers = o.Workers
	return cfg
}
