package train

import (
	"testing"

	"threelc/internal/compress"
	"threelc/internal/data"
	"threelc/internal/nn"
)

// TestShardedRunMatchesSingleServer pins the end-to-end contract of the
// sharded tier inside the training driver: the same run with 1 and 4
// parameter-server shards produces identical learning trajectories and
// identical wire traffic — sharding changes where tensors live and how
// fast the tier runs, never what it computes.
func TestShardedRunMatchesSingleServer(t *testing.T) {
	base := Config{
		Design: Design{
			Name:   "3LC (s=1.50)",
			Scheme: compress.SchemeThreeLC,
			Opts:   compress.Options{Sparsity: 1.5, ZeroRun: true},
		},
		Workers:        3,
		BatchPerWorker: 8,
		Steps:          6,
		Data:           data.Config{Train: 120, Test: 40, C: 3, H: 8, W: 8, Classes: 4, Seed: 5},
		BuildModel: func() *nn.Model {
			return nn.NewMLP(3*8*8, []int{24, 16}, 4, 3)
		},
		FlatInput:        true,
		MinCompressElems: 1,
		Parallelism:      1,
		RecordSteps:      true,
		Seed:             11,
	}

	single := base
	sharded := base
	sharded.Shards = 4

	rs, err := Run(single)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := Run(sharded)
	if err != nil {
		t.Fatal(err)
	}

	if rm.Shards != 4 || rs.Shards != 1 {
		t.Fatalf("Shards recorded as %d / %d, want 4 / 1", rm.Shards, rs.Shards)
	}
	if rs.FinalLoss != rm.FinalLoss {
		t.Errorf("final loss differs: single %v sharded %v", rs.FinalLoss, rm.FinalLoss)
	}
	if rs.FinalAccuracy != rm.FinalAccuracy {
		t.Errorf("final accuracy differs: single %v sharded %v", rs.FinalAccuracy, rm.FinalAccuracy)
	}
	if rs.TotalPushBytes != rm.TotalPushBytes || rs.TotalPullBytes != rm.TotalPullBytes {
		t.Errorf("traffic differs: single %d/%d sharded %d/%d",
			rs.TotalPushBytes, rs.TotalPullBytes, rm.TotalPushBytes, rm.TotalPullBytes)
	}
	for i := range rs.StepRecords {
		a, b := rs.StepRecords[i], rm.StepRecords[i]
		if a.Loss != b.Loss || a.PushBytes != b.PushBytes || a.PullBytes != b.PullBytes {
			t.Fatalf("step %d diverges: single %+v sharded %+v", i, a, b)
		}
	}
	// The sharded virtual network divides server traffic across 4 NICs:
	// communication-bound steps must not get slower.
	if rm.TotalVirtualSec > rs.TotalVirtualSec*1.001 {
		t.Errorf("sharded virtual time %v exceeds single-server %v", rm.TotalVirtualSec, rs.TotalVirtualSec)
	}
}

// TestShardedStalenessRun exercises the sharded tier under the
// stale-synchronous emulation (pull history retention + per-worker delay)
// — the combination the async pipeline's retry path is designed around.
func TestShardedStalenessRun(t *testing.T) {
	cfg := Config{
		Design:         Design{Name: "8-bit int", Scheme: compress.SchemeInt8},
		Workers:        3,
		BatchPerWorker: 8,
		Steps:          5,
		Data:           data.Config{Train: 90, Test: 30, C: 3, H: 8, W: 8, Classes: 4, Seed: 5},
		BuildModel: func() *nn.Model {
			return nn.NewMLP(3*8*8, []int{24}, 4, 3)
		},
		FlatInput:        true,
		MinCompressElems: 1,
		Parallelism:      1,
		Staleness:        2,
		Shards:           3,
		Seed:             11,
	}
	ref := cfg
	ref.Shards = 0
	rs, err := Run(ref)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rs.FinalLoss != rm.FinalLoss {
		t.Errorf("stale-sync loss differs: single %v sharded %v", rs.FinalLoss, rm.FinalLoss)
	}
}
