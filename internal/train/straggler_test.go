package train

import (
	"testing"

	"threelc/internal/compress"
)

func TestBackupWorkersValidation(t *testing.T) {
	cfg := tinyConfig(Design{Name: "x", Scheme: compress.SchemeNone}, 5)
	cfg.BackupWorkers = cfg.Workers // must be < workers
	if _, err := Run(cfg); err == nil {
		t.Error("expected error for BackupWorkers >= Workers")
	}
	cfg.BackupWorkers = -1
	if _, err := Run(cfg); err == nil {
		t.Error("expected error for negative BackupWorkers")
	}
}

func TestBackupWorkersReduceStragglerCost(t *testing.T) {
	// Under compute jitter, accepting Workers-1 pushes must give a lower
	// virtual time than waiting for the slowest worker.
	base := tinyConfig(Design{Name: "32-bit float", Scheme: compress.SchemeNone}, 30)
	base.ComputeJitterStd = 0.8

	backup := base
	backup.BackupWorkers = 1

	rBase, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	rBackup, err := Run(backup)
	if err != nil {
		t.Fatal(err)
	}
	if rBackup.TotalVirtualSec >= rBase.TotalVirtualSec {
		t.Errorf("backup workers did not reduce time: %v vs %v",
			rBackup.TotalVirtualSec, rBase.TotalVirtualSec)
	}
	// Dropped pushes mean less push traffic.
	if rBackup.TotalPushBytes >= rBase.TotalPushBytes {
		t.Errorf("backup workers did not reduce push traffic: %d vs %d",
			rBackup.TotalPushBytes, rBase.TotalPushBytes)
	}
	// Training must still converge to something useful.
	if rBackup.FinalAccuracy < 0.3 {
		t.Errorf("accuracy %v collapsed with backup workers", rBackup.FinalAccuracy)
	}
}

func TestBackupWorkersStillConvergeWith3LC(t *testing.T) {
	cfg := tinyConfig(Design{
		Name: "3LC (s=1.00)", Scheme: compress.SchemeThreeLC,
		Opts: compress.Options{Sparsity: 1.0, ZeroRun: true},
	}, 30)
	cfg.ComputeJitterStd = 0.5
	cfg.BackupWorkers = 1
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.FinalAccuracy < 0.3 {
		t.Errorf("3LC + backup workers accuracy %v", r.FinalAccuracy)
	}
}

func TestJitterWithoutBackupWaitsForSlowest(t *testing.T) {
	// Plain BSP with jitter must be slower than without jitter: the
	// barrier pays the max multiplier (lognormal mean 1 but max > 1).
	noJitter := tinyConfig(Design{Name: "32-bit float", Scheme: compress.SchemeNone}, 30)
	withJitter := noJitter
	withJitter.ComputeJitterStd = 0.8

	r0, err := Run(noJitter)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Run(withJitter)
	if err != nil {
		t.Fatal(err)
	}
	if r1.TotalVirtualSec <= r0.TotalVirtualSec {
		t.Errorf("jitter did not slow BSP: %v vs %v", r1.TotalVirtualSec, r0.TotalVirtualSec)
	}
}

func TestDeterministicDropWithoutJitter(t *testing.T) {
	cfg := tinyConfig(Design{Name: "32-bit float", Scheme: compress.SchemeNone}, 10)
	cfg.BackupWorkers = 1
	r1, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.TotalPushBytes != r2.TotalPushBytes || r1.FinalAccuracy != r2.FinalAccuracy {
		t.Error("backup-worker runs without jitter must be deterministic")
	}
}
