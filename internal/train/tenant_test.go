package train

import (
	"fmt"
	"sync"
	"testing"

	"threelc/internal/compress"
	"threelc/internal/data"
	"threelc/internal/nn"
	"threelc/internal/shard"
	"threelc/internal/tenant"
)

// tenantRunConfig builds one tenant's full training configuration:
// distinct codec, model seed, and data seed per id, so concurrent jobs on
// a shared tier do genuinely different work.
func tenantRunConfig(id int) Config {
	designs := []Design{
		{Name: "3LC (s=1.50)", Scheme: compress.SchemeThreeLC, Opts: compress.Options{Sparsity: 1.5, ZeroRun: true}},
		{Name: "8-bit int", Scheme: compress.SchemeInt8},
		{Name: "float32", Scheme: compress.SchemeNone},
		{Name: "topk", Scheme: compress.SchemeTopK, Opts: compress.Options{Fraction: 0.3, Seed: 9}},
	}
	mseed := uint64(3 + id)
	return Config{
		Design:         designs[id%len(designs)],
		Workers:        2,
		BatchPerWorker: 6,
		Steps:          4,
		Data:           data.Config{Train: 60, Test: 20, C: 3, H: 8, W: 8, Classes: 4, Seed: uint64(5 + id)},
		BuildModel: func() *nn.Model {
			return nn.NewMLP(3*8*8, []int{16}, 4, mseed)
		},
		FlatInput:        true,
		MinCompressElems: 1,
		Parallelism:      1,
		RecordSteps:      true,
		Seed:             uint64(11 + id),
	}
}

// requireIdentical asserts two runs took bit-identical trajectories.
func requireIdentical(t *testing.T, label string, ref, got *Result) {
	t.Helper()
	if ref.FinalLoss != got.FinalLoss {
		t.Errorf("%s: final loss differs: solo %v shared %v", label, ref.FinalLoss, got.FinalLoss)
	}
	if ref.FinalAccuracy != got.FinalAccuracy {
		t.Errorf("%s: final accuracy differs: solo %v shared %v", label, ref.FinalAccuracy, got.FinalAccuracy)
	}
	if ref.TotalPushBytes != got.TotalPushBytes || ref.TotalPullBytes != got.TotalPullBytes {
		t.Errorf("%s: traffic differs: solo %d/%d shared %d/%d",
			label, ref.TotalPushBytes, ref.TotalPullBytes, got.TotalPushBytes, got.TotalPullBytes)
	}
	for i := range ref.StepRecords {
		a, b := ref.StepRecords[i], got.StepRecords[i]
		if a.Loss != b.Loss || a.PushBytes != b.PushBytes || a.PullBytes != b.PullBytes {
			t.Fatalf("%s: step %d diverges: solo %+v shared %+v", label, i, a, b)
		}
	}
}

// TestTrainTenantsShareTierBitIdentical is the end-to-end multi-tenant
// gate at the training-driver level: several concurrent jobs — different
// codecs, models, and data — run over ONE shared shard tier, and each
// must reproduce its solo dedicated-tier run bit for bit.
func TestTrainTenantsShareTierBitIdentical(t *testing.T) {
	const tenants = 4

	solo := make([]*Result, tenants)
	for i := 0; i < tenants; i++ {
		cfg := tenantRunConfig(i)
		cfg.Shards = 2
		r, err := Run(cfg)
		if err != nil {
			t.Fatalf("tenant %d solo: %v", i+1, err)
		}
		solo[i] = r
	}

	svc := shard.NewService(shard.Config{Shards: 2}, tenant.NewRegistry(tenants))
	defer svc.Close()
	shared := make([]*Result, tenants)
	errs := make([]error, tenants)
	var wg sync.WaitGroup
	for i := 0; i < tenants; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cfg := tenantRunConfig(i)
			cfg.Service = svc
			cfg.Tenant = tenant.ID(i + 1)
			shared[i], errs[i] = Run(cfg)
		}(i)
	}
	wg.Wait()

	for i := 0; i < tenants; i++ {
		if errs[i] != nil {
			t.Fatalf("tenant %d shared: %v", i+1, errs[i])
		}
		if shared[i].Shards != 2 {
			t.Errorf("tenant %d recorded %d shards, want 2", i+1, shared[i].Shards)
		}
		requireIdentical(t, fmt.Sprintf("tenant %d", i+1), solo[i], shared[i])
	}
	if n := svc.Registry().Len(); n != 0 {
		t.Errorf("%d tenants still admitted after all runs retired", n)
	}
}

// TestTrainManyTenantsComplete is the scale smoke: 64 concurrent jobs
// admitted to one shared tier must all complete training and retire. It
// checks completion and per-tenant accounting, not trajectories — the
// bit-identity gate above covers those.
func TestTrainManyTenantsComplete(t *testing.T) {
	const tenants = 64
	svc := shard.NewService(shard.Config{Shards: 4}, tenant.NewRegistry(tenants))
	defer svc.Close()

	results := make([]*Result, tenants)
	errs := make([]error, tenants)
	var wg sync.WaitGroup
	for i := 0; i < tenants; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cfg := tenantRunConfig(i)
			cfg.Steps = 2
			cfg.RecordSteps = false
			cfg.Service = svc
			cfg.Tenant = tenant.ID(i + 1)
			cfg.TenantLimits = tenant.Limits{MaxSteps: 8, MaxOutstanding: 16}
			results[i], errs[i] = Run(cfg)
		}(i)
	}
	wg.Wait()

	for i := 0; i < tenants; i++ {
		if errs[i] != nil {
			t.Fatalf("tenant %d: %v", i+1, errs[i])
		}
		if results[i].FinalLoss <= 0 {
			t.Errorf("tenant %d: no training happened (loss %v)", i+1, results[i].FinalLoss)
		}
	}
	if n := svc.Registry().Len(); n != 0 {
		t.Errorf("%d tenants still admitted after all runs retired", n)
	}
}

// TestTrainServiceConfigValidation pins the driver's tenancy plumbing:
// Shards and Service are mutually exclusive, and a quota-limited tenant
// surfaces tenant.ErrQuota from Run.
func TestTrainServiceConfigValidation(t *testing.T) {
	svc := shard.NewService(shard.Config{Shards: 2}, nil)
	defer svc.Close()

	cfg := tenantRunConfig(0)
	cfg.Service = svc
	cfg.Shards = 2
	if _, err := Run(cfg); err == nil {
		t.Fatal("Run accepted both Shards and Service")
	}
}
