// Full-state checkpoint assembly for train.Run. A snapshot captures
// everything the run's bit-identical continuation depends on:
//
//	meta            step counter + configuration fingerprint
//	model/global    global model weights + BN stats (checkpoint v1 body)
//	model/worker/N  every worker replica (weights + its own BN stats)
//	server          optimizer momentum/step + server pull contexts
//	worker/N        worker push contexts (error accumulation, RNG streams)
//	rng             jitter + per-worker data-sampling RNG positions
//	pullhist        stale-synchronous pull history (Staleness > 0 only)
//	missed          pulls retained for absent workers' rejoin replay
//
// Restore validates the configuration fingerprint first: resuming under a
// different worker count, shard count, scheme, step budget, staleness, or
// seed would silently diverge, so it is an error instead.
package train

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"

	"threelc/internal/checkpoint"
	"threelc/internal/compress"
	"threelc/internal/nn"
	"threelc/internal/ps"
	"threelc/internal/tensor"
)

const trainStateVersion = 1

var tle = binary.LittleEndian

// ckptWriter runs at most one checkpoint file write in the background.
// write hands the serialized snapshot to a goroutine after joining the
// previous one, so the training loop never blocks on disk while at most
// one snapshot is in flight.
type ckptWriter struct {
	path    string
	pending chan error
}

func (cw *ckptWriter) write(st *checkpoint.State) error {
	if err := cw.wait(); err != nil {
		return err
	}
	cw.pending = make(chan error, 1)
	go func() { cw.pending <- checkpoint.SaveStateFile(cw.path, st) }()
	return nil
}

func (cw *ckptWriter) wait() error {
	if cw.pending == nil {
		return nil
	}
	err := <-cw.pending
	cw.pending = nil
	return err
}

// --- serialization helpers --------------------------------------------------

func appendU32(dst []byte, v uint32) []byte {
	var b [4]byte
	tle.PutUint32(b[:], v)
	return append(dst, b[:]...)
}

func appendU64v(dst []byte, v uint64) []byte {
	var b [8]byte
	tle.PutUint64(b[:], v)
	return append(dst, b[:]...)
}

func readU32(src []byte) (uint32, []byte, error) {
	if len(src) < 4 {
		return 0, nil, fmt.Errorf("train: state blob truncated")
	}
	return tle.Uint32(src), src[4:], nil
}

func appendRNG(dst []byte, r *tensor.RNG) []byte {
	return r.AppendState(dst)
}

func readRNG(src []byte, r *tensor.RNG) ([]byte, error) {
	if len(src) < tensor.RNGStateLen {
		return nil, fmt.Errorf("train: RNG state truncated")
	}
	if err := r.RestoreState(src[:tensor.RNGStateLen]); err != nil {
		return nil, fmt.Errorf("train: %w", err)
	}
	return src[tensor.RNGStateLen:], nil
}

// appendWireSets serializes a list of pull wire sets (deep copies, since
// the snapshot outlives the buffers they came from).
func appendWireSets(dst []byte, sets [][][]byte) []byte {
	dst = appendU32(dst, uint32(len(sets)))
	for _, set := range sets {
		dst = appendU32(dst, uint32(len(set)))
		for _, w := range set {
			dst = appendU32(dst, uint32(len(w)))
			dst = append(dst, w...)
		}
	}
	return dst
}

func readWireSets(src []byte) ([][][]byte, []byte, error) {
	count, src, err := readU32(src)
	if err != nil {
		return nil, nil, err
	}
	// Counts are untrusted until their contents parse: every element is
	// appended after its bytes are validated, so a corrupt count fails
	// with a truncation error instead of forcing a huge allocation.
	sets := make([][][]byte, 0, min(int(count), 1024))
	for i := 0; i < int(count); i++ {
		var tensors uint32
		tensors, src, err = readU32(src)
		if err != nil {
			return nil, nil, err
		}
		set := make([][]byte, 0, min(int(tensors), 1024))
		for t := 0; t < int(tensors); t++ {
			var n uint32
			n, src, err = readU32(src)
			if err != nil {
				return nil, nil, err
			}
			if len(src) < int(n) {
				return nil, nil, fmt.Errorf("train: wire set truncated (%d of %d bytes)", len(src), n)
			}
			var w []byte
			if n > 0 {
				w = append([]byte(nil), src[:n]...)
			}
			set = append(set, w)
			src = src[n:]
		}
		sets = append(sets, set)
	}
	return sets, src, nil
}

// --- capture ----------------------------------------------------------------

// captureRunState assembles a full-state snapshot at the boundary after
// `step` completed steps. Every payload is freshly serialized (copied), so
// the snapshot is immutable once built and safe to write asynchronously.
func captureRunState(cfg *Config, step int, global *nn.Model, server stepServer,
	workers []*ps.Worker, rngs []*tensor.RNG, jitter *tensor.RNG,
	pullHistory [][][]byte, missed [][][][]byte) (*checkpoint.State, error) {

	st := checkpoint.NewState()

	meta := appendU32(nil, trainStateVersion)
	meta = appendU64v(meta, uint64(step))
	meta = appendU32(meta, uint32(cfg.Workers))
	meta = appendU32(meta, uint32(max(cfg.Shards, 1)))
	meta = append(meta, byte(cfg.Design.Scheme))
	meta = appendU32(meta, uint32(cfg.Steps))
	meta = appendU32(meta, uint32(cfg.Staleness))
	meta = appendU64v(meta, cfg.Seed)
	meta = appendU32(meta, uint32(cfg.BackupWorkers))
	meta = appendU32(meta, uint32(cfg.BatchPerWorker))
	meta = appendU64v(meta, math.Float64bits(cfg.Design.Opts.Sparsity))
	meta = appendU64v(meta, math.Float64bits(cfg.Design.Opts.Fraction))
	meta = appendU32(meta, uint32(cfg.Design.Opts.Interval))
	meta = appendU32(meta, uint32(cfg.Design.Opts.Parts))
	if cfg.Design.Opts.ZeroRun {
		meta = append(meta, 1)
	} else {
		meta = append(meta, 0)
	}
	meta = appendU64v(meta, cfg.Design.Opts.Seed)
	meta = appendU64v(meta, math.Float64bits(cfg.ComputeJitterStd))
	meta = appendU32(meta, uint32(len(cfg.Dropouts)))
	for _, d := range cfg.Dropouts {
		meta = appendU32(meta, uint32(d.Worker))
		meta = appendU32(meta, uint32(d.From))
		meta = appendU32(meta, uint32(d.To))
	}
	st.Add("meta", meta)

	var buf bytes.Buffer
	if err := checkpoint.Save(&buf, global); err != nil {
		return nil, fmt.Errorf("train: checkpoint global model: %w", err)
	}
	st.Add("model/global", append([]byte(nil), buf.Bytes()...))
	for w, wk := range workers {
		buf.Reset()
		if err := checkpoint.Save(&buf, wk.Model); err != nil {
			return nil, fmt.Errorf("train: checkpoint worker %d model: %w", w, err)
		}
		st.Add(fmt.Sprintf("model/worker/%d", w), append([]byte(nil), buf.Bytes()...))
	}

	st.Add("server", server.AppendState(nil))
	for w, wk := range workers {
		st.Add(fmt.Sprintf("worker/%d", w), wk.AppendState(nil))
	}

	rng := appendRNG(nil, jitter)
	for _, r := range rngs {
		rng = appendRNG(rng, r)
	}
	st.Add("rng", rng)

	if cfg.Staleness > 0 {
		st.Add("pullhist", appendWireSets(nil, pullHistory))
	}
	anyMissed := false
	for _, m := range missed {
		if len(m) > 0 {
			anyMissed = true
			break
		}
	}
	if anyMissed {
		blob := appendU32(nil, uint32(len(missed)))
		for _, m := range missed {
			blob = appendWireSets(blob, m)
		}
		st.Add("missed", blob)
	}
	return st, nil
}

// --- restore ----------------------------------------------------------------

func section(st *checkpoint.State, name string) ([]byte, error) {
	sec, ok := st.Section(name)
	if !ok {
		return nil, fmt.Errorf("train: checkpoint has no %q section", name)
	}
	return sec, nil
}

// StateInfo is a full-state checkpoint's configuration fingerprint plus
// the step it was captured at — what a resume must match, and what
// inspection tooling (3lc-ckpt -state) reports.
type StateInfo struct {
	Step           int
	Workers        int
	Shards         int
	Scheme         compress.Scheme
	Steps          int
	Staleness      int
	Seed           uint64
	BackupWorkers  int
	BatchPerWorker int
	// Opts is the codec configuration (sparsity, fraction, interval,
	// parts, zero-run flag, stochastic seed) the run used — any of these
	// change the trajectory, so all are fingerprinted.
	Opts compress.Options
	// ComputeJitterStd and Dropouts likewise alter the step sequence.
	ComputeJitterStd float64
	Dropouts         []Dropout
}

// ReadStateInfo decodes the meta section of a full-state checkpoint.
func ReadStateInfo(st *checkpoint.State) (StateInfo, error) {
	meta, err := section(st, "meta")
	if err != nil {
		return StateInfo{}, err
	}
	const metaFixed = 4 + 8 + 4 + 4 + 1 + 4 + 4 + 8 + 4 + 4 + 8 + 8 + 4 + 4 + 1 + 8 + 8 + 4
	if len(meta) < metaFixed {
		return StateInfo{}, fmt.Errorf("train: meta section is %d bytes, want >= %d", len(meta), metaFixed)
	}
	if v := tle.Uint32(meta); v != trainStateVersion {
		return StateInfo{}, fmt.Errorf("train: unsupported train-state version %d (have %d)", v, trainStateVersion)
	}
	info := StateInfo{
		Step:           int(tle.Uint64(meta[4:])),
		Workers:        int(tle.Uint32(meta[12:])),
		Shards:         int(tle.Uint32(meta[16:])),
		Scheme:         compress.Scheme(meta[20]),
		Steps:          int(tle.Uint32(meta[21:])),
		Staleness:      int(tle.Uint32(meta[25:])),
		Seed:           tle.Uint64(meta[29:]),
		BackupWorkers:  int(tle.Uint32(meta[37:])),
		BatchPerWorker: int(tle.Uint32(meta[41:])),
		Opts: compress.Options{
			Sparsity: math.Float64frombits(tle.Uint64(meta[45:])),
			Fraction: math.Float64frombits(tle.Uint64(meta[53:])),
			Interval: int(tle.Uint32(meta[61:])),
			Parts:    int(tle.Uint32(meta[65:])),
			ZeroRun:  meta[69] == 1,
			Seed:     tle.Uint64(meta[70:]),
		},
		ComputeJitterStd: math.Float64frombits(tle.Uint64(meta[78:])),
	}
	nDrop := int(tle.Uint32(meta[86:]))
	if len(meta) != metaFixed+12*nDrop {
		return StateInfo{}, fmt.Errorf("train: meta section is %d bytes, want %d for %d dropouts", len(meta), metaFixed+12*nDrop, nDrop)
	}
	for i := 0; i < nDrop; i++ {
		off := metaFixed + 12*i
		info.Dropouts = append(info.Dropouts, Dropout{
			Worker: int(tle.Uint32(meta[off:])),
			From:   int(tle.Uint32(meta[off+4:])),
			To:     int(tle.Uint32(meta[off+8:])),
		})
	}
	return info, nil
}

// restoreRunState rebuilds the run's full mutable state from a snapshot
// and returns the step to continue from. The configuration fingerprint
// must match the snapshot's; anything else is an error, never a silent
// divergence.
func restoreRunState(st *checkpoint.State, cfg *Config, global *nn.Model, server stepServer,
	workers []*ps.Worker, rngs []*tensor.RNG, jitter *tensor.RNG,
	pullHistory *[][][]byte, missed [][][][]byte) (int, error) {

	info, err := ReadStateInfo(st)
	if err != nil {
		return 0, err
	}
	step := info.Step
	check := func(name string, got, want uint64) error {
		if got != want {
			return fmt.Errorf("train: checkpoint %s %d does not match run configuration %d", name, got, want)
		}
		return nil
	}
	if err := check("workers", uint64(info.Workers), uint64(cfg.Workers)); err != nil {
		return 0, err
	}
	if err := check("shards", uint64(info.Shards), uint64(max(cfg.Shards, 1))); err != nil {
		return 0, err
	}
	if err := check("scheme", uint64(info.Scheme), uint64(cfg.Design.Scheme)); err != nil {
		return 0, err
	}
	if err := check("steps", uint64(info.Steps), uint64(cfg.Steps)); err != nil {
		return 0, err
	}
	if err := check("staleness", uint64(info.Staleness), uint64(cfg.Staleness)); err != nil {
		return 0, err
	}
	if err := check("seed", info.Seed, cfg.Seed); err != nil {
		return 0, err
	}
	if err := check("backup workers", uint64(info.BackupWorkers), uint64(cfg.BackupWorkers)); err != nil {
		return 0, err
	}
	if err := check("batch size", uint64(info.BatchPerWorker), uint64(cfg.BatchPerWorker)); err != nil {
		return 0, err
	}
	// The remaining knobs also change the trajectory; a mismatch on any
	// of them must be an error, never a silent divergence.
	wantOpts, gotOpts := cfg.Design.Opts, info.Opts
	wantOpts.CodecParallelism, gotOpts.CodecParallelism = 0, 0 // fan-out never changes bytes
	if gotOpts != wantOpts {
		return 0, fmt.Errorf("train: checkpoint codec options %+v do not match run configuration %+v", gotOpts, wantOpts)
	}
	if math.Float64bits(info.ComputeJitterStd) != math.Float64bits(cfg.ComputeJitterStd) {
		return 0, fmt.Errorf("train: checkpoint jitter std %v does not match run configuration %v", info.ComputeJitterStd, cfg.ComputeJitterStd)
	}
	if len(info.Dropouts) != len(cfg.Dropouts) {
		return 0, fmt.Errorf("train: checkpoint has %d dropouts, run configuration has %d", len(info.Dropouts), len(cfg.Dropouts))
	}
	for i, d := range info.Dropouts {
		if d != cfg.Dropouts[i] {
			return 0, fmt.Errorf("train: checkpoint dropout %d (%+v) does not match run configuration (%+v)", i, d, cfg.Dropouts[i])
		}
	}
	if step <= 0 || step > cfg.Steps {
		return 0, fmt.Errorf("train: checkpoint step %d outside (0, %d]", step, cfg.Steps)
	}

	sec, err := section(st, "model/global")
	if err != nil {
		return 0, err
	}
	if err := checkpoint.Load(bytes.NewReader(sec), global); err != nil {
		return 0, fmt.Errorf("train: restore global model: %w", err)
	}
	for w, wk := range workers {
		if sec, err = section(st, fmt.Sprintf("model/worker/%d", w)); err != nil {
			return 0, err
		}
		if err := checkpoint.Load(bytes.NewReader(sec), wk.Model); err != nil {
			return 0, fmt.Errorf("train: restore worker %d model: %w", w, err)
		}
	}

	if sec, err = section(st, "server"); err != nil {
		return 0, err
	}
	if err := server.RestoreState(sec); err != nil {
		return 0, err
	}
	for w, wk := range workers {
		if sec, err = section(st, fmt.Sprintf("worker/%d", w)); err != nil {
			return 0, err
		}
		if err := wk.RestoreState(sec); err != nil {
			return 0, fmt.Errorf("train: restore worker %d contexts: %w", w, err)
		}
	}

	if sec, err = section(st, "rng"); err != nil {
		return 0, err
	}
	if sec, err = readRNG(sec, jitter); err != nil {
		return 0, err
	}
	for _, r := range rngs {
		if sec, err = readRNG(sec, r); err != nil {
			return 0, err
		}
	}
	if len(sec) != 0 {
		return 0, fmt.Errorf("train: %d trailing RNG state bytes", len(sec))
	}

	if cfg.Staleness > 0 {
		if sec, err = section(st, "pullhist"); err != nil {
			return 0, err
		}
		hist, rest, err := readWireSets(sec)
		if err != nil {
			return 0, err
		}
		if len(rest) != 0 {
			return 0, fmt.Errorf("train: %d trailing pull-history bytes", len(rest))
		}
		*pullHistory = hist
	}

	if sec, ok := st.Section("missed"); ok {
		count, rest, err := readU32(sec)
		if err != nil {
			return 0, err
		}
		if int(count) != len(missed) {
			return 0, fmt.Errorf("train: missed-pull section has %d workers, run has %d", count, len(missed))
		}
		for w := range missed {
			var sets [][][]byte
			sets, rest, err = readWireSets(rest)
			if err != nil {
				return 0, err
			}
			if len(sets) > 0 {
				missed[w] = sets
			}
		}
		if len(rest) != 0 {
			return 0, fmt.Errorf("train: %d trailing missed-pull bytes", len(rest))
		}
	}
	return step, nil
}
