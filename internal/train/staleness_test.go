package train

import (
	"testing"

	"threelc/internal/compress"
)

func TestStalenessValidation(t *testing.T) {
	cfg := tinyConfig(Design{Name: "x", Scheme: compress.SchemeNone}, 5)
	cfg.Staleness = -1
	if _, err := Run(cfg); err == nil {
		t.Error("expected error for negative staleness")
	}
}

func TestStalenessZeroMatchesBSP(t *testing.T) {
	d := Design{Name: "32-bit float", Scheme: compress.SchemeNone}
	a, err := Run(tinyConfig(d, 20))
	if err != nil {
		t.Fatal(err)
	}
	cfg := tinyConfig(d, 20)
	cfg.Staleness = 0
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.FinalAccuracy != b.FinalAccuracy || a.FinalLoss != b.FinalLoss {
		t.Error("Staleness=0 must be identical to plain BSP")
	}
}

func TestStalenessStillConverges(t *testing.T) {
	// The paper's §2.1 background: bounded staleness tolerates small
	// model inconsistency. Training must still work, if possibly slower.
	cfg := tinyConfig(Design{Name: "32-bit float", Scheme: compress.SchemeNone}, 40)
	cfg.Staleness = 2
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.FinalAccuracy < 0.3 {
		t.Errorf("stale training collapsed: accuracy %v", r.FinalAccuracy)
	}
}

func TestStalenessWith3LCConverges(t *testing.T) {
	cfg := tinyConfig(Design{
		Name: "3LC (s=1.00)", Scheme: compress.SchemeThreeLC,
		Opts: compress.Options{Sparsity: 1.0, ZeroRun: true},
	}, 40)
	cfg.Staleness = 2
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.FinalAccuracy < 0.3 {
		t.Errorf("stale 3LC training collapsed: accuracy %v", r.FinalAccuracy)
	}
}

func TestRoundRobinSchemeTrains(t *testing.T) {
	r, err := Run(tinyConfig(Design{
		Name:   "round-robin 1/4",
		Scheme: compress.SchemeRoundRobin,
		Opts:   compress.Options{Parts: 4},
	}, 30))
	if err != nil {
		t.Fatal(err)
	}
	if r.FinalAccuracy < 0.3 {
		t.Errorf("round-robin training collapsed: accuracy %v", r.FinalAccuracy)
	}
	// Quarter of the elements plus bitmap overhead: ratio should land
	// between 2x and 4x.
	if ratio := r.CompressionRatio(); ratio < 2 || ratio > 4.5 {
		t.Errorf("round-robin ratio %v, want ~3.5", ratio)
	}
}
