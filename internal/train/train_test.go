package train

import (
	"math"
	"testing"

	"threelc/internal/compress"
	"threelc/internal/data"
	"threelc/internal/netsim"
	"threelc/internal/nn"
	"threelc/internal/opt"
)

func tinyConfig(design Design, steps int) Config {
	dcfg := data.DefaultConfig()
	dcfg.Train, dcfg.Test = 300, 100
	in := dcfg.C * dcfg.H * dcfg.W
	optCfg := opt.TunedSGDConfig(4, steps)
	cfg := Config{
		Design:         design,
		Workers:        4,
		BatchPerWorker: 8,
		Steps:          steps,
		Data:           dcfg,
		BuildModel:     func() *nn.Model { return nn.NewMLP(in, []int{16}, dcfg.Classes, 1) },
		FlatInput:      true,
		Net:            netsim.DefaultParams(netsim.Gbps1),
		Optimizer:      &optCfg,
		RecordSteps:    true,
		Seed:           1,
	}
	cfg.Net.Workers = 4
	return cfg
}

func TestRunBaselineEndToEnd(t *testing.T) {
	res, err := Run(tinyConfig(Design{Name: "32-bit float", Scheme: compress.SchemeNone}, 30))
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalAccuracy < 0.3 {
		t.Errorf("baseline accuracy %v too low for a learnable task", res.FinalAccuracy)
	}
	if res.TotalVirtualSec <= 0 || res.PerStepSec <= 0 {
		t.Error("virtual time not accounted")
	}
	if len(res.StepRecords) != 30 {
		t.Errorf("expected 30 step records, got %d", len(res.StepRecords))
	}
	// Baseline wire bytes: scheme byte + 4 per element, both directions.
	if res.TotalPushBytes <= int64(res.NumParam)*4*30*4-1000 {
		t.Errorf("push traffic %d lower than raw size", res.TotalPushBytes)
	}
}

func TestRunThreeLCTrafficReduction(t *testing.T) {
	base, err := Run(tinyConfig(Design{Name: "32-bit float", Scheme: compress.SchemeNone}, 25))
	if err != nil {
		t.Fatal(err)
	}
	lc, err := Run(tinyConfig(Design{
		Name: "3LC (s=1.00)", Scheme: compress.SchemeThreeLC,
		Opts: compress.Options{Sparsity: 1.0, ZeroRun: true},
	}, 25))
	if err != nil {
		t.Fatal(err)
	}
	if lc.TotalPushBytes >= base.TotalPushBytes/10 {
		t.Errorf("3LC push traffic %d not <10%% of baseline %d", lc.TotalPushBytes, base.TotalPushBytes)
	}
	if r := lc.CompressionRatio(); r < 15 {
		t.Errorf("3LC compression ratio %v unexpectedly low", r)
	}
	if b := lc.BitsPerChange(); b <= 0 || b > 2 {
		t.Errorf("bits per change %v outside plausible range", b)
	}
}

func TestTimeAtConsistency(t *testing.T) {
	res, err := Run(tinyConfig(Design{Name: "32-bit float", Scheme: compress.SchemeNone}, 10))
	if err != nil {
		t.Fatal(err)
	}
	// TimeAt at the run's own bandwidth must reproduce the recorded total.
	got := res.TimeAt(netsim.Gbps1)
	if math.Abs(got-res.TotalVirtualSec)/res.TotalVirtualSec > 0.01 {
		t.Errorf("TimeAt(run bandwidth) = %v, recorded %v", got, res.TotalVirtualSec)
	}
	// Slower network, longer time.
	if res.TimeAt(netsim.Mbps10) <= res.TotalVirtualSec {
		t.Error("10 Mbps should be slower than 1 Gbps")
	}
}

func TestRunRecordsEvals(t *testing.T) {
	cfg := tinyConfig(Design{Name: "32-bit float", Scheme: compress.SchemeNone}, 20)
	cfg.EvalEvery = 10
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Evals) != 2 {
		t.Fatalf("expected 2 evals, got %d", len(res.Evals))
	}
	if res.Evals[1].Step != 20 {
		t.Errorf("final eval at step %d", res.Evals[1].Step)
	}
}

func TestRunDeterminism(t *testing.T) {
	d := Design{Name: "3LC (s=1.50)", Scheme: compress.SchemeThreeLC,
		Opts: compress.Options{Sparsity: 1.5, ZeroRun: true}}
	r1, err := Run(tinyConfig(d, 15))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(tinyConfig(d, 15))
	if err != nil {
		t.Fatal(err)
	}
	if r1.FinalAccuracy != r2.FinalAccuracy {
		t.Errorf("accuracy differs across identical runs: %v vs %v", r1.FinalAccuracy, r2.FinalAccuracy)
	}
	if r1.TotalPushBytes != r2.TotalPushBytes {
		t.Errorf("traffic differs across identical runs: %d vs %d", r1.TotalPushBytes, r2.TotalPushBytes)
	}
}

func TestRunValidation(t *testing.T) {
	cfg := tinyConfig(Design{Name: "x", Scheme: compress.SchemeNone}, 5)
	cfg.Workers = 0
	if _, err := Run(cfg); err == nil {
		t.Error("expected error for 0 workers")
	}
	cfg = tinyConfig(Design{Name: "x", Scheme: compress.SchemeNone}, 5)
	cfg.BuildModel = nil
	if _, err := Run(cfg); err == nil {
		t.Error("expected error for nil BuildModel")
	}
	cfg = tinyConfig(Design{Name: "x", Scheme: compress.SchemeNone}, 5)
	cfg.Net.Workers = 3
	if _, err := Run(cfg); err == nil {
		t.Error("expected error for netsim/run worker mismatch")
	}
}

func TestLocalStepsHalvesTraffic(t *testing.T) {
	base, err := Run(tinyConfig(Design{Name: "32-bit float", Scheme: compress.SchemeNone}, 20))
	if err != nil {
		t.Fatal(err)
	}
	l2, err := Run(tinyConfig(Design{
		Name: "2 local steps", Scheme: compress.SchemeLocalSteps,
		Opts: compress.Options{Interval: 2},
	}, 20))
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(base.TotalPushBytes) / float64(l2.TotalPushBytes)
	if ratio < 1.8 || ratio > 2.3 {
		t.Errorf("2-local-steps traffic ratio %v, want ~2", ratio)
	}
}

func TestSparsityIncreasesCompression(t *testing.T) {
	mk := func(s float64) *Result {
		r, err := Run(tinyConfig(Design{
			Name: "3LC", Scheme: compress.SchemeThreeLC,
			Opts: compress.Options{Sparsity: s, ZeroRun: true},
		}, 25))
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	r1, r19 := mk(1.0), mk(1.9)
	if r19.CompressionRatio() <= r1.CompressionRatio() {
		t.Errorf("s=1.9 ratio %v not greater than s=1.0 ratio %v",
			r19.CompressionRatio(), r1.CompressionRatio())
	}
}

func TestEvaluateBatching(t *testing.T) {
	dcfg := data.DefaultConfig()
	dcfg.Train, dcfg.Test = 100, 37 // awkward batch remainder
	_, testSet := data.Synthetic(dcfg)
	m := nn.NewMLP(dcfg.C*dcfg.H*dcfg.W, []int{8}, dcfg.Classes, 1)
	acc := Evaluate(m, testSet, 10, true)
	if acc < 0 || acc > 1 {
		t.Errorf("accuracy %v out of range", acc)
	}
}

func TestResNetWorkloadRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("CNN workload in -short mode")
	}
	dcfg := data.DefaultConfig()
	dcfg.Train, dcfg.Test = 100, 40
	dcfg.H, dcfg.W = 8, 8
	optCfg := opt.TunedSGDConfig(2, 6)
	cfg := Config{
		Design:         Design{Name: "3LC (s=1.00)", Scheme: compress.SchemeThreeLC, Opts: compress.Options{Sparsity: 1, ZeroRun: true}},
		Workers:        2,
		BatchPerWorker: 8,
		Steps:          6,
		Data:           dcfg,
		BuildModel: func() *nn.Model {
			mc := nn.DefaultMicroResNet()
			mc.ImageSize = 8
			mc.StageChannels = []int{4, 8}
			return nn.NewMicroResNet(mc)
		},
		FlatInput:   false,
		Augment:     true,
		Net:         netsim.DefaultParams(netsim.Gbps1),
		Optimizer:   &optCfg,
		RecordSteps: true,
		Seed:        1,
	}
	cfg.Net.Workers = 2
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumParam == 0 || res.TotalPushBytes == 0 {
		t.Error("CNN run produced no traffic")
	}
}
