// Package train drives distributed training runs: it wires the data
// pipeline, the worker/server runtime of package ps, and the virtual
// network of package netsim into a single measured experiment, producing
// the traffic, time, loss, and accuracy records the paper's tables and
// figures are built from.
package train

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"threelc/internal/checkpoint"
	"threelc/internal/compress"
	"threelc/internal/data"
	"threelc/internal/netsim"
	"threelc/internal/nn"
	"threelc/internal/opt"
	"threelc/internal/ps"
	"threelc/internal/region"
	"threelc/internal/shard"
	"threelc/internal/tenant"
	"threelc/internal/tensor"
)

// stepServer is the driver-facing surface shared by the single parameter
// server (ps.Job), the dedicated sharded tier (shard.Cluster), and a
// job's handle on a shared multi-tenant tier (shard.JobHandle). The
// driver ingests pushes through per-worker PushSessions, feeding tensors
// as they compress — which is what lets the aggregation overlap the
// compute/compress phase.
type stepServer interface {
	BeginStep()
	BeginPush(workerID int) ps.PushSession
	FinishStep() ([][]byte, time.Duration, error)
	// AppendState / RestoreState capture the server tier's mutable
	// training state (optimizer + pull contexts) for full-state
	// checkpoints; both are step-boundary operations.
	AppendState(dst []byte) []byte
	RestoreState(src []byte) error
}

// Design names one traffic-reduction configuration from §5.1.
type Design struct {
	// Name is the paper's label, e.g. "3LC (s=1.75)".
	Name string
	// Scheme and Opts configure package compress.
	Scheme compress.Scheme
	Opts   compress.Options
}

// Config describes one training run.
type Config struct {
	Design  Design
	Workers int
	// Shards is the parameter-server shard count. Values above 1 route
	// every push/pull through the sharded tier of package shard: tensors
	// are partitioned across Shards sub-servers (size-balanced, see
	// shard.Assign) and workers push/pull against all shards through the
	// async pipeline. The resulting model state is byte-identical to the
	// single-server path for every codec; what changes is the codec
	// critical path (shards decode concurrently) and the virtual network
	// model (aggregate traffic divides across Shards server NICs,
	// netsim.Params.Servers). Zero or 1 keeps the single in-process server.
	Shards int
	// Regions enables hierarchical two-level aggregation (package
	// region): workers are grouped into this many regions, each region's
	// aggregator ingests local pushes over the fast network, and only one
	// stream per region crosses the simulated slow inter-region link to
	// the global tier (Net.WANBandwidthBps / Net.WANLatencySec; defaults
	// to 100 Mbps at 20 ms when unset). Zero or 1 keeps the flat
	// topology. The default exact mode forwards worker wires verbatim, so
	// model state is bit-identical to the flat run for every codec;
	// RegionRecompress trades that for fewer WAN streams. Requires the
	// single in-process server (no Shards/Service) and no elastic
	// features (Dropouts, BackupWorkers).
	Regions int
	// RegionRecompress switches the regional aggregators to fused
	// re-encode: local pushes are decode-accumulated into one per-region
	// gradient sum and a region-owned error-accumulating context
	// re-encodes a single residual stream per tensor for the WAN leg.
	RegionRecompress bool
	// RegionEntropy applies the streaming entropy second stage (Huffman
	// or LZ) to the inter-region streams — the bundled worker wires in
	// exact mode, the re-encoded wires and pull sets in recompress mode.
	RegionEntropy compress.EntropyAlgo
	// BatchPerWorker is the per-worker minibatch size (paper: 32).
	BatchPerWorker int
	// Steps is the number of global training steps.
	Steps int
	// Data configures the synthetic dataset.
	Data data.Config
	// BuildModel constructs the model architecture; it is called once per
	// node with the same seed so all replicas start identical.
	BuildModel func() *nn.Model
	// FlatInput feeds [N, C*H*W] batches (MLP models) instead of NCHW.
	FlatInput bool
	// Augment applies the paper's crop+flip augmentation to training batches.
	Augment bool
	// Net is the virtual cluster; if Net.ComputeSec is zero it is
	// calibrated from the model size at 1 Gbps with ratio 1.5 (paper regime).
	Net netsim.Params
	// MinCompressElems exempts small tensors (paper behavior). Zero means 256.
	MinCompressElems int
	// SmallTensorElems coalesces compressed 3LC tensors below this many
	// elements into one batched compression unit per node (see
	// ps.Config.SmallTensorElems). Zero means the ps default; negative
	// disables batching.
	SmallTensorElems int
	// Parallelism bounds the per-node worker pool that compresses and
	// decompresses layer tensors concurrently (see ps.Config.Parallelism).
	// Within each tensor the budget is spent pass-count aware: the two
	// fused compress passes of internal/kernel each size their own
	// goroutine fan-out under this cap (kernel.PassWorkers). Zero means
	// GOMAXPROCS; 1 forces serial kernels, which the alloc-free
	// steady-state benchmarks use.
	Parallelism int
	// Optimizer overrides the server-side SGD configuration; nil uses
	// opt.DefaultSGDConfig(Workers, Steps), the paper's hyperparameters.
	Optimizer *opt.SGDConfig
	// EvalEvery evaluates test accuracy every this many steps (0: only at end).
	EvalEvery int
	// RecordSteps keeps the per-step traffic/loss series (Figures 7 and 9).
	RecordSteps bool
	// OnGradients, if non-nil, observes worker 0's raw gradient tensors
	// each step (after the backward pass, before compression). Used by
	// the gradient-statistics analysis; must not mutate the tensors.
	OnGradients func(step int, params []*nn.Param)

	// BackupWorkers enables the straggler mitigation of §2.1 (TensorFlow
	// SyncReplicasOptimizer): each step advances once Workers-BackupWorkers
	// pushes have arrived, and the slowest workers' pushes are discarded.
	// Worker 0 (the chief, which owns batch-norm state) is never dropped.
	// Zero disables the feature (plain BSP).
	BackupWorkers int
	// ComputeJitterStd is the per-worker, per-step lognormal-ish jitter
	// on virtual compute time (fraction of ComputeSec), modelling
	// stragglers. Zero means perfectly uniform workers.
	ComputeJitterStd float64

	// Staleness emulates stale synchronous parallel execution (§2.1):
	// worker w applies model pulls with a fixed delay of w mod
	// (Staleness+1) steps, so local models lag the global model by up to
	// Staleness updates. Worker 0 (the chief) always stays fresh. Zero
	// means fully synchronous BSP. The paper's background observation —
	// stale updates need more steps for the same accuracy — is
	// reproducible by sweeping this knob.
	Staleness int
	// Dropouts schedules elastic worker dropout and rejoin. During
	// [From, To) the worker is down: it neither computes, pushes, nor
	// pulls, and the step barrier advances without it (the server's
	// gradient average divides by the pushes actually received). At step
	// To the worker rejoins: it first catches up its replica by applying,
	// in order, the shared pull wires it missed (the driver retains copies
	// while a worker is away), then trains normally. Its push-side
	// error-accumulation contexts are untouched during the absence, so the
	// residual accumulated before the dropout folds into its first push
	// after rejoining — the paper's dropout-tolerance argument (§3.1:
	// unsent changes are retried at later steps). Worker 0 (the chief,
	// batch-norm owner) must never drop. Dropouts cannot be combined with
	// Staleness > 0: a stale worker applies pulls from `delay` steps ago,
	// so the catch-up replay of fresh pull sets would double-apply some
	// and skip others — Run rejects the combination.
	Dropouts []Dropout

	// CheckpointPath + CheckpointEvery enable periodic full-state
	// checkpointing: after every CheckpointEvery-th step the run snapshots
	// its complete training state — every model replica, optimizer
	// momentum, all 3LC/codec error-accumulation buffers (worker push and
	// server pull contexts), RNG stream positions, and the step counter —
	// and writes it to CheckpointPath asynchronously (the serialization
	// captures copies at the step boundary; the file write overlaps the
	// next steps' compute, so steady-state step time is unaffected). The
	// write is atomic with the prior snapshot kept at CheckpointPath.bak
	// (checkpoint.SaveStateFile).
	CheckpointPath  string
	CheckpointEvery int
	// ResumeFrom restores a full-state checkpoint written by an identical
	// configuration and continues the run from the captured step. The
	// resumed trajectory — per-step losses, wire bytes, final model state —
	// is bit-identical to the uninterrupted run's for every codec; the
	// returned Result covers only the resumed segment (steps from the
	// checkpoint to Steps).
	ResumeFrom string
	// OnStep, if non-nil, runs after each completed step (after any
	// checkpoint for that step has been scheduled). Returning an error
	// aborts the run with that error — tests use it to emulate a crash at
	// an arbitrary step.
	OnStep func(step int) error

	// Service, when non-nil, runs this job over a shared multi-tenant
	// shard tier (shard.Service) instead of a dedicated server: the run
	// is admitted as Tenant under TenantLimits at start and retired when
	// it returns. Many Runs may share one Service concurrently — each
	// job's aggregation stays bit-identical to a solo run because the
	// tier's fairness reorders only BETWEEN tenants. Mutually exclusive
	// with Shards > 1 (the shared tier's shard count is the Service's).
	Service *shard.Service
	// Tenant is the job's identity on the shared Service. The default
	// zero value is the default tenant, so single-job runs need no id.
	Tenant tenant.ID
	// TenantLimits bounds the job on the shared Service (outstanding
	// budget, step/byte quotas, DRR quantum). Zero means unlimited.
	TenantLimits tenant.Limits

	// Seed controls data sampling; model init comes from BuildModel.
	Seed uint64
}

// Dropout is one worker-absence interval: the worker is down for steps
// [From, To) and rejoins at step To (To >= Steps means it never returns).
type Dropout struct {
	Worker   int
	From, To int
}

// StepRecord is the per-step series entry.
type StepRecord struct {
	Step int
	// Loss is the mean training loss across workers at this step.
	Loss float64
	// PushBytes / PullBytes are total wire bytes across all workers.
	PushBytes, PullBytes int
	// CompPushBytes / CompPullBytes count only the compressible tensors
	// (excludes the batch-norm/small-tensor raw exemption), averaged per
	// worker; used for bits-per-state-change series (Figure 9).
	CompPushBytes, CompPullBytes float64
	// CodecSec is the measured codec critical-path time of the step.
	CodecSec float64
	// ComputeMult scales the virtual compute time this step (straggler
	// jitter under backup workers; 1 for plain BSP).
	ComputeMult float64
	// VirtualSec is the step's simulated duration.
	VirtualSec float64
	// WANBytes totals the step's inter-region traffic across all regions
	// and both directions (hierarchical topologies only).
	WANBytes int
}

// EvalRecord is a test-accuracy measurement during training.
type EvalRecord struct {
	Step     int
	Accuracy float64
}

// Result summarizes a finished run.
type Result struct {
	Design  Design
	Workers int
	// Shards is the parameter-server shard count the run used (1 = the
	// single in-process server).
	Shards int
	// Regions is the hierarchical region count (1 = flat topology).
	Regions  int
	Steps    int
	NumParam int
	// CompressibleElems is the element count of tensors subject to
	// compression (per push or pull).
	CompressibleElems int

	FinalAccuracy float64
	FinalLoss     float64

	TotalVirtualSec float64
	PerStepSec      float64

	TotalPushBytes int64
	TotalPullBytes int64
	// RawBytes is what the 32-bit float baseline would have moved in total.
	RawBytes int64
	// TotalWANBytes totals inter-region traffic over the run, both
	// directions across all regions (hierarchical topologies only).
	TotalWANBytes int64
	// CompPushBytes / CompPullBytes total the compressible-tensor wire
	// bytes (per-worker average), for compression-ratio accounting.
	CompPushBytes float64
	CompPullBytes float64

	CodecSec float64 // summed critical-path codec time (real, measured)

	// Net is the calibrated virtual cluster the run was timed under.
	Net netsim.Params

	StepRecords []StepRecord
	Evals       []EvalRecord
}

// TimeAt recomputes the run's total virtual training time under a
// different link bandwidth, using the recorded per-step traffic — the same
// extrapolation the paper's measurement methodology performs (§5.2).
// It requires the run to have been executed with RecordSteps.
func (r *Result) TimeAt(bandwidthBps float64) float64 {
	if len(r.StepRecords) == 0 {
		panic("train: TimeAt needs RecordSteps")
	}
	net := r.Net
	net.BandwidthBps = bandwidthBps
	var total float64
	push := make([]int, r.Workers)
	pull := make([]int, r.Workers)
	for _, sr := range r.StepRecords {
		perPush := sr.PushBytes / r.Workers
		perPull := sr.PullBytes / r.Workers
		for w := 0; w < r.Workers; w++ {
			push[w], pull[w] = perPush, perPull
		}
		step := net
		if sr.ComputeMult > 0 {
			step.ComputeSec *= sr.ComputeMult
		}
		total += step.StepTime(push, pull, sr.CodecSec)
	}
	return total
}

// CompressionRatio returns raw/compressed over the compressible tensors,
// averaged over pushes and pulls (Table 2's "compression ratio").
func (r *Result) CompressionRatio() float64 {
	raw := float64(r.CompressibleElems) * 4 * float64(r.Steps) * 2 // push + pull per step
	comp := r.CompPushBytes + r.CompPullBytes
	if comp == 0 {
		return 0
	}
	return raw / comp
}

// BitsPerChange returns the average transmitted bits per state-change
// value over the compressible tensors (Table 2's "bits per state change").
func (r *Result) BitsPerChange() float64 {
	ratio := r.CompressionRatio()
	if ratio == 0 {
		return 0
	}
	return 32 / ratio
}

// Run executes the configured training run.
func Run(cfg Config) (*Result, error) {
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("train: need at least 1 worker, got %d", cfg.Workers)
	}
	if cfg.BuildModel == nil {
		return nil, fmt.Errorf("train: BuildModel is required")
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("train: Shards %d must be >= 0", cfg.Shards)
	}
	if cfg.MinCompressElems == 0 {
		cfg.MinCompressElems = 256
	}

	trainSet, testSet := data.Synthetic(cfg.Data)

	global := cfg.BuildModel()
	optCfg := opt.DefaultSGDConfig(cfg.Workers, cfg.Steps)
	if cfg.Optimizer != nil {
		optCfg = *cfg.Optimizer
		optCfg.Workers = cfg.Workers
		optCfg.TotalSteps = cfg.Steps
	}
	workerParallelism := cfg.Parallelism
	if workerParallelism == 0 {
		// All simulated workers run their codec phases on concurrent
		// goroutines, so per-node fan-out multiplies by cfg.Workers;
		// divide the cores among them instead of letting every node claim
		// GOMAXPROCS.
		workerParallelism = runtime.GOMAXPROCS(0) / cfg.Workers
		if workerParallelism < 1 {
			workerParallelism = 1
		}
	}
	psCfg := ps.Config{
		Scheme:           cfg.Design.Scheme,
		Opts:             cfg.Design.Opts,
		Workers:          cfg.Workers,
		MinCompressElems: cfg.MinCompressElems,
		SmallTensorElems: cfg.SmallTensorElems,
		Parallelism:      workerParallelism,
		Optimizer:        optCfg,
	}
	// The server's decode/aggregate and pull-compress phases run alone —
	// every worker goroutine is parked at the BSP barrier — so the server
	// keeps the full budget; dividing by Workers would idle cores on the
	// measured codec critical path.
	serverCfg := psCfg
	serverCfg.Parallelism = cfg.Parallelism
	// shardSplit divides the server budget across `shards` PS nodes so
	// the tier as a whole stays within it.
	shardSplit := func(shards int) ps.Config {
		scfg := serverCfg
		par := scfg.Parallelism
		if par == 0 {
			par = runtime.GOMAXPROCS(0)
		}
		scfg.Parallelism = par / shards
		if scfg.Parallelism < 1 {
			scfg.Parallelism = 1
		}
		return scfg
	}
	var server stepServer
	switch {
	case cfg.Service != nil:
		if cfg.Shards > 1 {
			return nil, fmt.Errorf("train: Shards and Service are mutually exclusive (the shared tier's shard count is the Service's)")
		}
		h, err := cfg.Service.Admit(cfg.Tenant, global, shardSplit(cfg.Service.NumShards()), cfg.TenantLimits)
		if err != nil {
			return nil, fmt.Errorf("train: admit tenant %d: %w", cfg.Tenant, err)
		}
		defer cfg.Service.Retire(cfg.Tenant)
		server = h
	case cfg.Shards > 1:
		cluster, err := shard.NewCluster(global, shardSplit(cfg.Shards), shard.Config{Shards: cfg.Shards})
		if err != nil {
			return nil, fmt.Errorf("train: build shard tier: %w", err)
		}
		defer cluster.Close()
		server = cluster
	default:
		server = ps.NewServer(global, serverCfg)
	}

	// Hierarchical topology: interpose the region tier between the
	// driver's per-worker sessions and the global server.
	var tier *region.Tier
	if cfg.Regions > 1 {
		if cfg.Shards > 1 || cfg.Service != nil {
			return nil, fmt.Errorf("train: Regions requires the single in-process server (no Shards/Service)")
		}
		if len(cfg.Dropouts) > 0 || cfg.BackupWorkers > 0 {
			return nil, fmt.Errorf("train: Regions cannot be combined with Dropouts or BackupWorkers")
		}
		var err error
		tier, err = region.NewTier(server, global.Params(), region.Config{
			Regions:          cfg.Regions,
			Workers:          cfg.Workers,
			Recompress:       cfg.RegionRecompress,
			Entropy:          cfg.RegionEntropy,
			Scheme:           cfg.Design.Scheme,
			Opts:             cfg.Design.Opts,
			MinCompressElems: cfg.MinCompressElems,
			Parallelism:      cfg.Parallelism,
		})
		if err != nil {
			return nil, err
		}
		server = tier
	}

	workers := make([]*ps.Worker, cfg.Workers)
	rngs := make([]*tensor.RNG, cfg.Workers)
	shards := make([][]int, cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		m := cfg.BuildModel()
		m.CopyParamsFrom(global)
		workers[w] = ps.NewWorker(w, m, psCfg)
		rngs[w] = tensor.NewRNG(cfg.Seed + 1000*uint64(w) + 7)
		for i := w; i < trainSet.Len(); i += cfg.Workers {
			shards[w] = append(shards[w], i)
		}
		if len(shards[w]) == 0 {
			return nil, fmt.Errorf("train: worker %d has an empty shard (%d examples, %d workers)",
				w, trainSet.Len(), cfg.Workers)
		}
	}

	// Traffic bookkeeping.
	params := global.Params()
	numParam := global.NumParams()
	compElems := 0
	compressible := make([]bool, len(params))
	for i, p := range params {
		if cfg.Design.Scheme != compress.SchemeNone && !p.NoCompress && p.W.Len() >= cfg.MinCompressElems {
			compressible[i] = true
			compElems += p.W.Len()
		}
	}

	net := cfg.Net
	if net.Workers == 0 {
		net.Workers = cfg.Workers
	}
	if net.Workers != cfg.Workers {
		return nil, fmt.Errorf("train: netsim has %d workers, run has %d", net.Workers, cfg.Workers)
	}
	if net.ComputeSec == 0 {
		net.Calibrate(numParam*4, netsim.Gbps1, 1.5)
	}
	// Sharding divides aggregate push/pull traffic across the shard NICs.
	// Applied after Calibrate so the compute-to-communication calibration
	// stays anchored to the paper's single-server regime.
	tierShards := cfg.Shards
	if cfg.Service != nil {
		tierShards = cfg.Service.NumShards()
	}
	if tierShards > 1 && net.Servers <= 1 {
		net.Servers = tierShards
	}
	if cfg.Regions > 1 {
		net.Regions = cfg.Regions
		if net.WANBandwidthBps == 0 {
			// Default WAN regime: 100 Mbps inter-region links at 20 ms
			// one-way latency, far below the local star's bandwidth.
			net.WANBandwidthBps = netsim.Mbps100
			net.WANLatencySec = 20e-3
		}
	}

	res := &Result{
		Design:            cfg.Design,
		Workers:           cfg.Workers,
		Shards:            max(tierShards, 1),
		Regions:           max(cfg.Regions, 1),
		Steps:             cfg.Steps,
		NumParam:          numParam,
		CompressibleElems: compElems,
	}

	var clock netsim.Clock
	augment := data.Augment
	if !cfg.Augment {
		augment = nil
	}

	type workerOut struct {
		wires    [][]byte
		loss     float64
		compDur  time.Duration
		applyDur time.Duration
		err      error // rejoin-replay or pull-decode failure, surfaced by Run
	}
	outs := make([]workerOut, cfg.Workers)

	if cfg.BackupWorkers < 0 || cfg.BackupWorkers >= cfg.Workers {
		return nil, fmt.Errorf("train: BackupWorkers %d must be in [0, workers)", cfg.BackupWorkers)
	}
	if cfg.Staleness < 0 {
		return nil, fmt.Errorf("train: Staleness %d must be >= 0", cfg.Staleness)
	}
	if len(cfg.Dropouts) > 0 && cfg.Staleness > 0 {
		// A worker with SSP delay d applies the pull from d steps ago; the
		// rejoin replay of the fresh per-step sets would double-apply the
		// last d of them and never apply the d sets before the dropout.
		return nil, fmt.Errorf("train: Dropouts cannot be combined with Staleness > 0")
	}
	for _, d := range cfg.Dropouts {
		if d.Worker <= 0 || d.Worker >= cfg.Workers {
			return nil, fmt.Errorf("train: dropout worker %d must be in [1, workers) — the chief cannot drop", d.Worker)
		}
		if d.From < 0 || d.To <= d.From {
			return nil, fmt.Errorf("train: dropout interval [%d, %d) invalid", d.From, d.To)
		}
	}
	jitterRNG := tensor.NewRNG(cfg.Seed ^ 0x4a49545445520000) // "JITTER"
	var pullHistory [][][]byte                                // ring of recent pull wire sets (SSP emulation)

	// Elastic-dropout bookkeeping: down tells whether a worker is absent
	// at a step; returnStep is the step it next computes at; missed[w]
	// retains the pull wire sets an absent worker must replay on rejoin.
	down := func(w, step int) bool {
		for _, d := range cfg.Dropouts {
			if d.Worker == w && step >= d.From && step < d.To {
				return true
			}
		}
		return false
	}
	returnStep := func(w, step int) int {
		t := step + 1
		for t < cfg.Steps && down(w, t) {
			t++
		}
		return t
	}
	missed := make([][][][]byte, cfg.Workers)

	startStep := 0
	if cfg.ResumeFrom != "" {
		st, err := checkpoint.LoadStateFile(cfg.ResumeFrom)
		if err != nil {
			return nil, fmt.Errorf("train: resume: %w", err)
		}
		startStep, err = restoreRunState(st, &cfg, global, server, workers, rngs, jitterRNG, &pullHistory, missed)
		if err != nil {
			return nil, fmt.Errorf("train: resume: %w", err)
		}
	}
	ckpt := ckptWriter{path: cfg.CheckpointPath}
	defer ckpt.wait() // join any in-flight write on early error returns

	for step := startStep; step < cfg.Steps; step++ {
		// Straggler model: draw per-worker compute-time multipliers up
		// front (the jitter RNG is independent of the compute phase, so
		// the draw order — and every result — is unchanged). Under plain
		// BSP the barrier waits for the slowest worker; with backup
		// workers (§2.1), the step advances once Workers-BackupWorkers
		// pushes arrive and the stragglers' updates are discarded. The
		// chief (worker 0, batch-norm owner) is never dropped.
		// Elastic dropout: absent workers take no part in the step at all.
		active := make([]bool, cfg.Workers)
		nActive := 0
		for w := range active {
			if !down(w, step) {
				active[w] = true
				nActive++
			}
		}

		accepted := make([]bool, cfg.Workers)
		computeMult := 1.0
		if cfg.ComputeJitterStd > 0 {
			// Multipliers are drawn for every worker — absent ones
			// included — so the jitter stream stays aligned with the
			// no-dropout run and with checkpoint/resume.
			mults := make([]float64, cfg.Workers)
			for w := range mults {
				sd := cfg.ComputeJitterStd
				mults[w] = math.Exp(sd*jitterRNG.Norm() - 0.5*sd*sd)
			}
			need := nActive - cfg.BackupWorkers
			if need < 1 {
				need = 1
			}
			order := make([]int, cfg.Workers)
			for i := range order {
				order[i] = i
			}
			sort.Slice(order, func(a, b int) bool { return mults[order[a]] < mults[order[b]] })
			accepted[0] = true
			computeMult = mults[0]
			count := 1
			for _, w := range order {
				if w == 0 || !active[w] || count >= need {
					continue
				}
				accepted[w] = true
				count++
				if mults[w] > computeMult {
					computeMult = mults[w]
				}
			}
		} else {
			copy(accepted, active)
			if cfg.BackupWorkers > 0 {
				// No jitter: dropping is arbitrary; keep the first
				// active workers for determinism.
				dropped := 0
				for w := cfg.Workers - 1; w > 0 && dropped < cfg.BackupWorkers; w-- {
					if accepted[w] {
						accepted[w] = false
						dropped++
					}
				}
			}
		}

		// Overlapped push/aggregate pipeline: local computation + gradient
		// compression run in parallel across workers, and each ACCEPTED
		// worker streams its tensors into a buffered channel the moment
		// they are compressed. The aggregator below ingests them — in
		// strict worker order per tensor, which keeps the gradient sums
		// byte-identical to the staged serial driver — while later workers
		// are still computing and compressing: the server aggregates
		// worker w's push during worker w+1's compute instead of after the
		// whole barrier. Dropped workers still compress (their error-
		// accumulation contexts must advance) but nothing is ingested.
		server.BeginStep()
		type tensorWire struct {
			i    int
			wire []byte
		}
		streams := make([]chan tensorWire, cfg.Workers)
		for w := range streams {
			if accepted[w] {
				// Buffered to the tensor count: emitters never block, so
				// a slow aggregator cannot stall the compute phase.
				streams[w] = make(chan tensorWire, len(params))
			}
		}
		var wg sync.WaitGroup
		for w := 0; w < cfg.Workers; w++ {
			outs[w] = workerOut{}
			if !active[w] {
				continue
			}
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				// Rejoin catch-up: a worker returning from a dropout first
				// replays, in order, the shared pulls it missed, bringing
				// its replica to the exact state an always-present replica
				// holds at this step. Its push contexts were frozen while
				// away, so the pre-dropout residual folds into this step's
				// push.
				for _, ws := range missed[w] {
					if _, err := workers[w].ApplyPull(ws); err != nil {
						outs[w].err = fmt.Errorf("train: worker %d rejoin catch-up: %w", w, err)
						if streams[w] != nil {
							close(streams[w])
						}
						return
					}
				}
				missed[w] = nil
				idx := make([]int, cfg.BatchPerWorker)
				for i := range idx {
					idx[i] = shards[w][rngs[w].Intn(len(shards[w]))]
				}
				var x *tensor.Tensor
				var labels []int
				if cfg.FlatInput {
					x, labels = trainSet.FlatBatch(idx, augment, rngs[w])
				} else {
					x, labels = trainSet.Batch(idx, augment, rngs[w])
				}
				outs[w].loss = workers[w].Model.TrainStep(x, labels)
				if w == 0 && cfg.OnGradients != nil {
					cfg.OnGradients(step, workers[0].Model.Params())
				}
				if accepted[w] {
					outs[w].wires, outs[w].compDur = workers[w].CompressGradsStream(func(i int, wire []byte) {
						streams[w] <- tensorWire{i: i, wire: wire}
					})
					close(streams[w])
				} else {
					outs[w].wires, outs[w].compDur = workers[w].CompressGrads()
				}
			}(w)
		}

		// Aggregator: per-tensor ingestion in worker order, concurrent
		// with the compute goroutines above. serverDecode accumulates only
		// the time spent inside the server (channel waits are compute
		// overlap, not codec cost).
		var serverDecode time.Duration
		var aggErr error
		for w := 0; w < cfg.Workers; w++ {
			if streams[w] == nil {
				continue
			}
			sess := server.BeginPush(w)
			for tw := range streams[w] {
				if aggErr != nil {
					continue // drain so the emitter's close is reached
				}
				t0 := time.Now()
				err := sess.Tensor(tw.i, tw.wire)
				serverDecode += time.Since(t0)
				if err != nil {
					aggErr = err
				}
			}
			if aggErr == nil {
				aggErr = sess.End()
			}
		}
		wg.Wait()
		if aggErr != nil {
			return nil, aggErr
		}
		for w := range outs {
			if outs[w].err != nil {
				return nil, outs[w].err
			}
		}

		pushBytes := make([]int, cfg.Workers)
		var compPush float64
		nAccepted := 0
		for w := 0; w < cfg.Workers; w++ {
			if !accepted[w] {
				continue
			}
			nAccepted++
			pushBytes[w] = ps.WireBytes(outs[w].wires)
			for i, wire := range outs[w].wires {
				if compressible[i] {
					compPush += float64(len(wire))
				}
			}
		}
		compPush /= float64(nAccepted)

		// Update + shared pull compression.
		pullWires, serverComp, err := server.FinishStep()
		if err != nil {
			return nil, err
		}
		pullPerWorker := ps.WireBytes(pullWires)
		pullBytes := make([]int, cfg.Workers)
		var compPull float64
		for i, wire := range pullWires {
			if compressible[i] {
				compPull += float64(len(wire))
			}
		}
		for w := range pullBytes {
			if active[w] {
				pullBytes[w] = pullPerWorker
			}
		}

		// Pull phase: workers decompress and apply, in parallel. Under
		// stale-synchronous emulation each worker applies the pull from
		// `delay_w` steps ago instead of the fresh one. FinishStep's wires
		// alias server-owned buffers that are overwritten next step, so
		// retaining history (Staleness > 0) requires a deep copy; the
		// synchronous path uses the fresh wires directly and stays
		// allocation-free.
		if cfg.Staleness > 0 {
			cp := make([][]byte, len(pullWires))
			for i, w := range pullWires {
				if w != nil {
					cp[i] = append([]byte(nil), w...)
				}
			}
			pullHistory = append(pullHistory, cp)
		} else {
			pullHistory = append(pullHistory[:0], pullWires)
		}
		for w := 0; w < cfg.Workers; w++ {
			if !active[w] {
				continue
			}
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				delay := 0
				if cfg.Staleness > 0 {
					delay = w % (cfg.Staleness + 1)
				}
				idx := len(pullHistory) - 1 - delay
				if idx < 0 {
					return // worker has no pull to apply yet
				}
				d, err := workers[w].ApplyPull(pullHistory[idx])
				if err != nil {
					// A wire that fails to decode — a corrupted shared pull —
					// must kill the step, not the process: elastic recovery
					// (dropout, resume) lives above this error path.
					outs[w].err = fmt.Errorf("train: worker %d pull apply: %w", w, err)
					return
				}
				outs[w].applyDur = d
			}(w)
		}
		wg.Wait()
		for w := range outs {
			if outs[w].err != nil {
				return nil, outs[w].err
			}
		}
		// Retain the shared pull for workers that are away and will rejoin:
		// their replicas replay these sets, in order, at the rejoin step.
		// All of a step's absentees share one deep copy (applies are
		// read-only); workers that never return retain nothing.
		var missedCopy [][]byte
		for w := 0; w < cfg.Workers; w++ {
			if active[w] || returnStep(w, step) >= cfg.Steps {
				continue
			}
			if missedCopy == nil {
				missedCopy = make([][]byte, len(pullWires))
				for i, pw := range pullWires {
					if pw != nil {
						missedCopy[i] = append([]byte(nil), pw...)
					}
				}
			}
			missed[w] = append(missed[w], missedCopy)
		}
		if drop := len(pullHistory) - (cfg.Staleness + 1); drop > 0 {
			pullHistory = pullHistory[drop:]
		}

		// Codec critical path: slowest worker compress + server decode of
		// all pushes + server compress + slowest worker apply.
		var maxComp, maxApply time.Duration
		for w := 0; w < cfg.Workers; w++ {
			if outs[w].compDur > maxComp {
				maxComp = outs[w].compDur
			}
			if outs[w].applyDur > maxApply {
				maxApply = outs[w].applyDur
			}
		}
		codec := (maxComp + serverDecode + serverComp + maxApply).Seconds()
		netStep := net
		netStep.ComputeSec *= computeMult
		dt := netStep.StepTime(pushBytes, pullBytes, codec)
		var wanBytes int
		if tier != nil {
			// The WAN leg starts only after regional aggregation, so it
			// adds to the step un-overlapped (see netsim.WANTime).
			wanPush, wanPull := tier.WANBytes()
			dt += netStep.WANTime(wanPush, wanPull)
			wanBytes = sum(wanPush) + sum(wanPull)
			res.TotalWANBytes += int64(wanBytes)
		}
		clock.Advance(dt)

		var meanLoss float64
		for w := 0; w < cfg.Workers; w++ {
			if active[w] {
				meanLoss += outs[w].loss
			}
		}
		meanLoss /= float64(nActive)

		for _, b := range pushBytes {
			res.TotalPushBytes += int64(b)
		}
		for _, b := range pullBytes {
			res.TotalPullBytes += int64(b)
		}
		res.CompPushBytes += compPush
		res.CompPullBytes += compPull
		res.CodecSec += codec
		res.FinalLoss = meanLoss

		if cfg.RecordSteps {
			res.StepRecords = append(res.StepRecords, StepRecord{
				Step:          step,
				Loss:          meanLoss,
				PushBytes:     sum(pushBytes),
				PullBytes:     sum(pullBytes),
				CompPushBytes: compPush,
				CompPullBytes: compPull,
				CodecSec:      codec,
				ComputeMult:   computeMult,
				VirtualSec:    dt,
				WANBytes:      wanBytes,
			})
		}
		if cfg.EvalEvery > 0 && (step+1)%cfg.EvalEvery == 0 {
			// Batch-norm running statistics live on the designated
			// worker (worker 0, §5.2); sync them to the global model
			// before evaluating it.
			nn.CopyBatchNormStats(global, workers[0].Model)
			acc := Evaluate(global, testSet, 100, cfg.FlatInput)
			res.Evals = append(res.Evals, EvalRecord{Step: step + 1, Accuracy: acc})
		}

		// Periodic full-state checkpoint: serialize the snapshot here, at
		// the step boundary (AppendState/checkpoint.Save copy every buffer
		// they touch), and hand the finished bytes to a background writer —
		// the file I/O overlaps the following steps' compute.
		if cfg.CheckpointPath != "" && cfg.CheckpointEvery > 0 && (step+1)%cfg.CheckpointEvery == 0 {
			st, err := captureRunState(&cfg, step+1, global, server, workers, rngs, jitterRNG, pullHistory, missed)
			if err != nil {
				return nil, err
			}
			if err := ckpt.write(st); err != nil {
				return nil, fmt.Errorf("train: checkpoint write: %w", err)
			}
		}
		if cfg.OnStep != nil {
			if err := cfg.OnStep(step); err != nil {
				return nil, err
			}
		}
	}
	if err := ckpt.wait(); err != nil {
		return nil, fmt.Errorf("train: checkpoint write: %w", err)
	}

	nn.CopyBatchNormStats(global, workers[0].Model)
	res.FinalAccuracy = Evaluate(global, testSet, 100, cfg.FlatInput)
	if cfg.EvalEvery > 0 && (len(res.Evals) == 0 || res.Evals[len(res.Evals)-1].Step != cfg.Steps) {
		res.Evals = append(res.Evals, EvalRecord{Step: cfg.Steps, Accuracy: res.FinalAccuracy})
	}
	res.TotalVirtualSec = clock.Seconds()
	res.PerStepSec = clock.PerStep()
	res.Net = net
	res.RawBytes = int64(numParam) * 4 * int64(cfg.Steps) * int64(cfg.Workers) * 2
	return res, nil
}

func sum(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}

// Evaluate computes top-1 test accuracy of model over ds in batches.
func Evaluate(model *nn.Model, ds *data.Dataset, batch int, flat bool) float64 {
	if ds.Len() == 0 {
		return 0
	}
	correct := 0
	for start := 0; start < ds.Len(); start += batch {
		end := start + batch
		if end > ds.Len() {
			end = ds.Len()
		}
		idx := make([]int, end-start)
		for i := range idx {
			idx[i] = start + i
		}
		var x *tensor.Tensor
		var labels []int
		if flat {
			x, labels = ds.FlatBatch(idx, nil, nil)
		} else {
			x, labels = ds.Batch(idx, nil, nil)
		}
		pred := model.Predict(x)
		for i, p := range pred {
			if p == labels[i] {
				correct++
			}
		}
	}
	return float64(correct) / float64(ds.Len())
}
